// Livetuning: a tuning-session simulation under a wall-clock measurement
// budget. With each probe costing a 50 ms dwell, the session shows how many
// double-dot pairs each method can virtualize within the budget — the
// scaling argument of the paper's introduction (CSD acquisition time grows
// linearly with the number of dots and dominates tuning).
//
//	go run ./examples/livetuning
package main

import (
	"fmt"
	"log"
	"time"

	fastvg "github.com/fastvg/fastvg"
)

// budget is the experiment-time budget for the session.
const budget = 10 * time.Minute

func main() {
	fmt.Printf("Measurement budget: %s (50 ms dwell per probed point)\n\n", budget)

	for _, method := range []string{"fast", "baseline"} {
		var spent time.Duration
		pairs := 0
		failures := 0
		for spent < budget {
			// Each pair is a fresh double-dot with its own geometry and noise.
			inst, _, err := fastvg.NewDoubleDotSim(fastvg.DoubleDotSimOptions{
				SteepSlope:   -5.5 - 0.7*float64(pairs%6),
				ShallowSlope: -0.09 - 0.015*float64(pairs%7),
				CrossXFrac:   0.62 + 0.02*float64(pairs%4),
				CrossYFrac:   0.60 + 0.02*float64(pairs%5),
				Noise:        fastvg.NoiseParams{WhiteSigma: 0.02, PinkAmp: 0.012},
				Seed:         uint64(100 + pairs),
			})
			if err != nil {
				log.Fatal(err)
			}
			var cost time.Duration
			switch method {
			case "fast":
				res, err := fastvg.Extract(inst, inst.Window(), fastvg.Options{})
				if err != nil {
					failures++
					cost = inst.Stats().Virtual
				} else {
					cost = res.ExperimentTime
				}
			case "baseline":
				res, err := fastvg.ExtractBaseline(inst, inst.Window(), fastvg.BaselineOptions{})
				if err != nil {
					failures++
					cost = inst.Stats().Virtual
				} else {
					cost = res.ExperimentTime
				}
			}
			if spent+cost > budget {
				break
			}
			spent += cost
			pairs++
		}
		fmt.Printf("%-9s: %2d adjacent pairs virtualized in %s (%d failures)\n",
			method, pairs, spent.Round(time.Second), failures)
	}

	fmt.Println("\nA 16-dot array needs 15 pair extractions; within this budget only the")
	fmt.Println("fast method finishes the whole array in one session.")
}
