// Arraytuning: virtualize a quadruple-dot linear array (the geometry of the
// paper's Figure 1 device) by running the fast extraction on each adjacent
// plunger pair and composing the pairwise matrices into one 4×4
// virtualization — the n-dot procedure of the paper's Section 2.3.
//
//	go run ./examples/arraytuning
package main

import (
	"fmt"
	"log"
	"time"

	fastvg "github.com/fastvg/fastvg"
)

func main() {
	const dots = 4
	sim, err := fastvg.NewChainSim(fastvg.ChainSimOptions{
		Dots:  dots,
		Noise: fastvg.NoiseParams{WhiteSigma: 0.015, PinkAmp: 0.01},
		Seed:  3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One 100×100 scan window per adjacent pair, spanning the range the
	// simulator recommends; all other plungers held at the operating point.
	windows := make([]fastvg.Window, dots-1)
	for i := range windows {
		windows[i] = sim.RecommendedWindow(100)
	}
	base := make([]float64, dots)

	start := time.Now()
	chain, exts, err := fastvg.ExtractChain(sim, windows, base, fastvg.Options{})
	if err != nil {
		log.Fatalf("chain extraction failed: %v", err)
	}
	compute := time.Since(start)

	fmt.Printf("Quadruple-dot chain virtualization (%d sequential pair extractions)\n\n", dots-1)
	totalProbes := 0
	var totalDwell time.Duration
	for i, ext := range exts {
		steep, shallow := sim.PairTruth(i)
		fmt.Printf("pair (P%d, P%d): steep %7.3f (truth %7.3f)  shallow %7.4f (truth %7.4f)  probes %4d\n",
			i+1, i+2, ext.SteepSlope, steep, ext.ShallowSlope, shallow, ext.Probes)
		totalProbes += ext.Probes
		totalDwell += ext.ExperimentTime
	}

	fmt.Printf("\ncomposed %dx%d virtualization matrix:\n", dots, dots)
	for _, row := range chain.Matrix() {
		fmt.Print("  [")
		for _, v := range row {
			fmt.Printf(" %7.4f", v)
		}
		fmt.Println(" ]")
	}

	fmt.Printf("\ntotal probes: %d (full CSDs would need %d)\n", totalProbes, (dots-1)*100*100)
	fmt.Printf("experiment time: %s (vs %s for full CSDs)\n", totalDwell,
		time.Duration(dots-1)*100*100*50*time.Millisecond)
	fmt.Printf("compute time: %s\n", compute.Round(time.Millisecond))

	// Demonstrate one-to-one control: step virtual gate 2 and verify the
	// physical voltages move all coupled plungers.
	u := []float64{10, 10, 10, 10}
	v, err := chain.Solve(u)
	if err != nil {
		log.Fatal(err)
	}
	u[1] += 5
	v2, err := chain.Solve(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstepping virtual gate u2 by +5 mV moves the physical plungers by:")
	for i := range v {
		fmt.Printf("  P%d: %+0.3f mV\n", i+1, v2[i]-v[i])
	}
}
