// Arraytuning: virtualize a quadruple-dot linear array (the geometry of the
// paper's Figure 1 device) by running the fast extraction on each adjacent
// plunger pair — concurrently, each pair against its own independent
// instrument — and composing the pairwise matrices into one 4×4
// virtualization, the n-dot procedure of the paper's Section 2.3 lifted to
// the planner (internal/chainx) behind fastvg.ExtractChainSpec.
//
// The pair extractions run in parallel on a bounded worker pool; results
// are bit-identical at any worker count, and failed pairs would escalate
// fast → adaptive → rays before giving up. The printed "experiment time"
// contrasts the sequential dwell cost (one fridge line) with the concurrent
// makespan (one line per pair).
//
//	go run ./examples/arraytuning
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	fastvg "github.com/fastvg/fastvg"
)

func main() {
	const dots = 4
	spec := fastvg.ChainSimOptions{
		Dots:  dots,
		Noise: fastvg.NoiseParams{WhiteSigma: 0.015, PinkAmp: 0.01},
		Seed:  3,
	}.Spec()

	start := time.Now()
	res, err := fastvg.ExtractChainSpec(context.Background(), spec, fastvg.ChainExtractOptions{
		Workers: dots - 1, // one worker per pair: all pairs extract concurrently
	})
	if err != nil {
		log.Fatalf("chain extraction failed: %v", err)
	}
	if res.Chain == nil {
		log.Fatalf("pairs failed: %v", res.Failed())
	}
	compute := time.Since(start)

	fmt.Printf("Quadruple-dot chain virtualization (%d concurrent pair extractions)\n\n", dots-1)
	for _, p := range res.Pairs {
		fmt.Printf("pair (P%d, P%d): method %-5s steep %7.3f (Δ%.2f°)  shallow %7.4f (Δ%.2f°)  probes %4d\n",
			p.Pair+1, p.Pair+2, p.Method, p.SteepSlope, p.SteepErrDeg, p.ShallowSlope, p.ShallowErrDeg, p.Probes)
	}

	fmt.Printf("\ncomposed %dx%d virtualization matrix:\n", dots, dots)
	for _, row := range res.Chain.Matrix() {
		fmt.Print("  [")
		for _, v := range row {
			fmt.Printf(" %7.4f", v)
		}
		fmt.Println(" ]")
	}

	fmt.Printf("\ntotal probes: %d (full CSDs would need %d)\n", res.Probes, (dots-1)*100*100)
	fmt.Printf("experiment time: %.1fs sequential dwell -> %.1fs concurrent makespan (%d instrument channels)\n",
		res.ExperimentS, res.MakespanS, res.Workers)
	fmt.Printf("compute time: %s\n", compute.Round(time.Millisecond))

	// Demonstrate one-to-one control: step virtual gate 2 and verify the
	// physical voltages move all coupled plungers.
	u := []float64{10, 10, 10, 10}
	v, err := res.Chain.Solve(u)
	if err != nil {
		log.Fatal(err)
	}
	u[1] += 5
	v2, err := res.Chain.Solve(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstepping virtual gate u2 by +5 mV moves the physical plungers by:")
	for i := range v {
		fmt.Printf("  P%d: %+0.3f mV\n", i+1, v2[i]-v[i])
	}
}
