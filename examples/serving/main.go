// Serving: run the extraction service in-process, serve its HTTP API on a
// local port, and drive it the way a client fleet would — submit the paper's
// full Table 1 as one batch, resubmit it, and watch the result cache absorb
// the repeat. A final act overloads a deliberately tiny daemon to show the
// load-shedding contract from the client side: 429 + Retry-After, absorbed
// by a bounded retry-with-backoff loop, and the same condition surfaced as
// a typed error (fastvg.IsOverloaded) on the library path. The closing
// act reruns the shedding contract through the sharded front door: a
// 3-shard cluster behind the consistent-hash router, where Table 1
// scatter-gathers across shards and a shard's 429 + Retry-After reaches
// the client verbatim — never laundered into a router 5xx.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	fastvg "github.com/fastvg/fastvg"
)

func main() {
	svc, err := fastvg.NewService(fastvg.ServiceConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: fastvg.ServiceHandler(svc)}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("vgxd-style API serving on %s\n\n", base)

	// One call reproduces Table 1: 12 benchmarks × (fast, baseline), fanned
	// out over the service's worker pool.
	t0 := time.Now()
	items := postBatch(base)
	cold := time.Since(t0)
	fmt.Printf("cold batch: %d extractions in %v\n", len(items), cold.Round(time.Millisecond))

	fmt.Printf("\n%-6s %-10s %-10s %-16s %-12s\n", "CSD", "Fast", "Baseline", "Probed (fast)", "Speedup*")
	for i := 0; i < len(items); i += 2 {
		fast, basl := items[i].Result, items[i+1].Result
		speedup := "N/A"
		if fast.Error == "" && fast.Success {
			f := fast.ExperimentS + fast.ComputeS
			bl := basl.ExperimentS + basl.ComputeS
			if f > 0 {
				speedup = fmt.Sprintf("%.1fx", bl/f)
			}
		}
		fmt.Printf("%-6d %-10s %-10s %-16s %-12s\n", fast.Benchmark,
			verdict(fast), verdict(basl),
			fmt.Sprintf("%d (%.1f%%)", fast.Probes, fast.ProbePct), speedup)
	}
	fmt.Println("* virtual dwell + compute, as in the paper's runtime column")

	// The identical batch again: under heavy traffic, repeats are the common
	// case — the cache serves them without touching an instrument.
	t0 = time.Now()
	postBatch(base)
	warm := time.Since(t0)

	var stats struct {
		HitRate float64 `json:"hitRate"`
	}
	getJSON(base+"/v1/stats", &stats)
	fmt.Printf("\nwarm batch: served in %v (cold %v); cache hit rate %.0f%%\n",
		warm.Round(time.Millisecond), cold.Round(time.Millisecond), 100*stats.HitRate)
	_ = srv.Close()

	overloadAct()
	shardedAct()
}

// overloadAct runs a deliberately tiny daemon (one worker, two queue
// slots) into saturation and shows both sides of the shedding contract:
// the HTTP client sees 429 + Retry-After and absorbs it with a bounded
// retry loop; the library caller sees the typed ErrServiceOverloaded
// through fastvg.IsOverloaded.
func overloadAct() {
	svc, err := fastvg.NewService(fastvg.ServiceConfig{Workers: 1, MaxQueueDepth: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = fastvg.CloseService(context.Background(), svc) }()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: fastvg.ServiceHandler(svc)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("\noverload: 1 worker, queue depth 2, burst of 12 distinct jobs against %s\n", base)

	// Occupy the worker, then burst concurrently — a client fleet, not one
	// polite caller. Distinct seeds defeat the cache and coalescing, so
	// every submission wants a queue slot; baseline jobs raster a
	// 400-pixel window (tens of ms), so the burst lands while the queue is
	// full and most of it sheds.
	if _, err := postJob(base, `{"kind":"baseline","sim":{"seed":1000,"pixels":400}}`); err != nil {
		log.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	var wg sync.WaitGroup
	var shed, accepted atomic.Int64
	for seed := 1; seed <= 12; seed++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"kind":"baseline","sim":{"seed":%d,"pixels":400}}`, seed)
			switch _, err := postJob(base, body); {
			case errors.Is(err, errOverloaded):
				shed.Add(1)
			case err != nil:
				log.Fatal(err)
			default:
				accepted.Add(1)
			}
		}(seed)
	}
	wg.Wait()
	fmt.Printf("burst: %d accepted, %d shed with 429\n", accepted.Load(), shed.Load())

	// The same request that just shed succeeds once the retry loop waits
	// out the Retry-After hint.
	t0 := time.Now()
	jv, err := postJobRetry(base, `{"kind":"fast","sim":{"seed":99}}`, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retry-with-backoff: job %s accepted after %v\n", jv.ID, time.Since(t0).Round(time.Millisecond))

	// Library path: the exact same condition is a typed error, not a string.
	for seed := 200; seed < 260; seed++ {
		_, err := svc.Submit(context.Background(), fastvg.JobRequest{Kind: fastvg.JobBaseline,
			Sim: &fastvg.SimSpec{Seed: uint64(seed), Pixels: 400}})
		if fastvg.IsOverloaded(err) {
			fmt.Println("library path: Submit returned ErrServiceOverloaded (typed, retryable)")
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		time.Sleep(3 * time.Millisecond)
	}
	log.Fatal("overload never triggered on the library path")
}

// shardedAct reruns the shedding contract through the sharded front
// door: three deliberately tiny shards (one worker, two queue slots
// each) behind the consistent-hash router. The contract must survive
// the extra hop — Table 1 scatter-gathers across shards and merges in
// request order, an overloaded shard's 429 + Retry-After reaches the
// HTTP client verbatim (postJob treats any 5xx as fatal, so a router
// that laundered the 429 would kill this example), and the library
// path sees the same typed error through Cluster.Submit.
func shardedAct() {
	// Scatter-gather first, on comfortably provisioned shards: the router
	// splits Table 1 by ring owner, the shards extract in parallel, and
	// the merged reply preserves request order.
	roomy, err := fastvg.NewCluster(fastvg.ClusterConfig{
		Shards: 3,
		Base:   fastvg.ServiceConfig{Workers: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: fastvg.ClusterHandler(roomy)}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	var health fastvg.ClusterHealth
	getJSON(base+"/v1/healthz", &health)
	fmt.Printf("\nsharded front door on %s: %d shards, %d workers total\n",
		base, health.Shards, health.Workers)

	t0 := time.Now()
	items := postBatch(base)
	fmt.Printf("table 1 through the router: %d extractions scatter-gathered in %v\n",
		len(items), time.Since(t0).Round(time.Millisecond))
	_ = srv.Close()
	if err := fastvg.CloseCluster(context.Background(), roomy); err != nil {
		log.Fatal(err)
	}

	// Now the shedding contract, on deliberately tiny shards.
	cluster, err := fastvg.NewCluster(fastvg.ClusterConfig{
		Shards: 3,
		Base:   fastvg.ServiceConfig{Workers: 1, MaxQueueDepth: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = fastvg.CloseCluster(context.Background(), cluster) }()
	ln, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv = &http.Server{Handler: fastvg.ClusterHandler(cluster)}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base = "http://" + ln.Addr().String()
	fmt.Printf("overload through router: 3 shards of 1 worker + 2 queue slots on %s\n", base)

	// A client fleet bursts past the cluster's 9 total slots; the shards
	// that saturate shed, and the router relays each 429 untouched.
	var wg sync.WaitGroup
	var shed, accepted atomic.Int64
	for seed := 2000; seed < 2030; seed++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"kind":"baseline","sim":{"seed":%d,"pixels":400}}`, seed)
			switch _, err := postJob(base, body); {
			case errors.Is(err, errOverloaded):
				shed.Add(1)
			case err != nil:
				log.Fatal(err) // a 5xx — including a mistranslated 429 — dies here
			default:
				accepted.Add(1)
			}
		}(seed)
	}
	wg.Wait()
	fmt.Printf("burst of 30 through router: %d accepted, %d shed with 429 + Retry-After\n",
		accepted.Load(), shed.Load())

	// And the retry loop absorbs a router-relayed 429 exactly as before.
	jv, err := postJobRetry(base, `{"kind":"fast","sim":{"seed":2099}}`, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retry-with-backoff through router: job %s accepted\n", jv.ID)

	// Library path: the typed error crosses the routing layer too.
	for seed := 3000; seed < 3200; seed++ {
		_, err := cluster.Submit(context.Background(), fastvg.JobRequest{Kind: fastvg.JobBaseline,
			Sim: &fastvg.SimSpec{Seed: uint64(seed), Pixels: 400}})
		if fastvg.IsOverloaded(err) {
			fmt.Println("library path: Cluster.Submit returned ErrServiceOverloaded (typed, retryable)")
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	log.Fatal("overload never triggered through the sharded router")
}

// errOverloaded is the client-side face of a 429: the request was valid,
// the server's moment was not.
var errOverloaded = errors.New("server overloaded (429)")

// postJob submits one job; a 429 comes back as errOverloaded with the
// server's Retry-After hint attached for the retry loop.
func postJob(base, body string) (*fastvg.JobView, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		_, _ = io.Copy(io.Discard, resp.Body)
		retryAfter := resp.Header.Get("Retry-After")
		return nil, fmt.Errorf("%w (Retry-After: %s)", errOverloaded, retryAfter)
	}
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("submit: %s: %s", resp.Status, b)
	}
	var jv fastvg.JobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		return nil, err
	}
	return &jv, nil
}

// postJobRetry is postJob with bounded retry-with-backoff: a 429 sleeps
// for the server's Retry-After (or an exponential fallback when the
// header is absent) and tries again, up to maxAttempts.
func postJobRetry(base, body string, maxAttempts int) (*fastvg.JobView, error) {
	backoff := 100 * time.Millisecond
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				b, _ := io.ReadAll(resp.Body)
				return nil, fmt.Errorf("submit: %s: %s", resp.Status, b)
			}
			var jv fastvg.JobView
			if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
				return nil, err
			}
			return &jv, nil
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if attempt >= maxAttempts {
			return nil, fmt.Errorf("%w after %d attempts", errOverloaded, attempt)
		}
		delay := backoff
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if s, err := strconv.Atoi(ra); err == nil {
				delay = time.Duration(s) * time.Second
			}
		}
		fmt.Printf("  429 on attempt %d, backing off %v\n", attempt, delay)
		time.Sleep(delay)
		backoff *= 2
	}
}

type batchItem struct {
	Result *fastvg.JobResult `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
}

func postBatch(base string) []batchItem {
	resp, err := http.Post(base+"/v1/batch", "application/json",
		bytes.NewBufferString(`{"table1":true}`))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Items []batchItem `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		log.Fatal(err)
	}
	for _, item := range body.Items {
		if item.Error != "" {
			log.Fatalf("batch item failed: %s", item.Error)
		}
	}
	return body.Items
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func verdict(r *fastvg.JobResult) string {
	switch {
	case r.Error != "":
		return "Fail"
	case r.Success:
		return "Success"
	default:
		return "Fail"
	}
}
