// Serving: run the extraction service in-process, serve its HTTP API on a
// local port, and drive it the way a client fleet would — submit the paper's
// full Table 1 as one batch, resubmit it, and watch the result cache absorb
// the repeat.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	fastvg "github.com/fastvg/fastvg"
)

func main() {
	svc, err := fastvg.NewService(fastvg.ServiceConfig{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: fastvg.ServiceHandler(svc)}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("vgxd-style API serving on %s\n\n", base)

	// One call reproduces Table 1: 12 benchmarks × (fast, baseline), fanned
	// out over the service's worker pool.
	t0 := time.Now()
	items := postBatch(base)
	cold := time.Since(t0)
	fmt.Printf("cold batch: %d extractions in %v\n", len(items), cold.Round(time.Millisecond))

	fmt.Printf("\n%-6s %-10s %-10s %-16s %-12s\n", "CSD", "Fast", "Baseline", "Probed (fast)", "Speedup*")
	for i := 0; i < len(items); i += 2 {
		fast, basl := items[i].Result, items[i+1].Result
		speedup := "N/A"
		if fast.Error == "" && fast.Success {
			f := fast.ExperimentS + fast.ComputeS
			bl := basl.ExperimentS + basl.ComputeS
			if f > 0 {
				speedup = fmt.Sprintf("%.1fx", bl/f)
			}
		}
		fmt.Printf("%-6d %-10s %-10s %-16s %-12s\n", fast.Benchmark,
			verdict(fast), verdict(basl),
			fmt.Sprintf("%d (%.1f%%)", fast.Probes, fast.ProbePct), speedup)
	}
	fmt.Println("* virtual dwell + compute, as in the paper's runtime column")

	// The identical batch again: under heavy traffic, repeats are the common
	// case — the cache serves them without touching an instrument.
	t0 = time.Now()
	postBatch(base)
	warm := time.Since(t0)

	var stats struct {
		HitRate float64 `json:"hitRate"`
	}
	getJSON(base+"/v1/stats", &stats)
	fmt.Printf("\nwarm batch: served in %v (cold %v); cache hit rate %.0f%%\n",
		warm.Round(time.Millisecond), cold.Round(time.Millisecond), 100*stats.HitRate)
	_ = srv.Close()
}

type batchItem struct {
	Result *fastvg.JobResult `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
}

func postBatch(base string) []batchItem {
	resp, err := http.Post(base+"/v1/batch", "application/json",
		bytes.NewBufferString(`{"table1":true}`))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Items []batchItem `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		log.Fatal(err)
	}
	for _, item := range body.Items {
		if item.Error != "" {
			log.Fatalf("batch item failed: %s", item.Error)
		}
	}
	return body.Items
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func verdict(r *fastvg.JobResult) string {
	switch {
	case r.Error != "":
		return "Fail"
	case r.Success:
		return "Success"
	default:
		return "Fail"
	}
}
