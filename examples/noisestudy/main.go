// Noisestudy: success rate of the fast extraction and the Hough baseline as
// a function of measurement noise amplitude — the robustness dimension
// behind the paper's benchmarks 1, 2 and 7.
//
//	go run ./examples/noisestudy
package main

import (
	"fmt"
	"log"
	"math"

	fastvg "github.com/fastvg/fastvg"
)

const trialsPerLevel = 8

func main() {
	fmt.Println("Success rate vs white-noise amplitude (8 device realisations per level)")
	fmt.Println("noise σ is in units of the sensor peak height; transition steps are ~0.2")
	fmt.Println()
	fmt.Printf("%-10s %-12s %-12s %-12s %-14s\n", "sigma", "fast", "baseline", "rays", "fast probes")

	for _, sigma := range []float64{0.005, 0.02, 0.05, 0.08, 0.12, 0.18} {
		fastOK, baseOK, raysOK, probeSum, probeRuns := 0, 0, 0, 0, 0
		for trial := 0; trial < trialsPerLevel; trial++ {
			seed := uint64(1000*sigma) + uint64(trial)
			opts := fastvg.DoubleDotSimOptions{
				// Vary the geometry a little per trial, like device-to-device
				// variation in a real dataset.
				SteepSlope:   -6 - 0.5*float64(trial%5),
				ShallowSlope: -0.10 - 0.02*float64(trial%4),
				Noise:        fastvg.NoiseParams{WhiteSigma: sigma, PinkAmp: sigma / 2},
				Seed:         seed,
			}
			instA, truth, err := fastvg.NewDoubleDotSim(opts)
			if err != nil {
				log.Fatal(err)
			}
			if res, err := fastvg.Extract(instA, instA.Window(), fastvg.Options{}); err == nil {
				if within(res.SteepSlope, truth.SteepSlope) && within(res.ShallowSlope, truth.ShallowSlope) {
					fastOK++
				}
				probeSum += res.Probes
				probeRuns++
			}
			instB, _, err := fastvg.NewDoubleDotSim(opts)
			if err != nil {
				log.Fatal(err)
			}
			if res, err := fastvg.ExtractBaseline(instB, instB.Window(), fastvg.BaselineOptions{}); err == nil {
				if within(res.SteepSlope, truth.SteepSlope) && within(res.ShallowSlope, truth.ShallowSlope) {
					baseOK++
				}
			}
			instC, _, err := fastvg.NewDoubleDotSim(opts)
			if err != nil {
				log.Fatal(err)
			}
			if res, err := fastvg.ExtractRays(instC, instC.Window(), fastvg.RayOptions{}); err == nil {
				if within(res.SteepSlope, truth.SteepSlope) && within(res.ShallowSlope, truth.ShallowSlope) {
					raysOK++
				}
			}
		}
		avgProbes := 0
		if probeRuns > 0 {
			avgProbes = probeSum / probeRuns
		}
		fmt.Printf("%-10.3f %2d/%-9d %2d/%-9d %2d/%-9d %-14d\n",
			sigma, fastOK, trialsPerLevel, baseOK, trialsPerLevel, raysOK, trialsPerLevel, avgProbes)
	}
	fmt.Println("\nAll methods degrade at high noise (the paper's CSDs 1-2 regime). The")
	fmt.Println("baseline's full-diagram averaging survives longest; the fast method")
	fmt.Println("needs ~10x fewer probes wherever it works; single-pass rays need the")
	fmt.Println("lowest noise (lab use pairs them with signal averaging).")
}

// within checks a slope against truth with the 3.5° angular tolerance used
// throughout the evaluation.
func within(got, want float64) bool {
	return math.Abs(math.Atan(got)-math.Atan(want))*180/math.Pi <= 3.5
}
