// Quickstart: extract the virtual gate matrix of a simulated double quantum
// dot with the fast method, and compare its cost against the full-CSD
// baseline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	fastvg "github.com/fastvg/fastvg"
)

func main() {
	// A simulated 100×100 px, 50 mV scan window over a double dot with
	// moderate measurement noise. The instrument charges the realistic 50 ms
	// dwell per probed point on a virtual clock.
	inst, truth, err := fastvg.NewDoubleDotSim(fastvg.DoubleDotSimOptions{
		Noise: fastvg.NoiseParams{WhiteSigma: 0.02, PinkAmp: 0.012},
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := fastvg.Extract(inst, inst.Window(), fastvg.Options{})
	if err != nil {
		log.Fatalf("extraction failed: %v", err)
	}

	fmt.Println("Fast virtual gate extraction")
	fmt.Printf("  steep line slope:   %8.3f   (device truth %.3f)\n", res.SteepSlope, truth.SteepSlope)
	fmt.Printf("  shallow line slope: %8.3f   (device truth %.3f)\n", res.ShallowSlope, truth.ShallowSlope)
	fmt.Printf("  virtualization matrix:\n")
	fmt.Printf("    [ %6.4f  %6.4f ]\n", res.Matrix[0][0], res.Matrix[0][1])
	fmt.Printf("    [ %6.4f  %6.4f ]\n", res.Matrix[1][0], res.Matrix[1][1])
	fmt.Printf("  triple point: (%.2f mV, %.2f mV)\n", res.TripleV1, res.TripleV2)
	fmt.Printf("  points probed: %d of %d (%.1f%%)\n", res.Probes, 100*100,
		100*float64(res.Probes)/float64(100*100))
	fmt.Printf("  experiment time (virtual): %s\n", res.ExperimentTime)

	sErr, hErr := res.Matrix.OrthogonalityError(truth.SteepSlope, truth.ShallowSlope)
	fmt.Printf("  residual cross-coupling after virtualization: %.2f° / %.2f°\n", sErr, hErr)

	// Close the loop: verify the matrix on the device itself by stepping the
	// virtual gates and checking the transition lines do not move.
	ver, err := fastvg.VerifyMatrix(context.Background(), inst, inst.Window(), res, fastvg.VerifyOptions{})
	if err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Printf("  on-device verification: OK=%v (line drift %.2f / %.2f mV, %d extra probes)\n\n",
		ver.OK, ver.SteepShift, ver.ShallowShift, ver.Probes)

	// The conventional approach acquires the complete diagram first.
	instB, _, err := fastvg.NewDoubleDotSim(fastvg.DoubleDotSimOptions{
		Noise: fastvg.NoiseParams{WhiteSigma: 0.02, PinkAmp: 0.012},
		Seed:  1,
	})
	if err != nil {
		log.Fatal(err)
	}
	base, err := fastvg.ExtractBaseline(instB, instB.Window(), fastvg.BaselineOptions{})
	if err != nil {
		log.Fatalf("baseline failed: %v", err)
	}
	fmt.Println("Hough-transform baseline (full CSD)")
	fmt.Printf("  points probed: %d, experiment time: %s\n", base.Probes, base.ExperimentTime)
	fmt.Printf("  speedup of fast extraction: %.1fx\n",
		base.ExperimentTime.Seconds()/res.ExperimentTime.Seconds())
}
