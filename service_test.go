package fastvg_test

import (
	"context"
	"testing"

	fastvg "github.com/fastvg/fastvg"
)

// TestServiceFacade checks the root-package service façade wires the
// subsystem correctly: run a job, repeat it, observe the dedup.
func TestServiceFacade(t *testing.T) {
	svc, err := fastvg.NewService(fastvg.ServiceConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	req := fastvg.JobRequest{
		Kind: fastvg.JobFast,
		Sim:  &fastvg.SimSpec{Pixels: 64, Seed: 42},
	}
	res, err := fastvg.RunJob(context.Background(), svc, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != "" || !res.Success {
		t.Fatalf("clean sim job should succeed, got %+v", res)
	}

	// The same extraction through the library path must agree exactly.
	inst, _, err := fastvg.NewDoubleDotSim(fastvg.DoubleDotSimOptions{Pixels: 64, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := fastvg.Extract(inst, inst.Window(), fastvg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ext.SteepSlope != res.SteepSlope || ext.ShallowSlope != res.ShallowSlope || ext.Probes != res.Probes {
		t.Fatalf("service result (%v, %v, %d probes) != library result (%v, %v, %d probes)",
			res.SteepSlope, res.ShallowSlope, res.Probes,
			ext.SteepSlope, ext.ShallowSlope, ext.Probes)
	}

	again, err := fastvg.RunJob(context.Background(), svc, req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("identical repeat should be served from the result cache")
	}
	if len(fastvg.Table1Requests()) != 24 {
		t.Fatalf("Table1Requests = %d, want 24", len(fastvg.Table1Requests()))
	}
}

// TestSimProbeMap checks live sims expose the probe map (the vgx -sim
// -probemap path).
func TestSimProbeMap(t *testing.T) {
	inst, _, err := fastvg.NewDoubleDotSim(fastvg.DoubleDotSimOptions{Pixels: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.ProbeMap(); len(got) != 0 {
		t.Fatalf("fresh sim has %d probed pixels, want 0", len(got))
	}
	ext, err := fastvg.Extract(inst, inst.Window(), fastvg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pm := inst.ProbeMap()
	if len(pm) == 0 {
		t.Fatal("extraction left no probe map")
	}
	// The map can be slightly smaller than Probes (off-window probes are
	// omitted) but must be the same order of coverage.
	if len(pm) > ext.Probes || len(pm) < ext.Probes/2 {
		t.Fatalf("probe map has %d pixels for %d probes", len(pm), ext.Probes)
	}
	win := inst.Window()
	for _, p := range pm {
		if p.X < 0 || p.X >= win.Cols || p.Y < 0 || p.Y >= win.Rows {
			t.Fatalf("probe map pixel %v outside %dx%d window", p, win.Cols, win.Rows)
		}
	}
}

// TestFleetFacade exercises the fleet calibration loop through the root
// exports: register a small heterogeneous fleet, tick a virtual hour, check
// every device got its initial calibration, then drain the service.
func TestFleetFacade(t *testing.T) {
	svc, err := fastvg.NewService(fastvg.ServiceConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfgs, err := fastvg.DefaultFleetConfigs(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		if _, err := svc.Fleet().Register(cfg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		if _, err := svc.Fleet().Tick(context.Background(), 300); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Fleet().Status()
	if st.DeviceCount != 4 || st.Calibrations != 4 {
		t.Fatalf("fleet status = %+v, want 4 devices all calibrated", st)
	}
	for _, d := range st.Devices {
		if !d.Calibrated {
			t.Errorf("device %s uncalibrated after an hour", d.ID)
		}
	}
	if err := fastvg.CloseService(context.Background(), svc); err != nil {
		t.Fatalf("CloseService: %v", err)
	}
}
