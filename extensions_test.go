package fastvg

import (
	"context"
	"testing"
)

func TestExtractRaysOnSimulatedDevice(t *testing.T) {
	inst, truth, err := NewDoubleDotSim(DoubleDotSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractRays(inst, inst.Window(), RayOptions{})
	if err != nil {
		t.Fatalf("ExtractRays: %v", err)
	}
	if e := angleErrDeg(res.SteepSlope, truth.SteepSlope); e > 3.5 {
		t.Errorf("steep %v vs %v (Δ%.2f°)", res.SteepSlope, truth.SteepSlope, e)
	}
	if e := angleErrDeg(res.ShallowSlope, truth.ShallowSlope); e > 3.5 {
		t.Errorf("shallow %v vs %v (Δ%.2f°)", res.ShallowSlope, truth.ShallowSlope, e)
	}
	if res.Probes <= 0 || res.Probes >= 10000 {
		t.Errorf("ray probes = %d", res.Probes)
	}
}

func TestMethodsProbeOrdering(t *testing.T) {
	// The three sparse methods and the baseline should order as
	// fast < rays < baseline on probes for the same device.
	counts := map[string]int{}
	for _, m := range []string{"fast", "rays", "baseline"} {
		inst, _, err := NewDoubleDotSim(DoubleDotSimOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var ext *Extraction
		switch m {
		case "fast":
			ext, err = Extract(inst, inst.Window(), Options{})
		case "rays":
			ext, err = ExtractRays(inst, inst.Window(), RayOptions{})
		case "baseline":
			ext, err = ExtractBaseline(inst, inst.Window(), BaselineOptions{})
		}
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		counts[m] = ext.Probes
	}
	// Both sparse methods must be far below the full raster. (On clean
	// devices rays can probe even fewer points than the sweeps — they have
	// no fixed mask-band cost — at the price of noise robustness; see
	// TestRaysDegradeUnderNoiseBeforeFast.)
	if counts["fast"] >= counts["baseline"]/4 {
		t.Errorf("fast probes %d not ≪ baseline %d", counts["fast"], counts["baseline"])
	}
	if counts["rays"] >= counts["baseline"]/4 {
		t.Errorf("ray probes %d not ≪ baseline %d", counts["rays"], counts["baseline"])
	}
}

func TestRaysDegradeUnderNoiseBeforeFast(t *testing.T) {
	// At a noise level the sweeps+filter pipeline still handles, the ray
	// method's single-pass drop detector starts failing: count successes
	// over several realisations.
	const trials = 6
	const sigma = 0.03
	fastOK, raysOK := 0, 0
	for i := 0; i < trials; i++ {
		opts := DoubleDotSimOptions{
			Noise: NoiseParams{WhiteSigma: sigma, PinkAmp: sigma / 2},
			Seed:  uint64(100 + i),
		}
		instA, truth, err := NewDoubleDotSim(opts)
		if err != nil {
			t.Fatal(err)
		}
		if res, err := Extract(instA, instA.Window(), Options{}); err == nil {
			if angleErrDeg(res.SteepSlope, truth.SteepSlope) <= 3.5 &&
				angleErrDeg(res.ShallowSlope, truth.ShallowSlope) <= 3.5 {
				fastOK++
			}
		}
		instB, _, err := NewDoubleDotSim(opts)
		if err != nil {
			t.Fatal(err)
		}
		if res, err := ExtractRays(instB, instB.Window(), RayOptions{}); err == nil {
			if angleErrDeg(res.SteepSlope, truth.SteepSlope) <= 3.5 &&
				angleErrDeg(res.ShallowSlope, truth.ShallowSlope) <= 3.5 {
				raysOK++
			}
		}
	}
	if fastOK < raysOK {
		t.Errorf("fast %d/%d vs rays %d/%d at σ=%v: expected fast ≥ rays", fastOK, trials, raysOK, trials, sigma)
	}
	if fastOK < trials-1 {
		t.Errorf("fast method succeeded only %d/%d at σ=0.03 (step SNR ≈ 7)", fastOK, trials)
	}
}

func TestExtractAdaptiveFacade(t *testing.T) {
	inst, truth, err := NewDoubleDotSim(DoubleDotSimOptions{Pixels: 200})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExtractAdaptive(inst, inst.Window(), AdaptiveOptions{})
	if err != nil {
		t.Fatalf("ExtractAdaptive: %v", err)
	}
	if e := angleErrDeg(res.SteepSlope, truth.SteepSlope); e > 3.5 {
		t.Errorf("adaptive steep off by %.2f°", e)
	}
	if res.Probes <= 0 || res.Probes > 2500 {
		t.Errorf("adaptive probes = %d of 40000", res.Probes)
	}
}

func TestFindWindowFacade(t *testing.T) {
	// A device whose lines sit at unknown position inside a broad range.
	inst, truth, err := NewDoubleDotSim(DoubleDotSimOptions{
		Pixels: 240, SpanMV: 120, CrossXFrac: 0.25, CrossYFrac: 0.23,
	})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := FindWindow(inst, 0, 120, 0, 120, 100)
	if err != nil {
		t.Fatalf("FindWindow: %v", err)
	}
	if ws.Probes <= 0 || ws.Probes > 1100 {
		t.Errorf("window search probes = %d", ws.Probes)
	}
	// Extraction inside the proposed window recovers the device slopes.
	// Use a fresh instrument with pixel pitch matched to the new window.
	inst2, _, err := NewDoubleDotSim(DoubleDotSimOptions{
		Pixels: 240, SpanMV: 120, CrossXFrac: 0.25, CrossYFrac: 0.23,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst2.QuantV1 = ws.Window.StepV1()
	inst2.QuantV2 = ws.Window.StepV2()
	ext, err := Extract(inst2, ws.Window, Options{})
	if err != nil {
		t.Fatalf("extraction in proposed window: %v", err)
	}
	if e := angleErrDeg(ext.SteepSlope, truth.SteepSlope); e > 3.5 {
		t.Errorf("steep slope off by %.2f° in proposed window", e)
	}
}

func TestExtractionStateAt(t *testing.T) {
	inst, _, err := NewDoubleDotSim(DoubleDotSimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(inst, inst.Window(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	n1, n2, ok := res.StateAt(inst.Window(), 5, 5)
	if !ok {
		t.Fatal("StateAt unavailable on fast extraction")
	}
	if n1 != 0 || n2 != 0 {
		t.Errorf("origin region classified as (%d,%d)", n1, n2)
	}
	// Baseline extractions have no Detail.
	instB, _, err := NewDoubleDotSim(DoubleDotSimOptions{Pixels: 64})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := ExtractBaseline(instB, instB.Window(), BaselineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := resB.StateAt(instB.Window(), 5, 5); ok {
		t.Error("StateAt should be unavailable for baseline results")
	}
}

func TestVerifyMatrixOnDevice(t *testing.T) {
	inst, _, err := NewDoubleDotSim(DoubleDotSimOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := Extract(inst, inst.Window(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ver, err := VerifyMatrix(context.Background(), inst, inst.Window(), ext, VerifyOptions{})
	if err != nil {
		t.Fatalf("VerifyMatrix: %v", err)
	}
	if !ver.OK {
		t.Errorf("extracted matrix failed on-device verification: shifts %.3f / %.3f mV",
			ver.SteepShift, ver.ShallowShift)
	}
	if ver.Probes <= 0 || ver.Probes > 1500 {
		t.Errorf("verification probes = %d", ver.Probes)
	}
	// A deliberately uncompensated matrix must fail the same check.
	bad := *ext
	bad.Matrix = Matrix2{{1, 0}, {0, 1}}
	ver2, err := VerifyMatrix(context.Background(), inst, inst.Window(), &bad, VerifyOptions{})
	if err == nil && ver2.OK {
		t.Error("identity matrix passed on-device verification")
	}
}
