package fastvg

import (
	"context"
	"fmt"
	"time"

	"github.com/fastvg/fastvg/internal/chainx"
	"github.com/fastvg/fastvg/internal/sched"
)

// This file is the façade over the N-dot chain extraction planner
// (internal/chainx): the paper's Section 2.3 procedure — virtualize an
// N-dot linear array by composing its N−1 adjacent-pair extractions — run
// either sequentially against one shared device (ExtractChain) or
// concurrently against independent per-pair instruments with escalation and
// a probe budget (ExtractChainSpec).

// ChainMethod names a pair extraction pipeline in the escalation ladder.
type ChainMethod = chainx.Method

// The pair methods.
const (
	ChainMethodFast     = chainx.MethodFast
	ChainMethodAdaptive = chainx.MethodAdaptive
	ChainMethodRays     = chainx.MethodRays
)

// ChainPairResult is the outcome of one adjacent-pair extraction: the
// winning method, its matrix and slopes, per-attempt escalation records and
// the pair's probe/dwell cost.
type ChainPairResult = chainx.PairResult

// ChainExtraction is the outcome of a planner chain extraction: the
// composed Chain (nil unless every pair succeeded), every pair's result in
// index order, and the summed (sequential) versus makespan (concurrent)
// dwell cost.
type ChainExtraction = chainx.Result

// ChainExtractOptions tunes ExtractChainSpec.
type ChainExtractOptions struct {
	// Workers bounds the concurrent pair extractions; 0 means one per CPU,
	// 1 runs the pairs sequentially. Results are bit-identical at any value.
	Workers int
	// Windows overrides the spec's default per-pair scan window; nil uses
	// the spec's recommended window for every pair, otherwise len must be
	// Dots−1.
	Windows []Window
	// Methods is the per-pair escalation ladder; empty uses the default
	// (fast → adaptive → rays).
	Methods []ChainMethod
	// Budget caps the probes the whole chain may spend; 0 means unlimited.
	Budget int
	// Options tunes the fast and adaptive pair methods.
	Options
	// Rays tunes the ray-casting fallback.
	Rays RayOptions
}

// ExtractChainSpec runs the planner chain extraction against a serialisable
// chain device spec: each adjacent pair gets its own independent simulated
// instrument (noise and drift derived from the spec seed and the pair index
// alone), the pairs extract concurrently on a bounded worker pool under the
// probe budget, failed pairs escalate down the method ladder, and the
// pairwise matrices compose into one N×N virtualization. The result is
// bit-identical at any worker count.
func ExtractChainSpec(ctx context.Context, spec ChainSpec, opts ChainExtractOptions) (*ChainExtraction, error) {
	src, err := chainx.NewSpecSource(spec, opts.Windows)
	if err != nil {
		return nil, fmt.Errorf("fastvg: %w", err)
	}
	pool := sched.New(opts.Workers)
	defer pool.Close(context.WithoutCancel(ctx))
	cfg := chainx.Config{
		Methods: opts.Methods,
		Budget:  opts.Budget,
		Fast:    opts.Options.coreConfig(),
		Rays:    raysConfig(opts.Rays),
	}
	res, err := chainx.Extract(ctx, pool, src, cfg)
	if err != nil {
		return nil, fmt.Errorf("fastvg: %w", err)
	}
	return res, nil
}

// ExtractChain performs the paper's n-dot procedure (Section 2.3) against a
// shared-instrument chain simulator: one pair extraction per adjacent
// plunger pair — sequential, in pair order, exactly as on a single-channel
// instrument — composed into a chain virtualization. windows[i] is the scan
// window for pair (i, i+1); base is the operating point for the gates not
// being scanned. It is a thin wrapper over the planner with a one-worker
// pool and the fast method only; use ExtractChainSpec for concurrent pair
// extraction with escalation.
func ExtractChain(sim *ChainSim, windows []Window, base []float64, opts Options) (*Chain, []*Extraction, error) {
	n := sim.Phys.N
	if len(windows) != n-1 {
		return nil, nil, fmt.Errorf("fastvg: need %d windows, got %d", n-1, len(windows))
	}
	if len(base) != n {
		return nil, nil, fmt.Errorf("fastvg: need %d base voltages, got %d", n, len(base))
	}
	src := &chainx.SharedSource{Inst: sim.Inst, Win: windows, Base: base}
	pool := sched.New(1)
	defer pool.Close(context.Background())
	res, err := chainx.Extract(context.Background(), pool, src, chainx.Config{
		Methods: []ChainMethod{ChainMethodFast},
		Fast:    opts.coreConfig(),
	})
	if err != nil {
		return nil, nil, err
	}
	exts := make([]*Extraction, 0, n-1)
	for i := range res.Pairs {
		p := &res.Pairs[i]
		if p.Error != "" {
			return nil, nil, fmt.Errorf("fastvg: pair (%d,%d): %s", i, i+1, p.Error)
		}
		exts = append(exts, &Extraction{
			Matrix:         p.Matrix,
			SteepSlope:     p.SteepSlope,
			ShallowSlope:   p.ShallowSlope,
			TripleV1:       p.TripleV1,
			TripleV2:       p.TripleV2,
			Probes:         p.Probes,
			ExperimentTime: time.Duration(p.ExperimentS * float64(time.Second)),
		})
	}
	return res.Chain, exts, nil
}
