package qflow

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/fastvg/fastvg/internal/device"
)

func TestSuiteStructureMatchesPaper(t *testing.T) {
	suite := MustSuite()
	if len(suite) != 12 {
		t.Fatalf("suite has %d benchmarks, want 12", len(suite))
	}
	wantSizes := []int{200, 200, 63, 63, 63, 100, 100, 100, 100, 100, 100, 200}
	for i, b := range suite {
		if b.Index != i+1 {
			t.Errorf("benchmark %d has index %d", i, b.Index)
		}
		if b.Size != wantSizes[i] {
			t.Errorf("benchmark %d size %d, want %d", b.Index, b.Size, wantSizes[i])
		}
		if b.Window.Cols != b.Size || b.Window.Rows != b.Size {
			t.Errorf("benchmark %d window %dx%d != size", b.Index, b.Window.Cols, b.Window.Rows)
		}
	}
}

func TestSuitePaperOutcomePattern(t *testing.T) {
	suite := MustSuite()
	for _, b := range suite {
		wantFast := b.Index >= 3
		wantBase := b.Index >= 3 && b.Index != 7
		if b.Paper.FastSuccess != wantFast {
			t.Errorf("benchmark %d paper fast success = %v", b.Index, b.Paper.FastSuccess)
		}
		if b.Paper.BaselineSuccess != wantBase {
			t.Errorf("benchmark %d paper baseline success = %v", b.Index, b.Paper.BaselineSuccess)
		}
	}
}

func TestTruthMatchesPhysics(t *testing.T) {
	for _, b := range MustSuite() {
		steep := b.Phys.SteepLine().SlopeDV2DV1()
		shallow := b.Phys.ShallowLine().SlopeDV2DV1()
		if math.Abs(steep-b.Truth.SteepSlope) > 1e-9 {
			t.Errorf("benchmark %d: truth steep %v, physics %v", b.Index, b.Truth.SteepSlope, steep)
		}
		if math.Abs(shallow-b.Truth.ShallowSlope) > 1e-9 {
			t.Errorf("benchmark %d: truth shallow %v, physics %v", b.Index, b.Truth.ShallowSlope, shallow)
		}
	}
}

func TestTriplePointInsideWindow(t *testing.T) {
	for _, b := range MustSuite() {
		if b.Truth.TripleV1 <= b.Window.V1Min || b.Truth.TripleV1 >= b.Window.V1Max ||
			b.Truth.TripleV2 <= b.Window.V2Min || b.Truth.TripleV2 >= b.Window.V2Max {
			t.Errorf("benchmark %d triple point (%v,%v) outside window", b.Index,
				b.Truth.TripleV1, b.Truth.TripleV2)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	b := MustSuite()[2] // 63x63, fast to generate
	g1, err := b.Generate()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := b.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Error("two generations of the same benchmark differ")
	}
}

func TestGenerateDistinctAcrossBenchmarks(t *testing.T) {
	suite := MustSuite()
	g3, err := suite[2].Generate()
	if err != nil {
		t.Fatal(err)
	}
	g4, err := suite[3].Generate()
	if err != nil {
		t.Fatal(err)
	}
	if g3.Equal(g4) {
		t.Error("benchmarks 3 and 4 generated identical CSDs")
	}
}

func TestGeneratedCSDShowsChargeRegions(t *testing.T) {
	b := MustSuite()[2]
	g, err := b.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// The anchor preprocessing relies on the brightest diagonal pixel lying
	// inside the (0,0) region (before the triple point), not at the occupied
	// far corner.
	tripleX := b.Window.XOf(b.Truth.TripleV1)
	bestI, bestX := -1.0, 0
	for d := 0; d < g.W; d++ {
		if v := g.At(d, d); v > bestI {
			bestI, bestX = v, d
		}
	}
	if bestX > tripleX {
		t.Errorf("brightest diagonal pixel at %d, beyond the triple point column %d", bestX, tripleX)
	}
}

func TestInstrumentReplaysGeneratedData(t *testing.T) {
	b := MustSuite()[2]
	inst, err := b.Instrument()
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Generate()
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := b.Window.V1At(10), b.Window.V2At(20)
	if got := inst.GetCurrent(v1, v2); got != g.At(10, 20) {
		t.Errorf("instrument read %v, dataset %v", got, g.At(10, 20))
	}
	if inst.Dwell != device.DefaultDwell {
		t.Errorf("dwell = %v, want %v", inst.Dwell, device.DefaultDwell)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	suite := MustSuite()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, suite); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(suite) {
		t.Fatalf("round trip returned %d benchmarks", len(back))
	}
	for i, b := range back {
		orig := suite[i]
		if b.Index != orig.Index || b.Size != orig.Size || b.Seed != orig.Seed {
			t.Errorf("benchmark %d metadata changed in round trip", orig.Index)
		}
		if *b.Phys != *orig.Phys {
			t.Errorf("benchmark %d physics changed in round trip", orig.Index)
		}
		if b.Truth != orig.Truth {
			t.Errorf("benchmark %d truth changed in round trip", orig.Index)
		}
	}
	// A round-tripped benchmark must regenerate identical data.
	g1, _ := suite[2].Generate()
	g2, err := back[2].Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Error("round-tripped benchmark generates different data")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"version":99,"benchmarks":[]}`))); err == nil {
		t.Error("accepted unknown version")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte(`{"version":1,"benchmarks":[{"index":1}]}`))); err == nil {
		t.Error("accepted benchmark without device parameters")
	}
}

func TestMaterialize(t *testing.T) {
	dir := t.TempDir()
	// Materialising only the small benchmarks keeps the test quick.
	suite := MustSuite()[2:5]
	if err := Materialize(dir, suite); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"suite.json", "csd-03.pgm", "csd-03.csv", "csd-05.pgm"} {
		if _, err := readable(dir, name); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
}

func readable(dir, name string) (int64, error) {
	fi, err := os.Stat(filepath.Join(dir, name))
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
