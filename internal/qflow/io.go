package qflow

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// fileFormat wraps the benchmark list with a version for forward
// compatibility of saved suites.
type fileFormat struct {
	Version    int          `json:"version"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

// currentVersion is the on-disk format version.
const currentVersion = 1

// WriteJSON serialises a benchmark suite.
func WriteJSON(w io.Writer, suite []*Benchmark) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fileFormat{Version: currentVersion, Benchmarks: suite})
}

// ReadJSON deserialises a benchmark suite written by WriteJSON.
func ReadJSON(r io.Reader) ([]*Benchmark, error) {
	var f fileFormat
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("qflow: decode: %w", err)
	}
	if f.Version != currentVersion {
		return nil, fmt.Errorf("qflow: unsupported suite version %d", f.Version)
	}
	for _, b := range f.Benchmarks {
		if b.Phys == nil {
			return nil, fmt.Errorf("qflow: benchmark %d missing device parameters", b.Index)
		}
		if err := b.Phys.Validate(); err != nil {
			return nil, fmt.Errorf("qflow: benchmark %d: %w", b.Index, err)
		}
		if err := b.Sens.Validate(); err != nil {
			return nil, fmt.Errorf("qflow: benchmark %d: %w", b.Index, err)
		}
		if err := b.Window.Validate(); err != nil {
			return nil, fmt.Errorf("qflow: benchmark %d: %w", b.Index, err)
		}
	}
	return f.Benchmarks, nil
}

// Materialize writes the suite definition (suite.json), each benchmark's
// generated CSD (csd-NN.pgm) and a CSV copy to dir, creating it if needed.
func Materialize(dir string, suite []*Benchmark) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sf, err := os.Create(filepath.Join(dir, "suite.json"))
	if err != nil {
		return err
	}
	defer sf.Close()
	if err := WriteJSON(sf, suite); err != nil {
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	for _, b := range suite {
		g, err := b.Generate()
		if err != nil {
			return fmt.Errorf("qflow: generate %s: %w", b.Name, err)
		}
		pf, err := os.Create(filepath.Join(dir, b.Name+".pgm"))
		if err != nil {
			return err
		}
		if err := g.WritePGM(pf); err != nil {
			pf.Close()
			return err
		}
		if err := pf.Close(); err != nil {
			return err
		}
		cf, err := os.Create(filepath.Join(dir, b.Name+".csv"))
		if err != nil {
			return err
		}
		if err := g.WriteCSV(cf); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
	}
	return nil
}
