// Package report renders evaluation results as plain-text, Markdown and CSV
// tables, shared by cmd/table1 and the documentation pipeline.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented table with aligned text rendering.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable allocates a table with the given header.
func NewTable(header ...string) *Table {
	return &Table{Header: header}
}

// AddRow appends a row; short rows are padded with empty cells, long rows
// are an error.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) > len(t.Header) {
		return fmt.Errorf("report: row has %d cells, header has %d", len(cells), len(t.Header))
	}
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
	return nil
}

// widths returns the rendered width of each column.
func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// WriteText renders the table with space-aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	ws := t.widths()
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", ws[i], c)
			if i < len(cells)-1 {
				b.WriteString("  ")
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range ws {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the table as GitHub-flavoured Markdown.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		escaped := make([]string, len(row))
		for i, c := range row {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as RFC 4180 CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Format names an output format accepted by Write.
type Format string

// Supported formats.
const (
	FormatText     Format = "text"
	FormatMarkdown Format = "markdown"
	FormatCSV      Format = "csv"
)

// Write renders the table in the requested format.
func (t *Table) Write(w io.Writer, f Format) error {
	switch f {
	case FormatText, "":
		return t.WriteText(w)
	case FormatMarkdown:
		return t.WriteMarkdown(w)
	case FormatCSV:
		return t.WriteCSV(w)
	default:
		return fmt.Errorf("report: unknown format %q", f)
	}
}
