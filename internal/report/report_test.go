package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample(t *testing.T) *Table {
	t.Helper()
	tb := NewTable("CSD", "Fast", "Speedup")
	if err := tb.AddRow("3", "Success", "6.18x"); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow("1", "Fail"); err != nil { // short row pads
		t.Fatal(err)
	}
	return tb
}

func TestAddRowRejectsLong(t *testing.T) {
	tb := NewTable("a", "b")
	if err := tb.AddRow("1", "2", "3"); err == nil {
		t.Error("accepted over-long row")
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := sample(t).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("text output has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "CSD") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[2], "Success") {
		t.Errorf("row line = %q", lines[2])
	}
	// Columns align: "Fast" starts at the same offset in header and rows.
	hIdx := strings.Index(lines[0], "Fast")
	rIdx := strings.Index(lines[2], "Success")
	if hIdx != rIdx {
		t.Errorf("columns misaligned: header offset %d, row offset %d", hIdx, rIdx)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sample(t).WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "| CSD | Fast | Speedup |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Errorf("markdown separator missing:\n%s", out)
	}
	if !strings.Contains(out, "| 3 | Success | 6.18x |") {
		t.Errorf("markdown row missing:\n%s", out)
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tb := NewTable("col")
	if err := tb.AddRow("a|b"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `a\|b`) {
		t.Errorf("pipe not escaped:\n%s", buf.String())
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample(t).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != "CSD,Fast,Speedup" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if lines[2] != "1,Fail," {
		t.Errorf("padded CSV row = %q", lines[2])
	}
}

func TestWriteDispatch(t *testing.T) {
	tb := sample(t)
	for _, f := range []Format{FormatText, FormatMarkdown, FormatCSV, ""} {
		var buf bytes.Buffer
		if err := tb.Write(&buf, f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %q produced no output", f)
		}
	}
	var buf bytes.Buffer
	if err := tb.Write(&buf, "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}
