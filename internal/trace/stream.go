// Streaming trace iteration. A Scanner walks one trace file's samples
// frame by frame without loading the whole file; ForEach walks every trace
// under a directory. Surrogate training reads entire trace directories —
// possibly far larger than memory — which is why this exists alongside the
// load-everything Read/Decode pair.

package trace

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"github.com/fastvg/fastvg/internal/store"
)

// Scanner iterates one trace file's samples in recorded order, decoding one
// CRC frame (at most samplesPerFrame samples) at a time.
//
//	sc, err := trace.OpenScanner(path)
//	defer sc.Close()
//	for sc.Next() {
//		s := sc.Sample()
//		...
//	}
//	err = sc.Err()
type Scanner struct {
	f    *os.File
	br   *bufio.Reader
	meta Meta
	buf  []Sample
	idx  int
	cur  Sample
	err  error
}

// OpenScanner opens a trace file and decodes its meta frame; samples are
// then streamed via Next.
func OpenScanner(path string) (*Scanner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	br := bufio.NewReaderSize(f, 64<<10)
	if err := store.ReadFileHeader(br, store.TraceMagic); err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %w", err)
	}
	mb, err := store.ReadFrame(br)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %w", err)
	}
	if mb == nil {
		f.Close()
		return nil, errors.New("trace: missing meta frame")
	}
	var meta Meta
	if err := json.Unmarshal(mb, &meta); err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: meta: %w", err)
	}
	return &Scanner{f: f, br: br, meta: meta}, nil
}

// Meta returns the trace's meta frame.
func (s *Scanner) Meta() Meta { return s.meta }

// Next advances to the next sample, reporting false at the end of the file
// or on error (check Err to tell the two apart).
func (s *Scanner) Next() bool {
	if s.err != nil {
		return false
	}
	for s.idx >= len(s.buf) {
		payload, err := store.ReadFrame(s.br)
		if err != nil {
			s.err = fmt.Errorf("trace: %w", err)
			return false
		}
		if payload == nil {
			return false
		}
		buf, err := decodeSamples(payload, s.buf[:0])
		if err != nil {
			s.err = err
			return false
		}
		s.buf, s.idx = buf, 0
	}
	s.cur = s.buf[s.idx]
	s.idx++
	return true
}

// Sample returns the sample Next advanced to.
func (s *Scanner) Sample() Sample { return s.cur }

// Err returns the first decode error, if any.
func (s *Scanner) Err() error { return s.err }

// Close releases the underlying file.
func (s *Scanner) Close() error { return s.f.Close() }

// ForEach streams every sample of every trace under dir, in List order.
// keep, when non-nil, filters whole traces by meta before any sample frame
// of theirs is read; fn receives the owning trace's meta alongside each
// sample and aborts the walk by returning an error.
func ForEach(dir string, keep func(*Meta) bool, fn func(*Meta, Sample) error) error {
	paths, err := List(dir)
	if err != nil {
		return err
	}
	for _, path := range paths {
		sc, err := OpenScanner(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		meta := sc.Meta()
		if keep != nil && !keep(&meta) {
			sc.Close()
			continue
		}
		for sc.Next() {
			if err := fn(&meta, sc.Sample()); err != nil {
				sc.Close()
				return err
			}
		}
		err = sc.Err()
		sc.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}
