package trace

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/fastvg/fastvg/internal/csd"
)

func sampleTrace(n int, pair *int) (Meta, []Sample) {
	meta := Meta{
		Hash:   "deadbeef",
		Window: csd.NewSquareWindow(0, 0, 50, 10),
		Pair:   pair,
	}
	var samples []Sample
	for i := 0; i < n; i++ {
		samples = append(samples, Sample{
			V:         []float64{float64(i), float64(i) / 2},
			I:         math.Sqrt(float64(i + 1)),
			Unique:    i%3 != 0,
			VirtualNS: int64(i) * 50e6,
		})
	}
	return meta, samples
}

// The Scanner must yield exactly what the load-everything path decodes, in
// order, including across the samplesPerFrame frame boundary.
func TestScannerMatchesRead(t *testing.T) {
	dir := t.TempDir()
	meta, samples := sampleTrace(samplesPerFrame*2+17, nil)
	path, err := Write(dir, meta, samples)
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}

	sc, err := OpenScanner(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if sc.Meta().Hash != meta.Hash || sc.Meta().Window != meta.Window {
		t.Fatalf("scanner meta %+v", sc.Meta())
	}
	var got []Sample
	for sc.Next() {
		got = append(got, sc.Sample())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d samples, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i].I) != math.Float64bits(want[i].I) ||
			got[i].Unique != want[i].Unique || got[i].VirtualNS != want[i].VirtualNS ||
			len(got[i].V) != len(want[i].V) || got[i].V[0] != want[i].V[0] || got[i].V[1] != want[i].V[1] {
			t.Fatalf("sample %d diverged: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestScannerRejectsTruncation(t *testing.T) {
	dir := t.TempDir()
	meta, samples := sampleTrace(100, nil)
	path, err := Write(dir, meta, samples)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut"+Ext)
	if err := os.WriteFile(cut, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := OpenScanner(cut)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	for sc.Next() {
	}
	if sc.Err() == nil {
		t.Fatal("scanner accepted a torn trace")
	}
}

// ForEach must visit every sample of kept traces and skip filtered ones
// without reading their sample frames.
func TestForEachFilters(t *testing.T) {
	dir := t.TempDir()
	pair := 1
	metaA, samplesA := sampleTrace(40, nil)
	metaB, samplesB := sampleTrace(60, &pair)
	metaB.Hash = "cafe"
	if _, err := Write(dir, metaA, samplesA); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(dir, metaB, samplesB); err != nil {
		t.Fatal(err)
	}

	count := 0
	err := ForEach(dir, func(m *Meta) bool { return m.Pair == nil }, func(m *Meta, s Sample) error {
		if m.Hash != metaA.Hash {
			t.Fatalf("visited filtered trace %q", m.Hash)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(samplesA) {
		t.Fatalf("visited %d samples, want %d", count, len(samplesA))
	}
}
