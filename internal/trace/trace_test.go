package trace

import (
	"math"
	"os"
	"testing"
	"time"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

func testInstrument(t *testing.T) (*device.SimInstrument, [2]int) {
	t.Helper()
	spec := &device.DoubleDotSpec{
		Pixels: 40,
		Seed:   11,
		Noise:  noise.Params{WhiteSigma: 0.01, PinkAmp: 0.012},
	}
	inst, win, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst, [2]int{win.Cols, win.Rows}
}

// TestRecordReplayBitIdentical probes a noisy instrument through a
// Recorder, then replays the trace: every current and the full Stats
// trajectory must come back bit-identical with zero live probes.
func TestRecordReplayBitIdentical(t *testing.T) {
	inst, dims := testInstrument(t)
	rec := NewRecorder(inst)

	var want []float64
	for y := 0; y < dims[1]; y += 3 {
		for x := 0; x < dims[0]; x += 2 {
			v1, v2 := float64(x)*0.5, float64(y)*0.5
			want = append(want, rec.GetCurrent(v1, v2))
			if x%4 == 0 { // re-probe: a memo hit, recorded as non-unique
				want = append(want, rec.GetCurrent(v1, v2))
			}
		}
	}
	meta := Meta{Hash: "test"}
	path, err := Write(t.TempDir(), meta, rec.Samples())
	if err != nil {
		t.Fatal(err)
	}
	gotMeta, samples, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Hash != "test" {
		t.Fatalf("meta hash = %q", gotMeta.Hash)
	}
	if len(samples) != len(want) {
		t.Fatalf("samples = %d, want %d", len(samples), len(want))
	}

	rp := NewReplayer(gotMeta, samples)
	i := 0
	for y := 0; y < dims[1]; y += 3 {
		for x := 0; x < dims[0]; x += 2 {
			v1, v2 := float64(x)*0.5, float64(y)*0.5
			if got := rp.GetCurrent(v1, v2); math.Float64bits(got) != math.Float64bits(want[i]) {
				t.Fatalf("replayed current %d = %v, want %v", i, got, want[i])
			}
			i++
			if x%4 == 0 {
				if got := rp.GetCurrent(v1, v2); math.Float64bits(got) != math.Float64bits(want[i]) {
					t.Fatalf("replayed repeat %d = %v, want %v", i, got, want[i])
				}
				i++
			}
		}
	}
	if err := rp.Err(); err != nil {
		t.Fatal(err)
	}
	if rp.Remaining() != 0 {
		t.Fatalf("%d samples never replayed", rp.Remaining())
	}
	live, replayed := inst.Stats(), rp.Stats()
	if live.UniqueProbes != replayed.UniqueProbes || live.RawCalls != replayed.RawCalls || live.Virtual != replayed.Virtual {
		t.Fatalf("stats diverged: live %+v, replayed %+v", live, replayed)
	}
}

// TestReplayerBaseStats replays a trace recorded on an instrument with
// prior history: deltas across the replay must match the live deltas.
func TestReplayerBaseStats(t *testing.T) {
	inst, _ := testInstrument(t)
	inst.GetCurrent(1, 1) // prior history
	inst.GetCurrent(2, 2)
	rec := NewRecorder(inst)
	before := rec.Stats()
	rec.GetCurrent(3, 3)
	rec.GetCurrent(3, 3)
	after := rec.Stats()

	meta := Meta{
		BaseUniqueProbes: rec.Base().UniqueProbes,
		BaseRawCalls:     rec.Base().RawCalls,
		BaseVirtualNS:    int64(rec.Base().Virtual),
	}
	rp := NewReplayer(meta, rec.Samples())
	rpBefore := rp.Stats()
	rp.GetCurrent(3, 3)
	rp.GetCurrent(3, 3)
	rpAfter := rp.Stats()
	if d, rd := after.UniqueProbes-before.UniqueProbes, rpAfter.UniqueProbes-rpBefore.UniqueProbes; d != rd {
		t.Fatalf("unique delta %d, replayed %d", d, rd)
	}
	if d, rd := after.Virtual-before.Virtual, rpAfter.Virtual-rpBefore.Virtual; d != rd {
		t.Fatalf("virtual delta %v, replayed %v", d, rd)
	}
}

func TestReplayerMismatch(t *testing.T) {
	meta := Meta{}
	samples := []Sample{{V: []float64{1, 2}, I: 0.5, Unique: true, VirtualNS: int64(50 * time.Millisecond)}}
	rp := NewReplayer(meta, samples)
	rp.GetCurrent(9, 9)
	if rp.Err() == nil {
		t.Fatal("want voltage-mismatch error")
	}

	rp = NewReplayer(meta, samples)
	rp.GetCurrent(1, 2)
	rp.GetCurrent(1, 2)
	if rp.Err() == nil {
		t.Fatal("want exhaustion error")
	}
}

func TestRecorderSampleShape(t *testing.T) {
	inst, _ := testInstrument(t)
	rec := NewRecorder(inst)
	rec.GetCurrent(0.25, 0.75)
	s := rec.Samples()[0]
	if len(s.V) != 2 || s.V[0] != 0.25 || s.V[1] != 0.75 || !s.Unique || s.VirtualNS == 0 {
		t.Fatalf("sample = %+v", s)
	}
}

func TestRecorderN(t *testing.T) {
	phys, err := physics.UniformChain(3, 4, 0.3, 0.08, 0.12, 0.3, -2.0)
	if err != nil {
		t.Fatal(err)
	}
	sens := sensor.Params{
		Base: 0.05, PeakAmp: 1, PeakPos: 1.6, PeakWidth: 1,
		Kappa:  []float64{0.002, 0.002, 0.002},
		Lambda: []float64{0.3, 0.3, 0.3},
	}
	inst := device.NewMultiInstrument(&device.ArrayDevice{Phys: phys, Sens: sens}, 50*time.Millisecond, 0.5)
	rec := NewRecorderN(inst)
	v := []float64{1.25, 0.5, -0.75}
	i1 := rec.GetCurrentN(v)
	i2 := rec.GetCurrentN(v) // memoised
	samples := rec.Samples()
	if len(samples) != 2 {
		t.Fatalf("%d samples, want 2", len(samples))
	}
	if !samples[0].Unique || samples[1].Unique {
		t.Fatalf("unique flags = %v, %v", samples[0].Unique, samples[1].Unique)
	}
	if samples[0].I != i1 || samples[1].I != i2 || len(samples[0].V) != 3 {
		t.Fatalf("samples = %+v", samples)
	}
	// Mutating the caller's voltage slice must not corrupt the recording.
	v[0] = 99
	if samples[0].V[0] != 1.25 {
		t.Fatal("recorded voltages alias the caller's slice")
	}

	// N-gate round trip: write, read, replay through GetCurrentN.
	path, err := Write(t.TempDir(), Meta{Hash: "n"}, samples)
	if err != nil {
		t.Fatal(err)
	}
	meta, loaded, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewReplayer(meta, loaded)
	v = []float64{1.25, 0.5, -0.75}
	if got := rp.GetCurrentN(v); got != i1 {
		t.Fatalf("replayed N-gate current = %v, want %v", got, i1)
	}
	if got := rp.GetCurrentN(v); got != i2 {
		t.Fatalf("replayed N-gate repeat = %v, want %v", got, i2)
	}
	if rp.Err() != nil || rp.Remaining() != 0 {
		t.Fatalf("replay err=%v remaining=%d", rp.Err(), rp.Remaining())
	}
	if rp.Stats() != inst.Stats() {
		t.Fatalf("replayed stats %+v, live %+v", rp.Stats(), inst.Stats())
	}
}

func TestEncodeGateLimit(t *testing.T) {
	if _, err := Encode(Meta{}, []Sample{{V: make([]float64, MaxGates+1)}}); err == nil {
		t.Fatal("want error past MaxGates")
	}
	if _, err := Encode(Meta{}, []Sample{{V: make([]float64, MaxGates)}}); err != nil {
		t.Fatal(err)
	}
}

func TestContentAddressedDedup(t *testing.T) {
	inst, _ := testInstrument(t)
	rec := NewRecorder(inst)
	rec.GetCurrent(1, 1)
	dir := t.TempDir()
	p1, err := Write(dir, Meta{Hash: "h"}, rec.Samples())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Write(dir, Meta{Hash: "h"}, rec.Samples())
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("identical traces got different paths: %s, %s", p1, p2)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("%d files, want 1", len(ents))
	}
	paths, err := List(dir)
	if err != nil || len(paths) != 1 || paths[0] != p1 {
		t.Fatalf("List = %v, %v", paths, err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	inst, _ := testInstrument(t)
	rec := NewRecorder(inst)
	for i := 0; i < 50; i++ {
		rec.GetCurrent(float64(i)*0.5, 1)
	}
	buf, err := Encode(Meta{Hash: "h"}, rec.Samples())
	if err != nil {
		t.Fatal(err)
	}
	// A trace is an artifact, not a crash log: any truncation must surface
	// as an error (other than cutting only trailing whole frames cleanly),
	// never a panic.
	for cut := 0; cut < len(buf); cut++ {
		_, samples, err := Decode(buf[:cut])
		if err == nil && len(samples) == len(rec.Samples()) {
			t.Fatalf("cut %d: full trace decoded from truncation", cut)
		}
	}
	if _, _, err := Decode(buf); err != nil {
		t.Fatal(err)
	}
}
