// Package trace records and replays instrument probe traces. A Recorder
// wraps any instrument and logs every (voltages, time, current) sample; the
// samples are written to a content-addressed trace file; a Replayer serves
// them back bit-identically, so a recorded extraction can be re-executed
// offline — zero live-instrument probes — and must reproduce the same
// virtual-gate matrix byte for byte.
//
// Recording deliberately exposes only the scalar probing interface
// (GetCurrent / GetCurrentN plus Stats): the batch fast paths are hidden
// from the pipelines, which therefore fall back to per-probe calls. By the
// batch contract of internal/device that fallback is bit-identical to the
// batched paths — same currents, same Stats, same noise realisation — so a
// recorded extraction computes exactly the result an unrecorded one would
// have; it only forgoes the batch-path speed while recording.
//
// Trace files share internal/store's frame codec and FormatVersion: a
// header (magic "FVGT" + version), one JSON meta frame, then binary sample
// frames. The file name is the hex prefix of the SHA-256 of the encoded
// contents, so identical recordings deduplicate on disk.
package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/store"
)

// Ext is the trace file extension.
const Ext = ".fvgt"

// samplesPerFrame bounds one binary frame; large traces split across frames.
const samplesPerFrame = 1024

// MaxGates bounds a sample's gate-voltage arity, enforced symmetrically by
// Encode and the decoder (which uses it to reject corrupt counts before
// allocating).
const MaxGates = 64

// Sample is one recorded instrument call.
type Sample struct {
	V []float64 // requested gate voltages (2 for double-dot instruments)
	I float64   // measured current
	// Unique marks calls that consumed a new dwell (a memo miss on the
	// underlying instrument); replay uses it to reproduce probe accounting.
	Unique bool
	// VirtualNS is the instrument's virtual clock (ns) after the call.
	VirtualNS int64
}

// Truth carries the ground-truth slopes for scoring a replayed extraction.
type Truth struct {
	Steep   float64 `json:"steep"`
	Shallow float64 `json:"shallow"`
}

// Meta describes a recorded extraction. Request and Result are opaque here
// (they are service-layer JSON) so this package stays below the service in
// the dependency order.
type Meta struct {
	Hash    string          `json:"hash"`              // canonical request hash
	Request json.RawMessage `json:"request,omitempty"` // normalized service request
	Result  json.RawMessage `json:"result,omitempty"`  // recorded service result
	Window  csd.Window      `json:"window"`
	Truth   *Truth          `json:"truth,omitempty"`
	// Pair, when set, marks a chain job's per-pair trace: Request is the
	// full chain request, Result the recorded PairResult of this pair, and
	// replay re-executes only this pair's escalation ladder.
	Pair *int `json:"pair,omitempty"`
	// Base is the wrapped instrument's accounting when recording began;
	// replay starts from it so before/after deltas reproduce exactly even
	// for instruments with prior history (session devices).
	BaseUniqueProbes int   `json:"baseUniqueProbes,omitempty"`
	BaseRawCalls     int   `json:"baseRawCalls,omitempty"`
	BaseVirtualNS    int64 `json:"baseVirtualNS,omitempty"`
	// Surrogate, when set, records that a surrogate.Hybrid sat between the
	// pipeline and the Recorder, so the sample stream holds only the
	// escalated probes; replay rebuilds the same Hybrid from the snapshot.
	Surrogate *SurrogateMeta `json:"surrogate,omitempty"`
}

// SurrogateMeta captures the surrogate composition active while recording:
// the twin's encoded snapshot as of recording start plus the escalation
// knobs. Rebuilding the same Hybrid over a Replayer reproduces the same
// serve/escalate decisions — the twin's evolution is deterministic in the
// escalated currents, which the trace holds — so surrogate extractions
// replay bit-identically.
type SurrogateMeta struct {
	Model     []byte  `json:"model"` // surrogate.Model.Encode at recording start
	Threshold float64 `json:"threshold"`
	Learn     bool    `json:"learn,omitempty"`
}

// Instrument is what a Recorder wraps: two-gate probing with cost
// accounting (device.SimInstrument, device.DatasetInstrument, or anything
// satisfying the same contract).
type Instrument interface {
	device.Instrument
	Stats() device.Stats
}

// Recorder wraps an Instrument, recording every GetCurrent call. It
// implements the same Instrument contract and intentionally nothing more —
// see the package comment for why hiding the batch interfaces is sound.
type Recorder struct {
	inst    Instrument
	base    device.Stats
	last    device.Stats
	samples []Sample
}

// NewRecorder returns a recorder over inst.
func NewRecorder(inst Instrument) *Recorder {
	st := inst.Stats()
	return &Recorder{inst: inst, base: st, last: st}
}

// GetCurrent probes the wrapped instrument and records the sample.
func (r *Recorder) GetCurrent(v1, v2 float64) float64 {
	i := r.inst.GetCurrent(v1, v2)
	after := r.inst.Stats()
	r.samples = append(r.samples, Sample{
		V:         []float64{v1, v2},
		I:         i,
		Unique:    after.UniqueProbes > r.last.UniqueProbes,
		VirtualNS: int64(after.Virtual),
	})
	r.last = after
	return i
}

// Stats delegates to the wrapped instrument.
func (r *Recorder) Stats() device.Stats { return r.inst.Stats() }

// Samples returns the recorded samples (shared, not copied).
func (r *Recorder) Samples() []Sample { return r.samples }

// Base returns the wrapped instrument's accounting at recording start.
func (r *Recorder) Base() device.Stats { return r.base }

// RecorderN wraps a device.MultiInstrument-shaped N-gate instrument.
type RecorderN struct {
	inst interface {
		GetCurrentN(v []float64) float64
		Stats() device.Stats
	}
	base    device.Stats
	last    device.Stats
	samples []Sample
}

// NewRecorderN returns a recorder over an N-gate instrument.
func NewRecorderN(inst interface {
	GetCurrentN(v []float64) float64
	Stats() device.Stats
}) *RecorderN {
	st := inst.Stats()
	return &RecorderN{inst: inst, base: st, last: st}
}

// GetCurrentN probes the wrapped instrument and records the sample.
func (r *RecorderN) GetCurrentN(v []float64) float64 {
	i := r.inst.GetCurrentN(v)
	after := r.inst.Stats()
	r.samples = append(r.samples, Sample{
		V:         append([]float64(nil), v...),
		I:         i,
		Unique:    after.UniqueProbes > r.last.UniqueProbes,
		VirtualNS: int64(after.Virtual),
	})
	r.last = after
	return i
}

// Stats delegates to the wrapped instrument.
func (r *RecorderN) Stats() device.Stats { return r.inst.Stats() }

// Samples returns the recorded samples (shared, not copied).
func (r *RecorderN) Samples() []Sample { return r.samples }

// Replayer serves a recorded sample stream back as an Instrument. Probes
// must arrive in recorded order with exactly the recorded voltages — the
// pipelines are deterministic, so a faithful re-execution does — and each
// returns the recorded current while replaying the recorded accounting. A
// mismatch or exhaustion latches an error (GetCurrent cannot return one);
// check Err after the run. It never touches a live instrument.
type Replayer struct {
	samples []Sample
	pos     int
	stats   device.Stats
	err     error
}

// NewReplayer builds a replayer starting from meta's base accounting.
func NewReplayer(meta Meta, samples []Sample) *Replayer {
	return &Replayer{
		samples: samples,
		stats: device.Stats{
			UniqueProbes: meta.BaseUniqueProbes,
			RawCalls:     meta.BaseRawCalls,
			Virtual:      time.Duration(meta.BaseVirtualNS),
		},
	}
}

// GetCurrent implements device.Instrument over the recorded stream.
func (p *Replayer) GetCurrent(v1, v2 float64) float64 {
	return p.next(v1, v2)
}

// GetCurrentN replays an N-gate recording (the RecorderN counterpart),
// mirroring device.MultiInstrument's probing contract.
func (p *Replayer) GetCurrentN(v []float64) float64 {
	return p.next(v...)
}

func (p *Replayer) next(v ...float64) float64 {
	if p.err != nil {
		return 0
	}
	if p.pos >= len(p.samples) {
		p.err = fmt.Errorf("trace: exhausted after %d samples (extra probe at %v)", len(p.samples), v)
		return 0
	}
	s := p.samples[p.pos]
	if len(s.V) != len(v) {
		p.err = fmt.Errorf("trace: probe %d mismatch: requested %d gates, recorded %d", p.pos, len(v), len(s.V))
		return 0
	}
	for i := range v {
		if s.V[i] != v[i] {
			p.err = fmt.Errorf("trace: probe %d mismatch: requested %v, recorded %v", p.pos, v, s.V)
			return 0
		}
	}
	p.pos++
	p.stats.RawCalls++
	if s.Unique {
		p.stats.UniqueProbes++
	}
	p.stats.Virtual = time.Duration(s.VirtualNS)
	return s.I
}

// Stats implements the accounting side of the Instrument contract.
func (p *Replayer) Stats() device.Stats { return p.stats }

// Err returns the first replay divergence, if any.
func (p *Replayer) Err() error { return p.err }

// Consumed returns how many samples have been served.
func (p *Replayer) Consumed() int { return p.pos }

// Remaining returns how many recorded samples were never requested.
func (p *Replayer) Remaining() int { return len(p.samples) - p.pos }

// Encode renders a complete trace file (header, meta frame, sample frames).
func Encode(meta Meta, samples []Sample) ([]byte, error) {
	for i, s := range samples {
		if len(s.V) > MaxGates {
			return nil, fmt.Errorf("trace: sample %d has %d gate voltages, limit %d", i, len(s.V), MaxGates)
		}
	}
	mb, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	buf := store.AppendFileHeader(nil, store.TraceMagic)
	buf = store.AppendFrame(buf, mb)
	for off := 0; off < len(samples); off += samplesPerFrame {
		end := off + samplesPerFrame
		if end > len(samples) {
			end = len(samples)
		}
		buf = store.AppendFrame(buf, appendSamples(nil, samples[off:end]))
	}
	return buf, nil
}

func appendSamples(buf []byte, samples []Sample) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(samples)))
	for _, s := range samples {
		buf = binary.AppendUvarint(buf, uint64(len(s.V)))
		for _, v := range s.V {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.I))
		flags := byte(0)
		if s.Unique {
			flags = 1
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, uint64(s.VirtualNS))
	}
	return buf
}

func decodeSamples(p []byte, out []Sample) ([]Sample, error) {
	torn := func() ([]Sample, error) { return nil, fmt.Errorf("trace: %w: sample frame", store.ErrTorn) }
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return torn()
	}
	p = p[n:]
	for i := uint64(0); i < count; i++ {
		nv, n := binary.Uvarint(p)
		if n <= 0 || nv > MaxGates {
			return torn()
		}
		p = p[n:]
		if len(p) < int(nv+1)*8+1 {
			return torn()
		}
		s := Sample{V: make([]float64, nv)}
		for j := range s.V {
			s.V[j] = math.Float64frombits(binary.LittleEndian.Uint64(p))
			p = p[8:]
		}
		s.I = math.Float64frombits(binary.LittleEndian.Uint64(p))
		p = p[8:]
		s.Unique = p[0]&1 != 0
		p = p[1:]
		ns, n := binary.Uvarint(p)
		if n <= 0 {
			return torn()
		}
		s.VirtualNS = int64(ns)
		p = p[n:]
		out = append(out, s)
	}
	if len(p) != 0 {
		return torn()
	}
	return out, nil
}

// Write encodes the trace and writes it content-addressed under dir: the
// file name is the hex prefix of the SHA-256 of the encoded bytes, written
// via a temp file + rename so readers never observe a partial trace.
// Returns the final path.
func Write(dir string, meta Meta, samples []Sample) (string, error) {
	buf, err := Encode(meta, samples)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("trace: %w", err)
	}
	sum := sha256.Sum256(buf)
	path := filepath.Join(dir, hex.EncodeToString(sum[:12])+Ext)
	if _, err := os.Stat(path); err == nil {
		return path, nil // content-addressed: identical recording already on disk
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return "", fmt.Errorf("trace: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("trace: %w", err)
	}
	return path, nil
}

// Decode parses an encoded trace.
func Decode(b []byte) (Meta, []Sample, error) {
	rest, err := store.CheckFileHeader(b, store.TraceMagic)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("trace: %w", err)
	}
	mb, rest, err := store.NextFrame(rest)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("trace: %w", err)
	}
	if mb == nil {
		return Meta{}, nil, errors.New("trace: missing meta frame")
	}
	var meta Meta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return Meta{}, nil, fmt.Errorf("trace: meta: %w", err)
	}
	var samples []Sample
	for {
		payload, next, err := store.NextFrame(rest)
		if err != nil {
			return Meta{}, nil, fmt.Errorf("trace: %w", err)
		}
		if payload == nil {
			return meta, samples, nil
		}
		if samples, err = decodeSamples(payload, samples); err != nil {
			return Meta{}, nil, err
		}
		rest = next
	}
}

// Read loads a trace file.
func Read(path string) (Meta, []Sample, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("trace: %w", err)
	}
	return Decode(b)
}

// List returns the trace files under dir, sorted by name. A missing
// directory lists empty.
func List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var out []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == Ext {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out, nil
}
