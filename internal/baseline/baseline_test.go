package baseline

import (
	"errors"
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/imaging"
)

// synthCSD builds a clean CSD grid with the two standard transition lines.
func synthCSD(n int, xa, yb, mSteep, mShallow, faintFrac float64) *grid.Grid {
	g := grid.New(n, n)
	g.Apply(func(x, y int, _ float64) float64 {
		fx, fy := float64(x), float64(y)
		c := 2.0 + 0.004*(fx+fy)
		if fx > xa+fy/mSteep {
			c -= 0.8
		}
		if fy > yb+mShallow*fx {
			c -= 0.8 * faintFrac
		}
		return c
	})
	return g
}

func squareWin(n int) csd.Window { return csd.NewSquareWindow(0, 0, float64(n), n) }

func angleErr(got, want float64) float64 {
	return math.Abs(math.Atan(got)-math.Atan(want)) * 180 / math.Pi
}

func TestExtractFromGridClean(t *testing.T) {
	g := synthCSD(100, 70, 64, -8, -0.12, 1)
	res, err := ExtractFromGrid(g, squareWin(100), Config{})
	if err != nil {
		t.Fatalf("baseline failed on clean CSD: %v", err)
	}
	if e := angleErr(res.SteepSlope, -8); e > 3 {
		t.Errorf("steep %v (Δ%.2f°)", res.SteepSlope, e)
	}
	if e := angleErr(res.ShallowSlope, -0.12); e > 3 {
		t.Errorf("shallow %v (Δ%.2f°)", res.ShallowSlope, e)
	}
	if res.Knee.X < 50 || res.Knee.X > 75 || res.Knee.Y < 45 || res.Knee.Y > 70 {
		t.Errorf("knee %v implausible", res.Knee)
	}
}

func TestExtractProbesEveryPoint(t *testing.T) {
	n := 0
	src := countingGetter{n: &n}
	if _, err := Extract(src, squareWin(48), Config{}); err != nil {
		// Extraction may fail on the flat data; the probe count is the point.
		_ = err
	}
	if n != 48*48 {
		t.Errorf("baseline probed %d points, want full raster %d", n, 48*48)
	}
}

type countingGetter struct{ n *int }

func (c countingGetter) GetCurrent(v1, v2 float64) float64 {
	*c.n++
	return v1 + v2
}

func TestFaintLineDefeatsBaseline(t *testing.T) {
	// 4% contrast on the shallow line: below the ratio thresholds set by the
	// strong steep line — the paper's CSD 7 baseline failure.
	g := synthCSD(100, 70, 64, -8, -0.12, 0.04)
	_, err := ExtractFromGrid(g, squareWin(100), Config{})
	if !errors.Is(err, ErrNoLine) {
		t.Errorf("err = %v, want ErrNoLine", err)
	}
}

func TestMissingSteepLine(t *testing.T) {
	// Only a shallow line present.
	g := grid.New(80, 80)
	g.Apply(func(x, y int, _ float64) float64 {
		if float64(y) > 60-0.15*float64(x) {
			return 1
		}
		return 2
	})
	_, err := ExtractFromGrid(g, squareWin(80), Config{})
	if !errors.Is(err, ErrNoLine) {
		t.Errorf("err = %v, want ErrNoLine", err)
	}
}

func TestRefinementImprovesSlope(t *testing.T) {
	g := synthCSD(100, 70, 64, -9, -0.1, 1)
	win := squareWin(100)
	refined, err := ExtractFromGrid(g, win, Config{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ExtractFromGrid(g, win, Config{NoRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	if angleErr(refined.SteepSlope, -9) > angleErr(raw.SteepSlope, -9)+0.5 {
		t.Errorf("refinement made steep slope worse: %.2f° vs %.2f°",
			angleErr(refined.SteepSlope, -9), angleErr(raw.SteepSlope, -9))
	}
}

func TestPickPeakTakesFirstMatching(t *testing.T) {
	// Peaks arrive strongest-first; pickPeak must return the first one whose
	// slope matches the class, skipping non-matching stronger peaks.
	steepLine := houghFromSlope(-7)
	shallowLine := houghFromSlope(-0.2)
	peaks := []imaging.HoughLine{shallowLine, steepLine}
	got, ok := pickPeak(peaks, func(s float64) bool { return s < -1 })
	if !ok {
		t.Fatal("steep peak not found")
	}
	if angleErr(got.Slope(), -7) > 0.1 {
		t.Errorf("picked slope %v, want ~-7", got.Slope())
	}
	if _, ok := pickPeak(peaks, func(s float64) bool { return s > 0 }); ok {
		t.Error("found a peak in an empty class")
	}
}

// houghFromSlope builds a HoughLine with the given dy/dx through the origin.
func houghFromSlope(m float64) imaging.HoughLine {
	// Normal direction of y = m·x is (m, -1) normalised; θ measured with
	// ρ = x·cosθ + y·sinθ. Choose θ = atan2(-1, m) mod π.
	th := math.Atan2(-1, m)
	if th < 0 {
		th += math.Pi
	}
	return imaging.HoughLine{Rho: 0, Theta: th}
}

func TestNonPhysicalRejected(t *testing.T) {
	// Two steep lines, no shallow one: classification finds steep but not
	// shallow, or picks a non-physical pair — either way extraction errs.
	g := grid.New(80, 80)
	g.Apply(func(x, y int, _ float64) float64 {
		c := 2.0
		if float64(y) > -6*(float64(x)-30) {
			c -= 0.8
		}
		if float64(y) > -6*(float64(x)-60) {
			c -= 0.8
		}
		return c
	})
	if _, err := ExtractFromGrid(g, squareWin(80), Config{}); err == nil {
		t.Error("accepted CSD with two steep lines and no shallow line")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.MaxPeaks != 8 || c.MinVotesFrac != 0.25 || c.RefineDist != 2 {
		t.Errorf("defaults = %+v", c)
	}
	if c.Canny.Sigma == 0 || c.Hough.ThetaStep == 0 {
		t.Error("sub-config defaults not filled")
	}
}
