// Package baseline implements the comparison method of the paper's
// evaluation: acquire the complete charge stability diagram, detect edges
// with Canny, extract the two transition lines with a Hough transform, and
// build the virtualization matrix from their slopes (the technique of Mills
// et al. 2019 and Oakes et al. 2020, reimplemented from scratch).
package baseline

import (
	"errors"
	"fmt"
	"math"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/fitting"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/imaging"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// Sentinel errors; the harness counts each as a failed extraction.
var (
	// ErrNoLine: edge detection / Hough voting could not establish one of
	// the two transition lines (the paper's CSD 7 baseline failure).
	ErrNoLine = errors.New("baseline: could not locate both transition lines")
	// ErrNonPhysical: lines found but violating the physics prior.
	ErrNonPhysical = errors.New("baseline: extracted lines violate the physics prior")
)

// Config tunes the baseline; the zero value uses the defaults documented in
// DESIGN.md.
type Config struct {
	Canny imaging.CannyConfig
	Hough imaging.HoughConfig

	MaxPeaks      int     // Hough peaks considered (default 8)
	MinVotesFrac  float64 // min votes as a fraction of the window side (default 0.25)
	SuppressTheta int     // peak suppression half-width in θ bins (default 8)
	SuppressRho   int     // ... in ρ bins (default 10)

	// Refine re-fits each chosen line by total least squares over the edge
	// pixels within RefineDist of it (default on, dist 2 px).
	NoRefine   bool
	RefineDist float64

	// RenderWorkers budgets the full-CSD acquisition's parallel render:
	// 0 = one worker per CPU, 1 = serial, n = n workers. The acquired grid
	// is bit-identical at any setting — only wall-clock time changes.
	RenderWorkers int
}

func (c *Config) fillDefaults() {
	if c.Canny == (imaging.CannyConfig{}) {
		c.Canny = imaging.DefaultCannyConfig()
	}
	if c.Hough == (imaging.HoughConfig{}) {
		c.Hough = imaging.DefaultHoughConfig()
	}
	if c.MaxPeaks == 0 {
		c.MaxPeaks = 8
	}
	if c.MinVotesFrac == 0 {
		c.MinVotesFrac = 0.25
	}
	if c.SuppressTheta == 0 {
		c.SuppressTheta = 8
	}
	if c.SuppressRho == 0 {
		c.SuppressRho = 10
	}
	if c.RefineDist == 0 {
		c.RefineDist = 2
	}
}

// Result is a completed baseline extraction.
type Result struct {
	CSD   *grid.Grid // the full acquired diagram
	Edges *grid.Grid // Canny output
	Peaks []imaging.HoughLine

	SteepPeak, ShallowPeak imaging.HoughLine

	SteepSlopePx   float64
	ShallowSlopePx float64
	SteepSlope     float64 // dV2/dV1
	ShallowSlope   float64

	Knee   fitting.Vec2 // intersection, pixel coordinates
	Matrix virtualgate.Mat2
}

// Extract acquires the full CSD through src and runs the vision pipeline.
// Acquisition pulls whole rows — and, on instruments supporting it,
// parallel-rendered grids — through the batch contracts in internal/csd.
func Extract(src csd.CurrentGetter, win csd.Window, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	g, err := csd.AcquireParallel(src, win, cfg.RenderWorkers)
	if err != nil {
		return nil, err
	}
	return ExtractFromGrid(g, win, cfg)
}

// ExtractFromGrid runs the vision pipeline on an already-acquired CSD.
// RenderWorkers budgets the Canny convolutions too, so RenderWorkers: 1
// pins the whole pipeline to one goroutine.
func ExtractFromGrid(g *grid.Grid, win csd.Window, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	if cfg.Canny.Workers == 0 {
		cfg.Canny.Workers = cfg.RenderWorkers
	}
	res := &Result{CSD: g}
	res.Edges = imaging.Canny(g.Normalized(), cfg.Canny)
	acc := imaging.Hough(res.Edges, cfg.Hough)
	minVotes := int(cfg.MinVotesFrac * float64(minInt(g.W, g.H)))
	res.Peaks = acc.Peaks(cfg.MaxPeaks, minVotes, cfg.SuppressTheta, cfg.SuppressRho)

	steep, foundSteep := pickPeak(res.Peaks, func(s float64) bool {
		return s < -1 || math.IsInf(s, 0)
	})
	shallow, foundShallow := pickPeak(res.Peaks, func(s float64) bool {
		return s > -1 && s < -0.005
	})
	if !foundSteep || !foundShallow {
		return res, fmt.Errorf("%w: steep found=%v shallow found=%v (%d peaks)",
			ErrNoLine, foundSteep, foundShallow, len(res.Peaks))
	}
	res.SteepPeak, res.ShallowPeak = steep, shallow

	res.SteepSlopePx = normalizeSteep(steep.Slope())
	res.ShallowSlopePx = shallow.Slope()
	if !cfg.NoRefine {
		edgePts := imaging.EdgePoints(res.Edges)
		if s, ok := refineSlope(edgePts, steep, cfg.RefineDist); ok {
			res.SteepSlopePx = normalizeSteep(s)
		}
		if s, ok := refineSlope(edgePts, shallow, cfg.RefineDist); ok && s > -1 && s < 0 {
			res.ShallowSlopePx = s
		}
	}

	res.SteepSlope = win.PixelSlopeToVoltage(res.SteepSlopePx)
	res.ShallowSlope = win.PixelSlopeToVoltage(res.ShallowSlopePx)
	if !(res.SteepSlope < -1) || !(res.ShallowSlope > -1 && res.ShallowSlope < 0) {
		return res, fmt.Errorf("%w: steep=%.3f shallow=%.3f", ErrNonPhysical, res.SteepSlope, res.ShallowSlope)
	}

	if kx, ky, ok := intersect(res.SteepSlopePx, steep, res.ShallowSlopePx, shallow); ok {
		res.Knee = fitting.Vec2{X: kx, Y: ky}
	}
	m, err := virtualgate.FromSlopes(res.SteepSlope, res.ShallowSlope)
	if err != nil {
		return res, fmt.Errorf("%w: %v", ErrNonPhysical, err)
	}
	res.Matrix = m
	return res, nil
}

// pickPeak returns the highest-vote peak whose slope satisfies the class
// predicate. Peaks arrive strongest-first from the accumulator.
func pickPeak(peaks []imaging.HoughLine, class func(slope float64) bool) (imaging.HoughLine, bool) {
	for _, p := range peaks {
		if class(p.Slope()) {
			return p, true
		}
	}
	return imaging.HoughLine{}, false
}

// normalizeSteep maps vertical-line slopes (±Inf) to -Inf, the steep-line
// convention (a perfectly vertical transition needs zero compensation).
func normalizeSteep(s float64) float64 {
	if math.IsInf(s, 0) {
		return math.Inf(-1)
	}
	return s
}

// refineSlope fits the edge pixels within dist of the peak line by total
// least squares, recovering sub-bin slope accuracy.
func refineSlope(edgePts []grid.Point, line imaging.HoughLine, dist float64) (float64, bool) {
	var pts []fitting.Vec2
	for _, p := range edgePts {
		if line.Dist(float64(p.X), float64(p.Y)) <= dist {
			pts = append(pts, fitting.Vec2{X: float64(p.X), Y: float64(p.Y)})
		}
	}
	if len(pts) < 5 {
		return 0, false
	}
	l, err := fitting.TLSLine(pts)
	if err != nil {
		return 0, false
	}
	return l.Slope(), true
}

// intersect returns the intersection of two lines given by slope and a
// Hough anchor point.
func intersect(m1 float64, l1 imaging.HoughLine, m2 float64, l2 imaging.HoughLine) (x, y float64, ok bool) {
	// Represent each as a·x + b·y = c.
	a1, b1, c1 := lineCoeffs(m1, l1)
	a2, b2, c2 := lineCoeffs(m2, l2)
	det := a1*b2 - a2*b1
	if math.Abs(det) < 1e-12 {
		return 0, 0, false
	}
	x = (c1*b2 - c2*b1) / det
	y = (a1*c2 - a2*c1) / det
	return x, y, true
}

func lineCoeffs(m float64, l imaging.HoughLine) (a, b, c float64) {
	if math.IsInf(m, 0) {
		// Vertical: x = rho/cos(theta) evaluated at y=0.
		return 1, 0, l.XAt(0)
	}
	// y - y0 = m (x - x0) through the line's closest point to the origin.
	x0 := l.Rho * math.Cos(l.Theta)
	y0 := l.Rho * math.Sin(l.Theta)
	return -m, 1, y0 - m*x0
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
