package device

// Probe-overhead benchmarks for the telemetry subsystem (the metric
// primitives are benchmarked in internal/telemetry; these sit here
// because device is below sched — and therefore below telemetry's test
// importers — in the import graph):
//
//	BenchmarkProbeBare     the scalar probe hot path, uninstrumented
//	BenchmarkProbeCounted  the same path carrying the accounting the
//	                       pipelines actually perform: telemetry is
//	                       deliberately kept off the per-probe inner
//	                       loop, so per-probe outcomes accumulate in
//	                       locals and flush to the registry once per
//	                       acquired row (one counter add + one
//	                       histogram observe per win.Cols probes)
//
// The surrogate layer is the one exception — its confidence gate
// observes per model query — and its per-query cost is exactly the
// counter_inc_ns + histogram_observe_ns primitives BENCH_telemetry.json
// records alongside.
//
// The acceptance gate, recorded in BENCH_telemetry.json by
// scripts/bench.sh: (ProbeCounted − ProbeBare) / ProbeBare < 2%, both
// at 0 allocs/op.

import (
	"testing"

	"github.com/fastvg/fastvg/internal/telemetry"
)

// probeOverheadBench drives the same scalar probe loop as
// BenchmarkProbeScalar; flushRow(sum, n) is the per-row telemetry under
// test (nil = bare).
func probeOverheadBench(b *testing.B, flushRow func(sum float64, n int)) {
	inst, win := benchInstrument(b, false)
	// Warm the memo rows so growth allocations land outside the timer.
	for y := 0; y < win.Rows; y++ {
		v2 := win.V2At(y)
		for x := 0; x < win.Cols; x++ {
			inst.GetCurrent(win.V1At(x), v2)
		}
	}
	inst.ResetStats()
	b.ReportAllocs()
	b.ResetTimer()
	x, y := 0, 0
	rowSum := 0.0
	for i := 0; i < b.N; i++ {
		rowSum += inst.GetCurrent(win.V1At(x), win.V2At(y))
		if x++; x == win.Cols {
			if flushRow != nil {
				flushRow(rowSum, win.Cols)
			}
			rowSum = 0
			x = 0
			if y++; y == win.Rows {
				y = 0
				inst.ResetStats()
			}
		}
	}
}

func BenchmarkProbeBare(b *testing.B) {
	probeOverheadBench(b, nil)
}

func BenchmarkProbeCounted(b *testing.B) {
	r := telemetry.NewRegistry()
	c := r.Counter("vgx_bench_probes_total", "h")
	h := r.Histogram("vgx_bench_row_current", "h", telemetry.UnitBuckets)
	probeOverheadBench(b, func(sum float64, n int) {
		c.Add(int64(n))
		h.Observe(sum / float64(n))
	})
}
