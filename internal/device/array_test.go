package device

import (
	"testing"
	"time"

	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

func testArrayDevice(t testing.TB, n int) *ArrayDevice {
	t.Helper()
	phys, err := physics.UniformChain(n, 4, 0.3, 0.08, 0.12, 0.3, -2.0)
	if err != nil {
		t.Fatal(err)
	}
	sens := sensor.Params{
		Base: 0.05, PeakAmp: 1, PeakPos: 1.6, PeakWidth: 1,
		Kappa:  make([]float64, n),
		Lambda: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		sens.Kappa[i] = 0.002
		sens.Lambda[i] = 0.3
	}
	return &ArrayDevice{Phys: phys, Sens: sens}
}

func TestMultiInstrumentAccounting(t *testing.T) {
	dev := testArrayDevice(t, 4)
	inst := NewMultiInstrument(dev, DefaultDwell, 1)
	v := []float64{10, 10, 10, 10}
	inst.GetCurrentN(v)
	inst.GetCurrentN(v) // memoised
	v[0] = 20
	inst.GetCurrentN(v)
	s := inst.Stats()
	if s.UniqueProbes != 2 || s.RawCalls != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.Virtual != 2*DefaultDwell {
		t.Errorf("virtual = %v", s.Virtual)
	}
}

func TestMultiInstrumentQuantisationKey(t *testing.T) {
	dev := testArrayDevice(t, 3)
	inst := NewMultiInstrument(dev, time.Millisecond, 1)
	a := inst.GetCurrentN([]float64{10.1, 20.2, 30.3})
	b := inst.GetCurrentN([]float64{10.9, 20.8, 30.7}) // same 1 mV cells
	if a != b {
		t.Error("same-cell probe not memoised")
	}
	c := inst.GetCurrentN([]float64{11.1, 20.2, 30.3})
	_ = c
	if got := inst.Stats().UniqueProbes; got != 2 {
		t.Errorf("unique probes = %d, want 2", got)
	}
}

func TestPairViewRoutesVoltages(t *testing.T) {
	dev := testArrayDevice(t, 4)
	inst := NewMultiInstrument(dev, 0, 0)
	base := []float64{1, 2, 3, 4}
	pv, err := NewPairView(inst, 1, 2, base)
	if err != nil {
		t.Fatal(err)
	}
	got := pv.GetCurrent(50, 60)
	want := dev.CurrentAt([]float64{1, 50, 60, 4}, 0)
	if got != want {
		t.Errorf("pair view current = %v, want %v", got, want)
	}
	// Base must not be mutated.
	if base[1] != 2 || base[2] != 3 {
		t.Errorf("base mutated: %v", base)
	}
}

func TestPairViewValidation(t *testing.T) {
	dev := testArrayDevice(t, 3)
	inst := NewMultiInstrument(dev, 0, 0)
	if _, err := NewPairView(inst, 0, 0, []float64{0, 0, 0}); err == nil {
		t.Error("accepted identical gates")
	}
	if _, err := NewPairView(inst, 0, 5, []float64{0, 0, 0}); err == nil {
		t.Error("accepted out-of-range gate")
	}
	if _, err := NewPairView(inst, 0, 1, []float64{0}); err == nil {
		t.Error("accepted short base vector")
	}
}

func TestArrayCurrentDropsWhenDotLoads(t *testing.T) {
	dev := testArrayDevice(t, 4)
	lo := dev.CurrentAt([]float64{10, 10, 10, 10}, 0)
	hi := dev.CurrentAt([]float64{10, 80, 10, 10}, 0) // loads dot 1
	if hi >= lo {
		t.Errorf("current did not drop when dot loaded: %v -> %v", lo, hi)
	}
}
