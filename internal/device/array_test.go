package device

import (
	"sync"
	"testing"
	"time"

	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

func testArrayDevice(t testing.TB, n int) *ArrayDevice {
	t.Helper()
	phys, err := physics.UniformChain(n, 4, 0.3, 0.08, 0.12, 0.3, -2.0)
	if err != nil {
		t.Fatal(err)
	}
	sens := sensor.Params{
		Base: 0.05, PeakAmp: 1, PeakPos: 1.6, PeakWidth: 1,
		Kappa:  make([]float64, n),
		Lambda: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		sens.Kappa[i] = 0.002
		sens.Lambda[i] = 0.3
	}
	return &ArrayDevice{Phys: phys, Sens: sens}
}

func TestMultiInstrumentAccounting(t *testing.T) {
	dev := testArrayDevice(t, 4)
	inst := NewMultiInstrument(dev, DefaultDwell, 1)
	v := []float64{10, 10, 10, 10}
	inst.GetCurrentN(v)
	inst.GetCurrentN(v) // memoised
	v[0] = 20
	inst.GetCurrentN(v)
	s := inst.Stats()
	if s.UniqueProbes != 2 || s.RawCalls != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.Virtual != 2*DefaultDwell {
		t.Errorf("virtual = %v", s.Virtual)
	}
}

func TestMultiInstrumentQuantisationKey(t *testing.T) {
	dev := testArrayDevice(t, 3)
	inst := NewMultiInstrument(dev, time.Millisecond, 1)
	a := inst.GetCurrentN([]float64{10.1, 20.2, 30.3})
	b := inst.GetCurrentN([]float64{10.9, 20.8, 30.7}) // same 1 mV cells
	if a != b {
		t.Error("same-cell probe not memoised")
	}
	c := inst.GetCurrentN([]float64{11.1, 20.2, 30.3})
	_ = c
	if got := inst.Stats().UniqueProbes; got != 2 {
		t.Errorf("unique probes = %d, want 2", got)
	}
}

func TestPairViewRoutesVoltages(t *testing.T) {
	dev := testArrayDevice(t, 4)
	inst := NewMultiInstrument(dev, 0, 0)
	base := []float64{1, 2, 3, 4}
	pv, err := NewPairView(inst, 1, 2, base)
	if err != nil {
		t.Fatal(err)
	}
	got := pv.GetCurrent(50, 60)
	want := dev.CurrentAt([]float64{1, 50, 60, 4}, 0)
	if got != want {
		t.Errorf("pair view current = %v, want %v", got, want)
	}
	// Base must not be mutated.
	if base[1] != 2 || base[2] != 3 {
		t.Errorf("base mutated: %v", base)
	}
}

func TestPairViewValidation(t *testing.T) {
	dev := testArrayDevice(t, 3)
	inst := NewMultiInstrument(dev, 0, 0)
	if _, err := NewPairView(inst, 0, 0, []float64{0, 0, 0}); err == nil {
		t.Error("accepted identical gates")
	}
	if _, err := NewPairView(inst, 0, 5, []float64{0, 0, 0}); err == nil {
		t.Error("accepted out-of-range gate")
	}
	if _, err := NewPairView(inst, 0, 1, []float64{0}); err == nil {
		t.Error("accepted short base vector")
	}
}

func TestArrayCurrentDropsWhenDotLoads(t *testing.T) {
	dev := testArrayDevice(t, 4)
	lo := dev.CurrentAt([]float64{10, 10, 10, 10}, 0)
	hi := dev.CurrentAt([]float64{10, 80, 10, 10}, 0) // loads dot 1
	if hi >= lo {
		t.Errorf("current did not drop when dot loaded: %v -> %v", lo, hi)
	}
}

// TestPairViewAttribution pins the per-view probe accounting: concurrent
// pair extractions sharing one MultiInstrument must not double-count each
// other's probes, and the per-view sums must reconcile exactly with the
// instrument's global accounting.
func TestPairViewAttribution(t *testing.T) {
	dev := testArrayDevice(t, 4)
	m := NewMultiInstrument(dev, time.Millisecond, 0.5)
	base := make([]float64, 4)
	views := make([]*PairView, 3)
	for i := range views {
		pv, err := NewPairView(m, i, i+1, base)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = pv
	}
	var wg sync.WaitGroup
	for _, pv := range views {
		wg.Add(1)
		go func(pv *PairView) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				// Each view walks its own voltage trajectory; some points
				// repeat (memo hits must not count as fresh dwells).
				pv.GetCurrent(float64(k%50), float64(k%25))
			}
		}(pv)
	}
	wg.Wait()

	var viewUnique, viewRaw int
	var viewVirtual time.Duration
	for i, pv := range views {
		st := pv.Stats()
		if st.RawCalls != 200 {
			t.Errorf("view %d RawCalls = %d, want its own 200 (not the shared total)", i, st.RawCalls)
		}
		if st.UniqueProbes <= 0 || st.UniqueProbes > 200 {
			t.Errorf("view %d UniqueProbes = %d out of range", i, st.UniqueProbes)
		}
		viewUnique += st.UniqueProbes
		viewRaw += st.RawCalls
		viewVirtual += st.Virtual
	}
	global := m.Stats()
	if viewRaw != global.RawCalls {
		t.Errorf("view raw-call sum %d != instrument %d", viewRaw, global.RawCalls)
	}
	if viewUnique != global.UniqueProbes {
		t.Errorf("view unique-probe sum %d != instrument %d (double counting)", viewUnique, global.UniqueProbes)
	}
	if viewVirtual != global.Virtual {
		t.Errorf("view dwell sum %v != instrument %v", viewVirtual, global.Virtual)
	}

	// ResetStats on one view clears only that view's attribution.
	views[0].ResetStats()
	if got := views[0].Stats(); got != (Stats{}) {
		t.Errorf("view reset left %+v", got)
	}
	if m.Stats() != global {
		t.Error("view reset mutated the shared instrument's accounting")
	}
	if views[1].Stats().RawCalls != 200 {
		t.Error("view reset bled into a sibling view")
	}
}

// TestMultiInstrumentAdvance opens a fresh measurement epoch: the memo is
// dropped (re-probes dwell again) but cumulative accounting is kept.
func TestMultiInstrumentAdvance(t *testing.T) {
	dev := testArrayDevice(t, 3)
	m := NewMultiInstrument(dev, time.Millisecond, 0.5)
	v := []float64{1, 2, 3}
	m.GetCurrentN(v)
	if _, fresh := m.ProbeN(v, nil); fresh {
		t.Fatal("repeat probe in the same epoch dwelled again")
	}
	m.Advance(time.Second)
	st := m.Stats()
	if st.UniqueProbes != 1 {
		t.Fatalf("advance changed probe count: %d", st.UniqueProbes)
	}
	if st.Virtual != time.Second+time.Millisecond {
		t.Fatalf("advance lost clock time: %v", st.Virtual)
	}
	if _, fresh := m.ProbeN(v, nil); !fresh {
		t.Error("probe after Advance served a stale pre-epoch memo")
	}
}

// TestPairViewDrift: a pair-local LeverDrift bends the voltages the device
// sees — the mechanism that makes exactly one chain pair go stale.
func TestPairViewDrift(t *testing.T) {
	spec := ChainSpec{Dots: 3, PairDrift: []LeverDriftSpec{
		{Offset1: noise.Params{DriftAmp: 5, DriftPeriod: 10}},
	}}
	drifted, _, err := spec.BuildPair(0)
	if err != nil {
		t.Fatal(err)
	}
	clean := ChainSpec{Dots: 3}
	undrifted, _, err := clean.BuildPair(0)
	if err != nil {
		t.Fatal(err)
	}
	// Same probing schedule; the drift warp must change some currents.
	differs := false
	for k := 0; k < 40 && !differs; k++ {
		v1, v2 := float64(k), float64(40-k)
		if drifted.GetCurrent(v1, v2) != undrifted.GetCurrent(v1, v2) {
			differs = true
		}
	}
	if !differs {
		t.Error("pair drift never changed a measured current")
	}
	// Pair 1 has no drift entry: both specs must agree bit for bit there.
	p1a, _, err := spec.BuildPair(1)
	if err != nil {
		t.Fatal(err)
	}
	p1b, _, err := clean.BuildPair(1)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 40; k++ {
		v1, v2 := float64(k), float64(40-k)
		if p1a.GetCurrent(v1, v2) != p1b.GetCurrent(v1, v2) {
			t.Fatal("driftless pair affected by a sibling pair's drift spec")
		}
	}
}

// TestChainSpecPairIndependence: BuildPair instruments share nothing — the
// same pair rebuilt probes bit-identically regardless of what other pairs
// measured, the planner's determinism foundation.
func TestChainSpecPairIndependence(t *testing.T) {
	spec := ChainSpec{Dots: 4, Noise: noise.Params{WhiteSigma: 0.02}, Seed: 11}
	probe := func(pv *PairView, n int) []float64 {
		out := make([]float64, n)
		for k := range out {
			out[k] = pv.GetCurrent(float64(k), float64(k%7))
		}
		return out
	}
	a, _, err := spec.BuildPair(1)
	if err != nil {
		t.Fatal(err)
	}
	ref := probe(a, 50)

	// Rebuild pair 1 after heavily probing pair 0 and pair 2: identical.
	b0, _, err := spec.BuildPair(0)
	if err != nil {
		t.Fatal(err)
	}
	probe(b0, 500)
	b, _, err := spec.BuildPair(1)
	if err != nil {
		t.Fatal(err)
	}
	got := probe(b, 50)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("pair 1 probe %d differs after sibling activity: %v != %v", i, got[i], ref[i])
		}
	}

	// Different pairs get different noise realisations.
	c, _, err := spec.BuildPair(2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	cg := probe(c, 50)
	for i := range ref {
		if ref[i] != cg[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("pairs 1 and 2 share a noise realisation")
	}
}

// TestChainSpecValidation covers the spec shape rules.
func TestChainSpecValidation(t *testing.T) {
	bad := []ChainSpec{
		{Dots: 1},
		{Dots: 3, CrossFrac: 1.5},
		{Dots: 3, PairDrift: make([]LeverDriftSpec, 5)},
	}
	for i, s := range bad {
		s.FillDefaults()
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: accepted %+v", i, s)
		}
	}
	var s ChainSpec
	if _, _, err := s.BuildPair(0); err != nil {
		t.Errorf("zero spec with defaults rejected: %v", err)
	}
	if _, _, err := s.BuildPair(9); err == nil {
		t.Error("accepted out-of-range pair")
	}
}
