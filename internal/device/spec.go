// Serialisable device specifications. A DoubleDotSpec is the declarative,
// JSON-encodable form of a simulated double-dot instrument: the root
// package's NewDoubleDotSim and the extraction service's job requests and
// session registry all build instruments from the same spec, so a device
// described over the wire is byte-identical to one built in-process.
package device

import (
	"fmt"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
	"github.com/fastvg/fastvg/internal/xrand"
)

// DoubleDotSpec describes a simulated double-dot device and its scan window.
// The zero value (after FillDefaults) is a clean 100×100, 50 mV window with
// paper-typical line geometry. Given equal specs, Build returns devices with
// identical noise realisations: the spec plus the probing schedule fully
// determines every measured current.
type DoubleDotSpec struct {
	SteepSlope   float64 `json:"steepSlope,omitempty"`   // dV2/dV1 of dot 1's line; default -8
	ShallowSlope float64 `json:"shallowSlope,omitempty"` // dV2/dV1 of dot 2's line; default -0.12
	CrossXFrac   float64 `json:"crossXFrac,omitempty"`   // steep line's bottom-edge crossing, window fraction; default 0.68
	CrossYFrac   float64 `json:"crossYFrac,omitempty"`   // shallow line's left-edge crossing; default 0.63
	Pixels       int     `json:"pixels,omitempty"`       // window resolution; default 100
	SpanMV       float64 `json:"spanMV,omitempty"`       // window span in mV; default Pixels/2 (δ = 0.5 mV)

	Lambda1 float64 `json:"lambda1,omitempty"` // sensor contrast of dot 1; default 0.47
	Lambda2 float64 `json:"lambda2,omitempty"` // sensor contrast of dot 2; default 0.45

	Noise noise.Params `json:"noise,omitzero"` // zero = noiseless
	Seed  uint64       `json:"seed,omitempty"` // noise realisation seed

	// LeverDrift, when non-nil, makes the built device's lever arms wander on
	// the virtual clock (see LeverDrift) — the fleet-calibration workload's
	// staleness mechanism. Component seeds derive from Seed, so the drift
	// realisation is as reproducible as the sensor noise.
	LeverDrift *LeverDriftSpec `json:"leverDrift,omitempty"`

	// Surrogate, when non-nil with a positive Threshold, asks the extraction
	// service to probe this device surrogate-first: a learned digital twin
	// (internal/surrogate) answers high-confidence probes and only the rest
	// reach the built instrument. Build ignores it — composition happens in
	// the service layer, where the twin registry lives.
	Surrogate *SurrogateSpec `json:"surrogate,omitempty"`
}

// SurrogateSpec selects surrogate-first probing for a spec'd device.
type SurrogateSpec struct {
	// Threshold is the escalation knob: probes whose twin confidence is at
	// least this are served from the model (surrogate.DefaultThreshold is
	// the tuned value; confidence is 1/(1+d) in pixel distance d, zero near
	// the fitted transition lines). Zero disables the twin entirely.
	Threshold float64 `json:"threshold,omitempty"`
	// NoLearn freezes the twin: escalated live probes are not fed back.
	NoLearn bool `json:"noLearn,omitempty"`
}

// LeverDriftSpec is the serialisable description of a LeverDrift: one noise
// model per warp channel. Zero Params leave a channel silent. The shear
// channels are dimensionless (a ±0.02 shear moves a line by ≈ 2% of the
// orthogonal voltage), the offset channels are in mV.
type LeverDriftSpec struct {
	Shear12 noise.Params `json:"shear12,omitzero"`
	Shear21 noise.Params `json:"shear21,omitzero"`
	Offset1 noise.Params `json:"offset1,omitzero"`
	Offset2 noise.Params `json:"offset2,omitzero"`
}

// zero reports whether every channel is silent.
func (l LeverDriftSpec) zero() bool {
	return l.Shear12 == (noise.Params{}) && l.Shear21 == (noise.Params{}) &&
		l.Offset1 == (noise.Params{}) && l.Offset2 == (noise.Params{})
}

// build constructs the LeverDrift with channel seeds derived from seed.
func (l LeverDriftSpec) build(seed uint64) *LeverDrift {
	if l.zero() {
		return nil
	}
	d := &LeverDrift{}
	if l.Shear12 != (noise.Params{}) {
		d.Shear12 = l.Shear12.Build(xrand.DeriveSeed(seed, 201))
	}
	if l.Shear21 != (noise.Params{}) {
		d.Shear21 = l.Shear21.Build(xrand.DeriveSeed(seed, 202))
	}
	if l.Offset1 != (noise.Params{}) {
		d.Offset1 = l.Offset1.Build(xrand.DeriveSeed(seed, 203))
	}
	if l.Offset2 != (noise.Params{}) {
		d.Offset2 = l.Offset2.Build(xrand.DeriveSeed(seed, 204))
	}
	return d
}

// FillDefaults replaces zero fields with the documented defaults.
func (s *DoubleDotSpec) FillDefaults() {
	if s.SteepSlope == 0 {
		s.SteepSlope = -8
	}
	if s.ShallowSlope == 0 {
		s.ShallowSlope = -0.12
	}
	if s.CrossXFrac == 0 {
		s.CrossXFrac = 0.68
	}
	if s.CrossYFrac == 0 {
		s.CrossYFrac = 0.63
	}
	if s.Pixels <= 0 {
		s.Pixels = 100
	}
	if s.SpanMV <= 0 {
		s.SpanMV = float64(s.Pixels) / 2
	}
	if s.Lambda1 == 0 {
		s.Lambda1 = 0.47
	}
	if s.Lambda2 == 0 {
		s.Lambda2 = 0.45
	}
}

// Window returns the scan window the spec describes. Call after FillDefaults.
func (s DoubleDotSpec) Window() csd.Window {
	return csd.NewSquareWindow(0, 0, s.SpanMV, s.Pixels)
}

// Build fills defaults and constructs the simulated instrument: a DoubleDot
// device under a SimInstrument with the paper's 50 ms dwell, memoised at the
// window's pixel pitch.
func (s *DoubleDotSpec) Build() (*SimInstrument, csd.Window, error) {
	s.FillDefaults()
	phys, err := physics.FromGeometry(physics.Geometry{
		SteepSlope:   s.SteepSlope,
		ShallowSlope: s.ShallowSlope,
		SteepPoint:   [2]float64{s.CrossXFrac * s.SpanMV, 0},
		ShallowPoint: [2]float64{0, s.CrossYFrac * s.SpanMV},
		EC1:          4, EC2: 4, ECm: 0.25,
	})
	if err != nil {
		return nil, csd.Window{}, fmt.Errorf("device: %w", err)
	}
	dev := &DoubleDot{
		Phys:  phys,
		Sens:  sensor.DefaultDoubleDot(s.Lambda1, s.Lambda2, 2*s.SpanMV),
		Noise: s.Noise.Build(s.Seed),
	}
	if s.LeverDrift != nil {
		dev.Drift = s.LeverDrift.build(s.Seed)
	}
	win := s.Window()
	inst := NewSimInstrument(dev, DefaultDwell, win.StepV1(), win.StepV2())
	return inst, win, nil
}
