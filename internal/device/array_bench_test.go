package device

// The N-dot probe-path benchmarks, mirroring BenchmarkProbe* for
// MultiInstrument. The acceptance gate of the memo-key rework: the memo-hit
// path must report 0 allocs/op (the quantised key is built in a reusable
// scratch buffer and looked up without materialising a string).

import (
	"testing"
)

func benchMultiInstrument(b *testing.B, n int) (*MultiInstrument, [][]float64) {
	b.Helper()
	dev := testArrayDevice(b, n)
	inst := NewMultiInstrument(dev, DefaultDwell, 0.5)
	// A raster over the first two gates, every other gate held mid-range —
	// the pairwise-chain probing shape of the n-dot extraction.
	var probes [][]float64
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			v := make([]float64, n)
			for g := 2; g < n; g++ {
				v[g] = 1.0
			}
			v[0] = float64(x) * 0.5
			v[1] = float64(y) * 0.5
			probes = append(probes, v)
		}
	}
	return inst, probes
}

// BenchmarkProbeMultiScalar measures the cold N-dot probe path: every probe
// misses the memo and runs the chain ground-state search.
func BenchmarkProbeMultiScalar(b *testing.B) {
	inst, probes := benchMultiInstrument(b, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(probes) == 0 {
			inst.ResetStats()
		}
		inst.GetCurrentN(probes[i%len(probes)])
	}
}

// BenchmarkProbeMultiMemoHit measures the re-probe path: every probe is a
// memo hit. Must be 0 allocs/op.
func BenchmarkProbeMultiMemoHit(b *testing.B) {
	inst, probes := benchMultiInstrument(b, 4)
	for _, v := range probes {
		inst.GetCurrentN(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.GetCurrentN(probes[i%len(probes)])
	}
}

// TestMultiMemoHitAllocs pins the memo-key contract: a hit allocates
// nothing.
func TestMultiMemoHitAllocs(t *testing.T) {
	dev := testArrayDevice(t, 4)
	inst := NewMultiInstrument(dev, DefaultDwell, 0.5)
	v := []float64{1, 2, 3, 4}
	inst.GetCurrentN(v)
	allocs := testing.AllocsPerRun(200, func() { inst.GetCurrentN(v) })
	if allocs != 0 {
		t.Fatalf("memo hit allocates %.1f objects/op, want 0", allocs)
	}
}
