package device

import (
	"encoding/binary"
	"errors"
	"math"
	"time"

	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

// ArrayDevice is a simulated N-dot, N-plunger linear array with a single
// charge sensor, the substrate for the n-dot chain extraction of the
// paper's Section 2.3.
type ArrayDevice struct {
	Phys  *physics.Array
	Sens  sensor.Params
	Noise noise.Process
}

// CurrentAt returns the sensor current at gate voltages v measured at
// virtual time t (seconds).
func (d *ArrayDevice) CurrentAt(v []float64, t float64) float64 {
	n := d.Phys.GroundState(v)
	i := d.Sens.Current(v, n)
	if d.Noise != nil {
		i += d.Noise.Sample(t)
	}
	return i
}

// MultiInstrument drives an ArrayDevice with dwell accounting and
// memoisation on an N-dimensional voltage quantisation grid.
type MultiInstrument struct {
	Dev   *ArrayDevice
	Dwell time.Duration
	Quant float64 // memoisation pitch for every gate; 0 disables

	memo   map[string]float64
	keyBuf []byte // reusable quantised-key scratch; keys are flat int64 cells
	stats  Stats
}

// NewMultiInstrument returns an instrument over dev.
func NewMultiInstrument(dev *ArrayDevice, dwell time.Duration, quant float64) *MultiInstrument {
	return &MultiInstrument{Dev: dev, Dwell: dwell, Quant: quant, memo: make(map[string]float64)}
}

// key encodes the quantised gate cells into the reusable scratch buffer —
// a flat little-endian int64 per gate. The buffer is only ever converted to
// a string when a fresh probe is stored; lookups index the map with
// string(buf) directly, which Go serves without allocating.
func (m *MultiInstrument) key(v []float64) []byte {
	if cap(m.keyBuf) < 8*len(v) {
		m.keyBuf = make([]byte, 8*len(v))
	}
	buf := m.keyBuf[:8*len(v)]
	for i, vi := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(int64(math.Floor(vi/m.Quant))))
	}
	return buf
}

// GetCurrentN measures the sensor current at the full gate-voltage vector.
// A memoised re-probe costs no allocation: the quantised key is built in the
// instrument's scratch buffer and only materialised as a map key when a new
// configuration is stored.
func (m *MultiInstrument) GetCurrentN(v []float64) float64 {
	m.stats.RawCalls++
	var k []byte
	if m.Quant > 0 {
		k = m.key(v)
		if val, ok := m.memo[string(k)]; ok {
			return val
		}
	}
	m.stats.UniqueProbes++
	m.stats.Virtual += m.Dwell
	val := m.Dev.CurrentAt(v, m.stats.Virtual.Seconds())
	if m.Quant > 0 {
		m.memo[string(k)] = val
	}
	return val
}

// Stats implements Accountant.
func (m *MultiInstrument) Stats() Stats { return m.stats }

// ResetStats clears accounting and the memoisation cache.
func (m *MultiInstrument) ResetStats() {
	m.stats = Stats{}
	m.memo = make(map[string]float64)
}

// PairView exposes gates (G1, G2) of a MultiInstrument as a two-gate
// Instrument, holding every other gate at Base — one step of the sequential
// pairwise chain extraction.
type PairView struct {
	M      *MultiInstrument
	G1, G2 int
	Base   []float64

	scratch []float64
}

// NewPairView validates indices and returns the adapter.
func NewPairView(m *MultiInstrument, g1, g2 int, base []float64) (*PairView, error) {
	n := m.Dev.Phys.N
	if g1 < 0 || g1 >= n || g2 < 0 || g2 >= n || g1 == g2 {
		return nil, errors.New("device: invalid gate pair")
	}
	if len(base) != n {
		return nil, errors.New("device: base voltage vector length mismatch")
	}
	return &PairView{M: m, G1: g1, G2: g2, Base: base, scratch: make([]float64, n)}, nil
}

// GetCurrent implements Instrument for the selected gate pair.
func (p *PairView) GetCurrent(v1, v2 float64) float64 {
	copy(p.scratch, p.Base)
	p.scratch[p.G1] = v1
	p.scratch[p.G2] = v2
	return p.M.GetCurrentN(p.scratch)
}

// Stats implements Accountant by delegating to the underlying instrument.
func (p *PairView) Stats() Stats { return p.M.Stats() }

// ResetStats delegates to the underlying instrument.
func (p *PairView) ResetStats() { p.M.ResetStats() }
