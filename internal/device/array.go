package device

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"time"

	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

// ArrayDevice is a simulated N-dot, N-plunger linear array with a single
// charge sensor, the substrate for the n-dot chain extraction of the
// paper's Section 2.3.
type ArrayDevice struct {
	Phys  *physics.Array
	Sens  sensor.Params
	Noise noise.Process

	// Ground-state scratch of the probe hot path; CurrentAt is not safe for
	// concurrent use (MultiInstrument serialises its probes).
	gs  physics.GroundScratch
	occ []int
}

// CurrentAt returns the sensor current at gate voltages v measured at
// virtual time t (seconds). Not safe for concurrent use: the ground-state
// search runs on the device's reusable scratch buffers.
func (d *ArrayDevice) CurrentAt(v []float64, t float64) float64 {
	d.occ = d.Phys.GroundStateInto(d.occ, v, &d.gs)
	i := d.Sens.Current(v, d.occ)
	if d.Noise != nil {
		i += d.Noise.Sample(t)
	}
	return i
}

// MultiInstrument drives an ArrayDevice with dwell accounting and
// memoisation on an N-dimensional voltage quantisation grid. All methods are
// safe for concurrent use: probes, accounting and the idle clock are
// serialised by an internal lock, so several PairViews may share one
// instrument (the interleaving, like on hardware, then depends on timing —
// use independent per-pair instruments, e.g. ChainSpec.BuildPair, when
// deterministic concurrent extraction is required).
type MultiInstrument struct {
	Dev   *ArrayDevice
	Dwell time.Duration
	Quant float64 // memoisation pitch for every gate; 0 disables

	mu     sync.Mutex
	memo   map[string]float64
	keyBuf []byte // reusable quantised-key scratch; keys are flat int64 cells
	stats  Stats
}

// NewMultiInstrument returns an instrument over dev.
func NewMultiInstrument(dev *ArrayDevice, dwell time.Duration, quant float64) *MultiInstrument {
	return &MultiInstrument{Dev: dev, Dwell: dwell, Quant: quant, memo: make(map[string]float64)}
}

// key encodes the quantised gate cells into the reusable scratch buffer —
// a flat little-endian int64 per gate. The buffer is only ever converted to
// a string when a fresh probe is stored; lookups index the map with
// string(buf) directly, which Go serves without allocating.
func (m *MultiInstrument) key(v []float64) []byte {
	if cap(m.keyBuf) < 8*len(v) {
		m.keyBuf = make([]byte, 8*len(v))
	}
	buf := m.keyBuf[:8*len(v)]
	for i, vi := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(int64(math.Floor(vi/m.Quant))))
	}
	return buf
}

// GetCurrentN measures the sensor current at the full gate-voltage vector.
// A memoised re-probe costs no allocation: the quantised key is built in the
// instrument's scratch buffer and only materialised as a map key when a new
// configuration is stored.
func (m *MultiInstrument) GetCurrentN(v []float64) float64 {
	val, _ := m.ProbeN(v, nil)
	return val
}

// ProbeN measures like GetCurrentN and additionally reports whether the call
// consumed a fresh dwell (a memo miss on the quantisation grid). warp, if
// non-nil, is applied to v in place — under the instrument lock, at the
// virtual time the fresh probe lands, after the memo lookup — which is how a
// PairView's pair-local lever drift bends the voltages the device sees
// without changing the memoisation key (mirroring DoubleDot.Drift, where the
// warp also sits between the memo and the physics).
func (m *MultiInstrument) ProbeN(v []float64, warp func(t float64, v []float64)) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.RawCalls++
	var k []byte
	if m.Quant > 0 {
		k = m.key(v)
		if val, ok := m.memo[string(k)]; ok {
			return val, false
		}
	}
	m.stats.UniqueProbes++
	m.stats.Virtual += m.Dwell
	t := m.stats.Virtual.Seconds()
	if warp != nil {
		warp(t, v)
	}
	val := m.Dev.CurrentAt(v, t)
	if m.Quant > 0 {
		m.memo[string(k)] = val
	}
	return val, true
}

// Advance moves the instrument's virtual clock forward by d without probing —
// idle wall time between measurement epochs, the fleet monitor's tick. The
// memoisation cache is cleared (a configuration re-requested after idle time
// is a new measurement, with the noise and drift of the new epoch) but the
// cumulative probe accounting is kept.
func (m *MultiInstrument) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Virtual += d
	clear(m.memo)
}

// Stats implements Accountant.
func (m *MultiInstrument) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats clears accounting and the memoisation cache.
func (m *MultiInstrument) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
	clear(m.memo)
}

// PairView exposes gates (G1, G2) of a MultiInstrument as a two-gate
// Instrument, holding every other gate at Base — one step of the pairwise
// chain extraction. A view carries its own probe accounting: Stats counts
// only the calls made through this view (fresh dwells attributed by the
// underlying instrument's memo), so concurrent pair extractions sharing one
// MultiInstrument never double-count each other's probes. A single view is
// meant to be driven by one extraction at a time; distinct views of the same
// instrument may run concurrently.
type PairView struct {
	M      *MultiInstrument
	G1, G2 int
	Base   []float64

	// Drift, when non-nil, is a pair-local lever-arm drift: the scanned pair
	// voltages pass through the warp (on the underlying instrument's virtual
	// clock) before reaching the device — the chain counterpart of
	// DoubleDot.Drift, and the mechanism that lets a single pair's matrix go
	// stale while its neighbours stay fresh.
	Drift *LeverDrift

	scratch []float64
	stats   Stats
}

// NewPairView validates indices and returns the adapter.
func NewPairView(m *MultiInstrument, g1, g2 int, base []float64) (*PairView, error) {
	n := m.Dev.Phys.N
	if g1 < 0 || g1 >= n || g2 < 0 || g2 >= n || g1 == g2 {
		return nil, errors.New("device: invalid gate pair")
	}
	if len(base) != n {
		return nil, errors.New("device: base voltage vector length mismatch")
	}
	return &PairView{M: m, G1: g1, G2: g2, Base: append([]float64(nil), base...), scratch: make([]float64, n)}, nil
}

// GetCurrent implements Instrument for the selected gate pair.
func (p *PairView) GetCurrent(v1, v2 float64) float64 {
	copy(p.scratch, p.Base)
	p.scratch[p.G1] = v1
	p.scratch[p.G2] = v2
	var warp func(t float64, v []float64)
	if p.Drift != nil {
		warp = func(t float64, v []float64) {
			v[p.G1], v[p.G2] = p.Drift.Warp(v[p.G1], v[p.G2], t)
		}
	}
	val, fresh := p.M.ProbeN(p.scratch, warp)
	p.stats.RawCalls++
	if fresh {
		p.stats.UniqueProbes++
		p.stats.Virtual += p.M.Dwell
	}
	return val
}

// Stats implements Accountant with the view's own delta-based counters:
// probes made through other views of the same instrument are not included.
func (p *PairView) Stats() Stats { return p.stats }

// ResetStats zeroes the view's counters. The underlying instrument's
// accounting (and memo) is left untouched — resetting one pair's attribution
// must not erase its neighbours'.
func (p *PairView) ResetStats() { p.stats = Stats{} }
