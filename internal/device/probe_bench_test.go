package device

// The probe-path benchmark trajectory (scripts/bench.sh renders these into
// BENCH_probe.json):
//
//	BenchmarkProbeScalar      one GetCurrent per cold pixel, raster order
//	BenchmarkProbeBatch       the same raster pulled through CurrentRow
//	BenchmarkProbeMemoHit     re-probing memoised configurations
//	BenchmarkGridRenderScalar full 100×100 window, scalar probe loop
//	BenchmarkGridRenderBatch  full 100×100 window through AcquireGrid
//	BenchmarkGridRenderNoisy  AcquireGrid with the full temporal noise stack
//
// The acceptance gates of the batch-probing work: ProbeScalar/ProbeBatch
// must report 0 allocs/op in steady state, and GridRenderBatch must beat
// the pre-batch serial render (recorded in BENCH_probe.json) by ≥3×.

import (
	"testing"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/noise"
)

func benchInstrument(b *testing.B, noisy bool) (*SimInstrument, csd.Window) {
	b.Helper()
	spec := &DoubleDotSpec{Seed: 7}
	if noisy {
		spec.Noise = noise.Params{WhiteSigma: 0.022, PinkAmp: 0.017, PinkN: 14, PinkFMin: 0.005, PinkFMax: 20}
	}
	inst, win, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	return inst, win
}

// BenchmarkProbeScalar measures the cold scalar probe path: every probe
// misses the memo and runs ground state + sensor + accounting. The memo is
// recycled with ResetStats whenever the window fills, which keeps its row
// buffers warm — steady state must be 0 allocs/op.
func BenchmarkProbeScalar(b *testing.B) {
	inst, win := benchInstrument(b, false)
	// Pre-size the memo rows so growth allocations land outside the timer.
	for y := 0; y < win.Rows; y++ {
		v2 := win.V2At(y)
		for x := 0; x < win.Cols; x++ {
			inst.GetCurrent(win.V1At(x), v2)
		}
	}
	inst.ResetStats()
	b.ReportAllocs()
	b.ResetTimer()
	x, y := 0, 0
	for i := 0; i < b.N; i++ {
		inst.GetCurrent(win.V1At(x), win.V2At(y))
		if x++; x == win.Cols {
			x = 0
			if y++; y == win.Rows {
				y = 0
				inst.ResetStats()
			}
		}
	}
}

// BenchmarkProbeBatch measures the cold batched probe path: whole rows
// through CurrentRow. Steady state must be 0 allocs/op.
func BenchmarkProbeBatch(b *testing.B) {
	inst, win := benchInstrument(b, false)
	v1s := make([]float64, win.Cols)
	for x := range v1s {
		v1s[x] = win.V1At(x)
	}
	out := make([]float64, win.Cols)
	for y := 0; y < win.Rows; y++ {
		inst.CurrentRow(win.V2At(y), v1s, out)
	}
	inst.ResetStats()
	b.ReportAllocs()
	b.ResetTimer()
	y := 0
	for i := 0; i < b.N; i += win.Cols {
		inst.CurrentRow(win.V2At(y), v1s, out)
		if y++; y == win.Rows {
			y = 0
			inst.ResetStats()
		}
	}
	// b.N counts probes, not rows: i advances by Cols per iteration, so
	// ns/op and allocs/op read per-probe.
}

// BenchmarkProbeMemoHit measures the re-probe path: every probe is a memo
// hit. Must be 0 allocs/op.
func BenchmarkProbeMemoHit(b *testing.B) {
	inst, win := benchInstrument(b, false)
	for y := 0; y < win.Rows; y++ {
		v2 := win.V2At(y)
		for x := 0; x < win.Cols; x++ {
			inst.GetCurrent(win.V1At(x), v2)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	x, y := 0, 0
	for i := 0; i < b.N; i++ {
		inst.GetCurrent(win.V1At(x), win.V2At(y))
		if x++; x == win.Cols {
			x = 0
			if y++; y == win.Rows {
				y = 0
			}
		}
	}
}

// BenchmarkGridRenderScalar renders the full noiseless window with the
// scalar per-pixel loop — the pre-batch acquisition shape, on the new
// scalar fast path.
func BenchmarkGridRenderScalar(b *testing.B) {
	inst, win := benchInstrument(b, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inst.ResetStats()
		if _, err := scalarRender(inst, win); err != nil {
			b.Fatal(err)
		}
	}
}

func scalarRender(inst *SimInstrument, win csd.Window) (int, error) {
	n := 0
	for y := 0; y < win.Rows; y++ {
		v2 := win.V2At(y)
		for x := 0; x < win.Cols; x++ {
			inst.GetCurrent(win.V1At(x), v2)
			n++
		}
	}
	return n, nil
}

// BenchmarkGridRenderBatch renders the full noiseless window through
// AcquireGrid (auto worker count).
func BenchmarkGridRenderBatch(b *testing.B) {
	inst, win := benchInstrument(b, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inst.ResetStats()
		if _, err := inst.AcquireGrid(win, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridRenderNoisy renders the full window through AcquireGrid with
// the benchmark suite's typical noise stack: the parallel physics phase
// plus the serial virtual-clock noise replay.
func BenchmarkGridRenderNoisy(b *testing.B) {
	inst, win := benchInstrument(b, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		inst.ResetStats()
		if _, err := inst.AcquireGrid(win, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridRenderDataset replays a full window from a recorded CSD —
// the cold path of every benchmark-target baseline job in the service.
func BenchmarkGridRenderDataset(b *testing.B) {
	src, win := benchInstrument(b, false)
	g, err := src.AcquireGrid(win, 0)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := NewDatasetInstrument(g, win, DefaultDwell)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.ResetStats()
		if _, err := inst.AcquireGrid(win, 0); err != nil {
			b.Fatal(err)
		}
	}
}
