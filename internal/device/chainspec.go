// ChainSpec is the N-dot counterpart of DoubleDotSpec: the declarative,
// JSON-encodable form of a simulated linear-array device. One spec serves
// two builds. Build returns the whole array under a single shared
// MultiInstrument — the hardware-faithful view, where every pair extraction
// probes the same device and interleaving follows timing. BuildPair returns
// an independent instrument for one adjacent gate pair, with its noise and
// drift realisations derived from (Seed, pair) alone — the shared-nothing
// decomposition the chain planner (internal/chainx), the extraction
// service's chain jobs and the fleet's chain devices rely on for
// bit-identical results at any worker count.
package device

import (
	"errors"
	"fmt"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
	"github.com/fastvg/fastvg/internal/xrand"
)

// Chain device physics constants (the geometry NewChainSim has always
// built): homogeneous charging energies with nearest-neighbour coupling, and
// a first-electron line framed at ~65% of the recommended scan window so the
// triple point sits inside and the (0,0) region stays the brightest part
// (the anchor heuristics' regime).
const (
	chainEC       = 4.0
	chainECm      = 0.3
	chainAlphaOwn = 0.08
	chainFarFrac  = 0.3
	chainOffset   = -2.0
	chainLineFrac = 0.65
)

// ChainSpec describes a simulated N-dot linear-array device. The zero value
// (after FillDefaults) is a clean, noiseless 4-dot chain with 100×100 pair
// scan windows. Given equal specs, BuildPair(i) returns devices whose noise
// and drift realisations depend on (Seed, i) only, so pair extractions are
// reproducible independently of each other.
type ChainSpec struct {
	Dots      int     `json:"dots,omitempty"`      // number of dots/plungers; default 4
	CrossFrac float64 `json:"crossFrac,omitempty"` // nearest-neighbour lever-arm fraction; default 0.12
	Pixels    int     `json:"pixels,omitempty"`    // pair scan window resolution; default 100

	Noise noise.Params `json:"noise,omitzero"` // sensor noise; zero = noiseless
	Seed  uint64       `json:"seed,omitempty"` // realisation seed

	// PairDrift gives pair i a pair-local lever-arm drift (PairView.Drift).
	// Shorter lists leave the remaining pairs driftless; this is what makes
	// a *single* pair's matrix go stale in the fleet workload while its
	// neighbours stay fresh.
	PairDrift []LeverDriftSpec `json:"pairDrift,omitempty"`

	// Surrogate, when non-nil with a positive Threshold, asks the extraction
	// service to probe every pair surrogate-first (one twin per pair). Build
	// and BuildPair ignore it — composition happens in the service layer.
	Surrogate *SurrogateSpec `json:"surrogate,omitempty"`
}

// FillDefaults replaces zero fields with the documented defaults.
func (s *ChainSpec) FillDefaults() {
	if s.Dots == 0 {
		s.Dots = 4
	}
	if s.CrossFrac == 0 {
		s.CrossFrac = 0.12
	}
	if s.Pixels <= 0 {
		s.Pixels = 100
	}
}

// Validate checks the spec is buildable. Call after FillDefaults.
func (s ChainSpec) Validate() error {
	if s.Dots < 2 {
		return errors.New("device: chain needs at least 2 dots")
	}
	if s.CrossFrac <= 0 || s.CrossFrac >= 1 {
		return fmt.Errorf("device: chain crossFrac %v must be in (0, 1)", s.CrossFrac)
	}
	if len(s.PairDrift) > s.Dots-1 {
		return fmt.Errorf("device: %d pair drifts for %d pairs", len(s.PairDrift), s.Dots-1)
	}
	return nil
}

// SpanMV returns the recommended pair scan span in millivolts.
func (s ChainSpec) SpanMV() float64 {
	return (-chainOffset / chainAlphaOwn) / chainLineFrac
}

// Window returns the pair scan window the spec describes. Call after
// FillDefaults.
func (s ChainSpec) Window() csd.Window {
	return csd.NewSquareWindow(0, 0, s.SpanMV(), s.Pixels)
}

// buildPhys constructs the array physics.
func (s ChainSpec) buildPhys() (*physics.Array, error) {
	return physics.UniformChain(s.Dots, chainEC, chainECm, chainAlphaOwn, s.CrossFrac, chainFarFrac, chainOffset)
}

// buildSensor constructs the shared charge sensor: the background flank is
// driven mainly by the scanned pair (q sweeps ~1.5 peak widths across one
// pair window).
func (s ChainSpec) buildSensor() sensor.Params {
	span := s.SpanMV()
	p := sensor.Params{
		Base: 0.05, PeakAmp: 1, PeakPos: 1.7, PeakWidth: 1,
		Kappa:  make([]float64, s.Dots),
		Lambda: make([]float64, s.Dots),
	}
	for i := 0; i < s.Dots; i++ {
		p.Kappa[i] = 1.5 / (2 * span)
		p.Lambda[i] = 0.46
	}
	return p
}

// Build fills defaults and constructs the whole array under one shared
// MultiInstrument (the paper's 50 ms dwell, memoised at 1/128 of the pair
// span) — the single-device view NewChainSim exposes.
func (s *ChainSpec) Build() (*MultiInstrument, csd.Window, error) {
	s.FillDefaults()
	if err := s.Validate(); err != nil {
		return nil, csd.Window{}, err
	}
	phys, err := s.buildPhys()
	if err != nil {
		return nil, csd.Window{}, err
	}
	dev := &ArrayDevice{Phys: phys, Sens: s.buildSensor(), Noise: s.Noise.Build(s.Seed)}
	return NewMultiInstrument(dev, DefaultDwell, s.SpanMV()/128), s.Window(), nil
}

// pairSeedBase offsets the per-pair seed derivation away from the channel
// seeds LeverDriftSpec.build derives, so pair noise and pair drift can never
// collide.
const pairSeedBase = 1000

// BuildPair fills defaults and constructs an independent instrument for
// adjacent gate pair (i, i+1): a fresh ArrayDevice (noise seeded by
// DeriveSeed(Seed, pairSeedBase+i)) under its own MultiInstrument, exposed
// as a PairView with every other gate held at 0 mV and the spec's pair
// drift (if any) attached. Instruments of different pairs share nothing, so
// concurrent pair extractions are bit-identical to sequential ones.
func (s *ChainSpec) BuildPair(i int) (*PairView, csd.Window, error) {
	s.FillDefaults()
	if err := s.Validate(); err != nil {
		return nil, csd.Window{}, err
	}
	if i < 0 || i >= s.Dots-1 {
		return nil, csd.Window{}, fmt.Errorf("device: pair index %d out of range 0..%d", i, s.Dots-2)
	}
	phys, err := s.buildPhys()
	if err != nil {
		return nil, csd.Window{}, err
	}
	pairSeed := xrand.DeriveSeed(s.Seed, pairSeedBase+i)
	dev := &ArrayDevice{Phys: phys, Sens: s.buildSensor(), Noise: s.Noise.Build(pairSeed)}
	inst := NewMultiInstrument(dev, DefaultDwell, s.SpanMV()/128)
	pv, err := NewPairView(inst, i, i+1, make([]float64, s.Dots))
	if err != nil {
		return nil, csd.Window{}, err
	}
	if i < len(s.PairDrift) {
		pv.Drift = s.PairDrift[i].build(pairSeed)
	}
	return pv, s.Window(), nil
}

// PairTruth returns the analytic (steep, shallow) transition-line slopes of
// adjacent pair (i, i+1) — the ground truth chain extractions are scored
// against. Call after FillDefaults.
func (s ChainSpec) PairTruth(i int) (steep, shallow float64) {
	own := chainAlphaOwn
	cross := chainAlphaOwn * s.CrossFrac
	return -own / cross, -cross / own
}
