package device

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/xrand"
)

// TestVirtualClockMonotonic: the virtual clock never goes backwards, for any
// probing sequence.
func TestVirtualClockMonotonic(t *testing.T) {
	d := testDoubleDot(t)
	d.Noise = noise.NewWhite(0.05, 3)
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		inst := NewSimInstrument(d, 10*time.Millisecond, 1, 1)
		prev := time.Duration(0)
		for i := 0; i < 200; i++ {
			inst.GetCurrent(float64(rng.Intn(100)), float64(rng.Intn(100)))
			now := inst.Stats().Virtual
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestMemoHitNeverChangesValue: repeated probes of a memoised configuration
// return the first recorded value regardless of noise, like replaying a
// recorded dataset.
func TestMemoHitNeverChangesValue(t *testing.T) {
	d := testDoubleDot(t)
	d.Noise = noise.NewWhite(0.2, 7)
	inst := NewSimInstrument(d, time.Millisecond, 0.5, 0.5)
	f := func(xRaw, yRaw uint8) bool {
		v1 := float64(xRaw) / 4
		v2 := float64(yRaw) / 4
		first := inst.GetCurrent(v1, v2)
		for i := 0; i < 3; i++ {
			if inst.GetCurrent(v1, v2) != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestUniqueProbesNeverExceedRawCalls across random probing.
func TestUniqueProbesNeverExceedRawCalls(t *testing.T) {
	d := testDoubleDot(t)
	inst := NewSimInstrument(d, time.Millisecond, 1, 1)
	rng := xrand.New(11)
	for i := 0; i < 500; i++ {
		inst.GetCurrent(float64(rng.Intn(40)), float64(rng.Intn(40)))
		s := inst.Stats()
		if s.UniqueProbes > s.RawCalls {
			t.Fatalf("unique %d > raw %d", s.UniqueProbes, s.RawCalls)
		}
		if s.Virtual != time.Duration(s.UniqueProbes)*inst.Dwell {
			t.Fatalf("virtual %v != unique %d × dwell", s.Virtual, s.UniqueProbes)
		}
	}
	// 40×40 distinct cells max.
	if s := inst.Stats(); s.UniqueProbes > 1600 {
		t.Errorf("unique probes %d exceed the quantisation grid", s.UniqueProbes)
	}
}

// TestDatasetInstrumentProbeMapMatchesStats on arbitrary probe sequences.
func TestDatasetInstrumentProbeMapMatchesStats(t *testing.T) {
	g := gridOfSize(16)
	w := csd.NewSquareWindow(0, 0, 16, 16)
	f := func(raw []uint8) bool {
		inst, err := NewDatasetInstrument(g, w, time.Millisecond)
		if err != nil {
			return false
		}
		for i := 0; i+1 < len(raw); i += 2 {
			inst.GetCurrent(float64(raw[i]%16)+0.5, float64(raw[i+1]%16)+0.5)
		}
		return len(inst.ProbeMap()) == inst.Stats().UniqueProbes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func gridOfSize(n int) *grid.Grid {
	g := grid.New(n, n)
	g.Apply(func(x, y int, _ float64) float64 { return float64(x + y*n) })
	return g
}
