package device

import (
	"math"
	"testing"
	"time"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

func testDoubleDot(t *testing.T) *DoubleDot {
	t.Helper()
	p, err := physics.FromGeometry(physics.Geometry{
		SteepSlope:   -8,
		ShallowSlope: -0.12,
		SteepPoint:   [2]float64{70, 0},
		ShallowPoint: [2]float64{0, 65},
		EC1:          4, EC2: 4, ECm: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &DoubleDot{Phys: p, Sens: sensor.DefaultDoubleDot(0.3, 0.3, 200)}
}

func TestCurrentDropsAcrossSteepLine(t *testing.T) {
	d := testDoubleDot(t)
	v2 := 10.0
	v1 := d.Phys.SteepLine().V1At(v2)
	before := d.CurrentAt(v1-1, v2, 0)
	after := d.CurrentAt(v1+1, v2, 0)
	if after >= before {
		t.Errorf("current across steep line: %v -> %v, want a drop", before, after)
	}
}

func TestSimInstrumentDwellAccounting(t *testing.T) {
	d := testDoubleDot(t)
	inst := NewSimInstrument(d, DefaultDwell, 1, 1)
	inst.GetCurrent(10, 10)
	inst.GetCurrent(20, 10)
	s := inst.Stats()
	if s.UniqueProbes != 2 || s.RawCalls != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Virtual != 100*time.Millisecond {
		t.Errorf("virtual time = %v, want 100ms", s.Virtual)
	}
}

func TestSimInstrumentMemoisation(t *testing.T) {
	d := testDoubleDot(t)
	inst := NewSimInstrument(d, DefaultDwell, 1, 1)
	a := inst.GetCurrent(10.2, 10.7)
	b := inst.GetCurrent(10.4, 10.9) // same 1 mV pixel
	if a != b {
		t.Errorf("memoised re-probe returned %v, first %v", b, a)
	}
	s := inst.Stats()
	if s.UniqueProbes != 1 {
		t.Errorf("unique probes = %d, want 1", s.UniqueProbes)
	}
	if s.RawCalls != 2 {
		t.Errorf("raw calls = %d, want 2", s.RawCalls)
	}
}

func TestSimInstrumentNoMemoWithoutQuant(t *testing.T) {
	d := testDoubleDot(t)
	d.Noise = noise.NewWhite(0.1, 1)
	inst := NewSimInstrument(d, DefaultDwell, 0, 0)
	a := inst.GetCurrent(10, 10)
	b := inst.GetCurrent(10, 10)
	if a == b {
		t.Error("unmemoised noisy re-probe returned identical value (suspicious)")
	}
	if got := inst.Stats().UniqueProbes; got != 2 {
		t.Errorf("unique probes = %d, want 2", got)
	}
}

func TestSimInstrumentResetStats(t *testing.T) {
	d := testDoubleDot(t)
	inst := NewSimInstrument(d, DefaultDwell, 1, 1)
	inst.GetCurrent(5, 5)
	inst.ResetStats()
	if s := inst.Stats(); s.UniqueProbes != 0 || s.Virtual != 0 || s.RawCalls != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestNoiseSampledAtVirtualTime(t *testing.T) {
	d := testDoubleDot(t)
	d.Noise = &noise.Drift{Linear: 1} // +1 nA per virtual second
	inst := NewSimInstrument(d, time.Second, 1, 1)
	a := inst.GetCurrent(10, 10) // t = 1 s
	b := inst.GetCurrent(50, 10) // t = 2 s; same (0,0) charge region
	driftDiff := (b - a) - (d.CurrentAt(50, 10, 0) - d.CurrentAt(10, 10, 0))
	if math.Abs(driftDiff-1.0) > 1e-9 {
		t.Errorf("drift between consecutive probes = %v, want 1.0", driftDiff)
	}
}

func TestDatasetInstrument(t *testing.T) {
	g := grid.New(4, 4)
	g.Apply(func(x, y int, _ float64) float64 { return float64(x + 10*y) })
	w := csd.NewSquareWindow(0, 0, 4, 4) // δ = 1 mV
	inst, err := NewDatasetInstrument(g, w, DefaultDwell)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.GetCurrent(w.V1At(2), w.V2At(3)); got != 32 {
		t.Errorf("dataset read = %v, want 32", got)
	}
	inst.GetCurrent(w.V1At(2), w.V2At(3)) // repeat: no new dwell
	s := inst.Stats()
	if s.UniqueProbes != 1 || s.RawCalls != 2 || s.Virtual != DefaultDwell {
		t.Errorf("stats = %+v", s)
	}
	if !inst.Probed(2, 3) || inst.Probed(0, 0) {
		t.Error("probed map wrong")
	}
	if pm := inst.ProbeMap(); len(pm) != 1 || pm[0] != (grid.Point{X: 2, Y: 3}) {
		t.Errorf("probe map = %v", pm)
	}
}

func TestDatasetInstrumentClampsOutside(t *testing.T) {
	g := grid.New(3, 3)
	g.Set(2, 2, 7)
	w := csd.NewSquareWindow(0, 0, 3, 3)
	inst, err := NewDatasetInstrument(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.GetCurrent(100, 100); got != 7 {
		t.Errorf("clamped read = %v, want 7", got)
	}
}

func TestDatasetInstrumentValidation(t *testing.T) {
	g := grid.New(3, 3)
	if _, err := NewDatasetInstrument(nil, csd.NewSquareWindow(0, 0, 3, 3), 0); err == nil {
		t.Error("accepted nil grid")
	}
	if _, err := NewDatasetInstrument(g, csd.NewSquareWindow(0, 0, 4, 4), 0); err == nil {
		t.Error("accepted size mismatch")
	}
}

func TestAcquireThroughSimInstrument(t *testing.T) {
	d := testDoubleDot(t)
	w := csd.NewSquareWindow(0, 0, 100, 32)
	inst := NewSimInstrument(d, DefaultDwell, w.StepV1(), w.StepV2())
	g, err := csd.Acquire(inst, w)
	if err != nil {
		t.Fatal(err)
	}
	s := inst.Stats()
	if s.UniqueProbes != 32*32 {
		t.Errorf("full raster probed %d unique points, want 1024", s.UniqueProbes)
	}
	if s.Virtual != 1024*DefaultDwell {
		t.Errorf("virtual time = %v, want %v", s.Virtual, 1024*DefaultDwell)
	}
	// The acquired CSD must show four distinct charge regions: compare
	// currents at representative corners.
	lo, hi := g.MinMax()
	if hi-lo <= 0 {
		t.Error("acquired CSD is flat")
	}
}
