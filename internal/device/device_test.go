package device

import (
	"math"
	"testing"
	"time"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

func testDoubleDot(t *testing.T) *DoubleDot {
	t.Helper()
	p, err := physics.FromGeometry(physics.Geometry{
		SteepSlope:   -8,
		ShallowSlope: -0.12,
		SteepPoint:   [2]float64{70, 0},
		ShallowPoint: [2]float64{0, 65},
		EC1:          4, EC2: 4, ECm: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &DoubleDot{Phys: p, Sens: sensor.DefaultDoubleDot(0.3, 0.3, 200)}
}

func TestCurrentDropsAcrossSteepLine(t *testing.T) {
	d := testDoubleDot(t)
	v2 := 10.0
	v1 := d.Phys.SteepLine().V1At(v2)
	before := d.CurrentAt(v1-1, v2, 0)
	after := d.CurrentAt(v1+1, v2, 0)
	if after >= before {
		t.Errorf("current across steep line: %v -> %v, want a drop", before, after)
	}
}

func TestSimInstrumentDwellAccounting(t *testing.T) {
	d := testDoubleDot(t)
	inst := NewSimInstrument(d, DefaultDwell, 1, 1)
	inst.GetCurrent(10, 10)
	inst.GetCurrent(20, 10)
	s := inst.Stats()
	if s.UniqueProbes != 2 || s.RawCalls != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Virtual != 100*time.Millisecond {
		t.Errorf("virtual time = %v, want 100ms", s.Virtual)
	}
}

func TestSimInstrumentMemoisation(t *testing.T) {
	d := testDoubleDot(t)
	inst := NewSimInstrument(d, DefaultDwell, 1, 1)
	a := inst.GetCurrent(10.2, 10.7)
	b := inst.GetCurrent(10.4, 10.9) // same 1 mV pixel
	if a != b {
		t.Errorf("memoised re-probe returned %v, first %v", b, a)
	}
	s := inst.Stats()
	if s.UniqueProbes != 1 {
		t.Errorf("unique probes = %d, want 1", s.UniqueProbes)
	}
	if s.RawCalls != 2 {
		t.Errorf("raw calls = %d, want 2", s.RawCalls)
	}
}

func TestSimInstrumentNoMemoWithoutQuant(t *testing.T) {
	d := testDoubleDot(t)
	d.Noise = noise.NewWhite(0.1, 1)
	inst := NewSimInstrument(d, DefaultDwell, 0, 0)
	a := inst.GetCurrent(10, 10)
	b := inst.GetCurrent(10, 10)
	if a == b {
		t.Error("unmemoised noisy re-probe returned identical value (suspicious)")
	}
	if got := inst.Stats().UniqueProbes; got != 2 {
		t.Errorf("unique probes = %d, want 2", got)
	}
}

func TestSimInstrumentResetStats(t *testing.T) {
	d := testDoubleDot(t)
	inst := NewSimInstrument(d, DefaultDwell, 1, 1)
	inst.GetCurrent(5, 5)
	inst.ResetStats()
	if s := inst.Stats(); s.UniqueProbes != 0 || s.Virtual != 0 || s.RawCalls != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestNoiseSampledAtVirtualTime(t *testing.T) {
	d := testDoubleDot(t)
	d.Noise = &noise.Drift{Linear: 1} // +1 nA per virtual second
	inst := NewSimInstrument(d, time.Second, 1, 1)
	a := inst.GetCurrent(10, 10) // t = 1 s
	b := inst.GetCurrent(50, 10) // t = 2 s; same (0,0) charge region
	driftDiff := (b - a) - (d.CurrentAt(50, 10, 0) - d.CurrentAt(10, 10, 0))
	if math.Abs(driftDiff-1.0) > 1e-9 {
		t.Errorf("drift between consecutive probes = %v, want 1.0", driftDiff)
	}
}

func TestDatasetInstrument(t *testing.T) {
	g := grid.New(4, 4)
	g.Apply(func(x, y int, _ float64) float64 { return float64(x + 10*y) })
	w := csd.NewSquareWindow(0, 0, 4, 4) // δ = 1 mV
	inst, err := NewDatasetInstrument(g, w, DefaultDwell)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.GetCurrent(w.V1At(2), w.V2At(3)); got != 32 {
		t.Errorf("dataset read = %v, want 32", got)
	}
	inst.GetCurrent(w.V1At(2), w.V2At(3)) // repeat: no new dwell
	s := inst.Stats()
	if s.UniqueProbes != 1 || s.RawCalls != 2 || s.Virtual != DefaultDwell {
		t.Errorf("stats = %+v", s)
	}
	if !inst.Probed(2, 3) || inst.Probed(0, 0) {
		t.Error("probed map wrong")
	}
	if pm := inst.ProbeMap(); len(pm) != 1 || pm[0] != (grid.Point{X: 2, Y: 3}) {
		t.Errorf("probe map = %v", pm)
	}
}

func TestDatasetInstrumentClampsOutside(t *testing.T) {
	g := grid.New(3, 3)
	g.Set(2, 2, 7)
	w := csd.NewSquareWindow(0, 0, 3, 3)
	inst, err := NewDatasetInstrument(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.GetCurrent(100, 100); got != 7 {
		t.Errorf("clamped read = %v, want 7", got)
	}
}

func TestDatasetInstrumentValidation(t *testing.T) {
	g := grid.New(3, 3)
	if _, err := NewDatasetInstrument(nil, csd.NewSquareWindow(0, 0, 3, 3), 0); err == nil {
		t.Error("accepted nil grid")
	}
	if _, err := NewDatasetInstrument(g, csd.NewSquareWindow(0, 0, 4, 4), 0); err == nil {
		t.Error("accepted size mismatch")
	}
}

func TestAcquireThroughSimInstrument(t *testing.T) {
	d := testDoubleDot(t)
	w := csd.NewSquareWindow(0, 0, 100, 32)
	inst := NewSimInstrument(d, DefaultDwell, w.StepV1(), w.StepV2())
	g, err := csd.Acquire(inst, w)
	if err != nil {
		t.Fatal(err)
	}
	s := inst.Stats()
	if s.UniqueProbes != 32*32 {
		t.Errorf("full raster probed %d unique points, want 1024", s.UniqueProbes)
	}
	if s.Virtual != 1024*DefaultDwell {
		t.Errorf("virtual time = %v, want %v", s.Virtual, 1024*DefaultDwell)
	}
	// The acquired CSD must show four distinct charge regions: compare
	// currents at representative corners.
	lo, hi := g.MinMax()
	if hi-lo <= 0 {
		t.Error("acquired CSD is flat")
	}
}

func TestAdvanceIdleClock(t *testing.T) {
	d := testDoubleDot(t)
	d.Noise = noise.NewWhite(0.05, 7)
	inst := NewSimInstrument(d, DefaultDwell, 0.5, 0.5)
	v0 := inst.GetCurrent(10, 10)
	st := inst.Stats()
	if st.UniqueProbes != 1 {
		t.Fatalf("probes = %d", st.UniqueProbes)
	}
	// A memo hit costs nothing and returns the recorded value.
	if v := inst.GetCurrent(10, 10); v != v0 {
		t.Fatalf("memo hit changed value: %v != %v", v, v0)
	}
	inst.Advance(time.Hour)
	st2 := inst.Stats()
	if st2.Virtual != st.Virtual+time.Hour {
		t.Errorf("Virtual = %v, want %v", st2.Virtual, st.Virtual+time.Hour)
	}
	if st2.UniqueProbes != st.UniqueProbes {
		t.Errorf("Advance changed probe accounting: %d -> %d", st.UniqueProbes, st2.UniqueProbes)
	}
	// After the idle epoch, re-requesting the configuration is a fresh
	// measurement: a new dwell is charged and fresh noise is sampled.
	_ = inst.GetCurrent(10, 10)
	st3 := inst.Stats()
	if st3.UniqueProbes != st2.UniqueProbes+1 {
		t.Errorf("post-Advance probe not re-measured: probes %d -> %d", st2.UniqueProbes, st3.UniqueProbes)
	}
	// Advance(<=0) is a no-op.
	inst.Advance(0)
	inst.Advance(-time.Second)
	if inst.Stats() != st3 {
		t.Error("non-positive Advance changed state")
	}
}

func TestLeverDriftMovesLines(t *testing.T) {
	// A pure shear on v2 moves the steep transition's measured position; the
	// same probe sequence on an undrifted twin does not move.
	mk := func(drift *LeverDrift) *SimInstrument {
		d := testDoubleDot(t)
		d.Drift = drift
		return NewSimInstrument(d, DefaultDwell, 0, 0) // no memo: re-measure freely
	}
	crossing := func(inst *SimInstrument, v2 float64) float64 {
		// Walk v1 and return the position of the largest drop.
		best, bestPos := 0.0, math.NaN()
		prev := math.NaN()
		for v1 := 60.0; v1 <= 80; v1 += 0.25 {
			c := inst.GetCurrent(v1, v2)
			if !math.IsNaN(prev) && prev-c > best {
				best, bestPos = prev-c, v1
			}
			prev = c
		}
		return bestPos
	}
	steady := mk(nil)
	p0 := crossing(steady, 10)
	steady.Advance(24 * time.Hour)
	if p1 := crossing(steady, 10); p1 != p0 {
		t.Fatalf("undrifted line moved: %v -> %v", p0, p1)
	}

	drifting := mk(&LeverDrift{Offset1: &noise.Drift{Linear: 1e-4}})
	q0 := crossing(drifting, 10)
	drifting.Advance(24 * time.Hour)
	q1 := crossing(drifting, 10)
	// 1e-4 mV/s × 86400 s ≈ 8.6 mV of line shift.
	if shift := math.Abs(q1 - q0); shift < 4 {
		t.Errorf("drifted line moved only %.2f mV over a day, want several mV", shift)
	}
}

func TestLeverDriftSpecBuild(t *testing.T) {
	spec := DoubleDotSpec{
		Seed: 3,
		LeverDrift: &LeverDriftSpec{
			Shear21: noise.Params{DriftLinear: 2e-6, PinkAmp: 0.01},
			Offset2: noise.Params{JumpAmp: 0.8, JumpInterval: 7200},
		},
	}
	inst, _, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if inst.Dev.Drift == nil || inst.Dev.Drift.Shear21 == nil || inst.Dev.Drift.Offset2 == nil {
		t.Fatal("configured drift channels not built")
	}
	if inst.Dev.Drift.Shear12 != nil || inst.Dev.Drift.Offset1 != nil {
		t.Error("silent drift channels should stay nil")
	}
	// Equal specs give identical drift realisations.
	specB := spec
	instB, _, err := specB.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ti := float64(i) * 977
		a := inst.Dev.Drift.Shear21.Sample(ti)
		b := instB.Dev.Drift.Shear21.Sample(ti)
		if a != b {
			t.Fatalf("drift realisation differs at t=%v: %v != %v", ti, a, b)
		}
	}
	// An all-zero LeverDriftSpec builds no drift at all.
	none := DoubleDotSpec{LeverDrift: &LeverDriftSpec{}}
	instN, _, err := none.Build()
	if err != nil {
		t.Fatal(err)
	}
	if instN.Dev.Drift != nil {
		t.Error("zero LeverDriftSpec built a drift")
	}
}

func TestDriftedBatchMatchesScalar(t *testing.T) {
	// With drift present the batch contract must still be bit-identical to
	// the scalar sequence — it falls back to the scalar path internally.
	mk := func() *SimInstrument {
		d := testDoubleDot(t)
		d.Noise = noise.NewPinkBath(0.01, 8, 0.01, 10, 11)
		d.Drift = &LeverDrift{
			Shear21: noise.NewPinkBath(0.02, 6, 1e-4, 1, 5),
			Offset1: &noise.Drift{Linear: 1e-5},
		}
		return NewSimInstrument(d, DefaultDwell, 0.5, 0.5)
	}
	win := csd.NewSquareWindow(0, 0, 20, 40)
	scalar := mk()
	var want []float64
	for y := 0; y < win.Rows; y++ {
		for x := 0; x < win.Cols; x++ {
			want = append(want, scalar.GetCurrent(win.V1At(x), win.V2At(y)))
		}
	}
	batch := mk()
	g, err := batch.AcquireGrid(win, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range g.Data() {
		if v != want[i] {
			t.Fatalf("drifted AcquireGrid diverges from scalar at %d: %v != %v", i, v, want[i])
		}
	}
	if batch.Stats() != scalar.Stats() {
		t.Errorf("stats diverge: %+v != %+v", batch.Stats(), scalar.Stats())
	}

	rowBatch, rowScalar := mk(), mk()
	v1s := make([]float64, win.Cols)
	for x := range v1s {
		v1s[x] = win.V1At(x)
	}
	out := make([]float64, win.Cols)
	rowBatch.CurrentRow(win.V2At(3), v1s, out)
	for x, v1 := range v1s {
		if w := rowScalar.GetCurrent(v1, win.V2At(3)); out[x] != w {
			t.Fatalf("drifted CurrentRow diverges at %d: %v != %v", x, out[x], w)
		}
	}
}
