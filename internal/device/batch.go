// Batched probing: the zero-allocation row store behind SimInstrument's
// memoisation, the BatchInstrument contract, and the full-grid acquisition
// fast paths of both instrument kinds.
//
// The contract of every batch method is bit-for-bit parity with the scalar
// path: probing a batch returns exactly the currents, Stats and noise
// realisation that the equivalent sequence of GetCurrent calls would have
// produced. Parallel grid renders keep that guarantee by splitting the work
// into a pure, clock-free physics phase that fans out across internal/sched
// workers and a serial replay phase that walks the raster in probe order,
// charging the virtual clock and sampling noise at exactly the times the
// scalar path would have used.
package device

import (
	"context"
	"runtime"
	"sort"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/sched"
)

// BatchInstrument is the batched probing contract: a whole scan row or an
// arbitrary probe list served in one call, bit-identically to the
// equivalent GetCurrent sequence. Both simulated instrument kinds implement
// it; csd.Acquire routes full-raster acquisition through it automatically.
type BatchInstrument interface {
	Instrument
	// CurrentRow measures (v1s[i], v2) into out[i] for every i, in slice
	// order. out must hold at least len(v1s) elements.
	CurrentRow(v2 float64, v1s, out []float64)
	// ProbeMany measures (v1s[i], v2s[i]) into out[i] for every i, in slice
	// order. out must hold at least len(v1s) elements.
	ProbeMany(v1s, v2s, out []float64)
}

// memoRows is the grid-aligned memoisation store: measured currents
// bucketed by quantised-v2 row, each row a flat []float64 with a set mask.
// It replaces the former map[[2]int64]float64 so that, once a row buffer
// exists, a probe costs a cached row pointer and two slice indexes — no
// hashing, no allocation.
type memoRows struct {
	rows    map[int64]*memoRow
	lastKey int64
	last    *memoRow
	count   int // memoised cells across all rows
}

// memoRow is one quantised-v2 row: vals[i] holds the current of v1 cell
// base+i where set[i] is true.
type memoRow struct {
	base int64
	vals []float64
	set  []bool
}

func newMemoRows() memoRows {
	return memoRows{rows: make(map[int64]*memoRow)}
}

// row returns the bucket for a quantised-v2 key, creating it on first use.
// A one-entry cache makes the common row-scan pattern skip the map.
func (m *memoRows) row(key int64) *memoRow {
	if m.last != nil && m.lastKey == key {
		return m.last
	}
	r := m.rows[key]
	if r == nil {
		r = &memoRow{}
		m.rows[key] = r
	}
	m.lastKey, m.last = key, r
	return r
}

// reset empties every row in place, keeping the buffers warm.
func (m *memoRows) reset() {
	for _, r := range m.rows {
		for i := range r.set {
			r.set[i] = false
		}
	}
	m.count = 0
}

// cellsSorted collects the memoised cells as {v1 cell, v2 cell} pairs
// sorted by (v2, v1). Rows are stored sorted along v1 already, so only the
// row keys need sorting.
func (m *memoRows) cellsSorted() [][2]int64 {
	keys := make([]int64, 0, len(m.rows))
	for k := range m.rows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([][2]int64, 0, m.count)
	for _, c2 := range keys {
		r := m.rows[c2]
		for i, ok := range r.set {
			if ok {
				out = append(out, [2]int64{r.base + int64(i), c2})
			}
		}
	}
	return out
}

func (r *memoRow) get(c int64) (float64, bool) {
	i := c - r.base
	if i < 0 || i >= int64(len(r.vals)) || !r.set[i] {
		return 0, false
	}
	return r.vals[i], true
}

func (r *memoRow) put(c int64, v float64) {
	if len(r.vals) == 0 {
		r.base = c
		if cap(r.vals) == 0 {
			r.vals = make([]float64, 1, 64)
			r.set = make([]bool, 1, 64)
		} else {
			r.vals = r.vals[:1]
			r.set = r.set[:1]
		}
		r.vals[0] = v
		r.set[0] = true
		return
	}
	i := c - r.base
	if i < 0 {
		// Extend leftward: shift by at least the current length so repeated
		// left growth stays amortised.
		pad := -i
		if pad < int64(len(r.vals)) {
			pad = int64(len(r.vals))
		}
		nv := make([]float64, pad+int64(len(r.vals)))
		ns := make([]bool, pad+int64(len(r.set)))
		copy(nv[pad:], r.vals)
		copy(ns[pad:], r.set)
		r.vals, r.set = nv, ns
		r.base -= pad
		i = c - r.base
	}
	if i >= int64(len(r.vals)) {
		need := int(i + 1)
		if need <= cap(r.vals) {
			old := len(r.vals)
			r.vals = r.vals[:need]
			r.set = r.set[:need]
			for j := old; j < need; j++ {
				r.vals[j] = 0
				r.set[j] = false
			}
		} else {
			newCap := 2 * cap(r.vals)
			if newCap < need {
				newCap = need
			}
			nv := make([]float64, need, newCap)
			ns := make([]bool, need, newCap)
			copy(nv, r.vals)
			copy(ns, r.set)
			r.vals, r.set = nv, ns
		}
	}
	r.vals[i] = v
	r.set[i] = true
}

// CurrentRow implements BatchInstrument: one memo-row lookup and one device
// table check serve the whole row, and the inner loop runs the same
// fixed-arity physics/sensor/noise sequence the scalar path runs — same
// currents, same Stats, same noise draws.
func (s *SimInstrument) CurrentRow(v2 float64, v1s, out []float64) {
	if s.Dev.Drift != nil {
		// Lever-arm drift makes the physics itself time-dependent, so the
		// clock-free inline replay below would diverge from the scalar path.
		// The scalar loop IS the contract here.
		for i, v1 := range v1s {
			out[i] = s.GetCurrent(v1, v2)
		}
		return
	}
	s.stats.RawCalls += len(v1s)
	memoised := s.QuantV1 > 0 && s.QuantV2 > 0
	var row *memoRow
	if memoised {
		row = s.memo.row(quantKey(v2, s.QuantV2))
	}
	tab := s.Dev.fast()
	fast := tab != nil && s.Dev.Sens.CanFast2()
	phys, sens, noise := s.Dev.Phys, &s.Dev.Sens, s.Dev.Noise
	for i, v1 := range v1s {
		var c1 int64
		if memoised {
			c1 = quantKey(v1, s.QuantV1)
			if v, ok := row.get(c1); ok {
				out[i] = v
				continue
			}
		}
		s.stats.UniqueProbes++
		s.stats.Virtual += s.Dwell
		var v float64
		if fast {
			n1, n2 := tab.Ground(phys.Mu(0, v1, v2), phys.Mu(1, v1, v2))
			v = sens.Current2(v1, v2, n1, n2)
		} else {
			n1, n2 := phys.GroundState(v1, v2)
			v = sens.Current([]float64{v1, v2}, []int{n1, n2})
		}
		if noise != nil {
			v += noise.Sample(s.stats.Virtual.Seconds())
		}
		out[i] = v
		if memoised {
			s.record(row, c1, v)
		}
	}
}

// ProbeMany implements BatchInstrument. The memo's one-entry row cache
// keeps runs of probes sharing a v2 off the map.
func (s *SimInstrument) ProbeMany(v1s, v2s, out []float64) {
	for i := range v1s {
		out[i] = s.GetCurrent(v1s[i], v2s[i])
	}
}

// AcquireGrid rasters the full window, bottom row first, bit-identically to
// a scalar csd raster through GetCurrent — same grid, Stats, memo contents
// and noise realisation. The noiseless physics of the rows is computed in
// parallel on an internal/sched pool; the virtual clock is then replayed
// serially over the raster, so every noise process is sampled in probe
// order at exactly the virtual times the scalar path would have charged
// (per-row virtual-clock scheduling). workers <= 0 means one per CPU.
func (s *SimInstrument) AcquireGrid(win csd.Window, workers int) (*grid.Grid, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	if s.Dev.Drift != nil {
		// Time-dependent physics cannot be pre-rendered clock-free: raster
		// serially through the scalar path, which samples drift and noise at
		// the true per-probe virtual times.
		g := grid.New(win.Cols, win.Rows)
		data := g.Data()
		for y := 0; y < win.Rows; y++ {
			v2 := win.V2At(y)
			for x := 0; x < win.Cols; x++ {
				data[y*win.Cols+x] = s.GetCurrent(win.V1At(x), v2)
			}
		}
		return g, nil
	}
	g := grid.New(win.Cols, win.Rows)
	data := g.Data()
	v1s := make([]float64, win.Cols)
	for x := range v1s {
		v1s[x] = win.V1At(x)
	}

	// Phase 1: pure physics and sensor response, clock-free. Prepare the
	// derived tables first so render workers only read shared state.
	s.Dev.Prepare()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > win.Rows {
		workers = win.Rows
	}
	renderRows := func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			s.Dev.CurrentRowNoiseless(win.V2At(y), v1s, data[y*win.Cols:(y+1)*win.Cols])
		}
	}
	if workers <= 1 {
		renderRows(0, win.Rows)
	} else {
		pool := sched.New(workers)
		per := (win.Rows + workers - 1) / workers
		_ = pool.Map(context.Background(), workers, func(_ context.Context, c int) error {
			y0 := c * per
			y1 := y0 + per
			if y1 > win.Rows {
				y1 = win.Rows
			}
			renderRows(y0, y1)
			return nil
		})
	}

	// Phase 2: serial raster replay — memoisation, accounting and noise on
	// the virtual clock, in the exact order the scalar acquisition probes.
	memoised := s.QuantV1 > 0 && s.QuantV2 > 0
	noise := s.Dev.Noise
	for y := 0; y < win.Rows; y++ {
		v2 := win.V2At(y)
		var row *memoRow
		if memoised {
			row = s.memo.row(quantKey(v2, s.QuantV2))
		}
		for x := 0; x < win.Cols; x++ {
			s.stats.RawCalls++
			i := y*win.Cols + x
			var c1 int64
			if memoised {
				c1 = quantKey(v1s[x], s.QuantV1)
				if v, ok := row.get(c1); ok {
					data[i] = v
					continue
				}
			}
			s.stats.UniqueProbes++
			s.stats.Virtual += s.Dwell
			v := data[i]
			if noise != nil {
				v += noise.Sample(s.stats.Virtual.Seconds())
			}
			data[i] = v
			if memoised {
				s.record(row, c1, v)
			}
		}
	}
	return g, nil
}

// CurrentRow implements BatchInstrument: the row index and pixel base are
// resolved once, and each element replays the scalar path's probed-map and
// accounting updates.
func (d *DatasetInstrument) CurrentRow(v2 float64, v1s, out []float64) {
	d.stats.RawCalls += len(v1s)
	y := d.Win.YOf(v2)
	rowOff := y * d.Data.W
	for i, v1 := range v1s {
		x := d.Win.XOf(v1)
		idx := rowOff + x
		if !d.probed[idx] {
			d.probed[idx] = true
			d.stats.UniqueProbes++
			d.stats.Virtual += d.Dwell
		}
		out[i] = d.Data.At(x, y)
	}
}

// ProbeMany implements BatchInstrument.
func (d *DatasetInstrument) ProbeMany(v1s, v2s, out []float64) {
	for i := range v1s {
		out[i] = d.GetCurrent(v1s[i], v2s[i])
	}
}

// AcquireGrid replays the full window from the recorded dataset in one
// pass. The window-pixel → dataset-pixel mapping is resolved once per axis,
// so values, probed map and Stats come out bit-identical to the scalar
// raster without the per-probe interface and clamping work. Replaying a
// recorded grid is memory-bound, so workers is accepted only for contract
// symmetry and the copy runs serially.
func (d *DatasetInstrument) AcquireGrid(win csd.Window, _ int) (*grid.Grid, error) {
	if err := win.Validate(); err != nil {
		return nil, err
	}
	mx := make([]int, win.Cols)
	for x := range mx {
		mx[x] = d.Win.XOf(win.V1At(x))
	}
	my := make([]int, win.Rows)
	for y := range my {
		my[y] = d.Win.YOf(win.V2At(y))
	}
	g := grid.New(win.Cols, win.Rows)
	data := g.Data()
	src := d.Data.Data()
	d.stats.RawCalls += win.Cols * win.Rows
	for y, sy := range my {
		rowOff := sy * d.Data.W
		dst := data[y*win.Cols : (y+1)*win.Cols]
		for x, sx := range mx {
			idx := rowOff + sx
			if !d.probed[idx] {
				d.probed[idx] = true
				d.stats.UniqueProbes++
				d.stats.Virtual += d.Dwell
			}
			dst[x] = src[idx]
		}
	}
	return g, nil
}
