package device

import (
	"testing"
	"time"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/xrand"
)

// The batch contract under test: every batched method must return
// bit-identical currents and identical Stats to the equivalent sequence of
// scalar GetCurrent calls, on noiseless and noisy devices alike — noise
// realisations are fixed by the probing schedule, so parity proves the
// batch path charges the virtual clock in exactly the scalar order.

// testSpec returns a spec whose noise params exercise every temporal
// process (white, pink, RTN, drift, jumps).
func testSpec(noisy bool) *DoubleDotSpec {
	s := &DoubleDotSpec{Seed: 42}
	if noisy {
		s.Noise = noise.Params{
			WhiteSigma: 0.02, PinkAmp: 0.015, PinkN: 8,
			RTNAmp: 0.05, RTNRate: 0.4,
			DriftLinear: 1e-4, DriftAmp: 0.01, DriftPeriod: 30,
			JumpAmp: 0.05, JumpInterval: 20,
		}
	}
	return s
}

// buildPair builds two instruments from the same spec: identical devices
// with identical noise realisations, one probed scalar and one batched.
func buildPair(t *testing.T, noisy bool) (scalar, batch *SimInstrument, win csd.Window) {
	t.Helper()
	a, win, err := testSpec(noisy).Build()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := testSpec(noisy).Build()
	if err != nil {
		t.Fatal(err)
	}
	return a, b, win
}

func statsEqual(t *testing.T, context string, a, b Stats) {
	t.Helper()
	if a != b {
		t.Fatalf("%s: stats diverge: scalar %+v, batch %+v", context, a, b)
	}
}

// TestCurrentRowMatchesScalarRaster rasters the full window row by row:
// scalar per-pixel probes vs CurrentRow, noiseless and noisy.
func TestCurrentRowMatchesScalarRaster(t *testing.T) {
	for _, noisy := range []bool{false, true} {
		scalar, batch, win := buildPair(t, noisy)
		v1s := make([]float64, win.Cols)
		for x := range v1s {
			v1s[x] = win.V1At(x)
		}
		got := make([]float64, win.Cols)
		for y := 0; y < win.Rows; y++ {
			v2 := win.V2At(y)
			batch.CurrentRow(v2, v1s, got)
			for x := 0; x < win.Cols; x++ {
				want := scalar.GetCurrent(v1s[x], v2)
				if got[x] != want {
					t.Fatalf("noisy=%v pixel (%d,%d): batch %v != scalar %v", noisy, x, y, got[x], want)
				}
			}
			statsEqual(t, "row", scalar.Stats(), batch.Stats())
		}
		if p := batch.Stats().UniqueProbes; p != win.Cols*win.Rows {
			t.Fatalf("noisy=%v: raster measured %d unique probes, want %d", noisy, p, win.Cols*win.Rows)
		}
	}
}

// TestProbeManyMatchesScalarSparse replays a sparse, repetitive probe
// sequence — the memo-hit-heavy workload of the fast extraction's sweeps —
// through ProbeMany and compares against scalar probing, noiseless and
// noisy.
func TestProbeManyMatchesScalarSparse(t *testing.T) {
	for _, noisy := range []bool{false, true} {
		scalar, batch, win := buildPair(t, noisy)
		rng := xrand.New(7)
		const n = 4000
		v1s := make([]float64, n)
		v2s := make([]float64, n)
		for i := range v1s {
			// Cluster probes so re-measured cells (memo hits) are common,
			// including probes one pixel outside the window.
			v1s[i] = win.V1At(rng.Intn(win.Cols+2) - 1)
			v2s[i] = win.V2At(rng.Intn(win.Rows+2) - 1)
		}
		got := make([]float64, n)
		batch.ProbeMany(v1s, v2s, got)
		for i := range v1s {
			if want := scalar.GetCurrent(v1s[i], v2s[i]); got[i] != want {
				t.Fatalf("noisy=%v probe %d at (%v,%v): batch %v != scalar %v",
					noisy, i, v1s[i], v2s[i], got[i], want)
			}
		}
		statsEqual(t, "sparse", scalar.Stats(), batch.Stats())
		if s := batch.Stats(); s.UniqueProbes >= s.RawCalls {
			t.Fatalf("noisy=%v: sparse schedule produced no memo hits (unique %d, raw %d) — not exercising the hit path",
				noisy, s.UniqueProbes, s.RawCalls)
		}
	}
}

// TestAcquireGridMatchesScalarAcquire: the parallel render must reproduce a
// scalar raster bit for bit — grid, Stats and memo — on a noisy device,
// at several worker counts, including after earlier sparse probing left
// memoised cells behind.
func TestAcquireGridMatchesScalarAcquire(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		scalar, batch, win := buildPair(t, true)

		// Pre-probe a sparse set so the raster hits memoised cells.
		for i := 0; i < 50; i++ {
			v1 := win.V1At(i * 2 % win.Cols)
			v2 := win.V2At(i * 3 % win.Rows)
			scalar.GetCurrent(v1, v2)
			batch.GetCurrent(v1, v2)
		}

		want, err := scalarAcquire(scalar, win)
		if err != nil {
			t.Fatal(err)
		}
		got, err := batch.AcquireGrid(win, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d: parallel render differs from scalar raster", workers)
		}
		statsEqual(t, "acquire", scalar.Stats(), batch.Stats())
		sc, bc := scalar.ProbedCells(), batch.ProbedCells()
		if len(sc) != len(bc) {
			t.Fatalf("workers=%d: probed cells %d != %d", workers, len(bc), len(sc))
		}
		for i := range sc {
			if sc[i] != bc[i] {
				t.Fatalf("workers=%d: probed cell %d: %v != %v", workers, i, bc[i], sc[i])
			}
		}
	}
}

// scalarAcquire is the pre-batch acquisition loop: one GetCurrent per
// pixel, bottom row first — the reference the batch paths must match.
func scalarAcquire(inst *SimInstrument, win csd.Window) (*grid.Grid, error) {
	g := grid.New(win.Cols, win.Rows)
	for y := 0; y < win.Rows; y++ {
		v2 := win.V2At(y)
		for x := 0; x < win.Cols; x++ {
			g.Set(x, y, inst.GetCurrent(win.V1At(x), v2))
		}
	}
	return g, nil
}

// TestDatasetBatchParity: the replay instrument's row and grid paths must
// match its scalar path — values, probed map and Stats.
func TestDatasetBatchParity(t *testing.T) {
	g := gridOfSize(32)
	win := csd.NewSquareWindow(0, 0, 32, 32)
	mk := func() *DatasetInstrument {
		inst, err := NewDatasetInstrument(g, win, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}

	scalar, rowed, grided := mk(), mk(), mk()

	// Sparse prefix so the full acquisition sees pre-probed pixels.
	rng := xrand.New(3)
	for i := 0; i < 40; i++ {
		v1, v2 := float64(rng.Intn(34))-1, float64(rng.Intn(34))-1
		a := scalar.GetCurrent(v1, v2)
		if b := rowed.GetCurrent(v1, v2); b != a {
			t.Fatalf("probe %d: %v != %v", i, b, a)
		}
		grided.GetCurrent(v1, v2)
	}

	v1s := make([]float64, win.Cols)
	for x := range v1s {
		v1s[x] = win.V1At(x)
	}
	out := make([]float64, win.Cols)
	want, err := grided.AcquireGrid(win, 0)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < win.Rows; y++ {
		v2 := win.V2At(y)
		rowed.CurrentRow(v2, v1s, out)
		for x := 0; x < win.Cols; x++ {
			a := scalar.GetCurrent(v1s[x], v2)
			if out[x] != a {
				t.Fatalf("row path pixel (%d,%d): %v != %v", x, y, out[x], a)
			}
			if want.At(x, y) != a {
				t.Fatalf("grid path pixel (%d,%d): %v != %v", x, y, want.At(x, y), a)
			}
		}
	}
	if scalar.Stats() != rowed.Stats() || scalar.Stats() != grided.Stats() {
		t.Fatalf("stats diverge: scalar %+v, row %+v, grid %+v",
			scalar.Stats(), rowed.Stats(), grided.Stats())
	}
	if len(grided.ProbeMap()) != len(scalar.ProbeMap()) {
		t.Fatal("probe maps diverge")
	}
}

// TestProbedCellsCache: repeated calls between probes return the cached
// slice without rebuilding; a new probe invalidates it; a memo-hit probe
// does not.
func TestProbedCellsCache(t *testing.T) {
	d := testDoubleDot(t)
	inst := NewSimInstrument(d, time.Millisecond, 1, 1)
	inst.GetCurrent(3, 4)
	inst.GetCurrent(1, 2)
	first := inst.ProbedCells()
	if len(first) != 2 {
		t.Fatalf("got %d cells, want 2", len(first))
	}
	if second := inst.ProbedCells(); &second[0] != &first[0] {
		t.Error("repeated ProbedCells rebuilt the cache with no intervening probe")
	}
	inst.GetCurrent(3, 4) // memo hit: nothing new measured
	if third := inst.ProbedCells(); &third[0] != &first[0] {
		t.Error("memo-hit probe invalidated the cache")
	}
	inst.GetCurrent(9, 9)
	fourth := inst.ProbedCells()
	if len(fourth) != 3 {
		t.Fatalf("after new probe got %d cells, want 3", len(fourth))
	}
	// Sorted by (v2 cell, v1 cell), as before the cache existed.
	for i := 1; i < len(fourth); i++ {
		a, b := fourth[i-1], fourth[i]
		if a[1] > b[1] || (a[1] == b[1] && a[0] >= b[0]) {
			t.Fatalf("cells not sorted: %v before %v", a, b)
		}
	}
}

// TestResetStatsKeepsParity: resetting must fully clear the memo (warm
// buffers are an implementation detail) so a re-raster re-measures
// everything.
func TestResetStatsKeepsParity(t *testing.T) {
	scalar, batch, win := buildPair(t, true)
	if _, err := batch.AcquireGrid(win, 2); err != nil {
		t.Fatal(err)
	}
	batch.ResetStats()
	if s := batch.Stats(); s != (Stats{}) {
		t.Fatalf("stats not cleared: %+v", s)
	}
	if cells := batch.ProbedCells(); len(cells) != 0 {
		t.Fatalf("memo not cleared: %d cells", len(cells))
	}
	// After reset the instrument replays the same schedule as a fresh
	// scalar instrument does — the noise processes have advanced, so
	// compare against a scalar instrument probed through the same history.
	for y := 0; y < win.Rows; y++ {
		v2 := win.V2At(y)
		for x := 0; x < win.Cols; x++ {
			scalar.GetCurrent(win.V1At(x), v2)
		}
	}
	scalar.ResetStats()
	v1s := make([]float64, win.Cols)
	for x := range v1s {
		v1s[x] = win.V1At(x)
	}
	out := make([]float64, win.Cols)
	for y := 0; y < win.Rows; y++ {
		v2 := win.V2At(y)
		batch.CurrentRow(v2, v1s, out)
		for x := 0; x < win.Cols; x++ {
			if want := scalar.GetCurrent(v1s[x], v2); out[x] != want {
				t.Fatalf("post-reset pixel (%d,%d): %v != %v", x, y, out[x], want)
			}
		}
	}
	statsEqual(t, "post-reset", scalar.Stats(), batch.Stats())
}

// TestFastPathMatchesGenericCurrentAt: the fixed-arity table path must be
// bit-identical to the generic brute-force path on the same device. The
// generic path is forced by an oversized MaxN (no table) — the physics is
// unchanged because higher occupations never win at these voltages.
func TestFastPathMatchesGenericCurrentAt(t *testing.T) {
	fast := testDoubleDot(t)
	if fast.fast() == nil || !fast.Sens.CanFast2() {
		t.Fatal("reference device must take the fast path")
	}
	for i := 0; i < 2000; i++ {
		v1 := float64(i%100) * 0.73
		v2 := float64(i/100) * 2.1
		n1, n2 := fast.Phys.GroundState(v1, v2)
		want := fast.Sens.Current([]float64{v1, v2}, []int{n1, n2})
		if got := fast.CurrentAt(v1, v2, 0); got != want {
			t.Fatalf("CurrentAt(%v,%v): fast %v != generic %v", v1, v2, got, want)
		}
	}
}

// TestFastPathRebuildsOnParamChange: mutating the physics after probing
// must not serve stale ground states.
func TestFastPathRebuildsOnParamChange(t *testing.T) {
	d := testDoubleDot(t)
	v1, v2 := 30.0, 30.0
	before := d.CurrentAt(v1, v2, 0)
	mutated := *d.Phys
	mutated.Offset[0] += 2.5 // shift dot 1's lines
	d.Phys = &mutated
	n1, n2 := d.Phys.GroundState(v1, v2)
	want := d.Sens.Current([]float64{v1, v2}, []int{n1, n2})
	if got := d.CurrentAt(v1, v2, 0); got != want {
		t.Fatalf("after mutation: got %v, want %v (stale table?)", got, want)
	}
	_ = before
}

// TestGroundTableMatchesBruteForce sweeps voltages across several random
// parameter sets.
func TestGroundTableMatchesBruteForce(t *testing.T) {
	rng := xrand.New(99)
	for trial := 0; trial < 20; trial++ {
		p := &physics.DoubleDot{
			EC:  [2]float64{2 + 4*rng.Float64(), 2 + 4*rng.Float64()},
			ECm: rng.Float64(),
			Alpha: [2][2]float64{
				{0.05 + 0.1*rng.Float64(), 0.02 * rng.Float64()},
				{0.02 * rng.Float64(), 0.05 + 0.1*rng.Float64()},
			},
			Offset: [2]float64{-4 * rng.Float64(), -4 * rng.Float64()},
			MaxN:   1 + rng.Intn(5),
		}
		if err := p.Validate(); err != nil {
			continue // rare non-dominant draw
		}
		tab := p.Table()
		if tab == nil {
			t.Fatalf("trial %d: no table for MaxN=%d", trial, p.MaxN)
		}
		for i := 0; i < 500; i++ {
			v1 := 120 * rng.Float64()
			v2 := 120 * rng.Float64()
			wn1, wn2 := p.GroundState(v1, v2)
			gn1, gn2 := tab.Ground(p.Mu(0, v1, v2), p.Mu(1, v1, v2))
			if gn1 != wn1 || gn2 != wn2 {
				t.Fatalf("trial %d at (%v,%v): table (%d,%d) != brute (%d,%d)",
					trial, v1, v2, gn1, gn2, wn1, wn2)
			}
		}
	}
}
