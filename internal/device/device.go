// Package device ties the physics, sensor and noise models into simulated
// measurement instruments.
//
// An Instrument implements the paper's Algorithm 1 (getCurrent): set the
// plunger voltages, wait the dwell time, read the charge-sensor current. The
// dwell wait — typically 50 ms on charge-sensed devices — dominates the
// paper's runtimes, so the simulated instruments charge it on a virtual
// clock and expose the totals through Stats. Temporal noise processes are
// sampled at the virtual time of each measurement, so noise correlations
// follow the probing schedule just as they do on hardware.
//
// Instruments memoise measured configurations: re-requesting a voltage
// configuration returns the recorded value without a new dwell, matching the
// paper's accounting where "number of points probed" counts distinct
// configurations.
package device

import (
	"errors"
	"math"
	"time"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

// DefaultDwell is the paper's per-point dwell time (Section 5.1).
const DefaultDwell = 50 * time.Millisecond

// Stats accounts for an instrument's experimental cost.
type Stats struct {
	UniqueProbes int           // distinct voltage configurations measured (paper's "points probed")
	RawCalls     int           // total getCurrent invocations, cache hits included
	Virtual      time.Duration // dwell time accumulated on the virtual clock
}

// Instrument measures the charge-sensor current at a two-gate voltage
// configuration.
type Instrument interface {
	GetCurrent(v1, v2 float64) float64
}

// Accountant is implemented by instruments that track experimental cost.
type Accountant interface {
	Stats() Stats
	ResetStats()
}

// DoubleDot is a simulated two-plunger, two-dot device with a charge sensor.
type DoubleDot struct {
	Phys  *physics.DoubleDot
	Sens  sensor.Params
	Noise noise.Process // optional; sampled at the virtual measurement time

	// Drift, when non-nil, makes the device's lever arms wander on the
	// virtual clock: gate voltages pass through a slowly time-varying affine
	// warp before reaching the physics. This is the mechanism that lets an
	// extracted virtual-gate matrix go stale — additive sensor noise alone
	// never moves the transition lines.
	Drift *LeverDrift

	// fp caches the derived ground-state table of the zero-allocation probe
	// path; it is rebuilt automatically whenever the physics parameters no
	// longer match the snapshot it was built from.
	fp *fastPath
}

// LeverDrift models slow wander of the effective gate lever arms and
// operating point: the voltages the dots see are
//
//	w1 = v1 + s12(t)·v2 + o1(t)
//	w2 = v2 + s21(t)·v1 + o2(t)
//
// where the shears (dimensionless) and offsets (mV) are noise processes on
// the instrument's virtual clock. A shear changes the apparent transition
// slopes — exactly the cross-capacitance wander that invalidates a
// virtualization matrix — while offsets (e.g. charge jumps) translate the
// whole honeycomb, moving the knee the matrix was anchored to. Any field may
// be nil.
type LeverDrift struct {
	Shear12, Shear21 noise.Process // cross lever-arm wander, dimensionless
	Offset1, Offset2 noise.Process // gate operating-point wander, mV
}

// Warp maps the requested gate voltages to the effective voltages at virtual
// time t.
func (l *LeverDrift) Warp(v1, v2, t float64) (float64, float64) {
	w1, w2 := v1, v2
	if l.Shear12 != nil {
		w1 += l.Shear12.Sample(t) * v2
	}
	if l.Shear21 != nil {
		w2 += l.Shear21.Sample(t) * v1
	}
	if l.Offset1 != nil {
		w1 += l.Offset1.Sample(t)
	}
	if l.Offset2 != nil {
		w2 += l.Offset2.Sample(t)
	}
	return w1, w2
}

// fastPath is the cached derived state of the probe hot path.
type fastPath struct {
	phys physics.DoubleDot    // parameter snapshot the table was built from
	tab  *physics.GroundTable // nil when MaxN exceeds the table bound
}

// fast returns the device's ground-state table, (re)building it when the
// physics parameters changed since the last probe. Not safe for concurrent
// first use — call Prepare before probing from multiple goroutines.
func (d *DoubleDot) fast() *physics.GroundTable {
	fp := d.fp
	if fp == nil || fp.phys != *d.Phys {
		fp = &fastPath{phys: *d.Phys, tab: d.Phys.Table()}
		d.fp = fp
	}
	return fp.tab
}

// Prepare builds the device's derived probe tables eagerly, so that
// subsequent concurrent read-only probing (CurrentRowNoiseless across
// render workers) never writes device state. Probing through any method
// prepares implicitly; Prepare only matters before concurrent use.
func (d *DoubleDot) Prepare() { d.fast() }

// CurrentAt returns the sensor current at (v1, v2) measured at virtual time
// t (seconds).
//
// The common two-gate, two-dot case runs on the zero-allocation fast path:
// a precomputed ground-state table (physics.GroundTable) and the sensor's
// fixed-arity Current2, both of which replay the generic path's
// floating-point operations exactly — the returned current is bit-identical
// either way.
func (d *DoubleDot) CurrentAt(v1, v2, t float64) float64 {
	if d.Drift != nil {
		v1, v2 = d.Drift.Warp(v1, v2, t)
	}
	var i float64
	if tab := d.fast(); tab != nil && d.Sens.CanFast2() {
		n1, n2 := tab.Ground(d.Phys.Mu(0, v1, v2), d.Phys.Mu(1, v1, v2))
		i = d.Sens.Current2(v1, v2, n1, n2)
	} else {
		n1, n2 := d.Phys.GroundState(v1, v2)
		i = d.Sens.Current([]float64{v1, v2}, []int{n1, n2})
	}
	if d.Noise != nil {
		i += d.Noise.Sample(t)
	}
	return i
}

// CurrentRowNoiseless fills out[i] with the noiseless sensor current at
// (v1s[i], v2) — the parallel render kernel: pure physics and sensor
// response, no virtual clock, no noise, no instrument state. After Prepare
// it only reads device state, so disjoint rows may be computed concurrently.
func (d *DoubleDot) CurrentRowNoiseless(v2 float64, v1s, out []float64) {
	if tab := d.fast(); tab != nil && d.Sens.CanFast2() {
		phys, sens := d.Phys, &d.Sens
		for i, v1 := range v1s {
			n1, n2 := tab.Ground(phys.Mu(0, v1, v2), phys.Mu(1, v1, v2))
			out[i] = sens.Current2(v1, v2, n1, n2)
		}
		return
	}
	for i, v1 := range v1s {
		n1, n2 := d.Phys.GroundState(v1, v2)
		out[i] = d.Sens.Current([]float64{v1, v2}, []int{n1, n2})
	}
}

// SimInstrument drives a DoubleDot with dwell-time accounting and
// memoisation on a voltage quantisation grid (normally the scan window's
// pixel pitch δ).
type SimInstrument struct {
	Dev              *DoubleDot
	Dwell            time.Duration
	QuantV1, QuantV2 float64 // memoisation granularity (mV); 0 disables memoisation

	memo  memoRows
	stats Stats

	cells      [][2]int64 // ProbedCells cache; rebuilt lazily after writes
	cellsValid bool
}

// NewSimInstrument returns an instrument over dev with the given dwell and
// memoisation pitch.
func NewSimInstrument(dev *DoubleDot, dwell time.Duration, quantV1, quantV2 float64) *SimInstrument {
	return &SimInstrument{
		Dev: dev, Dwell: dwell,
		QuantV1: quantV1, QuantV2: quantV2,
		memo: newMemoRows(),
	}
}

func quantKey(v, q float64) int64 {
	if q <= 0 {
		return 0
	}
	return int64(math.Floor(v / q))
}

// GetCurrent implements Instrument.
func (s *SimInstrument) GetCurrent(v1, v2 float64) float64 {
	s.stats.RawCalls++
	memoised := s.QuantV1 > 0 && s.QuantV2 > 0
	var row *memoRow
	var c1 int64
	if memoised {
		row = s.memo.row(quantKey(v2, s.QuantV2))
		c1 = quantKey(v1, s.QuantV1)
		if v, ok := row.get(c1); ok {
			return v
		}
	}
	s.stats.UniqueProbes++
	s.stats.Virtual += s.Dwell
	v := s.Dev.CurrentAt(v1, v2, s.stats.Virtual.Seconds())
	if memoised {
		s.record(row, c1, v)
	}
	return v
}

// record memoises a freshly measured cell and invalidates the ProbedCells
// cache.
func (s *SimInstrument) record(row *memoRow, c1 int64, v float64) {
	row.put(c1, v)
	s.memo.count++
	s.cellsValid = false
}

// ProbedCells returns the quantisation cells measured so far, sorted by
// (v2 cell, v1 cell). With the memoisation pitch set to a scan window's
// pixel pitch — as NewDoubleDotSim and DoubleDotSpec.Build configure it —
// each cell is a window pixel, so this is the sim counterpart of
// DatasetInstrument.ProbeMap. Empty when memoisation is disabled.
//
// The result is cached: repeated calls between probes return the same
// slice without re-collecting or re-sorting, and the cache is invalidated
// by the next memoised probe. Callers must treat the slice as read-only.
func (s *SimInstrument) ProbedCells() [][2]int64 {
	if !s.cellsValid {
		s.cells = s.memo.cellsSorted()
		s.cellsValid = true
	}
	return s.cells
}

// Stats implements Accountant.
func (s *SimInstrument) Stats() Stats { return s.stats }

// Advance moves the instrument's virtual clock forward by d without probing —
// idle wall time between measurement epochs, the fleet monitor's tick. The
// memoisation cache is cleared (a configuration re-requested after idle time
// is a new measurement, with the noise and drift of the new epoch) but the
// cumulative probe accounting is kept, and the memo's row buffers stay warm.
func (s *SimInstrument) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	s.stats.Virtual += d
	s.memo.reset()
	s.cells = nil
	s.cellsValid = false
}

// ResetStats clears the accounting and the memoisation cache. The memo's
// row buffers are retained and reused, so resetting does not return the
// probe path to an allocating warm-up state.
func (s *SimInstrument) ResetStats() {
	s.stats = Stats{}
	s.memo.reset()
	s.cells = nil
	s.cellsValid = false
}

// DatasetInstrument replays a pre-acquired CSD, the paper's evaluation
// setup: "when the proposed algorithm needs to obtain a data point … it will
// call a simulated getCurrent function … [which] will return a current from
// a CSD in the dataset". Voltages outside the window clamp to the nearest
// edge pixel.
type DatasetInstrument struct {
	Data  *grid.Grid
	Win   csd.Window
	Dwell time.Duration

	probed []bool
	stats  Stats
}

// NewDatasetInstrument wraps a recorded CSD grid and its scan window.
func NewDatasetInstrument(data *grid.Grid, win csd.Window, dwell time.Duration) (*DatasetInstrument, error) {
	if data == nil {
		return nil, errors.New("device: nil dataset grid")
	}
	if err := win.Validate(); err != nil {
		return nil, err
	}
	if data.W != win.Cols || data.H != win.Rows {
		return nil, errors.New("device: dataset grid size does not match window")
	}
	return &DatasetInstrument{
		Data: data, Win: win, Dwell: dwell,
		probed: make([]bool, data.W*data.H),
	}, nil
}

// GetCurrent implements Instrument.
func (d *DatasetInstrument) GetCurrent(v1, v2 float64) float64 {
	d.stats.RawCalls++
	x, y := d.Win.XOf(v1), d.Win.YOf(v2)
	idx := y*d.Data.W + x
	if !d.probed[idx] {
		d.probed[idx] = true
		d.stats.UniqueProbes++
		d.stats.Virtual += d.Dwell
	}
	return d.Data.At(x, y)
}

// Probed reports whether pixel (x, y) has been measured.
func (d *DatasetInstrument) Probed(x, y int) bool {
	if x < 0 || x >= d.Data.W || y < 0 || y >= d.Data.H {
		return false
	}
	return d.probed[y*d.Data.W+x]
}

// ProbeMap returns the set of probed pixels, the data behind the paper's
// Figure 7.
func (d *DatasetInstrument) ProbeMap() []grid.Point {
	var pts []grid.Point
	for y := 0; y < d.Data.H; y++ {
		for x := 0; x < d.Data.W; x++ {
			if d.probed[y*d.Data.W+x] {
				pts = append(pts, grid.Point{X: x, Y: y})
			}
		}
	}
	return pts
}

// Stats implements Accountant.
func (d *DatasetInstrument) Stats() Stats { return d.stats }

// ResetStats clears accounting and the probed map.
func (d *DatasetInstrument) ResetStats() {
	d.stats = Stats{}
	d.probed = make([]bool, d.Data.W*d.Data.H)
}
