package alert

import (
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/telemetry"
	"github.com/fastvg/fastvg/internal/tsdb"
)

func testDB() (*telemetry.Registry, *telemetry.Gauge, *telemetry.Counter, *tsdb.DB) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("vgx_test_load", "load")
	c := reg.Counter("vgx_test_errs_total", "errors")
	return reg, g, c, tsdb.New(reg, tsdb.Options{Capacity: 64})
}

func TestRuleLifecycle(t *testing.T) {
	_, g, _, db := testDB()
	var journal []Event
	eng, err := New(db, []Rule{{
		Name: "load-high", Severity: "warning",
		Expr: Expr{Fn: "last", Series: "vgx_test_load"},
		Op:   ">", Threshold: 5, ForS: 20,
	}}, func(ev Event) { journal = append(journal, ev) })
	if err != nil {
		t.Fatal(err)
	}

	step := func(atS, load float64) []Event {
		g.Set(load)
		db.Scrape(atS)
		return eng.Eval(atS)
	}

	if evs := step(10, 1); len(evs) != 0 {
		t.Fatalf("t=10: %+v", evs)
	}
	// Condition true: pending, not yet firing.
	if evs := step(20, 9); len(evs) != 0 {
		t.Fatalf("t=20: %+v", evs)
	}
	if st := eng.Statuses()[0]; st.State != StatePending || st.SinceS != 20 {
		t.Fatalf("status after t=20: %+v", st)
	}
	// Still inside the for-window.
	if evs := step(30, 9); len(evs) != 0 {
		t.Fatalf("t=30: %+v", evs)
	}
	// Held 20s: fires.
	evs := step(40, 9)
	if len(evs) != 1 || evs[0].State != "firing" || evs[0].AtS != 40 || evs[0].Value != 9 {
		t.Fatalf("t=40: %+v", evs)
	}
	if got := eng.Firing(); len(got) != 1 || got[0] != "load-high" {
		t.Fatalf("Firing = %v", got)
	}
	// Stays firing without re-announcing.
	if evs := step(50, 9); len(evs) != 0 {
		t.Fatalf("t=50: %+v", evs)
	}
	// Drops below: resolved.
	evs = step(60, 1)
	if len(evs) != 1 || evs[0].State != "resolved" {
		t.Fatalf("t=60: %+v", evs)
	}
	if len(eng.Firing()) != 0 {
		t.Fatal("still firing after resolve")
	}
	if len(journal) != 2 {
		t.Fatalf("journal = %+v", journal)
	}
	if h := eng.History(0); len(h) != 2 || h[0].State != "firing" || h[1].State != "resolved" {
		t.Fatalf("history = %+v", h)
	}
}

func TestPendingResets(t *testing.T) {
	_, g, _, db := testDB()
	eng, _ := New(db, []Rule{{
		Name: "load-high", Severity: "warning",
		Expr: Expr{Fn: "last", Series: "vgx_test_load"},
		Op:   ">", Threshold: 5, ForS: 30,
	}}, nil)
	step := func(atS, load float64) []Event {
		g.Set(load)
		db.Scrape(atS)
		return eng.Eval(atS)
	}
	step(10, 9) // pending since 10
	step(20, 1) // back to inactive
	step(30, 9) // pending since 30
	// 25s held — a naive engine counting from t=10 would fire here.
	if evs := step(55, 9); len(evs) != 0 {
		t.Fatalf("fired before the for-window was re-held: %+v", evs)
	}
	if evs := step(60, 9); len(evs) != 1 {
		t.Fatalf("t=60: %+v", evs)
	}
}

func TestZeroForFiresImmediately(t *testing.T) {
	_, _, c, db := testDB()
	eng, _ := New(db, []Rule{{
		Name: "errors", Severity: "critical",
		Expr: Expr{Fn: "rate", Series: "vgx_test_errs_total", WindowS: 60},
		Op:   ">", Threshold: 0,
	}}, nil)
	db.Scrape(10)
	eng.Eval(10) // single point: rate is NaN, no event
	c.Add(5)
	db.Scrape(20)
	evs := eng.Eval(20)
	if len(evs) != 1 || evs[0].State != "firing" {
		t.Fatalf("evs = %+v", evs)
	}
	if evs[0].Value != 0.5 {
		t.Errorf("rate = %v, want 0.5", evs[0].Value)
	}
}

func TestRatioRule(t *testing.T) {
	reg := telemetry.NewRegistry()
	esc := reg.Counter("vgx_test_esc_total", "e")
	hit := reg.Counter("vgx_test_hit_total", "h")
	db := tsdb.New(reg, tsdb.Options{})
	eng, _ := New(db, []Rule{{
		Name: "ratio", Severity: "warning",
		Expr:  Expr{Fn: "rate", Series: "vgx_test_esc_total", WindowS: 100},
		DivBy: &Expr{Fn: "rate", Series: "vgx_test_hit_total", WindowS: 100},
		Op:    ">", Threshold: 1,
	}}, nil)
	db.Scrape(0)
	eng.Eval(0)
	// More escalations than hits: ratio 3.
	esc.Add(30)
	hit.Add(10)
	db.Scrape(10)
	if evs := eng.Eval(10); len(evs) != 1 {
		t.Fatalf("ratio did not fire: %+v", evs)
	}
	// Denominator goes flat: NaN suppresses rather than fires.
	esc.Add(30)
	db2 := tsdb.New(reg, tsdb.Options{})
	eng2, _ := New(db2, []Rule{eng.Rules()[0]}, nil)
	db2.Scrape(0)
	db2.Scrape(10) // hit rate over this window is 0
	if evs := eng2.Eval(10); len(evs) != 0 {
		t.Fatalf("zero denominator fired: %+v", evs)
	}
	if st := eng2.Statuses()[0]; !math.IsNaN(float64(st.Value)) {
		t.Errorf("value with zero denominator = %v, want NaN", st.Value)
	}
}

func TestRestore(t *testing.T) {
	_, g, _, db := testDB()
	rules := []Rule{{
		Name: "load-high", Severity: "warning",
		Expr: Expr{Fn: "last", Series: "vgx_test_load"},
		Op:   ">", Threshold: 5,
	}}
	journaled := []Event{
		{Rule: "load-high", Severity: "warning", State: "firing", AtS: 40, Value: 9},
		{Rule: "gone-rule", Severity: "warning", State: "firing", AtS: 41, Value: 1},
	}
	eng, _ := New(db, rules, nil)
	eng.Restore(journaled)
	if got := eng.Firing(); len(got) != 1 || got[0] != "load-high" {
		t.Fatalf("Firing after restore = %v", got)
	}
	if h := eng.History(0); len(h) != 2 {
		t.Fatalf("history after restore = %+v", h)
	}
	// Condition still true on the next eval: no duplicate firing event.
	g.Set(9)
	db.Scrape(50)
	if evs := eng.Eval(50); len(evs) != 0 {
		t.Fatalf("re-announced after restore: %+v", evs)
	}
	// Condition false: emits the resolved edge the crash swallowed.
	g.Set(1)
	db.Scrape(60)
	evs := eng.Eval(60)
	if len(evs) != 1 || evs[0].State != "resolved" {
		t.Fatalf("resolve after restore: %+v", evs)
	}

	// A firing->resolved pair restores to inactive.
	eng2, _ := New(db, rules, nil)
	eng2.Restore([]Event{
		{Rule: "load-high", State: "firing", AtS: 40},
		{Rule: "load-high", State: "resolved", AtS: 45},
	})
	if len(eng2.Firing()) != 0 {
		t.Fatal("resolved alert restored as firing")
	}
}

func TestAggAcrossSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	cv := reg.CounterVec("vgx_test_kinds_total", "k", "kind")
	db := tsdb.New(reg, tsdb.Options{})
	cv.With("a").Add(1)
	cv.With("b").Add(10)
	db.Scrape(1)
	eng, _ := New(db, []Rule{
		{Name: "max", Expr: Expr{Fn: "last", Series: "vgx_test_kinds_total"}, Op: ">", Threshold: 9},
		{Name: "sum", Expr: Expr{Fn: "last", Series: "vgx_test_kinds_total", Agg: "sum"}, Op: ">", Threshold: 10.5},
		{Name: "min", Expr: Expr{Fn: "last", Series: "vgx_test_kinds_total", Agg: "min"}, Op: "<", Threshold: 2},
		{Name: "avg", Expr: Expr{Fn: "last", Series: "vgx_test_kinds_total", Agg: "avg"}, Op: ">=", Threshold: 5.5},
	}, nil)
	evs := eng.Eval(1)
	if len(evs) != 4 {
		t.Fatalf("evs = %+v, want all four aggregations to fire", evs)
	}
}

func TestCatalogueValidation(t *testing.T) {
	_, _, _, db := testDB()
	if _, err := New(db, []Rule{{Name: "", Op: ">"}}, nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New(db, []Rule{
		{Name: "a", Op: ">"}, {Name: "a", Op: ">"},
	}, nil); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := New(db, []Rule{{Name: "a", Op: "=="}}, nil); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestDefaultRulesValid(t *testing.T) {
	_, _, _, db := testDB()
	if _, err := New(db, DefaultRules(), nil); err != nil {
		t.Fatalf("DefaultRules invalid: %v", err)
	}
}
