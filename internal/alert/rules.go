package alert

// DefaultRules is the stock SLO catalogue for a wired daemon. The
// thresholds lean conservative — they flag conditions that are
// unambiguously wrong (shedding at all, journal writes failing, the
// worst fleet pair far past its re-probe threshold) rather than tuning
// noise. Deployments with different tolerances replace the catalogue
// through service.Config.AlertRules.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name:     "service-shedding",
			Severity: "warning",
			Expr:     Expr{Fn: "rate", Series: "vgx_service_shed_total", WindowS: 60},
			Op:       ">", Threshold: 0,
			Help: "The admission gate is rejecting jobs with 429/ErrOverloaded: the queue-depth limit was hit within the last minute.",
		},
		{
			Name:     "fleet-staleness-worst",
			Severity: "warning",
			Expr:     Expr{Fn: "last", Series: "vgx_fleet_staleness_worst"},
			Op:       ">", Threshold: 3,
			Help: "A spot-check found a pair more than 3x past the re-extraction threshold: the scheduler is falling behind drift.",
		},
		{
			Name:     "service-persist-errors",
			Severity: "critical",
			Expr:     Expr{Fn: "rate", Series: "vgx_service_persist_errors_total", WindowS: 300},
			Op:       ">", Threshold: 0,
			Help: "Journal/trace writes are failing; results are served but state will not survive restart.",
		},
		{
			Name:     "surrogate-escalation-ratio",
			Severity: "warning",
			Expr:     Expr{Fn: "rate", Series: "vgx_surrogate_escalations_total", WindowS: 300},
			DivBy:    &Expr{Fn: "rate", Series: "vgx_surrogate_hits_total", WindowS: 300},
			Op:       ">", Threshold: 1, ForS: 60,
			Help: "The digital twin is escalating to live probes more often than it answers: the surrogate has stopped paying for itself.",
		},
		{
			Name:     "pool-saturated",
			Severity: "warning",
			Expr:     Expr{Fn: "avg", Series: "vgx_sched_saturation", WindowS: 60},
			Op:       ">=", Threshold: 2, ForS: 30,
			Help: "The worker pool has held a queue at least as deep as the pool itself for 30s: throughput is the bottleneck.",
		},
	}
}
