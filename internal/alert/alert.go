// Package alert is the SLO rule engine layered over internal/tsdb: a
// declarative rule catalogue (threshold + for-duration over tsdb
// queries) evaluated on whatever clock the caller owns — the daemon's
// scrape loop or the fleet's virtual clock — with firing/resolved
// transitions journaled through a caller-supplied callback so alert
// history survives kill -9.
//
// The state machine per rule is the classic three-state one:
//
//	inactive --cond--> pending --held ForS--> firing --!cond--> inactive
//
// A rule with ForS == 0 skips pending and fires on the first true
// evaluation. Only the pending->firing and firing->inactive edges emit
// events; flapping inside the for-window is invisible, which is the
// point of the for-window.
//
// Everything is deterministic: rules evaluate in catalogue order, on
// caller-supplied timestamps, against a tsdb whose reads are
// deterministic — so two daemons replaying the same virtual schedule
// produce identical event sequences (pinned by the worker-count tests
// in internal/service).
package alert

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/fastvg/fastvg/internal/tsdb"
)

// Expr is one scalar-valued tsdb query: a query plus an aggregation
// collapsing the matched series to a single number.
type Expr struct {
	Fn      string  `json:"fn"`                // tsdb query fn: last|avg|min|max|sum|rate|quantile
	Series  string  `json:"series"`            // tsdb series selector
	WindowS float64 `json:"windowS,omitempty"` // lookback window
	Q       float64 `json:"q,omitempty"`       // quantile for fn=quantile
	Agg     string  `json:"agg,omitempty"`     // max (default) | min | sum | avg across matched series
}

// Rule is one declarative alert: fire when Expr (optionally divided by
// DivBy for ratio rules) compares true against Threshold continuously
// for ForS seconds.
type Rule struct {
	Name      string  `json:"name"`
	Severity  string  `json:"severity"` // "warning" | "critical"
	Expr      Expr    `json:"expr"`
	DivBy     *Expr   `json:"divBy,omitempty"` // optional denominator; NaN or <= 0 denominator suppresses
	Op        string  `json:"op"`              // > | >= | < | <=
	Threshold float64 `json:"threshold"`
	ForS      float64 `json:"forS,omitempty"`
	Help      string  `json:"help,omitempty"`
}

// State is a rule's position in the firing lifecycle.
type State string

// Rule lifecycle states.
const (
	StateInactive State = "inactive"
	StatePending  State = "pending"
	StateFiring   State = "firing"
)

// Event is one journaled alert transition. Only firing and resolved
// transitions are recorded. Value is a tsdb.Value, not a raw float64:
// a resolved edge whose expression went NaN (series vanished after a
// restart, suppressed ratio) must still marshal — encoding/json rejects
// NaN, and a journal hook that cannot serialise the event would drop it.
type Event struct {
	Rule     string     `json:"rule"`
	Severity string     `json:"severity"`
	State    string     `json:"state"` // "firing" | "resolved"
	AtS      float64    `json:"atS"`   // evaluation-clock seconds
	Value    tsdb.Value `json:"value"` // the expression value at transition
}

// Status is one rule's current standing, for GET /v1/alerts.
type Status struct {
	Rule    Rule       `json:"rule"`
	State   State      `json:"state"`
	Value   tsdb.Value `json:"value"`            // most recent evaluation
	SinceS  float64    `json:"sinceS,omitempty"` // when the current state began
	LastEvS float64    `json:"lastEvalS"`
}

type ruleState struct {
	state  State
	since  float64 // entered current state
	value  float64 // last evaluated value
	lastEv float64
}

// Engine evaluates a rule catalogue against a tsdb.DB. Safe for
// concurrent use; evaluation order is catalogue order.
type Engine struct {
	db      *tsdb.DB
	rules   []Rule
	onEvent func(Event) // journal hook, may be nil; called outside the engine lock

	mu      sync.Mutex
	st      map[string]*ruleState
	history []Event // newest last, bounded
	histCap int
}

// New builds an engine over db with the given catalogue. onEvent, if
// non-nil, observes every firing/resolved transition (the service
// journals them through internal/store). Duplicate rule names are an
// error: the journal keys history by name.
func New(db *tsdb.DB, rules []Rule, onEvent func(Event)) (*Engine, error) {
	seen := map[string]bool{}
	for _, r := range rules {
		if r.Name == "" {
			return nil, fmt.Errorf("alert: rule with empty name")
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("alert: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		switch r.Op {
		case ">", ">=", "<", "<=":
		default:
			return nil, fmt.Errorf("alert: rule %q has unknown op %q", r.Name, r.Op)
		}
	}
	e := &Engine{db: db, rules: rules, onEvent: onEvent,
		st: make(map[string]*ruleState, len(rules)), histCap: 256}
	for _, r := range rules {
		e.st[r.Name] = &ruleState{state: StateInactive}
	}
	return e, nil
}

// Rules returns the catalogue.
func (e *Engine) Rules() []Rule { return e.rules }

// evalExpr runs one scalar query; NaN means "no data".
func (e *Engine) evalExpr(x Expr) float64 {
	res, err := e.db.Query(tsdb.Query{Fn: x.Fn, Series: x.Series, WindowS: x.WindowS, Q: x.Q})
	if err != nil || len(res.Values) == 0 {
		return math.NaN()
	}
	agg := x.Agg
	if agg == "" {
		agg = "max"
	}
	v := float64(res.Values[0].Value)
	sum, n := 0.0, 0
	for _, sv := range res.Values {
		f := float64(sv.Value)
		if math.IsNaN(f) {
			continue
		}
		sum += f
		n++
		switch agg {
		case "max":
			if math.IsNaN(v) || f > v {
				v = f
			}
		case "min":
			if math.IsNaN(v) || f < v {
				v = f
			}
		}
	}
	switch agg {
	case "sum":
		if n == 0 {
			return math.NaN()
		}
		return sum
	case "avg":
		if n == 0 {
			return math.NaN()
		}
		return sum / float64(n)
	}
	return v
}

func compare(v float64, op string, threshold float64) bool {
	if math.IsNaN(v) {
		return false
	}
	switch op {
	case ">":
		return v > threshold
	case ">=":
		return v >= threshold
	case "<":
		return v < threshold
	case "<=":
		return v <= threshold
	}
	return false
}

// Eval evaluates every rule at the given clock reading and returns the
// transitions (possibly none) in catalogue order. Transitions are also
// appended to history and handed to the onEvent journal hook.
func (e *Engine) Eval(nowS float64) []Event {
	var events []Event
	e.mu.Lock()
	for _, r := range e.rules {
		v := e.evalExpr(r.Expr)
		if r.DivBy != nil {
			d := e.evalExpr(*r.DivBy)
			if math.IsNaN(d) || d <= 0 {
				v = math.NaN()
			} else {
				v /= d
			}
		}
		st := e.st[r.Name]
		st.value, st.lastEv = v, nowS
		cond := compare(v, r.Op, r.Threshold)
		switch st.state {
		case StateInactive:
			if cond {
				if r.ForS <= 0 {
					st.state, st.since = StateFiring, nowS
					events = append(events, Event{Rule: r.Name, Severity: r.Severity, State: "firing", AtS: nowS, Value: tsdb.Value(v)})
				} else {
					st.state, st.since = StatePending, nowS
				}
			}
		case StatePending:
			switch {
			case !cond:
				st.state, st.since = StateInactive, nowS
			case nowS-st.since >= r.ForS:
				st.state, st.since = StateFiring, nowS
				events = append(events, Event{Rule: r.Name, Severity: r.Severity, State: "firing", AtS: nowS, Value: tsdb.Value(v)})
			}
		case StateFiring:
			if !cond {
				st.state, st.since = StateInactive, nowS
				events = append(events, Event{Rule: r.Name, Severity: r.Severity, State: "resolved", AtS: nowS, Value: tsdb.Value(v)})
			}
		}
	}
	e.history = append(e.history, events...)
	if n := len(e.history) - e.histCap; n > 0 {
		e.history = append(e.history[:0], e.history[n:]...)
	}
	e.mu.Unlock()
	if e.onEvent != nil {
		for _, ev := range events {
			e.onEvent(ev)
		}
	}
	return events
}

// Statuses returns every rule's current standing, sorted by name.
func (e *Engine) Statuses() []Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Status, 0, len(e.rules))
	for _, r := range e.rules {
		st := e.st[r.Name]
		out = append(out, Status{Rule: r, State: st.state, Value: tsdb.Value(st.value),
			SinceS: st.since, LastEvS: st.lastEv})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule.Name < out[j].Rule.Name })
	return out
}

// History returns the newest max transitions (0 for all retained),
// oldest first.
func (e *Engine) History(max int) []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	evs := e.history
	if max > 0 && len(evs) > max {
		evs = evs[len(evs)-max:]
	}
	out := make([]Event, len(evs))
	copy(out, evs)
	return out
}

// Firing returns the names of currently firing rules, sorted.
func (e *Engine) Firing() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for name, st := range e.st {
		if st.state == StateFiring {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Restore replays journaled events (oldest first) into the engine:
// history is refilled and each rule whose latest event is "firing"
// resumes in the firing state, so a restart does not re-announce an
// alert that was already firing — the next Eval either keeps it or
// emits the resolved edge. Events for rules no longer in the catalogue
// are kept in history but restore no state.
func (e *Engine) Restore(events []Event) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.history = append(e.history, events...)
	if n := len(e.history) - e.histCap; n > 0 {
		e.history = append(e.history[:0], e.history[n:]...)
	}
	last := map[string]Event{}
	for _, ev := range events {
		last[ev.Rule] = ev
	}
	for name, ev := range last {
		st := e.st[name]
		if st == nil {
			continue
		}
		if ev.State == "firing" {
			st.state, st.since, st.value = StateFiring, ev.AtS, float64(ev.Value)
		}
	}
}
