// Package csd defines the charge-stability-diagram scan window — the mapping
// between pixel indices and plunger-gate voltages — and full-raster
// acquisition, the data source of the paper's baseline method.
package csd

import (
	"errors"
	"fmt"

	"github.com/fastvg/fastvg/internal/grid"
)

// Window maps a Cols×Rows pixel grid onto a rectangle of (V1, V2) gate
// voltage space. Pixel (x, y) is centred at
// (V1Min + (x+0.5)·StepV1, V2Min + (y+0.5)·StepV2), with y increasing upward.
// The pixel pitch is the paper's voltage granularity δ.
type Window struct {
	V1Min float64 `json:"v1Min"`
	V1Max float64 `json:"v1Max"`
	V2Min float64 `json:"v2Min"`
	V2Max float64 `json:"v2Max"`
	Cols  int     `json:"cols"`
	Rows  int     `json:"rows"`
}

// NewSquareWindow returns an n×n window covering [v1Min, v1Min+span] ×
// [v2Min, v2Min+span].
func NewSquareWindow(v1Min, v2Min, span float64, n int) Window {
	return Window{
		V1Min: v1Min, V1Max: v1Min + span,
		V2Min: v2Min, V2Max: v2Min + span,
		Cols: n, Rows: n,
	}
}

// Validate reports whether the window is well-formed.
func (w Window) Validate() error {
	if w.Cols <= 1 || w.Rows <= 1 {
		return errors.New("csd: window needs at least 2x2 pixels")
	}
	if w.V1Max <= w.V1Min || w.V2Max <= w.V2Min {
		return fmt.Errorf("csd: degenerate voltage range [%v,%v]x[%v,%v]",
			w.V1Min, w.V1Max, w.V2Min, w.V2Max)
	}
	return nil
}

// StepV1 returns the voltage granularity δ along V1 (mV per pixel).
func (w Window) StepV1() float64 { return (w.V1Max - w.V1Min) / float64(w.Cols) }

// StepV2 returns the voltage granularity δ along V2.
func (w Window) StepV2() float64 { return (w.V2Max - w.V2Min) / float64(w.Rows) }

// V1At returns the V1 voltage of pixel column x (pixel centre). Coordinates
// outside the window extrapolate linearly, which lets the feature gradient
// probe one pixel past the edge exactly as a real instrument would.
func (w Window) V1At(x int) float64 { return w.V1Min + (float64(x)+0.5)*w.StepV1() }

// V2At returns the V2 voltage of pixel row y.
func (w Window) V2At(y int) float64 { return w.V2Min + (float64(y)+0.5)*w.StepV2() }

// XOf returns the pixel column containing voltage v1, clamped to the grid.
func (w Window) XOf(v1 float64) int {
	x := int((v1 - w.V1Min) / w.StepV1())
	if x < 0 {
		x = 0
	}
	if x >= w.Cols {
		x = w.Cols - 1
	}
	return x
}

// YOf returns the pixel row containing voltage v2, clamped to the grid.
func (w Window) YOf(v2 float64) int {
	y := int((v2 - w.V2Min) / w.StepV2())
	if y < 0 {
		y = 0
	}
	if y >= w.Rows {
		y = w.Rows - 1
	}
	return y
}

// PixelSlopeToVoltage converts a transition-line slope measured in pixel
// units (dy/dx) to voltage units (dV2/dV1).
func (w Window) PixelSlopeToVoltage(m float64) float64 {
	return m * w.StepV2() / w.StepV1()
}

// VoltageSlopeToPixel converts dV2/dV1 to pixel units dy/dx.
func (w Window) VoltageSlopeToPixel(m float64) float64 {
	return m * w.StepV1() / w.StepV2()
}

// CurrentGetter measures the charge-sensor current at a gate-voltage
// configuration, after the instrument's dwell time (Algorithm 1 of the
// paper). Implementations live in internal/device.
type CurrentGetter interface {
	GetCurrent(v1, v2 float64) float64
}

// RowGetter is implemented by instruments that serve a whole scan row in
// one call, bit-identically to the equivalent GetCurrent sequence (same
// currents, same accounting, same noise realisation). Acquisition routes
// through it when available, replacing per-pixel interface dispatch with
// one call per row.
type RowGetter interface {
	CurrentRow(v2 float64, v1s, out []float64)
}

// GridAcquirer is implemented by instruments that acquire a full scan
// window in one batched call — optionally rendering rows in parallel —
// bit-identically to the scalar raster. workers <= 0 means one per CPU;
// implementations that cannot parallelise ignore it.
type GridAcquirer interface {
	AcquireGrid(w Window, workers int) (*grid.Grid, error)
}

// Acquire rasters the full window through src, bottom row first — the
// complete-CSD acquisition the baseline method performs. Every pixel is
// probed exactly once. Instruments implementing the batch contracts
// (GridAcquirer, RowGetter) are served through them; the result is
// bit-identical either way.
func Acquire(src CurrentGetter, w Window) (*grid.Grid, error) {
	return AcquireParallel(src, w, 1)
}

// AcquireParallel is Acquire with a worker budget for instruments whose
// grid acquisition can render rows in parallel (workers <= 0 means one per
// CPU). Acquisition through a stateful scalar instrument cannot fan out —
// probe order fixes the noise realisation — so sources without the batch
// contracts fall back to the serial raster regardless of workers.
func AcquireParallel(src CurrentGetter, w Window, workers int) (*grid.Grid, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if ga, ok := src.(GridAcquirer); ok {
		return ga.AcquireGrid(w, workers)
	}
	g := grid.New(w.Cols, w.Rows)
	if rg, ok := src.(RowGetter); ok {
		v1s := make([]float64, w.Cols)
		for x := range v1s {
			v1s[x] = w.V1At(x)
		}
		data := g.Data()
		for y := 0; y < w.Rows; y++ {
			rg.CurrentRow(w.V2At(y), v1s, data[y*w.Cols:(y+1)*w.Cols])
		}
		return g, nil
	}
	for y := 0; y < w.Rows; y++ {
		v2 := w.V2At(y)
		for x := 0; x < w.Cols; x++ {
			g.Set(x, y, src.GetCurrent(w.V1At(x), v2))
		}
	}
	return g, nil
}

// PixelSource adapts a CurrentGetter and a Window to pixel-indexed probing,
// the coordinate system the extraction algorithms work in.
type PixelSource struct {
	Src CurrentGetter
	Win Window
}

// Current probes the pixel centred at column x, row y.
func (p PixelSource) Current(x, y int) float64 {
	return p.Src.GetCurrent(p.Win.V1At(x), p.Win.V2At(y))
}

// Row probes the len(out) pixels of row y starting at column x0 into out,
// pulling the whole row through the instrument's RowGetter fast path when
// it has one. Results are bit-identical to per-pixel Current calls in
// column order.
func (p PixelSource) Row(y, x0 int, out []float64) {
	if rg, ok := p.Src.(RowGetter); ok {
		v1s := make([]float64, len(out))
		for i := range v1s {
			v1s[i] = p.Win.V1At(x0 + i)
		}
		rg.CurrentRow(p.Win.V2At(y), v1s, out)
		return
	}
	v2 := p.Win.V2At(y)
	for i := range out {
		out[i] = p.Src.GetCurrent(p.Win.V1At(x0+i), v2)
	}
}

// GridSource adapts an in-memory grid to the pixel Source interface with
// edge clamping; used by unit tests and by offline re-analysis of acquired
// CSDs.
type GridSource struct {
	G *grid.Grid
}

// Current returns the stored value at (x, y), clamped at the edges.
func (s GridSource) Current(x, y int) float64 { return s.G.AtClamped(x, y) }
