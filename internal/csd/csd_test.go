package csd

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/fastvg/fastvg/internal/grid"
)

func TestWindowValidate(t *testing.T) {
	w := NewSquareWindow(0, 0, 100, 64)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := w
	bad.Cols = 1
	if err := bad.Validate(); err == nil {
		t.Error("accepted 1-column window")
	}
	bad = w
	bad.V1Max = bad.V1Min
	if err := bad.Validate(); err == nil {
		t.Error("accepted degenerate voltage range")
	}
}

func TestPixelCenters(t *testing.T) {
	w := NewSquareWindow(100, 200, 50, 100) // δ = 0.5 mV
	if s := w.StepV1(); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("StepV1 = %v", s)
	}
	if v := w.V1At(0); math.Abs(v-100.25) > 1e-12 {
		t.Errorf("V1At(0) = %v, want 100.25", v)
	}
	if v := w.V2At(99); math.Abs(v-249.75) > 1e-12 {
		t.Errorf("V2At(99) = %v, want 249.75", v)
	}
}

func TestPixelVoltageRoundTrip(t *testing.T) {
	w := NewSquareWindow(-50, 30, 120, 63)
	f := func(xRaw, yRaw int) bool {
		x := abs(xRaw) % w.Cols
		y := abs(yRaw) % w.Rows
		return w.XOf(w.V1At(x)) == x && w.YOf(w.V2At(y)) == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestXOfClamps(t *testing.T) {
	w := NewSquareWindow(0, 0, 100, 10)
	if x := w.XOf(-50); x != 0 {
		t.Errorf("XOf below range = %d", x)
	}
	if x := w.XOf(500); x != 9 {
		t.Errorf("XOf above range = %d", x)
	}
	if y := w.YOf(1e9); y != 9 {
		t.Errorf("YOf above range = %d", y)
	}
}

func TestSlopeConversionRoundTrip(t *testing.T) {
	w := Window{V1Min: 0, V1Max: 100, V2Min: 0, V2Max: 50, Cols: 200, Rows: 50}
	m := -3.7
	if got := w.VoltageSlopeToPixel(w.PixelSlopeToVoltage(m)); math.Abs(got-m) > 1e-12 {
		t.Errorf("slope round trip = %v, want %v", got, m)
	}
	// With anisotropic pixels the conversion must actually rescale.
	if got := w.PixelSlopeToVoltage(1); math.Abs(got-2) > 1e-12 {
		t.Errorf("anisotropic conversion = %v, want 2", got)
	}
}

type funcGetter func(v1, v2 float64) float64

func (f funcGetter) GetCurrent(v1, v2 float64) float64 { return f(v1, v2) }

func TestAcquireRastersEveryPixel(t *testing.T) {
	w := NewSquareWindow(0, 0, 10, 8)
	calls := 0
	g, err := Acquire(funcGetter(func(v1, v2 float64) float64 {
		calls++
		return v1 + 1000*v2
	}), w)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 64 {
		t.Errorf("acquire made %d calls, want 64", calls)
	}
	if g.W != 8 || g.H != 8 {
		t.Fatalf("acquired grid %dx%d", g.W, g.H)
	}
	// Spot-check the voltage mapping baked into the values.
	want := w.V1At(3) + 1000*w.V2At(5)
	if got := g.At(3, 5); math.Abs(got-want) > 1e-9 {
		t.Errorf("g.At(3,5) = %v, want %v", got, want)
	}
}

func TestAcquireRejectsBadWindow(t *testing.T) {
	if _, err := Acquire(funcGetter(func(_, _ float64) float64 { return 0 }), Window{}); err == nil {
		t.Error("Acquire accepted invalid window")
	}
}

func TestPixelSource(t *testing.T) {
	w := NewSquareWindow(0, 0, 10, 10)
	src := PixelSource{
		Src: funcGetter(func(v1, v2 float64) float64 { return v1*100 + v2 }),
		Win: w,
	}
	want := w.V1At(4)*100 + w.V2At(7)
	if got := src.Current(4, 7); math.Abs(got-want) > 1e-9 {
		t.Errorf("PixelSource.Current = %v, want %v", got, want)
	}
}

func TestGridSourceClamps(t *testing.T) {
	g := grid.New(3, 3)
	g.Set(2, 2, 9)
	s := GridSource{G: g}
	if got := s.Current(10, 10); got != 9 {
		t.Errorf("clamped read = %v, want 9", got)
	}
}

// scalarSrc is a plain CurrentGetter; rowSrc adds the RowGetter fast path.
type scalarSrc struct{ calls int }

func (s *scalarSrc) GetCurrent(v1, v2 float64) float64 { s.calls++; return 1000*v1 + v2 }

type rowSrc struct {
	scalarSrc
	rowCalls int
}

func (s *rowSrc) CurrentRow(v2 float64, v1s, out []float64) {
	s.rowCalls++
	for i, v1 := range v1s {
		out[i] = 1000*v1 + v2
	}
}

func TestAcquireRoutesThroughRowGetter(t *testing.T) {
	w := NewSquareWindow(0, 0, 8, 8)
	scalar := &scalarSrc{}
	rowed := &rowSrc{}
	want, err := Acquire(scalar, w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Acquire(rowed, w)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("row-routed acquisition differs from scalar")
	}
	if rowed.rowCalls != w.Rows {
		t.Fatalf("expected %d CurrentRow calls, got %d (scalar calls %d)",
			w.Rows, rowed.rowCalls, rowed.calls)
	}
	if rowed.calls != 0 {
		t.Fatalf("row-capable source still took %d scalar probes", rowed.calls)
	}
}

func TestPixelSourceRowMatchesCurrent(t *testing.T) {
	w := NewSquareWindow(0, 0, 8, 8)
	for _, src := range []CurrentGetter{&scalarSrc{}, &rowSrc{}} {
		ps := PixelSource{Src: src, Win: w}
		out := make([]float64, 5)
		for y := -1; y <= w.Rows; y++ { // one past the edge, like the sweeps
			ps.Row(y, -1, out)
			for i := range out {
				if want := ps.Current(-1+i, y); out[i] != want {
					t.Fatalf("%T row (%d,%d): %v != %v", src, -1+i, y, out[i], want)
				}
			}
		}
	}
	rowed := &rowSrc{}
	PixelSource{Src: rowed, Win: w}.Row(0, 0, make([]float64, 3))
	if rowed.rowCalls != 1 || rowed.calls != 0 {
		t.Fatalf("Row did not route through CurrentRow (row %d, scalar %d)", rowed.rowCalls, rowed.calls)
	}
}
