package chainx

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/sched"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

func testSpec(dots int) device.ChainSpec {
	return device.ChainSpec{
		Dots:  dots,
		Noise: noise.Params{WhiteSigma: 0.01},
		Seed:  7,
	}
}

func extractSpec(t *testing.T, spec device.ChainSpec, workers int, cfg Config) *Result {
	t.Helper()
	src, err := NewSpecSource(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.New(workers)
	defer pool.Close(context.Background())
	res, err := Extract(context.Background(), pool, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExtractComposesChain is the happy path: every pair succeeds with the
// fast method, slopes score against the analytic truth, and the composed
// chain carries each pair's compensation terms.
func TestExtractComposesChain(t *testing.T) {
	spec := testSpec(4)
	res := extractSpec(t, spec, 2, Config{})
	if res.Chain == nil {
		t.Fatalf("no composed chain; pairs: %+v", res.Pairs)
	}
	if len(res.Pairs) != 3 {
		t.Fatalf("%d pairs, want 3", len(res.Pairs))
	}
	for i, p := range res.Pairs {
		if p.Error != "" {
			t.Fatalf("pair %d failed: %s", i, p.Error)
		}
		if p.Method != MethodFast {
			t.Errorf("pair %d method %q, want fast on first attempt", i, p.Method)
		}
		if !p.Scored || !p.Success {
			t.Errorf("pair %d scored=%v success=%v (Δsteep %.2f°, Δshallow %.2f°)",
				i, p.Scored, p.Success, p.SteepErrDeg, p.ShallowErrDeg)
		}
		if p.Probes <= 0 || p.ExperimentS <= 0 {
			t.Errorf("pair %d has no cost accounting: %d probes, %v s", i, p.Probes, p.ExperimentS)
		}
		if res.Chain.A12[i] != p.Matrix.A12() || res.Chain.A21[i] != p.Matrix.A21() {
			t.Errorf("pair %d not composed into the chain", i)
		}
	}
	if res.Probes <= 0 || res.ExperimentS <= 0 {
		t.Error("chain totals not accumulated")
	}
	if res.MakespanS <= 0 || res.MakespanS > res.ExperimentS {
		t.Errorf("makespan %v s outside (0, %v]", res.MakespanS, res.ExperimentS)
	}
}

// TestExtractBitIdenticalAcrossWorkers pins the determinism contract: the
// same spec extracts to byte-identical pair results and chain at any worker
// count, concurrent or sequential.
func TestExtractBitIdenticalAcrossWorkers(t *testing.T) {
	spec := testSpec(6)
	var want []byte
	var wantChain []float64
	for _, workers := range []int{1, 2, 5, 16} {
		res := extractSpec(t, spec, workers, Config{})
		if res.Chain == nil {
			t.Fatalf("workers=%d: no composed chain", workers)
		}
		got, err := json.Marshal(res.Pairs)
		if err != nil {
			t.Fatal(err)
		}
		dense := append([]float64(nil), res.Chain.Dense()...)
		if want == nil {
			want, wantChain = got, dense
			continue
		}
		if string(got) != string(want) {
			t.Errorf("workers=%d: pair results differ from workers=1", workers)
		}
		for i := range dense {
			if dense[i] != wantChain[i] {
				t.Errorf("workers=%d: chain matrix bit-differs at %d", workers, i)
				break
			}
		}
	}
}

// failingRunner fails selected (pair, method) attempts with a deterministic
// pipeline error, delegating the rest to the real dispatch.
func failingRunner(fail map[string]bool) func(context.Context, Method, PairInstrument, csd.Window, *Config) (*pairFit, error) {
	return func(ctx context.Context, m Method, inst PairInstrument, win csd.Window, cfg *Config) (*pairFit, error) {
		if fail[string(m)] {
			// Cost a probe so attempt accounting is visible.
			inst.GetCurrent(win.V1At(0), win.V2At(0))
			return nil, errors.New("synthetic pipeline failure")
		}
		return runMethod(ctx, m, inst, win, cfg)
	}
}

// TestEscalationLadder: when the first ladder method fails deterministically
// the pair escalates to the next, records both attempts, and the chain still
// composes.
func TestEscalationLadder(t *testing.T) {
	spec := testSpec(3)
	src, err := NewSpecSource(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.New(2)
	defer pool.Close(context.Background())
	cfg := Config{run: failingRunner(map[string]bool{string(MethodFast): true})}
	res, err := Extract(context.Background(), pool, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chain == nil {
		t.Fatalf("no chain despite escalation; pairs: %+v", res.Pairs)
	}
	for i, p := range res.Pairs {
		if p.Method != MethodAdaptive {
			t.Errorf("pair %d method %q, want adaptive after fast failed", i, p.Method)
		}
		if len(p.Attempts) != 2 {
			t.Fatalf("pair %d has %d attempts, want 2", i, len(p.Attempts))
		}
		if p.Attempts[0].Method != MethodFast || p.Attempts[0].Error == "" {
			t.Errorf("pair %d first attempt %+v, want failed fast", i, p.Attempts[0])
		}
		if p.Attempts[1].Method != MethodAdaptive || p.Attempts[1].Error != "" {
			t.Errorf("pair %d second attempt %+v, want successful adaptive", i, p.Attempts[1])
		}
		if p.Attempts[0].Probes <= 0 {
			t.Errorf("pair %d failed attempt cost not attributed", i)
		}
	}
}

// TestLadderExhausted: a pair whose every method fails is recorded as a
// deterministic failure; the chain is withheld but the other pairs' results
// stand.
func TestLadderExhausted(t *testing.T) {
	spec := testSpec(3)
	src, err := NewSpecSource(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.New(1)
	defer pool.Close(context.Background())
	cfg := Config{run: failingRunner(map[string]bool{
		string(MethodFast): true, string(MethodAdaptive): true, string(MethodRays): true,
	})}
	res, err := Extract(context.Background(), pool, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chain != nil {
		t.Error("chain composed despite failed pairs")
	}
	if got := res.Failed(); len(got) != 2 {
		t.Fatalf("failed pairs %v, want all 2", got)
	}
	for _, p := range res.Pairs {
		if len(p.Attempts) != 3 || p.Error == "" {
			t.Errorf("pair %d: %d attempts, error %q; want full exhausted ladder", p.Pair, len(p.Attempts), p.Error)
		}
	}
}

// TestBudgetWaves: admission reserves the full ladder per pair, settles
// actuals at wave barriers, and reuses the freed headroom for deferred
// pairs; when no full ladder fits, the remaining pairs are denied
// deterministically in index order.
func TestBudgetWaves(t *testing.T) {
	spec := testSpec(4) // 3 pairs
	cfg := Config{
		Methods: []Method{MethodFast},
		Budget:  4600, // wave 1: two 1500-reserves fit, the third defers
	}
	res := extractSpec(t, spec, 3, cfg)
	// A fast pair extraction measures ≈ 1100 probes, so after wave 1 the
	// actuals (~2200) leave room for the deferred pair's 1500 reserve.
	if res.BudgetDenied != 0 {
		t.Fatalf("budgetDenied = %d, want 0 (wave 2 should admit the deferred pair)", res.BudgetDenied)
	}
	if res.Chain == nil {
		t.Fatalf("no chain; pairs: %+v", res.Pairs)
	}
	if res.Probes > cfg.Budget {
		t.Fatalf("budget overspent: %d > %d", res.Probes, cfg.Budget)
	}

	tight := Config{Methods: []Method{MethodFast}, Budget: 2000}
	res = extractSpec(t, spec, 3, tight)
	if res.BudgetDenied != 2 {
		t.Fatalf("budgetDenied = %d, want 2 under a one-pair budget", res.BudgetDenied)
	}
	if res.Pairs[0].Error != "" || res.Pairs[1].Error == "" || res.Pairs[2].Error == "" {
		t.Fatalf("denial not in index order: %+v", res.Pairs)
	}
	if res.Probes > tight.Budget {
		t.Fatalf("budget overspent: %d > %d", res.Probes, tight.Budget)
	}
}

// TestCancellationAborts: a cancelled context is a transport error, never a
// recorded pair outcome.
func TestCancellationAborts(t *testing.T) {
	spec := testSpec(3)
	src, err := NewSpecSource(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.New(1)
	defer pool.Close(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Extract(ctx, pool, src, Config{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMakespanScheduling pins the deterministic list-schedule model.
func TestMakespanScheduling(t *testing.T) {
	pairs := []PairResult{{ExperimentS: 4}, {ExperimentS: 2}, {ExperimentS: 3}, {ExperimentS: 1}}
	if got := makespan(pairs, 1); got != 10 {
		t.Errorf("1 worker makespan %v, want 10 (the sequential sum)", got)
	}
	// 2 channels, pair order: w0=4, w1=2, then 3 → w1 (5), 1 → w0 (5).
	if got := makespan(pairs, 2); got != 5 {
		t.Errorf("2 worker makespan %v, want 5", got)
	}
	if got := makespan(pairs, 8); got != 4 {
		t.Errorf("8 worker makespan %v, want 4 (the longest pair)", got)
	}
}

// TestSpecSourceWindows validates the per-pair window override.
func TestSpecSourceWindows(t *testing.T) {
	spec := testSpec(4)
	spec.FillDefaults()
	if _, err := NewSpecSource(spec, make([]csd.Window, 2)); err == nil {
		t.Error("accepted wrong window count")
	}
	w := spec.Window()
	src, err := NewSpecSource(spec, []csd.Window{w, w, w})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(src.Windows()); got != 3 {
		t.Fatalf("%d windows, want 3", got)
	}
}

// TestUnknownMethodRejected ensures ladder validation happens before any
// probing.
func TestUnknownMethodRejected(t *testing.T) {
	spec := testSpec(3)
	src, err := NewSpecSource(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.New(1)
	defer pool.Close(context.Background())
	if _, err := Extract(context.Background(), pool, src, Config{Methods: []Method{"hough"}}); err == nil {
		t.Error("accepted unknown method")
	}
}

// TestChainDenseCacheInvalidation: the planner composes through SetPair, so
// the cached dense form must refresh.
func TestChainDenseCacheInvalidation(t *testing.T) {
	c, err := virtualgate.NewChain(3)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Dense()
	m, err := virtualgate.FromSlopes(-8, -0.12)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetPair(1, m); err != nil {
		t.Fatal(err)
	}
	d := c.Dense()
	if d[1*3+2] != m.A12() || d[2*3+1] != m.A21() {
		t.Error("Dense served a stale cache after SetPair")
	}
}

func BenchmarkChainExtract(b *testing.B) {
	for _, dots := range []int{4, 8, 16} {
		for _, mode := range []struct {
			name    string
			workers int
		}{{"seq", 1}, {"conc", 8}} {
			b.Run(fmt.Sprintf("dots-%d-%s", dots, mode.name), func(b *testing.B) {
				spec := testSpec(dots)
				src, err := NewSpecSource(spec, nil)
				if err != nil {
					b.Fatal(err)
				}
				var dwell, makespanS, probes float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pool := sched.New(mode.workers)
					res, err := Extract(context.Background(), pool, src, Config{})
					pool.Close(context.Background())
					if err != nil {
						b.Fatal(err)
					}
					if res.Chain == nil {
						b.Fatalf("chain failed: %+v", res.Failed())
					}
					dwell += res.ExperimentS
					makespanS += res.MakespanS
					probes += float64(res.Probes)
				}
				n := float64(b.N)
				b.ReportMetric(dwell/n, "dwell-s/op")
				b.ReportMetric(makespanS/n, "makespan-s/op")
				b.ReportMetric(probes/(n*float64(dots-1)), "probes/pair")
			})
		}
	}
}
