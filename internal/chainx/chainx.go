// Package chainx is the N-dot chain extraction planner: it decomposes an
// N-dot linear-array job into its N−1 adjacent-pair extractions, runs them
// concurrently on a sched.Pool under a shared probe-budget accountant, and
// composes the pairwise matrices into one virtualgate.Chain — the paper's
// Section 2.3 procedure lifted from a sequential demo to a first-class
// workload.
//
// Determinism. Every pair probes its own independent instrument (the
// contract of Source), so the measured currents of pair i depend on pair i
// alone. All cross-pair decisions — budget admission, accounting, chain
// composition — happen serially in pair-index order at wave barriers. A
// chain extraction is therefore bit-identical at any worker count,
// including the sequential one-worker pool.
//
// Budget. Admission is by reservation, the same semantics as the fleet
// manager's: a pair is admitted only when the budget can cover its full
// escalation ladder at AttemptReserve probes per attempt, reservations
// become actuals at the wave barrier, and freed headroom admits deferred
// pairs in later waves. With AttemptReserve at or above the worst observed
// attempt cost, the budget can never be overspent.
//
// Escalation. Pair extraction failures are deterministic outcomes of the
// request (the instruments replay identically — the semantics of
// internal/service's job results), so a failed method escalates to the next
// method in the ladder instead of failing the chain; only cancellation and
// instrument faults abort. A pair whose whole ladder fails is recorded as a
// failed PairResult, and the composed chain is withheld.
package chainx

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/evalx"
	"github.com/fastvg/fastvg/internal/infogain"
	"github.com/fastvg/fastvg/internal/qflow"
	"github.com/fastvg/fastvg/internal/rays"
	"github.com/fastvg/fastvg/internal/sched"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// Method names a pair extraction pipeline.
type Method string

// The pair extraction methods of the escalation ladder.
const (
	MethodFast     Method = "fast"     // the paper's method (core.Extract)
	MethodAdaptive Method = "adaptive" // coarse-to-fine fast extraction
	MethodRays     Method = "rays"     // ray-casting comparison method
	MethodInfoGain Method = "infogain" // Bayesian active probe scheduling
)

// ValidMethod reports whether m names a known pair method.
func ValidMethod(m Method) bool {
	switch m {
	case MethodFast, MethodAdaptive, MethodRays, MethodInfoGain:
		return true
	}
	return false
}

// DefaultLadder is the default per-pair escalation: the paper's fast method
// first, the coarse-to-fine pass when its anchors fail, and the ray fan as
// the last resort (it needs no anchor structure at all). It is unchanged by
// the infogain rung so existing canonical request hashes stay stable; use
// InfoGainLadder to opt in.
func DefaultLadder() []Method {
	return []Method{MethodFast, MethodAdaptive, MethodRays}
}

// InfoGainLadder is the active-probing escalation: the infogain scheduler
// first — an order of magnitude fewer probes on quiet devices — falling
// back to the paper's sweeps when the posterior fails to converge.
func InfoGainLadder() []Method {
	return []Method{MethodInfoGain, MethodFast, MethodAdaptive, MethodRays}
}

// DefaultAttemptReserve is the probe reservation per escalation attempt: at
// or above the worst observed attempt cost on a 100×100 pair window (a fast
// extraction measures ≈ 1100 probes, a ray fan fewer), so a budget window
// can never be overspent.
const DefaultAttemptReserve = 1500

// ErrBudget marks a pair denied by the probe budget accountant.
var ErrBudget = errors.New("chainx: probe budget exhausted")

// PairInstrument is the two-gate instrument a pair extraction probes.
type PairInstrument interface {
	device.Instrument
	Stats() device.Stats
}

// Source provides the chain decomposition: the dot count and, per adjacent
// pair, an instrument and scan window. Pair must return an instrument
// independent of every other pair's (shared-nothing) when the planner runs
// on a pool with more than one worker; device.ChainSpec.BuildPair is the
// canonical implementation.
type Source interface {
	Dots() int
	Pair(i int) (PairInstrument, csd.Window, error)
}

// TruthSource is optionally implemented by sources with analytic pair
// slopes; the planner then scores each pair against the paper's accuracy
// criterion.
type TruthSource interface {
	PairTruth(i int) (steep, shallow float64)
}

// Config tunes a chain extraction; the zero value runs the default ladder
// with no budget.
type Config struct {
	// Methods is the per-pair escalation ladder, tried in order; empty uses
	// DefaultLadder.
	Methods []Method
	// Budget caps the probes the whole chain may spend; 0 means unlimited.
	Budget int
	// AttemptReserve is the admission reservation per ladder attempt;
	// default DefaultAttemptReserve.
	AttemptReserve int

	// Fast tunes the fast and adaptive methods; CoarseFactor the adaptive
	// coarse pass (0 uses the core default); Rays the ray method; InfoGain
	// the active probe scheduler.
	Fast         core.Config
	CoarseFactor int
	Rays         rays.Config
	InfoGain     infogain.Config

	// Wrap, if non-nil, wraps each pair's instrument before probing — the
	// extraction service's per-pair trace recording hook.
	Wrap func(pair int, inst PairInstrument) PairInstrument

	// run overrides the method dispatch in tests.
	run func(ctx context.Context, m Method, inst PairInstrument, win csd.Window, cfg *Config) (*pairFit, error)
}

func (c *Config) fillDefaults() {
	if len(c.Methods) == 0 {
		c.Methods = DefaultLadder()
	}
	if c.AttemptReserve <= 0 {
		c.AttemptReserve = DefaultAttemptReserve
	}
	if c.run == nil {
		c.run = runMethod
	}
}

// Attempt is one escalation step of a pair extraction.
type Attempt struct {
	Method Method `json:"method"`
	Probes int    `json:"probes"`
	Error  string `json:"error,omitempty"`
}

// PairResult is the outcome of one adjacent-pair extraction.
type PairResult struct {
	Pair   int    `json:"pair"`
	Method Method `json:"method,omitempty"` // the method that succeeded

	Matrix       virtualgate.Mat2 `json:"matrix"`
	SteepSlope   float64          `json:"steepSlope,omitempty"`
	ShallowSlope float64          `json:"shallowSlope,omitempty"`
	TripleV1     float64          `json:"tripleV1,omitempty"`
	TripleV2     float64          `json:"tripleV2,omitempty"`

	Probes      int       `json:"probes"` // across all attempts
	ExperimentS float64   `json:"experimentS"`
	Attempts    []Attempt `json:"attempts,omitempty"`

	// Error records a deterministic pair failure: every ladder method
	// failed, or the budget accountant denied the pair.
	Error string `json:"error,omitempty"`

	Scored        bool    `json:"scored,omitempty"`
	Success       bool    `json:"success,omitempty"`
	SteepErrDeg   float64 `json:"steepErrDeg,omitempty"`
	ShallowErrDeg float64 `json:"shallowErrDeg,omitempty"`
}

// Result is the outcome of a chain extraction.
type Result struct {
	Dots int `json:"dots"`
	// Chain is the composed N×N virtualization; nil unless every pair
	// succeeded.
	Chain *virtualgate.Chain `json:"chain,omitempty"`
	// Pairs holds every pair's outcome in pair-index order.
	Pairs []PairResult `json:"pairs"`

	Probes int `json:"probes"` // summed across pairs
	// ExperimentS is the summed instrument dwell across pairs — the
	// wall-clock cost of running the pairs sequentially on one fridge line.
	ExperimentS float64 `json:"experimentS"`
	// MakespanS is the dwell makespan of the same pair extractions list-
	// scheduled (in pair order) over Workers concurrent instrument channels:
	// what the chain costs in lab wall-clock when pairs run concurrently.
	MakespanS float64 `json:"makespanS"`
	Workers   int     `json:"workers"`

	BudgetDenied int     `json:"budgetDenied,omitempty"`
	ComputeS     float64 `json:"computeS"`
}

// Failed returns the indices of pairs that did not produce a matrix.
func (r *Result) Failed() []int {
	var out []int
	for i := range r.Pairs {
		if r.Pairs[i].Error != "" {
			out = append(out, i)
		}
	}
	return out
}

// Extract runs the chain extraction: N−1 pair extractions on pool under
// cfg's budget and escalation ladder, composed into a Chain. It returns an
// error only for transport faults (cancellation, a Source that cannot build
// a pair, a closed pool); pipeline failures are deterministic outcomes
// recorded on the PairResults.
func Extract(ctx context.Context, pool *sched.Pool, src Source, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	for _, m := range cfg.Methods {
		if !ValidMethod(m) {
			return nil, fmt.Errorf("chainx: unknown method %q", m)
		}
	}
	n := src.Dots()
	if n < 2 {
		return nil, errors.New("chainx: chain needs at least 2 dots")
	}
	t0 := time.Now()
	res := &Result{Dots: n, Pairs: make([]PairResult, n-1), Workers: pool.Workers()}
	for i := range res.Pairs {
		res.Pairs[i].Pair = i
	}

	// Waves: admit in pair order under the budget, run the wave concurrently,
	// settle actual probes at the barrier, repeat with the freed headroom.
	pending := make([]int, 0, n-1)
	for i := 0; i < n-1; i++ {
		pending = append(pending, i)
	}
	spent := 0
	need := cfg.AttemptReserve * len(cfg.Methods)
	for len(pending) > 0 {
		var wave, deferred []int
		reserved := 0
		for _, i := range pending {
			if cfg.Budget <= 0 || spent+reserved+need <= cfg.Budget {
				wave = append(wave, i)
				reserved += need
			} else {
				deferred = append(deferred, i)
			}
		}
		if len(wave) == 0 {
			// No headroom left for even one full ladder: the remaining pairs
			// are denied deterministically, in pair order.
			for _, i := range deferred {
				res.Pairs[i].Error = ErrBudget.Error()
				res.BudgetDenied++
			}
			break
		}
		err := pool.Map(ctx, len(wave), func(jctx context.Context, j int) error {
			return extractPair(jctx, src, &cfg, &res.Pairs[wave[j]])
		})
		// Settle in pair order even when the wave was interrupted: completed
		// pairs' probes were really spent.
		for _, i := range wave {
			spent += res.Pairs[i].Probes
		}
		if err != nil {
			return nil, err
		}
		pending = deferred
	}

	// Compose and account serially in pair order.
	allOK := true
	for i := range res.Pairs {
		p := &res.Pairs[i]
		res.Probes += p.Probes
		res.ExperimentS += p.ExperimentS
		if p.Error != "" {
			allOK = false
		}
	}
	res.MakespanS = makespan(res.Pairs, res.Workers)
	if allOK {
		chain, err := virtualgate.NewChain(n)
		if err != nil {
			return nil, err
		}
		for i := range res.Pairs {
			if err := chain.SetPair(i, res.Pairs[i].Matrix); err != nil {
				return nil, err
			}
		}
		res.Chain = chain
	}
	res.ComputeS = time.Since(t0).Seconds()
	return res, nil
}

// extractPair resolves one pair's instrument from the source and runs its
// escalation ladder.
func extractPair(ctx context.Context, src Source, cfg *Config, pr *PairResult) error {
	inst, win, err := src.Pair(pr.Pair)
	if err != nil {
		return fmt.Errorf("chainx: pair %d: %w", pr.Pair, err)
	}
	if cfg.Wrap != nil {
		inst = cfg.Wrap(pr.Pair, inst)
	}
	var truth TruthSource
	if ts, ok := src.(TruthSource); ok {
		truth = ts
	}
	return runLadder(ctx, inst, win, cfg, truth, pr)
}

// ExtractPair runs one pair's escalation ladder directly against a
// pre-built instrument — the offline-replay entry point, where the
// "instrument" serves a recorded probe trace. cfg.Wrap is not applied.
func ExtractPair(ctx context.Context, pair int, inst PairInstrument, win csd.Window, cfg Config) (*PairResult, error) {
	cfg.fillDefaults()
	pr := &PairResult{Pair: pair}
	if err := runLadder(ctx, inst, win, &cfg, nil, pr); err != nil {
		return nil, err
	}
	return pr, nil
}

// runLadder runs the escalation ladder on inst, filling pr. Deterministic
// pipeline failures escalate; cancellation and instrument faults abort.
func runLadder(ctx context.Context, inst PairInstrument, win csd.Window, cfg *Config, truth TruthSource, pr *PairResult) error {
	var lastErr error
	for _, m := range cfg.Methods {
		if err := ctx.Err(); err != nil {
			return err
		}
		before := inst.Stats()
		fit, aerr := cfg.run(ctx, m, inst, win, cfg)
		after := inst.Stats()
		probes := after.UniqueProbes - before.UniqueProbes
		att := Attempt{Method: m, Probes: probes}
		if aerr != nil {
			if errors.Is(aerr, context.Canceled) || errors.Is(aerr, context.DeadlineExceeded) {
				return aerr
			}
			att.Error = aerr.Error()
			lastErr = aerr
		}
		pr.Attempts = append(pr.Attempts, att)
		pr.Probes += probes
		pr.ExperimentS += (after.Virtual - before.Virtual).Seconds()
		if aerr == nil {
			pr.Method = m
			pr.Matrix = fit.matrix
			pr.SteepSlope, pr.ShallowSlope = fit.steep, fit.shallow
			pr.TripleV1, pr.TripleV2 = fit.tripleV1, fit.tripleV2
			if truth != nil {
				steep, shallow := truth.PairTruth(pr.Pair)
				pr.Scored = true
				pr.Success, pr.SteepErrDeg, pr.ShallowErrDeg =
					evalx.CheckSlopes(fit.steep, fit.shallow,
						qflow.Truth{SteepSlope: steep, ShallowSlope: shallow}, evalx.DefaultAngleTolDeg)
			}
			return nil
		}
	}
	pr.Error = fmt.Sprintf("all %d methods failed, last: %v", len(cfg.Methods), lastErr)
	return nil
}

// pairFit is one successful method attempt's extraction.
type pairFit struct {
	matrix             virtualgate.Mat2
	steep, shallow     float64
	tripleV1, tripleV2 float64
}

// runMethod dispatches one ladder attempt onto the extraction pipelines.
func runMethod(ctx context.Context, m Method, inst PairInstrument, win csd.Window, cfg *Config) (*pairFit, error) {
	src := csd.PixelSource{Src: inst, Win: win}
	switch m {
	case MethodFast:
		cr, err := core.Extract(src, win, cfg.Fast)
		if err != nil {
			return nil, err
		}
		fit := &pairFit{matrix: cr.Matrix, steep: cr.SteepSlope, shallow: cr.ShallowSlope}
		fit.tripleV1, fit.tripleV2 = cr.TriplePointVoltage(win)
		return fit, nil
	case MethodAdaptive:
		ar, err := core.ExtractAdaptive(src, win, core.AdaptiveConfig{Config: cfg.Fast, CoarseFactor: cfg.CoarseFactor})
		if err != nil {
			return nil, err
		}
		fine := ar.Fine
		fit := &pairFit{matrix: fine.Matrix, steep: fine.SteepSlope, shallow: fine.ShallowSlope}
		fit.tripleV1, fit.tripleV2 = fine.TriplePointVoltage(win)
		return fit, nil
	case MethodRays:
		rr, err := rays.Extract(src, win, cfg.Rays)
		if err != nil {
			return nil, err
		}
		return &pairFit{matrix: rr.Matrix, steep: rr.SteepSlope, shallow: rr.ShallowSlope}, nil
	case MethodInfoGain:
		ir, err := infogain.Extract(src, win, cfg.InfoGain)
		if err != nil {
			return nil, err
		}
		fit := &pairFit{matrix: ir.Matrix, steep: ir.SteepSlope, shallow: ir.ShallowSlope}
		fit.tripleV1, fit.tripleV2 = ir.TriplePointVoltage(win)
		return fit, nil
	}
	return nil, fmt.Errorf("chainx: unknown method %q", m)
}

// makespan list-schedules the pairs' dwell durations, in pair order, over w
// concurrent instrument channels and returns the completion time of the
// last one — a deterministic model of what the extraction costs in lab
// wall-clock, where per-probe dwell dominates and independent pairs measure
// simultaneously.
func makespan(pairs []PairResult, w int) float64 {
	if w < 1 {
		w = 1
	}
	free := make([]float64, w)
	var end float64
	for i := range pairs {
		// Earliest-free channel; ties to the lowest index.
		k := 0
		for j := 1; j < w; j++ {
			if free[j] < free[k] {
				k = j
			}
		}
		free[k] += pairs[i].ExperimentS
		if free[k] > end {
			end = free[k]
		}
	}
	return end
}
