package chainx

import (
	"encoding/json"
	"testing"

	"github.com/fastvg/fastvg/internal/infogain"
)

// TestInfoGainBitIdenticalAcrossWorkers extends the determinism contract to
// the active scheduler: an infogain-first ladder extracts to byte-identical
// pair results and chain at any worker count.
func TestInfoGainBitIdenticalAcrossWorkers(t *testing.T) {
	spec := testSpec(5)
	cfg := Config{Methods: InfoGainLadder()}
	var want []byte
	var wantChain []float64
	for _, workers := range []int{1, 2, 4, 8} {
		res := extractSpec(t, spec, workers, cfg)
		if res.Chain == nil {
			t.Fatalf("workers=%d: no composed chain; pairs: %+v", workers, res.Pairs)
		}
		for i, p := range res.Pairs {
			if p.Method != MethodInfoGain {
				t.Errorf("workers=%d pair %d method %q, want infogain on first attempt (err %q)",
					workers, i, p.Method, p.Error)
			}
		}
		got, err := json.Marshal(res.Pairs)
		if err != nil {
			t.Fatal(err)
		}
		dense := append([]float64(nil), res.Chain.Dense()...)
		if want == nil {
			want, wantChain = got, dense
			continue
		}
		if string(got) != string(want) {
			t.Errorf("workers=%d: pair results differ from workers=1", workers)
		}
		for i := range dense {
			if dense[i] != wantChain[i] {
				t.Errorf("workers=%d: chain matrix bit-differs at %d", workers, i)
				break
			}
		}
	}
}

// TestInfoGainLadderFallback: an unreachable CI target makes the infogain
// rung fail deterministically (ErrNoConverge is a pipeline outcome, not a
// transport error), so the pair escalates to fast with both attempts
// recorded.
func TestInfoGainLadderFallback(t *testing.T) {
	spec := testSpec(3)
	cfg := Config{
		Methods:  InfoGainLadder(),
		InfoGain: infogain.Config{TargetCI: 1e-9, MaxProbes: 40},
	}
	res := extractSpec(t, spec, 2, cfg)
	if res.Chain == nil {
		t.Fatalf("no chain despite escalation; pairs: %+v", res.Pairs)
	}
	for i, p := range res.Pairs {
		if p.Method != MethodFast {
			t.Errorf("pair %d method %q, want fast after infogain failed", i, p.Method)
		}
		if len(p.Attempts) < 2 {
			t.Fatalf("pair %d has %d attempts, want >= 2", i, len(p.Attempts))
		}
		if p.Attempts[0].Method != MethodInfoGain || p.Attempts[0].Error == "" {
			t.Errorf("pair %d first attempt %+v, want failed infogain", i, p.Attempts[0])
		}
		if p.Attempts[1].Method != MethodFast || p.Attempts[1].Error != "" {
			t.Errorf("pair %d second attempt %+v, want successful fast", i, p.Attempts[1])
		}
	}
}
