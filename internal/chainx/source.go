package chainx

import (
	"fmt"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
)

// SpecSource decomposes a device.ChainSpec into independent per-pair
// instruments — the canonical planner Source. Each Pair call builds a fresh
// shared-nothing instrument whose noise and drift realisations derive from
// (spec.Seed, pair) alone, so concurrent extraction is bit-identical to
// sequential at any worker count.
type SpecSource struct {
	spec    device.ChainSpec
	windows []csd.Window // per-pair scan windows
}

// NewSpecSource builds a source over spec. windows, when non-nil, overrides
// the spec's default pair window and must hold Dots−1 entries (one per
// adjacent pair).
func NewSpecSource(spec device.ChainSpec, windows []csd.Window) (*SpecSource, error) {
	spec.FillDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if windows == nil {
		w := spec.Window()
		windows = make([]csd.Window, spec.Dots-1)
		for i := range windows {
			windows[i] = w
		}
	}
	if len(windows) != spec.Dots-1 {
		return nil, fmt.Errorf("chainx: need %d pair windows, got %d", spec.Dots-1, len(windows))
	}
	for i, w := range windows {
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("chainx: pair %d window: %w", i, err)
		}
	}
	return &SpecSource{spec: spec, windows: windows}, nil
}

// Dots implements Source.
func (s *SpecSource) Dots() int { return s.spec.Dots }

// Windows returns the per-pair scan windows.
func (s *SpecSource) Windows() []csd.Window { return s.windows }

// Pair implements Source with an independent instrument per pair.
func (s *SpecSource) Pair(i int) (PairInstrument, csd.Window, error) {
	if i < 0 || i >= s.spec.Dots-1 {
		return nil, csd.Window{}, fmt.Errorf("chainx: pair index %d out of range", i)
	}
	pv, _, err := s.spec.BuildPair(i)
	if err != nil {
		return nil, csd.Window{}, err
	}
	return pv, s.windows[i], nil
}

// PairTruth implements TruthSource with the spec's analytic pair slopes.
func (s *SpecSource) PairTruth(i int) (steep, shallow float64) {
	return s.spec.PairTruth(i)
}

// SharedSource adapts a single shared-instrument chain device (one
// MultiInstrument, pair views over it) into a planner Source — the
// hardware-faithful view, where all pairs probe one device. Pairs sharing an
// instrument interleave their dwells, so run the planner on a one-worker
// pool for reproducible results; this is what the root ExtractChain façade
// does.
type SharedSource struct {
	Inst *device.MultiInstrument
	// Windows are the per-pair scan windows (len Dots−1).
	Win []csd.Window
	// Base is the operating point for the gates not being scanned.
	Base []float64
}

// Dots implements Source.
func (s *SharedSource) Dots() int { return s.Inst.Dev.Phys.N }

// Pair implements Source with a view over the shared instrument.
func (s *SharedSource) Pair(i int) (PairInstrument, csd.Window, error) {
	if i < 0 || i >= len(s.Win) {
		return nil, csd.Window{}, fmt.Errorf("chainx: pair index %d out of range", i)
	}
	pv, err := device.NewPairView(s.Inst, i, i+1, s.Base)
	if err != nil {
		return nil, csd.Window{}, err
	}
	return pv, s.Win[i], nil
}
