package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	s0 := DeriveSeed(7, 0)
	s1 := DeriveSeed(7, 1)
	if s0 == s1 {
		t.Fatal("derived seeds for distinct indices are equal")
	}
	if DeriveSeed(7, 0) != s0 {
		t.Fatal("DeriveSeed is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12.0) > 0.01 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12.0)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		f := r.NormFloat64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("gaussian mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("gaussian variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 20, 100} {
		r := New(7)
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, got)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	r := New(8)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-1); got != 0 {
		t.Errorf("Poisson(-1) = %d, want 0", got)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(11)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestZeroStateGuard(t *testing.T) {
	// A pathological seed must not yield the all-zero xoshiro state (which
	// would emit zeros forever).
	r := New(0)
	zeros := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 2 {
		t.Fatalf("generator from seed 0 emitted %d/100 zeros", zeros)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
