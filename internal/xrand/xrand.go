// Package xrand provides a small, deterministic pseudo-random toolkit used by
// every stochastic component in this repository.
//
// The benchmark suite must reproduce byte-identical charge stability diagrams
// on every run and on every Go release, so we do not rely on math/rand's
// unspecified stream-splitting behaviour. Instead we implement
// splitmix64 (for seeding and stream derivation) and xoshiro256** (for the
// main stream), together with the handful of variates the device and noise
// models need: uniform, Gaussian, exponential and Poisson.
package xrand

import "math"

// splitmix64 advances a 64-bit state and returns the next output. It is used
// to expand a single user seed into the four words of xoshiro256** state and
// to derive independent child seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a deterministic xoshiro256** generator. The zero value is not
// usable; construct with New.
type Rand struct {
	s [4]uint64

	// cached second Gaussian variate from the polar method
	gaussReady bool
	gaussValue float64
}

// New returns a generator seeded from seed via splitmix64. Two generators
// built from the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// DeriveSeed deterministically derives the i-th child seed from a parent
// seed. Children with distinct indices get independent streams, which lets a
// benchmark definition own one seed while its noise components each get their
// own generator.
func DeriveSeed(parent uint64, i int) uint64 {
	sm := parent ^ (0x6a09e667f3bcc909 * uint64(i+1))
	return splitmix64(&sm)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard Gaussian variate using the Marsaglia polar
// method. Pairs are generated together and the second is cached.
func (r *Rand) NormFloat64() float64 {
	if r.gaussReady {
		r.gaussReady = false
		return r.gaussValue
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gaussValue = v * f
		r.gaussReady = true
		return u * f
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Poisson returns a Poisson variate with the given mean. Knuth's product
// method is used for small means and a Gaussian approximation (rounded and
// clamped at zero) for large ones; the crossover keeps the product method's
// cost bounded.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly swaps elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
