package infogain

import (
	"fmt"
	"testing"

	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/noise"
)

// benchPresets are the noise environments the probe-economy benchmarks sweep:
// clean, white-only, and the lab-like white+pink mix the tests use.
var benchPresets = []struct {
	name string
	n    noise.Params
}{
	{"noiseless", noise.Params{}},
	{"white", noise.Params{WhiteSigma: 0.01}},
	{"lab", noise.Params{WhiteSigma: 0.01, PinkAmp: 0.012, PinkN: 12}},
}

// BenchmarkInfoGainVsFast is the headline probe-economy comparison behind
// BENCH_infogain.json: the fast raster extraction and the active scheduler
// run on identically spec'd default double-dot windows, and the custom
// metrics report mean probes and matrix error for each, plus the probe cut.
// Averaged over 4 seeds per iteration so one lucky noise draw cannot carry
// the headline.
func BenchmarkInfoGainVsFast(b *testing.B) {
	const seeds = 4
	for _, p := range benchPresets {
		b.Run(p.name, func(b *testing.B) {
			var igProbes, igErr, fastProbes, fastErr float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for seed := uint64(1); seed <= seeds; seed++ {
					inst, win, truth := buildDefault(b, p.n, seed)
					src := csd.PixelSource{Src: inst, Win: win}
					fr, err := core.Extract(src, win, core.Config{})
					if err != nil {
						b.Fatal(err)
					}
					fastProbes += float64(inst.Stats().UniqueProbes)
					fastErr += matErr(fr.Matrix, truth)

					inst2, win2, _ := buildDefault(b, p.n, seed)
					src2 := csd.PixelSource{Src: inst2, Win: win2}
					ir, err := Extract(src2, win2, Config{})
					if err != nil {
						b.Fatal(err)
					}
					igProbes += float64(inst2.Stats().UniqueProbes)
					igErr += matErr(ir.Matrix, truth)
				}
			}
			n := float64(b.N) * seeds
			b.ReportMetric(igProbes/n, "ig-probes")
			b.ReportMetric(igErr/n, "ig-err")
			b.ReportMetric(fastProbes/n, "fast-probes")
			b.ReportMetric(fastErr/n, "fast-err")
			b.ReportMetric(fastProbes/igProbes, "probe-cut")
		})
	}
}

// BenchmarkInfoGainCurve traces the probes-to-target-accuracy curve: probes
// spent and matrix error reached as the CI target tightens, per noise
// preset. Looser targets stop earlier; the default (0.030) is the last
// point.
func BenchmarkInfoGainCurve(b *testing.B) {
	const seeds = 4
	for _, p := range benchPresets {
		for _, ci := range []float64{0.09, 0.06, 0.045, 0.03} {
			b.Run(fmt.Sprintf("%s/ci=%.3f", p.name, ci), func(b *testing.B) {
				var probes, errSum float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for seed := uint64(1); seed <= seeds; seed++ {
						inst, win, truth := buildDefault(b, p.n, seed)
						src := csd.PixelSource{Src: inst, Win: win}
						res, err := Extract(src, win, Config{TargetCI: ci})
						if err != nil {
							b.Fatal(err)
						}
						probes += float64(inst.Stats().UniqueProbes)
						errSum += matErr(res.Matrix, truth)
					}
				}
				n := float64(b.N) * seeds
				b.ReportMetric(probes/n, "probes")
				b.ReportMetric(errSum/n, "err")
			})
		}
	}
}
