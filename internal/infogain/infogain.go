// Package infogain implements Bayesian active probe scheduling for virtual
// gate extraction: instead of rastering sweeps over the scan window, it
// maintains a discrete posterior over each transition line's geometry —
// offset, slope, and a bend/lever parameter — and probes, one cell at a
// time, wherever the binary bright/dark outcome is expected to shrink the
// posterior variance of the virtualization-matrix entries the most. It
// stops when the matrix-entry confidence interval reaches a target instead
// of exhausting a fixed probe pattern, which on quiet devices cuts
// probes-per-pair well below the fast method's sweep budget.
//
// # Posterior model
//
// Each transition line is parameterised in its natural frame. The steep
// line (dot 1, dV2/dV1 < −1) crosses the bottom edge and is written
// x(y) = off + d·y·(1 + bend·y/L) with d = dx/dy ∈ (−1, 0); the shallow
// line (dot 2, dV2/dV1 ∈ (−1, 0)) crosses the left edge and is written
// y(x) = off + s·x·(1 + bend·x/L). Both parameterisations live strictly
// inside the paper's device-physics prior, so every hypothesis the
// scheduler can converge to yields a valid virtualization matrix. The bend
// term models the gentle lever-arm curvature real lines show away from the
// sweet spot; for straight simulated lines it collapses to 0.
//
// A probe at a pixel is labelled bright (the (0,0) side of the line) or
// dark by comparing the measured current against a threshold calibrated
// during seeding from the actual step levels bracketing the line. Each
// hypothesis predicts the label exactly, the measurement mislabels with
// probability NoiseEps, and the posterior is the normalised product of the
// resulting Bernoulli likelihoods over a 3-D hypothesis grid. When the
// posterior concentrates, the grid re-centres and shrinks around the mass
// (re-playing the recorded probe history onto the new grid), so the final
// slope resolution is far finer than the initial grid spacing.
//
// # Probe selection
//
// Candidate cells sit on a fixed fan of scan lines below (steep) or left
// of (shallow) the current knee estimate, at posterior crossing quantiles
// per scan line. Each candidate is scored by the expected posterior
// variance of the line's matrix entry after observing its binary outcome —
// exactly "probe the cell whose above/below-line answer best splits the
// current hypothesis set" — and the best unprobed candidate is measured.
// Enumeration order and tie-breaking (first candidate wins ties) are fixed,
// every probe goes through the instrument contract one cell at a time, and
// no decision depends on wall clock or scheduling, so an extraction is
// bit-identical at any worker count and under trace replay.
//
// # Stopping and escalation
//
// The scheduler alternates between the two lines, always probing the line
// farther from its target, and stops when both matrix entries' 95%
// confidence intervals are at most TargetCI wide. If the budget MaxProbes
// is exhausted first — noise floor too high, seeding mis-bracketed, device
// drifted mid-extraction — Extract returns ErrNoConverge, a deterministic
// pipeline failure that escalation ladders (internal/chainx) treat like
// any other method miss: the next rung re-extracts with the paper's sweeps.
package infogain

import (
	"errors"
	"fmt"
	"math"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/fitting"
	"github.com/fastvg/fastvg/internal/telemetry"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// Source provides sensor current at integer pixel coordinates of the scan
// window, the same contract as core.Source and rays.Source.
type Source interface {
	Current(x, y int) float64
}

// Sentinel errors describing where the scheduler gave up; all are
// deterministic outcomes of the probed currents, so escalation ladders may
// fall through to the next method.
var (
	// ErrSeed: the seeding scans could not bracket both transition lines.
	ErrSeed = errors.New("infogain: seeding could not bracket both lines")
	// ErrNoConverge: the probe budget ran out before both matrix entries
	// reached the target confidence interval.
	ErrNoConverge = errors.New("infogain: posterior did not converge within the probe budget")
	// ErrNonPhysical: the posterior-mean lines violate the physics prior
	// (possible on anisotropic windows, where pixel and voltage slopes differ).
	ErrNonPhysical = errors.New("infogain: extracted lines violate the physics prior")
)

// Package defaults, substituted for zero Config fields.
const (
	// DefaultTargetCI sits just above the pixel-lattice information floor:
	// binary labels on integer cells cannot localise a crossing below one
	// pixel, so over the knee-side lever arm the matrix-entry CI bottoms
	// out near 0.02–0.03. Tighter targets make Extract exhaust its budget
	// and escalate.
	DefaultTargetCI  = 0.030
	DefaultMaxProbes = 500  // active-phase probe budget (both lines)
	DefaultNoiseEps  = 0.08 // Bernoulli mislabel probability
	DefaultGridOff   = 48   // offset hypotheses per line
	DefaultGridSlope = 40   // slope hypotheses per line
	DefaultMinProbes = 6    // active probes per line before stopping may fire
)

// defaultBends is the default bend/lever hypothesis grid: straight lines
// plus a gentle curvature of either sign.
var defaultBends = []float64{-0.04, 0, 0.04}

// Config tunes the scheduler; the zero value uses the defaults above.
type Config struct {
	// TargetCI is the stopping rule: the 95% confidence interval of each
	// matrix entry (A12 for the steep line, A21 for the shallow) must be at
	// most this wide. Default DefaultTargetCI.
	TargetCI float64
	// MaxProbes caps the active-phase probes (seeding excluded); exceeding
	// it returns ErrNoConverge. Default DefaultMaxProbes.
	MaxProbes int
	// NoiseEps is the assumed probability that a probe's bright/dark label
	// is wrong; it tempers the likelihood so no single noisy probe can kill
	// the true hypothesis. Default DefaultNoiseEps.
	NoiseEps float64
	// GridOff and GridSlope size the hypothesis grid per line; Bends lists
	// the bend/lever hypotheses (nil uses the ±0.04 default).
	GridOff   int
	GridSlope int
	Bends     []float64
	// MinProbes is the minimum active probes per line before its stopping
	// rule may fire; defends against overconfident early posteriors.
	// Default 6.
	MinProbes int
	// Prior, when non-nil, centres the initial hypothesis grids on known
	// line geometry — a warm surrogate twin's fit or a fleet pair's last
	// calibration — and narrows the seeding scans around the predicted
	// crossings, cutting the probes spent rediscovering what is known.
	Prior *Prior
	// Metrics, when non-nil, counts extraction outcomes in a telemetry
	// registry. It is live-serving state, not part of the extraction
	// recipe: it never enters request hashing or trace encoding, and
	// replay paths leave it nil so reruns don't inflate live counters.
	Metrics *Metrics `json:"-"`
}

// Metrics is the vgx_infogain_* family set.
type Metrics struct {
	Extractions      *telemetry.Counter
	CIMisses         *telemetry.Counter
	ProbesToConverge *telemetry.Histogram
}

// NewMetrics registers the vgx_infogain_* families on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Extractions:      reg.Counter("vgx_infogain_extractions_total", "Active-scheduler extractions that converged."),
		CIMisses:         reg.Counter("vgx_infogain_ci_misses_total", "Extractions that missed the CI target (budget exhausted or information floor)."),
		ProbesToConverge: reg.Histogram("vgx_infogain_probes_to_converge", "Total probes (seed + active) of converged extractions.", telemetry.ProbeBuckets),
	}
}

// Prior is externally known line geometry used to warm-start the posterior.
type Prior struct {
	// SteepSlope and ShallowSlope are voltage slopes (dV2/dV1), as reported
	// by any extraction Result.
	SteepSlope   float64
	ShallowSlope float64
	// TripleV1 and TripleV2 locate the triple point in gate voltages.
	TripleV1 float64
	TripleV2 float64
	// SlopeSpanFrac is the relative half-width of the slope grid around the
	// prior slope (default 0.35); CrossSpanPx the half-width of the offset
	// grid around the predicted crossing, in pixels (default 12).
	SlopeSpanFrac float64
	CrossSpanPx   float64
}

func (c *Config) fillDefaults() {
	if c.TargetCI == 0 {
		c.TargetCI = DefaultTargetCI
	}
	if c.MaxProbes == 0 {
		c.MaxProbes = DefaultMaxProbes
	}
	if c.NoiseEps == 0 {
		c.NoiseEps = DefaultNoiseEps
	}
	if c.GridOff == 0 {
		c.GridOff = DefaultGridOff
	}
	if c.GridSlope == 0 {
		c.GridSlope = DefaultGridSlope
	}
	if c.Bends == nil {
		c.Bends = defaultBends
	}
	if c.MinProbes == 0 {
		c.MinProbes = DefaultMinProbes
	}
}

// LineEstimate reports one line's posterior summary.
type LineEstimate struct {
	// Entry and EntryCI are the posterior mean and 95% CI width of the
	// line's virtualization-matrix entry (A12 or A21).
	Entry   float64 `json:"entry"`
	EntryCI float64 `json:"entryCI"`
	// SlopePx is the posterior-mean pixel slope (dy/dx).
	SlopePx float64 `json:"slopePx"`
	// Bend is the posterior-mean bend/lever parameter.
	Bend float64 `json:"bend"`
	// Probes counts this line's active-phase probes; Refines its grid
	// refinements.
	Probes  int `json:"probes"`
	Refines int `json:"refines"`
}

// Result is a completed active extraction.
type Result struct {
	SteepSlopePx   float64 `json:"steepSlopePx"`
	ShallowSlopePx float64 `json:"shallowSlopePx"`
	SteepSlope     float64 `json:"steepSlope"`   // dV2/dV1
	ShallowSlope   float64 `json:"shallowSlope"` // dV2/dV1

	Matrix virtualgate.Mat2 `json:"matrix"`
	Knee   fitting.Vec2     `json:"knee"` // pixel coordinates of the line intersection

	Steep   LineEstimate `json:"steep"`
	Shallow LineEstimate `json:"shallow"`

	// SeedProbes counts the seeding-phase probes (diagonal + bracket
	// scans); ActiveProbes the scheduler's probes. Unique instrument probes
	// may be lower when the scheduler revisits a seeded cell.
	SeedProbes   int `json:"seedProbes"`
	ActiveProbes int `json:"activeProbes"`
}

// TriplePointVoltage returns the fitted knee in gate-voltage coordinates.
func (r *Result) TriplePointVoltage(win csd.Window) (v1, v2 float64) {
	return win.V1Min + (r.Knee.X+0.5)*win.StepV1(), win.V2Min + (r.Knee.Y+0.5)*win.StepV2()
}

// Extract runs the active scheduler on a win.Cols × win.Rows window probed
// through src.
func Extract(src Source, win csd.Window, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	if err := win.Validate(); err != nil {
		return nil, err
	}
	s := NewScheduler(win, cfg)
	err := s.Seed(src)
	if err == nil {
		err = s.Run(src)
	}
	var res *Result
	if err == nil {
		res, err = s.Finish()
	}
	if m := cfg.Metrics; m != nil {
		switch {
		case err == nil:
			m.Extractions.Inc()
			m.ProbesToConverge.Observe(float64(res.SeedProbes + res.ActiveProbes))
		case errors.Is(err, ErrNoConverge):
			m.CIMisses.Inc()
		}
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Scheduler is the reusable active-probing state machine behind Extract,
// exposed so hot-path callers (benchmarks, the alloc regression test) can
// step it without re-allocating the posterior grids.
type Scheduler struct {
	win csd.Window
	cfg Config

	steep   posterior // frame u=y, v=x: x(y) = off + d·y·(1+bend·y/L)
	shallow posterior // frame u=x, v=y: y(x) = off + s·x·(1+bend·x/L)

	// gx and gy are the bright plane's current gradients (per pixel along
	// x and y), calibrated by the seed scans.
	gx, gy float64

	probed []uint64 // bitmask over win cells, set once per probed pixel

	seedProbes   int
	activeProbes int
}

// NewScheduler builds a scheduler with all buffers pre-allocated; no
// further allocations happen on the probe hot path.
func NewScheduler(win csd.Window, cfg Config) *Scheduler {
	cfg.fillDefaults()
	s := &Scheduler{win: win, cfg: cfg}
	s.steep.name, s.shallow.name = "steep", "shallow"
	// The steep line's frame: u = y (scan along rows), v = x (the crossing
	// moves along columns). The shallow line is the transpose.
	s.shallow.xIsU = true
	// Matrix entries: A12 = −1/steepV = −d·StepV1/StepV2 and
	// A21 = −shallowV = −s·StepV2/StepV1 (see virtualgate.FromSlopes).
	s.steep.entryScale = -win.StepV1() / win.StepV2()
	s.shallow.entryScale = -win.StepV2() / win.StepV1()
	if cfg.Prior != nil {
		s.steep.prior, s.shallow.prior = buildPriors(win, cfg.Prior)
	}
	s.steep.init(&cfg, win.Rows, win.Cols)
	s.shallow.init(&cfg, win.Cols, win.Rows)
	s.probed = make([]uint64, (win.Cols*win.Rows+63)/64)
	return s
}

// buildPriors converts externally known voltage-space geometry into the
// per-line pixel-frame priors. A prior whose slope falls outside the
// physics-valid pixel range is dropped rather than clamped: better to
// search wide than to anchor the grid on an impossible hypothesis.
func buildPriors(win csd.Window, pr *Prior) (steep, shallow *linePrior) {
	slopeFrac := pr.SlopeSpanFrac
	if slopeFrac == 0 {
		slopeFrac = 0.35
	}
	span := pr.CrossSpanPx
	if span == 0 {
		span = 12
	}
	kx := (pr.TripleV1-win.V1Min)/win.StepV1() - 0.5
	ky := (pr.TripleV2-win.V2Min)/win.StepV2() - 0.5
	if steepPx := win.VoltageSlopeToPixel(pr.SteepSlope); steepPx < -1 {
		d := 1 / steepPx // dx/dy ∈ (−1, 0)
		steep = &linePrior{
			off: kx - d*ky, slope: d,
			slopeSpan: slopeFrac * math.Abs(d), span: span,
		}
	}
	if shPx := win.VoltageSlopeToPixel(pr.ShallowSlope); shPx > -1 && shPx < 0 {
		shallow = &linePrior{
			off: ky - shPx*kx, slope: shPx,
			slopeSpan: slopeFrac * math.Abs(shPx), span: span,
		}
	}
	return steep, shallow
}

func (s *Scheduler) markProbed(x, y int) {
	i := y*s.win.Cols + x
	s.probed[i/64] |= 1 << (uint(i) % 64)
}

func (s *Scheduler) wasProbed(x, y int) bool {
	i := y*s.win.Cols + x
	return s.probed[i/64]&(1<<(uint(i)%64)) != 0
}

// Seed calibrates the labelling model and warm-starts the posteriors: one
// coarse row scan brackets the steep line, one coarse column scan the
// shallow line. The sensor current is not flat inside a charge region — it
// ramps along both gates on the sensor flank — so instead of a global
// threshold the scheduler labels probes against a planar bright model,
// whose gradients come from the scans' pre-step segments and whose step
// size from the detected transition drop. With a Prior, the scans narrow
// to a band around the predicted crossings.
func (s *Scheduler) Seed(src Source) error {
	w, h := s.win.Cols, s.win.Rows
	if err := s.seedLine(src, &s.steep, seedFracs(h)); err != nil {
		return err
	}
	if err := s.seedLine(src, &s.shallow, seedFracs(w)); err != nil {
		return err
	}
	// The steep line's scan runs along x, the shallow's along y: together
	// they give the bright plane's gradient.
	s.gx = s.steep.seedGrad
	s.gy = s.shallow.seedGrad
	// Only now can the scan samples be labelled; feed both scans into
	// their posteriors.
	s.applySeed(&s.steep)
	s.applySeed(&s.shallow)
	return nil
}

// bright reports whether a measured current at a pixel sits on the (0,0)
// side of p's transition line: above the extrapolated bright plane minus
// half the line's calibrated step.
func (s *Scheduler) bright(p *posterior, x, y int, c float64) bool {
	b := p.refV + s.gx*float64(x-p.refX) + s.gy*float64(y-p.refY)
	return c > b-0.5*p.step
}

// applySeed labels p's recorded seed scan and folds it into the posterior.
func (s *Scheduler) applySeed(p *posterior) {
	for i := 0; i < p.seedN; i++ {
		x, y := p.cell(p.seedU, p.scanV[i])
		p.observe(p.seedU, p.scanV[i], s.bright(p, x, y, p.scanC[i]))
	}
}

// seedFracs returns the scan-line positions (as fractions of the knee-side
// extent) tried in order until one brackets the line.
func seedFracs(lim int) [3]int {
	return [3]int{
		int(math.Round(0.10 * float64(lim-1))),
		int(math.Round(0.20 * float64(lim-1))),
		int(math.Round(0.30 * float64(lim-1))),
	}
}

// seedLine coarse-scans across the line at a fixed u (a row for the steep
// line, a column for the shallow) looking for the first dominant current
// step, and calibrates p's labelling model — step size, bright reference
// and ramp gradient — from the step levels and the pre-step segment.
func (s *Scheduler) seedLine(src Source, p *posterior, us [3]int) error {
	lo, hi := 0, p.vLim-1
	div := 14
	if pr := p.prior; pr != nil {
		// Narrow the scan to a band around the prior's predicted crossing
		// at the first scan line; inside a trusted band a sparser scan
		// still brackets the step.
		c := pr.crossAt(float64(us[0]))
		span := pr.span
		lo = clampInt(int(c-span), 0, p.vLim-1)
		hi = clampInt(int(c+span), 0, p.vLim-1)
		if hi-lo < 4 {
			lo, hi = 0, p.vLim-1
		} else {
			div = 8
		}
	}
	stride := (hi - lo) / div
	if stride < 1 {
		stride = 1
	}
	for _, u := range us {
		if s.seedScan(src, p, u, lo, hi, stride) {
			return nil
		}
		// The band may have missed a drifted line: fall back to the full
		// extent on the retry lines.
		lo, hi = 0, p.vLim-1
		stride = (hi - lo) / 14
		if stride < 1 {
			stride = 1
		}
	}
	return fmt.Errorf("%w: no step along %s scans", ErrSeed, p.name)
}

// seedScan runs one coarse scan at fixed u and returns whether it found a
// usable step. On success p's labelling model (step, refV/refX/refY,
// seedGrad) is calibrated and the raw samples are kept for applySeed.
func (s *Scheduler) seedScan(src Source, p *posterior, u, lo, hi, stride int) bool {
	n := 0
	for v := lo; v <= hi && n < len(p.scanV); v += stride {
		x, y := p.cell(u, v)
		p.scanV[n] = v
		p.scanC[n] = src.Current(x, y)
		s.seedProbes++
		s.markProbed(x, y)
		n++
	}
	if n < 5 {
		return false
	}
	maxC, minC := p.scanC[0], p.scanC[0]
	for i := 1; i < n; i++ {
		maxC = math.Max(maxC, p.scanC[i])
		minC = math.Min(minC, p.scanC[i])
	}
	// The largest downward step between consecutive samples must dominate
	// the scan's range to count as a transition rather than noise; among
	// comparably large drops the first wins — on scans that cross several
	// honeycomb lines, the first crossing is this line's.
	maxDrop := 0.0
	for i := 0; i+1 < n; i++ {
		if d := p.scanC[i] - p.scanC[i+1]; d > maxDrop {
			maxDrop = d
		}
	}
	if maxDrop < 0.35*(maxC-minC) || maxDrop <= 0 {
		return false
	}
	bestI := -1
	for i := 0; i+1 < n; i++ {
		if p.scanC[i]-p.scanC[i+1] >= 0.5*maxDrop {
			bestI = i
			break
		}
	}
	// The pre-step segment estimates the bright ramp's gradient along the
	// scan axis; it needs at least three points to be trustworthy.
	if bestI < 2 {
		return false
	}
	var sv, sc, svv, svc float64
	m := float64(bestI + 1)
	for i := 0; i <= bestI; i++ {
		v, c := float64(p.scanV[i]), p.scanC[i]
		sv += v
		sc += c
		svv += v * v
		svc += v * c
	}
	den := svv - sv*sv/m
	if den <= 0 {
		return false
	}
	p.seedGrad = (svc - sv*sc/m) / den
	p.step = p.scanC[bestI] - p.scanC[bestI+1]
	p.refV = p.scanC[bestI]
	p.refX, p.refY = p.cell(u, p.scanV[bestI])
	p.seedU, p.seedN = u, n
	return true
}

// floorSlack relaxes the stopping CI when a line hits the window's
// information floor: binary labels on integer pixels cannot localise a
// crossing below one pixel, so over a short knee-side lever arm the
// reachable CI bottoms out above the target. A line whose best remaining
// candidate carries no expected information is accepted at up to
// floorSlack × TargetCI; beyond that the extraction fails and escalates.
const floorSlack = 2.0

// Run executes the active loop: repeatedly pick the line farther from its
// confidence target, probe its highest-scoring candidate cell, update that
// line's posterior, until both lines converge (or bottom out at the
// window's information floor within slack) or the budget runs out.
func (s *Scheduler) Run(src Source) error {
	for {
		doneS, doneSh := s.steep.done(&s.cfg), s.shallow.done(&s.cfg)
		if doneS && doneSh {
			return nil
		}
		if s.activeProbes >= s.cfg.MaxProbes {
			return fmt.Errorf("%w: %d probes, CI steep=%.4g shallow=%.4g target=%.4g",
				ErrNoConverge, s.activeProbes, s.steep.entryCI(), s.shallow.entryCI(), s.cfg.TargetCI)
		}
		// The eligible line with the larger CI deficit probes next; the
		// steep line wins ties so the order is fixed.
		var p *posterior
		if !doneS && !s.steep.floored {
			p = &s.steep
		}
		if !doneSh && !s.shallow.floored &&
			(p == nil || s.shallow.entryCI() > s.steep.entryCI()) {
			p = &s.shallow
		}
		if p == nil {
			// Every unconverged line is at its information floor: no
			// remaining candidate can move its posterior.
			if s.atFloor(&s.steep) && s.atFloor(&s.shallow) {
				return nil
			}
			return fmt.Errorf("%w: information floor at CI steep=%.4g shallow=%.4g, target=%.4g",
				ErrNoConverge, s.steep.entryCI(), s.shallow.entryCI(), s.cfg.TargetCI)
		}
		if !s.stepLine(src, p) {
			p.floored = true
		}
	}
}

// atFloor reports whether p's posterior, though short of the target, is
// acceptable as the window's information floor.
func (s *Scheduler) atFloor(p *posterior) bool {
	return p.probes >= s.cfg.MinProbes && p.entryCI() <= floorSlack*s.cfg.TargetCI
}

// stepLine probes p's best unprobed candidate; reports false when no
// remaining candidate carries expected information (the line's floor).
func (s *Scheduler) stepLine(src Source, p *posterior) bool {
	u, v, gain, ok := p.bestCandidate(s)
	if !ok || gain <= 1e-9*variance(p.mSlope, p.mSlope2)+1e-15 {
		return false
	}
	x, y := p.cell(u, v)
	c := src.Current(x, y)
	s.activeProbes++
	p.probes++
	s.markProbed(x, y)
	p.observe(u, v, s.bright(p, x, y, c))
	return true
}

// Finish validates the physics prior and assembles the Result.
func (s *Scheduler) Finish() (*Result, error) {
	res := &Result{
		SeedProbes:   s.seedProbes,
		ActiveProbes: s.activeProbes,
		Steep:        s.steep.estimate(),
		Shallow:      s.shallow.estimate(),
	}
	d := s.steep.meanSlope()    // dx/dy
	sh := s.shallow.meanSlope() // dy/dx
	if d >= 0 || sh >= 0 {
		return res, fmt.Errorf("%w: mean slopes d=%.3f s=%.3f", ErrNonPhysical, d, sh)
	}
	res.SteepSlopePx = 1 / d
	res.ShallowSlopePx = sh
	res.SteepSlope = s.win.PixelSlopeToVoltage(res.SteepSlopePx)
	res.ShallowSlope = s.win.PixelSlopeToVoltage(res.ShallowSlopePx)
	if !(res.SteepSlope < -1) || !(res.ShallowSlope > -1 && res.ShallowSlope < 0) {
		return res, fmt.Errorf("%w: steep=%.3f shallow=%.3f", ErrNonPhysical, res.SteepSlope, res.ShallowSlope)
	}
	// Knee: intersection of x = offS + d·y with y = offH + sh·x.
	offS, offH := s.steep.meanOff(), s.shallow.meanOff()
	den := 1 - d*sh
	kx := (offS + d*offH) / den
	ky := offH + sh*kx
	res.Knee = fitting.Vec2{X: kx, Y: ky}
	m, err := virtualgate.FromSlopes(res.SteepSlope, res.ShallowSlope)
	if err != nil {
		return res, fmt.Errorf("%w: %v", ErrNonPhysical, err)
	}
	res.Matrix = m
	return res, nil
}

// Probes returns the scheduler's issued probe count (seed + active). The
// instrument's unique-probe accounting may be lower when cells repeat.
func (s *Scheduler) Probes() int { return s.seedProbes + s.activeProbes }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
