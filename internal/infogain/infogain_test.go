package infogain

import (
	"errors"
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// buildDefault returns the default 100×100 double-dot instrument and its
// analytic truth matrix.
func buildDefault(t testing.TB, n noise.Params, seed uint64) (*device.SimInstrument, csd.Window, virtualgate.Mat2) {
	t.Helper()
	spec := device.DoubleDotSpec{Noise: n, Seed: seed}
	inst, win, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	truth, err := virtualgate.FromSlopes(spec.SteepSlope, spec.ShallowSlope)
	if err != nil {
		t.Fatal(err)
	}
	return inst, win, truth
}

func matErr(got, want virtualgate.Mat2) float64 {
	return math.Max(math.Abs(got.A12()-want.A12()), math.Abs(got.A21()-want.A21()))
}

func TestExtractNoiseless(t *testing.T) {
	inst, win, truth := buildDefault(t, noise.Params{}, 1)
	src := csd.PixelSource{Src: inst, Win: win}
	res, err := Extract(src, win, Config{})
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if e := matErr(res.Matrix, truth); e > 0.01 {
		t.Errorf("matrix error %.4f > 0.01 (steep=%.3f shallow=%.4f)", e, res.SteepSlope, res.ShallowSlope)
	}
	probes := inst.Stats().UniqueProbes
	if probes > 200 {
		t.Errorf("used %d probes, want ≤ 200", probes)
	}
	if res.Steep.EntryCI > DefaultTargetCI || res.Shallow.EntryCI > DefaultTargetCI {
		t.Errorf("stopping rule violated: CI steep=%.4f shallow=%.4f target=%.4f",
			res.Steep.EntryCI, res.Shallow.EntryCI, DefaultTargetCI)
	}
	t.Logf("probes=%d (seed=%d active=%d) err=%.5f CI=(%.4f, %.4f)",
		probes, res.SeedProbes, res.ActiveProbes, matErr(res.Matrix, truth),
		res.Steep.EntryCI, res.Shallow.EntryCI)
}

func TestExtractNoisy(t *testing.T) {
	n := noise.Params{WhiteSigma: 0.01, PinkAmp: 0.012, PinkN: 12}
	for seed := uint64(1); seed <= 5; seed++ {
		inst, win, truth := buildDefault(t, n, seed)
		src := csd.PixelSource{Src: inst, Win: win}
		res, err := Extract(src, win, Config{})
		if err != nil {
			t.Fatalf("seed %d: Extract: %v", seed, err)
		}
		e := matErr(res.Matrix, truth)
		probes := inst.Stats().UniqueProbes
		if e > 0.02 {
			t.Errorf("seed %d: matrix error %.4f > 0.02", seed, e)
		}
		if probes > 300 {
			t.Errorf("seed %d: used %d probes, want ≤ 300", seed, probes)
		}
	}
}

// TestExtractGeometries sweeps line geometries across the physically
// plausible range: the scheduler has no knowledge of where the lines sit.
func TestExtractGeometries(t *testing.T) {
	n := noise.Params{WhiteSigma: 0.01, PinkAmp: 0.012, PinkN: 12}
	cases := []device.DoubleDotSpec{
		{SteepSlope: -4, ShallowSlope: -0.25, CrossXFrac: 0.55, CrossYFrac: 0.5},
		{SteepSlope: -12, ShallowSlope: -0.08, CrossXFrac: 0.75, CrossYFrac: 0.7},
		{SteepSlope: -6, ShallowSlope: -0.18, CrossXFrac: 0.6, CrossYFrac: 0.72},
		{SteepSlope: -9, ShallowSlope: -0.1, CrossXFrac: 0.72, CrossYFrac: 0.55},
	}
	for i, spec := range cases {
		spec.Noise = n
		spec.Seed = uint64(i + 1)
		inst, win, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		truth, err := virtualgate.FromSlopes(spec.SteepSlope, spec.ShallowSlope)
		if err != nil {
			t.Fatal(err)
		}
		src := csd.PixelSource{Src: inst, Win: win}
		res, err := Extract(src, win, Config{})
		if err != nil {
			t.Errorf("case %d: Extract: %v", i, err)
			continue
		}
		e := matErr(res.Matrix, truth)
		probes := inst.Stats().UniqueProbes
		t.Logf("case %d: probes=%d err=%.5f", i, probes, e)
		if e > 0.025 {
			t.Errorf("case %d: matrix error %.4f > 0.025", i, e)
		}
	}
}

// TestExtractDeterministic pins the replay contract at the package level:
// two extractions over identically spec'd instruments are bit-identical.
func TestExtractDeterministic(t *testing.T) {
	n := noise.Params{WhiteSigma: 0.015, PinkAmp: 0.015, PinkN: 12}
	run := func() (*Result, int) {
		inst, win, _ := buildDefault(t, n, 7)
		src := csd.PixelSource{Src: inst, Win: win}
		res, err := Extract(src, win, Config{})
		if err != nil {
			t.Fatalf("Extract: %v", err)
		}
		return res, inst.Stats().UniqueProbes
	}
	a, pa := run()
	b, pb := run()
	if pa != pb {
		t.Fatalf("probe counts differ: %d vs %d", pa, pb)
	}
	bits := func(f float64) uint64 { return math.Float64bits(f) }
	if bits(a.SteepSlope) != bits(b.SteepSlope) || bits(a.ShallowSlope) != bits(b.ShallowSlope) ||
		bits(a.Matrix.A12()) != bits(b.Matrix.A12()) || bits(a.Matrix.A21()) != bits(b.Matrix.A21()) ||
		bits(a.Knee.X) != bits(b.Knee.X) || bits(a.Knee.Y) != bits(b.Knee.Y) {
		t.Fatalf("results differ bitwise:\n%+v\n%+v", a, b)
	}
}

// TestExtractPrior checks that a warm prior (e.g. a surrogate twin's fit)
// cuts the probes spent rediscovering known geometry.
func TestExtractPrior(t *testing.T) {
	n := noise.Params{WhiteSigma: 0.01, PinkAmp: 0.012, PinkN: 12}
	inst, win, truth := buildDefault(t, n, 3)
	src := csd.PixelSource{Src: inst, Win: win}
	cold, err := Extract(src, win, Config{})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	coldProbes := inst.Stats().UniqueProbes

	inst2, win2, _ := buildDefault(t, n, 3)
	src2 := csd.PixelSource{Src: inst2, Win: win2}
	v1, v2 := cold.TriplePointVoltage(win)
	warm, err := Extract(src2, win2, Config{Prior: &Prior{
		SteepSlope: cold.SteepSlope, ShallowSlope: cold.ShallowSlope,
		TripleV1: v1, TripleV2: v2,
	}})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	warmProbes := inst2.Stats().UniqueProbes
	t.Logf("cold=%d warm=%d probes", coldProbes, warmProbes)
	if warmProbes >= coldProbes {
		t.Errorf("warm prior did not reduce probes: cold=%d warm=%d", coldProbes, warmProbes)
	}
	if e := matErr(warm.Matrix, truth); e > 0.02 {
		t.Errorf("warm matrix error %.4f > 0.02", e)
	}
}

// TestExtractNoConverge: an unreachable CI target exhausts the budget and
// reports ErrNoConverge — the ladder-escalation contract.
func TestExtractNoConverge(t *testing.T) {
	inst, win, _ := buildDefault(t, noise.Params{}, 1)
	src := csd.PixelSource{Src: inst, Win: win}
	_, err := Extract(src, win, Config{TargetCI: 1e-6, MaxProbes: 150})
	if !errors.Is(err, ErrNoConverge) {
		t.Fatalf("got %v, want ErrNoConverge", err)
	}
}

// TestExtractSeedFailure: a featureless window cannot bracket any line.
func TestExtractSeedFailure(t *testing.T) {
	g := grid.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			g.Set(x, y, 0.5)
		}
	}
	win := csd.NewSquareWindow(0, 0, 32, 64)
	_, err := Extract(csd.GridSource{G: g}, win, Config{})
	if !errors.Is(err, ErrSeed) {
		t.Fatalf("got %v, want ErrSeed", err)
	}
}

// TestPosteriorUpdateAllocs pins the hot-path contract in the style of
// TestMultiMemoHitAllocs: once the scheduler is built, a posterior update
// (label fold-in, renormalisation, prefix rebuild) and a full candidate
// scoring pass allocate nothing.
func TestPosteriorUpdateAllocs(t *testing.T) {
	inst, win, _ := buildDefault(t, noise.Params{}, 1)
	src := csd.PixelSource{Src: inst, Win: win}
	cfg := Config{}
	cfg.fillDefaults()
	s := NewScheduler(win, cfg)
	if err := s.Seed(src); err != nil {
		t.Fatal(err)
	}
	p := &s.steep
	u, v, _, ok := p.bestCandidate(s)
	if !ok {
		t.Fatal("no candidate after seeding")
	}
	x, y := p.cell(u, v)
	c := src.Current(x, y)
	bright := s.bright(p, x, y, c)
	allocs := testing.AllocsPerRun(100, func() {
		p.apply(u, v, bright)
		p.rebuild()
		p.bestCandidate(s)
	})
	if allocs != 0 {
		t.Fatalf("posterior update allocates %.1f objects/op, want 0", allocs)
	}
}

// TestObserveRefineAllocs: the full observe path (candidate selection,
// probe, history append, prefix rebuild, grid refinement) stays
// allocation-free thanks to the pre-sized history and scratch buffers.
// The source is a pre-acquired grid so the instrument's own memoisation
// does not pollute the measurement.
func TestObserveRefineAllocs(t *testing.T) {
	inst, win, _ := buildDefault(t, noise.Params{}, 1)
	g, err := csd.Acquire(inst, win)
	if err != nil {
		t.Fatal(err)
	}
	src := csd.GridSource{G: g}
	cfg := Config{}
	cfg.fillDefaults()
	s := NewScheduler(win, cfg)
	if err := s.Seed(src); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(60, func() {
		if !s.stepLine(src, &s.steep) {
			s.stepLine(src, &s.shallow)
		}
	})
	if allocs != 0 {
		t.Fatalf("observe step allocates %.1f objects/op, want 0", allocs)
	}
}
