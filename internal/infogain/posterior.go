package infogain

import (
	"math"
	"sort"
)

// posterior is one transition line's discrete Bayesian state. The line
// lives in a per-line frame: u runs along the scan lines (rows for the
// steep line, columns for the shallow), v across them, and the line is
// v(u) = off + slope·u·(1 + bend·u/uLim) over a 3-D hypothesis grid
// offs × slopes × bends. A probe at (u, v) labelled bright means the cell
// sits on the (0,0) side, v < v(u); each hypothesis predicts that label
// exactly and the measurement mislabels with probability eps.
//
// Weights are stored off-fastest: w[(jb·Nslope+js)·Noff + jo]. Because the
// predicted label at fixed (slope, bend) is monotone in the offset, a
// probe splits each (bend, slope) row of the grid at one index — found by
// binary search over the sorted offsets — and per-row prefix sums make
// both the Bernoulli update and the expected-variance scoring O(rows·log
// Noff) instead of O(H) per candidate. All buffers are allocated once in
// init; the probe hot path allocates nothing.
type posterior struct {
	name  string
	xIsU  bool // cell(u,v) = (u,v) when true (shallow line), (v,u) otherwise
	uLim  int  // scan-line extent (the knee-side axis)
	vLim  int  // cross extent (where the line's crossing moves)
	eps   float64
	noff  int
	nrows int // len(bends)·len(slopes)

	// entry = entryScale·slopeParam is the line's virtualization-matrix
	// entry (A12 = −d·δ1/δ2 for the steep line, A21 = −s·δ2/δ1 shallow).
	entryScale float64

	prior *linePrior

	// Labelling model, calibrated by the seed scan: the line is a current
	// step of size step below the bright plane anchored at (refX, refY)
	// with value refV; seedGrad is the bright ramp's gradient along this
	// line's scan axis (x for the steep line's row scans, y shallow).
	step, refV float64
	refX, refY int
	seedGrad   float64
	seedU      int // the scan line that calibrated the model
	seedN      int // samples recorded in scanV/scanC

	offs, slopes, bends []float64
	w                   []float64 // hypothesis weights, normalised to 1
	pw                  []float64 // per-row prefix sums of w: pw[row*(noff+1)+k]
	rowW, rowWo, rowWoo []float64 // per-row Σw, Σw·off, Σw·off²
	rowSlope            []float64 // slope param per row
	base                []float64 // scratch: slope·u·(1+bend·u/L) per row

	// Moments over the normalised posterior, refreshed by rebuild.
	mOff, mOff2     float64
	mSlope, mSlope2 float64
	mBend, mBend2   float64

	// Probe history for grid-refinement replay.
	hu, hv []int32
	hb     []bool
	hn     int

	scanV []int // seeding scratch
	scanC []float64

	probes  int // active-phase probes (seeding excluded)
	refines int
	floored bool // no remaining candidate carries expected information

	maxRefines int
	minProbes  int
	targetCI   float64
}

// linePrior centres the hypothesis grid on externally known geometry.
type linePrior struct {
	off, slope float64
	slopeSpan  float64 // half-width of the slope grid
	span       float64 // half-width of the offset grid / seed scan, pixels
}

// crossAt predicts the line's v crossing at scan line u.
func (p *linePrior) crossAt(u float64) float64 { return p.off + p.slope*u }

// Hard clamps for grid refinement: slope parameters stay strictly inside
// the physics prior's open interval, offsets within half a window of it.
const (
	slopeMin, slopeMax = -0.995, -0.005
	bendMin, bendMax   = -0.12, 0.12
)

func (p *posterior) init(cfg *Config, uLim, vLim int) {
	p.uLim, p.vLim = uLim, vLim
	p.eps = cfg.NoiseEps
	p.noff = cfg.GridOff
	p.offs = make([]float64, p.noff)
	p.slopes = make([]float64, cfg.GridSlope)
	p.bends = append([]float64(nil), cfg.Bends...)
	sort.Float64s(p.bends)
	p.nrows = len(p.bends) * len(p.slopes)
	h := p.nrows * p.noff
	p.w = make([]float64, h)
	p.pw = make([]float64, p.nrows*(p.noff+1))
	p.rowW = make([]float64, p.nrows)
	p.rowWo = make([]float64, p.nrows)
	p.rowWoo = make([]float64, p.nrows)
	p.rowSlope = make([]float64, p.nrows)
	p.base = make([]float64, p.nrows)
	cap := cfg.MaxProbes + 128
	p.hu = make([]int32, 0, cap)
	p.hv = make([]int32, 0, cap)
	p.hb = make([]bool, 0, cap)
	p.scanV = make([]int, 64)
	p.scanC = make([]float64, 64)
	p.maxRefines = 10
	p.minProbes = cfg.MinProbes
	p.targetCI = cfg.TargetCI

	offLo, offHi := 0.02*float64(vLim), 1.10*float64(vLim)
	sLo, sHi := -0.95, -0.015
	if p.prior != nil {
		offLo = p.prior.off - p.prior.span
		offHi = p.prior.off + p.prior.span
		sLo = p.prior.slope - p.prior.slopeSpan
		sHi = p.prior.slope + p.prior.slopeSpan
	}
	p.setGrids(offLo, offHi, sLo, sHi, p.bends[0], p.bends[len(p.bends)-1])
	p.resetUniform()
	p.rebuild()
}

// setGrids lays the grids out as inclusive linspaces, clamped to the
// physics prior.
func (p *posterior) setGrids(offLo, offHi, sLo, sHi, bLo, bHi float64) {
	offLo = math.Max(offLo, -0.5*float64(p.vLim))
	offHi = math.Min(offHi, 1.5*float64(p.vLim))
	if offHi-offLo < 1e-3 {
		offLo, offHi = offLo-0.5, offLo+0.5
	}
	sLo = math.Max(sLo, slopeMin)
	sHi = math.Min(sHi, slopeMax)
	if sHi-sLo < 1e-6 {
		mid := 0.5 * (sLo + sHi)
		sLo, sHi = mid-1e-6, mid+1e-6
	}
	bLo = math.Max(bLo, bendMin)
	bHi = math.Min(bHi, bendMax)
	linspace(p.offs, offLo, offHi)
	linspace(p.slopes, sLo, sHi)
	linspace(p.bends, bLo, bHi)
	for jb := range p.bends {
		for js := range p.slopes {
			p.rowSlope[jb*len(p.slopes)+js] = p.slopes[js]
		}
	}
}

func linspace(dst []float64, lo, hi float64) {
	n := len(dst)
	if n == 1 {
		dst[0] = 0.5 * (lo + hi)
		return
	}
	step := (hi - lo) / float64(n-1)
	for i := range dst {
		dst[i] = lo + float64(i)*step
	}
}

func (p *posterior) resetUniform() {
	u := 1 / float64(len(p.w))
	for i := range p.w {
		p.w[i] = u
	}
}

// fillBase computes slope·u·(1+bend·u/L) per (bend, slope) row for scan
// line u into the scratch buffer.
func (p *posterior) fillBase(u int) {
	uf := float64(u)
	curve := uf / float64(p.uLim)
	for jb, b := range p.bends {
		f := uf * (1 + b*curve)
		row := jb * len(p.slopes)
		for js := range p.slopes {
			p.base[row+js] = p.slopes[js] * f
		}
	}
}

// observe folds one labelled probe into the posterior, records it for
// replay, renormalises, and refines the grid when the posterior has
// outgrown its resolution. Allocation-free while the history stays within
// its pre-allocated capacity (MaxProbes + seeding).
func (p *posterior) observe(u, v int, bright bool) {
	p.apply(u, v, bright)
	if p.hn < cap(p.hu) {
		p.hu = append(p.hu, int32(u))
		p.hv = append(p.hv, int32(v))
		p.hb = append(p.hb, bright)
		p.hn++
	}
	p.rebuild()
	p.maybeRefine()
}

// apply multiplies in one probe's Bernoulli likelihood without
// renormalising. A hypothesis predicts bright iff v < off + base, i.e.
// iff off > v − base, so each row splits at one binary-searched index.
func (p *posterior) apply(u, v int, bright bool) {
	p.fillBase(u)
	hit, miss := 1-p.eps, p.eps
	for row := 0; row < p.nrows; row++ {
		k := sort.SearchFloat64s(p.offs, float64(v)-p.base[row])
		ws := p.w[row*p.noff : (row+1)*p.noff]
		// offs[:k] predict dark, offs[k:] predict bright.
		darkF, brightF := hit, miss
		if bright {
			darkF, brightF = miss, hit
		}
		for i := 0; i < k; i++ {
			ws[i] *= darkF
		}
		for i := k; i < p.noff; i++ {
			ws[i] *= brightF
		}
	}
}

// rebuild renormalises the weights and refreshes the prefix sums and
// moments the scoring and stopping rules read.
func (p *posterior) rebuild() {
	var tot float64
	for _, x := range p.w {
		tot += x
	}
	if tot <= 0 {
		p.resetUniform()
		tot = 1
	}
	inv := 1 / tot
	p.mOff, p.mOff2 = 0, 0
	p.mSlope, p.mSlope2 = 0, 0
	p.mBend, p.mBend2 = 0, 0
	for row := 0; row < p.nrows; row++ {
		ws := p.w[row*p.noff : (row+1)*p.noff]
		ps := p.pw[row*(p.noff+1):]
		ps[0] = 0
		var rw, rwo, rwoo float64
		for i, x := range ws {
			x *= inv
			ws[i] = x
			ps[i+1] = ps[i] + x
			o := p.offs[i]
			rw += x
			rwo += x * o
			rwoo += x * o * o
		}
		p.rowW[row] = rw
		p.rowWo[row] = rwo
		p.rowWoo[row] = rwoo
		s := p.rowSlope[row]
		b := p.bends[row/len(p.slopes)]
		p.mOff += rwo
		p.mOff2 += rwoo
		p.mSlope += rw * s
		p.mSlope2 += rw * s * s
		p.mBend += rw * b
		p.mBend2 += rw * b * b
	}
}

func variance(m, m2 float64) float64 {
	v := m2 - m*m
	if v < 0 {
		return 0
	}
	return v
}

func (p *posterior) stdOff() float64   { return math.Sqrt(variance(p.mOff, p.mOff2)) }
func (p *posterior) stdSlope() float64 { return math.Sqrt(variance(p.mSlope, p.mSlope2)) }
func (p *posterior) stdBend() float64  { return math.Sqrt(variance(p.mBend, p.mBend2)) }

func (p *posterior) meanOff() float64   { return p.mOff }
func (p *posterior) meanSlope() float64 { return p.mSlope }

// entryCI is the 95% confidence-interval width of the line's matrix entry
// (±2σ; the entry is linear in the slope parameter).
func (p *posterior) entryCI() float64 {
	return 4 * math.Abs(p.entryScale) * p.stdSlope()
}

func (p *posterior) done(cfg *Config) bool {
	return p.probes >= cfg.MinProbes && p.entryCI() <= cfg.TargetCI
}

// maybeRefine re-centres and shrinks the grid once the posterior mass
// resolves finer than the current spacing, replaying the probe history
// onto the new grid. Refinement is what lets a coarse 48×40×3 grid reach
// sub-milliradian slope resolution.
func (p *posterior) maybeRefine() {
	if p.refines >= p.maxRefines {
		return
	}
	spOff := p.offs[1] - p.offs[0]
	spSlope := p.slopes[len(p.slopes)-1] - p.slopes[0]
	if len(p.slopes) > 1 {
		spSlope = p.slopes[1] - p.slopes[0]
	}
	const minOffStep, minSlopeStep = 5e-3, 2e-6
	wantOff := p.stdOff() < 1.5*spOff && spOff > minOffStep*float64(p.noff)
	wantSlope := p.stdSlope() < 1.5*spSlope && spSlope > minSlopeStep*float64(len(p.slopes))
	if !wantOff && !wantSlope {
		return
	}
	p.refines++
	hoff := math.Max(4*p.stdOff(), spOff)
	hslope := math.Max(4*p.stdSlope(), spSlope)
	bLo, bHi := p.bends[0], p.bends[len(p.bends)-1]
	if len(p.bends) > 1 {
		spBend := p.bends[1] - p.bends[0]
		hbend := math.Max(4*p.stdBend(), spBend)
		bLo, bHi = p.mBend-hbend, p.mBend+hbend
	}
	p.setGrids(p.mOff-hoff, p.mOff+hoff, p.mSlope-hslope, p.mSlope+hslope, bLo, bHi)
	p.replay()
}

// replay rebuilds the posterior from the recorded probe history on the
// current grid, renormalising periodically to keep the weights afloat.
func (p *posterior) replay() {
	p.resetUniform()
	for i := 0; i < p.hn; i++ {
		p.apply(int(p.hu[i]), int(p.hv[i]), p.hb[i])
		if i%32 == 31 {
			p.renorm()
		}
	}
	p.rebuild()
}

func (p *posterior) renorm() {
	var tot float64
	for _, x := range p.w {
		tot += x
	}
	if tot <= 0 {
		p.resetUniform()
		return
	}
	inv := 1 / tot
	for i := range p.w {
		p.w[i] *= inv
	}
}

// cell maps line-frame coordinates to window pixels.
func (p *posterior) cell(u, v int) (x, y int) {
	if p.xIsU {
		return u, v
	}
	return v, u
}

// Candidate geometry: the scan-line fan (fractions of the knee-side
// extent) and the per-line crossing quantile offsets (in posterior σ).
// The fan is dense on purpose: with binary labels at pixel granularity,
// slope resolution comes from bracketing the crossing on many scan lines
// at diverse sub-pixel phases, not from hammering one line.
var (
	candFracs = fanFracs()
	candSigma = [7]float64{-2.2, -1.4667, -0.7333, 0, 0.7333, 1.4667, 2.2}
)

func fanFracs() [21]float64 {
	var f [21]float64
	for i := range f {
		f[i] = 0.08 + 0.84*float64(i)/float64(len(f)-1)
	}
	return f
}

// bestCandidate scores the candidate cells — posterior crossing quantiles
// on a fan of scan lines safely on the knee side of the other line — by
// expected posterior variance of the matrix entry after the probe, and
// returns the best unprobed one together with its expected variance
// reduction (in slope-parameter units; zero means every surviving
// hypothesis already agrees on the outcome). Enumeration order is fixed
// and ties keep the first candidate, so the choice is deterministic.
func (p *posterior) bestCandidate(s *Scheduler) (bu, bv int, gain float64, ok bool) {
	other := &s.shallow
	if p == &s.shallow {
		other = &s.steep
	}
	// Scan lines stay below 85% of the other line's offset — an upper
	// bound on the knee's position along this line's u axis, since the
	// other line falls toward it.
	uMax := clampInt(int(0.85*other.meanOff()), 2, p.uLim-1)

	bestScore := math.Inf(-1)
	lastU := -1
	for _, f := range candFracs {
		u := clampInt(int(math.Round(f*float64(uMax))), 0, p.uLim-1)
		if u == lastU {
			continue
		}
		lastU = u
		p.fillBase(u)
		// Posterior crossing mean and σ at this scan line.
		var mean, m2 float64
		for row := 0; row < p.nrows; row++ {
			b := p.base[row]
			mean += p.rowWo[row] + b*p.rowW[row]
			m2 += p.rowWoo[row] + 2*b*p.rowWo[row] + b*b*p.rowW[row]
		}
		sigma := math.Sqrt(variance(mean, m2))
		if sigma < 0.6 {
			sigma = 0.6
		}
		if max := float64(p.vLim) / 3; sigma > max {
			sigma = max
		}
		lastV := -1
		for _, k := range candSigma {
			v := clampInt(int(math.Round(mean+k*sigma)), 0, p.vLim-1)
			if v == lastV {
				continue
			}
			lastV = v
			x, y := p.cell(u, v)
			if s.wasProbed(x, y) {
				continue
			}
			if sc := p.score(v); sc > bestScore {
				bestScore, bu, bv, ok = sc, u, v, true
			}
		}
	}
	if ok {
		// E[var after] = mSlope2 − bestScore, so the expected reduction
		// over the current variance (mSlope2 − mSlope²) is below; Jensen
		// keeps it non-negative up to rounding.
		gain = bestScore - p.mSlope*p.mSlope
	}
	return bu, bv, gain, ok
}

// score computes, for a candidate at the scan line whose bases are already
// in p.base, the quantity Nb²/Zb + Nd²/Zd — equivalent (up to the fixed
// total second moment) to the negated expected posterior variance of the
// matrix entry after observing the probe's binary outcome. Larger is
// better: the best probe is the one whose answer best splits the
// hypothesis set.
func (p *posterior) score(v int) float64 {
	var wd, sd float64 // dark-predicted mass and slope moment
	for row := 0; row < p.nrows; row++ {
		k := sort.SearchFloat64s(p.offs, float64(v)-p.base[row])
		m := p.pw[row*(p.noff+1)+k]
		wd += m
		sd += m * p.rowSlope[row]
	}
	wb := 1 - wd
	sb := p.mSlope - sd
	hit, miss := 1-p.eps, p.eps
	zb := hit*wb + miss*wd
	zd := hit*wd + miss*wb
	nb := hit*sb + miss*sd
	nd := hit*sd + miss*sb
	return nb*nb/zb + nd*nd/zd
}

// estimate summarises the line's posterior.
func (p *posterior) estimate() LineEstimate {
	return LineEstimate{
		Entry:   p.entryScale * p.mSlope,
		EntryCI: p.entryCI(),
		Bend:    p.mBend,
		Probes:  p.probes,
		Refines: p.refines,
	}
}
