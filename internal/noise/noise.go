// Package noise models the measurement noise of a charge-sensed quantum dot
// setup: white (thermal/amplifier) noise, 1/f charge noise built from a bath
// of random-telegraph fluctuators, strong individual two-level fluctuators,
// and slow sensor drift.
//
// Temporal processes are sampled on the instrument's virtual clock, so a
// raster scan acquires the familiar horizontal striping of 1/f noise while a
// sparse probing strategy (the paper's fast sweeps) sees time-correlated
// offsets between probes — exactly the error structure the post-processing
// filter of the paper is designed to survive.
package noise

import (
	"math"

	"github.com/fastvg/fastvg/internal/xrand"
)

// Process is a time-dependent noise source. Sample must be called with
// non-decreasing times; queries that move backwards return the value of the
// current (most recently advanced) state rather than rewinding. This suits
// the instruments in this repository, which memoise measurements and never
// re-measure a configuration.
type Process interface {
	Sample(t float64) float64
}

// White is an i.i.d. Gaussian process with standard deviation Sigma.
// It ignores the time argument.
type White struct {
	Sigma float64
	rng   *xrand.Rand
}

// NewWhite returns a white-noise process with the given σ and seed.
func NewWhite(sigma float64, seed uint64) *White {
	return &White{Sigma: sigma, rng: xrand.New(seed)}
}

// Sample returns an independent Gaussian variate.
func (w *White) Sample(float64) float64 {
	if w.Sigma == 0 {
		return 0
	}
	return w.Sigma * w.rng.NormFloat64()
}

// Fluctuator is a symmetric random-telegraph (two-level) fluctuator with
// amplitude ±Amp/2 and mean switching rate Rate (switches per second in
// virtual time). Switch times are exponentially distributed.
type Fluctuator struct {
	Amp  float64
	Rate float64

	rng        *xrand.Rand
	state      float64 // +Amp/2 or -Amp/2
	nextSwitch float64
}

// NewFluctuator returns a fluctuator with a random initial state.
func NewFluctuator(amp, rate float64, seed uint64) *Fluctuator {
	f := &Fluctuator{Amp: amp, Rate: rate, rng: xrand.New(seed)}
	if f.rng.Float64() < 0.5 {
		f.state = amp / 2
	} else {
		f.state = -amp / 2
	}
	f.nextSwitch = f.dwell()
	return f
}

func (f *Fluctuator) dwell() float64 {
	if f.Rate <= 0 {
		return 1e300 // effectively never switches
	}
	return f.rng.ExpFloat64() / f.Rate
}

// Sample returns the fluctuator state at virtual time t, advancing through
// any switches that occurred since the previous query.
func (f *Fluctuator) Sample(t float64) float64 {
	for t >= f.nextSwitch {
		f.state = -f.state
		f.nextSwitch += f.dwell()
	}
	return f.state
}

// PinkBath approximates 1/f noise as a sum of fluctuators with log-spaced
// switching rates, the standard microscopic model of charge noise in
// semiconductor devices. Amp is the total RMS amplitude.
type PinkBath struct {
	fluctuators []*Fluctuator
}

// NewPinkBath builds a bath of n fluctuators with rates log-spaced in
// [fMin, fMax] Hz and total RMS amplitude amp.
func NewPinkBath(amp float64, n int, fMin, fMax float64, seed uint64) *PinkBath {
	if n <= 0 {
		n = 1
	}
	b := &PinkBath{fluctuators: make([]*Fluctuator, n)}
	perAmp := 2 * amp / math.Sqrt(float64(n)) // each contributes ±perAmp/2
	for i := 0; i < n; i++ {
		frac := 0.5
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		rate := fMin * math.Pow(fMax/fMin, frac)
		b.fluctuators[i] = NewFluctuator(perAmp, rate, xrand.DeriveSeed(seed, i))
	}
	return b
}

// Sample sums the bath at virtual time t.
func (b *PinkBath) Sample(t float64) float64 {
	var s float64
	for _, f := range b.fluctuators {
		s += f.Sample(t)
	}
	return s
}

// Drift is a slow deterministic baseline drift: a linear ramp plus a
// sinusoid, modelling thermal drift of the sensor operating point.
type Drift struct {
	Linear float64 // units per second
	Amp    float64 // sinusoid amplitude
	Period float64 // sinusoid period in seconds
	Phase  float64
}

// Sample returns the drift offset at virtual time t.
func (d *Drift) Sample(t float64) float64 {
	v := d.Linear * t
	if d.Amp != 0 && d.Period > 0 {
		v += d.Amp * math.Sin(2*math.Pi*t/d.Period+d.Phase)
	}
	return v
}

// Composite sums a set of processes.
type Composite struct {
	Parts []Process
}

// Sample sums all parts at virtual time t.
func (c *Composite) Sample(t float64) float64 {
	var s float64
	for _, p := range c.Parts {
		s += p.Sample(t)
	}
	return s
}

// Params is a serialisable description of a complete noise model; the qflow
// benchmark definitions embed one so the exact noise realisation of every
// benchmark is reconstructible from its seed.
type Params struct {
	WhiteSigma float64 `json:"whiteSigma"`

	PinkAmp  float64 `json:"pinkAmp"`
	PinkN    int     `json:"pinkN"`
	PinkFMin float64 `json:"pinkFMin"`
	PinkFMax float64 `json:"pinkFMax"`

	RTNAmp  float64 `json:"rtnAmp"`
	RTNRate float64 `json:"rtnRate"`

	DriftLinear float64 `json:"driftLinear"`
	DriftAmp    float64 `json:"driftAmp"`
	DriftPeriod float64 `json:"driftPeriod"`

	JumpAmp      float64 `json:"jumpAmp"`      // charge-jump amplitude (σ per event)
	JumpInterval float64 `json:"jumpInterval"` // mean seconds between jumps
}

// Build constructs the composite process described by p, deriving component
// seeds from seed. A zero Params builds a silent (all-zero) model.
func (p Params) Build(seed uint64) Process {
	c := &Composite{}
	if p.WhiteSigma > 0 {
		c.Parts = append(c.Parts, NewWhite(p.WhiteSigma, xrand.DeriveSeed(seed, 101)))
	}
	if p.PinkAmp > 0 {
		n, fMin, fMax := p.PinkN, p.PinkFMin, p.PinkFMax
		if n == 0 {
			n = 12
		}
		if fMin == 0 {
			fMin = 0.01
		}
		if fMax == 0 {
			fMax = 50
		}
		c.Parts = append(c.Parts, NewPinkBath(p.PinkAmp, n, fMin, fMax, xrand.DeriveSeed(seed, 102)))
	}
	if p.RTNAmp > 0 {
		rate := p.RTNRate
		if rate == 0 {
			rate = 0.2
		}
		c.Parts = append(c.Parts, NewFluctuator(p.RTNAmp, rate, xrand.DeriveSeed(seed, 103)))
	}
	if p.DriftLinear != 0 || p.DriftAmp != 0 {
		c.Parts = append(c.Parts, &Drift{Linear: p.DriftLinear, Amp: p.DriftAmp, Period: p.DriftPeriod})
	}
	if p.JumpAmp > 0 {
		interval := p.JumpInterval
		if interval == 0 {
			interval = 60
		}
		c.Parts = append(c.Parts, NewJumps(p.JumpAmp, interval, xrand.DeriveSeed(seed, 104)))
	}
	return c
}

// Preset sensor-noise profiles for heterogeneous fleet simulations. The
// amplitudes are fractions of the sensor's ≈1.0 full-scale current swing,
// in line with the qflow benchmark suite's noise levels.

// PresetQuiet is a well-behaved device: weak white noise only.
func PresetQuiet() Params {
	return Params{WhiteSigma: 0.004}
}

// PresetStandard is a typical device: white noise plus 1/f charge noise.
func PresetStandard() Params {
	return Params{WhiteSigma: 0.006, PinkAmp: 0.012}
}

// PresetUnstable is a misbehaving device: strong 1/f, an individual
// two-level fluctuator, and rare persistent charge jumps on the sensor
// baseline.
func PresetUnstable() Params {
	return Params{
		WhiteSigma: 0.008,
		PinkAmp:    0.02,
		RTNAmp:     0.015, RTNRate: 0.1,
		JumpAmp: 0.03, JumpInterval: 3600,
	}
}

// Jumps models device instability: rare, abrupt and persistent shifts of
// the sensor baseline (charge rearrangements in the host material). Jump
// arrival is Poisson with MeanInterval seconds between events; each jump
// offsets the baseline by a Gaussian amount with standard deviation Amp.
type Jumps struct {
	Amp          float64
	MeanInterval float64

	rng      *xrand.Rand
	offset   float64
	nextJump float64
}

// NewJumps returns a jump process with the given amplitude and mean
// interval (seconds of virtual time).
func NewJumps(amp, meanInterval float64, seed uint64) *Jumps {
	j := &Jumps{Amp: amp, MeanInterval: meanInterval, rng: xrand.New(seed)}
	j.nextJump = j.interval()
	return j
}

func (j *Jumps) interval() float64 {
	if j.MeanInterval <= 0 {
		return 1e300
	}
	return j.rng.ExpFloat64() * j.MeanInterval
}

// Sample returns the accumulated offset at virtual time t.
func (j *Jumps) Sample(t float64) float64 {
	for t >= j.nextJump {
		j.offset += j.Amp * j.rng.NormFloat64()
		j.nextJump += j.interval()
	}
	return j.offset
}
