package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWhiteMoments(t *testing.T) {
	w := NewWhite(0.5, 1)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := w.Sample(float64(i) * 0.05)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.01 {
		t.Errorf("white mean = %v, want ~0", mean)
	}
	if math.Abs(std-0.5) > 0.01 {
		t.Errorf("white std = %v, want ~0.5", std)
	}
}

func TestWhiteZeroSigma(t *testing.T) {
	w := NewWhite(0, 1)
	for i := 0; i < 10; i++ {
		if v := w.Sample(0); v != 0 {
			t.Fatalf("zero-sigma white noise returned %v", v)
		}
	}
}

func TestFluctuatorTwoLevels(t *testing.T) {
	f := NewFluctuator(1.0, 10, 2)
	for i := 0; i < 10000; i++ {
		v := f.Sample(float64(i) * 0.01)
		if v != 0.5 && v != -0.5 {
			t.Fatalf("fluctuator emitted %v, want ±0.5", v)
		}
	}
}

func TestFluctuatorSwitchRate(t *testing.T) {
	f := NewFluctuator(1.0, 5, 3) // 5 switches/s on average
	prev := f.Sample(0)
	switches := 0
	const total = 200.0 // seconds
	const dt = 0.002
	for ti := dt; ti <= total; ti += dt {
		v := f.Sample(ti)
		if v != prev {
			switches++
			prev = v
		}
	}
	rate := float64(switches) / total
	if rate < 3.5 || rate > 6.5 {
		t.Errorf("observed switch rate %v, want ~5", rate)
	}
}

func TestFluctuatorZeroRateNeverSwitches(t *testing.T) {
	f := NewFluctuator(1.0, 0, 4)
	first := f.Sample(0)
	if v := f.Sample(1e12); v != first {
		t.Fatalf("zero-rate fluctuator switched from %v to %v", first, v)
	}
}

func TestFluctuatorMonotonicBackQuery(t *testing.T) {
	f := NewFluctuator(1.0, 100, 5)
	v1 := f.Sample(10)
	// A query earlier than the last advance returns current state, no rewind.
	v2 := f.Sample(1)
	if v1 != v2 {
		t.Fatalf("backwards query changed state: %v -> %v", v1, v2)
	}
}

func TestPinkBathRMS(t *testing.T) {
	amp := 0.3
	b := NewPinkBath(amp, 16, 0.01, 100, 6)
	var sumSq float64
	const n = 40000
	for i := 0; i < n; i++ {
		v := b.Sample(float64(i) * 0.01)
		sumSq += v * v
	}
	rms := math.Sqrt(sumSq / n)
	if rms < amp*0.5 || rms > amp*2 {
		t.Errorf("pink bath RMS = %v, want within [%v, %v]", rms, amp*0.5, amp*2)
	}
}

func TestPinkBathLowFrequencyDominates(t *testing.T) {
	// 1/f noise has more power at long timescales: the variance of means over
	// long blocks should stay comparable to the overall variance (unlike white
	// noise where it shrinks as 1/N).
	b := NewPinkBath(0.3, 16, 0.01, 100, 7)
	const blocks = 40
	const per = 2000
	var blockMeans []float64
	var all []float64
	tNow := 0.0
	for i := 0; i < blocks; i++ {
		var s float64
		for j := 0; j < per; j++ {
			v := b.Sample(tNow)
			s += v
			all = append(all, v)
			tNow += 0.01
		}
		blockMeans = append(blockMeans, s/per)
	}
	varAll := variance(all)
	varBlocks := variance(blockMeans)
	if varAll == 0 {
		t.Fatal("pink bath produced zero variance")
	}
	// White noise would give varBlocks/varAll ≈ 1/per = 5e-4.
	if ratio := varBlocks / varAll; ratio < 0.01 {
		t.Errorf("block-mean variance ratio = %v; spectrum looks white, not 1/f", ratio)
	}
}

func variance(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, v := range xs {
		ss += (v - mean) * (v - mean)
	}
	return ss / float64(len(xs))
}

func TestDrift(t *testing.T) {
	d := &Drift{Linear: 0.1}
	if got := d.Sample(10); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("linear drift at t=10: %v, want 1.0", got)
	}
	ds := &Drift{Amp: 2, Period: 4}
	if got := ds.Sample(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("sinusoid at quarter period: %v, want 2", got)
	}
	if got := ds.Sample(2); math.Abs(got) > 1e-9 {
		t.Errorf("sinusoid at half period: %v, want 0", got)
	}
}

func TestCompositeSums(t *testing.T) {
	c := &Composite{Parts: []Process{
		&Drift{Linear: 1},
		&Drift{Linear: 2},
	}}
	if got := c.Sample(3); math.Abs(got-9) > 1e-12 {
		t.Errorf("composite = %v, want 9", got)
	}
}

func TestParamsBuildDeterministic(t *testing.T) {
	p := Params{WhiteSigma: 0.1, PinkAmp: 0.05, RTNAmp: 0.2, DriftLinear: 0.001}
	a := p.Build(99)
	b := p.Build(99)
	for i := 0; i < 1000; i++ {
		ti := float64(i) * 0.05
		if av, bv := a.Sample(ti), b.Sample(ti); av != bv {
			t.Fatalf("same-seed models diverged at t=%v: %v != %v", ti, av, bv)
		}
	}
}

func TestParamsZeroIsSilent(t *testing.T) {
	m := Params{}.Build(1)
	for i := 0; i < 100; i++ {
		if v := m.Sample(float64(i)); v != 0 {
			t.Fatalf("zero params produced noise %v", v)
		}
	}
}

func TestParamsSeedChangesRealisation(t *testing.T) {
	p := Params{WhiteSigma: 0.1}
	a, b := p.Build(1), p.Build(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Sample(float64(i)) == b.Sample(float64(i)) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical samples", same)
	}
}

func TestFluctuatorAmplitudeProperty(t *testing.T) {
	f := func(seed uint64, ampRaw float64) bool {
		amp := math.Abs(ampRaw)
		if amp == 0 || math.IsInf(amp, 0) || math.IsNaN(amp) || amp > 1e100 {
			return true
		}
		fl := NewFluctuator(amp, 1, seed)
		v := fl.Sample(0)
		return math.Abs(math.Abs(v)-amp/2) < amp*1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJumpsArePersistentSteps(t *testing.T) {
	j := NewJumps(0.5, 10, 42)
	prev := j.Sample(0)
	changes := 0
	var lastChange float64
	for ti := 0.5; ti <= 300; ti += 0.5 {
		v := j.Sample(ti)
		if v != prev {
			changes++
			lastChange = ti
			prev = v
		}
	}
	if changes == 0 {
		t.Fatal("no jumps over 30 mean intervals")
	}
	// Offsets persist between jumps: immediately after the last change the
	// value stays constant until the next event.
	v := j.Sample(lastChange)
	if j.Sample(lastChange+0.01) != v {
		t.Error("jump offset did not persist")
	}
	if changes > 60 {
		t.Errorf("%d jumps over 300s at mean interval 10s (too many)", changes)
	}
}

func TestJumpsZeroIntervalNeverFires(t *testing.T) {
	j := NewJumps(1, 0, 1)
	if v := j.Sample(1e12); v != 0 {
		t.Errorf("jump process with disabled interval produced %v", v)
	}
}

func TestParamsBuildWithJumps(t *testing.T) {
	p := Params{JumpAmp: 0.3, JumpInterval: 5}
	m := p.Build(7)
	fired := false
	for ti := 0.0; ti < 100; ti += 0.1 {
		if m.Sample(ti) != 0 {
			fired = true
			break
		}
	}
	if !fired {
		t.Error("built jump process never fired over 20 mean intervals")
	}
}
