package evalx

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/fastvg/fastvg/internal/baseline"
	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/qflow"
)

func TestAngleErrDeg(t *testing.T) {
	if e := AngleErrDeg(-1, -1); e != 0 {
		t.Errorf("identical slopes err = %v", e)
	}
	// Steep slopes: -8 vs -10 is a small angular difference.
	if e := AngleErrDeg(-8, -10); e > 2 {
		t.Errorf("steep slopes angular err = %v, want < 2°", e)
	}
	// Shallow slopes: -0.1 vs -0.3 is a large angular difference.
	if e := AngleErrDeg(-0.1, -0.3); e < 5 {
		t.Errorf("shallow slopes angular err = %v, want > 5°", e)
	}
}

func TestCheckSlopes(t *testing.T) {
	truth := qflow.Truth{SteepSlope: -8, ShallowSlope: -0.12}
	if ok, _, _ := CheckSlopes(-8.2, -0.125, truth, DefaultAngleTolDeg); !ok {
		t.Error("near-exact slopes rejected")
	}
	if ok, _, _ := CheckSlopes(-3, -0.12, truth, DefaultAngleTolDeg); ok {
		t.Error("bad steep slope accepted")
	}
	if ok, _, _ := CheckSlopes(-8, -0.5, truth, DefaultAngleTolDeg); ok {
		t.Error("bad shallow slope accepted")
	}
}

func TestRunFastOnCleanBenchmark(t *testing.T) {
	b, err := ByIndex(3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunFast(b, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Success {
		t.Fatalf("fast extraction failed on clean benchmark 3: %s", rr.FailReason)
	}
	total := b.Size * b.Size
	if rr.Probes <= 0 || rr.Probes >= total/2 {
		t.Errorf("probes = %d, want sparse (≪ %d)", rr.Probes, total)
	}
	if math.Abs(rr.ProbePct-100*float64(rr.Probes)/float64(total)) > 1e-9 {
		t.Errorf("probe pct inconsistent: %v for %d probes", rr.ProbePct, rr.Probes)
	}
	if rr.Virtual.Seconds() <= 0 || rr.TotalS < rr.Virtual.Seconds() {
		t.Errorf("time accounting broken: virtual %v total %v", rr.Virtual, rr.TotalS)
	}
	if len(rr.ProbeMap) != rr.Probes {
		t.Errorf("probe map has %d entries, stats say %d", len(rr.ProbeMap), rr.Probes)
	}
}

func TestRunBaselineOnCleanBenchmark(t *testing.T) {
	b, err := ByIndex(3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunBaseline(b, baseline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Success {
		t.Fatalf("baseline failed on clean benchmark 3: %s", rr.FailReason)
	}
	if rr.Probes != b.Size*b.Size {
		t.Errorf("baseline probed %d, want full raster %d", rr.Probes, b.Size*b.Size)
	}
	if math.Abs(rr.ProbePct-100) > 1e-9 {
		t.Errorf("baseline probe pct = %v", rr.ProbePct)
	}
}

func TestRunFastFailsOnNoisyBenchmark(t *testing.T) {
	b, err := ByIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunFast(b, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Success {
		t.Error("fast extraction succeeded on the heavy-noise benchmark 1")
	}
	if rr.FailReason == "" {
		t.Error("failed run has no reason")
	}
}

func TestSpeedupRule(t *testing.T) {
	row := Table1Row{
		Fast:     &RunResult{Success: true, TotalS: 50},
		Baseline: &RunResult{Success: true, TotalS: 500},
	}
	v, ok := row.Speedup()
	if !ok || math.Abs(v-10) > 1e-12 {
		t.Errorf("speedup = %v ok=%v, want 10", v, ok)
	}
	row.Fast.Success = false
	if _, ok := row.Speedup(); ok {
		t.Error("speedup applicable despite fast failure (paper reports N/A)")
	}
}

func TestProbeMask(t *testing.T) {
	b, err := ByIndex(3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := RunFast(b, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mask := rr.ProbeMask()
	count := 0
	for _, v := range mask.Data() {
		if v == 1 {
			count++
		}
	}
	if count != rr.Probes {
		t.Errorf("mask has %d set pixels, want %d", count, rr.Probes)
	}
}

func TestByIndex(t *testing.T) {
	if _, err := ByIndex(99); err == nil {
		t.Error("accepted unknown index")
	}
	b, err := ByIndex(7)
	if err != nil {
		t.Fatal(err)
	}
	if b.Index != 7 {
		t.Errorf("ByIndex(7) returned %d", b.Index)
	}
}

func TestRenderTable1(t *testing.T) {
	rows := []Table1Row{
		{
			Benchmark: mustBench(t, 3),
			Fast:      &RunResult{Success: true, Probes: 643, ProbePct: 16.2, TotalS: 32.26},
			Baseline:  &RunResult{Success: true, Probes: 3969, ProbePct: 100, TotalS: 198.96},
		},
	}
	var buf bytes.Buffer
	if err := RenderTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CSD", "63x63", "643 (16.20%)", "Success", "6.17x"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func mustBench(t *testing.T, idx int) *qflow.Benchmark {
	t.Helper()
	b, err := ByIndex(idx)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSuccessCounts(t *testing.T) {
	rows := []Table1Row{
		{Fast: &RunResult{Success: true}, Baseline: &RunResult{Success: false}},
		{Fast: &RunResult{Success: true}, Baseline: &RunResult{Success: true}},
		{Fast: &RunResult{Success: false}, Baseline: &RunResult{Success: false}},
	}
	f, b := SuccessCounts(rows)
	if f != 2 || b != 1 {
		t.Errorf("counts = (%d, %d), want (2, 1)", f, b)
	}
}

// TestTable1MatchesPaperPattern is the headline integration test: the full
// Table 1 run must reproduce the paper's success/fail pattern, per-benchmark.
func TestTable1MatchesPaperPattern(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run in -short mode")
	}
	rows, err := RunTable1(core.Config{}, baseline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Fast.Success != r.Benchmark.Paper.FastSuccess {
			t.Errorf("CSD %d: fast success = %v, paper reports %v (%s)",
				r.Benchmark.Index, r.Fast.Success, r.Benchmark.Paper.FastSuccess, r.Fast.FailReason)
		}
		if r.Baseline.Success != r.Benchmark.Paper.BaselineSuccess {
			t.Errorf("CSD %d: baseline success = %v, paper reports %v (%s)",
				r.Benchmark.Index, r.Baseline.Success, r.Benchmark.Paper.BaselineSuccess, r.Baseline.FailReason)
		}
		// Probe fraction must stay in the paper's regime: a small fraction of
		// the full diagram (the paper reports 4.2%–17.1%).
		if r.Fast.ProbePct < 2 || r.Fast.ProbePct > 25 {
			t.Errorf("CSD %d: fast probed %.1f%%, outside the paper's regime", r.Benchmark.Index, r.Fast.ProbePct)
		}
		// Speedup shape: where applicable it must be substantial.
		if v, ok := r.Speedup(); ok && (v < 4 || v > 40) {
			t.Errorf("CSD %d: speedup %.1fx outside plausible range", r.Benchmark.Index, v)
		}
	}
}

// TestParallelMatchesSequential checks the concurrent runner returns the
// exact same outcomes as the sequential one (each run owns its instrument
// and seed, so parallelism must not change anything).
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run in -short mode")
	}
	seq, err := RunTable1(core.Config{}, baseline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTable1Parallel(core.Config{}, baseline.Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel returned %d rows", len(par))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if p.Benchmark.Index != s.Benchmark.Index {
			t.Errorf("row %d: benchmark order changed", i)
		}
		if p.Fast.Success != s.Fast.Success || p.Fast.Probes != s.Fast.Probes {
			t.Errorf("CSD %d: fast differs: %v/%d vs %v/%d", s.Benchmark.Index,
				p.Fast.Success, p.Fast.Probes, s.Fast.Success, s.Fast.Probes)
		}
		if p.Baseline.Success != s.Baseline.Success || p.Baseline.Probes != s.Baseline.Probes {
			t.Errorf("CSD %d: baseline differs", s.Benchmark.Index)
		}
		if p.Fast.SteepSlope != s.Fast.SteepSlope {
			t.Errorf("CSD %d: fast slope differs: %v vs %v", s.Benchmark.Index,
				p.Fast.SteepSlope, s.Fast.SteepSlope)
		}
	}
}

func TestToleranceStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run in -short mode")
	}
	rows, err := RunTable1(core.Config{}, baseline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	study := ToleranceStudy(rows, []float64{1, 2, 3.5, 5, 10})
	if len(study) != 5 {
		t.Fatalf("study has %d rows", len(study))
	}
	// Success counts are monotone non-decreasing in the tolerance.
	for i := 1; i < len(study); i++ {
		if study[i].FastSuccess < study[i-1].FastSuccess {
			t.Errorf("fast success not monotone: %+v", study)
		}
		if study[i].BaseSuccess < study[i-1].BaseSuccess {
			t.Errorf("baseline success not monotone: %+v", study)
		}
	}
	// At the default tolerance the counts match the paper.
	for _, row := range study {
		if row.TolDeg == 3.5 {
			if row.FastSuccess != 10 || row.BaseSuccess != 9 {
				t.Errorf("at 3.5°: fast %d base %d, want 10/9", row.FastSuccess, row.BaseSuccess)
			}
		}
	}
	// The heavy-noise benchmarks stay failed even at 10°.
	last := study[len(study)-1]
	if last.FastSuccess > 10 {
		t.Errorf("at 10° fast success = %d; noisy benchmarks should stay failed", last.FastSuccess)
	}
}
