package evalx

import (
	"context"
	"fmt"

	"github.com/fastvg/fastvg/internal/baseline"
	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/qflow"
	"github.com/fastvg/fastvg/internal/sched"
)

// RunTable1Parallel runs both methods on every benchmark concurrently on a
// bounded sched.Pool, one job per (benchmark, method) pair; maxWorkers <= 0
// means one worker per pair. Each pair owns its instrument and writes only
// its own row slot, so results are identical to RunTable1 regardless of
// scheduling; on failure the lowest-indexed job's error is returned, the
// same one the sequential runner would surface first.
func RunTable1Parallel(fastCfg core.Config, baseCfg baseline.Config, maxWorkers int) ([]Table1Row, error) {
	suite, err := qflow.Suite()
	if err != nil {
		return nil, err
	}
	type job struct {
		idx  int
		fast bool
	}
	jobs := make([]job, 0, 2*len(suite))
	for i := range suite {
		jobs = append(jobs, job{idx: i, fast: true}, job{idx: i, fast: false})
	}
	if maxWorkers <= 0 || maxWorkers > len(jobs) {
		maxWorkers = len(jobs)
	}
	// The harness already fans out across jobs, so per-job parallelism —
	// the CSD generation render and the baseline's Canny convolutions —
	// would only oversubscribe the CPUs. Every grid is bit-identical at any
	// worker count, so serialising them changes nothing but contention.
	genWorkers := 0
	if maxWorkers > 1 {
		genWorkers = 1
		if baseCfg.RenderWorkers == 0 {
			baseCfg.RenderWorkers = 1
		}
	}

	rows := make([]Table1Row, len(suite))
	for i, b := range suite {
		rows[i].Benchmark = b
	}
	pool := sched.New(maxWorkers)
	err = pool.Map(context.Background(), len(jobs), func(_ context.Context, i int) error {
		j := jobs[i]
		b := suite[j.idx]
		inst, err := b.InstrumentParallel(genWorkers)
		if err != nil {
			return fmt.Errorf("evalx: benchmark %d: %w", b.Index, err)
		}
		var rr *RunResult
		if j.fast {
			rr, err = runFastOn(b, inst, fastCfg)
		} else {
			rr, err = runBaselineOn(b, inst, baseCfg)
		}
		if err != nil {
			return fmt.Errorf("evalx: benchmark %d: %w", b.Index, err)
		}
		if j.fast {
			rows[j.idx].Fast = rr
		} else {
			rows[j.idx].Baseline = rr
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
