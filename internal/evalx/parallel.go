package evalx

import (
	"fmt"
	"sync"

	"github.com/fastvg/fastvg/internal/baseline"
	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/qflow"
)

// RunTable1Parallel runs both methods on every benchmark concurrently, one
// goroutine per (benchmark, method) pair, bounded by maxWorkers (0 means
// one worker per pair). Results are returned in benchmark order, identical
// to RunTable1 — each pair owns its instrument, so runs are independent and
// deterministic.
func RunTable1Parallel(fastCfg core.Config, baseCfg baseline.Config, maxWorkers int) ([]Table1Row, error) {
	suite, err := qflow.Suite()
	if err != nil {
		return nil, err
	}
	type job struct {
		idx  int
		fast bool
	}
	jobs := make([]job, 0, 2*len(suite))
	for i := range suite {
		jobs = append(jobs, job{idx: i, fast: true}, job{idx: i, fast: false})
	}
	if maxWorkers <= 0 || maxWorkers > len(jobs) {
		maxWorkers = len(jobs)
	}

	rows := make([]Table1Row, len(suite))
	for i, b := range suite {
		rows[i].Benchmark = b
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobCh := make(chan job)
	for w := 0; w < maxWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				b := suite[j.idx]
				var rr *RunResult
				var err error
				if j.fast {
					rr, err = RunFast(b, fastCfg)
				} else {
					rr, err = RunBaseline(b, baseCfg)
				}
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("evalx: benchmark %d: %w", b.Index, err)
				}
				if j.fast {
					rows[j.idx].Fast = rr
				} else {
					rows[j.idx].Baseline = rr
				}
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return rows, nil
}
