// Package evalx is the experiment harness: it runs the fast extraction and
// the Hough baseline on qflow benchmarks, scores success against the
// analytic ground truth (replacing the paper's manual inspection of the
// warped diagram), accounts for probes and virtual runtime, and renders the
// paper's Table 1.
package evalx

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"github.com/fastvg/fastvg/internal/baseline"
	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/qflow"
)

// DefaultAngleTolDeg is the success tolerance: both extracted lines must be
// within this angle of the ground-truth lines. 3.5° is roughly the error at
// which the residual cross-coupling after virtualization becomes visible in
// a warped CSD — the condition the paper checked by eye.
const DefaultAngleTolDeg = 3.5

// Method names a pipeline.
type Method string

// The two evaluated methods.
const (
	MethodFast     Method = "fast"
	MethodBaseline Method = "baseline"
)

// RunResult is the outcome of one (benchmark, method) run.
type RunResult struct {
	Benchmark *qflow.Benchmark
	Method    Method

	Success    bool
	FailReason string

	Probes   int
	ProbePct float64
	Virtual  time.Duration // dwell time on the virtual clock
	Compute  time.Duration // wall-clock algorithm time
	TotalS   float64       // seconds, virtual + compute

	SteepSlope    float64
	ShallowSlope  float64
	SteepErrDeg   float64
	ShallowErrDeg float64

	Fast *core.Result     // populated for MethodFast
	Base *baseline.Result // populated for MethodBaseline

	ProbeMap []grid.Point // pixels actually measured (Figure 7 data)
}

// AngleErrDeg returns the angular difference between two slopes in degrees;
// the angle metric treats steep and shallow lines symmetrically.
func AngleErrDeg(got, want float64) float64 {
	return math.Abs(math.Atan(got)-math.Atan(want)) * 180 / math.Pi
}

// CheckSlopes scores extracted slopes against ground truth.
func CheckSlopes(steep, shallow float64, truth qflow.Truth, tolDeg float64) (ok bool, steepErr, shallowErr float64) {
	steepErr = AngleErrDeg(steep, truth.SteepSlope)
	shallowErr = AngleErrDeg(shallow, truth.ShallowSlope)
	return steepErr <= tolDeg && shallowErr <= tolDeg, steepErr, shallowErr
}

// RunFast executes the fast extraction on a benchmark.
func RunFast(b *qflow.Benchmark, cfg core.Config) (*RunResult, error) {
	inst, err := b.Instrument()
	if err != nil {
		return nil, err
	}
	return runFastOn(b, inst, cfg)
}

// runFastOn runs the fast extraction against a prepared replay instrument.
func runFastOn(b *qflow.Benchmark, inst *device.DatasetInstrument, cfg core.Config) (*RunResult, error) {
	rr := &RunResult{Benchmark: b, Method: MethodFast}
	src := csd.PixelSource{Src: inst, Win: b.Window}
	t0 := time.Now()
	res, err := core.Extract(src, b.Window, cfg)
	rr.Compute = time.Since(t0)
	rr.Fast = res
	finishRun(rr, inst, err)
	if err == nil {
		rr.SteepSlope = res.SteepSlope
		rr.ShallowSlope = res.ShallowSlope
		rr.Success, rr.SteepErrDeg, rr.ShallowErrDeg =
			CheckSlopes(res.SteepSlope, res.ShallowSlope, b.Truth, DefaultAngleTolDeg)
		if !rr.Success {
			rr.FailReason = fmt.Sprintf("slope error %.1f°/%.1f° exceeds %.1f°",
				rr.SteepErrDeg, rr.ShallowErrDeg, DefaultAngleTolDeg)
		}
	}
	return rr, nil
}

// RunBaseline executes the Hough baseline on a benchmark. The full-CSD
// acquisition runs through the batched grid path (the replay instrument
// serves the whole window in one call), so the harness measures the
// pipeline, not per-pixel dispatch overhead.
func RunBaseline(b *qflow.Benchmark, cfg baseline.Config) (*RunResult, error) {
	inst, err := b.Instrument()
	if err != nil {
		return nil, err
	}
	return runBaselineOn(b, inst, cfg)
}

// runBaselineOn runs the baseline against a prepared replay instrument.
func runBaselineOn(b *qflow.Benchmark, inst *device.DatasetInstrument, cfg baseline.Config) (*RunResult, error) {
	rr := &RunResult{Benchmark: b, Method: MethodBaseline}
	t0 := time.Now()
	res, err := baseline.Extract(inst, b.Window, cfg)
	rr.Compute = time.Since(t0)
	rr.Base = res
	finishRun(rr, inst, err)
	if err == nil {
		rr.SteepSlope = res.SteepSlope
		rr.ShallowSlope = res.ShallowSlope
		rr.Success, rr.SteepErrDeg, rr.ShallowErrDeg =
			CheckSlopes(res.SteepSlope, res.ShallowSlope, b.Truth, DefaultAngleTolDeg)
		if !rr.Success {
			rr.FailReason = fmt.Sprintf("slope error %.1f°/%.1f° exceeds %.1f°",
				rr.SteepErrDeg, rr.ShallowErrDeg, DefaultAngleTolDeg)
		}
	}
	return rr, nil
}

func finishRun(rr *RunResult, inst *device.DatasetInstrument, err error) {
	st := inst.Stats()
	total := rr.Benchmark.Size * rr.Benchmark.Size
	rr.Probes = st.UniqueProbes
	rr.ProbePct = 100 * float64(st.UniqueProbes) / float64(total)
	rr.Virtual = st.Virtual
	rr.TotalS = st.Virtual.Seconds() + rr.Compute.Seconds()
	rr.ProbeMap = inst.ProbeMap()
	if err != nil {
		rr.Success = false
		rr.FailReason = err.Error()
	}
}

// Table1Row pairs the two methods' runs on one benchmark.
type Table1Row struct {
	Benchmark *qflow.Benchmark
	Fast      *RunResult
	Baseline  *RunResult
}

// Speedup returns baseline total runtime over fast total runtime, and
// whether it is applicable (the paper reports N/A when fast extraction
// failed).
func (r Table1Row) Speedup() (float64, bool) {
	if !r.Fast.Success || r.Fast.TotalS == 0 {
		return 0, false
	}
	return r.Baseline.TotalS / r.Fast.TotalS, true
}

// RunTable1 runs both methods on every benchmark of the suite.
func RunTable1(fastCfg core.Config, baseCfg baseline.Config) ([]Table1Row, error) {
	suite, err := qflow.Suite()
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(suite))
	for _, b := range suite {
		f, err := RunFast(b, fastCfg)
		if err != nil {
			return nil, fmt.Errorf("evalx: benchmark %d fast: %w", b.Index, err)
		}
		bl, err := RunBaseline(b, baseCfg)
		if err != nil {
			return nil, fmt.Errorf("evalx: benchmark %d baseline: %w", b.Index, err)
		}
		rows = append(rows, Table1Row{Benchmark: b, Fast: f, Baseline: bl})
	}
	return rows, nil
}

// RenderTable1 writes the paper-style result summary.
func RenderTable1(w io.Writer, rows []Table1Row) error {
	const hdr = "%-5s %-9s %-7s %-7s %-18s %-10s %-12s %-12s %-8s\n"
	const fr = "%-5d %-9s %-7s %-7s %-18s %-10s %-12s %-12s %-8s\n"
	if _, err := fmt.Fprintf(w, hdr, "CSD", "Size", "Fast", "Base",
		"Probed (fast)", "Base pts", "Fast time", "Base time", "Speedup"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", 96)); err != nil {
		return err
	}
	for _, r := range rows {
		sz := fmt.Sprintf("%dx%d", r.Benchmark.Size, r.Benchmark.Size)
		probed := fmt.Sprintf("%d (%.2f%%)", r.Fast.Probes, r.Fast.ProbePct)
		basePts := fmt.Sprintf("%d", r.Baseline.Probes)
		sp := "N/A"
		if v, ok := r.Speedup(); ok {
			sp = fmt.Sprintf("%.2fx", v)
		}
		if _, err := fmt.Fprintf(w, fr, r.Benchmark.Index, sz,
			passFail(r.Fast.Success), passFail(r.Baseline.Success),
			probed, basePts,
			fmt.Sprintf("%.2fs", r.Fast.TotalS), fmt.Sprintf("%.2fs", r.Baseline.TotalS),
			sp); err != nil {
			return err
		}
	}
	return nil
}

func passFail(ok bool) string {
	if ok {
		return "Success"
	}
	return "Fail"
}

// ProbeMask renders a run's probe map as a binary grid (1 = probed), the
// data behind the paper's Figure 7.
func (rr *RunResult) ProbeMask() *grid.Grid {
	g := grid.New(rr.Benchmark.Size, rr.Benchmark.Size)
	for _, p := range rr.ProbeMap {
		g.Set(p.X, p.Y, 1)
	}
	return g
}

// SuccessCounts tallies per-method successes over a set of rows.
func SuccessCounts(rows []Table1Row) (fast, base int) {
	for _, r := range rows {
		if r.Fast.Success {
			fast++
		}
		if r.Baseline.Success {
			base++
		}
	}
	return fast, base
}

// ErrBenchmarkNotFound is returned by ByIndex for an unknown index.
var ErrBenchmarkNotFound = errors.New("evalx: benchmark index not in suite")

// ByIndex returns the suite benchmark with the given 1-based index.
func ByIndex(index int) (*qflow.Benchmark, error) {
	suite, err := qflow.Suite()
	if err != nil {
		return nil, err
	}
	for _, b := range suite {
		if b.Index == index {
			return b, nil
		}
	}
	return nil, ErrBenchmarkNotFound
}

// ToleranceRow is one point of the success-vs-tolerance study.
type ToleranceRow struct {
	TolDeg      float64
	FastSuccess int
	BaseSuccess int
}

// ToleranceStudy rescoring: success counts of both methods across the suite
// as the angular tolerance varies, from already-completed runs. It justifies
// the DefaultAngleTolDeg choice: the counts are flat around 3.5° (the paper's
// manual inspection regime) and only collapse well below 2°.
func ToleranceStudy(rows []Table1Row, tolsDeg []float64) []ToleranceRow {
	out := make([]ToleranceRow, 0, len(tolsDeg))
	for _, tol := range tolsDeg {
		var tr ToleranceRow
		tr.TolDeg = tol
		for _, r := range rows {
			if rescore(r.Fast, r.Benchmark, tol) {
				tr.FastSuccess++
			}
			if rescore(r.Baseline, r.Benchmark, tol) {
				tr.BaseSuccess++
			}
		}
		out = append(out, tr)
	}
	return out
}

// rescore re-applies the success check at a different tolerance. Runs that
// failed with an extraction error stay failed at any tolerance.
func rescore(rr *RunResult, b *qflow.Benchmark, tolDeg float64) bool {
	if rr.SteepSlope == 0 && rr.ShallowSlope == 0 {
		return false // extraction error: no slopes recorded
	}
	ok, _, _ := CheckSlopes(rr.SteepSlope, rr.ShallowSlope, b.Truth, tolDeg)
	return ok
}
