package fitting

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/fastvg/fastvg/internal/xrand"
)

func TestLinearFitExact(t *testing.T) {
	pts := []Vec2{{0, 1}, {1, 3}, {2, 5}, {3, 7}}
	a, b, err := LinearFit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Errorf("fit = %v + %v x, want 1 + 2x", a, b)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, err := LinearFit([]Vec2{{1, 1}}); err == nil {
		t.Error("accepted single point")
	}
	if _, _, err := LinearFit([]Vec2{{1, 1}, {1, 2}, {1, 3}}); err == nil {
		t.Error("accepted vertical data")
	}
}

func TestLinearFitRecoversNoisyLine(t *testing.T) {
	rng := xrand.New(1)
	var pts []Vec2
	for i := 0; i < 200; i++ {
		x := float64(i) * 0.1
		pts = append(pts, Vec2{x, 4 - 0.5*x + 0.05*rng.NormFloat64()})
	}
	a, b, err := LinearFit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-4) > 0.05 || math.Abs(b+0.5) > 0.01 {
		t.Errorf("fit = %v + %v x, want 4 - 0.5x", a, b)
	}
}

func TestTheilSenRobustToOutliers(t *testing.T) {
	var pts []Vec2
	for i := 0; i < 20; i++ {
		x := float64(i)
		pts = append(pts, Vec2{x, 2 + 3*x})
	}
	// 25% wild outliers.
	for i := 0; i < 5; i++ {
		pts = append(pts, Vec2{float64(i), 500})
	}
	a, b, err := TheilSen(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-3) > 0.2 {
		t.Errorf("Theil-Sen slope = %v, want ~3 despite outliers", b)
	}
	if math.Abs(a-2) > 2 {
		t.Errorf("Theil-Sen intercept = %v, want ~2", a)
	}
}

func TestTheilSenDegenerate(t *testing.T) {
	if _, _, err := TheilSen([]Vec2{{1, 1}, {1, 5}}); err == nil {
		t.Error("accepted all-same-x data")
	}
}

func TestTLSLineVertical(t *testing.T) {
	pts := []Vec2{{5, 0}, {5, 1}, {5, 2}, {5.001, 3}}
	l, err := TLSLine(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Dir.X) > 0.01 {
		t.Errorf("near-vertical TLS direction = %+v", l.Dir)
	}
	if d := l.Dist(Vec2{7, 1.5}); math.Abs(d-2) > 0.02 {
		t.Errorf("distance to vertical line = %v, want ~2", d)
	}
}

func TestTLSLineMatchesKnownSlope(t *testing.T) {
	rng := xrand.New(2)
	for _, m := range []float64{-8, -1, -0.12, 2} {
		var pts []Vec2
		for i := 0; i < 100; i++ {
			x := float64(i) * 0.3
			pts = append(pts, Vec2{x + 0.01*rng.NormFloat64(), 3 + m*x + 0.01*rng.NormFloat64()})
		}
		l, err := TLSLine(pts)
		if err != nil {
			t.Fatal(err)
		}
		if gotA, wantA := math.Atan(l.Slope()), math.Atan(m); math.Abs(gotA-wantA) > 0.01 {
			t.Errorf("m=%v: TLS slope %v (Δangle %v rad)", m, l.Slope(), math.Abs(gotA-wantA))
		}
	}
}

func TestTLSLineErrors(t *testing.T) {
	if _, err := TLSLine([]Vec2{{1, 2}}); err == nil {
		t.Error("accepted single point")
	}
	if _, err := TLSLine([]Vec2{{1, 2}, {1, 2}}); err == nil {
		t.Error("accepted coincident points")
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1) + 5
	}
	x, v, err := NelderMead(f, []float64{0, 0}, NMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-3 || math.Abs(x[1]+1) > 1e-3 {
		t.Errorf("NM minimum at %v, want (3,-1)", x)
	}
	if math.Abs(v-5) > 1e-5 {
		t.Errorf("NM value %v, want 5", v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, _, err := NelderMead(f, []float64{-1.2, 1}, NMOptions{MaxIter: 5000, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-2 || math.Abs(x[1]-1) > 1e-2 {
		t.Errorf("Rosenbrock minimum at %v, want (1,1)", x)
	}
}

func TestNelderMeadEmptyStart(t *testing.T) {
	if _, _, err := NelderMead(func([]float64) float64 { return 0 }, nil, NMOptions{}); err == nil {
		t.Error("accepted empty start")
	}
}

func TestLevMarExponentialFit(t *testing.T) {
	// Fit y = p0·exp(p1·x) to clean synthetic data.
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = float64(i) * 0.1
		ys[i] = 2.5 * math.Exp(-0.8*xs[i])
	}
	resid := func(p []float64) []float64 {
		r := make([]float64, len(xs))
		for i := range xs {
			r[i] = p[0]*math.Exp(p[1]*xs[i]) - ys[i]
		}
		return r
	}
	p, err := LevMar(resid, []float64{1, -0.1}, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-2.5) > 1e-4 || math.Abs(p[1]+0.8) > 1e-4 {
		t.Errorf("LM fit = %v, want (2.5, -0.8)", p)
	}
}

func TestLevMarLinearProblem(t *testing.T) {
	resid := func(p []float64) []float64 {
		return []float64{p[0] - 4, 2 * (p[1] + 7)}
	}
	p, err := LevMar(resid, []float64{0, 0}, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p[0]-4) > 1e-6 || math.Abs(p[1]+7) > 1e-6 {
		t.Errorf("LM = %v, want (4,-7)", p)
	}
}

func TestSolveDense(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solve = %v, want (1,3)", x)
	}
	if _, err := solveDense([][]float64{{1, 1}, {1, 1}}, []float64{1, 2}); err == nil {
		t.Error("accepted singular system")
	}
}

func TestPolylineSlopes(t *testing.T) {
	p := Polyline2{A: Vec2{60, 0}, K: Vec2{55, 40}, B: Vec2{0, 47}}
	if got := p.SteepSlope(); math.Abs(got-(-8)) > 1e-12 {
		t.Errorf("steep slope = %v, want -8", got)
	}
	if got := p.ShallowSlope(); math.Abs(got-(40.0-47.0)/55.0) > 1e-12 {
		t.Errorf("shallow slope = %v", got)
	}
}

func TestPolylineDist(t *testing.T) {
	p := Polyline2{A: Vec2{10, 0}, K: Vec2{10, 10}, B: Vec2{0, 10}}
	if d := p.Dist(Vec2{12, 5}); math.Abs(d-2) > 1e-12 {
		t.Errorf("dist to steep segment = %v, want 2", d)
	}
	if d := p.Dist(Vec2{5, 13}); math.Abs(d-3) > 1e-12 {
		t.Errorf("dist to shallow segment = %v, want 3", d)
	}
	if d := p.Dist(Vec2{10, 10}); d != 0 {
		t.Errorf("dist at knee = %v, want 0", d)
	}
}

func TestSegDistEndpoints(t *testing.T) {
	if d := segDist(Vec2{0, 5}, Vec2{0, 0}, Vec2{0, 0}); math.Abs(d-5) > 1e-12 {
		t.Errorf("degenerate segment distance = %v, want 5", d)
	}
	if d := segDist(Vec2{-3, 0}, Vec2{0, 0}, Vec2{10, 0}); math.Abs(d-3) > 1e-12 {
		t.Errorf("beyond-endpoint distance = %v, want 3", d)
	}
}

// syntheticPolylinePoints samples points along a known polyline with noise.
func syntheticPolylinePoints(model Polyline2, n int, sigma float64, seed uint64) []Vec2 {
	rng := xrand.New(seed)
	var pts []Vec2
	for i := 0; i < n/2; i++ {
		t := float64(i) / float64(n/2-1)
		x := model.A.X + t*(model.K.X-model.A.X)
		y := model.A.Y + t*(model.K.Y-model.A.Y)
		pts = append(pts, Vec2{x + sigma*rng.NormFloat64(), y + sigma*rng.NormFloat64()})
	}
	for i := 0; i < n/2; i++ {
		t := float64(i) / float64(n/2-1)
		x := model.B.X + t*(model.K.X-model.B.X)
		y := model.B.Y + t*(model.K.Y-model.B.Y)
		pts = append(pts, Vec2{x + sigma*rng.NormFloat64(), y + sigma*rng.NormFloat64()})
	}
	return pts
}

func TestFitKneeRecoversCleanModel(t *testing.T) {
	truth := Polyline2{A: Vec2{60, 1}, K: Vec2{54, 42}, B: Vec2{1, 49}}
	pts := syntheticPolylinePoints(truth, 40, 0, 3)
	res, err := FitKnee(pts, truth.A, truth.B, Vec2{40, 30})
	if err != nil {
		t.Fatal(err)
	}
	if math.Hypot(res.Model.K.X-truth.K.X, res.Model.K.Y-truth.K.Y) > 0.5 {
		t.Errorf("fitted knee %+v, want %+v", res.Model.K, truth.K)
	}
	if res.RMS > 0.1 {
		t.Errorf("clean-fit RMS = %v", res.RMS)
	}
}

func TestFitKneeNoisy(t *testing.T) {
	truth := Polyline2{A: Vec2{60, 1}, K: Vec2{54, 42}, B: Vec2{1, 49}}
	pts := syntheticPolylinePoints(truth, 60, 0.8, 4)
	res, err := FitKnee(pts, truth.A, truth.B, InitialKnee(pts, truth.A, truth.B))
	if err != nil {
		t.Fatal(err)
	}
	if math.Hypot(res.Model.K.X-truth.K.X, res.Model.K.Y-truth.K.Y) > 3 {
		t.Errorf("fitted knee %+v too far from %+v", res.Model.K, truth.K)
	}
}

func TestFitKneeTooFewPoints(t *testing.T) {
	if _, err := FitKnee([]Vec2{{1, 1}}, Vec2{}, Vec2{}, Vec2{}); err == nil {
		t.Error("accepted single point")
	}
}

func TestInitialKneeReasonable(t *testing.T) {
	truth := Polyline2{A: Vec2{60, 1}, K: Vec2{54, 42}, B: Vec2{1, 49}}
	pts := syntheticPolylinePoints(truth, 40, 0.3, 5)
	k := InitialKnee(pts, truth.A, truth.B)
	if math.Hypot(k.X-truth.K.X, k.Y-truth.K.Y) > 8 {
		t.Errorf("initial knee %+v too far from truth %+v", k, truth.K)
	}
}

func TestInitialKneeFallback(t *testing.T) {
	a, b := Vec2{10, 0}, Vec2{0, 10}
	k := InitialKnee([]Vec2{{1, 1}, {2, 2}}, a, b)
	if k.X != 5 || k.Y != 5 {
		t.Errorf("fallback knee = %+v, want midpoint (5,5)", k)
	}
}

func TestMedianProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, v := range xs {
			if math.IsNaN(v) {
				return true
			}
		}
		m := median(xs)
		// At least half the values are ≤ m and at least half are ≥ m.
		var le, ge int
		for _, v := range xs {
			if v <= m {
				le++
			}
			if v >= m {
				ge++
			}
		}
		return 2*le >= len(xs) && 2*ge >= len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
