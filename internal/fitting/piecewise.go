package fitting

import (
	"errors"
	"math"
)

// Polyline2 is the paper's 2-piece-wise linear shape: the steep segment from
// bottom anchor A up to the knee K, and the shallow segment from K to left
// anchor B. The knee is the transition lines' intersection (the triple
// point); A and B are the initial anchor points found in preprocessing.
type Polyline2 struct {
	A, K, B Vec2
}

// SteepSlope returns the slope dy/dx of the A–K segment (±Inf if vertical).
func (p Polyline2) SteepSlope() float64 { return segSlope(p.A, p.K) }

// ShallowSlope returns the slope of the B–K segment.
func (p Polyline2) ShallowSlope() float64 { return segSlope(p.B, p.K) }

func segSlope(a, b Vec2) float64 {
	dx := b.X - a.X
	if dx == 0 {
		return math.Inf(1)
	}
	return (b.Y - a.Y) / dx
}

// Dist returns the Euclidean distance from q to the nearest of the two
// segments. Using geometric distance (rather than vertical residuals) keeps
// the fit well-conditioned on the near-vertical steep segment.
func (p Polyline2) Dist(q Vec2) float64 {
	return math.Min(segDist(q, p.A, p.K), segDist(q, p.B, p.K))
}

// segDist is the distance from q to segment ab.
func segDist(q, a, b Vec2) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	l2 := abx*abx + aby*aby
	if l2 == 0 {
		return math.Hypot(q.X-a.X, q.Y-a.Y)
	}
	t := ((q.X-a.X)*abx + (q.Y-a.Y)*aby) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	px := a.X + t*abx
	py := a.Y + t*aby
	return math.Hypot(q.X-px, q.Y-py)
}

// FitKneeResult reports the fitted piecewise model and its residual RMS.
type FitKneeResult struct {
	Model Polyline2
	RMS   float64
}

// FitKnee fits the knee position of the 2-piece-wise linear shape anchored
// at A (bottom) and B (left) to the transition points, minimising the sum of
// squared geometric distances (Section 4.3.3). init seeds the optimiser;
// pass InitialKnee's output or any in-window estimate. Levenberg–Marquardt
// refines first; Nelder–Mead polishes, which handles the kink in the
// distance field near segment ends.
func FitKnee(points []Vec2, a, b, init Vec2) (FitKneeResult, error) {
	if len(points) < 2 {
		return FitKneeResult{}, errors.New("fitting: need at least 2 transition points")
	}
	resid := func(x []float64) []float64 {
		model := Polyline2{A: a, K: Vec2{x[0], x[1]}, B: b}
		out := make([]float64, len(points))
		for i, p := range points {
			out[i] = model.Dist(p)
		}
		return out
	}
	x0 := []float64{init.X, init.Y}
	xLM, err := LevMar(resid, x0, LMOptions{})
	if err != nil {
		xLM = x0
	}
	obj := func(x []float64) float64 {
		r := resid(x)
		return dot(r, r)
	}
	xNM, _, err := NelderMead(obj, xLM, NMOptions{Step: 2})
	if err != nil {
		return FitKneeResult{}, err
	}
	best := xLM
	if obj(xNM) < obj(xLM) {
		best = xNM
	}
	model := Polyline2{A: a, K: Vec2{best[0], best[1]}, B: b}
	rms := math.Sqrt(obj(best) / float64(len(points)))
	return FitKneeResult{Model: model, RMS: rms}, nil
}

// InitialKnee estimates the knee as the intersection of robust line fits to
// the two branches. The branches are disjoint in both coordinates (steep
// points sit right of the knee, shallow points above it), so a median split
// separates them well even with erroneous points present.
func InitialKnee(points []Vec2, a, b Vec2) Vec2 {
	fallback := Vec2{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2}
	if len(points) < 4 {
		return fallback
	}
	xs := make([]float64, len(points))
	for i, p := range points {
		xs[i] = p.X
	}
	xMed := median(xs)
	var steep, shallow []Vec2
	for _, p := range points {
		if p.X > xMed {
			steep = append(steep, p)
		} else {
			shallow = append(shallow, p)
		}
	}
	if len(steep) < 2 || len(shallow) < 2 {
		return fallback
	}
	// Steep branch: fit x = f(y) (well-conditioned for near-vertical data).
	swapped := make([]Vec2, len(steep))
	for i, p := range steep {
		swapped[i] = Vec2{X: p.Y, Y: p.X}
	}
	c1, d1, err1 := TheilSen(swapped) // x = c1 + d1·y
	c2, d2, err2 := TheilSen(shallow) // y = c2 + d2·x
	if err1 != nil || err2 != nil {
		return fallback
	}
	// Solve x = c1 + d1·y, y = c2 + d2·x.
	den := 1 - d1*d2
	if math.Abs(den) < 1e-12 {
		return fallback
	}
	x := (c1 + d1*c2) / den
	y := c2 + d2*x
	if math.IsNaN(x) || math.IsNaN(y) {
		return fallback
	}
	return Vec2{X: x, Y: y}
}
