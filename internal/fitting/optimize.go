package fitting

import (
	"errors"
	"math"
	"sort"
)

// NMOptions configures the Nelder–Mead simplex search.
type NMOptions struct {
	MaxIter int     // default 400·dim
	Tol     float64 // simplex size / value-spread tolerance, default 1e-9
	Step    float64 // initial simplex edge, default 1 (per coordinate)
}

// NelderMead minimises f starting from x0 and returns the best point and
// value. It is derivative-free and serves as the fallback optimiser when
// Levenberg–Marquardt stalls on the piecewise model's kinked residuals.
func NelderMead(f func([]float64) float64, x0 []float64, opt NMOptions) ([]float64, float64, error) {
	n := len(x0)
	if n == 0 {
		return nil, 0, errors.New("fitting: empty start point")
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 400 * n
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-9
	}
	if opt.Step == 0 {
		opt.Step = 1
	}
	type vertex struct {
		x []float64
		v float64
	}
	simplex := make([]vertex, n+1)
	for i := range simplex {
		x := append([]float64(nil), x0...)
		if i > 0 {
			x[i-1] += opt.Step
		}
		simplex[i] = vertex{x: x, v: f(x)}
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	for iter := 0; iter < opt.MaxIter; iter++ {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
		if simplex[n].v-simplex[0].v < opt.Tol {
			break
		}
		// Centroid of all but worst.
		cen := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := range cen {
				cen[j] += simplex[i].x[j]
			}
		}
		for j := range cen {
			cen[j] /= float64(n)
		}
		worst := simplex[n]
		refl := make([]float64, n)
		for j := range refl {
			refl[j] = cen[j] + alpha*(cen[j]-worst.x[j])
		}
		fr := f(refl)
		switch {
		case fr < simplex[0].v:
			exp := make([]float64, n)
			for j := range exp {
				exp[j] = cen[j] + gamma*(refl[j]-cen[j])
			}
			if fe := f(exp); fe < fr {
				simplex[n] = vertex{exp, fe}
			} else {
				simplex[n] = vertex{refl, fr}
			}
		case fr < simplex[n-1].v:
			simplex[n] = vertex{refl, fr}
		default:
			con := make([]float64, n)
			for j := range con {
				con[j] = cen[j] + rho*(worst.x[j]-cen[j])
			}
			if fc := f(con); fc < worst.v {
				simplex[n] = vertex{con, fc}
			} else {
				for i := 1; i <= n; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].v = f(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].v < simplex[j].v })
	return simplex[0].x, simplex[0].v, nil
}

// LMOptions configures Levenberg–Marquardt.
type LMOptions struct {
	MaxIter  int     // default 100
	Tol      float64 // relative cost-improvement tolerance, default 1e-10
	InitMu   float64 // initial damping, default 1e-3
	JacobEps float64 // finite-difference step, default 1e-6
}

// LevMar minimises ½·Σ r(x)² over x with a numeric-Jacobian
// Levenberg–Marquardt iteration and returns the solution. It is this
// repository's replacement for SciPy's curve_fit (Section 4.3.3).
func LevMar(residuals func([]float64) []float64, x0 []float64, opt LMOptions) ([]float64, error) {
	n := len(x0)
	if n == 0 {
		return nil, errors.New("fitting: empty start point")
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 100
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-10
	}
	if opt.InitMu == 0 {
		opt.InitMu = 1e-3
	}
	if opt.JacobEps == 0 {
		opt.JacobEps = 1e-6
	}
	x := append([]float64(nil), x0...)
	r := residuals(x)
	m := len(r)
	if m == 0 {
		return nil, errors.New("fitting: no residuals")
	}
	cost := dot(r, r)
	mu := opt.InitMu
	jac := make([][]float64, m)
	for i := range jac {
		jac[i] = make([]float64, n)
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		// Numeric Jacobian, forward differences.
		for j := 0; j < n; j++ {
			h := opt.JacobEps * math.Max(1, math.Abs(x[j]))
			xp := append([]float64(nil), x...)
			xp[j] += h
			rp := residuals(xp)
			if len(rp) != m {
				return nil, errors.New("fitting: residual dimension changed")
			}
			for i := 0; i < m; i++ {
				jac[i][j] = (rp[i] - r[i]) / h
			}
		}
		// Normal equations: (JᵀJ + μ·diag(JᵀJ))·δ = -Jᵀr.
		jtj := make([][]float64, n)
		jtr := make([]float64, n)
		for a := 0; a < n; a++ {
			jtj[a] = make([]float64, n)
			for b := 0; b < n; b++ {
				var s float64
				for i := 0; i < m; i++ {
					s += jac[i][a] * jac[i][b]
				}
				jtj[a][b] = s
			}
			var s float64
			for i := 0; i < m; i++ {
				s += jac[i][a] * r[i]
			}
			jtr[a] = -s
		}
		improved := false
		for tries := 0; tries < 30; tries++ {
			lhs := make([][]float64, n)
			for a := 0; a < n; a++ {
				lhs[a] = append([]float64(nil), jtj[a]...)
				lhs[a][a] += mu * math.Max(jtj[a][a], 1e-12)
			}
			delta, err := solveDense(lhs, jtr)
			if err != nil {
				mu *= 10
				continue
			}
			xNew := make([]float64, n)
			for j := range xNew {
				xNew[j] = x[j] + delta[j]
			}
			rNew := residuals(xNew)
			cNew := dot(rNew, rNew)
			if cNew < cost {
				relImp := (cost - cNew) / math.Max(cost, 1e-300)
				x, r, cost = xNew, rNew, cNew
				mu = math.Max(mu/3, 1e-12)
				improved = true
				if relImp < opt.Tol {
					return x, nil
				}
				break
			}
			mu *= 10
			if mu > 1e12 {
				return x, nil // damped out: converged to the best found
			}
		}
		if !improved {
			return x, nil
		}
	}
	return x, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// solveDense solves A·x = b by Gaussian elimination with partial pivoting.
func solveDense(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for rIdx := col + 1; rIdx < n; rIdx++ {
			if math.Abs(m[rIdx][col]) > math.Abs(m[piv][col]) {
				piv = rIdx
			}
		}
		if math.Abs(m[piv][col]) < 1e-300 {
			return nil, errors.New("fitting: singular system")
		}
		m[col], m[piv] = m[piv], m[col]
		for rIdx := col + 1; rIdx < n; rIdx++ {
			f := m[rIdx][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[rIdx][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}
