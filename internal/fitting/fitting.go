// Package fitting provides the numerical optimisation used by the extraction
// pipelines: ordinary and robust line fits, a Nelder–Mead simplex, a
// Levenberg–Marquardt least-squares solver with numeric Jacobian (the
// stand-in for SciPy's curve_fit), and the paper's 2-piece-wise linear model
// whose free parameter is the knee — the transition lines' intersection.
package fitting

import (
	"errors"
	"math"
	"sort"
)

// Vec2 is a 2-D point.
type Vec2 struct {
	X, Y float64
}

// LinearFit returns (intercept a, slope b) of the least-squares line
// y = a + b·x through the points.
func LinearFit(pts []Vec2) (a, b float64, err error) {
	if len(pts) < 2 {
		return 0, 0, errors.New("fitting: need at least 2 points")
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(pts))
	for _, p := range pts {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-30 {
		return 0, 0, errors.New("fitting: degenerate x values")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b, nil
}

// TheilSen returns a robust (intercept, slope) estimate: the median of all
// pairwise slopes and the median of the per-point intercepts. It tolerates
// up to ~29% outliers, which is what the sweeps' erroneous points demand.
func TheilSen(pts []Vec2) (a, b float64, err error) {
	if len(pts) < 2 {
		return 0, 0, errors.New("fitting: need at least 2 points")
	}
	var slopes []float64
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			dx := pts[j].X - pts[i].X
			if dx == 0 {
				continue
			}
			slopes = append(slopes, (pts[j].Y-pts[i].Y)/dx)
		}
	}
	if len(slopes) == 0 {
		return 0, 0, errors.New("fitting: all points share one x value")
	}
	b = median(slopes)
	inters := make([]float64, len(pts))
	for i, p := range pts {
		inters[i] = p.Y - b*p.X
	}
	a = median(inters)
	return a, b, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	// Averaged as halves so two huge same-sign middles cannot overflow.
	return 0.5*s[n/2-1] + 0.5*s[n/2]
}

// ParamLine is a line in point-direction form, robust to vertical slopes.
type ParamLine struct {
	P0  Vec2 // a point on the line (the centroid, for fitted lines)
	Dir Vec2 // unit direction
}

// Slope returns dy/dx (±Inf for vertical lines).
func (l ParamLine) Slope() float64 {
	if l.Dir.X == 0 {
		return math.Inf(1)
	}
	return l.Dir.Y / l.Dir.X
}

// Dist returns the perpendicular distance from q to the line.
func (l ParamLine) Dist(q Vec2) float64 {
	// |cross(q - P0, Dir)| with Dir unit length.
	return math.Abs((q.X-l.P0.X)*l.Dir.Y - (q.Y-l.P0.Y)*l.Dir.X)
}

// TLSLine fits a line by total least squares (perpendicular residuals) via
// the principal direction of the point cloud; unlike y=f(x) regression it is
// well-conditioned for the near-vertical steep transition line.
func TLSLine(pts []Vec2) (ParamLine, error) {
	if len(pts) < 2 {
		return ParamLine{}, errors.New("fitting: need at least 2 points")
	}
	var cx, cy float64
	for _, p := range pts {
		cx += p.X
		cy += p.Y
	}
	n := float64(len(pts))
	cx /= n
	cy /= n
	var sxx, sxy, syy float64
	for _, p := range pts {
		dx, dy := p.X-cx, p.Y-cy
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 && syy == 0 {
		return ParamLine{}, errors.New("fitting: coincident points")
	}
	// Principal eigenvector of [[sxx, sxy], [sxy, syy]].
	tr := sxx + syy
	det := sxx*syy - sxy*sxy
	lambda := tr/2 + math.Sqrt(math.Max(tr*tr/4-det, 0))
	var dir Vec2
	if math.Abs(sxy) > 1e-30 {
		dir = Vec2{X: lambda - syy, Y: sxy}
	} else if sxx >= syy {
		dir = Vec2{X: 1, Y: 0}
	} else {
		dir = Vec2{X: 0, Y: 1}
	}
	norm := math.Hypot(dir.X, dir.Y)
	dir.X /= norm
	dir.Y /= norm
	return ParamLine{P0: Vec2{cx, cy}, Dir: dir}, nil
}
