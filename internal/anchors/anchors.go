// Package anchors implements the preprocessing of the paper's Section 4.4:
// locating the two initial anchor points — one on the steep (dot-1)
// transition line near the bottom edge of the scan window, one on the
// shallow (dot-2) line near the left edge — that define the critical
// triangular search region of Section 4.2.
//
// The procedure probes ten points along the window diagonal, picks the
// brightest as the sweep start (or 10% of the extent, whichever is farther
// from the origin), then slides the paper's two edge-detection masks along
// the bottom and left bands. Mask scores are weighted by a 1-D Gaussian
// before the argmax, which suppresses spurious responses far from the
// expected crossing.
package anchors

import (
	"errors"
	"fmt"
	"math"

	"github.com/fastvg/fastvg/internal/grid"
)

// Source provides sensor current at integer pixel coordinates.
type Source interface {
	Current(x, y int) float64
}

// RowSource is an optional Source extension: pull a contiguous row segment
// in one call (csd.PixelSource forwards it to the instrument's batched row
// path). Find uses it for the mask sweeps' row segments; the probe order —
// and therefore the noise realisation and probe accounting — is identical
// either way.
type RowSource interface {
	Source
	Row(y, x0 int, out []float64)
}

// MaskX is the paper's horizontal-sweep mask (printed top row first; 3 rows
// × 5 columns). It responds maximally when a steep, negatively sloped
// falling edge passes through its centre column.
var MaskX = [3][5]float64{
	{1, 1, -3, -4, -4},
	{2, 2, 0, -2, -2},
	{4, 4, 3, -1, -1},
}

// MaskY is the paper's vertical-sweep mask (printed top row first; 5 rows ×
// 3 columns), responding to the shallow negatively sloped falling edge.
var MaskY = [5][3]float64{
	{-1, -2, -4},
	{-1, -2, -4},
	{3, 0, -3},
	{4, 2, 1},
	{4, 2, 1},
}

// Config tunes the preprocessing.
type Config struct {
	DiagonalPoints int     // probes along the diagonal; paper uses 10
	MinStartFrac   float64 // band-sweep start as a fraction of extent; paper uses 0.10
	GaussSigmaFrac float64 // Gaussian σ as a fraction of the sweep range
}

// DefaultConfig returns the paper's parameters (with the Gaussian centred on
// the paper's start point; see DESIGN.md §5 for this reading of Section 4.4).
func DefaultConfig() Config {
	return Config{
		DiagonalPoints: 10,
		MinStartFrac:   0.10,
		GaussSigmaFrac: 0.25,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.DiagonalPoints == 0 {
		c.DiagonalPoints = d.DiagonalPoints
	}
	if c.MinStartFrac == 0 {
		c.MinStartFrac = d.MinStartFrac
	}
	if c.GaussSigmaFrac == 0 {
		c.GaussSigmaFrac = d.GaussSigmaFrac
	}
}

// Result reports the anchors and the diagnostics used by figures and tests.
type Result struct {
	Bottom grid.Point // anchor on the steep line, centred in the bottom band
	Left   grid.Point // anchor on the shallow line, centred in the left band

	Brightest      grid.Point // brightest diagonal probe
	DiagonalProbes []grid.Point
	ScoresX        []float64 // Gaussian-weighted mask scores (index: sweep position)
	ScoresY        []float64
	StartX, StartY int
}

// Find locates the two anchor points on a w×h window.
func Find(src Source, w, h int, cfg Config) (Result, error) {
	cfg.fillDefaults()
	if w < 12 || h < 12 {
		return Result{}, fmt.Errorf("anchors: window %dx%d too small (need ≥ 12x12)", w, h)
	}
	var res Result

	// Step 1: ten equally spaced diagonal probes, lower-left to upper-right.
	n := cfg.DiagonalPoints
	best := math.Inf(-1)
	for i := 0; i < n; i++ {
		x := int(math.Round(float64(i) * float64(w-1) / float64(n-1)))
		y := int(math.Round(float64(i) * float64(h-1) / float64(n-1)))
		p := grid.Point{X: x, Y: y}
		res.DiagonalProbes = append(res.DiagonalProbes, p)
		if c := src.Current(x, y); c > best {
			best = c
			res.Brightest = p
		}
	}

	// Step 2: the paper's reference point — the brightest probe or 10% of
	// the extent, whichever is farther from the lower-left corner. The mask
	// sweeps scan the full band from the 10% mark and use this point as the
	// centre of the Gaussian score weighting; centring (rather than
	// truncating the sweep at it) keeps a faint first transition findable
	// when the brightest probe overshoots it (see DESIGN.md §5).
	minStartX := int(math.Round(cfg.MinStartFrac * float64(w)))
	minStartY := int(math.Round(cfg.MinStartFrac * float64(h)))
	res.StartX = maxInt(res.Brightest.X, minStartX)
	res.StartY = maxInt(res.Brightest.Y, minStartY)
	if res.StartX > w-5 {
		res.StartX = w - 5
	}
	if res.StartY > h-5 {
		res.StartY = h - 5
	}

	// Step 3: slide MaskX along the bottom band (rows 0..2).
	nx := w - 4 - minStartX
	if nx < 1 {
		return Result{}, errors.New("anchors: no room for horizontal mask sweep")
	}
	rs, _ := src.(RowSource)
	rowSeg := func(y, x0 int, out []float64) {
		if rs != nil {
			rs.Row(y, x0, out)
			return
		}
		for i := range out {
			out[i] = src.Current(x0+i, y)
		}
	}
	var segX [5]float64
	res.ScoresX = make([]float64, nx)
	for i := 0; i < nx; i++ {
		x0 := minStartX + i
		var s float64
		for r := 0; r < 3; r++ {
			yy := 2 - r // printed top row sits at the top of the band
			rowSeg(yy, x0, segX[:])
			for c := 0; c < 5; c++ {
				s += MaskX[r][c] * segX[c]
			}
		}
		res.ScoresX[i] = s
	}
	applyGaussianAt(res.ScoresX, float64(res.StartX-minStartX), cfg.GaussSigmaFrac)
	bxi := argmax(res.ScoresX)
	res.Bottom = grid.Point{X: minStartX + bxi + 2, Y: 1}

	// Step 4: slide MaskY along the left band (columns 0..2).
	ny := h - 4 - minStartY
	if ny < 1 {
		return Result{}, errors.New("anchors: no room for vertical mask sweep")
	}
	var segY [3]float64
	res.ScoresY = make([]float64, ny)
	for i := 0; i < ny; i++ {
		y0 := minStartY + i
		var s float64
		for r := 0; r < 5; r++ {
			yy := y0 + (4 - r)
			rowSeg(yy, 0, segY[:])
			for c := 0; c < 3; c++ {
				s += MaskY[r][c] * segY[c]
			}
		}
		res.ScoresY[i] = s
	}
	applyGaussianAt(res.ScoresY, float64(res.StartY-minStartY), cfg.GaussSigmaFrac)
	byi := argmax(res.ScoresY)
	res.Left = grid.Point{X: 1, Y: minStartY + byi + 2}

	// The triangle of Section 4.2 needs the bottom anchor to the right of
	// the left anchor and the left anchor above the bottom one.
	if res.Bottom.X <= res.Left.X+2 || res.Left.Y <= res.Bottom.Y+2 {
		return res, fmt.Errorf("anchors: degenerate anchors bottom=%v left=%v", res.Bottom, res.Left)
	}
	return res, nil
}

// applyGaussianAt multiplies scores elementwise by a Gaussian centred at
// index center with σ = sigmaFrac·len. Scores are shifted to be non-negative
// first so that weighting cannot promote a negative score.
func applyGaussianAt(scores []float64, center, sigmaFrac float64) {
	if len(scores) == 0 {
		return
	}
	lo := math.Inf(1)
	for _, v := range scores {
		lo = math.Min(lo, v)
	}
	sigma := sigmaFrac * float64(len(scores))
	if sigma <= 0 {
		sigma = 1
	}
	for i := range scores {
		d := (float64(i) - center) / sigma
		scores[i] = (scores[i] - lo) * math.Exp(-0.5*d*d)
	}
}

func argmax(xs []float64) int {
	best, bi := math.Inf(-1), 0
	for i, v := range xs {
		if v > best {
			best = v
			bi = i
		}
	}
	return bi
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
