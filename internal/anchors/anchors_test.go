package anchors

import (
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/grid"
)

// synthSource mirrors the CSD structure: tilted bright background with a
// step down across the steep line (through (xa, 0), slope mSteep) and across
// the shallow line (through (0, yb), slope mShallow).
type synthSource struct {
	xa, yb           float64
	mSteep, mShallow float64
	probes           map[grid.Point]bool
}

func newSynth(xa, yb float64) *synthSource {
	return &synthSource{xa: xa, yb: yb, mSteep: -8, mShallow: -0.12, probes: map[grid.Point]bool{}}
}

func (s *synthSource) Current(x, y int) float64 {
	s.probes[grid.Point{X: x, Y: y}] = true
	fx, fy := float64(x), float64(y)
	c := 2.0 + 0.004*(fx+fy)
	if fx > s.xa+fy/s.mSteep {
		c -= 0.8
	}
	if fy > s.yb+s.mShallow*fx {
		c -= 0.8
	}
	return c
}

func TestFindLocatesAnchorsOnLines(t *testing.T) {
	s := newSynth(45, 40)
	res, err := Find(s, 64, 64, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Bottom anchor should sit within a couple of pixels of the steep line's
	// bottom crossing (x ≈ 45 at y ≈ 1).
	if math.Abs(float64(res.Bottom.X)-45) > 3 {
		t.Errorf("bottom anchor at %v, steep line crosses bottom at x≈45", res.Bottom)
	}
	if res.Bottom.Y != 1 {
		t.Errorf("bottom anchor y = %d, want 1 (band centre)", res.Bottom.Y)
	}
	if math.Abs(float64(res.Left.Y)-40) > 3 {
		t.Errorf("left anchor at %v, shallow line crosses left edge at y≈40", res.Left)
	}
	if res.Left.X != 1 {
		t.Errorf("left anchor x = %d, want 1", res.Left.X)
	}
}

func TestFindVariousGeometries(t *testing.T) {
	for _, tc := range []struct{ xa, yb float64 }{
		{35, 50}, {50, 35}, {40, 40}, {52, 52},
	} {
		s := newSynth(tc.xa, tc.yb)
		res, err := Find(s, 64, 64, DefaultConfig())
		if err != nil {
			t.Errorf("geometry %+v: %v", tc, err)
			continue
		}
		if math.Abs(float64(res.Bottom.X)-tc.xa) > 4 {
			t.Errorf("geometry %+v: bottom anchor %v", tc, res.Bottom)
		}
		if math.Abs(float64(res.Left.Y)-tc.yb) > 4 {
			t.Errorf("geometry %+v: left anchor %v", tc, res.Left)
		}
	}
}

func TestFindLargerWindow(t *testing.T) {
	s := newSynth(140, 130)
	res, err := Find(s, 200, 200, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Bottom.X)-140) > 6 {
		t.Errorf("bottom anchor %v, want x≈140", res.Bottom)
	}
	if math.Abs(float64(res.Left.Y)-130) > 6 {
		t.Errorf("left anchor %v, want y≈130", res.Left)
	}
}

func TestFindRejectsTinyWindow(t *testing.T) {
	s := newSynth(5, 5)
	if _, err := Find(s, 8, 8, DefaultConfig()); err == nil {
		t.Error("accepted 8x8 window")
	}
}

func TestDiagonalProbeCount(t *testing.T) {
	s := newSynth(45, 40)
	res, err := Find(s, 64, 64, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DiagonalProbes) != 10 {
		t.Errorf("%d diagonal probes, want 10", len(res.DiagonalProbes))
	}
	first := res.DiagonalProbes[0]
	last := res.DiagonalProbes[9]
	if first.X != 0 || first.Y != 0 || last.X != 63 || last.Y != 63 {
		t.Errorf("diagonal spans %v..%v, want corner to corner", first, last)
	}
}

func TestProbeFootprintIsBands(t *testing.T) {
	// The mask sweeps only touch the 3-pixel bottom and left bands (plus the
	// diagonal): unique probes ≈ 3·(w-start) + 3·(h-start) + 10.
	s := newSynth(45, 40)
	res, err := Find(s, 100, 100, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	unique := len(s.probes)
	upper := 3*(100-10) + 3*(100-10) + 10 + 16
	_ = res
	if unique > upper {
		t.Errorf("unique probes = %d, want ≤ %d", unique, upper)
	}
	for p := range s.probes {
		onDiag := math.Abs(float64(p.X-p.Y)) < 2
		if p.Y > 2 && p.X > 2 && !onDiag {
			t.Fatalf("probe %v outside bands and diagonal", p)
		}
	}
}

func TestStartRespectsMinFrac(t *testing.T) {
	// With a dark lower-left (brightest diagonal point at the origin), the
	// sweep must still start at 10% of the extent.
	s := newSynth(45, 40)
	res, err := Find(s, 100, 100, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.StartX < 10 || res.StartY < 10 {
		t.Errorf("start = (%d,%d), want ≥ (10,10)", res.StartX, res.StartY)
	}
}

func TestBrightestStartUsedWhenFarther(t *testing.T) {
	// Background rises along the diagonal and drops after the lines, so the
	// brightest diagonal probe sits just inside the (0,0) corner region;
	// with lines far out it exceeds 10%.
	s := newSynth(52, 52)
	res, err := Find(s, 64, 64, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.StartX <= 7 {
		t.Errorf("StartX = %d, want > 10%% because brightest point is farther", res.StartX)
	}
	if res.Brightest.X < 30 {
		t.Errorf("brightest diagonal probe at %v, want inside the bright region near the lines", res.Brightest)
	}
}

func TestGaussianWeightingSuppressesFarPeaks(t *testing.T) {
	scores := []float64{0, 0, 0, 5, 0, 0, 0, 0, 0, 6} // far peak slightly higher
	applyGaussianAt(scores, 3, 0.15)
	if argmax(scores) != 3 {
		t.Errorf("Gaussian weighting kept far peak: weighted scores %v", scores)
	}
}

func TestApplyGaussianHandlesNegativeScores(t *testing.T) {
	scores := []float64{-10, -5, -20}
	applyGaussianAt(scores, 1, 0.3)
	for i, v := range scores {
		if v < 0 {
			t.Errorf("weighted score %d = %v, want non-negative", i, v)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.DiagonalPoints != 10 || c.MinStartFrac != 0.10 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestMaskShapesMatchPaper(t *testing.T) {
	// Spot-check the transcribed masks against the paper's matrices.
	if MaskX[0][0] != 1 || MaskX[0][4] != -4 || MaskX[2][0] != 4 || MaskX[2][2] != 3 {
		t.Error("MaskX transcription wrong")
	}
	if MaskY[0][2] != -4 || MaskY[2][0] != 3 || MaskY[4][0] != 4 || MaskY[4][2] != 1 {
		t.Error("MaskY transcription wrong")
	}
	// Both masks are zero-sum, so they reject constant backgrounds.
	var sx, sy float64
	for _, row := range MaskX {
		for _, v := range row {
			sx += v
		}
	}
	for _, row := range MaskY {
		for _, v := range row {
			sy += v
		}
	}
	if sx != 0 {
		t.Errorf("MaskX sum = %v (not zero-sum; constant background leaks)", sx)
	}
	if sy != 0 {
		t.Errorf("MaskY sum = %v", sy)
	}
}
