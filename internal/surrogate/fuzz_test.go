package surrogate

import (
	"bytes"
	"testing"

	"github.com/fastvg/fastvg/internal/csd"
)

// FuzzModelDecode mirrors the store's FuzzFrameDecode for the surrogate
// model codec: Decode must never panic on arbitrary bytes, and every model
// it does accept must have a stable encoding (decode → encode → decode →
// encode reproduces the same bytes; byte-level comparison of the input
// would wrongly reject non-minimal varints the decoder legitimately
// accepts).
func FuzzModelDecode(f *testing.F) {
	win := csd.NewSquareWindow(0, 0, 50, 16)
	empty := New(win)
	f.Add([]byte{})
	f.Add(empty.Encode())
	m := New(win)
	for i := 0; i < 16; i++ {
		m.Add(win.V1At(i), win.V2At(i%4), float64(i))
	}
	m.setFit(&Fit{})
	f.Add(m.Encode())
	f.Add(m.Encode()[:20])
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Decode(b)
		if err != nil {
			return
		}
		enc := m.Encode()
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded model rejected: %v", err)
		}
		if !bytes.Equal(m2.Encode(), enc) {
			t.Fatal("encoding not stable across a decode round trip")
		}
	})
}
