// Model serialization. A model encodes to one opaque byte blob designed to
// ride inside a store record (the journal's CRC frames provide integrity) or
// a trace meta field: uvarint version, the window (four float64 bounds plus
// uvarint cols/rows), the sample counter, the stored cells as strictly
// ascending (uvarint index, float64 value) pairs, and an optional
// transition-line fit. Decode validates every bound and never panics on
// arbitrary bytes — FuzzModelDecode mirrors the store's FuzzFrameDecode over
// this codec.

package surrogate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"github.com/fastvg/fastvg/internal/csd"
)

// codecVersion stamps encoded models; bump on layout change.
const codecVersion = 1

// maxModelDim bounds the decoded grid so a corrupt header can never drive a
// huge allocation (the largest real windows are a few hundred pixels).
const (
	maxModelDim   = 1 << 12
	maxModelCells = 1 << 20
)

// ErrModelFormat marks bytes that are not a valid encoded model.
var ErrModelFormat = errors.New("surrogate: bad model encoding")

// Encode serializes the model. The encoding is canonical: encoding a decoded
// model reproduces the same bytes.
func (m *Model) Encode() []byte {
	buf := binary.AppendUvarint(nil, codecVersion)
	for _, f := range []float64{m.win.V1Min, m.win.V1Max, m.win.V2Min, m.win.V2Max} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	buf = binary.AppendUvarint(buf, uint64(m.win.Cols))
	buf = binary.AppendUvarint(buf, uint64(m.win.Rows))
	buf = binary.AppendUvarint(buf, uint64(m.samples))
	buf = binary.AppendUvarint(buf, uint64(m.nFilled))
	for i, ok := range m.filled {
		if !ok {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(i))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.vals[i]))
	}
	if m.fit == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	for _, f := range []float64{
		m.fit.Model.A.X, m.fit.Model.A.Y,
		m.fit.Model.K.X, m.fit.Model.K.Y,
		m.fit.Model.B.X, m.fit.Model.B.Y,
		m.fit.RMS,
	} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	return buf
}

// Decode is the inverse of Encode. It rejects malformed input with
// ErrModelFormat and never panics; every accepted blob yields a model whose
// re-encoding is stable.
func Decode(b []byte) (*Model, error) {
	d := &decoder{b: b}
	if v := d.uvarint("version"); d.err == nil && v != codecVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrModelFormat, v, codecVersion)
	}
	var win csd.Window
	win.V1Min = d.float("v1min")
	win.V1Max = d.float("v1max")
	win.V2Min = d.float("v2min")
	win.V2Max = d.float("v2max")
	win.Cols = int(d.uvarintMax("cols", maxModelDim))
	win.Rows = int(d.uvarintMax("rows", maxModelDim))
	if d.err != nil {
		return nil, d.err
	}
	if err := win.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrModelFormat, err)
	}
	if !isFinite(win.V1Min, win.V1Max, win.V2Min, win.V2Max) {
		return nil, fmt.Errorf("%w: non-finite window", ErrModelFormat)
	}
	cells := win.Cols * win.Rows
	if cells > maxModelCells {
		return nil, fmt.Errorf("%w: %d cells exceeds limit", ErrModelFormat, cells)
	}
	m := New(win)
	m.samples = int64(d.uvarintMax("samples", math.MaxInt64))
	nFilled := int(d.uvarintMax("filled", uint64(cells)))
	if d.err != nil {
		return nil, d.err
	}
	prev := -1
	for i := 0; i < nFilled; i++ {
		idx := int(d.uvarintMax("cell index", uint64(cells-1)))
		val := d.float("cell value")
		if d.err != nil {
			return nil, d.err
		}
		if idx <= prev {
			return nil, fmt.Errorf("%w: cell indices not ascending", ErrModelFormat)
		}
		if !isFinite(val) {
			return nil, fmt.Errorf("%w: non-finite cell value", ErrModelFormat)
		}
		prev = idx
		m.vals[idx] = val
		m.filled[idx] = true
	}
	m.nFilled = nFilled
	switch flag := d.byte("fit flag"); {
	case d.err != nil:
		return nil, d.err
	case flag == 0:
	case flag == 1:
		var f Fit
		f.Model.A.X = d.float("fit ax")
		f.Model.A.Y = d.float("fit ay")
		f.Model.K.X = d.float("fit kx")
		f.Model.K.Y = d.float("fit ky")
		f.Model.B.X = d.float("fit bx")
		f.Model.B.Y = d.float("fit by")
		f.RMS = d.float("fit rms")
		if d.err != nil {
			return nil, d.err
		}
		if !isFinite(f.Model.A.X, f.Model.A.Y, f.Model.K.X, f.Model.K.Y, f.Model.B.X, f.Model.B.Y, f.RMS) {
			return nil, fmt.Errorf("%w: non-finite fit", ErrModelFormat)
		}
		m.setFit(&f)
	default:
		return nil, fmt.Errorf("%w: fit flag %d", ErrModelFormat, flag)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrModelFormat, len(d.b))
	}
	return m, nil
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("%w: truncated %s", ErrModelFormat, what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) uvarintMax(what string, max uint64) uint64 {
	v := d.uvarint(what)
	if d.err == nil && v > max {
		d.err = fmt.Errorf("%w: %s %d exceeds %d", ErrModelFormat, what, v, max)
	}
	return v
}

func (d *decoder) float(what string) float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.err = fmt.Errorf("%w: truncated %s", ErrModelFormat, what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *decoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.err = fmt.Errorf("%w: truncated %s", ErrModelFormat, what)
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func isFinite(fs ...float64) bool {
	for _, f := range fs {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}
