// Package surrogate implements a learned digital twin of a quantum dot
// device: a per-device model fitted from recorded probe samples that answers
// probes from memory and escalates only low-confidence cells to the live
// backend.
//
// The model has two parts. A window-aligned cell grid stores the last
// measured current per probed pixel — a local interpolator whose confidence
// decays with pixel distance to the nearest probed cell. On top of it a
// piecewise charge-stability fit (fitting.Polyline2, the same A–K–B shape
// the extraction pipeline produces) locates the transition lines from the
// stored cells; a guard band around the fitted lines is always reported as
// zero-confidence, because the lines are exactly where the device drifts and
// where a stale answer would corrupt an extraction. The division of labour
// follows from the probe economics: plateau cells are flat, already
// measured, and dominate probe counts, while line-adjacent cells are cheap
// to re-measure and carry all of the drift signal.
//
// Hybrid composes a Model over any live instrument: probes whose model
// confidence clears a threshold are served from the twin, the rest fall
// through (and, with Learn, refresh the twin). A Hybrid over a
// trace.Recorder records exactly the escalated probes, which is what makes
// surrogate extractions replayable bit-for-bit: replaying with the same
// starting model snapshot reproduces the same serve/escalate decisions, so
// the recorded sample stream is consumed in lockstep.
package surrogate

import (
	"errors"
	"fmt"
	"math"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/fitting"
	"github.com/fastvg/fastvg/internal/telemetry"
)

// DefaultThreshold is the escalation knob value substituted by callers that
// want surrogate-first probing without tuning: serve a probe from the twin
// when its confidence is at least this. Confidence is 1/(1+d) for a probe d
// pixels from the nearest stored cell (and zero inside the transition-line
// guard band), so 0.35 serves interpolations up to just over two pixels away
// and escalates anything farther.
const DefaultThreshold = 0.35

const (
	// maxInterpPx bounds the nearest-cell search radius (Chebyshev, in
	// pixels). Beyond it confidence is zero regardless of threshold.
	maxInterpPx = 2
	// guardPx is the half-width, in pixels, of the zero-confidence band
	// around the fitted transition lines. It covers the verify tolerance
	// (DefaultMaxShiftFrac, 2 px at the default 100-px window) with margin,
	// so the probes that would reveal drift always escalate live.
	guardPx = 3.0
	// guardRMSFactor widens the guard band by this multiple of the fit's
	// residual RMS: a sloppier fit claims less territory.
	guardRMSFactor = 2.0
	// minDropFrac is the smallest adjacent-cell current drop treated as a
	// transition crossing during fitting, as a fraction of the model's
	// global value range.
	minDropFrac = 0.2
	// maxFitGap is the largest pixel gap between two stored cells that
	// still counts as adjacent for transition detection; coarse-grid scans
	// leave regular gaps well under this.
	maxFitGap = 12
	// minFitCells is the fewest stored cells worth attempting a fit on.
	minFitCells = 16
)

// Fit is a fitted charge-stability shape: the piecewise-linear transition
// model and its residual RMS in millivolts.
type Fit struct {
	Model fitting.Polyline2
	RMS   float64
}

// Model is the digital twin of one device pair: a cell grid of last-measured
// currents over the pair's scan window plus an optional transition-line fit.
// A Model is not safe for concurrent use; callers serialize access per
// device (the fleet probes a pair from one goroutine at a time, the service
// locks per twin).
type Model struct {
	win     csd.Window
	vals    []float64
	filled  []bool
	nFilled int
	samples int64
	fit     *Fit
	guard   float64 // voltage half-width of the zero-confidence band
}

// New returns an empty Model over win. An empty (or unfitted) model reports
// zero confidence for every probe, so a Hybrid over it escalates everything
// — wrapping a fresh twin in a learning Hybrid is how first training
// happens.
func New(win csd.Window) *Model {
	n := win.Cols * win.Rows
	return &Model{win: win, vals: make([]float64, n), filled: make([]bool, n)}
}

// Win returns the scan window the model is aligned to.
func (m *Model) Win() csd.Window { return m.win }

// Cells returns the number of grid cells holding a measured value.
func (m *Model) Cells() int { return m.nFilled }

// Samples returns the total number of samples ever added, including
// overwrites of already-filled cells.
func (m *Model) Samples() int64 { return m.samples }

// Fitted reports whether a transition-line fit is present.
func (m *Model) Fitted() bool { return m.fit != nil }

// Line returns the fitted transition shape, if any.
func (m *Model) Line() (Fit, bool) {
	if m.fit == nil {
		return Fit{}, false
	}
	return *m.fit, true
}

// Add stores one measured sample. Samples outside the window are dropped
// (the grid cannot represent them); within it, the probed pixel's value is
// overwritten — last measurement wins, so escalated live probes refresh a
// stale twin.
func (m *Model) Add(v1, v2, current float64) {
	if v1 < m.win.V1Min || v1 > m.win.V1Max || v2 < m.win.V2Min || v2 > m.win.V2Max {
		return
	}
	idx := m.win.YOf(v2)*m.win.Cols + m.win.XOf(v1)
	if !m.filled[idx] {
		m.filled[idx] = true
		m.nFilled++
	}
	m.vals[idx] = current
	m.samples++
}

// Predict returns the twin's answer for a probe and its confidence in
// [0, 1]. Confidence is 1/(1+d) with d the pixel distance to the nearest
// stored cell (1 for an exactly-probed pixel), clamped to zero when the
// probe is outside the window, farther than maxInterpPx from any stored
// cell, inside the guard band around the fitted transition lines, or when no
// fit exists at all.
func (m *Model) Predict(v1, v2 float64) (current, confidence float64) {
	if m.fit == nil {
		return 0, 0
	}
	if v1 < m.win.V1Min || v1 > m.win.V1Max || v2 < m.win.V2Min || v2 > m.win.V2Max {
		return 0, 0
	}
	if m.fit.Model.Dist(fitting.Vec2{X: v1, Y: v2}) <= m.guard {
		return 0, 0
	}
	x, y := m.win.XOf(v1), m.win.YOf(v2)
	best, bestD2 := -1, math.MaxInt
	for dy := -maxInterpPx; dy <= maxInterpPx; dy++ {
		cy := y + dy
		if cy < 0 || cy >= m.win.Rows {
			continue
		}
		for dx := -maxInterpPx; dx <= maxInterpPx; dx++ {
			cx := x + dx
			if cx < 0 || cx >= m.win.Cols {
				continue
			}
			idx := cy*m.win.Cols + cx
			if !m.filled[idx] {
				continue
			}
			if d2 := dx*dx + dy*dy; d2 < bestD2 {
				best, bestD2 = idx, d2
			}
		}
	}
	if best < 0 {
		return 0, 0
	}
	return m.vals[best], 1 / (1 + math.Sqrt(float64(bestD2)))
}

// Fit locates the transition lines in the stored cells and installs the
// piecewise model that gates Predict. It scans rows and columns for the
// largest adjacent-cell current drop (a transition crossing), splits the
// crossing points into steep and shallow branches around an initial knee
// estimate, anchors each branch at its window edge with a robust line fit,
// and polishes the knee with the same FitKnee optimiser the extraction
// pipeline uses. On any failure the previous fit is kept; call Reset to
// discard a model wholesale.
func (m *Model) Fit() error {
	if m.nFilled < minFitCells {
		return fmt.Errorf("surrogate: only %d cells stored, need %d", m.nFilled, minFitCells)
	}
	rowPts, colPts := m.transitionPoints()
	if len(rowPts) < 2 || len(colPts) < 2 {
		return fmt.Errorf("surrogate: too few transition crossings (%d row, %d col)", len(rowPts), len(colPts))
	}
	all := append(append([]fitting.Vec2{}, rowPts...), colPts...)
	aGuess := fitting.Vec2{X: medianOf(rowPts, func(p fitting.Vec2) float64 { return p.X }), Y: m.win.V2Min}
	bGuess := fitting.Vec2{X: m.win.V1Min, Y: medianOf(colPts, func(p fitting.Vec2) float64 { return p.Y })}
	knee := fitting.InitialKnee(all, aGuess, bGuess)

	// Branch split: steep crossings sit below the knee, shallow ones left
	// of it (the polyline runs bottom edge → knee → left edge).
	var steep, shallow []fitting.Vec2
	for _, p := range rowPts {
		if p.Y < knee.Y {
			steep = append(steep, p)
		}
	}
	for _, p := range colPts {
		if p.X < knee.X {
			shallow = append(shallow, p)
		}
	}
	if len(steep) < 2 || len(shallow) < 2 {
		return errors.New("surrogate: transition crossings do not straddle the knee")
	}

	// Anchor each branch at its window edge via a robust fit; the steep
	// branch is near-vertical, so fit x as a function of y.
	swapped := make([]fitting.Vec2, len(steep))
	for i, p := range steep {
		swapped[i] = fitting.Vec2{X: p.Y, Y: p.X}
	}
	c1, d1, err := fitting.TheilSen(swapped)
	if err != nil {
		return fmt.Errorf("surrogate: steep branch: %w", err)
	}
	c2, d2, err := fitting.TheilSen(shallow)
	if err != nil {
		return fmt.Errorf("surrogate: shallow branch: %w", err)
	}
	a := fitting.Vec2{X: c1 + d1*m.win.V2Min, Y: m.win.V2Min}
	b := fitting.Vec2{X: m.win.V1Min, Y: c2 + d2*m.win.V1Min}

	pts := append(append([]fitting.Vec2{}, steep...), shallow...)
	fr, ferr := fitting.FitKnee(pts, a, b, knee)
	if ferr != nil {
		fr = fitting.FitKneeResult{Model: fitting.Polyline2{A: a, K: knee, B: b}, RMS: rmsTo(fitting.Polyline2{A: a, K: knee, B: b}, pts)}
	}
	k := fr.Model.K
	if k.X < m.win.V1Min || k.X > m.win.V1Max || k.Y < m.win.V2Min || k.Y > m.win.V2Max {
		return fmt.Errorf("surrogate: fitted knee (%.3g, %.3g) outside window", k.X, k.Y)
	}
	m.setFit(&Fit{Model: fr.Model, RMS: fr.RMS})
	return nil
}

// SetLine installs an externally measured transition shape in place of a
// cell-derived Fit — the fleet's delta recalibration re-locates the lines
// with live cross scans far fresher than the plateau cells, and recentring
// the guard band on that measurement is what keeps near-line probing live
// after the lines move. Non-finite or out-of-window shapes are rejected.
func (m *Model) SetLine(f Fit) error {
	if !isFinite(f.Model.A.X, f.Model.A.Y, f.Model.K.X, f.Model.K.Y, f.Model.B.X, f.Model.B.Y, f.RMS) || f.RMS < 0 {
		return fmt.Errorf("surrogate: invalid line shape %+v", f)
	}
	k := f.Model.K
	if k.X < m.win.V1Min || k.X > m.win.V1Max || k.Y < m.win.V2Min || k.Y > m.win.V2Max {
		return fmt.Errorf("surrogate: knee (%.3g, %.3g) outside window", k.X, k.Y)
	}
	m.setFit(&f)
	return nil
}

// Reset discards every stored cell and the fit: the twin forgets the device.
// The fleet calls it when a device is lost or a calibration fails, so a
// rearranged device retrains from live probes instead of interpolating a
// honeycomb that no longer exists.
func (m *Model) Reset() {
	for i := range m.vals {
		m.vals[i] = 0
		m.filled[i] = false
	}
	m.nFilled = 0
	m.fit = nil
	m.guard = 0
}

func (m *Model) setFit(f *Fit) {
	m.fit = f
	m.guard = guardPx*math.Max(m.win.StepV1(), m.win.StepV2()) + guardRMSFactor*f.RMS
}

// transitionPoints scans rows then columns for the largest
// nearly-adjacent-cell current drop, returning one crossing point per row
// (and per column) whose drop clears minDropFrac of the global value range.
func (m *Model) transitionPoints() (rowPts, colPts []fitting.Vec2) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, ok := range m.filled {
		if ok {
			lo = math.Min(lo, m.vals[i])
			hi = math.Max(hi, m.vals[i])
		}
	}
	minDrop := minDropFrac * (hi - lo)
	if !(minDrop > 0) {
		return nil, nil
	}
	for y := 0; y < m.win.Rows; y++ {
		prev, bestA, bestB, bestDrop := -1, 0, 0, 0.0
		for x := 0; x < m.win.Cols; x++ {
			idx := y*m.win.Cols + x
			if !m.filled[idx] {
				continue
			}
			if prev >= 0 && x-prev <= maxFitGap {
				if drop := m.vals[y*m.win.Cols+prev] - m.vals[idx]; drop > bestDrop {
					bestDrop, bestA, bestB = drop, prev, x
				}
			}
			prev = x
		}
		if bestDrop >= minDrop {
			rowPts = append(rowPts, fitting.Vec2{X: (m.win.V1At(bestA) + m.win.V1At(bestB)) / 2, Y: m.win.V2At(y)})
		}
	}
	for x := 0; x < m.win.Cols; x++ {
		prev, bestA, bestB, bestDrop := -1, 0, 0, 0.0
		for y := 0; y < m.win.Rows; y++ {
			idx := y*m.win.Cols + x
			if !m.filled[idx] {
				continue
			}
			if prev >= 0 && y-prev <= maxFitGap {
				if drop := m.vals[prev*m.win.Cols+x] - m.vals[idx]; drop > bestDrop {
					bestDrop, bestA, bestB = drop, prev, y
				}
			}
			prev = y
		}
		if bestDrop >= minDrop {
			colPts = append(colPts, fitting.Vec2{X: m.win.V1At(x), Y: (m.win.V2At(bestA) + m.win.V2At(bestB)) / 2})
		}
	}
	return rowPts, colPts
}

func rmsTo(model fitting.Polyline2, pts []fitting.Vec2) float64 {
	sum := 0.0
	for _, p := range pts {
		d := model.Dist(p)
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pts)))
}

func medianOf(pts []fitting.Vec2, get func(fitting.Vec2) float64) float64 {
	xs := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = get(p)
	}
	// Insertion sort: the slices here are one point per row/column, tiny.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// Backend is what a Hybrid escalates to: a scalar instrument that accounts
// its probes (SimInstrument, DatasetInstrument, a chain PairView, a
// trace.Recorder or trace.Replayer all qualify).
type Backend interface {
	device.Instrument
	Stats() device.Stats
}

// Hybrid serves probes surrogate-first: a probe whose model confidence is at
// least Threshold is answered by the twin, anything else escalates to Inner.
// With Learn set, escalated measurements are fed back into the model, so a
// Hybrid over an empty twin is also how the twin trains.
//
// A Threshold of zero (or a nil Model) disables the twin entirely: every
// probe passes through, making the Hybrid byte-identical to Inner — the
// property replay and the threshold-0 tests pin down.
//
// Hybrid implements only the scalar Instrument contract. Like
// trace.Recorder it deliberately hides Inner's batch fast path — the device
// batch contract makes batched and scalar probing bit-identical, and
// per-probe escalation decisions need the scalar path.
//
// Stats delegates to Inner, so probe accounting everywhere in the stack
// keeps counting live probes only; the twin's savings are Hits.
type Hybrid struct {
	Model     *Model
	Inner     Backend
	Threshold float64
	Learn     bool

	// Metrics, when non-nil, mirrors per-probe outcomes into a telemetry
	// registry. The increments and the confidence observation are atomic
	// and allocation-free, so the probe hot path stays hot; leave nil to
	// pay nothing.
	Metrics *Metrics

	hits        int
	escalations int
}

// Metrics is the vgx_surrogate_* family set, shared by every Hybrid the
// service and fleet construct (they are per-probe totals across twins,
// not per-twin series).
type Metrics struct {
	Hits        *telemetry.Counter
	Escalations *telemetry.Counter
	Confidence  *telemetry.Histogram
}

// NewMetrics registers the vgx_surrogate_* families on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Hits:        reg.Counter("vgx_surrogate_hits_total", "Probes answered by a twin (live probes saved)."),
		Escalations: reg.Counter("vgx_surrogate_escalations_total", "Probes that fell through to the live backend."),
		Confidence:  reg.Histogram("vgx_surrogate_confidence", "Model confidence of each gated probe.", telemetry.UnitBuckets),
	}
}

// GetCurrent implements device.Instrument.
func (h *Hybrid) GetCurrent(v1, v2 float64) float64 {
	if h.Threshold > 0 && h.Model != nil {
		val, conf := h.Model.Predict(v1, v2)
		if h.Metrics != nil {
			h.Metrics.Confidence.Observe(conf)
		}
		if conf >= h.Threshold {
			h.hits++
			if h.Metrics != nil {
				h.Metrics.Hits.Inc()
			}
			return val
		}
	}
	h.escalations++
	if h.Metrics != nil {
		h.Metrics.Escalations.Inc()
	}
	c := h.Inner.GetCurrent(v1, v2)
	if h.Learn && h.Model != nil {
		h.Model.Add(v1, v2, c)
	}
	return c
}

// Stats returns the wrapped backend's accounting: live probes only.
func (h *Hybrid) Stats() device.Stats { return h.Inner.Stats() }

// Hits returns the number of probes served by the twin — live probes saved.
func (h *Hybrid) Hits() int { return h.hits }

// Escalations returns the number of probes that fell through to Inner.
func (h *Hybrid) Escalations() int { return h.escalations }
