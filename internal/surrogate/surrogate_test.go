package surrogate

import (
	"bytes"
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/fitting"
	"github.com/fastvg/fastvg/internal/xrand"
)

func buildSim(t testing.TB, seed uint64) (*device.SimInstrument, csd.Window) {
	t.Helper()
	spec := device.DoubleDotSpec{Seed: seed}
	spec.FillDefaults()
	inst, win, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return inst, win
}

// trainedModel rasters the whole window through a learning Hybrid and fits.
func trainedModel(t testing.TB, inst *device.SimInstrument, win csd.Window) *Model {
	t.Helper()
	m := New(win)
	h := &Hybrid{Model: m, Inner: inst, Threshold: DefaultThreshold, Learn: true}
	for y := 0; y < win.Rows; y++ {
		for x := 0; x < win.Cols; x++ {
			h.GetCurrent(win.V1At(x), win.V2At(y))
		}
	}
	if h.Hits() != 0 {
		t.Fatalf("unfitted model served %d probes", h.Hits())
	}
	if err := m.Fit(); err != nil {
		t.Fatal(err)
	}
	return m
}

// An empty or unfitted model must never answer: surrogate-first probing of a
// fresh device degenerates to live probing plus training.
func TestUnfittedModelEscalatesEverything(t *testing.T) {
	inst, win := buildSim(t, 3)
	m := New(win)
	if _, conf := m.Predict(win.V1At(10), win.V2At(10)); conf != 0 {
		t.Fatalf("empty model confidence = %v, want 0", conf)
	}
	m.Add(win.V1At(10), win.V2At(10), inst.GetCurrent(win.V1At(10), win.V2At(10)))
	if _, conf := m.Predict(win.V1At(10), win.V2At(10)); conf != 0 {
		t.Fatalf("unfitted model confidence = %v, want 0", conf)
	}
}

// The property test pinned by ISSUE 6: a Hybrid with threshold 0 is
// byte-identical to the wrapped instrument — same currents bit for bit, same
// probe accounting — even over a trained model with Learn on.
func TestHybridThresholdZeroIdentical(t *testing.T) {
	instA, win := buildSim(t, 7)
	instB, _ := buildSim(t, 7)
	model := trainedModel(t, instA, win)

	ref, _ := buildSim(t, 7)
	h := &Hybrid{Model: model, Inner: instB, Threshold: 0, Learn: true}
	rng := xrand.New(99)
	for i := 0; i < 5000; i++ {
		v1 := win.V1Min + rng.Float64()*(win.V1Max-win.V1Min)
		v2 := win.V2Min + rng.Float64()*(win.V2Max-win.V2Min)
		want := ref.GetCurrent(v1, v2)
		got := h.GetCurrent(v1, v2)
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("probe %d (%.6f, %.6f): %x != %x", i, v1, v2, math.Float64bits(got), math.Float64bits(want))
		}
	}
	if h.Hits() != 0 {
		t.Fatalf("threshold 0 served %d probes from the twin", h.Hits())
	}
	if hs, ws := h.Stats(), ref.Stats(); hs != ws {
		t.Fatalf("stats diverged: %+v != %+v", hs, ws)
	}
}

func TestPredictConfidence(t *testing.T) {
	inst, win := buildSim(t, 7)
	m := trainedModel(t, inst, win)
	fit, ok := m.Line()
	if !ok {
		t.Fatal("no fit")
	}

	// An exactly-probed plateau pixel far from the lines: confidence 1 and
	// the stored value.
	v1, v2 := win.V1At(2), win.V2At(win.Rows-3)
	if fit.Model.Dist(fitting.Vec2{X: v1, Y: v2}) < 8*win.StepV1() {
		t.Skip("test pixel unexpectedly near the fitted line")
	}
	val, conf := m.Predict(v1, v2)
	if conf != 1 {
		t.Fatalf("probed-cell confidence = %v, want 1", conf)
	}
	if math.Float64bits(val) != math.Float64bits(inst.GetCurrent(v1, v2)) {
		t.Fatal("stored value does not match the instrument")
	}

	// On the fitted line: zero confidence (guard band).
	if _, conf := m.Predict(fit.Model.K.X, fit.Model.K.Y); conf != 0 {
		t.Fatalf("knee confidence = %v, want 0", conf)
	}
	// Outside the window: zero confidence.
	if _, conf := m.Predict(win.V1Max+1, win.V2Min); conf != 0 {
		t.Fatalf("out-of-window confidence = %v, want 0", conf)
	}
}

// The fitted transition shape must land near where the extraction pipeline
// itself puts the knee on the same device.
func TestFitLocatesLines(t *testing.T) {
	spec := device.DoubleDotSpec{Seed: 11}
	spec.FillDefaults()
	inst, win, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.Extract(csd.PixelSource{Src: inst, Win: win}, win, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantX, wantY := ref.TriplePointVoltage(win)

	m := trainedModel(t, inst, win)
	fit, _ := m.Line()
	tol := 4 * math.Max(win.StepV1(), win.StepV2())
	if math.Abs(fit.Model.K.X-wantX) > tol || math.Abs(fit.Model.K.Y-wantY) > tol {
		t.Fatalf("knee (%.3f, %.3f), want near (%.3f, %.3f)", fit.Model.K.X, fit.Model.K.Y, wantX, wantY)
	}
}

// A trained twin must serve the bulk of a repeat raster and escalate only
// the guard band around the transition lines.
func TestHybridSavesPlateauProbes(t *testing.T) {
	inst, win := buildSim(t, 7)
	m := trainedModel(t, inst, win)
	h := &Hybrid{Model: m, Inner: inst, Threshold: DefaultThreshold, Learn: true}
	for y := 0; y < win.Rows; y++ {
		for x := 0; x < win.Cols; x++ {
			h.GetCurrent(win.V1At(x), win.V2At(y))
		}
	}
	total := h.Hits() + h.Escalations()
	if total != win.Cols*win.Rows {
		t.Fatalf("accounted %d probes, want %d", total, win.Cols*win.Rows)
	}
	if frac := float64(h.Hits()) / float64(total); frac < 0.7 {
		t.Fatalf("twin served only %.0f%% of a repeat raster", 100*frac)
	}
	if h.Escalations() == 0 {
		t.Fatal("guard band escalated nothing")
	}
}

func TestReset(t *testing.T) {
	inst, win := buildSim(t, 7)
	m := trainedModel(t, inst, win)
	m.Reset()
	if m.Cells() != 0 || m.Fitted() {
		t.Fatalf("reset left %d cells, fitted=%v", m.Cells(), m.Fitted())
	}
	if _, conf := m.Predict(win.V1At(2), win.V2At(2)); conf != 0 {
		t.Fatalf("reset model confidence = %v, want 0", conf)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	inst, win := buildSim(t, 7)
	for _, m := range []*Model{New(win), trainedModel(t, inst, win)} {
		b := m.Encode()
		m2, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(m2.Encode(), b) {
			t.Fatal("re-encode changed bytes")
		}
		if m2.Cells() != m.Cells() || m2.Samples() != m.Samples() || m2.Fitted() != m.Fitted() || m2.Win() != m.Win() {
			t.Fatalf("round trip changed model: %d/%d cells, %d/%d samples", m2.Cells(), m.Cells(), m2.Samples(), m.Samples())
		}
		rng := xrand.New(5)
		for i := 0; i < 200; i++ {
			v1 := win.V1Min + rng.Float64()*(win.V1Max-win.V1Min)
			v2 := win.V2Min + rng.Float64()*(win.V2Max-win.V2Min)
			av, ac := m.Predict(v1, v2)
			bv, bc := m2.Predict(v1, v2)
			if math.Float64bits(av) != math.Float64bits(bv) || math.Float64bits(ac) != math.Float64bits(bc) {
				t.Fatalf("prediction diverged after round trip at (%v, %v)", v1, v2)
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	inst, win := buildSim(t, 7)
	b := trainedModel(t, inst, win).Encode()
	if _, err := Decode(nil); err == nil {
		t.Fatal("decoded empty input")
	}
	for _, cut := range []int{1, len(b) / 2, len(b) - 1} {
		if _, err := Decode(b[:cut]); err == nil {
			t.Fatalf("decoded %d-byte truncation", cut)
		}
	}
	if _, err := Decode(append(append([]byte{}, b...), 0xff)); err == nil {
		t.Fatal("decoded trailing garbage")
	}
}
