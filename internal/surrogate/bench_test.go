package surrogate

import (
	"testing"

	"github.com/fastvg/fastvg/internal/device"
)

// BenchmarkSurrogateProbe compares the wall cost of one twin-served probe
// against one live simulated probe (cold sensor evaluation, the honest
// comparator — on hardware the gap is the 50 ms dwell, which the virtual
// clock accounts separately). scripts/bench.sh collects both into
// BENCH_surrogate.json.
func BenchmarkSurrogateProbe(b *testing.B) {
	spec := device.DoubleDotSpec{Seed: 7}
	spec.FillDefaults()

	b.Run("twin", func(b *testing.B) {
		inst, win, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		m := New(win)
		h := &Hybrid{Model: m, Inner: inst, Threshold: DefaultThreshold, Learn: true}
		for y := 0; y < win.Rows; y++ {
			for x := 0; x < win.Cols; x++ {
				h.GetCurrent(win.V1At(x), win.V2At(y))
			}
		}
		if err := m.Fit(); err != nil {
			b.Fatal(err)
		}
		// Cycle plateau pixels the twin confidently serves.
		var pts [][2]float64
		for y := 0; y < win.Rows; y++ {
			for x := 0; x < win.Cols; x++ {
				v1, v2 := win.V1At(x), win.V2At(y)
				if _, conf := m.Predict(v1, v2); conf >= DefaultThreshold {
					pts = append(pts, [2]float64{v1, v2})
				}
			}
		}
		if len(pts) == 0 {
			b.Fatal("no twin-served pixels")
		}
		before := h.Escalations()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pts[i%len(pts)]
			h.GetCurrent(p[0], p[1])
		}
		b.StopTimer()
		if h.Escalations() != before {
			b.Fatalf("twin bench escalated %d probes", h.Escalations()-before)
		}
	})

	b.Run("sim", func(b *testing.B) {
		inst, win, err := spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		cells := win.Cols * win.Rows
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%cells == 0 {
				// A fresh instrument keeps every probe a cold sensor
				// evaluation instead of a memo lookup.
				b.StopTimer()
				inst, _, err = spec.Build()
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			inst.GetCurrent(win.V1At(i%win.Cols), win.V2At((i/win.Cols)%win.Rows))
		}
	})
}
