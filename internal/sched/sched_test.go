package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapDeterministicOrder checks Map assembles results by index, not by
// completion order, under heavy worker contention.
func TestMapDeterministicOrder(t *testing.T) {
	const n = 64
	pool := New(4)
	out := make([]int, n)
	err := pool.Map(context.Background(), n, func(_ context.Context, i int) error {
		// Later indices finish first, so completion order is roughly the
		// reverse of submission order.
		time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapBounded checks no more than Workers jobs hold slots at once.
func TestMapBounded(t *testing.T) {
	const workers = 3
	pool := New(workers)
	var running, peak atomic.Int64
	err := pool.Map(context.Background(), 24, func(context.Context, int) error {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		running.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
	st := pool.Stats()
	if st.Submitted != 24 || st.Completed != 24 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 24 submitted/completed", st)
	}
}

// TestMapLowestIndexError checks Map reports the error a sequential loop
// would have surfaced first, regardless of completion order.
func TestMapLowestIndexError(t *testing.T) {
	pool := New(8)
	errLow := errors.New("low")
	errHigh := errors.New("high")
	err := pool.Map(context.Background(), 10, func(_ context.Context, i int) error {
		switch i {
		case 2:
			time.Sleep(5 * time.Millisecond) // finishes after index 7's error
			return errLow
		case 7:
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want lowest-index error %v", err, errLow)
	}
}

// TestCancelQueued checks a task cancelled before acquiring a slot settles
// with context.Canceled and never runs.
func TestCancelQueued(t *testing.T) {
	pool := New(1)
	started := make(chan struct{})
	release := make(chan struct{})
	blocker := pool.Submit(context.Background(), func(context.Context) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	// Only submit the victim once the blocker provably holds the single
	// slot; otherwise the two tasks race for it and the victim may run.
	<-started
	ran := false
	queued := pool.Submit(context.Background(), func(context.Context) (any, error) {
		ran = true
		return nil, nil
	})
	queued.Cancel()
	if _, err := queued.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
	if _, err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled task ran")
	}
	if st := pool.Stats(); st.Cancelled != 1 {
		t.Fatalf("cancelled count = %d, want 1", st.Cancelled)
	}
}

// TestSubmitValue checks values round-trip through Task.Wait.
func TestSubmitValue(t *testing.T) {
	pool := New(2)
	task := pool.Submit(context.Background(), func(context.Context) (any, error) {
		return "ok", nil
	})
	v, err := task.Wait()
	if err != nil || v != "ok" {
		t.Fatalf("Wait = (%v, %v), want (ok, nil)", v, err)
	}
}

// TestCloseDrainsRunning checks Close waits for running jobs, releases queued
// jobs with ErrClosed and rejects later submissions.
func TestCloseDrainsRunning(t *testing.T) {
	pool := New(1)
	release := make(chan struct{})
	started := make(chan struct{})
	running := pool.Submit(context.Background(), func(context.Context) (any, error) {
		close(started)
		<-release
		return "done", nil
	})
	<-started
	queued := pool.Submit(context.Background(), func(context.Context) (any, error) {
		return nil, nil
	})

	closed := make(chan error, 1)
	go func() { closed <- pool.Close(context.Background()) }()

	// The queued job must come back with ErrClosed without ever running.
	if _, err := queued.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("queued job err = %v, want ErrClosed", err)
	}
	select {
	case err := <-closed:
		t.Fatalf("Close returned %v before the running job finished", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if v, err := running.Wait(); err != nil || v != "done" {
		t.Fatalf("running job = %v, %v; want done, nil", v, err)
	}
	if !pool.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if _, err := pool.Submit(context.Background(), func(context.Context) (any, error) {
		return nil, nil
	}).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-Close Submit err = %v, want ErrClosed", err)
	}
	// Idempotent: a second Close returns immediately.
	if err := pool.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCloseDeadline checks Close honours its context while a job is stuck.
func TestCloseDeadline(t *testing.T) {
	pool := New(1)
	release := make(chan struct{})
	started := make(chan struct{})
	pool.Submit(context.Background(), func(context.Context) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := pool.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close err = %v, want DeadlineExceeded", err)
	}
	close(release)
	// The drain completes once the job finishes.
	if err := pool.Close(context.Background()); err != nil {
		t.Fatalf("Close after release: %v", err)
	}
}
