// Package sched provides the bounded worker-pool scheduler shared by the
// extraction service (internal/service) and the evaluation harness
// (internal/evalx). It generalises the ad-hoc goroutine fan-out the harness
// used to carry: a fixed number of slots gates how many jobs run at once,
// every job gets its own cancellable context, and Map gives deterministic
// result ordering by construction — job i writes slot i, so outcomes never
// depend on scheduling order.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/fastvg/fastvg/internal/telemetry"
)

// ErrClosed is returned by Submit after the pool has been closed.
var ErrClosed = errors.New("sched: pool is closed")

// Stats is a point-in-time snapshot of a pool's accounting.
type Stats struct {
	Workers   int   `json:"workers"`   // slot count
	Running   int   `json:"running"`   // jobs currently holding a slot
	Submitted int64 `json:"submitted"` // jobs ever handed to the pool
	Completed int64 `json:"completed"` // jobs that ran to completion (any outcome)
	Failed    int64 `json:"failed"`    // completed jobs that returned an error
	Cancelled int64 `json:"cancelled"` // jobs cancelled before acquiring a slot
}

// Pool is a bounded worker pool. The zero value is not usable; use New.
// Slots are a semaphore, not resident goroutines: an idle pool costs nothing,
// and any number of jobs may be queued while only Workers run.
type Pool struct {
	sem     chan struct{}
	closeCh chan struct{} // closed by Close: queued jobs stop waiting for slots
	drained chan struct{} // closed once every slot has been reclaimed

	closed    atomic.Bool
	running   atomic.Int64
	queued    atomic.Int64
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64

	met atomic.Pointer[Metrics]
}

// Metrics mirrors the pool's accounting into a telemetry registry.
// Counters track lifecycle events, gauges the instantaneous state, and
// the two histograms queue-wait and run latency. Timing is only
// measured when metrics are attached, so an uninstrumented pool pays
// nothing beyond its existing atomics.
type Metrics struct {
	Submitted *telemetry.Counter
	Completed *telemetry.Counter
	Failed    *telemetry.Counter
	Cancelled *telemetry.Counter
	Running   *telemetry.Gauge
	Queued    *telemetry.Gauge
	QueueWait *telemetry.Histogram
	Run       *telemetry.Histogram
}

// NewMetrics registers the vgx_sched_* family set on reg.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Submitted: reg.Counter("vgx_sched_submitted_total", "Jobs handed to the pool."),
		Completed: reg.Counter("vgx_sched_completed_total", "Jobs that ran to completion (any outcome)."),
		Failed:    reg.Counter("vgx_sched_failed_total", "Completed jobs that returned an error."),
		Cancelled: reg.Counter("vgx_sched_cancelled_total", "Jobs cancelled before acquiring a slot."),
		Running:   reg.Gauge("vgx_sched_running", "Jobs currently holding a slot."),
		Queued:    reg.Gauge("vgx_sched_queued", "Jobs waiting for a slot."),
		QueueWait: reg.Histogram("vgx_sched_queue_wait_seconds", "Time from submission to slot acquisition.", telemetry.SecondsBuckets),
		Run:       reg.Histogram("vgx_sched_run_seconds", "Time a job held its slot.", telemetry.SecondsBuckets),
	}
}

// SetMetrics attaches m to the pool; nil detaches. Attach before
// serving traffic — counters only see events after attachment. The
// workers gauge, if wanted, is the caller's to register (it is
// configuration, not state).
func (p *Pool) SetMetrics(m *Metrics) { p.met.Store(m) }

// New returns a pool with the given number of slots; workers <= 0 means
// one slot per available CPU.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		sem:     make(chan struct{}, workers),
		closeCh: make(chan struct{}),
		drained: make(chan struct{}),
	}
}

// Workers returns the pool's slot count.
func (p *Pool) Workers() int { return cap(p.sem) }

// Queued returns the number of jobs waiting for a slot. It is not part
// of Stats to keep the /v1/stats wire shape stable; the load-shedding
// gate and the vgx_sched_queued gauge read it directly.
func (p *Pool) Queued() int { return int(p.queued.Load()) }

// Stats returns a snapshot of the pool's accounting.
func (p *Pool) Stats() Stats {
	return Stats{
		Workers:   cap(p.sem),
		Running:   int(p.running.Load()),
		Submitted: p.submitted.Load(),
		Completed: p.completed.Load(),
		Failed:    p.failed.Load(),
		Cancelled: p.cancelled.Load(),
	}
}

// Task is one scheduled unit of work. Wait blocks until it settles; Cancel
// aborts it if it has not yet acquired a slot (a job already running is
// allowed to finish — extractions on a physical instrument cannot be torn
// down mid-measurement).
type Task struct {
	done   chan struct{}
	cancel context.CancelFunc

	value any
	err   error
}

// Submit schedules fn on the pool. fn receives a context derived from ctx
// that is additionally cancelled by Task.Cancel. Submit never blocks; the
// job waits for a free slot in its own goroutine.
func (p *Pool) Submit(ctx context.Context, fn func(context.Context) (any, error)) *Task {
	met := p.met.Load()
	p.submitted.Add(1)
	if met != nil {
		met.Submitted.Inc()
	}
	cancelled := func() {
		p.cancelled.Add(1)
		if met != nil {
			met.Cancelled.Inc()
		}
	}
	if p.closed.Load() {
		t := &Task{done: make(chan struct{}), cancel: func() {}, err: ErrClosed}
		cancelled()
		close(t.done)
		return t
	}
	jctx, cancel := context.WithCancel(ctx)
	t := &Task{done: make(chan struct{}), cancel: cancel}
	var queuedAt time.Time
	if met != nil {
		queuedAt = time.Now()
	}
	p.queued.Add(1)
	if met != nil {
		met.Queued.Add(1)
	}
	go func() {
		defer close(t.done)
		defer cancel()
		dequeue := func() {
			p.queued.Add(-1)
			if met != nil {
				met.Queued.Add(-1)
			}
		}
		select {
		case p.sem <- struct{}{}:
			dequeue()
			// The select picks randomly when a slot and the close signal are
			// ready together; re-check so a job queued before Close can never
			// start after it.
			if p.closed.Load() {
				<-p.sem
				t.err = ErrClosed
				cancelled()
				return
			}
		case <-jctx.Done():
			dequeue()
			t.err = context.Cause(jctx)
			cancelled()
			return
		case <-p.closeCh:
			dequeue()
			t.err = ErrClosed
			cancelled()
			return
		}
		p.running.Add(1)
		var startedAt time.Time
		if met != nil {
			met.QueueWait.Observe(time.Since(queuedAt).Seconds())
			met.Running.Add(1)
			startedAt = time.Now()
		}
		defer func() {
			p.running.Add(-1)
			<-p.sem
		}()
		t.value, t.err = fn(jctx)
		p.completed.Add(1)
		if met != nil {
			met.Run.Observe(time.Since(startedAt).Seconds())
			met.Running.Add(-1)
			met.Completed.Inc()
		}
		if t.err != nil {
			p.failed.Add(1)
			if met != nil {
				met.Failed.Inc()
			}
		}
	}()
	return t
}

// Cancel aborts the task if it is still waiting for a slot and cancels the
// job context either way.
func (t *Task) Cancel() { t.cancel() }

// Closed reports whether Close has been called.
func (p *Pool) Closed() bool { return p.closed.Load() }

// Close drains the pool for shutdown: new submissions fail with ErrClosed,
// jobs still queued are released with ErrClosed, and running jobs are allowed
// to finish. Close blocks until the last running job returns its slot or ctx
// expires — the graceful-shutdown guarantee that an extraction mid-measurement
// is never torn down. Close is idempotent; concurrent callers all wait on the
// same drain.
func (p *Pool) Close(ctx context.Context) error {
	if p.closed.CompareAndSwap(false, true) {
		close(p.closeCh)
		go func() {
			// Reclaiming every slot proves no job is still running. The slots
			// are kept, so the pool stays inert after the drain.
			for i := 0; i < cap(p.sem); i++ {
				p.sem <- struct{}{}
			}
			close(p.drained)
		}()
	}
	select {
	case <-p.drained:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// Wait blocks until the task settles and returns its outcome.
func (t *Task) Wait() (any, error) {
	<-t.done
	return t.value, t.err
}

// Done returns a channel closed when the task settles.
func (t *Task) Done() <-chan struct{} { return t.done }

// Map runs fn(ctx, i) for every i in [0, n) on the pool and waits for all of
// them. Each invocation owns index i exclusively, so writing results[i]
// inside fn is race-free and the assembled output is deterministic regardless
// of scheduling. If any invocations fail, Map returns the error of the
// lowest index — the same error a sequential loop would have surfaced first.
func (p *Pool) Map(ctx context.Context, n int, fn func(context.Context, int) error) error {
	if n <= 0 {
		return nil
	}
	tasks := make([]*Task, n)
	for i := 0; i < n; i++ {
		tasks[i] = p.Submit(ctx, func(jctx context.Context) (any, error) {
			return nil, fn(jctx, i)
		})
	}
	var first error
	for _, t := range tasks {
		if _, err := t.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
