// Package autotune implements the step upstream of virtual gate extraction:
// locating a scan window that frames the few-electron charge transition
// lines the way the paper's cropped CSDs do (steep line crossing the bottom
// edge and shallow line crossing the left edge at ~65% of the extent, triple
// point inside).
//
// FindWindow coarse-rasters a broad voltage range, marks the pixels whose
// positively tilted feature gradient stands out from the noise floor,
// isolates the lowest-voltage (first-electron) transition cluster, and
// proposes a window around it. The cost is resolution² probes — at the
// default 32×32, roughly one tenth of a single full-resolution CSD.
package autotune

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/grid"
)

// Sentinel errors.
var (
	// ErrNoTransitions: no gradient structure stood out from the noise.
	ErrNoTransitions = errors.New("autotune: no charge transitions found in the search range")
)

// Config tunes the search; the zero value uses the defaults below.
type Config struct {
	Resolution    int     // coarse raster resolution per axis; default 32
	GradientSigma float64 // detection threshold in noise-σ units; default 8
	ClusterFrac   float64 // first-electron cluster depth as a fraction of the (v1+v2) spread; default 0.35
	CrossFrac     float64 // target edge-crossing fraction of the proposed window; default 0.65
	SpanScale     float64 // proposed span as a multiple of the cluster extent; default 1.9
}

func (c *Config) fillDefaults() {
	if c.Resolution == 0 {
		c.Resolution = 32
	}
	if c.GradientSigma == 0 {
		c.GradientSigma = 8
	}
	if c.ClusterFrac == 0 {
		c.ClusterFrac = 0.35
	}
	if c.CrossFrac == 0 {
		c.CrossFrac = 0.65
	}
	if c.SpanScale == 0 {
		c.SpanScale = 1.9
	}
}

// Result reports the proposed window and the evidence behind it.
type Result struct {
	Window     csd.Window   // proposed scan window (square, Pixels unset by caller choice)
	Candidates []grid.Point // coarse pixels with significant gradient
	Cluster    []grid.Point // the first-electron subset used for the proposal
	Coarse     *grid.Grid   // the coarse raster (diagnostics)
}

// FindWindow searches [v1Min, v1Max] × [v2Min, v2Max] for the first-electron
// transition region and proposes a pixels×pixels scan window framing it.
func FindWindow(src csd.CurrentGetter, v1Min, v1Max, v2Min, v2Max float64, pixels int, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	if pixels < 16 {
		return nil, fmt.Errorf("autotune: output resolution %d too small", pixels)
	}
	coarseWin := csd.Window{
		V1Min: v1Min, V1Max: v1Max,
		V2Min: v2Min, V2Max: v2Max,
		Cols: cfg.Resolution, Rows: cfg.Resolution,
	}
	if err := coarseWin.Validate(); err != nil {
		return nil, err
	}
	g, err := csd.Acquire(src, coarseWin)
	if err != nil {
		return nil, err
	}
	res := &Result{Coarse: g}

	// Feature-gradient map (Algorithm 2's positively tilted gradient).
	grad := grid.New(g.W, g.H)
	grad.Apply(func(x, y int, _ float64) float64 {
		c := g.At(x, y)
		return (c - g.AtClamped(x+1, y)) + (c - g.AtClamped(x+1, y+1))
	})

	// Noise floor: the median absolute gradient is dominated by flat-region
	// pixels; transitions must stand well above it.
	abs := make([]float64, 0, g.W*g.H)
	for _, v := range grad.Data() {
		abs = append(abs, math.Abs(v))
	}
	sort.Float64s(abs)
	floor := abs[len(abs)/2]
	thresh := cfg.GradientSigma * math.Max(floor, 1e-12)
	if maxAbs := abs[len(abs)-1]; maxAbs < thresh {
		return res, fmt.Errorf("%w: max gradient %.3g below threshold %.3g", ErrNoTransitions, maxAbs, thresh)
	}
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			if grad.At(x, y) > thresh {
				res.Candidates = append(res.Candidates, grid.Point{X: x, Y: y})
			}
		}
	}
	if len(res.Candidates) < 4 {
		return res, fmt.Errorf("%w: only %d candidate pixels", ErrNoTransitions, len(res.Candidates))
	}

	// Keep the lowest-voltage cluster: the first-electron lines. Later
	// electron additions repeat at higher (v1+v2).
	minSum := math.Inf(1)
	maxSum := math.Inf(-1)
	for _, p := range res.Candidates {
		s := float64(p.X + p.Y)
		minSum = math.Min(minSum, s)
		maxSum = math.Max(maxSum, s)
	}
	depth := cfg.ClusterFrac * math.Max(maxSum-minSum, 1)
	for _, p := range res.Candidates {
		if float64(p.X+p.Y) <= minSum+depth {
			res.Cluster = append(res.Cluster, p)
		}
	}

	// Bounding box of the cluster in voltage space.
	loX, hiX := math.Inf(1), math.Inf(-1)
	loY, hiY := math.Inf(1), math.Inf(-1)
	for _, p := range res.Cluster {
		v1 := coarseWin.V1At(p.X)
		v2 := coarseWin.V2At(p.Y)
		loX = math.Min(loX, v1)
		hiX = math.Max(hiX, v1)
		loY = math.Min(loY, v2)
		hiY = math.Max(hiY, v2)
	}
	extent := math.Max(hiX-loX, hiY-loY)
	extent = math.Max(extent, 2*coarseWin.StepV1()) // at least a few coarse pixels
	span := cfg.SpanScale * extent

	// Place the window so the cluster centre (the line band) sits at the
	// target crossing fraction from the window origin.
	cx := (loX + hiX) / 2
	cy := (loY + hiY) / 2
	res.Window = csd.Window{
		V1Min: cx - cfg.CrossFrac*span,
		V2Min: cy - cfg.CrossFrac*span,
		Cols:  pixels, Rows: pixels,
	}
	res.Window.V1Max = res.Window.V1Min + span
	res.Window.V2Max = res.Window.V2Min + span
	return res, nil
}
