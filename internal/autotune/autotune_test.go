package autotune

import (
	"errors"
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

// broadDevice builds a simulated double dot whose first-electron lines cross
// the axes near 30 mV, with the second-electron lines ~50 mV beyond — so a
// broad scan sees both and the finder must isolate the first set.
func broadDevice(t *testing.T) *device.DoubleDot {
	t.Helper()
	phys, err := physics.FromGeometry(physics.Geometry{
		SteepSlope:   -8,
		ShallowSlope: -0.12,
		SteepPoint:   [2]float64{30, 0},
		ShallowPoint: [2]float64{0, 28},
		EC1:          4, EC2: 4, ECm: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &device.DoubleDot{Phys: phys, Sens: sensor.DefaultDoubleDot(0.47, 0.45, 240)}
}

func TestFindWindowFramesFirstLines(t *testing.T) {
	dev := broadDevice(t)
	inst := device.NewSimInstrument(dev, device.DefaultDwell, 0.5, 0.5)
	res, err := FindWindow(inst, 0, 120, 0, 120, 100, Config{})
	if err != nil {
		t.Fatalf("FindWindow: %v", err)
	}
	w := res.Window
	// The first-electron steep line must cross the proposed window's bottom
	// edge between 40% and 90% of its width.
	steep := dev.Phys.SteepLine()
	xFrac := (steep.V1At(w.V2Min) - w.V1Min) / (w.V1Max - w.V1Min)
	if xFrac < 0.4 || xFrac > 0.9 {
		t.Errorf("steep line crosses bottom edge at fraction %.2f of window [%v,%v]",
			xFrac, w.V1Min, w.V1Max)
	}
	shallow := dev.Phys.ShallowLine()
	yFrac := (shallow.V2At(w.V1Min) - w.V2Min) / (w.V2Max - w.V2Min)
	if yFrac < 0.4 || yFrac > 0.9 {
		t.Errorf("shallow line crosses left edge at fraction %.2f", yFrac)
	}
	// The triple point must be inside.
	v1t, v2t, err := dev.Phys.TriplePoint()
	if err != nil {
		t.Fatal(err)
	}
	if v1t < w.V1Min || v1t > w.V1Max || v2t < w.V2Min || v2t > w.V2Max {
		t.Errorf("triple point (%v,%v) outside proposed window", v1t, v2t)
	}
}

func TestFindWindowThenExtract(t *testing.T) {
	// The full upstream-downstream flow: find the window on a broad range,
	// then run the fast extraction inside it.
	dev := broadDevice(t)
	finder := device.NewSimInstrument(dev, device.DefaultDwell, 0.5, 0.5)
	res, err := FindWindow(finder, 0, 120, 0, 120, 100, Config{})
	if err != nil {
		t.Fatal(err)
	}
	win := res.Window
	inst := device.NewSimInstrument(dev, device.DefaultDwell, win.StepV1(), win.StepV2())
	ext, err := core.Extract(csd.PixelSource{Src: inst, Win: win}, win, core.Config{})
	if err != nil {
		t.Fatalf("extraction inside proposed window: %v", err)
	}
	if e := math.Abs(math.Atan(ext.SteepSlope)-math.Atan(-8)) * 180 / math.Pi; e > 3.5 {
		t.Errorf("steep slope %v (Δ%.2f°)", ext.SteepSlope, e)
	}
	if e := math.Abs(math.Atan(ext.ShallowSlope)-math.Atan(-0.12)) * 180 / math.Pi; e > 3.5 {
		t.Errorf("shallow slope %v (Δ%.2f°)", ext.ShallowSlope, e)
	}
}

func TestFindWindowCost(t *testing.T) {
	dev := broadDevice(t)
	inst := device.NewSimInstrument(dev, device.DefaultDwell, 0.5, 0.5)
	if _, err := FindWindow(inst, 0, 120, 0, 120, 100, Config{}); err != nil {
		t.Fatal(err)
	}
	if probes := inst.Stats().UniqueProbes; probes > 33*33 {
		t.Errorf("window search probed %d points, want ≤ %d", probes, 33*33)
	}
}

type flatGetter struct{}

func (flatGetter) GetCurrent(v1, v2 float64) float64 { return 1 }

func TestFindWindowNoTransitions(t *testing.T) {
	_, err := FindWindow(flatGetter{}, 0, 100, 0, 100, 100, Config{})
	if !errors.Is(err, ErrNoTransitions) {
		t.Errorf("err = %v, want ErrNoTransitions", err)
	}
}

func TestFindWindowValidation(t *testing.T) {
	if _, err := FindWindow(flatGetter{}, 0, 100, 0, 100, 8, Config{}); err == nil {
		t.Error("accepted tiny output resolution")
	}
	if _, err := FindWindow(flatGetter{}, 100, 0, 0, 100, 64, Config{}); err == nil {
		t.Error("accepted inverted voltage range")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fillDefaults()
	if c.Resolution != 32 || c.CrossFrac != 0.65 || c.SpanScale != 1.9 {
		t.Errorf("defaults = %+v", c)
	}
}
