// Package tsdb is the in-process time-series store layered over the
// internal/telemetry registry: a scraper samples every registered
// series into fixed-size, delta-encoded ring buffers, and a small query
// evaluator (query.go) answers instant and range questions over the
// retained window — last/avg/min/max/sum, counter rates, histogram
// quantiles. It is what turns the registry's "what is the value now"
// into "how has it moved", with zero dependencies and bounded memory.
//
// Design constraints, in order:
//
//  1. Bounded memory. Every series is a ring of Capacity points; a
//     point costs 12 bytes (a uint32 millisecond delta against the
//     previous point plus a float64 value). A fully-wired daemon's
//     ~500-sample registry at the default 512-point capacity retains
//     its recent history in ~3 MB, forever, no matter the uptime.
//  2. Caller-owned clock. Scrape takes the timestamp. A daemon's
//     background loop passes wall-derived seconds; the determinism
//     tests and fleet-tick hooks pass the virtual clock, so two
//     processes replaying the same tick schedule hold byte-identical
//     databases. The DB never reads time itself.
//  3. Deterministic reads. Series iterate in sorted-key order and
//     query results are emitted in that same order, so marshalled
//     query responses from identical databases are byte-identical —
//     the property the worker-count tests pin.
package tsdb

import (
	"math"
	"sort"
	"sync"

	"github.com/fastvg/fastvg/internal/telemetry"
)

// Options tunes a DB; the zero value is production-reasonable.
type Options struct {
	// Capacity is the number of points each series ring retains;
	// default 512. With a 10 s scrape cadence that is ~85 minutes of
	// history per series.
	Capacity int
}

// DB holds one ring series per registry sample. All methods are safe
// for concurrent use.
type DB struct {
	reg *telemetry.Registry
	cap int

	mu      sync.Mutex
	series  map[string]*Series
	order   []string // sorted keys, rebuilt on insert
	dirty   bool     // order needs re-sorting
	lastMS  int64    // timestamp of the newest scrape
	scrapes int64
}

// New builds an empty DB scraping reg.
func New(reg *telemetry.Registry, opt Options) *DB {
	if opt.Capacity <= 0 {
		opt.Capacity = 512
	}
	return &DB{reg: reg, cap: opt.Capacity, series: make(map[string]*Series)}
}

// Series is one sample's ring of (timestamp, value) points. Timestamps
// are stored delta-encoded: an absolute int64 millisecond stamp for the
// oldest retained point, then one uint32 millisecond delta per
// successor — 12 bytes a point, bounded by construction.
type Series struct {
	Key    string // full sample key: name{sig}
	Name   string // sample name (family plus histogram suffix)
	Sig    string // label signature, "" when unlabelled
	Family string // registered family name
	Type   string // counter | gauge | histogram

	firstMS int64 // absolute timestamp of the oldest point
	lastMS  int64 // absolute timestamp of the newest point
	head    int   // ring index of the oldest point
	n       int
	dt      []uint32 // per-slot delta (ms) from the previous point; oldest slot's is unused
	val     []float64
}

func newSeries(p telemetry.SamplePoint, capacity int) *Series {
	return &Series{Key: p.Key(), Name: p.Name, Sig: p.Sig, Family: p.Family, Type: p.Type,
		dt: make([]uint32, capacity), val: make([]float64, capacity)}
}

// append records one point. Timestamps must be non-decreasing; a stale
// or duplicate stamp is nudged one millisecond past the newest point so
// the delta encoding never needs a sign.
func (s *Series) append(ms int64, v float64) {
	if s.n == 0 {
		s.firstMS, s.lastMS = ms, ms
		s.dt[0], s.val[0] = 0, v
		s.n = 1
		return
	}
	d := ms - s.lastMS
	if d <= 0 {
		d = 1
		ms = s.lastMS + 1
	}
	if d > math.MaxUint32 {
		d = math.MaxUint32 // ~49 days between scrapes: clamp, keep monotonicity
		ms = s.lastMS + d
	}
	if s.n < len(s.dt) {
		i := (s.head + s.n) % len(s.dt)
		s.dt[i], s.val[i] = uint32(d), v
		s.n++
	} else {
		// Overwrite the oldest slot with the newest point; the slot after
		// it becomes the oldest, and its delta folds into firstMS.
		next := (s.head + 1) % len(s.dt)
		s.firstMS += int64(s.dt[next])
		s.dt[s.head], s.val[s.head] = uint32(d), v
		s.head = next
	}
	s.lastMS = ms
}

// Point is one decoded sample point. T is seconds on the scrape clock.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// points decodes the ring, oldest first, keeping only points with
// timestamp >= fromMS. Pass math.MinInt64 for everything.
func (s *Series) points(fromMS int64) []Point {
	out := make([]Point, 0, s.n)
	ms := s.firstMS
	for k := 0; k < s.n; k++ {
		i := (s.head + k) % len(s.dt)
		if k > 0 {
			ms += int64(s.dt[i])
		}
		if ms >= fromMS {
			out = append(out, Point{T: float64(ms) / 1000, V: s.val[i]})
		}
	}
	return out
}

// Len returns the number of retained points.
func (s *Series) Len() int { return s.n }

// Scrape samples every registry series at the given time (seconds on
// the caller's clock — wall-derived or virtual) and appends one point
// per sample. New samples (a CounterVec label seen for the first time)
// grow the DB; series absent from this snapshot keep their history.
func (db *DB) Scrape(atS float64) {
	snap := db.reg.Snapshot()
	ms := int64(math.Round(atS * 1000))
	db.mu.Lock()
	defer db.mu.Unlock()
	if ms <= db.lastMS {
		ms = db.lastMS + 1 // scrapes share the monotonic axis across series
	}
	db.lastMS = ms
	db.scrapes++
	for _, p := range snap {
		key := p.Key()
		sr := db.series[key]
		if sr == nil {
			sr = newSeries(p, db.cap)
			db.series[key] = sr
			db.order = append(db.order, key)
			db.dirty = true
		}
		sr.append(ms, p.Value)
	}
}

// sortedLocked returns the series keys in sorted order.
func (db *DB) sortedLocked() []string {
	if db.dirty {
		sort.Strings(db.order)
		db.dirty = false
	}
	return db.order
}

// Stats reports the DB's own accounting.
type Stats struct {
	Series      int     `json:"series"`
	Points      int     `json:"points"`
	Scrapes     int64   `json:"scrapes"`
	LastScrapeS float64 `json:"lastScrapeS"`
}

// Stats returns a snapshot of the DB accounting.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	st := Stats{Series: len(db.series), Scrapes: db.scrapes, LastScrapeS: float64(db.lastMS) / 1000}
	for _, s := range db.series {
		st.Points += s.n
	}
	return st
}

// SeriesDump is one series' recent points, for the debug bundle.
type SeriesDump struct {
	Series string  `json:"series"`
	Type   string  `json:"type"`
	Points []Point `json:"points"`
}

// Dump returns every series' newest points (up to maxPoints each, 0 for
// all), in sorted key order — the flight-recorder view of the database.
func (db *DB) Dump(maxPoints int) []SeriesDump {
	db.mu.Lock()
	defer db.mu.Unlock()
	keys := db.sortedLocked()
	out := make([]SeriesDump, 0, len(keys))
	for _, k := range keys {
		s := db.series[k]
		pts := s.points(math.MinInt64)
		if maxPoints > 0 && len(pts) > maxPoints {
			pts = pts[len(pts)-maxPoints:]
		}
		out = append(out, SeriesDump{Series: k, Type: s.Type, Points: pts})
	}
	return out
}
