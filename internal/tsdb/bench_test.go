package tsdb

import (
	"fmt"
	"testing"

	"github.com/fastvg/fastvg/internal/telemetry"
)

// benchRegistry builds a registry of roughly the size a fully wired
// daemon registers (~163 samples): a mix of counters, gauges and
// histograms, some labelled.
func benchRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	for i := 0; i < 40; i++ {
		reg.Counter(fmt.Sprintf("vgx_bench_c%02d_total", i), "c")
	}
	for i := 0; i < 40; i++ {
		reg.Gauge(fmt.Sprintf("vgx_bench_g%02d", i), "g")
	}
	// 12 histograms x 7 samples (5 buckets + sum + count) = 84 samples.
	for i := 0; i < 12; i++ {
		h := reg.Histogram(fmt.Sprintf("vgx_bench_h%02d_seconds", i), "h",
			[]float64{0.001, 0.01, 0.1, 1})
		h.Observe(0.05)
	}
	return reg
}

func BenchmarkRingAppend(b *testing.B) {
	s := newSeries(telemetry.SamplePoint{Name: "x", Family: "x", Type: "gauge"}, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.append(int64(i)*100, float64(i))
	}
}

func BenchmarkScrape(b *testing.B) {
	reg := benchRegistry()
	db := New(reg, Options{Capacity: 512})
	db.Scrape(0) // allocate all series up front
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Scrape(float64(i+1) * 0.1)
	}
}

func BenchmarkQueryRate(b *testing.B) {
	reg := benchRegistry()
	db := New(reg, Options{Capacity: 512})
	for i := 0; i < 512; i++ {
		db.Scrape(float64(i) * 10)
	}
	q := Query{Fn: FnRate, Series: "vgx_bench_c00_total", WindowS: 600}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryQuantile(b *testing.B) {
	reg := benchRegistry()
	db := New(reg, Options{Capacity: 512})
	for i := 0; i < 512; i++ {
		db.Scrape(float64(i) * 10)
	}
	q := Query{Fn: FnQuantile, Series: "vgx_bench_h00_seconds", WindowS: 600, Q: 0.99}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}
