package tsdb

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/fastvg/fastvg/internal/telemetry"
)

// The query evaluator. Queries are structured, not a string language:
// a function, a series selector, and a lookback window. The selector is
// either a full sample key (`vgx_service_inflight`,
// `vgx_service_jobs_total{kind="extract"}`) matching exactly one
// series, or a bare sample name matching every labelled series of that
// name. The quantile function instead takes a histogram *family* name
// (optionally with a label filter) and evaluates over the family's
// `_bucket` series. All evaluation happens at the DB's newest scrape
// time, looking back WindowS seconds; results are emitted in sorted
// series-key order so identical databases marshal byte-identically.

// Query function names.
const (
	FnLast     = "last"     // newest value in the window
	FnAvg      = "avg"      // mean of point values in the window
	FnMin      = "min"      // minimum point value in the window
	FnMax      = "max"      // maximum point value in the window
	FnSum      = "sum"      // sum of point values in the window
	FnRate     = "rate"     // per-second increase across the window (counters)
	FnQuantile = "quantile" // histogram quantile of the window's bucket increases
	FnRange    = "range"    // raw points in the window, no reduction
)

// Query is one evaluation request.
type Query struct {
	Fn      string  `json:"fn"`
	Series  string  `json:"series"`
	WindowS float64 `json:"windowS,omitempty"` // lookback seconds; 0 = full retention
	Q       float64 `json:"q,omitempty"`       // quantile in [0,1], fn=quantile only
}

// Value is a float64 that marshals NaN and ±Inf as null — JSON has no
// spelling for them, and a query over an empty window is not an error.
type Value float64

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	f := float64(v)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(f)
}

// UnmarshalJSON maps null back to NaN, so clients (cmd/vgxtop) decode
// query responses losslessly.
func (v *Value) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*v = Value(math.NaN())
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*v = Value(f)
	return nil
}

// SeriesValue is one matched series' reduced value.
type SeriesValue struct {
	Series string `json:"series"`
	Value  Value  `json:"value"`
}

// Result is a query's answer: the echoed request, the evaluation
// timestamp, and either reduced per-series values or (fn=range) raw
// points.
type Result struct {
	Fn      string        `json:"fn"`
	Series  string        `json:"series"`
	WindowS float64       `json:"windowS,omitempty"`
	Q       float64       `json:"q,omitempty"`
	AtS     float64       `json:"atS"`
	Values  []SeriesValue `json:"values,omitempty"`
	Range   []SeriesDump  `json:"range,omitempty"`
}

// Query evaluates q against the database. An unknown function or empty
// selector is an error; a selector matching nothing returns an empty
// result (the series may simply not have been scraped yet).
func (db *DB) Query(q Query) (*Result, error) {
	if q.Series == "" {
		return nil, fmt.Errorf("tsdb: query needs a series selector")
	}
	if q.WindowS < 0 {
		return nil, fmt.Errorf("tsdb: negative window %v", q.WindowS)
	}
	switch q.Fn {
	case FnLast, FnAvg, FnMin, FnMax, FnSum, FnRate, FnRange:
	case FnQuantile:
	default:
		return nil, fmt.Errorf("tsdb: unknown query fn %q", q.Fn)
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	res := &Result{Fn: q.Fn, Series: q.Series, WindowS: q.WindowS, AtS: float64(db.lastMS) / 1000}
	fromMS := int64(math.MinInt64)
	if q.WindowS > 0 {
		fromMS = db.lastMS - int64(math.Round(q.WindowS*1000))
	}

	if q.Fn == FnQuantile {
		res.Q = q.Q
		res.Values = db.quantileLocked(q.Series, fromMS, q.Q)
		return res, nil
	}

	for _, key := range db.sortedLocked() {
		s := db.series[key]
		if !selectorMatches(q.Series, s) {
			continue
		}
		pts := s.points(fromMS)
		if len(pts) == 0 {
			continue
		}
		if q.Fn == FnRange {
			res.Range = append(res.Range, SeriesDump{Series: key, Type: s.Type, Points: pts})
			continue
		}
		res.Values = append(res.Values, SeriesValue{Series: key, Value: Value(reduce(q.Fn, pts))})
	}
	return res, nil
}

// selectorMatches reports whether sel selects s: an exact key match
// when sel carries a label signature, otherwise a sample-name match
// covering every labelling of that name.
func selectorMatches(sel string, s *Series) bool {
	if strings.ContainsRune(sel, '{') {
		return sel == s.Key
	}
	return sel == s.Name
}

// reduce folds the window's points with the given function.
func reduce(fn string, pts []Point) float64 {
	switch fn {
	case FnLast:
		return pts[len(pts)-1].V
	case FnAvg:
		sum := 0.0
		for _, p := range pts {
			sum += p.V
		}
		return sum / float64(len(pts))
	case FnMin:
		m := pts[0].V
		for _, p := range pts[1:] {
			m = math.Min(m, p.V)
		}
		return m
	case FnMax:
		m := pts[0].V
		for _, p := range pts[1:] {
			m = math.Max(m, p.V)
		}
		return m
	case FnSum:
		sum := 0.0
		for _, p := range pts {
			sum += p.V
		}
		return sum
	case FnRate:
		if len(pts) < 2 {
			return math.NaN()
		}
		first, last := pts[0], pts[len(pts)-1]
		dt := last.T - first.T
		if dt <= 0 {
			return math.NaN()
		}
		dv := last.V - first.V
		if dv < 0 {
			dv = 0 // counter reset (restart); the tsdb restarts with it, but stay safe
		}
		return dv / dt
	}
	return math.NaN()
}

// quantileLocked evaluates a histogram quantile for the family named by
// sel (optionally `family{labels}` pinning one label set). For each
// distinct non-le label set it computes the per-bucket increase over
// the window and interpolates; when the window shows no increase it
// falls back to the all-time cumulative distribution, so a freshly
// scraped or idle histogram still answers.
func (db *DB) quantileLocked(sel string, fromMS int64, p float64) []SeriesValue {
	family := sel
	wantRest := ""
	pinned := false
	if i := strings.IndexByte(sel, '{'); i >= 0 && strings.HasSuffix(sel, "}") {
		family = sel[:i]
		wantRest = sel[i+1 : len(sel)-1]
		pinned = true
	}

	// Discover the distinct non-le label sets first, then evaluate each
	// group with its buckets re-sorted by numeric bound — lexical sig
	// order puts le="10" before le="2", so key order cannot pair them.
	seen := map[string]bool{}
	var rests []string
	for _, key := range db.sortedLocked() {
		s := db.series[key]
		if s.Family != family || s.Name != family+"_bucket" {
			continue
		}
		rest, _, ok := splitLE(s.Sig)
		if !ok || (pinned && rest != wantRest) || seen[rest] {
			continue
		}
		seen[rest] = true
		rests = append(rests, rest)
	}
	sort.Strings(rests)

	out := make([]SeriesValue, 0, len(rests))
	for _, rest := range rests {
		type bkt struct {
			le       float64
			inc, all float64
			hasInc   bool
		}
		var bkts []bkt
		for _, key := range db.sortedLocked() {
			s := db.series[key]
			if s.Family != family || s.Name != family+"_bucket" {
				continue
			}
			r, le, ok := splitLE(s.Sig)
			if !ok || r != rest {
				continue
			}
			pts := s.points(fromMS)
			if len(pts) == 0 {
				continue
			}
			b := bkt{le: le, all: pts[len(pts)-1].V}
			if len(pts) >= 2 {
				b.inc = pts[len(pts)-1].V - pts[0].V
				if b.inc < 0 {
					b.inc = 0
				}
				b.hasInc = true
			}
			bkts = append(bkts, b)
		}
		if len(bkts) == 0 {
			continue
		}
		sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
		bounds := make([]float64, 0, len(bkts)-1)
		inc := make([]float64, 0, len(bkts))
		all := make([]float64, 0, len(bkts))
		useInc := true
		totalInc := 0.0
		for _, b := range bkts {
			if !math.IsInf(b.le, 1) {
				bounds = append(bounds, b.le)
			}
			inc = append(inc, b.inc)
			all = append(all, b.all)
			if !b.hasInc {
				useInc = false
			}
			totalInc = b.inc // cumulative: the last (+Inf) bucket holds the total
		}
		cum := all
		if useInc && totalInc > 0 {
			cum = inc
		}
		v := telemetry.QuantileFromBuckets(bounds, cum, p)
		name := family
		if rest != "" {
			name = family + "{" + rest + "}"
		}
		out = append(out, SeriesValue{Series: name, Value: Value(v)})
	}
	return out
}

// splitLE strips the `le="..."` pair out of a bucket series' label
// signature, returning the remaining signature and the parsed bound.
func splitLE(sig string) (rest string, le float64, ok bool) {
	segs := splitSig(sig)
	kept := segs[:0]
	found := false
	for _, seg := range segs {
		if v, isLE := strings.CutPrefix(seg, `le="`); isLE && strings.HasSuffix(v, `"`) {
			f, err := strconv.ParseFloat(strings.TrimSuffix(v, `"`), 64)
			if err != nil {
				return "", 0, false
			}
			le, found = f, true
			continue
		}
		kept = append(kept, seg)
	}
	if !found {
		return "", 0, false
	}
	return strings.Join(kept, ","), le, true
}

// splitSig splits a label signature on top-level commas, respecting
// quoted (and backslash-escaped) label values.
func splitSig(sig string) []string {
	if sig == "" {
		return nil
	}
	var out []string
	start, inQuote, escaped := 0, false, false
	for i := 0; i < len(sig); i++ {
		c := sig[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\' && inQuote:
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, sig[start:i])
			start = i + 1
		}
	}
	out = append(out, sig[start:])
	return out
}
