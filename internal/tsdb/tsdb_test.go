package tsdb

import (
	"encoding/json"
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/telemetry"
)

func testRegistry() (*telemetry.Registry, *telemetry.Counter, *telemetry.Gauge, *telemetry.Histogram) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("vgx_test_jobs_total", "jobs")
	g := reg.Gauge("vgx_test_inflight", "inflight")
	h := reg.Histogram("vgx_test_seconds", "latency", []float64{0.1, 1, 10})
	return reg, c, g, h
}

func TestRingAppendAndEvict(t *testing.T) {
	s := newSeries(telemetry.SamplePoint{Name: "x", Family: "x", Type: "gauge"}, 4)
	for i := 0; i < 10; i++ {
		s.append(int64(i*1000), float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	pts := s.points(math.MinInt64)
	want := []Point{{6, 6}, {7, 7}, {8, 8}, {9, 9}}
	if len(pts) != len(want) {
		t.Fatalf("points = %+v, want %+v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("points[%d] = %+v, want %+v", i, pts[i], want[i])
		}
	}
	// Window filter keeps only newer points.
	if got := s.points(8000); len(got) != 2 || got[0].T != 8 {
		t.Errorf("points(8000) = %+v, want last two", got)
	}
}

func TestRingMonotonicClamp(t *testing.T) {
	s := newSeries(telemetry.SamplePoint{Name: "x", Family: "x", Type: "gauge"}, 8)
	s.append(5000, 1)
	s.append(4000, 2) // stale stamp: nudged to 5001
	s.append(5001, 3) // duplicate: nudged to 5002
	pts := s.points(math.MinInt64)
	want := []float64{5, 5.001, 5.002}
	for i, w := range want {
		if pts[i].T != w {
			t.Errorf("pts[%d].T = %v, want %v", i, pts[i].T, w)
		}
	}
}

func TestScrapeAndLast(t *testing.T) {
	reg, c, g, h := testRegistry()
	db := New(reg, Options{Capacity: 16})
	c.Add(3)
	g.Set(2)
	h.Observe(0.5)
	db.Scrape(10)
	c.Add(2)
	db.Scrape(20)

	res, err := db.Query(Query{Fn: FnLast, Series: "vgx_test_jobs_total"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || float64(res.Values[0].Value) != 5 {
		t.Fatalf("last = %+v, want 5", res.Values)
	}
	if res.AtS != 20 {
		t.Errorf("AtS = %v, want 20", res.AtS)
	}
	st := db.Stats()
	if st.Scrapes != 2 || st.LastScrapeS != 20 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueryFunctions(t *testing.T) {
	reg, c, g, _ := testRegistry()
	db := New(reg, Options{Capacity: 64})
	for i := 1; i <= 4; i++ {
		c.Add(10) // 10, 20, 30, 40
		g.Set(float64(i))
		db.Scrape(float64(i * 10)) // t = 10, 20, 30, 40
	}
	cases := []struct {
		fn, series string
		window     float64
		want       float64
	}{
		{FnLast, "vgx_test_inflight", 0, 4},
		{FnMin, "vgx_test_inflight", 0, 1},
		{FnMax, "vgx_test_inflight", 0, 4},
		{FnAvg, "vgx_test_inflight", 0, 2.5},
		{FnSum, "vgx_test_inflight", 0, 10},
		{FnRate, "vgx_test_jobs_total", 0, 1},    // (40-10)/(40-10)
		{FnMax, "vgx_test_inflight", 15, 4},      // window [25,40]: points 3,4
		{FnMin, "vgx_test_inflight", 15, 3},      // t=30 is inside the window
		{FnRate, "vgx_test_jobs_total", 10.5, 1}, // two points
	}
	for _, tc := range cases {
		res, err := db.Query(Query{Fn: tc.fn, Series: tc.series, WindowS: tc.window})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Values) != 1 {
			t.Fatalf("%s(%s,%v): values = %+v", tc.fn, tc.series, tc.window, res.Values)
		}
		if got := float64(res.Values[0].Value); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s(%s,%v) = %v, want %v", tc.fn, tc.series, tc.window, got, tc.want)
		}
	}

	// Range returns the raw points.
	res, err := db.Query(Query{Fn: FnRange, Series: "vgx_test_inflight", WindowS: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Range) != 1 || len(res.Range[0].Points) != 2 {
		t.Fatalf("range = %+v, want 2 points", res.Range)
	}

	// No match is empty, not an error; bad fn is an error.
	if res, err := db.Query(Query{Fn: FnLast, Series: "vgx_nope"}); err != nil || len(res.Values) != 0 {
		t.Errorf("no-match query = %+v, %v", res, err)
	}
	if _, err := db.Query(Query{Fn: "median", Series: "vgx_test_inflight"}); err == nil {
		t.Error("unknown fn accepted")
	}
	if _, err := db.Query(Query{Fn: FnLast, Series: ""}); err == nil {
		t.Error("empty selector accepted")
	}
}

func TestQueryLabelledSelector(t *testing.T) {
	reg := telemetry.NewRegistry()
	cv := reg.CounterVec("vgx_test_kinds_total", "k", "kind")
	db := New(reg, Options{})
	cv.With("a").Add(1)
	cv.With("b").Add(2)
	db.Scrape(1)

	res, _ := db.Query(Query{Fn: FnLast, Series: "vgx_test_kinds_total"})
	if len(res.Values) != 2 {
		t.Fatalf("bare name matched %d series, want 2: %+v", len(res.Values), res.Values)
	}
	if res.Values[0].Series != `vgx_test_kinds_total{kind="a"}` {
		t.Errorf("order: %+v", res.Values)
	}
	res, _ = db.Query(Query{Fn: FnLast, Series: `vgx_test_kinds_total{kind="b"}`})
	if len(res.Values) != 1 || float64(res.Values[0].Value) != 2 {
		t.Fatalf("exact key = %+v", res.Values)
	}
}

func TestQuantileOverWindow(t *testing.T) {
	reg, _, _, h := testRegistry()
	db := New(reg, Options{})
	// First window: slow observations only.
	for i := 0; i < 10; i++ {
		h.Observe(5) // (1,10] bucket
	}
	db.Scrape(10)
	// Second window: fast observations.
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // (0,0.1]
	}
	db.Scrape(20)

	// Over the whole retention the increase is dominated by the fast obs.
	res, err := db.Query(Query{Fn: FnQuantile, Series: "vgx_test_seconds", Q: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 {
		t.Fatalf("values = %+v", res.Values)
	}
	got := float64(res.Values[0].Value)
	if got > 0.1 {
		t.Errorf("p50 over both scrapes = %v, want <= 0.1", got)
	}

	// A single-scrape window has no increase: falls back to the all-time
	// cumulative distribution rather than returning nothing.
	res, err = db.Query(Query{Fn: FnQuantile, Series: "vgx_test_seconds", WindowS: 1, Q: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || math.IsNaN(float64(res.Values[0].Value)) {
		t.Fatalf("single-point quantile = %+v, want fallback value", res.Values)
	}
}

func TestQuantileLabelledHistogram(t *testing.T) {
	reg := telemetry.NewRegistry()
	hv := reg.HistogramVec("vgx_test_lat_seconds", "l", []float64{1, 2}, "kind")
	db := New(reg, Options{})
	hv.With("fast").Observe(0.5)
	hv.With("slow").Observe(1.5)
	db.Scrape(1)

	res, err := db.Query(Query{Fn: FnQuantile, Series: "vgx_test_lat_seconds", Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 {
		t.Fatalf("values = %+v, want one per kind", res.Values)
	}
	if res.Values[0].Series != `vgx_test_lat_seconds{kind="fast"}` {
		t.Errorf("order: %+v", res.Values)
	}
	if v := float64(res.Values[0].Value); v > 1 {
		t.Errorf("fast p100 = %v, want <= 1", v)
	}
	if v := float64(res.Values[1].Value); v <= 1 {
		t.Errorf("slow p100 = %v, want > 1", v)
	}

	// Pinning one label set narrows to that group.
	res, err = db.Query(Query{Fn: FnQuantile, Series: `vgx_test_lat_seconds{kind="slow"}`, Q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || res.Values[0].Series != `vgx_test_lat_seconds{kind="slow"}` {
		t.Fatalf("pinned = %+v", res.Values)
	}
}

func TestScrapeMonotonicAcrossCalls(t *testing.T) {
	reg, _, g, _ := testRegistry()
	db := New(reg, Options{})
	g.Set(1)
	db.Scrape(10)
	db.Scrape(5) // stale clock: still lands after the first scrape
	res, _ := db.Query(Query{Fn: FnRange, Series: "vgx_test_inflight"})
	pts := res.Range[0].Points
	if len(pts) != 2 || pts[1].T <= pts[0].T {
		t.Fatalf("points = %+v, want strictly increasing", pts)
	}
}

func TestDumpAndJSONDeterminism(t *testing.T) {
	build := func() *DB {
		reg, c, g, h := testRegistry()
		db := New(reg, Options{Capacity: 8})
		for i := 1; i <= 20; i++ {
			c.Add(1)
			g.Set(float64(i % 3))
			h.Observe(float64(i) * 0.01)
			db.Scrape(float64(i))
		}
		return db
	}
	a, b := build(), build()
	ja, _ := json.Marshal(a.Dump(0))
	jb, _ := json.Marshal(b.Dump(0))
	if string(ja) != string(jb) {
		t.Fatal("identical scrape schedules produced different dumps")
	}
	for _, q := range []Query{
		{Fn: FnLast, Series: "vgx_test_jobs_total"},
		{Fn: FnRate, Series: "vgx_test_jobs_total", WindowS: 5},
		{Fn: FnQuantile, Series: "vgx_test_seconds", Q: 0.9},
		{Fn: FnRange, Series: "vgx_test_inflight", WindowS: 3},
	} {
		ra, err := a.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		rb, _ := b.Query(q)
		ba, _ := json.Marshal(ra)
		bb, _ := json.Marshal(rb)
		if string(ba) != string(bb) {
			t.Fatalf("query %+v not byte-identical:\n%s\n%s", q, ba, bb)
		}
	}

	// Dump point cap keeps the newest points.
	d := a.Dump(2)
	for _, s := range d {
		if len(s.Points) > 2 {
			t.Fatalf("dump(2) kept %d points", len(s.Points))
		}
	}
}

func TestValueMarshalsNaNAsNull(t *testing.T) {
	b, err := json.Marshal(SeriesValue{Series: "s", Value: Value(math.NaN())})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"series":"s","value":null}` {
		t.Fatalf("marshal = %s", b)
	}
}

func TestSplitLE(t *testing.T) {
	rest, le, ok := splitLE(`kind="fast",le="0.25"`)
	if !ok || rest != `kind="fast"` || le != 0.25 {
		t.Fatalf("splitLE = %q, %v, %v", rest, le, ok)
	}
	rest, le, ok = splitLE(`le="+Inf"`)
	if !ok || rest != "" || !math.IsInf(le, 1) {
		t.Fatalf("splitLE(+Inf) = %q, %v, %v", rest, le, ok)
	}
	if _, _, ok := splitLE(`kind="fast"`); ok {
		t.Error("splitLE without le succeeded")
	}
}
