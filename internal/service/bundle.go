package service

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"runtime"
	"runtime/debug"
	"time"
)

// The flight-recorder bundle: GET /debug/bundle tars everything a
// postmortem needs into one self-contained artifact — a metrics
// exposition snapshot, the recent tsdb windows, active + historical
// alerts, the journaled span trees, fleet and service accounting, and
// build info — so triaging a sick daemon starts from one download
// instead of a scavenger hunt across endpoints that may already be
// gone.

// bundleInfo is the bundle's build/config manifest.
type bundleInfo struct {
	GoVersion   string    `json:"goVersion"`
	Module      string    `json:"module,omitempty"`
	VCSRevision string    `json:"vcsRevision,omitempty"`
	VCSTime     string    `json:"vcsTime,omitempty"`
	CapturedAt  time.Time `json:"capturedAt"`
	UptimeS     float64   `json:"uptimeS"`
	Workers     int       `json:"workers"`
	TelemetryOn bool      `json:"telemetryOn"`
	Durable     bool      `json:"durable"`
	MaxQueue    int       `json:"maxQueueDepth"`
	AlertsOn    bool      `json:"alertsOn"`
}

// bundleSpanCap bounds the span trees included in a bundle — the
// newest trees by hash order; the journal retains the rest.
const bundleSpanCap = 32

// WriteBundle streams the debug bundle as a gzipped tar. Every entry is
// best-effort: a subsystem that cannot serialise is skipped rather than
// sinking the whole artifact.
func (s *Service) WriteBundle(w io.Writer) error {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	now := time.Now()
	add := func(name string, data []byte) error {
		if err := tw.WriteHeader(&tar.Header{
			Name: "vgx-bundle/" + name, Mode: 0o644, Size: int64(len(data)), ModTime: now,
		}); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	addJSON := func(name string, v any) error {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return nil // skip the entry, keep the bundle
		}
		return add(name, b)
	}

	info := bundleInfo{
		GoVersion:   runtime.Version(),
		CapturedAt:  now,
		UptimeS:     time.Since(s.started).Seconds(),
		Workers:     s.pool.Stats().Workers,
		TelemetryOn: s.telemetryOn,
		Durable:     s.store != nil,
		MaxQueue:    s.maxQueue,
		AlertsOn:    s.obs != nil && s.obs.engine != nil,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Module = bi.Main.Path
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				info.VCSRevision = kv.Value
			case "vcs.time":
				info.VCSTime = kv.Value
			}
		}
	}

	var err error
	fail := func(e error) {
		if err == nil {
			err = e
		}
	}
	fail(addJSON("build.json", info))
	fail(add("metrics.txt", []byte(s.metrics.reg.Expose())))
	fail(addJSON("health.json", s.Health()))
	fail(addJSON("stats.json", s.Stats()))
	fail(addJSON("fleet.json", s.fleet.Status()))
	if s.obs != nil {
		fail(addJSON("tsdb.json", map[string]any{
			"stats":  s.obs.db.Stats(),
			"series": s.obs.db.Dump(128),
		}))
		if s.obs.engine != nil {
			fail(addJSON("alerts.json", map[string]any{
				"alerts":  s.obs.engine.Statuses(),
				"firing":  s.obs.engine.Firing(),
				"history": s.obs.engine.History(0),
			}))
		}
	}
	if hashes := s.SpanHashes(); len(hashes) > 0 {
		if len(hashes) > bundleSpanCap {
			hashes = hashes[len(hashes)-bundleSpanCap:]
		}
		var buf bytes.Buffer
		for _, h := range hashes {
			if sp, ok := s.SpanTree(h); ok {
				buf.WriteString(h + "\n")
				sp.Render(&buf)
				buf.WriteByte('\n')
			}
		}
		fail(add("spans.txt", buf.Bytes()))
	}
	if e := tw.Close(); e != nil && err == nil {
		err = e
	}
	if e := gz.Close(); e != nil && err == nil {
		err = e
	}
	return err
}
