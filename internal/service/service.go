package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/fastvg/fastvg/internal/alert"
	"github.com/fastvg/fastvg/internal/autotune"
	"github.com/fastvg/fastvg/internal/baseline"
	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/evalx"
	"github.com/fastvg/fastvg/internal/fleet"
	"github.com/fastvg/fastvg/internal/imaging"
	"github.com/fastvg/fastvg/internal/infogain"
	"github.com/fastvg/fastvg/internal/qflow"
	"github.com/fastvg/fastvg/internal/rays"
	"github.com/fastvg/fastvg/internal/sched"
	"github.com/fastvg/fastvg/internal/store"
	"github.com/fastvg/fastvg/internal/telemetry"
	"github.com/fastvg/fastvg/internal/trace"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// Config tunes a Service; the zero value is production-reasonable.
type Config struct {
	Workers    int // extraction worker-pool slots; default one per CPU
	CacheSize  int // result-cache capacity in entries; default 1024
	JobHistory int // max retained finished async job records; default 4096

	// Fleet tunes the fleet calibration manager (staleness thresholds,
	// probe budget, check cadence); the zero value uses fleet defaults.
	Fleet fleet.Policy

	// DataDir, when set, makes the service durable: cacheable results and
	// fleet calibration state are journaled to an internal/store journal
	// under this directory, and a restarted service warm-starts its result
	// cache and restores its fleet from it.
	DataDir string
	// RecordTraces, with DataDir set, writes a content-addressed probe
	// trace of every executed extraction under DataDir/traces; cmd/vgxreplay
	// re-executes them offline. Recording routes probing through the scalar
	// path (bit-identical to the batch paths by contract, but without their
	// parallel speed).
	RecordTraces bool
	// CompactEvery overrides the journal's appends-between-compactions
	// cadence; 0 uses the store default.
	CompactEvery int

	// Telemetry, when set, registers every metric family on the given
	// registry instead of a private one — embedders that expose one
	// /metrics endpoint for several components share a registry this way.
	Telemetry *telemetry.Registry
	// DisableTelemetry turns off the timed instrumentation (per-task pool
	// latency, job latency histograms, span recording, per-probe surrogate
	// accounting). Counters keep working — /v1/stats reads them — but the
	// probe and task hot paths run exactly as they would without the
	// telemetry subsystem. Used by the overhead benchmarks.
	DisableTelemetry bool
	// MaxQueueDepth sheds load: when more than this many submissions are
	// waiting for a worker slot, new extractions fail fast with
	// ErrOverloaded (HTTP 429) instead of queueing. Cache hits and
	// coalesced joins are still served. 0 means never shed.
	MaxQueueDepth int

	// ScrapeInterval is the cadence of the background loop sampling the
	// metric registry into the in-process tsdb (and evaluating alerts);
	// 0 uses the 10s default, negative disables the loop entirely —
	// scrapes then happen only on fleet ticks and explicit ScrapeNow
	// calls, which is how the determinism tests drive the tsdb on the
	// virtual clock.
	ScrapeInterval time.Duration
	// TSDBPoints is the per-series ring capacity of the tsdb; 0 uses the
	// tsdb default (512 points, ~12 bytes each).
	TSDBPoints int
	// AlertRules replaces the default alert catalogue
	// (alert.DefaultRules); nil keeps the default, an empty non-nil
	// slice runs no rules.
	AlertRules []alert.Rule
	// DisableAlerts turns off rule evaluation entirely; the tsdb keeps
	// scraping.
	DisableAlerts bool

	// InstanceID, when set, prefixes every minted job and session ID
	// ("s3-job-000001", "s3-sess-0001"). The shard router leans on this:
	// IDs carry the shard that minted them, so routing a job poll or a
	// session request needs no shared table — just the prefix.
	InstanceID string
	// EmuDwellScale, when positive, holds each job's worker slot for an
	// extra EmuDwellScale × (virtual experiment seconds) of wall time
	// after the extraction computes — emulating an instrument-attached
	// node where probe dwell is real. Results are byte-identical with it
	// on or off; the shard throughput benchmarks use it to reproduce the
	// dwell-limited serving regime the paper targets.
	EmuDwellScale float64
}

// ErrOverloaded rejects new extractions when the worker-pool queue is at
// Config.MaxQueueDepth; the API layer maps it to 429 with a Retry-After.
var ErrOverloaded = errors.New("service: overloaded, queue depth limit reached")

// Service is the extraction server core: it schedules jobs on a bounded
// worker pool, deduplicates identical work through the result cache, and
// owns instruments through the registry.
type Service struct {
	pool       *sched.Pool
	cache      *resultCache
	reg        *Registry
	fleet      *fleet.Manager
	store      *store.Store // nil when not durable
	traceDir   string       // empty when not recording traces
	started    time.Time
	jobHistory int
	instanceID string  // Config.InstanceID: minted-ID prefix, "" outside a shard
	emuDwell   float64 // Config.EmuDwellScale

	// metrics is the registered metric surface (see metrics.go); always
	// present. telemetryOn gates the timed parts — latency histograms,
	// span recording, per-probe surrogate accounting — while the counters
	// behind /v1/stats run unconditionally.
	metrics     *serviceMetrics
	telemetryOn bool
	maxQueue    int // shed threshold; 0 = never

	// obs is the self-watching layer: tsdb + alert engine + scrape loop
	// (see obs.go); always present after New.
	obs *observability

	// twins is the surrogate twin registry (see surrogate.go); twinMu guards
	// the map only — each twin has its own job-duration mutex.
	twinMu sync.Mutex
	twins  map[string]*twin

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string // submission order, for listing
	nextID int
}

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCancelled JobStatus = "cancelled"
)

// job is the service's internal record of an async submission.
type job struct {
	id       string
	req      Request
	hash     string
	cancel   context.CancelFunc
	finished chan struct{} // closed after the final status is recorded

	mu     sync.Mutex
	status JobStatus
	result *Result
	errMsg string
}

// terminal reports whether the job reached a final state.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusDone || j.status == StatusFailed || j.status == StatusCancelled
}

// JobView is a serialisable job snapshot.
type JobView struct {
	ID     string    `json:"id"`
	Hash   string    `json:"hash"`
	Status JobStatus `json:"status"`
	Kind   Kind      `json:"kind"`
	Error  string    `json:"error,omitempty"`
	Result *Result   `json:"result,omitempty"`
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID:     j.id,
		Hash:   j.hash,
		Status: j.status,
		Kind:   j.req.Kind,
		Error:  j.errMsg,
		Result: j.result,
	}
}

// Stats aggregates the service's accounting.
type Stats struct {
	Cache     CacheStats     `json:"cache"`
	Scheduler sched.Stats    `json:"scheduler"`
	Jobs      map[string]int `json:"jobs"`     // job count per status
	Sessions  int            `json:"sessions"` // open sessions
	// Surrogate aggregates the twin registry (models, serving counters).
	Surrogate SurrogateStats `json:"surrogate"`
	// MethodProbes reports executed probes per extraction method
	// (fast/adaptive/rays/infogain/...) across scalar and chain jobs.
	MethodProbes map[string]int64 `json:"methodProbes,omitempty"`
	// Store reports the journal accounting when the service is durable.
	Store *store.Stats `json:"store,omitempty"`
	// PersistErrs counts journal/trace writes that failed; results were
	// still served (durability is best-effort per entry, never blocking).
	PersistErrs int64 `json:"persistErrs,omitempty"`
}

// New builds a Service. The registry loads the benchmark suite definitions;
// no CSDs are generated until jobs need them. With Config.DataDir set the
// journal is opened (recovering a torn tail if the last process died
// mid-append), the result cache is warm-started from the persisted entries,
// and the fleet manager restores its per-device calibration state.
func New(cfg Config) (*Service, error) {
	reg, err := NewRegistry()
	if err != nil {
		return nil, err
	}
	history := cfg.JobHistory
	if history <= 0 {
		history = 4096
	}
	treg := cfg.Telemetry
	if treg == nil {
		treg = telemetry.NewRegistry()
	}
	m := newServiceMetrics(treg)
	pool := sched.New(cfg.Workers)
	telemetryOn := !cfg.DisableTelemetry
	if telemetryOn {
		pool.SetMetrics(m.sched)
	}
	s := &Service{
		pool:        pool,
		cache:       newResultCache(cfg.CacheSize, m),
		reg:         reg,
		fleet:       fleet.New(pool, cfg.Fleet),
		started:     time.Now(),
		jobHistory:  history,
		instanceID:  cfg.InstanceID,
		emuDwell:    cfg.EmuDwellScale,
		metrics:     m,
		telemetryOn: telemetryOn,
		maxQueue:    cfg.MaxQueueDepth,
		jobs:        make(map[string]*job),
		twins:       make(map[string]*twin),
	}
	reg.setIDPrefix(cfg.InstanceID)
	m.attachReaders(pool, s.cache)
	if telemetryOn {
		s.fleet.AttachTelemetry(m.fleetTelemetry())
	}
	if cfg.DataDir != "" {
		st, err := store.Open(cfg.DataDir, store.Options{CompactEvery: cfg.CompactEvery})
		if err != nil {
			return nil, err
		}
		if telemetryOn {
			st.SetMetrics(m.store)
		}
		// Warm-start the cache oldest-first so the LRU order matches the
		// journal's write order; entries past the cache capacity evict in
		// that same order. Unreadable entries (a future format, a partial
		// hand edit) are skipped, not fatal.
		for _, rec := range st.Records(store.KindCacheEntry) {
			var cr cacheRecord
			if json.Unmarshal(rec.Data, &cr) != nil || cr.Result == nil {
				continue
			}
			s.cache.seed(rec.Key, cr.Result)
		}
		s.restoreTwins(st)
		if err := s.fleet.AttachStore(st); err != nil {
			st.Close()
			return nil, err
		}
		s.store = st
		if cfg.RecordTraces {
			s.traceDir = filepath.Join(cfg.DataDir, "traces")
		}
	} else if cfg.RecordTraces {
		return nil, errors.New("service: RecordTraces requires DataDir")
	}
	if err := s.initObs(cfg); err != nil {
		if s.store != nil {
			s.store.Close()
		}
		return nil, err
	}
	return s, nil
}

// Registry exposes the instrument registry (sessions, benchmarks).
func (s *Service) Registry() *Registry { return s.reg }

// Telemetry exposes the metric registry backing GET /metrics, so
// embedders can register their own families alongside the service's.
func (s *Service) Telemetry() *telemetry.Registry { return s.metrics.reg }

// Fleet exposes the fleet calibration manager. Fleet measurement work runs
// on the same worker pool as interactive extraction jobs, so a monitoring
// tick and a batch of API jobs share the service's bounded slots.
func (s *Service) Fleet() *fleet.Manager { return s.fleet }

// Close drains the service for shutdown: the worker pool stops accepting
// jobs and Close waits (bounded by ctx) for running extractions to finish,
// then the session registry is emptied and the journal (if any) is flushed
// to stable storage and closed. Queued jobs settle as cancelled. The
// journal is closed even when the drain times out — everything appended so
// far must reach stable storage regardless (a straggler extraction that
// finishes after the store closed just counts a persist error).
func (s *Service) Close(ctx context.Context) error {
	s.stopObs()
	errDrain := s.pool.Close(ctx)
	s.reg.CloseAll()
	if s.store != nil {
		return errors.Join(errDrain, s.store.Close())
	}
	return errDrain
}

// Health is the liveness snapshot served at /v1/healthz.
type Health struct {
	OK       bool    `json:"ok"`
	Draining bool    `json:"draining"` // Close has begun: no new work is accepted
	UptimeS  float64 `json:"uptimeS"`
	Workers  int     `json:"workers"`
	Running  int     `json:"running"`
	Sessions int     `json:"sessions"`
	Fleet    int     `json:"fleet"` // registered fleet devices
}

// Health reports liveness and drain state.
func (s *Service) Health() Health {
	ps := s.pool.Stats()
	return Health{
		OK:       !s.pool.Closed(),
		Draining: s.pool.Closed(),
		UptimeS:  time.Since(s.started).Seconds(),
		Workers:  ps.Workers,
		Running:  ps.Running,
		Sessions: s.reg.SessionCount(),
		Fleet:    s.fleet.DeviceCount(),
	}
}

// Stats returns a snapshot of cache, scheduler and job accounting.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	counts := make(map[string]int)
	for _, j := range s.jobs {
		counts[string(j.view().Status)]++
	}
	s.mu.Unlock()
	st := Stats{
		Cache:        s.cache.Stats(),
		Scheduler:    s.pool.Stats(),
		Jobs:         counts,
		Sessions:     s.reg.SessionCount(),
		Surrogate:    s.surrogateStats(),
		MethodProbes: s.metrics.methodProbes.Snapshot(),
		PersistErrs:  s.metrics.persistErrs.Value(),
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.Store = &ss
	}
	return st
}

// Run executes one request synchronously through the cache and worker pool
// and returns its result. Identical concurrent Runs coalesce onto one
// extraction.
func (s *Service) Run(ctx context.Context, req Request) (*Result, error) {
	nreq, err := req.Normalized()
	if err != nil {
		return nil, err
	}
	hash, err := hashNormalized(nreq)
	if err != nil {
		return nil, err
	}
	return s.execute(ctx, nreq, hash, nil)
}

// execute runs a normalized request: through the cache for cacheable
// targets, directly otherwise; the actual extraction always runs inside a
// worker-pool slot. Worker slots are held only while an extraction runs —
// cache-hit and coalesced callers never occupy one, so waiting on another
// caller's flight can never starve the flight of the slot it needs.
// onStart, if non-nil, fires when the extraction itself begins (it does not
// fire for cache hits or coalesced joins).
func (s *Service) execute(ctx context.Context, nreq Request, hash string, onStart func()) (*Result, error) {
	runPooled := func() (*Result, error) {
		if err := s.admit(); err != nil {
			return nil, err
		}
		v, err := s.pool.Submit(ctx, func(jctx context.Context) (any, error) {
			if onStart != nil {
				onStart()
			}
			res, err := s.runJob(jctx, nreq, hash)
			if err == nil {
				// Still inside the slot: an emulated instrument node is busy
				// for the dwell, exactly like the hardware it stands in for.
				err = s.emulateDwell(jctx, res)
			}
			return res, err
		}).Wait()
		if err != nil {
			return nil, err
		}
		return v.(*Result), nil
	}
	if nreq.Kind == KindChain {
		// Chain jobs are the planner's coordinator, not a unit of extraction:
		// the planner submits the N−1 pair extractions to the worker pool
		// itself. Holding a slot while waiting on those slots could deadlock
		// a one-worker pool, so the coordinator runs slotless — only its
		// pairs occupy workers.
		runPooled = func() (*Result, error) {
			if s.pool.Closed() {
				return nil, sched.ErrClosed
			}
			if err := s.admit(); err != nil {
				return nil, err
			}
			if onStart != nil {
				onStart()
			}
			return s.runJob(ctx, nreq, hash)
		}
	}
	if !nreq.Cacheable() {
		return runPooled()
	}
	res, served, err := s.cache.Do(ctx, hash, runPooled)
	if err != nil {
		return nil, err
	}
	if !served && s.store != nil {
		// This caller ran the extraction (coalesced waiters see served):
		// journal the fresh entry so a restarted service serves it from
		// cache. Persistence failures never fail the request — the result
		// is correct either way — but they are counted and surfaced.
		s.persistResult(nreq, hash, res)
	}
	if served {
		// Stamp the retrieval-specific flag on a copy; the cached value is
		// shared across callers and must stay immutable.
		c := *res
		c.Cached = true
		return &c, nil
	}
	return res, nil
}

// emulateDwell sleeps Config.EmuDwellScale × the result's virtual
// experiment time, bounded by ctx. A no-op at the default scale of 0.
func (s *Service) emulateDwell(ctx context.Context, res *Result) error {
	if s.emuDwell <= 0 || res == nil || res.ExperimentS <= 0 {
		return nil
	}
	d := time.Duration(s.emuDwell * res.ExperimentS * float64(time.Second))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit schedules a request asynchronously and returns a job view
// immediately; poll Job or block on Wait for the outcome.
func (s *Service) Submit(ctx context.Context, req Request) (JobView, error) {
	nreq, err := req.Normalized()
	if err != nil {
		return JobView{}, err
	}
	hash, err := hashNormalized(nreq)
	if err != nil {
		return JobView{}, err
	}
	// Shed at submission so the caller sees the 429, but only when the
	// request would actually occupy a queue slot — a cached result is
	// served regardless of load.
	if _, cached := s.cache.Get(hash); !cached || !nreq.Cacheable() {
		if err := s.admit(); err != nil {
			return JobView{}, err
		}
	}
	jctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	j := &job{req: nreq, hash: hash, status: StatusQueued, cancel: cancel,
		finished: make(chan struct{})}
	s.mu.Lock()
	s.nextID++
	j.id = fmt.Sprintf("job-%06d", s.nextID)
	if s.instanceID != "" {
		j.id = s.instanceID + "-" + j.id
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	// Snapshot before the goroutine races ahead: callers always see the job
	// as submitted, even if a tiny extraction finishes immediately.
	view := j.view()
	go func() {
		res, err := s.execute(jctx, nreq, hash, func() {
			j.mu.Lock()
			j.status = StatusRunning
			j.mu.Unlock()
		})
		j.mu.Lock()
		switch {
		case errors.Is(err, context.Canceled):
			j.status = StatusCancelled
			j.errMsg = err.Error()
		case err != nil:
			j.status = StatusFailed
			j.errMsg = err.Error()
		default:
			j.status = StatusDone
			j.result = res
		}
		j.mu.Unlock()
		close(j.finished)
		s.pruneJobs()
	}()
	return view, nil
}

// pruneJobs drops the oldest finished job records once the history exceeds
// its cap, so a long-running daemon's job table stays bounded (the result
// cache keeps serving pruned jobs' outcomes by hash). Unfinished jobs are
// never pruned.
func (s *Service) pruneJobs() {
	s.mu.Lock()
	defer s.mu.Unlock()
	excess := len(s.order) - s.jobHistory
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job returns a snapshot of an async job.
func (s *Service) Job(id string) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs lists all jobs in submission order.
func (s *Service) Jobs() []JobView {
	s.mu.Lock()
	order := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(order))
	for _, id := range order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.view())
	}
	return out
}

// Wait blocks until job id settles or ctx is done.
func (s *Service) Wait(ctx context.Context, id string) (JobView, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobView{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.finished:
		return j.view(), nil
	case <-ctx.Done():
		return JobView{}, context.Cause(ctx)
	}
}

// Cancel aborts a queued job; a job already extracting finishes (the result
// still lands in the cache for future requests). Reports whether the job
// exists.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// BatchItem is one outcome of a Batch call; exactly one of Result and Error
// is set.
type BatchItem struct {
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// Batch executes requests concurrently on the worker pool and returns
// outcomes in request order — deterministic regardless of scheduling.
// Identical requests within (or across) batches are served once and
// deduplicated through the cache.
func (s *Service) Batch(ctx context.Context, reqs []Request) []BatchItem {
	out := make([]BatchItem, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			res, err := s.Run(ctx, req)
			if err != nil {
				out[i].Error = err.Error()
				return
			}
			out[i].Result = res
		}(i, req)
	}
	wg.Wait()
	return out
}

// Table1Requests builds the paper's full evaluation as a batch: every suite
// benchmark under both the fast method and the Hough baseline, fast first,
// in benchmark order.
func Table1Requests() []Request {
	reqs := make([]Request, 0, 2*SuiteSize)
	for idx := 1; idx <= SuiteSize; idx++ {
		reqs = append(reqs,
			Request{Kind: KindFast, Benchmark: idx},
			Request{Kind: KindBaseline, Benchmark: idx},
		)
	}
	return reqs
}

// admit applies the load-shedding gate: callers about to occupy or queue
// for worker slots fail fast with ErrOverloaded once the queue is at the
// configured depth. Cache hits and coalesced joins never reach this —
// served results stay served under overload.
func (s *Service) admit() error {
	if s.maxQueue > 0 && s.pool.Queued() >= s.maxQueue {
		s.metrics.shed.Inc()
		return ErrOverloaded
	}
	return nil
}

// runJob wraps one job execution in the telemetry envelope: the in-flight
// gauge and per-kind counters always; the latency histogram, live-metric
// context and span tree when telemetry is on. Spans are journaled under
// the request hash as soon as the job settles.
func (s *Service) runJob(ctx context.Context, nreq Request, hash string) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := s.metrics
	m.inflight.Add(1)
	var start time.Time
	if s.telemetryOn {
		start = time.Now()
		ctx = withLiveMetrics(ctx, m)
	}
	var sp *telemetry.Span
	if s.spansOn() {
		attrs := []telemetry.Attr{{K: "kind", V: string(nreq.Kind)}, {K: "hash", V: shortHash(hash)}}
		if id := RequestIDFrom(ctx); id != "" {
			attrs = append(attrs, telemetry.Attr{K: "req_id", V: id})
		}
		sp = telemetry.StartSpan("job", attrs...)
		ctx = telemetry.ContextWithSpan(ctx, sp)
	}
	res, err := s.runJobKind(ctx, nreq, hash)
	m.inflight.Add(-1)
	m.jobs.With(string(nreq.Kind)).Inc()
	if err != nil {
		m.jobErrors.Inc()
	}
	if s.telemetryOn {
		m.jobSeconds.With(string(nreq.Kind)).Observe(time.Since(start).Seconds())
	}
	if sp != nil {
		sp.End()
		if err != nil {
			sp.AddAttr(telemetry.Attr{K: "error", V: err.Error()})
		} else {
			sp.SetVirtual(secondsToNS(res.ExperimentS))
			sp.AddAttr(telemetry.AttrInt("probes", int64(res.Probes)))
		}
		s.journalSpan(hash, sp)
	}
	return res, err
}

// runJobKind executes one normalized request against its instrument. It is
// the only place extraction pipelines are invoked.
func (s *Service) runJobKind(ctx context.Context, nreq Request, hash string) (*Result, error) {
	res := &Result{
		Kind:      nreq.Kind,
		Benchmark: nreq.Benchmark,
		Session:   nreq.Session,
		Hash:      hash,
	}
	switch {
	case nreq.ChainSim != nil:
		if err := s.runChain(ctx, nreq, hash, res); err != nil {
			return nil, err
		}
	case nreq.Benchmark != 0:
		inst, b, err := s.reg.Benchmark(nreq.Benchmark)
		if err != nil {
			return nil, err
		}
		if err := s.runInstrumented(ctx, nreq, hash, inst, b.Window, &b.Truth, res); err != nil {
			return nil, err
		}
	case nreq.Sim != nil:
		inst, win, err := nreq.Sim.Build()
		if err != nil {
			return nil, err
		}
		truth := qflow.Truth{SteepSlope: nreq.Sim.SteepSlope, ShallowSlope: nreq.Sim.ShallowSlope}
		run := s.runInstrumented
		if sur := nreq.Sim.Surrogate; sur != nil && sur.Threshold > 0 {
			run = s.runSurrogate
		}
		if err := run(ctx, nreq, hash, inst, win, &truth, res); err != nil {
			return nil, err
		}
	default:
		sess, ok := s.reg.Session(nreq.Session)
		if !ok {
			return nil, fmt.Errorf("service: unknown session %q", nreq.Session)
		}
		truth := qflow.Truth{SteepSlope: sess.spec.SteepSlope, ShallowSlope: sess.spec.ShallowSlope}
		err := sess.withInstrument(func(inst *device.SimInstrument, win csd.Window) error {
			return s.runInstrumented(ctx, nreq, hash, inst, win, &truth, res)
		})
		if err != nil {
			return nil, err
		}
	}
	s.countMethodProbes(res)
	return res, nil
}

// countMethodProbes folds one executed result into the per-method probe
// accounting (vgx_service_probes_total{method}): chain jobs attribute each
// escalation attempt to its method, scalar jobs their whole probe count to
// the kind's method. Cache hits count nothing — the family reflects real
// instrument work.
func (s *Service) countMethodProbes(res *Result) {
	vec := s.metrics.methodProbes
	if res.Chain != nil {
		for i := range res.Chain.Pairs {
			for _, att := range res.Chain.Pairs[i].Attempts {
				vec.With(string(att.Method)).Add(int64(att.Probes))
			}
		}
		return
	}
	method := string(res.Kind)
	if res.Kind == KindVerify {
		method = string(KindFast) // a verify job's extraction is the fast method
	}
	vec.With(method).Add(int64(res.Probes))
}

// runInstrumented executes the request's pipeline against inst, recording a
// probe trace around it when trace recording is on. The recorder exposes
// only the scalar probing contract, so the pipelines fall back to per-probe
// calls — bit-identical to the batch paths by the internal/device contract.
func (s *Service) runInstrumented(ctx context.Context, nreq Request, hash string, inst accountant, win csd.Window, truth *qflow.Truth, res *Result) error {
	if s.traceDir == "" {
		return runPipelines(ctx, nreq, inst, win, truth, res)
	}
	rec := trace.NewRecorder(inst)
	if err := runPipelines(ctx, nreq, rec, win, truth, res); err != nil {
		return err
	}
	if err := s.writeTrace(rec, nreq, hash, win, truth, res, nil); err != nil {
		s.metrics.persistErrs.Inc()
	}
	return nil
}

// accountant unifies the instruments' cost tracking.
type accountant interface {
	device.Instrument
	Stats() device.Stats
}

// runPipelines dispatches the request kind onto inst and fills res. truth,
// when non-nil, enables ground-truth scoring. ctx reaches the cancellable
// stages (today the verify scan loop), so cancelling a job interrupts a
// long knee sweep between probes. It is a free function — no service state —
// so trace replay (ReplayTrace) re-executes recorded requests through
// exactly the code path that produced them.
func runPipelines(ctx context.Context, nreq Request, inst accountant, win csd.Window, truth *qflow.Truth, res *Result) error {
	before := inst.Stats()
	src := csd.PixelSource{Src: inst, Win: win}
	// Live jobs carry a span and the service metric set on ctx; replay
	// carries neither, so a replayed extraction records and counts nothing.
	var psp *telemetry.Span
	if parent := telemetry.SpanFromContext(ctx); parent != nil {
		psp = parent.Child("pipeline", telemetry.Attr{K: "method", V: string(nreq.Kind)})
	}
	t0 := time.Now()
	var err error
	var steep, shallow float64
	var matrix *virtualgate.Mat2
	switch nreq.Kind {
	case KindFast, KindAdaptive, KindVerify:
		cfg := coreConfig(nreq.Fast)
		var cr *core.Result
		if nreq.Kind == KindAdaptive {
			var ar *core.AdaptiveResult
			ar, err = core.ExtractAdaptive(src, win, core.AdaptiveConfig{Config: cfg, CoarseFactor: nreq.Fast.CoarseFactor})
			if ar != nil {
				cr = ar.Fine
			}
		} else {
			cr, err = core.Extract(src, win, cfg)
		}
		if err == nil {
			steep, shallow = cr.SteepSlope, cr.ShallowSlope
			matrix = &cr.Matrix
			res.TripleV1, res.TripleV2 = cr.TriplePointVoltage(win)
			if nreq.Kind == KindVerify {
				var vr *virtualgate.VerifyResult
				vr, err = virtualgate.Verify(ctx, inst, win, cr.Matrix, res.TripleV1, res.TripleV2,
					virtualgate.VerifyConfig{MaxShiftFrac: nreq.Verify.MaxShiftFrac})
				if err == nil {
					res.Verify = &VerifyReport{OK: vr.OK, SteepShift: vr.SteepShift, ShallowShift: vr.ShallowShift}
				}
			}
		}
	case KindBaseline:
		var br *baseline.Result
		br, err = baseline.Extract(inst, win, baselineConfig(nreq.Baseline))
		if err == nil {
			steep, shallow = br.SteepSlope, br.ShallowSlope
			matrix = &br.Matrix
			res.TripleV1 = win.V1Min + (br.Knee.X+0.5)*win.StepV1()
			res.TripleV2 = win.V2Min + (br.Knee.Y+0.5)*win.StepV2()
		}
	case KindRays:
		var rr *rays.Result
		rr, err = rays.Extract(src, win, rays.Config{NumRays: nreq.Rays.NumRays, DropSigma: nreq.Rays.DropSigma})
		if err == nil {
			steep, shallow = rr.SteepSlope, rr.ShallowSlope
			matrix = &rr.Matrix
		}
	case KindInfoGain:
		igCfg := infogainConfig(nreq.InfoGain)
		if m := liveMetricsFrom(ctx); m != nil {
			igCfg.Metrics = m.ig
		}
		var ir *infogain.Result
		ir, err = infogain.Extract(src, win, igCfg)
		if err == nil {
			steep, shallow = ir.SteepSlope, ir.ShallowSlope
			matrix = &ir.Matrix
			res.TripleV1, res.TripleV2 = ir.TriplePointVoltage(win)
		}
	case KindWindowFind:
		wf := nreq.WindowFind
		var ar *autotune.Result
		ar, err = autotune.FindWindow(inst, wf.V1Min, wf.V1Max, wf.V2Min, wf.V2Max, wf.Pixels, autotune.Config{})
		if err == nil {
			w := ar.Window
			res.Window = &w
		}
	default:
		return fmt.Errorf("%w %q", ErrBadKind, nreq.Kind)
	}
	res.ComputeS = time.Since(t0).Seconds()
	after := inst.Stats()
	res.Probes = after.UniqueProbes - before.UniqueProbes
	res.ExperimentS = (after.Virtual - before.Virtual).Seconds()
	if total := win.Cols * win.Rows; total > 0 {
		res.ProbePct = 100 * float64(res.Probes) / float64(total)
	}
	if psp != nil {
		// Even a failed pipeline spent its probes; record the span either way.
		psp.End()
		psp.SetVirtual(secondsToNS(res.ExperimentS))
		pb := psp.Child("probes", telemetry.AttrInt("count", int64(res.Probes)))
		pb.SetVirtual(secondsToNS(res.ExperimentS))
	}
	if err != nil {
		// Cancellation is a property of this caller, not of the request:
		// propagate it as a transport error so a half-finished extraction is
		// never cached as the request's deterministic outcome.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		// A pipeline failure is a deterministic outcome of the request, not
		// a service fault: record it on the result (with the probes it cost)
		// so repeats are served from cache instead of re-failing slowly.
		res.Error = err.Error()
		return nil
	}
	if matrix != nil {
		res.SteepSlope, res.ShallowSlope = steep, shallow
		res.A12, res.A21 = matrix.A12(), matrix.A21()
		if truth != nil && nreq.Kind != KindWindowFind {
			res.Scored = true
			res.Success, res.SteepErrDeg, res.ShallowErrDeg =
				evalx.CheckSlopes(steep, shallow, *truth, evalx.DefaultAngleTolDeg)
		}
	}
	return nil
}

func coreConfig(f *FastOptions) core.Config {
	cfg := core.Config{
		DisableFilter: f.DisableFilter,
		RowSweepOnly:  f.RowSweepOnly,
		NoShrink:      f.NoShrink,
	}
	cfg.Anchors.DiagonalPoints = f.DiagonalProbes
	cfg.Anchors.GaussSigmaFrac = f.GaussSigmaFrac
	return cfg
}

// infogainConfig maps the job options onto the infogain package config; a
// nil options block (a chain ladder without the rung) runs the defaults.
func infogainConfig(o *InfoGainOptions) infogain.Config {
	if o == nil {
		return infogain.Config{}
	}
	return infogain.Config{
		TargetCI:  o.TargetCI,
		MaxProbes: o.MaxProbes,
		NoiseEps:  o.NoiseEps,
		MinProbes: o.MinProbes,
	}
}

func baselineConfig(b *BaselineOptions) baseline.Config {
	// RenderWorkers 0 = one per CPU: cold-cache baseline jobs acquire their
	// full CSD through the batched parallel render (grids are bit-identical
	// at any worker count, so cached results are unaffected).
	cfg := baseline.Config{NoRefine: b.NoRefine}
	if b.CannySigma != 0 || b.CannyHighRatio != 0 {
		cfg.Canny = imaging.DefaultCannyConfig()
		if b.CannySigma != 0 {
			cfg.Canny.Sigma = b.CannySigma
		}
		if b.CannyHighRatio != 0 {
			cfg.Canny.HighRatio = b.CannyHighRatio
		}
	}
	return cfg
}

// BenchmarkInfo is a serialisable suite entry for the listing endpoint.
type BenchmarkInfo struct {
	Index int         `json:"index"`
	Name  string      `json:"name"`
	Size  int         `json:"size"`
	Truth qflow.Truth `json:"truth"`
}

// BenchmarkList returns the suite in index order.
func (s *Service) BenchmarkList() []BenchmarkInfo {
	suite := s.reg.Suite()
	out := make([]BenchmarkInfo, 0, len(suite))
	for _, b := range suite {
		out = append(out, BenchmarkInfo{Index: b.Index, Name: b.Name, Size: b.Size, Truth: b.Truth})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
