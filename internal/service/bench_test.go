package service

import (
	"context"
	"testing"

	"github.com/fastvg/fastvg/internal/device"
)

// benchRequests builds a batch of fast-extraction jobs over distinct sim
// devices; vary controls whether each iteration's batch is unique (cache
// cold) or identical (cache hot).
func benchRequests(n int, round uint64) []Request {
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		reqs = append(reqs, Request{
			Kind: KindFast,
			Sim:  &device.DoubleDotSpec{Pixels: 64, Seed: 1 + uint64(i) + round*uint64(n)},
		})
	}
	return reqs
}

// BenchmarkBatchUncached measures serving-path throughput when every request
// in every batch is new work: each extraction runs on the worker pool.
func BenchmarkBatchUncached(b *testing.B) {
	svc, err := New(Config{Workers: 4, CacheSize: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	const batchSize = 8
	b.ReportAllocs()
	for i := 0; b.Loop(); i++ {
		items := svc.Batch(ctx, benchRequests(batchSize, uint64(i)))
		for _, item := range items {
			if item.Error != "" {
				b.Fatal(item.Error)
			}
		}
	}
	st := svc.Stats().Cache
	b.ReportMetric(st.HitRate(), "cache-hit-rate")
}

// BenchmarkBatchCached measures the dedup fast path: the identical batch is
// resubmitted every iteration and served from the result cache, the common
// case under heavy repeated traffic.
func BenchmarkBatchCached(b *testing.B) {
	svc, err := New(Config{Workers: 4, CacheSize: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	const batchSize = 8
	reqs := benchRequests(batchSize, 0)
	// Warm the cache outside the measured region.
	for _, item := range svc.Batch(ctx, reqs) {
		if item.Error != "" {
			b.Fatal(item.Error)
		}
	}
	b.ReportAllocs()
	for b.Loop() {
		items := svc.Batch(ctx, reqs)
		for _, item := range items {
			if item.Error != "" || !item.Result.Cached {
				b.Fatalf("expected cached result, got %+v", item)
			}
		}
	}
	st := svc.Stats().Cache
	b.ReportMetric(st.HitRate(), "cache-hit-rate")
}
