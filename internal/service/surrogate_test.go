package service

import (
	"context"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/surrogate"
	"github.com/fastvg/fastvg/internal/trace"
)

// surrogateSpec builds a deterministic noisy double dot probing twin-first.
func surrogateSpec(seed uint64) *device.DoubleDotSpec {
	return &device.DoubleDotSpec{
		Pixels: 64, Seed: seed,
		Noise:     noise.Params{WhiteSigma: 0.01},
		Surrogate: &device.SurrogateSpec{Threshold: surrogate.DefaultThreshold},
	}
}

// TestSurrogateJobTrainsAndServes is the twin lifecycle on one service: the
// first job against a surrogate-enabled spec runs cold (everything
// escalates, the twin learns the raster), the second serves a meaningful
// share of its probes from the trained twin — and still extracts a matrix
// that passes the paper's accuracy criterion.
func TestSurrogateJobTrainsAndServes(t *testing.T) {
	svc, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	req := Request{Kind: KindFast, Sim: surrogateSpec(11)}

	first, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Surrogate == nil {
		t.Fatal("surrogate job carried no surrogate report")
	}
	if !strings.HasPrefix(first.Surrogate.Key, "sim/") {
		t.Errorf("twin key %q, want sim/ prefix", first.Surrogate.Key)
	}
	if first.Surrogate.Escalations == 0 {
		t.Error("cold twin escalated nothing: the instrument was never probed")
	}
	if !first.Surrogate.Fitted {
		t.Error("twin not fitted after a full extraction's worth of training")
	}
	if !first.Success {
		t.Errorf("cold surrogate extraction failed the accuracy criterion: %+v", first)
	}

	second, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Error("surrogate job served from cache: twin state would be frozen")
	}
	if second.Surrogate.Hits == 0 {
		t.Error("trained twin served nothing on the repeat job")
	}
	if !second.Success {
		t.Errorf("twin-served extraction failed the accuracy criterion: %+v", second)
	}
	if second.Probes >= first.Probes {
		t.Errorf("twin saved no live probes: %d then %d", first.Probes, second.Probes)
	}

	st := svc.Stats()
	if st.Surrogate.Models != 1 || st.Surrogate.Hits == 0 {
		t.Errorf("stats surrogate block %+v, want 1 model with hits", st.Surrogate)
	}
}

// TestSurrogateThresholdZeroIdentical pins the composition property at the
// service level: a spec asking for threshold 0 runs every probe live and
// must produce the same result, field for field with bit-identical floats,
// as the same spec with no surrogate block at all.
func TestSurrogateThresholdZeroIdentical(t *testing.T) {
	svc, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	plain := &device.DoubleDotSpec{Pixels: 64, Seed: 12, Noise: noise.Params{WhiteSigma: 0.01}}
	zeroed := *plain
	zeroed.Surrogate = &device.SurrogateSpec{Threshold: 0}

	a, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: plain})
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: &zeroed})
	if err != nil {
		t.Fatal(err)
	}
	if b.Surrogate != nil {
		t.Error("threshold 0 still produced a surrogate report")
	}
	if diffs := CompareResults(b, a); len(diffs) != 0 {
		t.Errorf("threshold-0 result differs from plain: %v", diffs)
	}
}

// TestSurrogateTraceReplay records surrogate extractions — the traces hold
// only the escalated probes plus the twin snapshot — and re-executes each
// through ReplayTrace (the cmd/vgxreplay path): every replay must match bit
// for bit, including the warm job whose twin served a share of the probes.
func TestSurrogateTraceReplay(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 2, DataDir: dir, RecordTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	req := Request{Kind: KindFast, Sim: surrogateSpec(13)}
	var warmHits int
	for i := 0; i < 2; i++ {
		res, err := svc.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		warmHits = res.Surrogate.Hits
	}
	if warmHits == 0 {
		t.Fatal("warm job served nothing: the replay test would not cover twin serving")
	}

	paths, err := filepath.Glob(filepath.Join(dir, "traces", "*"+trace.Ext))
	if err != nil || len(paths) != 2 {
		t.Fatalf("want 2 traces, got %d (err %v)", len(paths), err)
	}
	var replayedHits int
	for _, path := range paths {
		out, err := ReplayTrace(path)
		if err != nil {
			t.Fatalf("replay %s: %v", path, err)
		}
		if !out.Match {
			t.Errorf("replay %s diverged: diffs %v replayErr %q", path, out.Diffs, out.ReplayErr)
		}
		if out.Reproduced.Surrogate == nil {
			t.Errorf("replay %s reproduced no surrogate report", path)
			continue
		}
		replayedHits += out.Reproduced.Surrogate.Hits
	}
	if replayedHits != warmHits {
		t.Errorf("replayed twin hits %d, live warm job had %d", replayedHits, warmHits)
	}
}

// TestSurrogateTwinsSurviveRestart abandons a durable service without
// shutdown after training a twin; the restarted service must warm-start the
// model from its journal record and serve from it on the very first job.
func TestSurrogateTwinsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	svc1, err := New(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Kind: KindFast, Sim: surrogateSpec(14)}
	if _, err := svc1.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// Killed: no Close, no flush.

	svc2, err := New(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close(context.Background())
	twins := svc2.Surrogates()
	if len(twins) != 1 || !twins[0].Fitted || twins[0].Cells == 0 {
		t.Fatalf("twin not warm-started: %+v", twins)
	}
	res, err := svc2.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Surrogate.Hits == 0 {
		t.Error("restored twin served nothing on the first post-restart job")
	}
	if !res.Success {
		t.Errorf("post-restart twin extraction failed the accuracy criterion: %+v", res)
	}
}

// TestSurrogateTrainFromTraces retrains twins offline: a plain (non-
// surrogate) job records a full live trace, TrainSurrogates feeds it into
// the device's twin — the key ignores the Surrogate knobs, so the trace
// trains the twin later surrogate jobs use — and the first surrogate job
// against the same device already serves from the model.
func TestSurrogateTrainFromTraces(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 2, DataDir: dir, RecordTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	plain := &device.DoubleDotSpec{Pixels: 64, Seed: 15, Noise: noise.Params{WhiteSigma: 0.01}}
	if _, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: plain}); err != nil {
		t.Fatal(err)
	}

	fed, err := svc.TrainSurrogates()
	if err != nil {
		t.Fatal(err)
	}
	if len(fed) != 1 {
		t.Fatalf("trained %d twins, want 1: %v", len(fed), fed)
	}
	for key, n := range fed {
		if !strings.HasPrefix(key, "sim/") || n == 0 {
			t.Fatalf("trained key %q with %d samples", key, n)
		}
	}

	withTwin := *plain
	withTwin.Surrogate = &device.SurrogateSpec{Threshold: surrogate.DefaultThreshold}
	res, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: &withTwin})
	if err != nil {
		t.Fatal(err)
	}
	if res.Surrogate.Hits == 0 {
		t.Error("trace-trained twin served nothing on its first surrogate job")
	}
	if !res.Success {
		t.Errorf("trace-trained extraction failed the accuracy criterion: %+v", res)
	}
}

// TestSurrogateChainJob runs a surrogate-enabled chain job twice: every
// pair gets its own twin, the repeat job serves probes on each pair, and
// each recorded per-pair trace replays bit-identically through the same
// path cmd/vgxreplay uses.
func TestSurrogateChainJob(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 4, DataDir: dir, RecordTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	spec := chainSpec(4)
	spec.Surrogate = &device.SurrogateSpec{Threshold: surrogate.DefaultThreshold}
	req := Request{Kind: KindChain, ChainSim: spec}

	var warm *Result
	for i := 0; i < 2; i++ {
		if warm, err = svc.Run(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		if warm.Error != "" {
			t.Fatalf("chain job failed: %s", warm.Error)
		}
	}
	if len(warm.Chain.Surrogate) != 3 {
		t.Fatalf("want 3 per-pair twin reports, got %+v", warm.Chain.Surrogate)
	}
	for i, sr := range warm.Chain.Surrogate {
		if sr.Hits == 0 {
			t.Errorf("pair %d twin served nothing on the warm job: %+v", i, sr)
		}
		if !strings.HasPrefix(sr.Key, "chain/") {
			t.Errorf("pair %d twin key %q, want chain/ prefix", i, sr.Key)
		}
	}
	if !warm.Success {
		t.Errorf("warm chain extraction failed the accuracy criterion: %+v", warm)
	}

	paths, err := filepath.Glob(filepath.Join(dir, "traces", "*"+trace.Ext))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no chain pair traces recorded (err %v)", err)
	}
	for _, path := range paths {
		out, err := ReplayTrace(path)
		if err != nil {
			t.Fatalf("replay %s: %v", path, err)
		}
		if !out.Match {
			t.Errorf("replay %s diverged: diffs %v replayErr %q", path, out.Diffs, out.ReplayErr)
		}
	}
}

// TestSurrogateEndpoints exercises the HTTP surface: the twin listing, the
// train endpoint (rejected without tracing) and the stats block.
func TestSurrogateEndpoints(t *testing.T) {
	svc, srv := newTestServer(t)
	if _, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: surrogateSpec(16)}); err != nil {
		t.Fatal(err)
	}

	var listing struct {
		Twins []SurrogateInfo `json:"twins"`
	}
	doJSON(t, "GET", srv.URL+"/v1/surrogate", nil, http.StatusOK, &listing)
	if len(listing.Twins) != 1 || listing.Twins[0].Escalations == 0 {
		t.Fatalf("twin listing %+v, want one twin with escalations", listing.Twins)
	}

	var stats struct {
		Surrogate SurrogateStats `json:"surrogate"`
	}
	doJSON(t, "GET", srv.URL+"/v1/stats", nil, http.StatusOK, &stats)
	if stats.Surrogate.Models != 1 {
		t.Errorf("stats surrogate %+v, want 1 model", stats.Surrogate)
	}

	// No trace dir on this server: train must refuse, not no-op.
	resp, err := http.Post(srv.URL+"/v1/surrogate/train", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("train without traces: status %d, want 400", resp.StatusCode)
	}
}
