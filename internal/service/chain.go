package service

// Chain jobs: the N-dot chain extraction planner (internal/chainx) mounted
// on the service. A chain request is cacheable — the spec's per-pair
// instruments are deterministic in (seed, pair) — persists per-pair results
// to the journal as KindChainPair records alongside the usual cache entry,
// and with trace recording on writes one probe trace per pair, each
// replayable through cmd/vgxreplay.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/fastvg/fastvg/internal/chainx"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/rays"
	"github.com/fastvg/fastvg/internal/surrogate"
	"github.com/fastvg/fastvg/internal/telemetry"
	"github.com/fastvg/fastvg/internal/trace"
)

// runChain executes a normalized chain request through the planner on the
// service's worker pool and fills res. Pair failures (ladder exhausted,
// budget denied) are deterministic outcomes recorded on the result;
// cancellation and instrument faults propagate as errors.
func (s *Service) runChain(ctx context.Context, nreq Request, hash string, res *Result) error {
	src, err := chainx.NewSpecSource(*nreq.ChainSim, nreq.Chain.Windows)
	if err != nil {
		return err
	}
	cfg := chainx.Config{
		Methods:      nreq.Chain.Methods,
		Budget:       nreq.Chain.Budget,
		Fast:         coreConfig(nreq.Fast),
		CoarseFactor: nreq.Fast.CoarseFactor,
		Rays:         rays.Config{NumRays: nreq.Rays.NumRays, DropSigma: nreq.Rays.DropSigma},
		InfoGain:     infogainConfig(nreq.InfoGain),
	}
	if s.telemetryOn {
		// Infogain rungs inside the ladder count into the live families; the
		// replay path (replayChainPair) leaves Metrics nil by construction.
		cfg.InfoGain.Metrics = s.metrics.ig
	}
	var recMu sync.Mutex
	var recorders map[int]*trace.Recorder
	if s.traceDir != "" {
		recorders = make(map[int]*trace.Recorder, src.Dots()-1)
		cfg.Wrap = func(pair int, inst chainx.PairInstrument) chainx.PairInstrument {
			rec := trace.NewRecorder(inst)
			recMu.Lock()
			recorders[pair] = rec
			recMu.Unlock()
			return rec
		}
	}
	// Surrogate-enabled chain jobs probe every pair twin-first: the pair's
	// twin is acquired (and held) for the whole job, snapshotted into the
	// pair's trace meta before any probe, and the Hybrid wraps outside the
	// recorder so the trace holds exactly the escalated probes.
	var (
		twinKeys []string
		twins    []*twin
		hybs     []*surrogate.Hybrid
		snaps    []*trace.SurrogateMeta
	)
	if sur := nreq.ChainSim.Surrogate; sur != nil && sur.Threshold > 0 {
		n := src.Dots() - 1
		twinKeys = make([]string, n)
		twins = make([]*twin, n)
		hybs = make([]*surrogate.Hybrid, n)
		snaps = make([]*trace.SurrogateMeta, n)
		defer func() {
			for _, tw := range twins {
				if tw != nil {
					tw.mu.Unlock()
				}
			}
		}()
		for i := 0; i < n; i++ {
			key, err := chainTwinKey(*nreq.ChainSim, i)
			if err != nil {
				return err
			}
			twinKeys[i] = key
			twins[i] = s.acquireTwin(key, nreq.Chain.Windows[i])
			if s.traceDir != "" {
				snaps[i] = &trace.SurrogateMeta{Model: twins[i].model.Encode(), Threshold: sur.Threshold, Learn: !sur.NoLearn}
			}
		}
		prev := cfg.Wrap
		cfg.Wrap = func(pair int, inst chainx.PairInstrument) chainx.PairInstrument {
			if prev != nil {
				inst = prev(pair, inst)
			}
			h := &surrogate.Hybrid{Model: twins[pair].model, Inner: inst, Threshold: sur.Threshold, Learn: !sur.NoLearn}
			if s.telemetryOn {
				h.Metrics = s.metrics.sur
			}
			hybs[pair] = h // distinct index per planner goroutine: race-free
			return h
		}
	}
	var psp *telemetry.Span
	if parent := telemetry.SpanFromContext(ctx); parent != nil {
		psp = parent.Child("pipeline", telemetry.Attr{K: "method", V: "chain"})
	}
	t0 := time.Now()
	cres, err := chainx.Extract(ctx, s.pool, src, cfg)
	if err != nil {
		return err
	}
	res.ComputeS = time.Since(t0).Seconds()
	res.Probes = cres.Probes
	res.ExperimentS = cres.ExperimentS
	if psp != nil {
		// Pair spans are synthesized from the planner's per-pair accounting
		// after the fact (deterministic order, no hot-path wrapping); their
		// virtual durations are real, their wall windows are not measured.
		psp.End()
		psp.SetVirtual(secondsToNS(cres.ExperimentS))
		for i := range cres.Pairs {
			p := &cres.Pairs[i]
			ps := psp.Child("pair",
				telemetry.AttrInt("pair", int64(i)),
				telemetry.Attr{K: "method", V: string(p.Method)},
				telemetry.AttrInt("attempts", int64(len(p.Attempts))))
			ps.SetVirtual(secondsToNS(p.ExperimentS))
			pb := ps.Child("probes", telemetry.AttrInt("count", int64(p.Probes)))
			pb.SetVirtual(secondsToNS(p.ExperimentS))
		}
	}
	rep := &ChainReport{Dots: cres.Dots, Pairs: cres.Pairs, BudgetDenied: cres.BudgetDenied}
	if hybs != nil {
		rep.Surrogate = make([]SurrogateReport, len(hybs))
		for i, h := range hybs {
			if h == nil {
				continue // pair denied before its instrument was wrapped
			}
			rep.Surrogate[i] = *s.settleTwin(twinKeys[i], twins[i], h)
		}
	}
	if cres.Chain != nil {
		rep.A12 = append([]float64(nil), cres.Chain.A12...)
		rep.A21 = append([]float64(nil), cres.Chain.A21...)
	}
	res.Chain = rep
	res.Scored = true
	res.Success = true
	for i := range cres.Pairs {
		p := &cres.Pairs[i]
		if !p.Scored {
			res.Scored = false
		}
		if !p.Success {
			res.Success = false
		}
	}
	if failed := cres.Failed(); len(failed) > 0 {
		res.Success = false
		res.Error = fmt.Sprintf("chain: %d of %d pairs failed (first: pair %d: %s)",
			len(failed), len(cres.Pairs), failed[0], cres.Pairs[failed[0]].Error)
	}
	for pair, rec := range recorders {
		var sur *trace.SurrogateMeta
		if snaps != nil {
			sur = snaps[pair]
		}
		if err := s.writeChainPairTrace(rec, nreq, hash, src, pair, &cres.Pairs[pair], sur); err != nil {
			s.metrics.persistErrs.Inc()
		}
	}
	return nil
}

// writeChainPairTrace renders one pair's probe trace. The trace carries the
// full normalized chain request plus the pair index, so vgxreplay re-executes
// exactly that pair's escalation ladder against the recorded samples.
func (s *Service) writeChainPairTrace(rec *trace.Recorder, nreq Request, hash string, src *chainx.SpecSource, pair int, pres *chainx.PairResult, sur *trace.SurrogateMeta) error {
	reqJSON, err := json.Marshal(nreq)
	if err != nil {
		return err
	}
	resJSON, err := json.Marshal(pres)
	if err != nil {
		return err
	}
	p := pair
	steep, shallow := src.PairTruth(pair)
	meta := trace.Meta{
		Hash:             hash,
		Request:          reqJSON,
		Result:           resJSON,
		Window:           src.Windows()[pair],
		Pair:             &p,
		Surrogate:        sur,
		Truth:            &trace.Truth{Steep: steep, Shallow: shallow},
		BaseUniqueProbes: rec.Base().UniqueProbes,
		BaseRawCalls:     rec.Base().RawCalls,
		BaseVirtualNS:    int64(rec.Base().Virtual),
	}
	_, err = trace.Write(s.traceDir, meta, rec.Samples())
	return err
}

// replayChainPair re-executes one recorded pair extraction — the escalation
// ladder of a chain job's pair — against inst (normally a trace.Replayer
// serving the recorded samples) and returns the reproduced pair result.
func replayChainPair(ctx context.Context, nreq Request, pair int, inst chainx.PairInstrument, win csd.Window) (*chainx.PairResult, error) {
	cfg := chainx.Config{
		Methods:      nreq.Chain.Methods,
		Budget:       0, // the recorded pair already passed admission
		Fast:         coreConfig(nreq.Fast),
		CoarseFactor: nreq.Fast.CoarseFactor,
		Rays:         rays.Config{NumRays: nreq.Rays.NumRays, DropSigma: nreq.Rays.DropSigma},
		InfoGain:     infogainConfig(nreq.InfoGain),
	}
	return chainx.ExtractPair(ctx, pair, inst, win, cfg)
}
