package service

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/fastvg/fastvg/internal/baseline"
	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/evalx"
)

// smallSim is a quick noiseless device for cheap service tests.
func smallSim(seed uint64) *device.DoubleDotSpec {
	return &device.DoubleDotSpec{Pixels: 64, Seed: seed}
}

// TestRunSimJob checks a synchronous sim extraction end to end.
func TestRunSimJob(t *testing.T) {
	svc, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: smallSim(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Scored || !res.Success {
		t.Fatalf("clean sim extraction should score successful, got %+v", res)
	}
	if res.Probes <= 0 || res.Probes >= 64*64 {
		t.Fatalf("probes = %d, want partial coverage", res.Probes)
	}
	if res.Cached {
		t.Fatal("first run must not be cached")
	}
	if res.Hash == "" {
		t.Fatal("result must carry the request hash")
	}

	// The identical request again: zero re-extraction.
	again, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: smallSim(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("repeat run should be served from cache")
	}
	if again.SteepSlope != res.SteepSlope || again.Probes != res.Probes {
		t.Fatal("cached result differs from original")
	}
}

// TestBatchTable1MatchesEvalx is the acceptance check: the full 12-benchmark
// × 2-method batch through the scheduler must reproduce evalx.RunTable1
// exactly, and a repeated identical batch must be served ≥90% from the
// result cache.
func TestBatchTable1MatchesEvalx(t *testing.T) {
	want, err := evalx.RunTable1(core.Config{}, baseline.Config{})
	if err != nil {
		t.Fatal(err)
	}

	svc, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	reqs := Table1Requests()
	if len(reqs) != 2*SuiteSize {
		t.Fatalf("Table1Requests = %d requests, want %d", len(reqs), 2*SuiteSize)
	}
	items := svc.Batch(context.Background(), reqs)

	for i, item := range items {
		req := reqs[i]
		row := want[req.Benchmark-1]
		var wantRR *evalx.RunResult
		if req.Kind == KindFast {
			wantRR = row.Fast
		} else {
			wantRR = row.Baseline
		}
		if item.Error != "" {
			t.Errorf("req %d (%s/bench %d): unexpected transport error %s",
				i, req.Kind, req.Benchmark, item.Error)
			continue
		}
		got := item.Result
		if got.Error != "" {
			// Pipeline failures must agree with evalx's recorded FailReason
			// exactly — same pipelines, same replayed instruments.
			if wantRR.Success || got.Error != wantRR.FailReason {
				t.Errorf("req %d (%s/bench %d): pipeline error %q, evalx success=%v reason=%q",
					i, req.Kind, req.Benchmark, got.Error, wantRR.Success, wantRR.FailReason)
			}
			if got.Probes != wantRR.Probes {
				t.Errorf("req %d (%s/bench %d): failure probes %d != evalx %d",
					i, req.Kind, req.Benchmark, got.Probes, wantRR.Probes)
			}
			continue
		}
		if got.SteepSlope != wantRR.SteepSlope || got.ShallowSlope != wantRR.ShallowSlope {
			t.Errorf("req %d (%s/bench %d): slopes (%v, %v) != evalx (%v, %v)",
				i, req.Kind, req.Benchmark,
				got.SteepSlope, got.ShallowSlope, wantRR.SteepSlope, wantRR.ShallowSlope)
		}
		if got.Probes != wantRR.Probes {
			t.Errorf("req %d (%s/bench %d): probes %d != evalx %d",
				i, req.Kind, req.Benchmark, got.Probes, wantRR.Probes)
		}
		if got.Scored && got.Success != wantRR.Success {
			t.Errorf("req %d (%s/bench %d): success %v != evalx %v",
				i, req.Kind, req.Benchmark, got.Success, wantRR.Success)
		}
		if math.Abs(got.ExperimentS-wantRR.Virtual.Seconds()) > 1e-9 {
			t.Errorf("req %d (%s/bench %d): experiment time %v != evalx %v",
				i, req.Kind, req.Benchmark, got.ExperimentS, wantRR.Virtual.Seconds())
		}
	}

	// Repeat the identical batch: the common case under heavy traffic. At
	// least 90% must be served without re-extraction (here: all successful
	// requests, since failed extractions are deliberately not cached).
	before := svc.Stats().Cache
	items2 := svc.Batch(context.Background(), reqs)
	after := svc.Stats().Cache
	served := (after.Hits + after.Coalesced) - (before.Hits + before.Coalesced)
	if frac := float64(served) / float64(len(reqs)); frac < 0.90 {
		t.Fatalf("repeat batch served %d/%d = %.0f%% from cache, want >= 90%%",
			served, len(reqs), 100*frac)
	}
	for i := range items2 {
		if items2[i].Error == "" && !items2[i].Result.Cached {
			t.Errorf("repeat req %d not marked cached", i)
		}
	}
}

// TestSubmitLifecycle checks the async path: submit, wait, inspect.
func TestSubmitLifecycle(t *testing.T) {
	svc, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	jv, err := svc.Submit(context.Background(), Request{Kind: KindFast, Sim: smallSim(2)})
	if err != nil {
		t.Fatal(err)
	}
	if jv.ID == "" || (jv.Status != StatusQueued && jv.Status != StatusRunning) {
		t.Fatalf("submit view = %+v", jv)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	done, err := svc.Wait(ctx, jv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("final view = %+v, want done with result", done)
	}
	if got, ok := svc.Job(jv.ID); !ok || got.Status != StatusDone {
		t.Fatalf("Job lookup = %+v, %v", got, ok)
	}
	if list := svc.Jobs(); len(list) != 1 || list[0].ID != jv.ID {
		t.Fatalf("Jobs list = %+v", list)
	}
}

// TestMixedSyncAsyncSingleWorker is the deadlock regression: an async job
// and synchronous runs of the identical request on a one-worker service
// must all coalesce and finish — waiters must never sit on the only worker
// slot the flight owner needs.
func TestMixedSyncAsyncSingleWorker(t *testing.T) {
	svc, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Kind: KindFast, Sim: smallSim(20)}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	jv, err := svc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = svc.Run(ctx, req)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sync run %d: %v (deadlock would surface as a timeout here)", i, err)
		}
	}
	final, err := svc.Wait(ctx, jv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusDone {
		t.Fatalf("async job = %+v, want done", final)
	}
	if st := svc.Stats().Cache; st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want exactly 1 extraction", st)
	}
}

// TestJobHistoryBounded checks finished async job records are pruned once
// the history cap is exceeded.
func TestJobHistoryBounded(t *testing.T) {
	svc, err := New(Config{Workers: 2, JobHistory: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i := 0; i < 5; i++ {
		jv, err := svc.Submit(ctx, Request{Kind: KindFast, Sim: smallSim(uint64(30 + i))})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Wait(ctx, jv.ID); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := len(svc.Jobs()); n <= 2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("job history = %d records, want <= 2", n)
		}
		time.Sleep(time.Millisecond)
	}
	// The newest job survives pruning and stays queryable.
	if _, ok := svc.Job("job-000005"); !ok {
		t.Fatal("newest job should be retained")
	}
	if _, ok := svc.Job("job-000001"); ok {
		t.Fatal("oldest job should have been pruned")
	}
}

// TestSubmitInvalid checks validation errors surface at submit time.
func TestSubmitInvalid(t *testing.T) {
	svc, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(context.Background(), Request{Kind: "nope", Benchmark: 1}); err == nil {
		t.Fatal("want validation error")
	}
	if _, err := svc.Run(context.Background(), Request{Kind: KindFast}); err == nil {
		t.Fatal("want target error")
	}
}

// TestSessionJobs checks session-targeted jobs share one live instrument,
// bypass the cache, and accumulate probe statistics across jobs.
func TestSessionJobs(t *testing.T) {
	svc, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := svc.Registry().OpenSim(*smallSim(3))
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Kind: KindFast, Session: sess.ID()}
	first, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("session jobs must not be served from cache")
	}
	if first.Probes == 0 {
		t.Fatal("first session job should probe the device")
	}
	second, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached {
		t.Fatal("session jobs must not be served from cache")
	}
	// The sim instrument memoises probed pixels, so an identical extraction
	// on the same live device re-measures nothing new.
	if second.Probes != 0 {
		t.Fatalf("second session job probed %d new points, want 0 (memoised)", second.Probes)
	}
	info := sess.Info()
	if info.Jobs != 2 || info.Stats.UniqueProbes != first.Probes {
		t.Fatalf("session info = %+v, want 2 jobs and %d probes", info, first.Probes)
	}
	if !svc.Registry().CloseSession(sess.ID()) {
		t.Fatal("close failed")
	}
	if _, err := svc.Run(context.Background(), req); err == nil || !strings.Contains(err.Error(), "unknown session") {
		t.Fatalf("job on closed session: err = %v", err)
	}
}

// TestVerifyJob checks the verify pipeline reports an on-device check.
func TestVerifyJob(t *testing.T) {
	svc, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Run(context.Background(), Request{Kind: KindVerify, Sim: smallSim(4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify == nil {
		t.Fatal("verify job must carry a verification report")
	}
	if !res.Verify.OK {
		t.Fatalf("clean sim verification should pass, got %+v", res.Verify)
	}
}

// TestWindowFindJob checks the windowfind pipeline proposes a window.
func TestWindowFindJob(t *testing.T) {
	svc, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSim(5)
	spec.FillDefaults()
	res, err := svc.Run(context.Background(), Request{
		Kind: KindWindowFind,
		Sim:  spec,
		WindowFind: &WindowFindOptions{
			V1Min: 0, V1Max: spec.SpanMV, V2Min: 0, V2Max: spec.SpanMV, Pixels: 64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Window == nil {
		t.Fatal("windowfind must return a window")
	}
	if err := res.Window.Validate(); err != nil {
		t.Fatalf("proposed window invalid: %v", err)
	}
}
