package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/fastvg/fastvg/internal/device"
)

// Handler returns the service's HTTP API, the surface cmd/vgxd serves:
//
//	POST   /v1/jobs            submit one Request; returns the job view
//	GET    /v1/jobs            list jobs in submission order
//	GET    /v1/jobs/{id}       job status (result embedded once done)
//	DELETE /v1/jobs/{id}       cancel a queued job
//	POST   /v1/batch           {"requests":[...]} or {"table1":true}; synchronous
//	GET    /v1/benchmarks      the qflow suite listing
//	POST   /v1/sessions        open a live sim session from a device spec
//	GET    /v1/sessions        list open sessions
//	DELETE /v1/sessions/{id}   close a session
//	GET    /v1/stats           cache / scheduler / job / session accounting
//	GET    /healthz            liveness
//
// All bodies and responses are JSON.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if !decode(w, r, &req) {
			return
		}
		jv, err := s.Submit(r.Context(), req)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		reply(w, http.StatusAccepted, jv)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		jv, ok := s.Job(r.PathValue("id"))
		if !ok {
			fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		reply(w, http.StatusOK, jv)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !s.Cancel(r.PathValue("id")) {
			fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		reply(w, http.StatusOK, map[string]any{"cancelled": true})
	})

	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Requests []Request `json:"requests"`
			Table1   bool      `json:"table1"`
		}
		if !decode(w, r, &body) {
			return
		}
		reqs := body.Requests
		if body.Table1 {
			reqs = append(reqs, Table1Requests()...)
		}
		if len(reqs) == 0 {
			fail(w, http.StatusBadRequest, errors.New("empty batch: set requests or table1"))
			return
		}
		items := s.Batch(r.Context(), reqs)
		reply(w, http.StatusOK, map[string]any{"items": items})
	})

	mux.HandleFunc("GET /v1/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"benchmarks": s.BenchmarkList()})
	})

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Spec device.DoubleDotSpec `json:"spec"`
		}
		if !decode(w, r, &body) {
			return
		}
		sess, err := s.reg.OpenSim(body.Spec)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		reply(w, http.StatusCreated, sess.Info())
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"sessions": s.reg.Sessions()})
	})

	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !s.reg.CloseSession(r.PathValue("id")) {
			fail(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
			return
		}
		reply(w, http.StatusOK, map[string]any{"closed": true})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		reply(w, http.StatusOK, map[string]any{
			"cache":     st.Cache,
			"hitRate":   st.Cache.HitRate(),
			"scheduler": st.Scheduler,
			"jobs":      st.Jobs,
			"sessions":  st.Sessions,
		})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"ok": true})
	})

	return mux
}

// decode parses a JSON body, rejecting unknown fields so client typos
// surface as 400s instead of silently-defaulted jobs.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func reply(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func fail(w http.ResponseWriter, code int, err error) {
	reply(w, code, map[string]any{"error": err.Error()})
}
