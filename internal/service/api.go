package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/fleet"
	"github.com/fastvg/fastvg/internal/telemetry"
	"github.com/fastvg/fastvg/internal/tsdb"
)

// Handler returns the service's HTTP API, the surface cmd/vgxd serves:
//
//	POST   /v1/jobs            submit one Request; returns the job view
//	GET    /v1/jobs            list jobs in submission order
//	GET    /v1/jobs/{id}       job status (result embedded once done)
//	DELETE /v1/jobs/{id}       cancel a queued job
//	POST   /v1/batch           {"requests":[...]} or {"table1":true}; synchronous
//	GET    /v1/benchmarks      the qflow suite listing
//	POST   /v1/sessions        open a live sim session from a device spec
//	GET    /v1/sessions        list open sessions
//	DELETE /v1/sessions/{id}   close a session
//	GET    /v1/surrogate       list trained digital twins (key order)
//	POST   /v1/surrogate/train retrain twins from the recorded probe traces
//	GET    /v1/stats           cache / scheduler / job / session / surrogate accounting
//	GET    /v1/spans           request hashes with journaled span trees (durable services)
//	GET    /v1/spans/{hash}    one job's journaled span tree (JSON)
//	GET    /v1/query           instant/range query over the in-process tsdb
//	                           (?fn=last|avg|min|max|sum|rate|quantile|range,
//	                           ?series=<sample or family>, ?window=S, ?q=P)
//	GET    /v1/alerts          alert rule statuses, firing set and recent history
//	GET    /debug/bundle       flight-recorder bundle (tar.gz: metrics, tsdb
//	                           windows, alerts, span trees, fleet + build info)
//	GET    /v1/healthz         liveness, uptime and drain state
//	GET    /healthz            liveness (legacy alias)
//	GET    /metrics            Prometheus text exposition of every vgx_* family
//
// Every response echoes an X-Request-ID header (the caller's, if sent, else
// a generated one); the ID rides the request context into job execution and
// is recorded as the req_id attribute of the job's span tree.
//
// With Config.MaxQueueDepth set, submissions that would queue past the
// limit fail fast with 429 and a Retry-After header; cache hits and
// coalesced joins are still served under overload.
//
// A sim or chainSim spec with "surrogate": {"threshold": 0.35} probes
// twin-first: the device's learned twin (internal/surrogate) serves
// high-confidence probes and only the rest reach the simulated instrument;
// escalated measurements train the twin further. Results carry the
// serve/escalate split in their "surrogate" report. Surrogate jobs bypass
// the result cache — their outcome advances twin state — and with tracing on
// their traces embed the twin snapshot, so vgxreplay reproduces them bit for
// bit.
//
// Job kinds include "chain": an N-dot chain extraction against a chainSim
// spec target, decomposed into concurrent pair extractions (see
// internal/chainx); its result embeds per-pair matrices and escalation
// records.
//
// Fleet calibration (continuous drift-aware monitoring of many devices,
// double dots and N-dot chains; chain devices are monitored per pair and
// partially recalibrated — only the drifted pair is re-extracted):
//
//	POST /v1/fleet/devices                      register a device {id?, weight?, spec} or {id?, weight?, chain}
//	GET  /v1/fleet                              fleet status (devices in ID order, per-pair breakdown)
//	GET  /v1/fleet/devices/{id}                 one device's snapshot
//	GET  /v1/fleet/devices/{id}/history         calibration history, oldest first
//	                                            (?limit=N newest N, ?journal=1 full persisted log)
//	POST /v1/fleet/devices/{id}/recalibrate     force an immediate re-extraction (?pair=N one pair only)
//	POST /v1/fleet/tick                         advance the virtual clock {advanceS, ticks?}
//
// All bodies and responses are JSON.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		if !decode(w, r, &req) {
			return
		}
		jv, err := s.Submit(r.Context(), req)
		if err != nil {
			failErr(w, err)
			return
		}
		reply(w, http.StatusAccepted, jv)
	})

	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		jv, ok := s.Job(r.PathValue("id"))
		if !ok {
			fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		reply(w, http.StatusOK, jv)
	})

	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !s.Cancel(r.PathValue("id")) {
			fail(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		reply(w, http.StatusOK, map[string]any{"cancelled": true})
	})

	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Requests []Request `json:"requests"`
			Table1   bool      `json:"table1"`
		}
		if !decode(w, r, &body) {
			return
		}
		reqs := body.Requests
		if body.Table1 {
			reqs = append(reqs, Table1Requests()...)
		}
		if len(reqs) == 0 {
			fail(w, http.StatusBadRequest, errors.New("empty batch: set requests or table1"))
			return
		}
		items := s.Batch(r.Context(), reqs)
		reply(w, http.StatusOK, map[string]any{"items": items})
	})

	mux.HandleFunc("GET /v1/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"benchmarks": s.BenchmarkList()})
	})

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Spec device.DoubleDotSpec `json:"spec"`
		}
		if !decode(w, r, &body) {
			return
		}
		sess, err := s.reg.OpenSim(body.Spec)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		reply(w, http.StatusCreated, sess.Info())
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"sessions": s.reg.Sessions()})
	})

	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !s.reg.CloseSession(r.PathValue("id")) {
			fail(w, http.StatusNotFound, fmt.Errorf("unknown session %q", r.PathValue("id")))
			return
		}
		reply(w, http.StatusOK, map[string]any{"closed": true})
	})

	mux.HandleFunc("GET /v1/surrogate", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"twins": s.Surrogates()})
	})

	mux.HandleFunc("POST /v1/surrogate/train", func(w http.ResponseWriter, r *http.Request) {
		fed, err := s.TrainSurrogates()
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		reply(w, http.StatusOK, map[string]any{"trained": fed})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Stats()
		body := map[string]any{
			"cache":     st.Cache,
			"hitRate":   st.Cache.HitRate(),
			"scheduler": st.Scheduler,
			"jobs":      st.Jobs,
			"sessions":  st.Sessions,
			"surrogate": st.Surrogate,
		}
		if st.Store != nil {
			body["store"] = st.Store
			body["persistErrs"] = st.PersistErrs
		}
		if len(st.MethodProbes) > 0 {
			body["methodProbes"] = st.MethodProbes
		}
		reply(w, http.StatusOK, body)
	})

	mux.HandleFunc("POST /v1/fleet/devices", func(w http.ResponseWriter, r *http.Request) {
		var cfg fleet.DeviceConfig
		if !decode(w, r, &cfg) {
			return
		}
		dv, err := s.fleet.Register(cfg)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		reply(w, http.StatusCreated, dv)
	})

	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, s.fleet.Status())
	})

	mux.HandleFunc("GET /v1/fleet/devices/{id}", func(w http.ResponseWriter, r *http.Request) {
		dv, ok := s.fleet.Device(r.PathValue("id"))
		if !ok {
			fail(w, http.StatusNotFound, fmt.Errorf("unknown fleet device %q", r.PathValue("id")))
			return
		}
		reply(w, http.StatusOK, dv)
	})

	// History serves the bounded in-memory ring (Policy.HistoryCap, default
	// 128 events). ?journal=1 reads the full persisted event log from the
	// journal instead (durable services only); ?limit=N keeps the newest N.
	mux.HandleFunc("GET /v1/fleet/devices/{id}/history", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		var evs []fleet.Event
		var ok bool
		if r.URL.Query().Get("journal") != "" {
			if evs, ok = s.fleet.JournalHistory(id); !ok {
				fail(w, http.StatusBadRequest, errors.New("no journal attached: start the service with a data dir"))
				return
			}
			if _, known := s.fleet.Device(id); !known {
				fail(w, http.StatusNotFound, fmt.Errorf("unknown fleet device %q", id))
				return
			}
		} else if evs, ok = s.fleet.History(id); !ok {
			fail(w, http.StatusNotFound, fmt.Errorf("unknown fleet device %q", id))
			return
		}
		if lim := r.URL.Query().Get("limit"); lim != "" {
			n, err := strconv.Atoi(lim)
			if err != nil || n < 0 {
				fail(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", lim))
				return
			}
			if n < len(evs) {
				evs = evs[len(evs)-n:]
			}
		}
		reply(w, http.StatusOK, map[string]any{"events": evs})
	})

	// ?pair=N forces a single adjacent pair of a chain device (partial
	// recalibration); without it every pair of the device is re-extracted.
	mux.HandleFunc("POST /v1/fleet/devices/{id}/recalibrate", func(w http.ResponseWriter, r *http.Request) {
		var ev fleet.Event
		var err error
		if p := r.URL.Query().Get("pair"); p != "" {
			var pair int
			if pair, err = strconv.Atoi(p); err != nil {
				fail(w, http.StatusBadRequest, fmt.Errorf("bad pair %q", p))
				return
			}
			ev, err = s.fleet.ForceRecalibratePair(r.Context(), r.PathValue("id"), pair)
		} else {
			ev, err = s.fleet.ForceRecalibrate(r.Context(), r.PathValue("id"))
		}
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, fleet.ErrUnknownDevice) {
				code = http.StatusNotFound
			}
			fail(w, code, err)
			return
		}
		reply(w, http.StatusOK, ev)
	})

	mux.HandleFunc("POST /v1/fleet/tick", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			AdvanceS float64 `json:"advanceS"` // virtual seconds per tick
			Ticks    int     `json:"ticks"`    // default 1
		}
		if !decode(w, r, &body) {
			return
		}
		if body.Ticks <= 0 {
			body.Ticks = 1
		}
		if body.Ticks > 100000 {
			fail(w, http.StatusBadRequest, errors.New("ticks out of range"))
			return
		}
		reports := make([]fleet.TickReport, 0, body.Ticks)
		for i := 0; i < body.Ticks; i++ {
			rep, err := s.fleet.Tick(r.Context(), body.AdvanceS)
			if err != nil {
				fail(w, http.StatusBadRequest, err)
				return
			}
			reports = append(reports, rep)
		}
		// Tick-driven scrape: the tsdb and alert engine advance on the
		// same virtual instant the fleet just reached, so replaying a
		// tick schedule replays the alert sequence exactly.
		s.ScrapeNow(s.fleet.Now())
		reply(w, http.StatusOK, map[string]any{"now": s.fleet.Now(), "reports": reports})
	})

	// The observability surface: instant/range queries over the scraped
	// tsdb, the alert board, and the flight-recorder bundle.
	//
	//	GET /v1/query?fn=rate&series=vgx_service_shed_total&window=60
	//	GET /v1/query?fn=quantile&series=vgx_service_job_seconds&window=300&q=0.99
	//	GET /v1/alerts
	//	GET /debug/bundle
	mux.HandleFunc("GET /v1/query", func(w http.ResponseWriter, r *http.Request) {
		qs := r.URL.Query()
		q := tsdb.Query{Fn: qs.Get("fn"), Series: qs.Get("series")}
		if v := qs.Get("window"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fail(w, http.StatusBadRequest, fmt.Errorf("bad window %q", v))
				return
			}
			q.WindowS = f
		}
		if v := qs.Get("q"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fail(w, http.StatusBadRequest, fmt.Errorf("bad q %q", v))
				return
			}
			q.Q = f
		}
		res, err := s.obs.db.Query(q)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		reply(w, http.StatusOK, res)
	})

	mux.HandleFunc("GET /v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		eng := s.AlertEngine()
		if eng == nil {
			fail(w, http.StatusNotFound, errors.New("alerts disabled"))
			return
		}
		reply(w, http.StatusOK, map[string]any{
			"alerts":  eng.Statuses(),
			"firing":  eng.Firing(),
			"history": eng.History(64),
		})
	})

	mux.HandleFunc("GET /debug/bundle", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/gzip")
		w.Header().Set("Content-Disposition", `attachment; filename="vgx-bundle.tar.gz"`)
		if err := s.WriteBundle(w); err != nil {
			// Headers are gone; the truncated archive is the best signal left.
			return
		}
	})

	mux.HandleFunc("GET /v1/spans", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"hashes": s.SpanHashes()})
	})

	mux.HandleFunc("GET /v1/spans/{hash}", func(w http.ResponseWriter, r *http.Request) {
		sp, ok := s.SpanTree(r.PathValue("hash"))
		if !ok {
			fail(w, http.StatusNotFound, fmt.Errorf("no span tree for %q", r.PathValue("hash")))
			return
		}
		reply(w, http.StatusOK, sp)
	})

	mux.Handle("GET /metrics", telemetry.Handler(s.metrics.reg))

	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		code := http.StatusOK
		if h.Draining {
			code = http.StatusServiceUnavailable
		}
		reply(w, code, h)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]any{"ok": true})
	})

	// Request-ID middleware: adopt the caller's X-Request-ID (or mint a
	// process-local one), echo it on the response and thread it through the
	// request context into job execution and span output.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > 128 {
			id = nextRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		mux.ServeHTTP(w, r.WithContext(WithRequestID(r.Context(), id)))
	})
}

// decode parses a JSON body, rejecting unknown fields so client typos
// surface as 400s instead of silently-defaulted jobs.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func reply(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func fail(w http.ResponseWriter, code int, err error) {
	reply(w, code, map[string]any{"error": err.Error()})
}

// failErr maps service errors onto status codes: overload sheds with 429
// and a Retry-After hint, everything else is a caller error.
func failErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrOverloaded) {
		w.Header().Set("Retry-After", "1")
		fail(w, http.StatusTooManyRequests, err)
		return
	}
	fail(w, http.StatusBadRequest, err)
}
