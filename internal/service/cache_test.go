package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fastvg/fastvg/internal/telemetry"
)

func res(kind Kind) *Result { return &Result{Kind: kind} }

// TestCacheHitMiss checks basic hit/miss accounting.
func TestCacheHitMiss(t *testing.T) {
	c := newResultCache(8, newServiceMetrics(telemetry.NewRegistry()))
	ctx := context.Background()
	calls := 0
	fn := func() (*Result, error) { calls++; return res(KindFast), nil }

	if _, served, err := c.Do(ctx, "a", fn); err != nil || served {
		t.Fatalf("first Do = served %v, err %v; want miss", served, err)
	}
	if _, served, err := c.Do(ctx, "a", fn); err != nil || !served {
		t.Fatalf("second Do = served %v, err %v; want hit", served, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

// TestCacheLRUEviction checks the least-recently-used entry is evicted.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, newServiceMetrics(telemetry.NewRegistry()))
	ctx := context.Background()
	fill := func(key string) {
		if _, _, err := c.Do(ctx, key, func() (*Result, error) { return res(KindFast), nil }); err != nil {
			t.Fatal(err)
		}
	}
	fill("a")
	fill("b")
	fill("a") // refresh a: b is now least recent
	fill("c") // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("%s should still be cached", key)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", st)
	}
}

// TestCacheCoalescing checks concurrent identical lookups run the function
// once and everyone else attaches to that flight.
func TestCacheCoalescing(t *testing.T) {
	c := newResultCache(8, newServiceMetrics(telemetry.NewRegistry()))
	ctx := context.Background()
	const waiters = 16

	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	fn := func() (*Result, error) {
		calls.Add(1)
		close(started)
		<-release
		return res(KindFast), nil
	}

	var wg sync.WaitGroup
	first := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(first)
		if _, served, err := c.Do(ctx, "k", fn); err != nil || served {
			t.Errorf("leader Do = served %v, err %v", served, err)
		}
	}()
	<-first
	<-started // the leader holds the flight; everyone below must coalesce
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, served, err := c.Do(ctx, "k", func() (*Result, error) {
				t.Error("coalesced caller ran the function")
				return nil, nil
			})
			if err != nil || !served || r == nil {
				t.Errorf("coalesced Do = (%v, %v, %v)", r, served, err)
			}
		}()
	}
	// Wait until all waiters are parked on the flight, then release.
	for c.Stats().Coalesced < waiters {
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	if st := c.Stats(); st.Coalesced != waiters || st.Misses != 1 {
		t.Fatalf("stats = %+v, want %d coalesced / 1 miss", st, waiters)
	}
}

// TestCacheErrorNotCached checks failed computations are retried, not
// served from cache.
func TestCacheErrorNotCached(t *testing.T) {
	c := newResultCache(8, newServiceMetrics(telemetry.NewRegistry()))
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0
	if _, _, err := c.Do(ctx, "k", func() (*Result, error) { calls++; return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if r, _, err := c.Do(ctx, "k", func() (*Result, error) { calls++; return res(KindFast), nil }); err != nil || r == nil {
		t.Fatalf("retry = (%v, %v), want success", r, err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (error not cached)", calls)
	}
}

// TestCacheConcurrentDistinctKeys hammers the cache from many goroutines to
// give the race detector surface area.
func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := newResultCache(32, newServiceMetrics(telemetry.NewRegistry()))
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				key := fmt.Sprintf("k%d", i%16)
				if _, _, err := c.Do(ctx, key, func() (*Result, error) { return res(KindFast), nil }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
