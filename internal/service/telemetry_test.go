package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/fastvg/fastvg/internal/telemetry"
)

// dropNondeterministic strips the metric families that legitimately vary
// run to run: wall-clock histograms (*_seconds) and the journal size
// (journaled records embed measured ComputeS).
func dropNondeterministic(name string) bool {
	return strings.HasSuffix(name, "_seconds") || name == "vgx_store_log_bytes"
}

// telemetryJobSet is the fixed sequential job mix the determinism test
// replays per worker count: two pipeline kinds, a cache hit, a chain
// fan-out and an infogain job — every instrumented subsystem fires.
func telemetryJobSet(t *testing.T, svc *Service) {
	t.Helper()
	ctx := context.Background()
	for _, req := range []Request{
		{Kind: KindFast, Sim: smallSim(1)},
		{Kind: KindBaseline, Sim: smallSim(1)},
		{Kind: KindFast, Sim: smallSim(1)}, // identical: cache hit
		chainReq(4),
		{Kind: KindInfoGain, Sim: infogainSpec(11)},
	} {
		if _, err := svc.Run(ctx, req); err != nil {
			t.Fatalf("%s job: %v", req.Kind, err)
		}
	}
}

// TestMetricsDeterministicAcrossWorkers is the telemetry determinism
// property: a fixed job set must leave byte-identical exposition text
// (wall-clock families filtered) regardless of worker-pool width. Run
// with -race this also hammers the lock-free metric paths.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		svc, err := New(Config{Workers: workers, CacheSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		telemetryJobSet(t, svc)
		got := telemetry.FilterFamilies(svc.Telemetry().Expose(), dropNondeterministic)
		if err := svc.Close(context.Background()); err != nil {
			t.Fatal(err)
		}
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d: exposition differs:\n--- got ---\n%s--- want (workers=1) ---\n%s", workers, got, want)
		}
	}
}

// TestMetricNameLint walks every family a fully-wired durable service
// registers: vgx_-prefixed snake_case throughout, and at least one family
// from each instrumented subsystem.
func TestMetricNameLint(t *testing.T) {
	svc, err := New(Config{Workers: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())

	// Vec families materialise on first use; one instrumented request
	// brings the vgx_http_* pair into the registry.
	srv := httptest.NewServer(svc.InstrumentHTTP(svc.Handler()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	nameRE := regexp.MustCompile(`^vgx(_[a-z0-9]+)+$`)
	names := svc.Telemetry().Names()
	if len(names) == 0 {
		t.Fatal("no metric families registered")
	}
	for _, n := range names {
		if !nameRE.MatchString(n) {
			t.Errorf("metric %q fails the vgx_ snake_case lint", n)
		}
	}
	for _, prefix := range []string{
		"vgx_sched_", "vgx_service_", "vgx_fleet_",
		"vgx_surrogate_", "vgx_infogain_", "vgx_store_",
		"vgx_tsdb_", "vgx_alerts_", "vgx_http_",
	} {
		found := false
		for _, n := range names {
			if strings.HasPrefix(n, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* family registered; names: %v", prefix, names)
		}
	}
}

// saturatePool occupies every worker slot and fills the queue to depth,
// returning the release function.
func saturatePool(t *testing.T, svc *Service, queueDepth int) func() {
	t.Helper()
	block := make(chan struct{})
	n := svc.pool.Workers() + queueDepth
	for i := 0; i < n; i++ {
		svc.pool.Submit(context.Background(), func(context.Context) (any, error) {
			<-block
			return nil, nil
		})
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.pool.Queued() < queueDepth {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth stuck at %d, want %d", svc.pool.Queued(), queueDepth)
		}
		time.Sleep(time.Millisecond)
	}
	return func() { close(block) }
}

// TestOverloadShedsButServesCache checks MaxQueueDepth: a saturated pool
// rejects new extractions with ErrOverloaded (counted in the shed
// metric), while identical cached requests are still served.
func TestOverloadShedsButServesCache(t *testing.T) {
	svc, err := New(Config{Workers: 1, CacheSize: 16, MaxQueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	defer svc.Close(ctx)

	// Populate the cache before saturating.
	if _, err := svc.Run(ctx, Request{Kind: KindFast, Sim: smallSim(1)}); err != nil {
		t.Fatal(err)
	}

	release := saturatePool(t, svc, 1)
	defer release()

	if _, err := svc.Run(ctx, Request{Kind: KindFast, Sim: smallSim(2)}); err != ErrOverloaded {
		t.Errorf("new extraction under overload: err = %v, want ErrOverloaded", err)
	}
	if _, err := svc.Submit(ctx, Request{Kind: KindFast, Sim: smallSim(3)}); err != ErrOverloaded {
		t.Errorf("async submission under overload: err = %v, want ErrOverloaded", err)
	}
	res, err := svc.Run(ctx, Request{Kind: KindFast, Sim: smallSim(1)})
	if err != nil || !res.Cached {
		t.Errorf("cached request under overload = (%+v, %v), want cache hit", res, err)
	}
	if shed := svc.metrics.shed.Value(); shed != 2 {
		t.Errorf("vgx_service_shed_total = %d, want 2", shed)
	}
}

// TestAPIOverload429 checks the HTTP mapping: a shed submission returns
// 429 with a Retry-After header.
func TestAPIOverload429(t *testing.T) {
	svc, err := New(Config{Workers: 1, CacheSize: 16, MaxQueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	release := saturatePool(t, svc, 1)
	defer release()

	body, _ := json.Marshal(Request{Kind: KindFast, Sim: smallSim(9)})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want 1", ra)
	}
}

// TestStatsShapeUnchanged locks the /v1/stats JSON contract now that the
// payload is assembled from the metric registry: same keys, same cache
// sub-shape, optional keys still omitted when empty.
func TestStatsShapeUnchanged(t *testing.T) {
	svc, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	if _, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: smallSim(1)}); err != nil {
		t.Fatal(err)
	}

	b, err := json.Marshal(svc.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(b, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cache", "scheduler", "jobs", "sessions", "surrogate"} {
		if _, ok := top[key]; !ok {
			t.Errorf("stats missing key %q: %s", key, b)
		}
	}
	if _, ok := top["methodProbes"]; !ok {
		t.Errorf("stats missing methodProbes after a fast job: %s", b)
	}
	// No store/persistErrs keys without a data dir.
	for _, key := range []string{"store", "persistErrs"} {
		if _, ok := top[key]; ok {
			t.Errorf("stats key %q should be omitted when empty: %s", key, b)
		}
	}
	var cache map[string]json.RawMessage
	if err := json.Unmarshal(top["cache"], &cache); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"capacity", "entries", "hits", "misses", "coalesced", "evictions"} {
		if _, ok := cache[key]; !ok {
			t.Errorf("cache stats missing key %q: %s", key, top["cache"])
		}
	}
	st := svc.Stats()
	if st.Cache.Hits != 0 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Errorf("cache stats = %+v, want 0 hits / 1 miss / 1 entry", st.Cache)
	}
}

// TestSpanJournalRoundTrip checks a durable service journals one span
// tree per executed job, retrievable live (SpanTree) and offline
// (LoadSpans), with the recorded tree shape intact.
func TestSpanJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	fast, err := svc.Run(ctx, Request{Kind: KindFast, Sim: smallSim(1)})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := svc.Run(ctx, chainReq(4))
	if err != nil {
		t.Fatal(err)
	}

	hashes := svc.SpanHashes()
	if len(hashes) != 2 {
		t.Fatalf("SpanHashes = %v, want 2 trees", hashes)
	}
	if got := svc.metrics.spans.Value(); got != 2 {
		t.Errorf("vgx_service_spans_total = %d, want 2", got)
	}

	sp, ok := svc.SpanTree(chain.Hash)
	if !ok {
		t.Fatalf("no span tree for chain job %s", chain.Hash)
	}
	if sp.Name != "job" || sp.Attr("kind") != string(KindChain) {
		t.Errorf("chain root span = %q %v", sp.Name, sp.Attrs)
	}
	// The span carries the abbreviated request hash.
	if h := sp.Attr("hash"); !strings.HasPrefix(chain.Hash, h) || h == "" {
		t.Errorf("span hash attr %q is not a prefix of %s", h, chain.Hash)
	}
	if sp.VirtNS <= 0 {
		t.Errorf("chain job span has no virtual time: %+v", sp)
	}
	var sb strings.Builder
	sp.Render(&sb)
	out := sb.String()
	for _, want := range []string{"job wall=", "  pipeline wall=", "    pair wall=", "      probes wall="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered chain tree missing %q:\n%s", want, out)
		}
	}
	// 3 pairs for a 4-dot chain.
	if got := strings.Count(out, "    pair wall="); got != 3 {
		t.Errorf("chain tree has %d pair spans, want 3:\n%s", got, out)
	}

	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}

	recs, err := LoadSpans(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("LoadSpans = %d records, want 2", len(recs))
	}
	found := map[string]bool{}
	for _, r := range recs {
		found[r.Hash] = true
		if r.Span == nil || r.Span.Name != "job" {
			t.Errorf("record %s: bad span %+v", r.Hash, r.Span)
		}
	}
	if !found[fast.Hash] || !found[chain.Hash] {
		t.Errorf("LoadSpans hashes %v missing %s or %s", found, fast.Hash, chain.Hash)
	}
}

// TestReplayRecordsNoSpans checks the replay paths stay out of the live
// telemetry: re-executing the journal must not append new span trees or
// bump live job counters of the original service.
func TestReplayRecordsNoSpans(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := svc.Run(ctx, Request{Kind: KindFast, Sim: smallSim(1)}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}

	outs, err := ReplayJournal(ctx, dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if !o.Match && !o.Skipped {
			t.Errorf("replay mismatch: %+v", o)
		}
	}
	recs, err := LoadSpans(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("replay added span trees: %d records, want 1", len(recs))
	}
}

// TestRequestIDEcho checks the request-ID middleware: a caller-sent
// X-Request-ID is echoed back, and absent one a deterministic req-N id
// is minted.
func TestRequestIDEcho(t *testing.T) {
	svc, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	req, _ := http.NewRequest("GET", srv.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-42" {
		t.Errorf("echoed id = %q, want caller-42", got)
	}

	resp2, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); !regexp.MustCompile(`^req-\d{6}$`).MatchString(got) {
		t.Errorf("minted id = %q, want req-NNNNNN", got)
	}
}

// TestMetricsEndpoint checks GET /metrics serves the registry with the
// Prometheus content type and that the spans endpoints list journaled
// trees.
func TestMetricsEndpoint(t *testing.T) {
	svc, err := New(Config{Workers: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	res, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: smallSim(1)})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("content type = %q", ct)
	}
	fams, err := telemetry.Parse(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	byName := map[string]float64{}
	for _, f := range fams {
		for _, s := range f.Samples {
			if len(s.Labels) == 0 {
				byName[s.Name] = s.Value
			}
			if s.Name == "vgx_service_jobs_total" && s.Labels["kind"] == "fast" {
				byName[s.Name] = s.Value
			}
		}
	}
	if byName["vgx_service_jobs_total"] != 1 {
		t.Errorf(`vgx_service_jobs_total{kind="fast"} = %v, want 1`, byName["vgx_service_jobs_total"])
	}
	if byName["vgx_sched_submitted_total"] < 1 {
		t.Errorf("vgx_sched_submitted_total = %v, want >= 1", byName["vgx_sched_submitted_total"])
	}

	var list struct {
		Hashes []string `json:"hashes"`
	}
	doJSON(t, "GET", srv.URL+"/v1/spans", nil, http.StatusOK, &list)
	if len(list.Hashes) != 1 || list.Hashes[0] != res.Hash {
		t.Errorf("/v1/spans = %v, want [%s]", list.Hashes, res.Hash)
	}
	var tree telemetry.Span
	doJSON(t, "GET", srv.URL+"/v1/spans/"+res.Hash, nil, http.StatusOK, &tree)
	if tree.Name != "job" {
		t.Errorf("/v1/spans/{hash} root = %q, want job", tree.Name)
	}
	doJSON(t, "GET", srv.URL+"/v1/spans/deadbeef", nil, http.StatusNotFound, nil)
}

// TestDisableTelemetry checks the opt-out: counters still feed /v1/stats
// but no spans are journaled.
func TestDisableTelemetry(t *testing.T) {
	svc, err := New(Config{Workers: 1, DataDir: t.TempDir(), DisableTelemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	if _, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: smallSim(1)}); err != nil {
		t.Fatal(err)
	}
	if hashes := svc.SpanHashes(); len(hashes) != 0 {
		t.Errorf("spans journaled with telemetry disabled: %v", hashes)
	}
	if st := svc.Stats(); st.Cache.Misses != 1 {
		t.Errorf("stats counters must still work when telemetry is off: %+v", st.Cache)
	}
}
