package service

// Surrogate twins: the service-side registry of learned digital twins
// (internal/surrogate) and their composition into jobs. A request whose
// target spec sets Surrogate with a positive Threshold probes twin-first:
// the registry's model for that device answers high-confidence probes, the
// rest escalate to the built instrument, and (unless NoLearn) the escalated
// measurements train the twin further. Twin identity is the device, not the
// request — the key hashes the spec with its Surrogate knobs cleared — so
// every kind of job against the same simulated device shares one model, and
// a trace recorded without the twin still trains it (TrainSurrogates).
//
// Surrogate jobs bypass the result cache: their outcome depends on (and
// advances) twin state, like a session job's depends on instrument state.
// With a store attached every twin is journaled after each job under
// store.KindSurrogateModel ("sim/…" and "chain/…" keys — the fleet's twins
// live under "fleet/…" in the same kind), so a restarted service warm-starts
// its twins. With trace recording on, the trace carries the twin snapshot
// taken before extraction (trace.SurrogateMeta): replay rebuilds the same
// Hybrid over the recorded escalated probes and reproduces the result bit
// for bit.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/qflow"
	"github.com/fastvg/fastvg/internal/store"
	"github.com/fastvg/fastvg/internal/surrogate"
	"github.com/fastvg/fastvg/internal/trace"
)

// twin is one registry entry: the model plus its lifetime serving counters.
// Its mutex is held for the duration of any job probing the twin — two jobs
// against the same device serialize, like they would on the one physical
// device they model.
type twin struct {
	mu          sync.Mutex
	model       *surrogate.Model
	hits        int64
	escalations int64
}

// twinKeyFleetPrefix marks the fleet manager's share of the
// KindSurrogateModel namespace; the service skips it when warm-starting.
const twinKeyFleetPrefix = "fleet/"

// specTwinKey hashes a double-dot spec into its twin key. The Surrogate
// knobs are cleared first: the twin models the device, and changing the
// escalation threshold must not orphan the trained model.
func specTwinKey(spec device.DoubleDotSpec) (string, error) {
	spec.Surrogate = nil
	return twinHash("sim", spec)
}

// chainTwinKey hashes a chain spec and pair index into the pair's twin key.
func chainTwinKey(spec device.ChainSpec, pair int) (string, error) {
	spec.Surrogate = nil
	k, err := twinHash("chain", spec)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s/%d", k, pair), nil
}

func twinHash(prefix string, spec any) (string, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return prefix + "/" + hex.EncodeToString(sum[:8]), nil
}

// acquireTwin locks and returns the twin for key, creating it (or replacing
// a model whose window no longer matches the job's) as needed. The caller
// owns tw.mu until it unlocks.
func (s *Service) acquireTwin(key string, win csd.Window) *twin {
	s.twinMu.Lock()
	tw, ok := s.twins[key]
	if !ok {
		tw = &twin{}
		s.twins[key] = tw
	}
	s.twinMu.Unlock()
	tw.mu.Lock()
	if tw.model == nil || tw.model.Win() != win {
		tw.model = surrogate.New(win)
	}
	return tw
}

// SurrogateReport is the surrogate extension of a Result: how the twin
// split one job's probing. Every field is deterministic in the request and
// the twin snapshot, so replays must reproduce it exactly.
type SurrogateReport struct {
	Key       string  `json:"key"`
	Threshold float64 `json:"threshold"`
	// Hits are probes served by the twin — live probes saved; Escalations
	// fell through to the instrument (Result.Probes counts only those).
	Hits        int `json:"hits"`
	Escalations int `json:"escalations"`
	// Cells and Fitted snapshot the model after the job.
	Cells  int  `json:"cells"`
	Fitted bool `json:"fitted"`
}

// surrogateReport snapshots one hybrid's job accounting.
func surrogateReport(key string, hyb *surrogate.Hybrid) *SurrogateReport {
	return &SurrogateReport{
		Key:         key,
		Threshold:   hyb.Threshold,
		Hits:        hyb.Hits(),
		Escalations: hyb.Escalations(),
		Cells:       hyb.Model.Cells(),
		Fitted:      hyb.Model.Fitted(),
	}
}

// runSurrogate is runInstrumented for a surrogate-enabled sim target: the
// pipeline probes a Hybrid over the spec's twin, with the instrument (or its
// trace recorder, so the trace holds exactly the escalated probes) as the
// escalation backend.
func (s *Service) runSurrogate(ctx context.Context, nreq Request, hash string, inst accountant, win csd.Window, truth *qflow.Truth, res *Result) error {
	sur := nreq.Sim.Surrogate
	key, err := specTwinKey(*nreq.Sim)
	if err != nil {
		return err
	}
	tw := s.acquireTwin(key, win)
	defer tw.mu.Unlock()
	var backend surrogate.Backend = inst
	var rec *trace.Recorder
	var meta *trace.SurrogateMeta
	if s.traceDir != "" {
		// Snapshot before any probe: replay rebuilds this exact model.
		meta = &trace.SurrogateMeta{Model: tw.model.Encode(), Threshold: sur.Threshold, Learn: !sur.NoLearn}
		rec = trace.NewRecorder(inst)
		backend = rec
	}
	hyb := &surrogate.Hybrid{Model: tw.model, Inner: backend, Threshold: sur.Threshold, Learn: !sur.NoLearn}
	if s.telemetryOn {
		hyb.Metrics = s.metrics.sur
	}
	if err := runPipelines(ctx, nreq, hyb, win, truth, res); err != nil {
		return err
	}
	res.Surrogate = s.settleTwin(key, tw, hyb)
	if rec != nil {
		if err := s.writeTrace(rec, nreq, hash, win, truth, res, meta); err != nil {
			s.metrics.persistErrs.Inc()
		}
	}
	return nil
}

// settleTwin finishes a surrogate job against its twin: refit from whatever
// the job escalated, accumulate the lifetime counters, journal the model and
// return the job's report. Callers hold tw.mu.
func (s *Service) settleTwin(key string, tw *twin, hyb *surrogate.Hybrid) *SurrogateReport {
	if hyb.Learn {
		// Refit is best-effort: too few cells or no clear transition just
		// leaves the previous fit (or none) in place.
		_ = tw.model.Fit()
	}
	rep := surrogateReport(key, hyb)
	tw.hits += int64(rep.Hits)
	tw.escalations += int64(rep.Escalations)
	s.persistTwin(key, tw)
	return rep
}

// persistTwin journals a twin's current model. Callers hold tw.mu.
func (s *Service) persistTwin(key string, tw *twin) {
	if s.store == nil {
		return
	}
	if err := s.store.Put(store.KindSurrogateModel, key, tw.model.Encode()); err != nil {
		s.metrics.persistErrs.Inc()
	}
}

// restoreTwins warm-starts the twin registry from the journal's surrogate
// models, skipping the fleet manager's share of the namespace. Unreadable
// models are dropped, not fatal — the twin just retrains.
func (s *Service) restoreTwins(st *store.Store) {
	for _, rec := range st.Records(store.KindSurrogateModel) {
		if strings.HasPrefix(rec.Key, twinKeyFleetPrefix) {
			continue
		}
		model, err := surrogate.Decode(rec.Data)
		if err != nil {
			continue
		}
		s.twins[rec.Key] = &twin{model: model}
	}
}

// SurrogateInfo is one twin's listing entry (GET /v1/surrogate).
type SurrogateInfo struct {
	Key     string `json:"key"`
	Cells   int    `json:"cells"`
	Samples int64  `json:"samples"`
	Fitted  bool   `json:"fitted"`
	// Hits and Escalations are lifetime counters across this process's jobs.
	Hits        int64 `json:"hits"`
	Escalations int64 `json:"escalations"`
}

// Surrogates lists the twin registry in key order.
func (s *Service) Surrogates() []SurrogateInfo {
	s.twinMu.Lock()
	keys := make([]string, 0, len(s.twins))
	for k := range s.twins {
		keys = append(keys, k)
	}
	twins := make([]*twin, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		twins = append(twins, s.twins[k])
	}
	s.twinMu.Unlock()
	out := make([]SurrogateInfo, 0, len(keys))
	for i, tw := range twins {
		tw.mu.Lock()
		info := SurrogateInfo{Key: keys[i], Hits: tw.hits, Escalations: tw.escalations}
		if tw.model != nil {
			info.Cells = tw.model.Cells()
			info.Samples = tw.model.Samples()
			info.Fitted = tw.model.Fitted()
		}
		tw.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// SurrogateStats aggregates the twin registry for /v1/stats.
type SurrogateStats struct {
	Models      int   `json:"models"`
	Fitted      int   `json:"fitted"`
	Hits        int64 `json:"hits"`        // probes served by twins (saved)
	Escalations int64 `json:"escalations"` // probes escalated live
}

func (s *Service) surrogateStats() SurrogateStats {
	var st SurrogateStats
	for _, info := range s.Surrogates() {
		st.Models++
		if info.Fitted {
			st.Fitted++
		}
		st.Hits += info.Hits
		st.Escalations += info.Escalations
	}
	return st
}

// TrainSurrogates rebuilds twins from the recorded probe traces under the
// service's trace directory (POST /v1/surrogate/train): every sim-target and
// chain-pair trace feeds its samples into the twin of the device it probed,
// then each touched twin refits and is journaled. Traces recorded without
// surrogate probing are the richest training data — their full rasters fill
// the model in one pass — and twin keys ignore the Surrogate knobs, so those
// traces train the same twin later surrogate jobs serve from. Returns
// samples fed per twin key.
func (s *Service) TrainSurrogates() (map[string]int, error) {
	if s.traceDir == "" {
		return nil, errors.New("service: no trace directory: start with DataDir and RecordTraces")
	}
	paths, err := filepath.Glob(filepath.Join(s.traceDir, "*"+trace.Ext))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	fed := make(map[string]int)
	for _, path := range paths {
		meta, samples, err := trace.Read(path)
		if err != nil {
			continue // unreadable or foreign file: not this trace dir's problem
		}
		var nreq Request
		if json.Unmarshal(meta.Request, &nreq) != nil {
			continue
		}
		var key string
		switch {
		case meta.Pair != nil && nreq.ChainSim != nil:
			key, err = chainTwinKey(*nreq.ChainSim, *meta.Pair)
		case nreq.Sim != nil:
			key, err = specTwinKey(*nreq.Sim)
		default:
			continue // benchmark and session traces have no twin identity
		}
		if err != nil {
			return fed, err
		}
		tw := s.acquireTwin(key, meta.Window)
		for _, sm := range samples {
			if len(sm.V) == 2 {
				tw.model.Add(sm.V[0], sm.V[1], sm.I)
			}
		}
		fed[key] += len(samples)
		_ = tw.model.Fit()
		s.persistTwin(key, tw)
		tw.mu.Unlock()
	}
	return fed, nil
}
