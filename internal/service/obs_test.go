package service

import (
	"archive/tar"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/fastvg/fastvg/internal/alert"
	"github.com/fastvg/fastvg/internal/fleet"
	"github.com/fastvg/fastvg/internal/tsdb"
)

// obsRules is the deterministic rule pair the worker-count tests run:
// one zero-ForS rate rule that both fires and resolves inside the
// scripted scrape schedule, and one held threshold rule that walks
// through pending before firing.
func obsRules() []alert.Rule {
	return []alert.Rule{
		{
			Name: "jobs-flowing", Severity: "info",
			Expr: alert.Expr{Fn: "rate", Series: `vgx_service_jobs_total{kind="fast"}`, WindowS: 2},
			Op:   ">", Threshold: 0,
		},
		{
			Name: "jobs-over-five", Severity: "warning",
			Expr: alert.Expr{Fn: "last", Series: "vgx_service_jobs_total", Agg: "sum"},
			Op:   ">", Threshold: 5, ForS: 2,
		},
	}
}

// obsWorkload drives one service through the scripted schedule: three
// concurrent distinct extractions before each of the first four virtual
// seconds, then two quiet seconds, scraping after every step. Returns
// the alert transitions in evaluation order.
func obsWorkload(t *testing.T, svc *Service) []alert.Event {
	t.Helper()
	ctx := context.Background()
	var events []alert.Event
	for step := 1; step <= 6; step++ {
		if step <= 4 {
			var wg sync.WaitGroup
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					if _, err := svc.Run(ctx, Request{Kind: KindFast, Sim: smallSim(seed)}); err != nil {
						t.Errorf("job seed %d: %v", seed, err)
					}
				}(uint64(100*step + i))
			}
			wg.Wait()
		}
		events = append(events, svc.ScrapeNow(float64(step))...)
	}
	return events
}

// TestObsDeterminismAcrossWorkers is the observability determinism
// property: the same scripted workload, scraped on the same virtual
// schedule, must produce byte-identical tsdb query results and the
// identical alert transition sequence at every worker-pool width. Under
// -race this also exercises concurrent extraction against the scrape
// path.
func TestObsDeterminismAcrossWorkers(t *testing.T) {
	queries := []tsdb.Query{
		{Fn: "last", Series: "vgx_service_jobs_total"},
		{Fn: "max", Series: "vgx_service_jobs_total", WindowS: 10},
		{Fn: "rate", Series: `vgx_service_jobs_total{kind="fast"}`, WindowS: 4},
		{Fn: "avg", Series: "vgx_service_inflight", WindowS: 10},
		{Fn: "range", Series: "vgx_sched_submitted_total"},
	}
	var wantQueries []string
	var wantEvents string
	for _, workers := range []int{1, 2, 4, 8} {
		svc, err := New(Config{Workers: workers, CacheSize: 64,
			ScrapeInterval: -1, AlertRules: obsRules()})
		if err != nil {
			t.Fatal(err)
		}
		events := obsWorkload(t, svc)
		evJSON, err := json.Marshal(events)
		if err != nil {
			t.Fatal(err)
		}
		var gotQueries []string
		for _, q := range queries {
			res, err := svc.TSDB().Query(q)
			if err != nil {
				t.Fatalf("workers=%d query %+v: %v", workers, q, err)
			}
			b, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			gotQueries = append(gotQueries, string(b))
		}
		if err := svc.Close(context.Background()); err != nil {
			t.Fatal(err)
		}

		if wantQueries == nil {
			wantQueries = gotQueries
			wantEvents = string(evJSON)
			// The baseline itself must be meaningful: jobs flowed, the
			// rate rule both fired and resolved, the held rule fired.
			if !strings.Contains(wantEvents, `"jobs-flowing"`) || !strings.Contains(wantEvents, "resolved") ||
				!strings.Contains(wantEvents, `"jobs-over-five"`) {
				t.Fatalf("baseline alert sequence incomplete: %s", wantEvents)
			}
			continue
		}
		for i, got := range gotQueries {
			if got != wantQueries[i] {
				t.Errorf("workers=%d query %d differs:\n got %s\nwant %s", workers, i, got, wantQueries[i])
			}
		}
		if string(evJSON) != wantEvents {
			t.Errorf("workers=%d alert sequence differs:\n got %s\nwant %s", workers, evJSON, wantEvents)
		}
	}
}

// TestObsAlertJournalSurvivesRestart checks the durability contract: a
// firing alert journaled by one service incarnation is restored as
// firing by the next, the full history is readable via
// LoadAlertHistory, and the restored rule resolves (with a journaled
// resolved transition) once its condition clears.
func TestObsAlertJournalSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	rules := []alert.Rule{{
		Name: "jobs-seen", Severity: "warning",
		Expr: alert.Expr{Fn: "last", Series: "vgx_service_jobs_total", Agg: "sum"},
		Op:   ">", Threshold: 0,
	}}
	cfg := Config{Workers: 1, DataDir: dir, ScrapeInterval: -1, AlertRules: rules}

	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: smallSim(1)}); err != nil {
		t.Fatal(err)
	}
	events := svc.ScrapeNow(5)
	if len(events) != 1 || events[0].Rule != "jobs-seen" || events[0].State != "firing" {
		t.Fatalf("first scrape events = %+v, want one jobs-seen firing", events)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	// The journal alone tells the story.
	hist, err := LoadAlertHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0].Rule != "jobs-seen" || hist[0].State != "firing" || hist[0].AtS != 5 {
		t.Fatalf("journaled history = %+v, want the firing transition at t=5", hist)
	}

	// Restart: the rule comes back firing without re-announcing...
	svc, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	var restored *alert.Status
	for _, st := range svc.AlertEngine().Statuses() {
		if st.Rule.Name == "jobs-seen" {
			s := st
			restored = &s
		}
	}
	if restored == nil || restored.State != alert.StateFiring {
		t.Fatalf("restored status = %+v, want jobs-seen firing", restored)
	}

	// ...and the fresh registry's zeroed counters resolve it on the next
	// evaluation, emitting (and journaling) the resolved edge.
	events = svc.ScrapeNow(10)
	if len(events) != 1 || events[0].State != "resolved" {
		t.Fatalf("post-restart scrape events = %+v, want one resolved", events)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	hist, err = LoadAlertHistory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[1].State != "resolved" || hist[1].AtS != 10 {
		t.Fatalf("history after restart = %+v, want firing then resolved", hist)
	}
}

// TestObsE2EDriftAndSaturationAlerts is the acceptance scenario: a
// durable service whose fleet drifts past tolerance and whose pool is
// saturated into shedding must raise the default staleness and shed
// alerts from its own scrapes — no custom rules, no external monitor.
func TestObsE2EDriftAndSaturationAlerts(t *testing.T) {
	svc, err := New(Config{
		Workers: 1, MaxQueueDepth: 1, DataDir: t.TempDir(), ScrapeInterval: -1,
		// A tight drift tolerance and an unreachable re-extraction
		// threshold: spot-checks score enormous staleness and the
		// scheduler never repairs it — a fleet falling behind by design.
		Fleet: fleet.Policy{CheckInterval: 600, MaxShiftFrac: 1e-4, StaleThreshold: 1e5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	ctx := context.Background()

	spec, err := fleet.ProfileSpec(fleet.ProfileWandering, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Fleet().Register(fleet.DeviceConfig{ID: "drifter", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	// First tick calibrates; later ticks spot-check against accumulated
	// drift. With tolerance at 1e-4 of the window span, any visible
	// wander scores far past the default rule's threshold of 3.
	for i := 0; i < 8; i++ {
		if _, err := svc.Fleet().Tick(ctx, 600); err != nil {
			t.Fatal(err)
		}
	}
	events := svc.ScrapeNow(1)

	// Saturate the pool and bounce one extraction off the admission gate
	// between two scrapes, so the shed rate over the window is positive.
	release := saturatePool(t, svc, 1)
	if _, err := svc.Run(ctx, Request{Kind: KindFast, Sim: smallSim(42)}); err != ErrOverloaded {
		release()
		t.Fatalf("run under saturation: err = %v, want ErrOverloaded", err)
	}
	release()
	events = append(events, svc.ScrapeNow(2)...)

	firing := map[string]bool{}
	for _, ev := range events {
		if ev.State == "firing" {
			firing[ev.Rule] = true
		}
	}
	if !firing["fleet-staleness-worst"] {
		t.Errorf("fleet-staleness-worst never fired; events = %+v, staleness = %v",
			events, svc.Fleet().Status().WorstStaleness)
	}
	if !firing["service-shedding"] {
		t.Errorf("service-shedding never fired; events = %+v", events)
	}
	for _, rule := range svc.AlertEngine().Firing() {
		if rule == "service-persist-errors" {
			t.Errorf("persist-errors firing on a healthy journal")
		}
	}
}

// TestObsBundleEndpoint pulls GET /debug/bundle from a warmed-up durable
// daemon and verifies the artifact is a well-formed gzipped tar holding
// every self-contained postmortem entry.
func TestObsBundleEndpoint(t *testing.T) {
	svc, err := New(Config{Workers: 1, DataDir: t.TempDir(), ScrapeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	if _, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: smallSim(3)}); err != nil {
		t.Fatal(err)
	}
	svc.ScrapeNow(1)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Errorf("Content-Type = %q, want application/gzip", ct)
	}

	gz, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	entries := map[string][]byte{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		entries[hdr.Name] = b
	}

	for _, name := range []string{
		"vgx-bundle/build.json", "vgx-bundle/metrics.txt", "vgx-bundle/health.json",
		"vgx-bundle/stats.json", "vgx-bundle/fleet.json", "vgx-bundle/tsdb.json",
		"vgx-bundle/alerts.json", "vgx-bundle/spans.txt",
	} {
		if len(entries[name]) == 0 {
			t.Errorf("bundle entry %s missing or empty; have %v", name, keysOf(entries))
		}
	}
	var info struct {
		GoVersion string `json:"goVersion"`
		Durable   bool   `json:"durable"`
		AlertsOn  bool   `json:"alertsOn"`
	}
	if err := json.Unmarshal(entries["vgx-bundle/build.json"], &info); err != nil {
		t.Fatalf("build.json: %v", err)
	}
	if info.GoVersion == "" || !info.Durable || !info.AlertsOn {
		t.Errorf("build.json manifest = %+v, want go version + durable + alerts on", info)
	}
	if !strings.Contains(string(entries["vgx-bundle/metrics.txt"]), "vgx_service_jobs_total") {
		t.Error("metrics.txt lacks the job counter family")
	}
	var tsdbEntry struct {
		Stats struct {
			Series  int `json:"series"`
			Scrapes int `json:"scrapes"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(entries["vgx-bundle/tsdb.json"], &tsdbEntry); err != nil {
		t.Fatalf("tsdb.json: %v", err)
	}
	if tsdbEntry.Stats.Series == 0 || tsdbEntry.Stats.Scrapes != 1 {
		t.Errorf("tsdb.json stats = %+v, want scraped series", tsdbEntry.Stats)
	}
}

func keysOf(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestObsQueryAndAlertsAPI drives the two observability endpoints over
// HTTP: a labelled rate query round-trips through the JSON shape, bad
// queries 400, and the alert board lists every configured rule.
func TestObsQueryAndAlertsAPI(t *testing.T) {
	svc, err := New(Config{Workers: 2, CacheSize: 16, ScrapeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	ctx := context.Background()
	for seed := uint64(1); seed <= 3; seed++ {
		if _, err := svc.Run(ctx, Request{Kind: KindFast, Sim: smallSim(seed)}); err != nil {
			t.Fatal(err)
		}
		svc.ScrapeNow(float64(seed))
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	var res struct {
		Fn     string  `json:"fn"`
		AtS    float64 `json:"atS"`
		Values []struct {
			Series string   `json:"series"`
			Value  *float64 `json:"value"`
		} `json:"values"`
	}
	doJSON(t, "GET", srv.URL+`/v1/query?fn=rate&series=vgx_service_jobs_total&window=2`,
		nil, http.StatusOK, &res)
	if res.Fn != "rate" || res.AtS != 3 {
		t.Fatalf("query echo = %+v, want rate at t=3", res)
	}
	found := false
	for _, v := range res.Values {
		if v.Series == `vgx_service_jobs_total{kind="fast"}` {
			found = true
			if v.Value == nil || *v.Value <= 0 {
				t.Errorf("fast job rate = %v, want positive", v.Value)
			}
		}
	}
	if !found {
		t.Fatalf("no fast-kind series in %+v", res.Values)
	}

	for _, bad := range []string{
		"/v1/query",                             // no selector
		"/v1/query?fn=median&series=x",          // unknown fn
		"/v1/query?fn=last&series=x&window=-1",  // negative window
		"/v1/query?fn=quantile&series=x&q=nope", // unparsable q
	} {
		resp, err := http.Get(srv.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s status = %d, want 400", bad, resp.StatusCode)
		}
	}

	var board struct {
		Alerts []alert.Status `json:"alerts"`
		Firing []string       `json:"firing"`
	}
	doJSON(t, "GET", srv.URL+"/v1/alerts", nil, http.StatusOK, &board)
	if len(board.Alerts) != len(alert.DefaultRules()) {
		t.Errorf("alert board lists %d rules, want the %d defaults",
			len(board.Alerts), len(alert.DefaultRules()))
	}
	if len(board.Firing) != 0 {
		t.Errorf("quiet service firing %v, want none", board.Firing)
	}
}

// TestRouteLabelBoundedCardinality pins the closed route set: every
// label InstrumentHTTP can emit comes from a fixed template list, no
// matter what path a client invents.
func TestRouteLabelBoundedCardinality(t *testing.T) {
	allowed := map[string]bool{
		"/v1/jobs": true, "/v1/batch": true, "/v1/benchmarks": true,
		"/v1/sessions": true, "/v1/surrogate": true, "/v1/surrogate/train": true,
		"/v1/stats": true, "/v1/spans": true, "/v1/fleet": true,
		"/v1/fleet/devices": true, "/v1/fleet/tick": true, "/v1/query": true,
		"/v1/alerts": true, "/v1/healthz": true, "/healthz": true,
		"/metrics": true, "/debug/bundle": true,
		"/v1/jobs/{id}": true, "/v1/sessions/{id}": true, "/v1/spans/{hash}": true,
		"/v1/fleet/devices/{id}": true, "/v1/fleet/devices/{id}/history": true,
		"/v1/fleet/devices/{id}/recalibrate": true, "other": true,
	}
	cases := map[string]string{
		"/v1/jobs":                            "/v1/jobs",
		"/v1/jobs/job-000123":                 "/v1/jobs/{id}",
		"/v1/sessions/sess-7":                 "/v1/sessions/{id}",
		"/v1/spans/0a1b2c":                    "/v1/spans/{hash}",
		"/v1/fleet/devices/lab-a":             "/v1/fleet/devices/{id}",
		"/v1/fleet/devices/lab-a/history":     "/v1/fleet/devices/{id}/history",
		"/v1/fleet/devices/lab-a/recalibrate": "/v1/fleet/devices/{id}/recalibrate",
		"/debug/bundle":                       "/debug/bundle",
		"/etc/passwd":                         "other",
		"/v1/unknown":                         "other",
		"":                                    "other",
	}
	for path, want := range cases {
		if got := RouteLabel(path); got != want {
			t.Errorf("RouteLabel(%q) = %q, want %q", path, got, want)
		}
	}
	// Fuzz-ish sweep: whatever the path, the label stays in the set.
	for i := 0; i < 200; i++ {
		path := fmt.Sprintf("/v1/jobs/%d/../../x%d", i, i)
		if !allowed[RouteLabel(path)] {
			t.Fatalf("RouteLabel(%q) = %q escapes the closed set", path, RouteLabel(path))
		}
	}
}

// TestInstrumentHTTPCountsRoutes checks the middleware end to end: one
// labelled counter increment per request, under the template label.
func TestInstrumentHTTPCountsRoutes(t *testing.T) {
	svc, err := New(Config{Workers: 1, ScrapeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.InstrumentHTTP(svc.Handler()))
	defer srv.Close()

	for _, path := range []string{"/v1/healthz", "/v1/healthz", "/v1/stats", "/v1/jobs/nope"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	expo := svc.Telemetry().Expose()
	for _, want := range []string{
		`vgx_http_requests_total{route="/v1/healthz"} 2`,
		`vgx_http_requests_total{route="/v1/stats"} 1`,
		`vgx_http_requests_total{route="/v1/jobs/{id}"} 1`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}
