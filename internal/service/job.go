// Package service is the extraction server core: a typed job model over
// every pipeline the repository implements, a deduplicating result cache
// keyed by canonical request hashes, a session registry owning live
// instruments, and a bounded scheduler (internal/sched) executing jobs
// concurrently. cmd/vgxd serves it over HTTP; the root package re-exports it
// as the Service façade.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/fastvg/fastvg/internal/anchors"
	"github.com/fastvg/fastvg/internal/chainx"
	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/infogain"
	"github.com/fastvg/fastvg/internal/rays"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// Kind names an extraction pipeline.
type Kind string

// The schedulable pipelines.
const (
	KindFast       Kind = "fast"       // the paper's method (core.Extract)
	KindBaseline   Kind = "baseline"   // full CSD + Canny + Hough
	KindRays       Kind = "rays"       // ray-casting comparison method
	KindAdaptive   Kind = "adaptive"   // coarse-to-fine fast extraction
	KindWindowFind Kind = "windowfind" // scan-window search (autotune)
	KindVerify     Kind = "verify"     // fast extraction + on-device matrix check
	KindChain      Kind = "chain"      // N-dot chain extraction (internal/chainx planner)
	KindInfoGain   Kind = "infogain"   // Bayesian active probe scheduling (internal/infogain)
)

// Kinds lists every valid job kind.
func Kinds() []Kind {
	return []Kind{KindFast, KindBaseline, KindRays, KindAdaptive, KindWindowFind, KindVerify, KindChain, KindInfoGain}
}

func (k Kind) valid() bool {
	switch k {
	case KindFast, KindBaseline, KindRays, KindAdaptive, KindWindowFind, KindVerify, KindChain, KindInfoGain:
		return true
	}
	return false
}

// FastOptions mirrors the root package's Options for fast and adaptive jobs.
type FastOptions struct {
	DiagonalProbes int     `json:"diagonalProbes,omitempty"` // default 10
	GaussSigmaFrac float64 `json:"gaussSigmaFrac,omitempty"` // default 0.25
	DisableFilter  bool    `json:"disableFilter,omitempty"`
	RowSweepOnly   bool    `json:"rowSweepOnly,omitempty"`
	NoShrink       bool    `json:"noShrink,omitempty"`
	CoarseFactor   int     `json:"coarseFactor,omitempty"` // adaptive jobs only; default 4
}

// BaselineOptions mirrors the root package's BaselineOptions.
type BaselineOptions struct {
	CannySigma     float64 `json:"cannySigma,omitempty"`
	CannyHighRatio float64 `json:"cannyHighRatio,omitempty"`
	NoRefine       bool    `json:"noRefine,omitempty"`
}

// RayOptions mirrors the root package's RayOptions.
type RayOptions struct {
	NumRays   int     `json:"numRays,omitempty"`   // default 24
	DropSigma float64 `json:"dropSigma,omitempty"` // default 6
}

// InfoGainOptions tunes infogain jobs (and the infogain rung of a chain
// ladder that includes it). Zero fields use the infogain package defaults.
type InfoGainOptions struct {
	// TargetCI is the stopping rule: each matrix entry's 95% confidence
	// interval must be at most this wide. Default infogain.DefaultTargetCI.
	TargetCI float64 `json:"targetCI,omitempty"`
	// MaxProbes caps the active-phase probes before the scheduler gives up
	// and escalates. Default infogain.DefaultMaxProbes.
	MaxProbes int `json:"maxProbes,omitempty"`
	// NoiseEps is the assumed probe mislabel probability. Default
	// infogain.DefaultNoiseEps.
	NoiseEps float64 `json:"noiseEps,omitempty"`
	// MinProbes is the minimum active probes per line before stopping may
	// fire. Default infogain.DefaultMinProbes.
	MinProbes int `json:"minProbes,omitempty"`
}

// WindowFindOptions bounds a windowfind job's coarse search.
type WindowFindOptions struct {
	V1Min  float64 `json:"v1Min"`
	V1Max  float64 `json:"v1Max"`
	V2Min  float64 `json:"v2Min"`
	V2Max  float64 `json:"v2Max"`
	Pixels int     `json:"pixels,omitempty"` // proposed window resolution; default 100
}

// VerifyOptions tunes a verify job's on-device matrix check.
type VerifyOptions struct {
	MaxShiftFrac float64 `json:"maxShiftFrac,omitempty"` // default 0.02
}

// ChainOptions tunes a chain job's planner. Normalization expands Windows
// to the explicit per-pair list (Dots−1 entries) and Methods to the full
// escalation ladder, so the canonical request hash covers the complete
// window list and ladder — two chain jobs dedupe only when every pair scans
// the same window under the same escalation.
type ChainOptions struct {
	// Windows are the per-pair scan windows; empty uses the spec's
	// recommended window for every pair, otherwise len must be Dots−1.
	Windows []csd.Window `json:"windows,omitempty"`
	// Methods is the per-pair escalation ladder; empty uses the chainx
	// default (fast → adaptive → rays).
	Methods []chainx.Method `json:"methods,omitempty"`
	// Budget caps the probes the whole chain may spend; 0 means unlimited.
	Budget int `json:"budget,omitempty"`
}

// Request describes one extraction job. Exactly one target must be set:
// Benchmark (a 1-based qflow suite index), Sim (a fresh simulated device
// built from the spec), Session (a live instrument in the registry), or
// ChainSim (a fresh N-dot chain device, chain jobs only). Benchmark, Sim
// and ChainSim jobs are deterministic in the request alone, so their
// results are cacheable; Session jobs run against stateful hardware-like
// instruments and always execute.
type Request struct {
	Kind      Kind                  `json:"kind"`
	Benchmark int                   `json:"benchmark,omitempty"`
	Sim       *device.DoubleDotSpec `json:"sim,omitempty"`
	Session   string                `json:"session,omitempty"`
	// ChainSim is the chain-job target: a fresh N-dot chain device built
	// from the spec, one independent instrument per adjacent pair. Chain
	// jobs are deterministic in the request alone, so they are cacheable.
	ChainSim *device.ChainSpec `json:"chainSim,omitempty"`

	Fast       *FastOptions       `json:"fast,omitempty"`
	Baseline   *BaselineOptions   `json:"baseline,omitempty"`
	Rays       *RayOptions        `json:"rays,omitempty"`
	WindowFind *WindowFindOptions `json:"windowFind,omitempty"`
	Verify     *VerifyOptions     `json:"verify,omitempty"`
	Chain      *ChainOptions      `json:"chain,omitempty"`
	InfoGain   *InfoGainOptions   `json:"infoGain,omitempty"`
}

// SuiteSize is the qflow benchmark count (Table 1's 12 CSDs).
const SuiteSize = 12

// Validation errors.
var (
	ErrBadKind   = errors.New("service: unknown job kind")
	ErrBadTarget = errors.New("service: request needs exactly one of benchmark, sim or session")
)

// Validate checks the request is well-formed without touching the registry
// (session existence is checked at execution time).
func (r Request) Validate() error {
	if !r.Kind.valid() {
		return fmt.Errorf("%w %q", ErrBadKind, r.Kind)
	}
	targets := 0
	if r.Benchmark != 0 {
		targets++
		if r.Benchmark < 1 || r.Benchmark > SuiteSize {
			return fmt.Errorf("service: benchmark index %d out of range 1..%d", r.Benchmark, SuiteSize)
		}
	}
	if r.Sim != nil {
		targets++
	}
	if r.Session != "" {
		targets++
	}
	if r.ChainSim != nil {
		targets++
	}
	if targets != 1 {
		return ErrBadTarget
	}
	if (r.Kind == KindChain) != (r.ChainSim != nil) {
		return errors.New("service: chain jobs take a chainSim target, and only chain jobs may set one")
	}
	if r.Kind == KindChain {
		spec := *r.ChainSim
		spec.FillDefaults()
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("service: chain spec: %w", err)
		}
		if r.Chain != nil {
			if len(r.Chain.Windows) != 0 && len(r.Chain.Windows) != spec.Dots-1 {
				return fmt.Errorf("service: chain needs %d pair windows, got %d", spec.Dots-1, len(r.Chain.Windows))
			}
			for i, w := range r.Chain.Windows {
				if err := w.Validate(); err != nil {
					return fmt.Errorf("service: chain pair %d window: %w", i, err)
				}
			}
			for _, m := range r.Chain.Methods {
				if !chainx.ValidMethod(m) {
					return fmt.Errorf("service: chain method %q unknown", m)
				}
			}
			if r.Chain.Budget < 0 {
				return errors.New("service: chain budget must be non-negative")
			}
		}
	}
	if r.Kind == KindWindowFind {
		if r.Benchmark != 0 {
			return errors.New("service: windowfind needs a sim or session target (benchmark windows are known)")
		}
		if r.WindowFind == nil {
			return errors.New("service: windowfind needs windowFind search bounds")
		}
		w := csd.Window{
			V1Min: r.WindowFind.V1Min, V1Max: r.WindowFind.V1Max,
			V2Min: r.WindowFind.V2Min, V2Max: r.WindowFind.V2Max,
			Cols: 2, Rows: 2, // bounds check only
		}
		if err := w.Validate(); err != nil {
			return fmt.Errorf("service: windowfind bounds: %w", err)
		}
	}
	return nil
}

// Normalized returns a copy with defaults made explicit and options
// irrelevant to the kind dropped, so every request that means the same
// extraction has one canonical form — and therefore one hash. This is what
// makes the result cache deduplicate "equivalent" submissions, not just
// byte-identical ones.
func (r Request) Normalized() (Request, error) {
	if err := r.Validate(); err != nil {
		return Request{}, err
	}
	n := Request{
		Kind:      r.Kind,
		Benchmark: r.Benchmark,
		Session:   r.Session,
	}
	if r.Sim != nil {
		spec := *r.Sim
		spec.FillDefaults()
		n.Sim = &spec
	}
	// Defaults come from the packages that own them, so canonical hashes
	// can never drift from what the pipelines actually run.
	anchorDefaults := anchors.DefaultConfig()
	fast := func() *FastOptions {
		f := FastOptions{}
		if r.Fast != nil {
			f = *r.Fast
		}
		if f.DiagonalProbes == 0 {
			f.DiagonalProbes = anchorDefaults.DiagonalPoints
		}
		if f.GaussSigmaFrac == 0 {
			f.GaussSigmaFrac = anchorDefaults.GaussSigmaFrac
		}
		return &f
	}
	infoGain := func() *InfoGainOptions {
		io := InfoGainOptions{}
		if r.InfoGain != nil {
			io = *r.InfoGain
		}
		if io.TargetCI == 0 {
			io.TargetCI = infogain.DefaultTargetCI
		}
		if io.MaxProbes == 0 {
			io.MaxProbes = infogain.DefaultMaxProbes
		}
		if io.NoiseEps == 0 {
			io.NoiseEps = infogain.DefaultNoiseEps
		}
		if io.MinProbes == 0 {
			io.MinProbes = infogain.DefaultMinProbes
		}
		return &io
	}
	switch r.Kind {
	case KindFast:
		n.Fast = fast()
		n.Fast.CoarseFactor = 0
	case KindAdaptive:
		n.Fast = fast()
		if n.Fast.CoarseFactor == 0 {
			n.Fast.CoarseFactor = core.DefaultCoarseFactor
		}
	case KindBaseline:
		b := BaselineOptions{}
		if r.Baseline != nil {
			b = *r.Baseline
		}
		n.Baseline = &b
	case KindRays:
		ro := RayOptions{}
		if r.Rays != nil {
			ro = *r.Rays
		}
		if ro.NumRays == 0 {
			ro.NumRays = rays.DefaultNumRays
		}
		if ro.DropSigma == 0 {
			ro.DropSigma = rays.DefaultDropSigma
		}
		n.Rays = &ro
	case KindInfoGain:
		n.InfoGain = infoGain()
	case KindWindowFind:
		wf := *r.WindowFind
		if wf.Pixels == 0 {
			wf.Pixels = 100
		}
		n.WindowFind = &wf
	case KindVerify:
		n.Fast = fast()
		n.Fast.CoarseFactor = 0
		v := VerifyOptions{MaxShiftFrac: virtualgate.DefaultMaxShiftFrac}
		if r.Verify != nil && r.Verify.MaxShiftFrac != 0 {
			v.MaxShiftFrac = r.Verify.MaxShiftFrac
		}
		n.Verify = &v
	case KindChain:
		spec := *r.ChainSim
		spec.FillDefaults()
		n.ChainSim = &spec
		co := ChainOptions{}
		if r.Chain != nil {
			co = *r.Chain
		}
		// Expand the defaults into explicit form: the canonical hash must
		// cover the full per-pair window list and the full ladder.
		if len(co.Windows) == 0 {
			w := spec.Window()
			co.Windows = make([]csd.Window, spec.Dots-1)
			for i := range co.Windows {
				co.Windows[i] = w
			}
		} else {
			co.Windows = append([]csd.Window(nil), co.Windows...)
		}
		if len(co.Methods) == 0 {
			co.Methods = chainx.DefaultLadder()
		} else {
			co.Methods = append([]chainx.Method(nil), co.Methods...)
		}
		n.Chain = &co
		// The infogain rung's knobs enter the canonical hash only when the
		// ladder actually includes it, so pre-existing chain request hashes
		// are unchanged.
		for _, m := range co.Methods {
			if m == chainx.MethodInfoGain {
				n.InfoGain = infoGain()
				break
			}
		}
		n.Fast = fast()
		if n.Fast.CoarseFactor == 0 {
			n.Fast.CoarseFactor = core.DefaultCoarseFactor
		}
		ro := RayOptions{}
		if r.Rays != nil {
			ro = *r.Rays
		}
		if ro.NumRays == 0 {
			ro.NumRays = rays.DefaultNumRays
		}
		if ro.DropSigma == 0 {
			ro.DropSigma = rays.DefaultDropSigma
		}
		n.Rays = &ro
	}
	return n, nil
}

// Cacheable reports whether the request's result is a pure function of the
// request itself. Session jobs depend on (and advance) live instrument
// state, so they bypass the result cache; surrogate-enabled jobs do the same
// with twin state (the probe split depends on how trained the twin is).
func (r Request) Cacheable() bool { return r.Session == "" && !r.surrogateActive() }

// surrogateActive reports whether the request asks for twin-first probing.
func (r Request) surrogateActive() bool {
	if r.Sim != nil && r.Sim.Surrogate != nil && r.Sim.Surrogate.Threshold > 0 {
		return true
	}
	if r.ChainSim != nil && r.ChainSim.Surrogate != nil && r.ChainSim.Surrogate.Threshold > 0 {
		return true
	}
	return false
}

// Canonical returns the canonical JSON encoding of the normalized request.
// encoding/json emits struct fields in declaration order, so the encoding is
// deterministic; normalization makes it unique per extraction semantics.
func (r Request) Canonical() ([]byte, error) {
	n, err := r.Normalized()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Hash returns the canonical request hash (hex SHA-256 prefix) used as the
// result-cache and deduplication key.
func (r Request) Hash() (string, error) {
	n, err := r.Normalized()
	if err != nil {
		return "", err
	}
	return hashNormalized(n)
}

// hashNormalized hashes a request that is already in canonical form, saving
// the serving path a second normalization (Normalized is idempotent, so
// this equals Hash on the original request).
func hashNormalized(n Request) (string, error) {
	b, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16]), nil
}

// VerifyReport is the verify-job extension of a Result.
type VerifyReport struct {
	OK           bool    `json:"ok"`
	SteepShift   float64 `json:"steepShift"`   // mV of steep-line drift under virtual stepping
	ShallowShift float64 `json:"shallowShift"` // mV of shallow-line drift
}

// ChainReport is the chain-job extension of a Result: the composed chain's
// off-diagonals and every pair's outcome in index order. It contains no
// worker-count- or wall-clock-dependent field, so it is as cacheable and
// replay-comparable as the scalar results.
type ChainReport struct {
	Dots int `json:"dots"`
	// A12/A21 are the composed chain's tridiagonal compensation terms (len
	// Dots−1); empty when any pair failed.
	A12 []float64 `json:"a12,omitempty"`
	A21 []float64 `json:"a21,omitempty"`
	// Pairs holds per-pair matrices, methods, escalation attempts and costs.
	Pairs []chainx.PairResult `json:"pairs"`
	// BudgetDenied counts pairs the probe-budget accountant refused.
	BudgetDenied int `json:"budgetDenied,omitempty"`
	// Surrogate holds the per-pair twin reports of a surrogate-enabled chain
	// job, in pair order; a zero-keyed entry marks a pair never probed
	// (budget-denied before its instrument was wrapped).
	Surrogate []SurrogateReport `json:"surrogate,omitempty"`
}

// Result is the serialisable outcome of a job. Cached results are immutable;
// the service stamps the per-retrieval Cached flag on a copy.
type Result struct {
	Kind      Kind   `json:"kind"`
	Benchmark int    `json:"benchmark,omitempty"`
	Session   string `json:"session,omitempty"`
	Hash      string `json:"hash"`
	Cached    bool   `json:"cached"`

	// Error records an extraction-pipeline failure (e.g. the Hough baseline
	// finding only one line). Pipeline failures are deterministic in the
	// request — the instruments replay identically — so they are results,
	// not transport errors, and repeat submissions hit the cache like any
	// other outcome. Probe/time accounting below is still valid.
	Error string `json:"error,omitempty"`

	SteepSlope   float64 `json:"steepSlope,omitempty"`
	ShallowSlope float64 `json:"shallowSlope,omitempty"`
	A12          float64 `json:"a12,omitempty"` // virtualization matrix off-diagonals
	A21          float64 `json:"a21,omitempty"`
	TripleV1     float64 `json:"tripleV1,omitempty"` // fitted line intersection, mV
	TripleV2     float64 `json:"tripleV2,omitempty"`

	Probes      int     `json:"probes"`             // distinct configurations measured
	ProbePct    float64 `json:"probePct,omitempty"` // of the window's pixels
	ExperimentS float64 `json:"experimentS"`        // dwell time on the virtual clock, seconds
	ComputeS    float64 `json:"computeS"`           // wall-clock algorithm time, seconds

	// Scored is true when analytic ground truth was available (benchmark and
	// sim targets); Success then reports the paper's accuracy criterion.
	Scored        bool    `json:"scored"`
	Success       bool    `json:"success"`
	SteepErrDeg   float64 `json:"steepErrDeg,omitempty"`
	ShallowErrDeg float64 `json:"shallowErrDeg,omitempty"`

	Window    *csd.Window      `json:"window,omitempty"`    // windowfind proposal
	Verify    *VerifyReport    `json:"verify,omitempty"`    // verify-job check
	Chain     *ChainReport     `json:"chain,omitempty"`     // chain-job per-pair results
	Surrogate *SurrogateReport `json:"surrogate,omitempty"` // twin-first probing split
}
