// Package service is the extraction server core: a typed job model over
// every pipeline the repository implements, a deduplicating result cache
// keyed by canonical request hashes, a session registry owning live
// instruments, and a bounded scheduler (internal/sched) executing jobs
// concurrently. cmd/vgxd serves it over HTTP; the root package re-exports it
// as the Service façade.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"github.com/fastvg/fastvg/internal/anchors"
	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/rays"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// Kind names an extraction pipeline.
type Kind string

// The schedulable pipelines.
const (
	KindFast       Kind = "fast"       // the paper's method (core.Extract)
	KindBaseline   Kind = "baseline"   // full CSD + Canny + Hough
	KindRays       Kind = "rays"       // ray-casting comparison method
	KindAdaptive   Kind = "adaptive"   // coarse-to-fine fast extraction
	KindWindowFind Kind = "windowfind" // scan-window search (autotune)
	KindVerify     Kind = "verify"     // fast extraction + on-device matrix check
)

// Kinds lists every valid job kind.
func Kinds() []Kind {
	return []Kind{KindFast, KindBaseline, KindRays, KindAdaptive, KindWindowFind, KindVerify}
}

func (k Kind) valid() bool {
	switch k {
	case KindFast, KindBaseline, KindRays, KindAdaptive, KindWindowFind, KindVerify:
		return true
	}
	return false
}

// FastOptions mirrors the root package's Options for fast and adaptive jobs.
type FastOptions struct {
	DiagonalProbes int     `json:"diagonalProbes,omitempty"` // default 10
	GaussSigmaFrac float64 `json:"gaussSigmaFrac,omitempty"` // default 0.25
	DisableFilter  bool    `json:"disableFilter,omitempty"`
	RowSweepOnly   bool    `json:"rowSweepOnly,omitempty"`
	NoShrink       bool    `json:"noShrink,omitempty"`
	CoarseFactor   int     `json:"coarseFactor,omitempty"` // adaptive jobs only; default 4
}

// BaselineOptions mirrors the root package's BaselineOptions.
type BaselineOptions struct {
	CannySigma     float64 `json:"cannySigma,omitempty"`
	CannyHighRatio float64 `json:"cannyHighRatio,omitempty"`
	NoRefine       bool    `json:"noRefine,omitempty"`
}

// RayOptions mirrors the root package's RayOptions.
type RayOptions struct {
	NumRays   int     `json:"numRays,omitempty"`   // default 24
	DropSigma float64 `json:"dropSigma,omitempty"` // default 6
}

// WindowFindOptions bounds a windowfind job's coarse search.
type WindowFindOptions struct {
	V1Min  float64 `json:"v1Min"`
	V1Max  float64 `json:"v1Max"`
	V2Min  float64 `json:"v2Min"`
	V2Max  float64 `json:"v2Max"`
	Pixels int     `json:"pixels,omitempty"` // proposed window resolution; default 100
}

// VerifyOptions tunes a verify job's on-device matrix check.
type VerifyOptions struct {
	MaxShiftFrac float64 `json:"maxShiftFrac,omitempty"` // default 0.02
}

// Request describes one extraction job. Exactly one target must be set:
// Benchmark (a 1-based qflow suite index), Sim (a fresh simulated device
// built from the spec), or Session (a live instrument in the registry).
// Benchmark and Sim jobs are deterministic in the request alone, so their
// results are cacheable; Session jobs run against stateful hardware-like
// instruments and always execute.
type Request struct {
	Kind      Kind                  `json:"kind"`
	Benchmark int                   `json:"benchmark,omitempty"`
	Sim       *device.DoubleDotSpec `json:"sim,omitempty"`
	Session   string                `json:"session,omitempty"`

	Fast       *FastOptions       `json:"fast,omitempty"`
	Baseline   *BaselineOptions   `json:"baseline,omitempty"`
	Rays       *RayOptions        `json:"rays,omitempty"`
	WindowFind *WindowFindOptions `json:"windowFind,omitempty"`
	Verify     *VerifyOptions     `json:"verify,omitempty"`
}

// SuiteSize is the qflow benchmark count (Table 1's 12 CSDs).
const SuiteSize = 12

// Validation errors.
var (
	ErrBadKind   = errors.New("service: unknown job kind")
	ErrBadTarget = errors.New("service: request needs exactly one of benchmark, sim or session")
)

// Validate checks the request is well-formed without touching the registry
// (session existence is checked at execution time).
func (r Request) Validate() error {
	if !r.Kind.valid() {
		return fmt.Errorf("%w %q", ErrBadKind, r.Kind)
	}
	targets := 0
	if r.Benchmark != 0 {
		targets++
		if r.Benchmark < 1 || r.Benchmark > SuiteSize {
			return fmt.Errorf("service: benchmark index %d out of range 1..%d", r.Benchmark, SuiteSize)
		}
	}
	if r.Sim != nil {
		targets++
	}
	if r.Session != "" {
		targets++
	}
	if targets != 1 {
		return ErrBadTarget
	}
	if r.Kind == KindWindowFind {
		if r.Benchmark != 0 {
			return errors.New("service: windowfind needs a sim or session target (benchmark windows are known)")
		}
		if r.WindowFind == nil {
			return errors.New("service: windowfind needs windowFind search bounds")
		}
		w := csd.Window{
			V1Min: r.WindowFind.V1Min, V1Max: r.WindowFind.V1Max,
			V2Min: r.WindowFind.V2Min, V2Max: r.WindowFind.V2Max,
			Cols: 2, Rows: 2, // bounds check only
		}
		if err := w.Validate(); err != nil {
			return fmt.Errorf("service: windowfind bounds: %w", err)
		}
	}
	return nil
}

// Normalized returns a copy with defaults made explicit and options
// irrelevant to the kind dropped, so every request that means the same
// extraction has one canonical form — and therefore one hash. This is what
// makes the result cache deduplicate "equivalent" submissions, not just
// byte-identical ones.
func (r Request) Normalized() (Request, error) {
	if err := r.Validate(); err != nil {
		return Request{}, err
	}
	n := Request{
		Kind:      r.Kind,
		Benchmark: r.Benchmark,
		Session:   r.Session,
	}
	if r.Sim != nil {
		spec := *r.Sim
		spec.FillDefaults()
		n.Sim = &spec
	}
	// Defaults come from the packages that own them, so canonical hashes
	// can never drift from what the pipelines actually run.
	anchorDefaults := anchors.DefaultConfig()
	fast := func() *FastOptions {
		f := FastOptions{}
		if r.Fast != nil {
			f = *r.Fast
		}
		if f.DiagonalProbes == 0 {
			f.DiagonalProbes = anchorDefaults.DiagonalPoints
		}
		if f.GaussSigmaFrac == 0 {
			f.GaussSigmaFrac = anchorDefaults.GaussSigmaFrac
		}
		return &f
	}
	switch r.Kind {
	case KindFast:
		n.Fast = fast()
		n.Fast.CoarseFactor = 0
	case KindAdaptive:
		n.Fast = fast()
		if n.Fast.CoarseFactor == 0 {
			n.Fast.CoarseFactor = core.DefaultCoarseFactor
		}
	case KindBaseline:
		b := BaselineOptions{}
		if r.Baseline != nil {
			b = *r.Baseline
		}
		n.Baseline = &b
	case KindRays:
		ro := RayOptions{}
		if r.Rays != nil {
			ro = *r.Rays
		}
		if ro.NumRays == 0 {
			ro.NumRays = rays.DefaultNumRays
		}
		if ro.DropSigma == 0 {
			ro.DropSigma = rays.DefaultDropSigma
		}
		n.Rays = &ro
	case KindWindowFind:
		wf := *r.WindowFind
		if wf.Pixels == 0 {
			wf.Pixels = 100
		}
		n.WindowFind = &wf
	case KindVerify:
		n.Fast = fast()
		n.Fast.CoarseFactor = 0
		v := VerifyOptions{MaxShiftFrac: virtualgate.DefaultMaxShiftFrac}
		if r.Verify != nil && r.Verify.MaxShiftFrac != 0 {
			v.MaxShiftFrac = r.Verify.MaxShiftFrac
		}
		n.Verify = &v
	}
	return n, nil
}

// Cacheable reports whether the request's result is a pure function of the
// request itself. Session jobs depend on (and advance) live instrument
// state, so they bypass the result cache.
func (r Request) Cacheable() bool { return r.Session == "" }

// Canonical returns the canonical JSON encoding of the normalized request.
// encoding/json emits struct fields in declaration order, so the encoding is
// deterministic; normalization makes it unique per extraction semantics.
func (r Request) Canonical() ([]byte, error) {
	n, err := r.Normalized()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Hash returns the canonical request hash (hex SHA-256 prefix) used as the
// result-cache and deduplication key.
func (r Request) Hash() (string, error) {
	n, err := r.Normalized()
	if err != nil {
		return "", err
	}
	return hashNormalized(n)
}

// hashNormalized hashes a request that is already in canonical form, saving
// the serving path a second normalization (Normalized is idempotent, so
// this equals Hash on the original request).
func hashNormalized(n Request) (string, error) {
	b, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16]), nil
}

// VerifyReport is the verify-job extension of a Result.
type VerifyReport struct {
	OK           bool    `json:"ok"`
	SteepShift   float64 `json:"steepShift"`   // mV of steep-line drift under virtual stepping
	ShallowShift float64 `json:"shallowShift"` // mV of shallow-line drift
}

// Result is the serialisable outcome of a job. Cached results are immutable;
// the service stamps the per-retrieval Cached flag on a copy.
type Result struct {
	Kind      Kind   `json:"kind"`
	Benchmark int    `json:"benchmark,omitempty"`
	Session   string `json:"session,omitempty"`
	Hash      string `json:"hash"`
	Cached    bool   `json:"cached"`

	// Error records an extraction-pipeline failure (e.g. the Hough baseline
	// finding only one line). Pipeline failures are deterministic in the
	// request — the instruments replay identically — so they are results,
	// not transport errors, and repeat submissions hit the cache like any
	// other outcome. Probe/time accounting below is still valid.
	Error string `json:"error,omitempty"`

	SteepSlope   float64 `json:"steepSlope,omitempty"`
	ShallowSlope float64 `json:"shallowSlope,omitempty"`
	A12          float64 `json:"a12,omitempty"` // virtualization matrix off-diagonals
	A21          float64 `json:"a21,omitempty"`
	TripleV1     float64 `json:"tripleV1,omitempty"` // fitted line intersection, mV
	TripleV2     float64 `json:"tripleV2,omitempty"`

	Probes      int     `json:"probes"`             // distinct configurations measured
	ProbePct    float64 `json:"probePct,omitempty"` // of the window's pixels
	ExperimentS float64 `json:"experimentS"`        // dwell time on the virtual clock, seconds
	ComputeS    float64 `json:"computeS"`           // wall-clock algorithm time, seconds

	// Scored is true when analytic ground truth was available (benchmark and
	// sim targets); Success then reports the paper's accuracy criterion.
	Scored        bool    `json:"scored"`
	Success       bool    `json:"success"`
	SteepErrDeg   float64 `json:"steepErrDeg,omitempty"`
	ShallowErrDeg float64 `json:"shallowErrDeg,omitempty"`

	Window *csd.Window   `json:"window,omitempty"` // windowfind proposal
	Verify *VerifyReport `json:"verify,omitempty"` // verify-job check
}
