package service

import (
	"errors"
	"fmt"
)

// ErrSessionRoute marks a request that cannot be placed by ring key: a
// session-bound job lives wherever its session was opened, and the
// minted session ID carries that shard as its prefix. The router parses
// the prefix instead of calling RouteKey.
var ErrSessionRoute = errors.New("service: session requests route by session id prefix, not ring key")

// RouteKey returns the stable device identity a sharded front door
// hashes to place this request:
//
//	"bench/<index>"   benchmark jobs — one suite CSD per index
//	"sim/<hash>"      simulated double-dot jobs — the spec hash with
//	                  Surrogate knobs cleared, identical to the twin key,
//	                  so a device's cache entries and its trained twin
//	                  always land on the same shard
//	"chain/<hash>"    chain jobs — the chain-spec hash, the prefix of
//	                  every per-pair twin key "chain/<hash>/<pair>"
//
// The key is computed from the normalized request, so equivalent
// requests (defaults explicit or not) route identically. Session
// requests return ErrSessionRoute.
func (r Request) RouteKey() (string, error) {
	n, err := r.Normalized()
	if err != nil {
		return "", err
	}
	switch {
	case n.Session != "":
		return "", ErrSessionRoute
	case n.ChainSim != nil:
		spec := *n.ChainSim
		spec.Surrogate = nil
		return twinHash("chain", spec)
	case n.Sim != nil:
		return specTwinKey(*n.Sim)
	default:
		return fmt.Sprintf("bench/%d", n.Benchmark), nil
	}
}
