package service

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/fastvg/fastvg/internal/chainx"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/trace"
)

// infogainSpec keeps the default 100-px geometry the scheduler's CI target
// was calibrated against.
func infogainSpec(seed uint64) *device.DoubleDotSpec {
	return &device.DoubleDotSpec{
		Pixels: 100, Seed: seed,
		Noise: noise.Params{WhiteSigma: 0.01, PinkAmp: 0.005},
	}
}

// TestInfoGainJob is the service happy path: the active scheduler runs as a
// first-class cacheable job kind and undercuts the fast raster's probe cost.
func TestInfoGainJob(t *testing.T) {
	svc, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	defer svc.Close(ctx)

	res, err := svc.Run(ctx, Request{Kind: KindInfoGain, Sim: infogainSpec(11)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("infogain job failed: %+v", res)
	}
	fast, err := svc.Run(ctx, Request{Kind: KindFast, Sim: infogainSpec(11)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes >= fast.Probes/2 {
		t.Errorf("infogain spent %d probes, want < half of fast's %d", res.Probes, fast.Probes)
	}
	if res.TripleV1 == 0 && res.TripleV2 == 0 {
		t.Error("triple point not filled")
	}

	// The same request is a cache hit: canonical hashing covers the
	// infogain options.
	again, err := svc.Run(ctx, Request{Kind: KindInfoGain, Sim: infogainSpec(11)})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("identical infogain request missed the cache")
	}
	if math.Float64bits(again.A12) != math.Float64bits(res.A12) {
		t.Error("cached result differs")
	}
}

// TestInfoGainTraceReplay pins bit-identical replay: a recorded infogain
// job's trace re-executes the scheduler against the recorded samples and
// reproduces the matrix byte-for-byte with zero live probes.
func TestInfoGainTraceReplay(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 2, DataDir: dir, RecordTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := svc.Run(ctx, Request{Kind: KindInfoGain, Sim: infogainSpec(12)}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}

	paths, err := trace.List(dir + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("%d traces recorded, want 1", len(paths))
	}
	out, err := ReplayTrace(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if out.LiveProbes != 0 {
		t.Fatalf("%d live probes during replay", out.LiveProbes)
	}
	if !out.Match {
		t.Fatalf("replay mismatch: diffs=%v replayErr=%q", out.Diffs, out.ReplayErr)
	}
	if math.Float64bits(out.Reproduced.A12) != math.Float64bits(out.Recorded.A12) ||
		math.Float64bits(out.Reproduced.A21) != math.Float64bits(out.Recorded.A21) {
		t.Fatal("matrix not byte-identical under replay")
	}
}

// TestStatsMethodProbes: /v1/stats reports per-method probe totals, with
// chain jobs attributed to the ladder rung that actually probed.
func TestStatsMethodProbes(t *testing.T) {
	svc, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	defer svc.Close(ctx)

	jobs := []Request{
		{Kind: KindFast, Sim: infogainSpec(13)},
		{Kind: KindRays, Sim: infogainSpec(13)},
		{Kind: KindAdaptive, Sim: infogainSpec(13)},
		{Kind: KindInfoGain, Sim: infogainSpec(13)},
		{Kind: KindChain,
			ChainSim: &device.ChainSpec{Dots: 3, Seed: 5, Noise: noise.Params{WhiteSigma: 0.01}},
			Chain:    &ChainOptions{Methods: chainx.InfoGainLadder()}},
	}
	for i, req := range jobs {
		res, err := svc.Run(ctx, req)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !res.Success {
			t.Fatalf("job %d failed: %+v", i, res)
		}
	}
	mp := svc.Stats().MethodProbes
	for _, m := range []string{"fast", "rays", "adaptive", "infogain"} {
		if mp[m] <= 0 {
			t.Errorf("methodProbes[%q] = %d, want > 0 (full map: %v)", m, mp[m], mp)
		}
	}
	// The chain ran an infogain-first ladder, so the infogain tally exceeds
	// the standalone job's count alone.
	if mp["infogain"] <= 0 {
		t.Errorf("chain infogain probes not attributed: %v", mp)
	}

	// The HTTP surface serves the same map.
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		MethodProbes map[string]int64 `json:"methodProbes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.MethodProbes["infogain"] != mp["infogain"] {
		t.Errorf("/v1/stats methodProbes = %v, want %v", body.MethodProbes, mp)
	}
}
