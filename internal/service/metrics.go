package service

import (
	"github.com/fastvg/fastvg/internal/fleet"
	"github.com/fastvg/fastvg/internal/infogain"
	"github.com/fastvg/fastvg/internal/sched"
	"github.com/fastvg/fastvg/internal/store"
	"github.com/fastvg/fastvg/internal/surrogate"
	"github.com/fastvg/fastvg/internal/telemetry"
)

// serviceMetrics is the process metric surface: the service's own
// vgx_service_* families plus the metric sets of every subsystem it
// owns (scheduler, store, surrogate, infogain, fleet), all registered
// on one registry so GET /metrics is a single coherent scrape.
//
// The struct is always constructed — /v1/stats reads the counters — but
// the parts with a measurable hot-path cost (per-task pool timing,
// per-probe surrogate accounting, span recording) attach only when the
// service runs with telemetry enabled. Counters themselves are one
// atomic add and are never worth gating.
type serviceMetrics struct {
	reg *telemetry.Registry

	jobs       *telemetry.CounterVec   // vgx_service_jobs_total{kind}
	jobErrors  *telemetry.Counter      // vgx_service_job_errors_total
	jobSeconds *telemetry.HistogramVec // vgx_service_job_seconds{kind}
	inflight   *telemetry.Gauge        // vgx_service_inflight
	shed       *telemetry.Counter      // vgx_service_shed_total

	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	cacheEvictions *telemetry.Counter
	cacheCoalesced *telemetry.Counter // gauge-typed: joins un-count when abandoned

	persistErrs  *telemetry.Counter
	methodProbes *telemetry.CounterVec // vgx_service_probes_total{method}

	httpRequests *telemetry.CounterVec   // vgx_http_requests_total{route}
	httpSeconds  *telemetry.HistogramVec // vgx_http_request_seconds{route}

	sched *sched.Metrics
	store *store.Metrics
	sur   *surrogate.Metrics
	ig    *infogain.Metrics
	spans *telemetry.Counter // vgx_service_spans_total (journal failures count persistErrs)
}

// newServiceMetrics registers every family on reg and wires the static
// gauges. pool and cache readers are installed later (gaugeFuncs) once
// those exist.
func newServiceMetrics(reg *telemetry.Registry) *serviceMetrics {
	return &serviceMetrics{
		reg:        reg,
		jobs:       reg.CounterVec("vgx_service_jobs_total", "Jobs executed (cache misses and non-cacheable runs), by request kind.", "kind"),
		jobErrors:  reg.Counter("vgx_service_job_errors_total", "Jobs whose execution returned a transport error (bad request, cancelled, pool closed)."),
		jobSeconds: reg.HistogramVec("vgx_service_job_seconds", "Wall-clock job execution latency, by request kind.", telemetry.SecondsBuckets, "kind"),
		inflight:   reg.Gauge("vgx_service_inflight", "Jobs currently executing (excludes cache hits and coalesced waits)."),
		shed:       reg.Counter("vgx_service_shed_total", "Jobs rejected with ErrOverloaded because the queue-depth limit was reached."),

		cacheHits:      reg.Counter("vgx_service_cache_hits_total", "Result-cache lookups served from a completed entry."),
		cacheMisses:    reg.Counter("vgx_service_cache_misses_total", "Result-cache lookups that executed the extraction."),
		cacheEvictions: reg.Counter("vgx_service_cache_evictions_total", "Entries evicted from the result-cache LRU tail."),
		cacheCoalesced: reg.IntGauge("vgx_service_cache_coalesced", "Lookups served by attaching to an identical in-flight extraction (abandoned joins un-count)."),

		persistErrs:  reg.Counter("vgx_service_persist_errors_total", "Journal/trace/span writes that failed; results were still served."),
		methodProbes: reg.CounterVec("vgx_service_probes_total", "Executed instrument probes, by extraction method.", "method"),

		httpRequests: reg.CounterVec("vgx_http_requests_total", "HTTP requests served, by route pattern (closed set, never the raw path).", "route"),
		httpSeconds:  reg.HistogramVec("vgx_http_request_seconds", "HTTP request latency, by route pattern.", telemetry.SecondsBuckets, "route"),

		sched: sched.NewMetrics(reg),
		store: store.NewMetrics(reg),
		sur:   surrogate.NewMetrics(reg),
		ig:    infogain.NewMetrics(reg),
		spans: reg.Counter("vgx_service_spans_total", "Job span trees recorded."),
	}
}

// attachReaders installs the gauge functions that read live structures:
// cache occupancy and pool saturation. Called once from New after the
// pool and cache exist. Lock order is registry.mu → cache.mu only; the
// cache never touches the registry, so exposition cannot deadlock.
func (m *serviceMetrics) attachReaders(pool *sched.Pool, cache *resultCache) {
	m.reg.GaugeFunc("vgx_service_cache_entries", "Result-cache entries resident.", func() float64 {
		return float64(cache.Len())
	})
	m.reg.GaugeFunc("vgx_sched_saturation", "Pool load factor: (running + queued) / workers.", func() float64 {
		st := pool.Stats()
		if st.Workers == 0 {
			return 0
		}
		return float64(st.Running+pool.Queued()) / float64(st.Workers)
	})
}

// fleetTelemetry bundles the shared metric sets for fleet attachment,
// so fleet-driven surrogate serving and infogain recalibrations count
// into the same process-wide families as interactive jobs.
func (m *serviceMetrics) fleetTelemetry() fleet.Telemetry {
	return fleet.Telemetry{Reg: m.reg, Surrogate: m.sur, InfoGain: m.ig}
}
