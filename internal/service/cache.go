package service

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"github.com/fastvg/fastvg/internal/telemetry"
)

// CacheStats is a snapshot of the result cache's accounting. Counter
// values are read from the telemetry registry's vgx_service_cache_*
// families — /v1/stats and GET /metrics report the same numbers by
// construction.
type CacheStats struct {
	Capacity  int   `json:"capacity"`
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`      // served from a completed entry
	Misses    int64 `json:"misses"`    // executed the extraction
	Coalesced int64 `json:"coalesced"` // attached to an identical in-flight job
	Evictions int64 `json:"evictions"`
}

// HitRate returns the fraction of lookups served without running an
// extraction (hits and coalesced joins over all lookups).
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// flight is one in-progress computation other callers can attach to.
type flight struct {
	done chan struct{}
	res  *Result
	err  error
}

// resultCache is an LRU of completed job results keyed by canonical request
// hash, with single-flight coalescing: concurrent lookups of the same key
// while the first is still extracting wait for that one execution instead of
// starting their own. Errors are not cached — a failed extraction re-runs on
// the next request.
//
// Accounting lives in telemetry counters (registered by serviceMetrics);
// coalesced is gauge-typed because abandoned joins un-count themselves.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight

	hits      *telemetry.Counter
	misses    *telemetry.Counter
	coalesced *telemetry.Counter
	evictions *telemetry.Counter
}

type cacheEntry struct {
	key string
	res *Result
}

func newResultCache(capacity int, m *serviceMetrics) *resultCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &resultCache{
		capacity:  capacity,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		inflight:  make(map[string]*flight),
		hits:      m.cacheHits,
		misses:    m.cacheMisses,
		coalesced: m.cacheCoalesced,
		evictions: m.cacheEvictions,
	}
}

// Do returns the result for key, running fn at most once across all
// concurrent callers. The bool reports whether the result was served without
// invoking fn (cache hit or coalesced join). The returned Result is shared
// and must be treated as immutable.
//
// A caller's own ctx only abandons its wait. If a flight fails because its
// owner was cancelled, the work itself is still wanted by everyone else
// attached to it, so a waiter re-drives it under its own context instead of
// inheriting the stranger's cancellation.
func (c *resultCache) Do(ctx context.Context, key string, fn func() (*Result, error)) (*Result, bool, error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			res := el.Value.(*cacheEntry).res
			c.mu.Unlock()
			c.hits.Inc()
			return res, true, nil
		}
		if fl, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			c.coalesced.Inc()
			// Joins that end up not being served (abandoned wait, owner
			// cancelled and re-driven, flight error) un-count themselves so
			// one logical lookup never contributes twice to the hit rate.
			uncount := func() { c.coalesced.Add(-1) }
			select {
			case <-fl.done:
				if errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded) {
					uncount()
					continue // owner cancelled, not the work: re-drive
				}
				if fl.err != nil {
					uncount()
					return nil, false, fl.err
				}
				return fl.res, true, nil
			case <-ctx.Done():
				uncount()
				return nil, false, context.Cause(ctx)
			}
		}
		fl := &flight{done: make(chan struct{})}
		c.inflight[key] = fl
		c.mu.Unlock()
		c.misses.Inc()

		fl.res, fl.err = fn()

		c.mu.Lock()
		delete(c.inflight, key)
		if fl.err == nil {
			c.insert(key, fl.res)
		}
		c.mu.Unlock()
		close(fl.done)
		return fl.res, false, fl.err
	}
}

// seed inserts a restored result without touching the hit/miss accounting —
// the journal warm start. Seed in journal write order (oldest first) so the
// LRU order after a restart matches the order before it.
func (c *resultCache) seed(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, res)
}

// Get returns the cached result for key without computing anything.
func (c *resultCache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Len returns the resident entry count (the cache-entries gauge).
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// insert adds a completed result, evicting from the LRU tail. Caller holds mu.
func (c *resultCache) insert(key string, res *Result) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// Stats returns a snapshot of the cache accounting.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	entries := c.ll.Len()
	c.mu.Unlock()
	return CacheStats{
		Capacity:  c.capacity,
		Entries:   entries,
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Coalesced: c.coalesced.Value(),
		Evictions: c.evictions.Value(),
	}
}
