package service

import (
	"context"
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/fleet"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/trace"
	"github.com/fastvg/fastvg/internal/xrand"
)

func persistSpec(seed uint64) *device.DoubleDotSpec {
	return &device.DoubleDotSpec{
		Pixels: 64, Seed: seed,
		Noise: noise.Params{WhiteSigma: 0.01, PinkAmp: 0.01},
	}
}

// TestKillRestartServesFromJournal is the acceptance round trip: a durable
// service executes requests and runs fleet ticks, is then abandoned with NO
// clean shutdown (the kill scenario — journal appends hit the file as they
// happen), and a fresh service on the same data dir must serve the same
// requests as cache hits with zero new extractions, with fleet per-device
// staleness/cooldown state restored.
func TestKillRestartServesFromJournal(t *testing.T) {
	dir := t.TempDir()
	reqs := []Request{
		{Kind: KindFast, Sim: persistSpec(3)},
		{Kind: KindRays, Sim: persistSpec(4)},
		{Kind: KindAdaptive, Sim: persistSpec(5)},
	}

	svc1, err := New(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want := make([]*Result, len(reqs))
	for i, req := range reqs {
		if want[i], err = svc1.Run(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	// Fleet traffic on the same journal.
	spec, err := fleet.ProfileSpec(fleet.ProfileWandering, xrand.DeriveSeed(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.Fleet().Register(fleet.DeviceConfig{ID: "wander", Spec: spec}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := svc1.Fleet().Tick(ctx, 300); err != nil {
			t.Fatal(err)
		}
	}
	fleetBefore, ok := svc1.Fleet().Device("wander")
	if !ok || !fleetBefore.Calibrated {
		t.Fatalf("fleet device not calibrated before kill: %+v", fleetBefore)
	}
	// Killed: svc1 is abandoned without Close.

	svc2, err := New(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close(ctx)
	for i, req := range reqs {
		res, err := svc2.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Fatalf("request %d not served from the warm-started cache", i)
		}
		if math.Float64bits(res.A12) != math.Float64bits(want[i].A12) ||
			math.Float64bits(res.A21) != math.Float64bits(want[i].A21) ||
			math.Float64bits(res.SteepSlope) != math.Float64bits(want[i].SteepSlope) {
			t.Fatalf("request %d: restored result differs: %+v vs %+v", i, res, want[i])
		}
	}
	st := svc2.Stats()
	if st.Cache.Misses != 0 || st.Cache.Hits != int64(len(reqs)) {
		t.Fatalf("cache after restart: %+v, want %d hits / 0 misses", st.Cache, len(reqs))
	}
	if st.Store == nil || st.Store.LoadedRecords == 0 {
		t.Fatalf("store stats missing: %+v", st.Store)
	}

	fleetAfter, ok := svc2.Fleet().Device("wander")
	if !ok {
		t.Fatal("fleet device not restored")
	}
	if fleetAfter.Staleness != fleetBefore.Staleness || fleetAfter.State != fleetBefore.State ||
		fleetAfter.LastCalT != fleetBefore.LastCalT || fleetAfter.LastCheckT != fleetBefore.LastCheckT ||
		fleetAfter.Calibrations != fleetBefore.Calibrations {
		t.Fatalf("fleet state not restored: %+v vs %+v", fleetAfter, fleetBefore)
	}
	if now := svc2.Fleet().Now(); now != 8*300 {
		t.Fatalf("fleet clock restored to %v, want %v", now, 8*300)
	}
}

// TestRecordedTraceReplaysByteIdentical runs extractions with trace
// recording on, then replays each trace: the reproduced virtual-gate matrix
// must be byte-identical with zero live-instrument probes.
func TestRecordedTraceReplaysByteIdentical(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 2, DataDir: dir, RecordTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	reqs := []Request{
		{Kind: KindFast, Sim: persistSpec(7)},
		{Kind: KindRays, Sim: persistSpec(8)},
		{Kind: KindVerify, Sim: persistSpec(9)},
	}
	for _, req := range reqs {
		if _, err := svc.Run(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}

	paths, err := trace.List(dir + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(reqs) {
		t.Fatalf("%d traces recorded, want %d", len(paths), len(reqs))
	}
	for _, p := range paths {
		out, err := ReplayTrace(p)
		if err != nil {
			t.Fatal(err)
		}
		if out.LiveProbes != 0 {
			t.Fatalf("%s: %d live probes during replay", p, out.LiveProbes)
		}
		if !out.Match {
			t.Fatalf("%s: replay mismatch: diffs=%v replayErr=%q", p, out.Diffs, out.ReplayErr)
		}
		if math.Float64bits(out.Reproduced.A12) != math.Float64bits(out.Recorded.A12) ||
			math.Float64bits(out.Reproduced.A21) != math.Float64bits(out.Recorded.A21) {
			t.Fatalf("%s: matrix not byte-identical", p)
		}
	}
}

// TestSessionTraceReplays covers the stateful-instrument case: a session
// job's trace records absolute instrument time, and replay reproduces the
// deltas exactly.
func TestSessionTraceReplays(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 2, DataDir: dir, RecordTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sess, err := svc.Registry().OpenSim(*persistSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	// Two jobs on the same session: the second starts with warm memo state
	// and a non-zero virtual clock.
	for i := 0; i < 2; i++ {
		if _, err := svc.Run(ctx, Request{Kind: KindFast, Session: sess.ID()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
	paths, err := trace.List(dir + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("%d traces, want 2", len(paths))
	}
	for _, p := range paths {
		out, err := ReplayTrace(p)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Match {
			t.Fatalf("%s: session replay mismatch: %v %q", p, out.Diffs, out.ReplayErr)
		}
	}
}

// TestReplayJournal re-executes journaled extractions from scratch.
func TestReplayJournal(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := svc.Run(ctx, Request{Kind: KindFast, Sim: persistSpec(13)}); err != nil {
		t.Fatal(err)
	}
	sess, err := svc.Registry().OpenSim(*persistSpec(14))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Run(ctx, Request{Kind: KindFast, Session: sess.ID()}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}

	outs, err := ReplayJournal(ctx, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The session job is uncacheable, so exactly the sim extraction was
	// journaled.
	if len(outs) != 1 {
		t.Fatalf("%d journal outcomes, want 1", len(outs))
	}
	if !outs[0].Match {
		t.Fatalf("journal replay mismatch: %+v", outs[0])
	}
}

// TestRecordTracesRequiresDataDir pins the config invariant.
func TestRecordTracesRequiresDataDir(t *testing.T) {
	if _, err := New(Config{RecordTraces: true}); err == nil {
		t.Fatal("want error for RecordTraces without DataDir")
	}
}
