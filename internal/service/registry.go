package service

import (
	"fmt"
	"sort"
	"sync"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/qflow"
)

// Registry owns the instruments the service extracts from: the qflow
// benchmark suite (generated CSDs are cached so repeat jobs stamp fresh
// replay instruments without re-simulating 40k-pixel rasters) and live
// simulated devices opened as sessions. Many instruments can be owned and
// probed concurrently; each individual session serialises its jobs, the way
// a physical instrument serialises measurements.
type Registry struct {
	mu       sync.Mutex
	suite    []*qflow.Benchmark
	grids    map[int]*benchEntry
	sessions map[string]*Session
	nextID   int
	idPrefix string // stamped on minted session IDs; see Config.InstanceID
}

// setIDPrefix makes minted session IDs carry the owning shard
// ("s3-sess-0001"); the service wires Config.InstanceID through here.
func (r *Registry) setIDPrefix(prefix string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.idPrefix = prefix
}

// benchEntry generates a benchmark's CSD exactly once, even under
// concurrent first requests for the same index.
type benchEntry struct {
	once sync.Once
	g    *grid.Grid
	err  error
}

// NewRegistry loads the benchmark suite definitions (cheap — no CSDs are
// generated until a job needs one).
func NewRegistry() (*Registry, error) {
	suite, err := qflow.Suite()
	if err != nil {
		return nil, err
	}
	return &Registry{
		suite:    suite,
		grids:    make(map[int]*benchEntry),
		sessions: make(map[string]*Session),
	}, nil
}

// Suite returns the benchmark definitions.
func (r *Registry) Suite() []*qflow.Benchmark { return r.suite }

// Benchmark returns the suite benchmark with 1-based index idx and a fresh
// replay instrument over its (cached) CSD. Every job gets its own
// instrument, so probe accounting starts at zero and concurrent jobs on the
// same benchmark never share state.
func (r *Registry) Benchmark(idx int) (*device.DatasetInstrument, *qflow.Benchmark, error) {
	var b *qflow.Benchmark
	for _, cand := range r.suite {
		if cand.Index == idx {
			b = cand
			break
		}
	}
	if b == nil {
		return nil, nil, fmt.Errorf("service: benchmark index %d not in suite", idx)
	}
	r.mu.Lock()
	entry, ok := r.grids[idx]
	if !ok {
		entry = &benchEntry{}
		r.grids[idx] = entry
	}
	r.mu.Unlock()
	entry.once.Do(func() {
		entry.g, entry.err = b.Generate()
	})
	if entry.err != nil {
		return nil, nil, entry.err
	}
	inst, err := device.NewDatasetInstrument(entry.g, b.Window, device.DefaultDwell)
	if err != nil {
		return nil, nil, err
	}
	return inst, b, nil
}

// Session is a live simulated device owned by the registry. Jobs targeting
// it share one instrument — probes memoise across jobs and the virtual clock
// keeps running — which is the hardware-session workload, as opposed to the
// stateless benchmark/sim jobs the cache deduplicates.
type Session struct {
	id   string
	spec device.DoubleDotSpec
	win  csd.Window // immutable after OpenSim

	mu   sync.Mutex // serialises jobs on the instrument
	inst *device.SimInstrument

	// Accounting is snapshotted after each job under its own lock so that
	// monitoring (Info, the sessions/stats endpoints) never blocks behind a
	// long-running extraction holding mu.
	statMu    sync.Mutex
	jobs      int
	lastStats device.Stats
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Spec returns the device specification the session was opened with.
func (s *Session) Spec() device.DoubleDotSpec { return s.spec }

// Window returns the session device's scan window.
func (s *Session) Window() csd.Window { return s.win }

// withInstrument runs fn holding the session's instrument exclusively, then
// refreshes the accounting snapshot.
func (s *Session) withInstrument(fn func(*device.SimInstrument, csd.Window) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := fn(s.inst, s.win)
	s.statMu.Lock()
	s.jobs++
	s.lastStats = s.inst.Stats()
	s.statMu.Unlock()
	return err
}

// SessionInfo is a serialisable session snapshot.
type SessionInfo struct {
	ID     string               `json:"id"`
	Spec   device.DoubleDotSpec `json:"spec"`
	Window csd.Window           `json:"window"`
	Jobs   int                  `json:"jobs"` // jobs executed on the session
	Stats  device.Stats         `json:"stats"`
}

// Info returns a snapshot of the session: identity fields plus accounting
// as of the last completed job. It never waits on a running extraction.
func (s *Session) Info() SessionInfo {
	s.statMu.Lock()
	jobs, stats := s.jobs, s.lastStats
	s.statMu.Unlock()
	return SessionInfo{
		ID:     s.id,
		Spec:   s.spec,
		Window: s.win,
		Jobs:   jobs,
		Stats:  stats,
	}
}

// OpenSim builds a fresh simulated device from spec and registers it as a
// session.
func (r *Registry) OpenSim(spec device.DoubleDotSpec) (*Session, error) {
	inst, win, err := spec.Build()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	id := fmt.Sprintf("sess-%04d", r.nextID)
	if r.idPrefix != "" {
		id = r.idPrefix + "-" + id
	}
	s := &Session{
		id:   id,
		spec: spec,
		inst: inst,
		win:  win,
	}
	r.sessions[s.id] = s
	return s, nil
}

// SessionCount returns the number of open sessions without touching any
// session's accounting.
func (r *Registry) SessionCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Session looks up a session by ID.
func (r *Registry) Session(id string) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	return s, ok
}

// CloseAll removes every session — the shutdown path after the worker pool
// has drained, when no job can still be holding an instrument.
func (r *Registry) CloseAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	clear(r.sessions)
}

// CloseSession removes a session; its instrument is released.
func (r *Registry) CloseSession(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.sessions[id]
	delete(r.sessions, id)
	return ok
}

// Sessions lists open sessions sorted by ID.
func (r *Registry) Sessions() []SessionInfo {
	r.mu.Lock()
	sessions := make([]*Session, 0, len(r.sessions))
	for _, s := range r.sessions {
		sessions = append(sessions, s)
	}
	r.mu.Unlock()

	out := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
