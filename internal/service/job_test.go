package service

import (
	"strings"
	"testing"

	"github.com/fastvg/fastvg/internal/device"
)

// TestHashCanonicalisation checks that requests meaning the same extraction
// share one hash, however the defaults are spelled.
func TestHashCanonicalisation(t *testing.T) {
	implicit := Request{Kind: KindFast, Benchmark: 3}
	explicit := Request{
		Kind:      KindFast,
		Benchmark: 3,
		Fast:      &FastOptions{DiagonalProbes: 10, GaussSigmaFrac: 0.25},
		// Options for other pipelines are irrelevant to a fast job and must
		// not perturb the hash.
		Rays: &RayOptions{NumRays: 99},
	}
	h1, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("equivalent requests hash differently: %s vs %s", h1, h2)
	}

	sim1 := Request{Kind: KindFast, Sim: &device.DoubleDotSpec{}}
	sim2 := Request{Kind: KindFast, Sim: &device.DoubleDotSpec{Pixels: 100, SteepSlope: -8}}
	h3, err := sim1.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h4, err := sim2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 != h4 {
		t.Fatalf("default-spelling sim requests hash differently: %s vs %s", h3, h4)
	}
}

// TestHashDistinguishes checks semantically different requests get
// different hashes.
func TestHashDistinguishes(t *testing.T) {
	base := Request{Kind: KindFast, Benchmark: 3}
	variants := []Request{
		{Kind: KindBaseline, Benchmark: 3},
		{Kind: KindFast, Benchmark: 4},
		{Kind: KindFast, Benchmark: 3, Fast: &FastOptions{DiagonalProbes: 20}},
		{Kind: KindFast, Benchmark: 3, Fast: &FastOptions{RowSweepOnly: true}},
		{Kind: KindAdaptive, Benchmark: 3},
		{Kind: KindFast, Sim: &device.DoubleDotSpec{Seed: 7}},
	}
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{h0: -1}
	for i, v := range variants {
		h, err := v.Hash()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("variants %d and %d collide on %s", prev, i, h)
		}
		seen[h] = i
	}
}

// TestValidate exercises the request validation rules.
func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string // error substring; empty = valid
	}{
		{"valid benchmark", Request{Kind: KindFast, Benchmark: 5}, ""},
		{"valid sim", Request{Kind: KindRays, Sim: &device.DoubleDotSpec{}}, ""},
		{"valid session", Request{Kind: KindFast, Session: "sess-0001"}, ""},
		{"bad kind", Request{Kind: "hough", Benchmark: 1}, "unknown job kind"},
		{"no target", Request{Kind: KindFast}, "exactly one"},
		{"two targets", Request{Kind: KindFast, Benchmark: 1, Sim: &device.DoubleDotSpec{}}, "exactly one"},
		{"benchmark range", Request{Kind: KindFast, Benchmark: 13}, "out of range"},
		{"windowfind on benchmark", Request{Kind: KindWindowFind, Benchmark: 2,
			WindowFind: &WindowFindOptions{V1Max: 100, V2Max: 100}}, "sim or session"},
		{"windowfind without bounds", Request{Kind: KindWindowFind, Sim: &device.DoubleDotSpec{}}, "bounds"},
		{"windowfind degenerate bounds", Request{Kind: KindWindowFind, Sim: &device.DoubleDotSpec{},
			WindowFind: &WindowFindOptions{V1Min: 10, V1Max: 5, V2Max: 100}}, "degenerate"},
	}
	for _, tc := range cases {
		err := tc.req.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestCacheable checks only session jobs bypass the cache.
func TestCacheable(t *testing.T) {
	if !(Request{Kind: KindFast, Benchmark: 1}).Cacheable() {
		t.Error("benchmark jobs should be cacheable")
	}
	if !(Request{Kind: KindFast, Sim: &device.DoubleDotSpec{}}).Cacheable() {
		t.Error("sim jobs should be cacheable")
	}
	if (Request{Kind: KindFast, Session: "sess-0001"}).Cacheable() {
		t.Error("session jobs must not be cacheable")
	}
}
