package service

// The replay benchmark pair behind BENCH_store.json's replay-vs-live
// speedup: the same fast extraction executed live against a fresh simulated
// instrument (BenchmarkExtractionLive) and re-executed from its recorded
// probe trace (BenchmarkExtractionReplay). Replay skips the physics and
// noise synthesis entirely — it serves recorded samples — so it bounds how
// fast the extraction algorithm itself runs when measurement is free.

import (
	"context"
	"testing"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/trace"
)

func benchReplaySpec() *device.DoubleDotSpec {
	return &device.DoubleDotSpec{
		Pixels: 100, Seed: 21,
		Noise: noise.Params{WhiteSigma: 0.01, PinkAmp: 0.012, PinkN: 12},
	}
}

func recordBenchTrace(b *testing.B) string {
	b.Helper()
	dir := b.TempDir()
	svc, err := New(Config{Workers: 1, DataDir: dir, RecordTraces: true})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := svc.Run(context.Background(), Request{Kind: KindFast, Sim: benchReplaySpec()}); err != nil {
		b.Fatal(err)
	}
	if err := svc.Close(context.Background()); err != nil {
		b.Fatal(err)
	}
	paths, err := trace.List(dir + "/traces")
	if err != nil || len(paths) != 1 {
		b.Fatalf("traces = %v, %v", paths, err)
	}
	return paths[0]
}

// BenchmarkExtractionLive runs the fast extraction against a live simulated
// instrument, the cost a cold-cache request pays.
func BenchmarkExtractionLive(b *testing.B) {
	svc, err := New(Config{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	req := Request{Kind: KindFast, Sim: benchReplaySpec()}
	b.ReportAllocs()
	for b.Loop() {
		// A sim request is cacheable; bypass the cache by running the job
		// directly so every iteration pays the full extraction.
		nreq, err := req.Normalized()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := svc.runJob(ctx, nreq, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtractionReplay re-executes the same extraction from its
// recorded trace: the full pipeline runs, but every probe is served from
// the recording. The virtual-s/op metric is the instrument dwell time the
// recorded extraction cost — on hardware that is wall time a live run pays
// and a replay avoids entirely; against the in-process simulator (whose
// dwell is virtual) replay is not a wall-clock win, it is an offline one.
func BenchmarkExtractionReplay(b *testing.B) {
	path := recordBenchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	var experimentS float64
	for b.Loop() {
		out, err := ReplayTrace(path)
		if err != nil {
			b.Fatal(err)
		}
		if !out.Match {
			b.Fatalf("replay mismatch: %v %s", out.Diffs, out.ReplayErr)
		}
		experimentS = out.Recorded.ExperimentS
	}
	b.ReportMetric(experimentS, "virtual-s/op")
}
