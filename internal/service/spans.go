package service

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/fastvg/fastvg/internal/store"
	"github.com/fastvg/fastvg/internal/telemetry"
)

// Request-scoped IDs ride the context from the HTTP edge (or any caller
// of WithRequestID) down to job execution, where they are stamped on the
// job record and echoed as the req_id attribute of the job's span tree.
// They identify a caller's request across log lines, job views and
// journaled spans; they never enter the request hash, so identical work
// from different callers still coalesces.

type reqIDKey struct{}

// WithRequestID returns ctx carrying a request-scoped ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom returns the request-scoped ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// reqIDSeq numbers generated request IDs. A process-local counter, not a
// random token: deterministic, collision-free within the process, and
// cheap. Callers that need global uniqueness send their own X-Request-ID.
var reqIDSeq atomic.Int64

// nextRequestID generates a request ID for callers that sent none.
func nextRequestID() string {
	return fmt.Sprintf("req-%06d", reqIDSeq.Add(1))
}

// liveMetricsKey carries the service metric set to call sites reached
// through free functions (runPipelines) that replay must share. Live
// jobs put it on the context; replay never does, so replayed extractions
// cannot pollute the serving process's counters.
type liveMetricsKey struct{}

func withLiveMetrics(ctx context.Context, m *serviceMetrics) context.Context {
	return context.WithValue(ctx, liveMetricsKey{}, m)
}

func liveMetricsFrom(ctx context.Context) *serviceMetrics {
	m, _ := ctx.Value(liveMetricsKey{}).(*serviceMetrics)
	return m
}

// spansOn reports whether job span trees are recorded and journaled:
// telemetry must be enabled and the service durable (spans persist
// through the journal; without one there is nowhere to read them back).
func (s *Service) spansOn() bool {
	return s.telemetryOn && s.store != nil
}

// journalSpan persists a finished span tree under the request hash.
// Newest supersedes — re-running a request (cache evicted, session job)
// keeps only the latest tree, mirroring the cache's view of the world.
func (s *Service) journalSpan(hash string, sp *telemetry.Span) {
	s.metrics.spans.Inc()
	b, err := sp.Encode()
	if err == nil {
		err = s.store.Put(store.KindSpan, hash, b)
	}
	if err != nil {
		s.metrics.persistErrs.Inc()
	}
}

// SpanTree returns the journaled span tree for a request hash.
func (s *Service) SpanTree(hash string) (*telemetry.Span, bool) {
	if s.store == nil {
		return nil, false
	}
	data, ok := s.store.Get(store.KindSpan, hash)
	if !ok {
		return nil, false
	}
	sp, err := telemetry.DecodeSpan(data)
	if err != nil {
		return nil, false
	}
	return sp, true
}

// SpanHashes lists the request hashes with journaled span trees, sorted.
func (s *Service) SpanHashes() []string {
	if s.store == nil {
		return nil
	}
	recs := s.store.Records(store.KindSpan)
	out := make([]string, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Key)
	}
	sort.Strings(out)
	return out
}

// LoadSpans reads every journaled span tree from a data directory
// without starting a service — the vgxreplay -spans path. Returned in
// key-sorted order as (hash, tree) pairs.
func LoadSpans(dataDir string) ([]SpanRecord, error) {
	st, err := store.Open(dataDir, store.Options{})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	recs := st.Records(store.KindSpan)
	out := make([]SpanRecord, 0, len(recs))
	for _, r := range recs {
		sp, err := telemetry.DecodeSpan(r.Data)
		if err != nil {
			continue // a future format is skipped, not fatal
		}
		out = append(out, SpanRecord{Hash: r.Key, Span: sp})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	return out, nil
}

// SpanRecord is one journaled span tree keyed by its request hash.
type SpanRecord struct {
	Hash string
	Span *telemetry.Span
}

// shortHash abbreviates a request hash for span attributes and logs.
func shortHash(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

// secondsToNS converts the result accounting's float seconds into a
// span duration.
func secondsToNS(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
