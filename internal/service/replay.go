package service

// Persistence glue and offline replay. A durable service journals every
// fresh cacheable result as a cacheRecord (the normalized request plus its
// result, so the extraction can be re-executed from the journal alone) and,
// when trace recording is on, writes a probe trace per executed extraction.
// ReplayTrace re-executes a trace against the recorded samples — zero
// live-instrument probes — and ReplayJournal re-executes journaled requests
// against fresh instruments; both diff the reproduced result against the
// recorded one field by field, requiring bit-identical floats.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"github.com/fastvg/fastvg/internal/chainx"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/qflow"
	"github.com/fastvg/fastvg/internal/store"
	"github.com/fastvg/fastvg/internal/surrogate"
	"github.com/fastvg/fastvg/internal/trace"
)

// cacheRecord is the journal form of one result-cache entry.
type cacheRecord struct {
	Request Request `json:"request"`
	Result  *Result `json:"result"`
}

// persistResult journals a fresh cacheable result. Chain results
// additionally journal one KindChainPair record per pair (keyed
// "<hash>/<pair>"), so individual pair matrices are addressable in the
// journal. Failures are counted, not propagated: the in-memory result is
// correct regardless.
func (s *Service) persistResult(nreq Request, hash string, res *Result) {
	data, err := json.Marshal(cacheRecord{Request: nreq, Result: res})
	if err == nil {
		err = s.store.Put(store.KindCacheEntry, hash, data)
	}
	if err != nil {
		s.metrics.persistErrs.Inc()
	}
	if res.Chain == nil {
		return
	}
	for i := range res.Chain.Pairs {
		data, err := json.Marshal(&res.Chain.Pairs[i])
		if err == nil {
			err = s.store.Put(store.KindChainPair, fmt.Sprintf("%s/%d", hash, i), data)
		}
		if err != nil {
			s.metrics.persistErrs.Inc()
		}
	}
}

// writeTrace renders and writes the probe trace of one executed extraction.
// sur, when non-nil, records the surrogate composition (twin snapshot and
// escalation knobs) that sat between the pipeline and this recorder.
func (s *Service) writeTrace(rec *trace.Recorder, nreq Request, hash string, win csd.Window, truth *qflow.Truth, res *Result, sur *trace.SurrogateMeta) error {
	reqJSON, err := json.Marshal(nreq)
	if err != nil {
		return err
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		return err
	}
	meta := trace.Meta{
		Hash:             hash,
		Request:          reqJSON,
		Result:           resJSON,
		Window:           win,
		Surrogate:        sur,
		BaseUniqueProbes: rec.Base().UniqueProbes,
		BaseRawCalls:     rec.Base().RawCalls,
		BaseVirtualNS:    int64(rec.Base().Virtual),
	}
	if truth != nil {
		meta.Truth = &trace.Truth{Steep: truth.SteepSlope, Shallow: truth.ShallowSlope}
	}
	_, err = trace.Write(s.traceDir, meta, rec.Samples())
	return err
}

// ReplayOutcome is the result of re-executing one recorded extraction.
type ReplayOutcome struct {
	Source string `json:"source"` // trace path, or "journal:<hash>"
	Kind   Kind   `json:"kind"`
	Hash   string `json:"hash"`
	// Pair marks a chain job's per-pair trace replay (the pair index).
	Pair *int `json:"pair,omitempty"`
	// Skipped marks entries that cannot replay offline (session targets in
	// the journal: their instrument state lived in the dead process).
	Skipped    bool   `json:"skipped,omitempty"`
	SkipReason string `json:"skipReason,omitempty"`
	// Match is true when the reproduced result is identical to the recorded
	// one on every comparable field (bit-identical floats) and, for traces,
	// the replay consumed the recorded samples exactly.
	Match bool     `json:"match"`
	Diffs []string `json:"diffs,omitempty"`
	// ReplayErr reports a trace divergence: a probe the recording never
	// made, or recorded samples the re-execution never requested.
	ReplayErr string `json:"replayErr,omitempty"`
	// LiveProbes counts probes against a live instrument during the replay:
	// always 0 for trace replays (the replayer serves recorded samples),
	// and the re-execution's own probe count for journal replays.
	LiveProbes int     `json:"liveProbes"`
	Recorded   *Result `json:"recorded,omitempty"`
	Reproduced *Result `json:"reproduced,omitempty"`
}

// fdiff reports a float field difference requiring bit-identity, so +0/-0
// and NaN patterns are compared exactly, not numerically.
func fdiff(diffs []string, name string, got, want float64) []string {
	if math.Float64bits(got) != math.Float64bits(want) {
		return append(diffs, fmt.Sprintf("%s: %v != recorded %v", name, got, want))
	}
	return diffs
}

// CompareResults diffs a reproduced result against the recorded one over
// every deterministic field — the matrix (bit-identical floats), probe and
// virtual-time accounting, scoring and pipeline error — ignoring wall-clock
// compute time and the per-retrieval Cached flag. Empty means identical.
func CompareResults(reproduced, recorded *Result) []string {
	var diffs []string
	if reproduced.Kind != recorded.Kind {
		diffs = append(diffs, fmt.Sprintf("kind: %s != recorded %s", reproduced.Kind, recorded.Kind))
	}
	if reproduced.Error != recorded.Error {
		diffs = append(diffs, fmt.Sprintf("error: %q != recorded %q", reproduced.Error, recorded.Error))
	}
	diffs = fdiff(diffs, "steepSlope", reproduced.SteepSlope, recorded.SteepSlope)
	diffs = fdiff(diffs, "shallowSlope", reproduced.ShallowSlope, recorded.ShallowSlope)
	diffs = fdiff(diffs, "a12", reproduced.A12, recorded.A12)
	diffs = fdiff(diffs, "a21", reproduced.A21, recorded.A21)
	diffs = fdiff(diffs, "tripleV1", reproduced.TripleV1, recorded.TripleV1)
	diffs = fdiff(diffs, "tripleV2", reproduced.TripleV2, recorded.TripleV2)
	if reproduced.Probes != recorded.Probes {
		diffs = append(diffs, fmt.Sprintf("probes: %d != recorded %d", reproduced.Probes, recorded.Probes))
	}
	diffs = fdiff(diffs, "experimentS", reproduced.ExperimentS, recorded.ExperimentS)
	if reproduced.Scored != recorded.Scored || reproduced.Success != recorded.Success {
		diffs = append(diffs, fmt.Sprintf("scoring: %v/%v != recorded %v/%v",
			reproduced.Scored, reproduced.Success, recorded.Scored, recorded.Success))
	}
	if (reproduced.Window == nil) != (recorded.Window == nil) {
		diffs = append(diffs, "window presence differs")
	} else if reproduced.Window != nil && *reproduced.Window != *recorded.Window {
		diffs = append(diffs, "window differs")
	}
	if (reproduced.Verify == nil) != (recorded.Verify == nil) {
		diffs = append(diffs, "verify presence differs")
	} else if reproduced.Verify != nil && *reproduced.Verify != *recorded.Verify {
		diffs = append(diffs, "verify report differs")
	}
	if (reproduced.Chain == nil) != (recorded.Chain == nil) {
		diffs = append(diffs, "chain presence differs")
	} else if reproduced.Chain != nil {
		diffs = append(diffs, compareChainReports(reproduced.Chain, recorded.Chain)...)
	}
	if (reproduced.Surrogate == nil) != (recorded.Surrogate == nil) {
		diffs = append(diffs, "surrogate presence differs")
	} else if reproduced.Surrogate != nil && *reproduced.Surrogate != *recorded.Surrogate {
		diffs = append(diffs, fmt.Sprintf("surrogate report: %+v != recorded %+v", *reproduced.Surrogate, *recorded.Surrogate))
	}
	return diffs
}

// compareChainReports diffs two chain reports pair by pair, requiring
// bit-identical matrices and identical escalation paths.
func compareChainReports(got, want *ChainReport) []string {
	var diffs []string
	if got.Dots != want.Dots || len(got.Pairs) != len(want.Pairs) {
		return append(diffs, fmt.Sprintf("chain shape: %d dots/%d pairs != recorded %d/%d",
			got.Dots, len(got.Pairs), want.Dots, len(want.Pairs)))
	}
	if got.BudgetDenied != want.BudgetDenied {
		diffs = append(diffs, fmt.Sprintf("chain budgetDenied: %d != recorded %d", got.BudgetDenied, want.BudgetDenied))
	}
	for i := range got.Pairs {
		diffs = append(diffs, ComparePairResults(&got.Pairs[i], &want.Pairs[i])...)
	}
	for i := range got.A12 {
		if i < len(want.A12) {
			diffs = fdiff(diffs, fmt.Sprintf("chain a12[%d]", i), got.A12[i], want.A12[i])
			diffs = fdiff(diffs, fmt.Sprintf("chain a21[%d]", i), got.A21[i], want.A21[i])
		}
	}
	if len(got.A12) != len(want.A12) {
		diffs = append(diffs, fmt.Sprintf("chain composed length: %d != recorded %d", len(got.A12), len(want.A12)))
	}
	if len(got.Surrogate) != len(want.Surrogate) {
		diffs = append(diffs, fmt.Sprintf("chain surrogate reports: %d != recorded %d", len(got.Surrogate), len(want.Surrogate)))
	} else {
		for i := range got.Surrogate {
			if got.Surrogate[i] != want.Surrogate[i] {
				diffs = append(diffs, fmt.Sprintf("chain surrogate[%d]: %+v != recorded %+v", i, got.Surrogate[i], want.Surrogate[i]))
			}
		}
	}
	return diffs
}

// ComparePairResults diffs one reproduced chain pair against the recorded
// one over every deterministic field. Empty means identical.
func ComparePairResults(got, want *chainx.PairResult) []string {
	var diffs []string
	p := func(name string) string { return fmt.Sprintf("pair %d %s", want.Pair, name) }
	if got.Pair != want.Pair {
		diffs = append(diffs, fmt.Sprintf("pair index %d != recorded %d", got.Pair, want.Pair))
	}
	if got.Method != want.Method {
		diffs = append(diffs, fmt.Sprintf("%s: %q != recorded %q", p("method"), got.Method, want.Method))
	}
	if got.Error != want.Error {
		diffs = append(diffs, fmt.Sprintf("%s: %q != recorded %q", p("error"), got.Error, want.Error))
	}
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			diffs = fdiff(diffs, p(fmt.Sprintf("matrix[%d][%d]", r, c)), got.Matrix[r][c], want.Matrix[r][c])
		}
	}
	diffs = fdiff(diffs, p("steepSlope"), got.SteepSlope, want.SteepSlope)
	diffs = fdiff(diffs, p("shallowSlope"), got.ShallowSlope, want.ShallowSlope)
	if got.Probes != want.Probes {
		diffs = append(diffs, fmt.Sprintf("%s: %d != recorded %d", p("probes"), got.Probes, want.Probes))
	}
	diffs = fdiff(diffs, p("experimentS"), got.ExperimentS, want.ExperimentS)
	if len(got.Attempts) != len(want.Attempts) {
		diffs = append(diffs, fmt.Sprintf("%s: %d != recorded %d", p("attempts"), len(got.Attempts), len(want.Attempts)))
	} else {
		for i := range got.Attempts {
			if got.Attempts[i] != want.Attempts[i] {
				diffs = append(diffs, fmt.Sprintf("%s differs: %+v != recorded %+v", p(fmt.Sprintf("attempt %d", i)), got.Attempts[i], want.Attempts[i]))
			}
		}
	}
	return diffs
}

// ReplayTrace re-executes the extraction recorded in the trace file at
// path: the recorded request runs through the same pipeline code against a
// replayer serving the recorded probe samples, with zero live-instrument
// probes, and the reproduced result must come back byte-identical.
func ReplayTrace(path string) (*ReplayOutcome, error) {
	meta, samples, err := trace.Read(path)
	if err != nil {
		return nil, err
	}
	var nreq Request
	if err := json.Unmarshal(meta.Request, &nreq); err != nil {
		return nil, fmt.Errorf("service: trace request: %w", err)
	}
	if meta.Pair != nil {
		return replayChainPairTrace(path, meta, samples, nreq)
	}
	var recorded Result
	if err := json.Unmarshal(meta.Result, &recorded); err != nil {
		return nil, fmt.Errorf("service: trace result: %w", err)
	}
	var truth *qflow.Truth
	if meta.Truth != nil {
		truth = &qflow.Truth{SteepSlope: meta.Truth.Steep, ShallowSlope: meta.Truth.Shallow}
	}
	rp := trace.NewReplayer(meta, samples)
	res := &Result{
		Kind:      nreq.Kind,
		Benchmark: nreq.Benchmark,
		Session:   nreq.Session,
		Hash:      meta.Hash,
	}
	// A surrogate trace holds only the escalated probes: rebuild the same
	// Hybrid over the recorded twin snapshot so every serve/escalate decision
	// replays identically and the replayer sees exactly the recorded stream.
	var inst accountant = rp
	var hyb *surrogate.Hybrid
	if meta.Surrogate != nil {
		model, err := surrogate.Decode(meta.Surrogate.Model)
		if err != nil {
			return nil, fmt.Errorf("service: trace surrogate model: %w", err)
		}
		hyb = &surrogate.Hybrid{Model: model, Inner: rp, Threshold: meta.Surrogate.Threshold, Learn: meta.Surrogate.Learn}
		inst = hyb
	}
	out := &ReplayOutcome{Source: path, Kind: nreq.Kind, Hash: meta.Hash, Recorded: &recorded}
	if err := runPipelines(context.Background(), nreq, inst, meta.Window, truth, res); err != nil {
		return nil, err
	}
	if hyb != nil && nreq.Sim != nil {
		// Mirror settleTwin's post-job refit so Cells/Fitted reproduce.
		if hyb.Learn {
			_ = hyb.Model.Fit()
		}
		key, err := specTwinKey(*nreq.Sim)
		if err != nil {
			return nil, err
		}
		res.Surrogate = surrogateReport(key, hyb)
	}
	out.Reproduced = res
	out.Diffs = CompareResults(res, &recorded)
	if err := rp.Err(); err != nil {
		out.ReplayErr = err.Error()
	} else if rem := rp.Remaining(); rem != 0 {
		out.ReplayErr = fmt.Sprintf("trace: %d recorded samples never replayed", rem)
	}
	out.Match = len(out.Diffs) == 0 && out.ReplayErr == ""
	return out, nil
}

// replayChainPairTrace re-executes one pair of a recorded chain job: the
// pair's escalation ladder runs against the recorded samples and must
// reproduce the recorded PairResult bit for bit.
func replayChainPairTrace(path string, meta trace.Meta, samples []trace.Sample, nreq Request) (*ReplayOutcome, error) {
	if nreq.Kind != KindChain || nreq.ChainSim == nil || nreq.Chain == nil {
		return nil, fmt.Errorf("service: trace %s: pair index on a non-chain request", path)
	}
	pair := *meta.Pair
	var recorded chainx.PairResult
	if err := json.Unmarshal(meta.Result, &recorded); err != nil {
		return nil, fmt.Errorf("service: trace pair result: %w", err)
	}
	out := &ReplayOutcome{Source: path, Kind: nreq.Kind, Hash: meta.Hash, Pair: meta.Pair}
	rp := trace.NewReplayer(meta, samples)
	var inst chainx.PairInstrument = rp
	if meta.Surrogate != nil {
		model, err := surrogate.Decode(meta.Surrogate.Model)
		if err != nil {
			return nil, fmt.Errorf("service: trace surrogate model: %w", err)
		}
		inst = &surrogate.Hybrid{Model: model, Inner: rp, Threshold: meta.Surrogate.Threshold, Learn: meta.Surrogate.Learn}
	}
	pres, err := replayChainPair(context.Background(), nreq, pair, inst, meta.Window)
	if err != nil {
		return nil, err
	}
	out.Diffs = ComparePairResults(pres, &recorded)
	if err := rp.Err(); err != nil {
		out.ReplayErr = err.Error()
	} else if rem := rp.Remaining(); rem != 0 {
		out.ReplayErr = fmt.Sprintf("trace: %d recorded samples never replayed", rem)
	}
	out.Match = len(out.Diffs) == 0 && out.ReplayErr == ""
	return out, nil
}

// ReplayJournal re-executes every extraction journaled under dir against
// fresh instruments (simulated offline — no cache, no prior state) and
// diffs each reproduced result against the recorded one. Session-target
// entries are skipped: their instrument state lived in the recording
// process. The journal is opened with the usual crash recovery.
func ReplayJournal(ctx context.Context, dir string, workers int) ([]ReplayOutcome, error) {
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		return nil, err
	}
	recs := st.Records(store.KindCacheEntry)
	if err := st.Close(); err != nil {
		return nil, err
	}
	svc, err := New(Config{Workers: workers})
	if err != nil {
		return nil, err
	}
	defer svc.Close(context.WithoutCancel(ctx))
	out := make([]ReplayOutcome, 0, len(recs))
	for _, rec := range recs {
		o := ReplayOutcome{Source: "journal:" + rec.Key, Hash: rec.Key}
		var cr cacheRecord
		if err := json.Unmarshal(rec.Data, &cr); err != nil || cr.Result == nil {
			o.Skipped = true
			o.SkipReason = "unreadable journal entry"
			out = append(out, o)
			continue
		}
		o.Kind = cr.Request.Kind
		o.Recorded = cr.Result
		if cr.Request.Session != "" {
			o.Skipped = true
			o.SkipReason = "session target: instrument state not reproducible offline"
			out = append(out, o)
			continue
		}
		res, err := svc.Run(ctx, cr.Request)
		if err != nil {
			return out, err
		}
		o.Reproduced = res
		o.LiveProbes = res.Probes
		o.Diffs = CompareResults(res, cr.Result)
		o.Match = len(o.Diffs) == 0
		out = append(out, o)
	}
	return out, nil
}
