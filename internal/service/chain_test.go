package service

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"github.com/fastvg/fastvg/internal/chainx"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/store"
	"github.com/fastvg/fastvg/internal/trace"
)

func chainSpec(dots int) *device.ChainSpec {
	return &device.ChainSpec{
		Dots:  dots,
		Noise: noise.Params{WhiteSigma: 0.01},
		Seed:  5,
	}
}

func chainReq(dots int) Request {
	return Request{Kind: KindChain, ChainSim: chainSpec(dots)}
}

// TestChainJobRuns is the chain job's happy path: the request executes
// through the planner on the service pool, every pair succeeds and scores,
// the composed chain lands on the result, and the repeat submission is a
// cache hit.
func TestChainJobRuns(t *testing.T) {
	svc, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	res, err := svc.Run(context.Background(), chainReq(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != "" {
		t.Fatalf("chain job failed: %s", res.Error)
	}
	if res.Chain == nil || res.Chain.Dots != 4 || len(res.Chain.Pairs) != 3 {
		t.Fatalf("chain report malformed: %+v", res.Chain)
	}
	if len(res.Chain.A12) != 3 || len(res.Chain.A21) != 3 {
		t.Fatalf("composed off-diagonals missing: %+v", res.Chain)
	}
	if !res.Scored || !res.Success {
		t.Errorf("scored=%v success=%v, want both (pairs: %+v)", res.Scored, res.Success, res.Chain.Pairs)
	}
	if res.Probes <= 0 || res.ExperimentS <= 0 {
		t.Errorf("missing cost accounting: %d probes, %v s", res.Probes, res.ExperimentS)
	}
	for i, p := range res.Chain.Pairs {
		if p.Method != chainx.MethodFast || p.Error != "" {
			t.Errorf("pair %d: method %q error %q", i, p.Method, p.Error)
		}
		if res.Chain.A12[i] != p.Matrix.A12() {
			t.Errorf("pair %d not composed", i)
		}
	}

	again, err := svc.Run(context.Background(), chainReq(4))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeat chain submission missed the cache")
	}
	if again.Hash != res.Hash {
		t.Errorf("hash drifted: %s != %s", again.Hash, res.Hash)
	}
}

// TestChainDeterministicAcrossServiceWorkers: the cached chain result is a
// pure function of the request — two services with different worker counts
// produce byte-identical results.
func TestChainDeterministicAcrossServiceWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4} {
		svc, err := New(Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Run(context.Background(), chainReq(5))
		if err != nil {
			t.Fatal(err)
		}
		res.ComputeS = 0 // the only wall-clock field
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Errorf("workers=%d: chain result differs:\n%s\n%s", workers, got, want)
		}
	}
}

// TestChainRequestValidation covers the chain-specific request shape rules.
func TestChainRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		req  Request
	}{
		{"chain kind without chainSim", Request{Kind: KindChain, Benchmark: 1}},
		{"chainSim on a fast job", Request{Kind: KindFast, ChainSim: chainSpec(4)}},
		{"two targets", Request{Kind: KindChain, ChainSim: chainSpec(4), Benchmark: 1}},
		{"one dot", Request{Kind: KindChain, ChainSim: &device.ChainSpec{Dots: 1}}},
		{"wrong window count", Request{Kind: KindChain, ChainSim: chainSpec(4),
			Chain: &ChainOptions{Windows: []csd.Window{{V1Max: 1, V2Max: 1, Cols: 2, Rows: 2}}}}},
		{"unknown method", Request{Kind: KindChain, ChainSim: chainSpec(4),
			Chain: &ChainOptions{Methods: []chainx.Method{"hough"}}}},
		{"negative budget", Request{Kind: KindChain, ChainSim: chainSpec(4),
			Chain: &ChainOptions{Budget: -1}}},
	}
	for _, c := range cases {
		if err := c.req.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestChainHashCoversWindows: the canonical hash covers the full expanded
// per-pair window list and ladder — defaults hash equal to their explicit
// form, any window change rehashes.
func TestChainHashCoversWindows(t *testing.T) {
	base := chainReq(4)
	h1, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// Defaults made explicit: same hash.
	spec := *base.ChainSim
	spec.FillDefaults()
	w := spec.Window()
	explicit := chainReq(4)
	explicit.Chain = &ChainOptions{
		Windows: []csd.Window{w, w, w},
		Methods: chainx.DefaultLadder(),
	}
	h2, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("explicit defaults hash differently from implied ones")
	}

	// One pair's window nudged: different hash.
	w2 := w
	w2.V1Max += 1
	nudged := chainReq(4)
	nudged.Chain = &ChainOptions{Windows: []csd.Window{w, w2, w}}
	h3, err := nudged.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("window change did not change the canonical hash")
	}

	// A different ladder: different hash.
	ladder := chainReq(4)
	ladder.Chain = &ChainOptions{Methods: []chainx.Method{chainx.MethodRays}}
	h4, err := ladder.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h4 == h1 {
		t.Error("ladder change did not change the canonical hash")
	}
}

// TestChainPersistence: a durable service journals the chain result as a
// cache entry plus one KindChainPair record per pair; a restarted service
// serves the chain from cache, and the pair records decode to the recorded
// pair results.
func TestChainPersistence(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Run(context.Background(), chainReq(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	svc2, err := New(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := svc2.Run(context.Background(), chainReq(4))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("restarted service re-extracted a journaled chain")
	}
	if diffs := CompareResults(res2, res); len(diffs) > 0 {
		t.Errorf("restored chain differs: %v", diffs)
	}
	if err := svc2.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs := st.Records(store.KindChainPair)
	if len(recs) != 3 {
		t.Fatalf("%d chain pair records, want 3", len(recs))
	}
	for i := range res.Chain.Pairs {
		data, ok := st.Get(store.KindChainPair, fmt.Sprintf("%s/%d", res.Hash, i))
		if !ok {
			t.Fatalf("pair %d record missing", i)
		}
		var pr chainx.PairResult
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		if diffs := ComparePairResults(&pr, &res.Chain.Pairs[i]); len(diffs) > 0 {
			t.Errorf("pair %d journal record differs: %v", i, diffs)
		}
	}
}

// TestChainTraceReplay: with trace recording on, a chain job writes one
// per-pair trace, each of which replays bit-identically with zero live
// probes.
func TestChainTraceReplay(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 3, DataDir: dir, RecordTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Run(context.Background(), chainReq(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Error != "" {
		t.Fatalf("chain failed: %s", res.Error)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	paths, err := trace.List(dir + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("%d traces, want one per pair", len(paths))
	}
	seen := map[int]bool{}
	for _, p := range paths {
		out, err := ReplayTrace(p)
		if err != nil {
			t.Fatal(err)
		}
		if out.Pair == nil {
			t.Fatalf("%s: replay outcome has no pair index", p)
		}
		if !out.Match {
			t.Errorf("%s (pair %d): mismatch: %v %s", p, *out.Pair, out.Diffs, out.ReplayErr)
		}
		if out.LiveProbes != 0 {
			t.Errorf("%s: %d live probes during trace replay", p, out.LiveProbes)
		}
		seen[*out.Pair] = true
	}
	if len(seen) != 3 {
		t.Errorf("replayed pairs %v, want all 3", seen)
	}
}

// TestChainJournalReplay: vgxreplay's journal mode re-executes chain
// entries against fresh instruments bit-identically.
func TestChainJournalReplay(t *testing.T) {
	dir := t.TempDir()
	svc, err := New(Config{Workers: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Run(context.Background(), chainReq(3)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	outs, err := ReplayJournal(context.Background(), dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("%d journal outcomes, want 1", len(outs))
	}
	if !outs[0].Match {
		t.Errorf("journal chain replay mismatched: %v", outs[0].Diffs)
	}
}
