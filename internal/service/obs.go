package service

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/fastvg/fastvg/internal/alert"
	"github.com/fastvg/fastvg/internal/store"
	"github.com/fastvg/fastvg/internal/tsdb"
)

// observability is the service's self-watching layer: the in-process
// tsdb scraping the metric registry, the alert engine evaluating the
// rule catalogue over it, and (optionally) the background loop driving
// both on wall time. The pieces share one mutex so a scrape and its
// alert evaluation are one atomic step — the property that makes the
// event sequence a pure function of the scrape schedule, which the
// worker-count determinism tests pin.
type observability struct {
	db     *tsdb.DB
	engine *alert.Engine // nil when alerts are disabled

	mu   sync.Mutex    // serialises scrape+eval pairs
	stop chan struct{} // closes the background loop; nil when none runs
	done chan struct{}
}

// initObs builds the tsdb and alert engine. Called from New after the
// metric registry and (optional) store exist; the background scrape
// loop starts here too unless the interval is negative.
func (s *Service) initObs(cfg Config) error {
	db := tsdb.New(s.metrics.reg, tsdb.Options{Capacity: cfg.TSDBPoints})
	o := &observability{db: db}
	if !cfg.DisableAlerts {
		rules := cfg.AlertRules
		if rules == nil {
			rules = alert.DefaultRules()
		}
		var onEvent func(alert.Event)
		if s.store != nil {
			onEvent = s.journalAlertEvent
		}
		eng, err := alert.New(db, rules, onEvent)
		if err != nil {
			return err
		}
		if s.store != nil {
			eng.Restore(loadAlertEvents(s.store))
		}
		o.engine = eng
	}
	s.obs = o

	// The DB watches itself: series/point occupancy and scrape count ride
	// the same registry the DB scrapes, so capacity planning for the tsdb
	// needs no second system. Values lag one scrape, by construction.
	s.metrics.reg.GaugeFunc("vgx_tsdb_series", "Time-series resident in the in-process tsdb.", func() float64 {
		return float64(db.Stats().Series)
	})
	s.metrics.reg.GaugeFunc("vgx_tsdb_points", "Points retained across all tsdb rings.", func() float64 {
		return float64(db.Stats().Points)
	})
	s.metrics.reg.GaugeFunc("vgx_tsdb_scrapes", "Registry scrapes taken into the tsdb.", func() float64 {
		return float64(db.Stats().Scrapes)
	})
	if o.engine != nil {
		s.metrics.reg.GaugeFunc("vgx_alerts_firing", "Alert rules currently in the firing state.", func() float64 {
			return float64(len(o.engine.Firing()))
		})
	}

	interval := cfg.ScrapeInterval
	if interval == 0 {
		interval = 10 * time.Second
	}
	if interval > 0 {
		o.stop = make(chan struct{})
		o.done = make(chan struct{})
		go s.scrapeLoop(interval)
	}
	return nil
}

// scrapeLoop drives wall-clock scrapes: timestamps are seconds since
// service start, so a daemon's tsdb axis starts at ~0 like the virtual
// clock's does. Stopped by Close before the journal closes.
func (s *Service) scrapeLoop(interval time.Duration) {
	defer close(s.obs.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.obs.stop:
			return
		case <-t.C:
			s.ScrapeNow(time.Since(s.started).Seconds())
		}
	}
}

// stopObs halts the background scrape loop and waits for an in-flight
// scrape to finish, so nothing journals after the store closes.
func (s *Service) stopObs() {
	if s.obs != nil && s.obs.stop != nil {
		close(s.obs.stop)
		<-s.obs.done
		s.obs.stop = nil
	}
}

// ScrapeNow takes one scrape at the given clock reading (seconds —
// wall-derived in the daemon loop, fleet.Now() on tick-driven scrapes)
// and evaluates the alert catalogue at the same instant, returning any
// firing/resolved transitions. The scrape+eval pair is atomic under the
// observability mutex.
func (s *Service) ScrapeNow(atS float64) []alert.Event {
	o := s.obs
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.db.Scrape(atS)
	if o.engine == nil {
		return nil
	}
	return o.engine.Eval(atS)
}

// TSDB exposes the in-process time-series database.
func (s *Service) TSDB() *tsdb.DB { return s.obs.db }

// AlertEngine exposes the alert engine; nil when Config.DisableAlerts.
func (s *Service) AlertEngine() *alert.Engine {
	if s.obs == nil {
		return nil
	}
	return s.obs.engine
}

// journalAlertEvent persists one alert transition as an audit record
// keyed by rule name. Best-effort like every persist: a failed write
// counts a persist error, the alert still fires in memory.
func (s *Service) journalAlertEvent(ev alert.Event) {
	b, err := json.Marshal(ev)
	if err == nil {
		err = s.store.Put(store.KindAlertEvent, ev.Rule, b)
	}
	if err != nil {
		s.metrics.persistErrs.Inc()
	}
}

// loadAlertEvents reads the journaled alert history in append order.
// Undecodable records (a future format) are skipped, not fatal.
func loadAlertEvents(st *store.Store) []alert.Event {
	recs := st.Records(store.KindAlertEvent)
	out := make([]alert.Event, 0, len(recs))
	for _, r := range recs {
		var ev alert.Event
		if json.Unmarshal(r.Data, &ev) != nil {
			continue
		}
		out = append(out, ev)
	}
	// Audit records replay per key; restore needs the global timeline.
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtS < out[j].AtS })
	return out
}

// LoadAlertHistory reads the journaled alert transitions from a data
// directory without starting a service — the vgxreplay -alerts path.
// Oldest first on the evaluation clock.
func LoadAlertHistory(dataDir string) ([]alert.Event, error) {
	st, err := store.Open(dataDir, store.Options{})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return loadAlertEvents(st), nil
}

// RouteLabel classifies a request path into the closed route set used
// as the HTTP metric label — never the raw path, so label cardinality
// stays bounded no matter what callers throw at the daemon.
func RouteLabel(path string) string {
	switch path {
	case "/v1/jobs", "/v1/batch", "/v1/benchmarks", "/v1/sessions",
		"/v1/surrogate", "/v1/surrogate/train", "/v1/stats", "/v1/spans",
		"/v1/fleet", "/v1/fleet/devices", "/v1/fleet/tick",
		"/v1/query", "/v1/alerts", "/v1/healthz", "/healthz", "/metrics",
		"/debug/bundle":
		return path
	}
	switch {
	case strings.HasPrefix(path, "/v1/jobs/"):
		return "/v1/jobs/{id}"
	case strings.HasPrefix(path, "/v1/sessions/"):
		return "/v1/sessions/{id}"
	case strings.HasPrefix(path, "/v1/spans/"):
		return "/v1/spans/{hash}"
	case strings.HasPrefix(path, "/v1/fleet/devices/"):
		switch {
		case strings.HasSuffix(path, "/history"):
			return "/v1/fleet/devices/{id}/history"
		case strings.HasSuffix(path, "/recalibrate"):
			return "/v1/fleet/devices/{id}/recalibrate"
		}
		return "/v1/fleet/devices/{id}"
	}
	return "other"
}

// InstrumentHTTP wraps a handler with the per-route request counter and
// latency histogram (vgx_http_requests_total / vgx_http_request_seconds,
// labelled by RouteLabel, never the raw path). The timing observation is
// gated like every timed instrument; the counter always runs.
func (s *Service) InstrumentHTTP(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := RouteLabel(r.URL.Path)
		start := time.Now()
		next.ServeHTTP(w, r)
		s.metrics.httpRequests.With(route).Inc()
		if s.telemetryOn {
			s.metrics.httpSeconds.With(route).Observe(time.Since(start).Seconds())
		}
	})
}
