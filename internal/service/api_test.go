package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/fleet"
	"github.com/fastvg/fastvg/internal/sched"
)

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc, err := New(Config{Workers: 2, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

// doJSON posts (or gets) JSON and decodes the response into out.
func doJSON(t *testing.T, method, url string, body any, wantCode int, out any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		var raw bytes.Buffer
		_, _ = raw.ReadFrom(resp.Body)
		t.Fatalf("%s %s = %d, want %d: %s", method, url, resp.StatusCode, wantCode, raw.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAPISubmitAndPoll drives the async endpoints end to end.
func TestAPISubmitAndPoll(t *testing.T) {
	_, srv := newTestServer(t)

	var jv JobView
	doJSON(t, "POST", srv.URL+"/v1/jobs",
		Request{Kind: KindFast, Sim: smallSim(10)}, http.StatusAccepted, &jv)
	if jv.ID == "" {
		t.Fatalf("no job id in %+v", jv)
	}

	deadline := time.Now().Add(time.Minute)
	for {
		doJSON(t, "GET", srv.URL+"/v1/jobs/"+jv.ID, nil, http.StatusOK, &jv)
		if jv.Status == StatusDone || jv.Status == StatusFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", jv.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if jv.Status != StatusDone || jv.Result == nil || !jv.Result.Success {
		t.Fatalf("final job view = %+v", jv)
	}

	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	doJSON(t, "GET", srv.URL+"/v1/jobs", nil, http.StatusOK, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != jv.ID {
		t.Fatalf("job list = %+v", list.Jobs)
	}
}

// TestAPIBatchAndStats checks the batch endpoint deduplicates identical
// requests and the stats endpoint reports it.
func TestAPIBatchAndStats(t *testing.T) {
	_, srv := newTestServer(t)

	req := Request{Kind: KindFast, Sim: smallSim(11)}
	var batch struct {
		Items []BatchItem `json:"items"`
	}
	body := map[string]any{"requests": []Request{req, req, req, req}}
	doJSON(t, "POST", srv.URL+"/v1/batch", body, http.StatusOK, &batch)
	if len(batch.Items) != 4 {
		t.Fatalf("batch returned %d items, want 4", len(batch.Items))
	}
	fresh := 0
	for i, item := range batch.Items {
		if item.Error != "" || item.Result == nil {
			t.Fatalf("item %d = %+v", i, item)
		}
		if !item.Result.Cached {
			fresh++
		}
	}
	if fresh != 1 {
		t.Fatalf("%d extractions ran for 4 identical requests, want 1", fresh)
	}

	var stats struct {
		Cache   CacheStats `json:"cache"`
		HitRate float64    `json:"hitRate"`
	}
	doJSON(t, "GET", srv.URL+"/v1/stats", nil, http.StatusOK, &stats)
	if stats.Cache.Misses != 1 || stats.Cache.Hits+stats.Cache.Coalesced != 3 {
		t.Fatalf("cache stats = %+v, want 1 miss and 3 served", stats.Cache)
	}
	if stats.HitRate != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", stats.HitRate)
	}
}

// TestAPISessions exercises the session endpoints and a session-targeted job.
func TestAPISessions(t *testing.T) {
	_, srv := newTestServer(t)

	var info SessionInfo
	doJSON(t, "POST", srv.URL+"/v1/sessions",
		map[string]any{"spec": smallSim(12)}, http.StatusCreated, &info)
	if info.ID == "" {
		t.Fatalf("no session id in %+v", info)
	}

	var batch struct {
		Items []BatchItem `json:"items"`
	}
	doJSON(t, "POST", srv.URL+"/v1/batch",
		map[string]any{"requests": []Request{{Kind: KindFast, Session: info.ID}}},
		http.StatusOK, &batch)
	if batch.Items[0].Error != "" || batch.Items[0].Result == nil {
		t.Fatalf("session job = %+v", batch.Items[0])
	}
	if batch.Items[0].Result.Cached {
		t.Fatal("session job must not be cached")
	}

	var list struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	doJSON(t, "GET", srv.URL+"/v1/sessions", nil, http.StatusOK, &list)
	if len(list.Sessions) != 1 || list.Sessions[0].Jobs != 1 {
		t.Fatalf("session list = %+v", list.Sessions)
	}

	doJSON(t, "DELETE", srv.URL+"/v1/sessions/"+info.ID, nil, http.StatusOK, nil)
	doJSON(t, "DELETE", srv.URL+"/v1/sessions/"+info.ID, nil, http.StatusNotFound, nil)
}

// TestAPIBenchmarksAndHealth checks the static endpoints.
func TestAPIBenchmarksAndHealth(t *testing.T) {
	_, srv := newTestServer(t)
	var bl struct {
		Benchmarks []BenchmarkInfo `json:"benchmarks"`
	}
	doJSON(t, "GET", srv.URL+"/v1/benchmarks", nil, http.StatusOK, &bl)
	if len(bl.Benchmarks) != SuiteSize {
		t.Fatalf("listed %d benchmarks, want %d", len(bl.Benchmarks), SuiteSize)
	}
	for i, b := range bl.Benchmarks {
		if b.Index != i+1 || b.Size == 0 {
			t.Fatalf("benchmark %d = %+v", i, b)
		}
	}
	doJSON(t, "GET", srv.URL+"/healthz", nil, http.StatusOK, nil)
}

// TestAPIErrors checks malformed requests surface as 4xx JSON errors.
func TestAPIErrors(t *testing.T) {
	_, srv := newTestServer(t)
	cases := []struct {
		method, path string
		body         any
		want         int
	}{
		{"POST", "/v1/jobs", Request{Kind: "hough", Benchmark: 1}, http.StatusBadRequest},
		{"POST", "/v1/jobs", map[string]any{"kind": "fast", "nonsense": true}, http.StatusBadRequest},
		{"POST", "/v1/batch", map[string]any{}, http.StatusBadRequest},
		{"GET", "/v1/jobs/job-999999", nil, http.StatusNotFound},
		{"DELETE", "/v1/jobs/job-999999", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		var errBody struct {
			Error string `json:"error"`
		}
		doJSON(t, tc.method, srv.URL+tc.path, tc.body, tc.want, &errBody)
		if errBody.Error == "" {
			t.Errorf("%s %s: no error message in body", tc.method, tc.path)
		}
	}
}

// TestAPIBatchTable1Flag checks the one-call Table 1 batch shape (12
// benchmarks × 2 methods). Result correctness against evalx is covered by
// TestBatchTable1MatchesEvalx; here the concern is the HTTP contract.
func TestAPIBatchTable1Flag(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 batch over HTTP")
	}
	_, srv := newTestServer(t)
	var batch struct {
		Items []BatchItem `json:"items"`
	}
	doJSON(t, "POST", srv.URL+"/v1/batch", map[string]any{"table1": true}, http.StatusOK, &batch)
	if len(batch.Items) != 2*SuiteSize {
		t.Fatalf("table1 batch returned %d items, want %d", len(batch.Items), 2*SuiteSize)
	}
	for i, item := range batch.Items {
		if item.Error != "" || item.Result == nil {
			t.Fatalf("item %d = %+v", i, item)
		}
	}
	var n int
	for _, item := range batch.Items {
		if item.Result.Kind == KindFast {
			n++
		}
	}
	if n != SuiteSize {
		t.Fatalf("%d fast results, want %d", n, SuiteSize)
	}
}

// TestAPIJobCancel checks DELETE on a queued job cancels it. A one-worker
// service with a slow job in the slot guarantees the second job is queued.
func TestAPIJobCancel(t *testing.T) {
	svc, err := New(Config{Workers: 1, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Occupy the only worker slot with a real extraction (a full 200×200
	// baseline raster takes long enough for the cancel to land first).
	var first JobView
	doJSON(t, "POST", srv.URL+"/v1/jobs",
		Request{Kind: KindBaseline, Sim: &device.DoubleDotSpec{Pixels: 200, Seed: 99}},
		http.StatusAccepted, &first)

	var queued JobView
	doJSON(t, "POST", srv.URL+"/v1/jobs",
		Request{Kind: KindFast, Sim: smallSim(13)}, http.StatusAccepted, &queued)
	doJSON(t, "DELETE", srv.URL+"/v1/jobs/"+queued.ID, nil, http.StatusOK, nil)

	deadline := time.Now().Add(time.Minute)
	for {
		doJSON(t, "GET", srv.URL+"/v1/jobs/"+queued.ID, nil, http.StatusOK, &queued)
		if queued.Status == StatusCancelled || queued.Status == StatusDone || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The cancel raced the worker slot: either it won (cancelled) or the
	// slot freed first (done). Both are valid; stuck/failed is not.
	if queued.Status != StatusCancelled && queued.Status != StatusDone {
		t.Fatalf("queued job = %+v, want cancelled or done", queued)
	}
}

// TestAPIFleet drives the fleet endpoints end to end: register, tick the
// virtual clock until the device is calibrated, inspect status and history,
// force a recalibration.
func TestAPIFleet(t *testing.T) {
	_, srv := newTestServer(t)

	var dv fleet.DeviceView
	doJSON(t, "POST", srv.URL+"/v1/fleet/devices", fleet.DeviceConfig{
		ID:   "lab-a",
		Spec: device.DoubleDotSpec{Seed: 5},
	}, http.StatusCreated, &dv)
	if dv.ID != "lab-a" || dv.State != fleet.StateUncalibrated {
		t.Fatalf("registered view = %+v", dv)
	}

	// Duplicate registration is a 400.
	doJSON(t, "POST", srv.URL+"/v1/fleet/devices", fleet.DeviceConfig{
		ID:   "lab-a",
		Spec: device.DoubleDotSpec{Seed: 5},
	}, http.StatusBadRequest, nil)

	// One tick calibrates the fresh device.
	var tickResp struct {
		Now     float64            `json:"now"`
		Reports []fleet.TickReport `json:"reports"`
	}
	doJSON(t, "POST", srv.URL+"/v1/fleet/tick", map[string]any{"advanceS": 300.0, "ticks": 2},
		http.StatusOK, &tickResp)
	if tickResp.Now != 600 || len(tickResp.Reports) != 2 {
		t.Fatalf("tick response = %+v", tickResp)
	}

	var st fleet.Status
	doJSON(t, "GET", srv.URL+"/v1/fleet", nil, http.StatusOK, &st)
	if st.DeviceCount != 1 || st.Calibrations != 1 {
		t.Fatalf("fleet status = %+v", st)
	}
	if len(st.Devices) != 1 || !st.Devices[0].Calibrated {
		t.Fatalf("fleet devices = %+v", st.Devices)
	}

	doJSON(t, "GET", srv.URL+"/v1/fleet/devices/lab-a", nil, http.StatusOK, &dv)
	if !dv.Calibrated || dv.Calibrations != 1 {
		t.Fatalf("device view = %+v", dv)
	}
	doJSON(t, "GET", srv.URL+"/v1/fleet/devices/ghost", nil, http.StatusNotFound, nil)

	var ev fleet.Event
	doJSON(t, "POST", srv.URL+"/v1/fleet/devices/lab-a/recalibrate", nil, http.StatusOK, &ev)
	if ev.Kind != "force" {
		t.Fatalf("forced event = %+v", ev)
	}
	doJSON(t, "POST", srv.URL+"/v1/fleet/devices/ghost/recalibrate", nil, http.StatusNotFound, nil)

	var hist struct {
		Events []fleet.Event `json:"events"`
	}
	doJSON(t, "GET", srv.URL+"/v1/fleet/devices/lab-a/history", nil, http.StatusOK, &hist)
	if len(hist.Events) < 2 {
		t.Fatalf("history = %+v, want calibrate + force", hist.Events)
	}
	if hist.Events[0].Kind != "calibrate" {
		t.Errorf("first event kind = %q, want calibrate", hist.Events[0].Kind)
	}

	// Bad tick arguments surface as 400s.
	doJSON(t, "POST", srv.URL+"/v1/fleet/tick", map[string]any{"advanceS": 0.0},
		http.StatusBadRequest, nil)
}

// TestAPIHealthzAndClose covers the liveness endpoint through a graceful
// shutdown: healthy while serving, 503 + draining after Close, and Close
// leaves no sessions behind.
func TestAPIHealthzAndClose(t *testing.T) {
	svc, srv := newTestServer(t)
	if _, err := svc.Registry().OpenSim(device.DoubleDotSpec{}); err != nil {
		t.Fatal(err)
	}

	var h Health
	doJSON(t, "GET", srv.URL+"/v1/healthz", nil, http.StatusOK, &h)
	if !h.OK || h.Draining || h.Workers != 2 || h.Sessions != 1 {
		t.Fatalf("health = %+v", h)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	doJSON(t, "GET", srv.URL+"/v1/healthz", nil, http.StatusServiceUnavailable, &h)
	if h.OK || !h.Draining {
		t.Fatalf("post-close health = %+v", h)
	}
	if n := svc.Registry().SessionCount(); n != 0 {
		t.Errorf("sessions after Close = %d, want 0", n)
	}
	// New work is refused by the drained pool.
	if _, err := svc.Run(context.Background(), Request{Kind: KindFast, Benchmark: 1}); !errors.Is(err, sched.ErrClosed) {
		t.Errorf("post-Close Run err = %v, want sched.ErrClosed", err)
	}
}
