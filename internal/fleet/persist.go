package fleet

// Durable fleet state. The manager persists through internal/store: one
// KindFleetDevice record per device (the full per-pair calibration state,
// superseded on every event), one KindFleetClock record (virtual clock,
// budget window and fleet-wide counters), and an append-only KindFleetEvent
// audit record per calibration-history event. AttachStore restores all of
// it on restart, so every pair's staleness score, cooldown and hysteresis
// evidence survives a daemon bounce instead of forcing every device — or
// every pair of a chain whose neighbours were fresh — through full
// re-extraction.
//
// What restore reproduces is the manager's decision state, not the noise
// realisation: a restored pair is rebuilt from its spec with the virtual
// clock advanced to the persisted fleet time, so its drift processes resume
// at the right epoch, but call-count-driven noise (white noise RNG streams)
// restarts its sequence. Every scheduling decision — which pair is stale,
// which is cooling down, what the budget window has spent — is restored
// exactly.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/store"
	"github.com/fastvg/fastvg/internal/surrogate"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// persistedPair is the journal form of one pair's calibration state.
type persistedPair struct {
	Pair int `json:"pair"`

	HasCal         bool             `json:"hasCal"`
	Matrix         virtualgate.Mat2 `json:"matrix"`
	KneeV1         float64          `json:"kneeV1"`
	KneeV2         float64          `json:"kneeV2"`
	Steep          float64          `json:"steep"`
	Shallow        float64          `json:"shallow"`
	BaseSteep      []float64        `json:"baseSteep,omitempty"`
	BaseShallow    []float64        `json:"baseShallow,omitempty"`
	Score          float64          `json:"score"`
	ScoreT         float64          `json:"scoreT"`
	Lost           bool             `json:"lost"`
	LastCalT       float64          `json:"lastCalT"`
	LastAttemptT   float64          `json:"lastAttemptT"`
	LastCheckT     float64          `json:"lastCheckT"`
	Attempts       int              `json:"attempts"`
	MaxFinite      float64          `json:"maxFinite"`
	Checks         int              `json:"checks"`
	Calibrations   int              `json:"calibrations"`
	Forced         int              `json:"forced"`
	FailedCals     int              `json:"failedCals"`
	LostEvents     int              `json:"lostEvents"`
	Probes         int              `json:"probes"`
	ProbesSaved    int              `json:"probesSaved,omitempty"`
	BudgetDeferred int              `json:"budgetDeferred"`
}

// persistedDevice is the journal form of one device's calibration state.
type persistedDevice struct {
	ID     string               `json:"id"`
	Weight float64              `json:"weight"`
	Spec   device.DoubleDotSpec `json:"spec"`
	Chain  *device.ChainSpec    `json:"chain,omitempty"`

	Pairs   []persistedPair `json:"pairs"`
	History []Event         `json:"history,omitempty"`
}

// legacyDevice is the pre-chain journal form: one device, one implicit
// pair, calibration state flat on the device record. Journals written
// before per-pair staleness decode through it (migrated on the next save).
type legacyDevice struct {
	persistedPair
	History []Event `json:"history,omitempty"`
}

// persistedClock is the journal form of the manager's fleet-wide state.
type persistedClock struct {
	Now             float64 `json:"now"`
	WindowStart     float64 `json:"windowStart"`
	BudgetUsed      int     `json:"budgetUsed"`
	NextID          int     `json:"nextID"`
	Checks          int     `json:"checks"`
	Calibrations    int     `json:"calibrations"`
	Recalibrations  int     `json:"recalibrations"`
	PartialRecals   int     `json:"partialRecals"`
	Forced          int     `json:"forced"`
	FailedCals      int     `json:"failedCals"`
	LostEvents      int     `json:"lostEvents"`
	ProbesSpent     int     `json:"probesSpent"`
	ProbesSaved     int     `json:"probesSaved,omitempty"`
	MaxWindowProbes int     `json:"maxWindowProbes"`
	SkippedBudget   int     `json:"skippedBudget"`
	WorstStaleness  float64 `json:"worstStaleness"`
}

// persistSnapshot renders the pair's journal record; callers hold the
// owning dev's mu.
func (pc *pairCal) persistSnapshot() persistedPair {
	return persistedPair{
		Pair:   pc.idx,
		HasCal: pc.hasCal, Matrix: pc.matrix,
		KneeV1: pc.kneeV1, KneeV2: pc.kneeV2, Steep: pc.steep, Shallow: pc.shallow,
		BaseSteep:   append([]float64(nil), pc.baseSteep...),
		BaseShallow: append([]float64(nil), pc.baseShallow...),
		Score:       pc.score, ScoreT: pc.scoreT, Lost: pc.lost,
		LastCalT: pc.lastCalT, LastAttemptT: pc.lastAttemptT, LastCheckT: pc.lastCheckT,
		Attempts: pc.attempts, MaxFinite: pc.maxFinite,
		Checks: pc.checks, Calibrations: pc.calibrations, Forced: pc.forced,
		FailedCals: pc.failedCals, LostEvents: pc.lostEvents, Probes: pc.probes,
		ProbesSaved:    pc.probesSaved,
		BudgetDeferred: pc.budgetDeferred,
	}
}

// restore writes the persisted fields back onto a freshly built pair.
func (p persistedPair) restore(pc *pairCal) {
	pc.hasCal = p.HasCal
	pc.matrix = p.Matrix
	pc.kneeV1, pc.kneeV2 = p.KneeV1, p.KneeV2
	pc.steep, pc.shallow = p.Steep, p.Shallow
	pc.baseSteep, pc.baseShallow = p.BaseSteep, p.BaseShallow
	pc.score, pc.scoreT, pc.lost = p.Score, p.ScoreT, p.Lost
	pc.lastCalT, pc.lastAttemptT, pc.lastCheckT = p.LastCalT, p.LastAttemptT, p.LastCheckT
	pc.attempts = p.Attempts
	pc.maxFinite = p.MaxFinite
	pc.checks, pc.calibrations, pc.forced = p.Checks, p.Calibrations, p.Forced
	pc.failedCals, pc.lostEvents, pc.probes = p.FailedCals, p.LostEvents, p.Probes
	pc.probesSaved = p.ProbesSaved
	pc.budgetDeferred = p.BudgetDeferred
}

// persistSnapshot renders the device's journal record; callers hold d.mu.
func (d *dev) persistSnapshot() persistedDevice {
	pd := persistedDevice{
		ID: d.id, Weight: d.weight, Spec: d.spec, Chain: d.chain,
		History: append([]Event(nil), d.history...),
	}
	for _, pc := range d.pairs {
		pd.Pairs = append(pd.Pairs, pc.persistSnapshot())
	}
	return pd
}

// restore builds a dev from its journal record, with every pair's
// instrument clock advanced to the fleet's restored virtual time.
func (p persistedDevice) restore(now float64) (*dev, error) {
	cfg := DeviceConfig{ID: p.ID, Weight: p.Weight, Spec: p.Spec, Chain: p.Chain}
	pairs, err := buildPairs(&cfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: restoring %q: %w", p.ID, err)
	}
	if len(p.Pairs) != len(pairs) {
		return nil, fmt.Errorf("fleet: restoring %q: %d persisted pairs for a %d-pair device", p.ID, len(p.Pairs), len(pairs))
	}
	d := &dev{
		id: p.ID, weight: p.Weight, spec: p.Spec, chain: cfg.Chain,
		pairs:   pairs,
		history: p.History,
	}
	for i, pp := range p.Pairs {
		pp.restore(d.pairs[i])
		d.pairs[i].adv(time.Duration(now * float64(time.Second)))
	}
	return d, nil
}

// AttachStore restores the manager's state from st — the virtual clock,
// budget window, fleet-wide counters, and every persisted device with its
// per-pair staleness scores, cooldown timestamps and history ring — and
// then keeps st as the journal: every subsequent calibration event is
// persisted as it happens. Call before the first Tick; restored devices
// must not collide with ones already registered.
func (m *Manager) AttachStore(st *store.Store) error {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()

	if data, ok := st.Get(store.KindFleetClock, ""); ok {
		var pc persistedClock
		if err := json.Unmarshal(data, &pc); err != nil {
			return fmt.Errorf("fleet: clock record: %w", err)
		}
		m.now = pc.Now
		m.windowStart = pc.WindowStart
		m.budgetUsed = pc.BudgetUsed
		m.nextID = pc.NextID
		m.checks = pc.Checks
		m.calibrations = pc.Calibrations
		m.recalibrations = pc.Recalibrations
		m.partialRecals = pc.PartialRecals
		m.forced = pc.Forced
		m.failedCals = pc.FailedCals
		m.lostEvents = pc.LostEvents
		m.probesSpent = pc.ProbesSpent
		m.probesSaved = pc.ProbesSaved
		m.maxWindowProbes = pc.MaxWindowProbes
		m.skippedBudget = pc.SkippedBudget
		m.worstStaleness = pc.WorstStaleness
	}
	for _, rec := range st.Records(store.KindFleetDevice) {
		var pd persistedDevice
		if err := json.Unmarshal(rec.Data, &pd); err != nil {
			return fmt.Errorf("fleet: device record %q: %w", rec.Key, err)
		}
		if len(pd.Pairs) == 0 && pd.Chain == nil {
			// A pre-chain flat record: its calibration state is the single
			// implicit pair of a double-dot device.
			var old legacyDevice
			if err := json.Unmarshal(rec.Data, &old); err != nil {
				return fmt.Errorf("fleet: legacy device record %q: %w", rec.Key, err)
			}
			old.Pair = 0
			pd.Pairs = []persistedPair{old.persistedPair}
		}
		if _, dup := m.devices[pd.ID]; dup {
			return fmt.Errorf("fleet: restored device %q collides with a registered one", pd.ID)
		}
		d, err := pd.restore(m.now)
		if err != nil {
			return err
		}
		// The journal keeps the full event log; the restored in-memory ring
		// re-applies the current cap.
		if over := len(d.history) - m.pol.HistoryCap; over > 0 {
			d.history = append([]Event(nil), d.history[over:]...)
		}
		m.devices[pd.ID] = d
		m.order = append(m.order, pd.ID)
	}
	sort.Strings(m.order)
	m.restoreModels(st)
	m.journal = st
	return nil
}

// restoreModels reattaches persisted surrogate twins ("fleet/<id>/<pair>"
// KindSurrogateModel records) to their restored pairs. A missing, foreign
// (the extraction service's "sim/..." and "chain/..." keys share the kind)
// or undecodable record just leaves the pair twinless — it relearns from its
// next probes. Callers hold m.mu.
func (m *Manager) restoreModels(st *store.Store) {
	for _, rec := range st.Records(store.KindSurrogateModel) {
		rest, isFleet := strings.CutPrefix(rec.Key, "fleet/")
		if !isFleet {
			continue
		}
		slash := strings.LastIndexByte(rest, '/')
		if slash < 0 {
			continue
		}
		pair, err := strconv.Atoi(rest[slash+1:])
		if err != nil {
			continue
		}
		d, ok := m.devices[rest[:slash]]
		if !ok || pair < 0 || pair >= len(d.pairs) {
			continue
		}
		model, err := surrogate.Decode(rec.Data)
		if err != nil || model.Win() != d.pairs[pair].win {
			continue
		}
		d.pairs[pair].model = model
	}
}

// journalStore returns the attached journal (nil when not persisting).
func (m *Manager) journalStore() *store.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.journal
}

// saveDevice persists a device's current state; callers hold d.mu.
func (m *Manager) saveDevice(d *dev) error {
	st := m.journalStore()
	if st == nil {
		return nil
	}
	data, err := json.Marshal(d.persistSnapshot())
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	if err := st.Put(store.KindFleetDevice, d.id, data); err != nil {
		return err
	}
	return nil
}

// saveEvent appends one calibration event to the journal's audit log;
// callers hold d.mu.
func (m *Manager) saveEvent(id string, ev Event) error {
	st := m.journalStore()
	if st == nil {
		return nil
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	return st.Put(store.KindFleetEvent, id, data)
}

// clockSnapshotLocked marshals the fleet-wide clock and counters; callers
// hold m.mu. Every field is a finite number, so the encoding cannot fail.
func (m *Manager) clockSnapshotLocked() []byte {
	pc := persistedClock{
		Now: m.now, WindowStart: m.windowStart, BudgetUsed: m.budgetUsed,
		NextID: m.nextID,
		Checks: m.checks, Calibrations: m.calibrations, Recalibrations: m.recalibrations,
		PartialRecals: m.partialRecals,
		Forced:        m.forced, FailedCals: m.failedCals, LostEvents: m.lostEvents,
		ProbesSpent: m.probesSpent, ProbesSaved: m.probesSaved,
		MaxWindowProbes: m.maxWindowProbes,
		SkippedBudget:   m.skippedBudget, WorstStaleness: m.worstStaleness,
	}
	data, _ := json.Marshal(pc)
	return data
}

// saveClock persists the fleet-wide clock and counters.
func (m *Manager) saveClock() error {
	m.mu.Lock()
	st := m.journal
	data := m.clockSnapshotLocked()
	m.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.Put(store.KindFleetClock, "", data)
}

// JournalHistory returns a device's persisted event log from the attached
// journal, oldest first — the full record behind the bounded in-memory ring
// History serves. With no journal attached it reports false.
func (m *Manager) JournalHistory(id string) ([]Event, bool) {
	st := m.journalStore()
	if st == nil {
		return nil, false
	}
	var out []Event
	for _, rec := range st.Records(store.KindFleetEvent) {
		if rec.Key != id {
			continue
		}
		var ev Event
		if err := json.Unmarshal(rec.Data, &ev); err != nil {
			continue
		}
		out = append(out, ev)
	}
	return out, true
}
