package fleet

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/sched"
	"github.com/fastvg/fastvg/internal/store"
)

// chainCfg builds a 4-dot chain device whose middle pair (1) wanders hard
// while pairs 0 and 2 are driftless — the partial-recalibration scenario.
func chainCfg(id string) DeviceConfig {
	spec := device.ChainSpec{
		Dots:  4,
		Noise: noise.Params{WhiteSigma: 0.01},
		Seed:  driftSeed,
		PairDrift: []device.LeverDriftSpec{
			{}, // pair 0: quiet
			{ // pair 1: strong wander, crosses the threshold within hours
				Shear21: noise.Params{PinkAmp: 0.02, PinkFMin: 1e-5, PinkFMax: 0.01, DriftAmp: 0.08, DriftPeriod: 21600},
			},
			{}, // pair 2: quiet
		},
	}
	return DeviceConfig{ID: id, Weight: 2, Chain: &spec}
}

// TestChainPerPairStaleness is the chain fleet workload's core property:
// only the drifted pair of a chain device is re-extracted, while the fresh
// neighbouring matrices are reused.
func TestChainPerPairStaleness(t *testing.T) {
	m := New(sched.New(3), Policy{CheckInterval: 1800})
	if _, err := m.Register(chainCfg("arr")); err != nil {
		t.Fatal(err)
	}
	var recals []string
	for i := 0; i < 72; i++ { // six virtual hours
		rep, err := m.Tick(context.Background(), 300)
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		recals = append(recals, rep.Recalibrated...)
	}

	dv, ok := m.Device("arr")
	if !ok {
		t.Fatal("chain device missing")
	}
	if dv.Dots != 4 || len(dv.Pairs) != 3 {
		t.Fatalf("device shape: dots=%d pairs=%d", dv.Dots, len(dv.Pairs))
	}
	if !dv.Calibrated {
		t.Fatal("chain device never fully calibrated")
	}

	// Pair 1 must have drifted past the threshold and been re-extracted;
	// pairs 0 and 2 keep their initial calibration.
	if dv.Pairs[1].MaxStaleness < 1 {
		t.Fatalf("wandering pair max staleness = %v, want >= threshold (drift too weak for the test)", dv.Pairs[1].MaxStaleness)
	}
	if dv.Pairs[1].Calibrations < 2 {
		t.Errorf("wandering pair calibrations = %d, want initial + at least one partial recalibration", dv.Pairs[1].Calibrations)
	}
	for _, i := range []int{0, 2} {
		if dv.Pairs[i].Calibrations != 1 {
			t.Errorf("quiet pair %d re-tuned: %d calibrations, want exactly the initial one", i, dv.Pairs[i].Calibrations)
		}
		if dv.Pairs[i].Checks == 0 {
			t.Errorf("quiet pair %d was never spot-checked", i)
		}
	}

	// Tick reports label partial recals as "<device>/<pair>"; the quiet
	// pairs may appear only once (their initial calibration).
	perPair := map[string]int{}
	for _, r := range recals {
		perPair[r]++
	}
	if perPair["arr/1"] < 2 {
		t.Errorf("no partial (single-pair) recalibration of arr/1 in %v", recals)
	}
	if perPair["arr/0"] != 1 || perPair["arr/2"] != 1 {
		t.Errorf("quiet pairs re-extracted: %v", perPair)
	}
	st := m.Status()
	if st.PartialRecals == 0 {
		t.Error("status counted no partial recalibrations")
	}
	if st.PairCount != 3 {
		t.Errorf("pair count %d, want 3", st.PairCount)
	}
}

// TestChainPartialProbeSavings quantifies the point of per-pair staleness:
// re-extracting one drifted pair costs roughly a third of the probes of
// forcing the whole 4-dot chain.
func TestChainPartialProbeSavings(t *testing.T) {
	// A huge check interval keeps the ticks from spot-checking (and hence
	// auto-recalibrating) the drifted pair: only the explicit forces below
	// spend extraction probes after the initial calibration.
	m := New(sched.New(2), Policy{CheckInterval: 1e9})
	if _, err := m.Register(chainCfg("arr")); err != nil {
		t.Fatal(err)
	}
	// Initial calibration of all pairs, then an idle epoch so the forced
	// re-extractions below measure fresh dwells instead of replaying the
	// memoised pixels of the same epoch.
	if _, err := m.Tick(context.Background(), 300); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(context.Background(), 1800); err != nil {
		t.Fatal(err)
	}
	evPartial, err := m.ForceRecalibratePair(context.Background(), "arr", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tick(context.Background(), 1800); err != nil {
		t.Fatal(err)
	}
	evFullLast, err := m.ForceRecalibrate(context.Background(), "arr")
	if err != nil {
		t.Fatal(err)
	}
	if evFullLast.Kind != "force" || evPartial.Kind != "force" {
		t.Fatalf("unexpected event kinds %q/%q", evFullLast.Kind, evPartial.Kind)
	}
	// Sum the force events' probes from history: the last len(pairs) force
	// events are the full recal, the one before them the partial.
	full := 0
	evs, _ := m.History("arr")
	var forces []Event
	for _, ev := range evs {
		if ev.Kind == "force" {
			forces = append(forces, ev)
		}
	}
	if len(forces) != 4 {
		t.Fatalf("%d force events, want 1 partial + 3 full", len(forces))
	}
	partial := forces[0].Probes
	for _, ev := range forces[1:] {
		full += ev.Probes
	}
	if partial <= 0 || full <= 0 {
		t.Fatalf("missing probe accounting: partial=%d full=%d", partial, full)
	}
	if ratio := float64(full) / float64(partial); ratio < 2 {
		t.Errorf("full/partial probe ratio %.2f, want >= 2 for a 3-pair chain", ratio)
	}
}

// TestChainFleetPersistRoundTrip: kill-and-restart restores a chain
// device's per-pair matrices, staleness scores and cooldowns exactly.
func TestChainFleetPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(sched.New(2), Policy{CheckInterval: 1800})
	if err := m.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(chainCfg("arr")); err != nil {
		t.Fatal(err)
	}
	runTicks(t, m, 24, 300) // two virtual hours
	before, _ := m.Device("arr")
	beforeJSON, err := json.Marshal(before)
	if err != nil {
		t.Fatal(err)
	}
	stBefore := m.Status()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2 := New(sched.New(2), Policy{CheckInterval: 1800})
	if err := m2.AttachStore(st2); err != nil {
		t.Fatal(err)
	}
	after, ok := m2.Device("arr")
	if !ok {
		t.Fatal("chain device not restored")
	}
	afterJSON, err := json.Marshal(after)
	if err != nil {
		t.Fatal(err)
	}
	if string(beforeJSON) != string(afterJSON) {
		t.Errorf("restored device view differs:\n%s\n%s", beforeJSON, afterJSON)
	}
	st2Status := m2.Status()
	if st2Status.Now != stBefore.Now || st2Status.ProbesSpent != stBefore.ProbesSpent ||
		st2Status.PartialRecals != stBefore.PartialRecals {
		t.Errorf("fleet counters not restored: %+v vs %+v", st2Status, stBefore)
	}
	// The restored manager keeps scheduling: another hour of ticks works.
	runTicks(t, m2, 12, 300)
}

// TestChainFleetDeterministicAcrossWorkers: a chain fleet day summarises
// byte-identically at any worker count.
func TestChainFleetDeterministicAcrossWorkers(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 4} {
		m := New(sched.New(workers), Policy{CheckInterval: 1800, Budget: 20000, BudgetWindow: 21600})
		for _, cfg := range []DeviceConfig{chainCfg("arr-a"), wanderingSpec(t, 2), chainCfg("arr-b")} {
			cfg := cfg
			if cfg.ID == "arr-b" {
				spec := *cfg.Chain
				spec.Seed = driftSeed + 9
				cfg.Chain = &spec
			}
			if _, err := m.Register(cfg); err != nil {
				t.Fatal(err)
			}
		}
		sum, err := m.Run(context.Background(), 21600, 300)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if string(got) != string(want) {
			t.Errorf("workers=%d: summary differs from workers=1", workers)
		}
	}
}

// TestChainForcePairValidation rejects out-of-range pair indices.
func TestChainForcePairValidation(t *testing.T) {
	m := New(sched.New(1), Policy{})
	if _, err := m.Register(chainCfg("arr")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ForceRecalibratePair(context.Background(), "arr", 7); err == nil ||
		!strings.Contains(err.Error(), "no pair") {
		t.Errorf("accepted out-of-range pair: %v", err)
	}
	if _, err := m.ForceRecalibratePair(context.Background(), "nope", 0); err == nil {
		t.Error("accepted unknown device")
	}
}
