package fleet

import (
	"github.com/fastvg/fastvg/internal/infogain"
	"github.com/fastvg/fastvg/internal/surrogate"
	"github.com/fastvg/fastvg/internal/telemetry"
)

// Telemetry bundles what a fleet needs to become observable: the
// registry for its own vgx_fleet_* families plus the process-wide
// surrogate and infogain metric sets, which are registered once by
// whoever owns the registry (the extraction service, or a standalone
// runner) and shared here so fleet-driven probes and guided recals
// count into the same totals as interactive jobs.
type Telemetry struct {
	Reg       *telemetry.Registry
	Surrogate *surrogate.Metrics
	InfoGain  *infogain.Metrics
}

// fleetTelemetry is the registered vgx_fleet_* family set, mirroring
// the Manager's mutex-guarded counters. Increments happen inside the
// same critical sections that bump the counters they shadow, so the
// registry view can never drift from /v1/fleet.
type fleetTelemetry struct {
	sur *surrogate.Metrics
	ig  *infogain.Metrics

	checks         *telemetry.Counter
	calibrations   *telemetry.Counter
	recalibrations *telemetry.Counter
	partialRecals  *telemetry.Counter
	forced         *telemetry.Counter
	failed         *telemetry.Counter
	lost           *telemetry.Counter
	skippedBudget  *telemetry.Counter
	probes         *telemetry.Counter
	probesSaved    *telemetry.Counter

	devices        *telemetry.Gauge
	pairs          *telemetry.Gauge
	worstStaleness *telemetry.Gauge
}

// AttachTelemetry registers the vgx_fleet_* families and starts
// mirroring the manager's accounting into them. Attach once, before
// traffic; counters only see events from that point on, while gauges
// are primed from the current (possibly warm-started) state.
func (m *Manager) AttachTelemetry(t Telemetry) {
	reg := t.Reg
	ft := &fleetTelemetry{
		sur:            t.Surrogate,
		ig:             t.InfoGain,
		checks:         reg.Counter("vgx_fleet_checks_total", "Staleness spot-checks performed."),
		calibrations:   reg.Counter("vgx_fleet_calibrations_total", "Successful first calibrations."),
		recalibrations: reg.Counter("vgx_fleet_recalibrations_total", "Successful scheduled recalibrations."),
		partialRecals:  reg.Counter("vgx_fleet_partial_recals_total", "Devices recalibrated on a strict subset of their pairs in one tick."),
		forced:         reg.Counter("vgx_fleet_forced_total", "Operator-forced recalibrations."),
		failed:         reg.Counter("vgx_fleet_failed_calibrations_total", "Calibration attempts that failed."),
		lost:           reg.Counter("vgx_fleet_lost_checks_total", "Spot-checks that found the lines lost."),
		skippedBudget:  reg.Counter("vgx_fleet_budget_skipped_total", "Admissions deferred because the probe budget window was exhausted."),
		probes:         reg.Counter("vgx_fleet_probes_total", "Live instrument probes spent by fleet work."),
		probesSaved:    reg.Counter("vgx_fleet_probes_saved_total", "Probes served by surrogate twins instead of instruments."),
		devices:        reg.Gauge("vgx_fleet_devices", "Registered devices."),
		pairs:          reg.Gauge("vgx_fleet_pairs", "Scheduling units (adjacent pairs) across the fleet."),
		worstStaleness: reg.Gauge("vgx_fleet_staleness_worst", "Worst finite staleness score any spot-check has seen."),
	}
	m.mu.Lock()
	m.tel = ft
	ft.devices.Set(float64(len(m.order)))
	npairs := 0
	for _, d := range m.devices {
		npairs += len(d.pairs)
	}
	ft.pairs.Set(float64(npairs))
	ft.worstStaleness.Set(m.worstStaleness)
	m.mu.Unlock()
}
