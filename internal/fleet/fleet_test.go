package fleet

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"github.com/fastvg/fastvg/internal/sched"
	"github.com/fastvg/fastvg/internal/xrand"
)

// driftSeed is the fixed realisation every test below uses: the drift
// trajectories, and therefore every staleness score and scheduling decision,
// are fully determined by it.
const driftSeed = 1

func wanderingSpec(t *testing.T, i int) DeviceConfig {
	t.Helper()
	spec, err := ProfileSpec(ProfileWandering, xrand.DeriveSeed(driftSeed, i))
	if err != nil {
		t.Fatal(err)
	}
	return DeviceConfig{ID: "wander", Weight: 2, Spec: spec}
}

func quietSpec(t *testing.T, i int) DeviceConfig {
	t.Helper()
	spec, err := ProfileSpec(ProfileQuiet, xrand.DeriveSeed(driftSeed, i))
	if err != nil {
		t.Fatal(err)
	}
	return DeviceConfig{ID: "quiet", Spec: spec}
}

// runTicks advances the manager n ticks of dt seconds.
func runTicks(t *testing.T, m *Manager, n int, dt float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := m.Tick(context.Background(), dt); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
}

// TestStalenessScoring is the deterministic-drift staleness test: a
// wandering device's score must rise from its calibration baseline, cross
// the threshold and trigger recalibration, while a quiet device stays in the
// healthy band and is never re-tuned.
func TestStalenessScoring(t *testing.T) {
	m := New(sched.New(2), Policy{CheckInterval: 1800})
	for _, cfg := range []DeviceConfig{wanderingSpec(t, 2), quietSpec(t, 0)} {
		if _, err := m.Register(cfg); err != nil {
			t.Fatal(err)
		}
	}
	runTicks(t, m, 72, 300) // six virtual hours

	quiet, ok := m.Device("quiet")
	if !ok {
		t.Fatal("quiet device missing")
	}
	if quiet.Calibrations != 1 {
		t.Errorf("quiet device re-tuned: %d calibrations, want exactly the initial one", quiet.Calibrations)
	}
	if quiet.State != StateHealthy {
		t.Errorf("quiet device state = %q, want healthy", quiet.State)
	}
	if quiet.MaxStaleness >= 1 {
		t.Errorf("quiet device max staleness = %v, want < threshold", quiet.MaxStaleness)
	}
	if quiet.Checks == 0 {
		t.Error("quiet device was never spot-checked")
	}

	wander, ok := m.Device("wander")
	if !ok {
		t.Fatal("wandering device missing")
	}
	if wander.MaxStaleness < 1 {
		t.Fatalf("wandering device max staleness = %v, want >= threshold (drift too weak for the test)", wander.MaxStaleness)
	}
	if wander.Calibrations < 2 {
		t.Errorf("wandering device calibrations = %d, want initial + at least one recalibration", wander.Calibrations)
	}

	// The history must show the causal pattern: a failing check (score past
	// threshold) followed by a recalibration that brought the score down.
	evs, ok := m.History("wander")
	if !ok || len(evs) == 0 {
		t.Fatal("no wandering history")
	}
	sawTrigger := false
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Kind == "check" && !evs[i-1].OK && evs[i].Kind == "recalibrate" &&
			evs[i].T == evs[i-1].T && evs[i].Staleness < evs[i-1].Staleness {
			sawTrigger = true
			break
		}
	}
	if !sawTrigger {
		t.Error("no failing check followed by a same-tick recalibration in the history")
	}
}

// TestBudgetAdmission checks the global probe budget gates work: with room
// for only part of the fleet, admissions are deferred (never dropped) and
// the window is never overspent; rolling into the next window serves the
// deferred devices.
func TestBudgetAdmission(t *testing.T) {
	pol := Policy{
		CheckInterval: 1800,
		Budget:        3200, // two initial calibrations per window at the 1500 reserve
		BudgetWindow:  7200,
	}
	m := New(sched.New(4), pol)
	for i := 0; i < 4; i++ {
		cfg := quietSpec(t, i)
		cfg.ID = []string{"a", "b", "c", "d"}[i]
		if _, err := m.Register(cfg); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := m.Tick(context.Background(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recalibrated) != 2 {
		t.Fatalf("first tick calibrated %v, want exactly 2 under the budget", rep.Recalibrated)
	}
	if rep.SkippedBudget != 2 {
		t.Errorf("skipped = %d, want 2", rep.SkippedBudget)
	}
	st := m.Status()
	if st.BudgetUsed > pol.Budget || st.MaxWindowProbes > pol.Budget {
		t.Errorf("window overspent: used %d, max %d, budget %d", st.BudgetUsed, st.MaxWindowProbes, pol.Budget)
	}
	if st.Calibrations != 2 {
		t.Errorf("calibrations = %d, want 2", st.Calibrations)
	}

	// Advancing into the next budget window serves the deferred devices.
	runTicks(t, m, 25, 300)
	st = m.Status()
	if st.Calibrations != 4 {
		t.Errorf("calibrations after window roll = %d, want all 4", st.Calibrations)
	}
	if st.MaxWindowProbes > pol.Budget {
		t.Errorf("a window overspent: max %d > budget %d", st.MaxWindowProbes, pol.Budget)
	}
	for _, d := range st.Devices {
		if !d.Calibrated {
			t.Errorf("device %s still uncalibrated after window roll", d.ID)
		}
	}
}

// TestDeterministicAcrossWorkers runs the same fleet day on 1 and 8 workers
// and requires byte-identical status JSON: scheduling must never leak into
// results.
func TestDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		m := New(sched.New(workers), Policy{CheckInterval: 1800})
		cfgs, err := DefaultFleet(6, driftSeed)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range cfgs {
			if _, err := m.Register(cfg); err != nil {
				t.Fatal(err)
			}
		}
		sum, err := m.Run(context.Background(), 4*3600, 600)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := run(1)
	eight := run(8)
	if string(one) != string(eight) {
		t.Errorf("summary differs between 1 and 8 workers:\n%s\n%s", one, eight)
	}
}

// TestHysteresis checks both guards: a device inside the watch band is
// monitored but never re-tuned, and the cooldown blocks back-to-back
// recalibrations even when the score stays past the threshold.
func TestHysteresis(t *testing.T) {
	// An enormous cooldown: after the initial calibration the wandering
	// device may cross the threshold at will — nothing further may run.
	m := New(sched.New(2), Policy{CheckInterval: 1800, Cooldown: 1e9})
	if _, err := m.Register(wanderingSpec(t, 2)); err != nil {
		t.Fatal(err)
	}
	runTicks(t, m, 72, 300)
	d, _ := m.Device("wander")
	if d.Calibrations != 1 {
		t.Errorf("calibrations = %d, want 1 under an infinite cooldown", d.Calibrations)
	}
	if d.MaxStaleness < 1 {
		t.Errorf("device never crossed the threshold (max %v); the cooldown was not exercised", d.MaxStaleness)
	}

	// A healthy-band device: scores must stay sub-threshold and cause no
	// recalibration even with a zero-length cooldown... which fillDefaults
	// maps to the default; use a tiny one instead.
	m2 := New(sched.New(2), Policy{CheckInterval: 1800, Cooldown: 1})
	if _, err := m2.Register(quietSpec(t, 0)); err != nil {
		t.Fatal(err)
	}
	runTicks(t, m2, 72, 300)
	q, _ := m2.Device("quiet")
	if q.Calibrations != 1 {
		t.Errorf("healthy device re-tuned %d times with a 1 s cooldown", q.Calibrations-1)
	}
}

// TestForceRecalibrate covers the operator override and the history
// endpoint.
func TestForceRecalibrate(t *testing.T) {
	m := New(sched.New(2), Policy{})
	if _, err := m.Register(quietSpec(t, 0)); err != nil {
		t.Fatal(err)
	}
	ev, err := m.ForceRecalibrate(context.Background(), "quiet")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "force" {
		t.Errorf("event kind = %q, want force", ev.Kind)
	}
	if ev.Probes <= 0 {
		t.Errorf("forced recalibration cost %d probes", ev.Probes)
	}
	d, _ := m.Device("quiet")
	if !d.Calibrated || d.Forced != 1 {
		t.Errorf("device after force: calibrated=%v forced=%d", d.Calibrated, d.Forced)
	}
	st := m.Status()
	if st.ProbesSpent != ev.Probes {
		t.Errorf("fleet probes %d, want the forced event's %d", st.ProbesSpent, ev.Probes)
	}
	if _, err := m.ForceRecalibrate(context.Background(), "nope"); err == nil {
		t.Error("forcing an unknown device succeeded")
	}
	evs, ok := m.History("quiet")
	if !ok || len(evs) != 1 || evs[0].Kind != "force" {
		t.Errorf("history = %v, want the single force event", evs)
	}
}

// TestRegisterValidation covers the registry error paths and ID assignment.
func TestRegisterValidation(t *testing.T) {
	m := New(sched.New(1), Policy{})
	cfg := quietSpec(t, 0)
	if _, err := m.Register(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(cfg); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate ID err = %v", err)
	}
	cfg.ID = ""
	cfg.Weight = -1
	if _, err := m.Register(cfg); err == nil {
		t.Error("negative weight accepted")
	}
	cfg.Weight = 0
	v, err := m.Register(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "dev-001" || v.Weight != 1 {
		t.Errorf("auto-registered view = %+v, want dev-001 with weight 1", v)
	}
}

// TestTickValidation covers tick argument and cancellation handling.
func TestTickValidation(t *testing.T) {
	m := New(sched.New(1), Policy{})
	if _, err := m.Tick(context.Background(), 0); err == nil {
		t.Error("zero-length tick accepted")
	}
	if _, err := m.Register(quietSpec(t, 0)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Tick(ctx, 300); err == nil {
		t.Error("tick on a cancelled context succeeded")
	}
	if _, err := m.Run(context.Background(), 0, 300); err == nil {
		t.Error("zero-length run accepted")
	}
}
