package fleet

import (
	"context"
	"testing"

	"github.com/fastvg/fastvg/internal/sched"
)

// BenchmarkFleetRecalibration measures the fleet calibration loop end to
// end: a small heterogeneous fleet runs four virtual hours of monitoring and
// drift-triggered re-extraction per iteration. Beyond ns/op it reports the
// loop's economics — probes per recalibration (how much a matrix refresh
// costs through the admission path) and the steady-state staleness the
// policy holds the fleet at (mean finite device score at the end of the
// run). scripts/bench.sh collects these into BENCH_fleet.json.
func BenchmarkFleetRecalibration(b *testing.B) {
	var (
		probes   int
		recals   int
		staleSum float64
		staleN   int
	)
	for i := 0; i < b.N; i++ {
		m := New(sched.New(0), Policy{CheckInterval: 1800})
		cfgs, err := DefaultFleet(8, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range cfgs {
			if _, err := m.Register(cfg); err != nil {
				b.Fatal(err)
			}
		}
		sum, err := m.Run(context.Background(), 4*3600, 300)
		if err != nil {
			b.Fatal(err)
		}
		probes += sum.ProbesSpent
		recals += sum.Calibrations + sum.Recalibrations + sum.Forced
		for _, d := range sum.Devices {
			if d.Calibrated && d.Staleness < LostStaleness {
				staleSum += d.Staleness
				staleN++
			}
		}
	}
	if recals > 0 {
		b.ReportMetric(float64(probes)/float64(recals), "probes/recal")
	}
	if staleN > 0 {
		b.ReportMetric(staleSum/float64(staleN), "staleness")
	}
}
