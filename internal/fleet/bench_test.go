package fleet

import (
	"context"
	"fmt"
	"testing"

	"github.com/fastvg/fastvg/internal/sched"
	"github.com/fastvg/fastvg/internal/surrogate"
	"github.com/fastvg/fastvg/internal/xrand"
)

// BenchmarkFleetRecalibration measures the fleet calibration loop end to
// end: a small heterogeneous fleet runs four virtual hours of monitoring and
// drift-triggered re-extraction per iteration. Beyond ns/op it reports the
// loop's economics — probes per recalibration (how much a matrix refresh
// costs through the admission path) and the steady-state staleness the
// policy holds the fleet at (mean finite device score at the end of the
// run). scripts/bench.sh collects these into BENCH_fleet.json.
func BenchmarkFleetRecalibration(b *testing.B) {
	var (
		probes   int
		recals   int
		staleSum float64
		staleN   int
	)
	for i := 0; i < b.N; i++ {
		m := New(sched.New(0), Policy{CheckInterval: 1800})
		cfgs, err := DefaultFleet(8, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range cfgs {
			if _, err := m.Register(cfg); err != nil {
				b.Fatal(err)
			}
		}
		sum, err := m.Run(context.Background(), 4*3600, 300)
		if err != nil {
			b.Fatal(err)
		}
		probes += sum.ProbesSpent
		recals += sum.Calibrations + sum.Recalibrations + sum.Forced
		for _, d := range sum.Devices {
			if d.Calibrated && d.Staleness < LostStaleness {
				staleSum += d.Staleness
				staleN++
			}
		}
	}
	if recals > 0 {
		b.ReportMetric(float64(probes)/float64(recals), "probes/recal")
	}
	if staleN > 0 {
		b.ReportMetric(staleSum/float64(staleN), "staleness")
	}
}

// driftFleet builds n drift-only (wandering-profile) devices: lever arms
// wander continuously but never jump, so every recalibration happens inside
// the original scan window — the regime the surrogate twin targets.
func driftFleet(b *testing.B, n int, seed uint64) []DeviceConfig {
	out := make([]DeviceConfig, 0, n)
	for i := 0; i < n; i++ {
		spec, err := ProfileSpec(ProfileWandering, xrand.DeriveSeed(seed, i))
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, DeviceConfig{ID: fmt.Sprintf("drift-%02d", i), Weight: 2, Spec: spec})
	}
	return out
}

// BenchmarkFleetSurrogateRecalibration prices a matrix refresh on a
// drift-only fleet with and without twin-first probing, in steady state: the
// first two virtual hours (cold bring-up calibrations, first twin training)
// are warmup and excluded, then eight virtual hours of drift-triggered
// monitoring and recalibration are measured. The "live" sub-bench is the
// baseline (every probe hits the instrument, ~1300 probes/recal); the
// "surrogate" sub-bench serves plateau probes from each pair's trained twin
// and re-locates drifted lines with delta cross-scans, so only the probing
// near the moving transitions stays live. The live-probes/recal gap between
// the two is the surrogate subsystem's headline saving; scripts/bench.sh
// collects both into BENCH_surrogate.json.
func BenchmarkFleetSurrogateRecalibration(b *testing.B) {
	const (
		tickSec     = 300
		warmupTicks = 24 // 2 virtual hours: bring-up + first recal wave
		steadyTicks = 96 // 8 virtual hours measured
	)
	for _, mode := range []struct {
		name      string
		threshold float64
	}{
		{"live", 0},
		{"surrogate", surrogate.DefaultThreshold},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var probes, saved, recals int
			for i := 0; i < b.N; i++ {
				m := New(sched.New(0), Policy{CheckInterval: 1800, SurrogateThreshold: mode.threshold})
				for _, cfg := range driftFleet(b, 8, 1) {
					if _, err := m.Register(cfg); err != nil {
						b.Fatal(err)
					}
				}
				ctx := context.Background()
				for t := 0; t < warmupTicks; t++ {
					if _, err := m.Tick(ctx, tickSec); err != nil {
						b.Fatal(err)
					}
				}
				for t := 0; t < steadyTicks; t++ {
					rep, err := m.Tick(ctx, tickSec)
					if err != nil {
						b.Fatal(err)
					}
					probes += rep.CheckProbes + rep.RecalProbes
					saved += rep.ProbesSaved
					recals += len(rep.Recalibrated)
				}
			}
			if recals > 0 {
				b.ReportMetric(float64(probes)/float64(recals), "probes/recal")
			}
			if probes+saved > 0 {
				b.ReportMetric(float64(saved)/float64(probes+saved), "saved-frac")
			}
		})
	}
}

// BenchmarkSurrogateEscalation measures how the share of probing that must
// stay live grows with drift magnitude: the wandering profile's sinusoidal
// shear amplitude is scaled from zero (static device: after training, almost
// everything is servable) upward (lines sweep the window: frequent refits
// and lost-twin resets force live probing). The escalation-rate metric is
// liveProbes / allProbes over a fleet day.
func BenchmarkSurrogateEscalation(b *testing.B) {
	for _, drift := range []float64{0, 0.06, 0.12, 0.24} {
		b.Run(fmt.Sprintf("drift=%.2f", drift), func(b *testing.B) {
			var probes, saved int
			for i := 0; i < b.N; i++ {
				m := New(sched.New(0), Policy{CheckInterval: 1800, SurrogateThreshold: surrogate.DefaultThreshold})
				for j, cfg := range driftFleet(b, 4, 1) {
					cfg.Spec.LeverDrift.Shear21.DriftAmp = drift
					cfg.ID = fmt.Sprintf("drift-%d", j)
					if _, err := m.Register(cfg); err != nil {
						b.Fatal(err)
					}
				}
				sum, err := m.Run(context.Background(), 4*3600, 300)
				if err != nil {
					b.Fatal(err)
				}
				probes += sum.ProbesSpent
				saved += sum.ProbesSaved
			}
			if probes+saved > 0 {
				b.ReportMetric(float64(probes)/float64(probes+saved), "escalation-rate")
			}
		})
	}
}

// BenchmarkChainPartialRecal measures the chain fleet's probe economics: a
// 4-dot chain device's single drifted pair is re-extracted (partial) versus
// the whole device (full). The probes/partial and probes/full metrics feed
// BENCH_chain.json's partial-recalibration savings; the ratio is the probe
// cost the per-pair staleness machinery avoids every time one pair of an
// N-dot array drifts.
func BenchmarkChainPartialRecal(b *testing.B) {
	var partialProbes, fullProbes int
	for i := 0; i < b.N; i++ {
		spec := ChainProfileSpec(4, uint64(1))
		m := New(sched.New(0), Policy{CheckInterval: 1e9})
		if _, err := m.Register(DeviceConfig{ID: "arr", Chain: &spec}); err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		// Initial calibration, then fresh epochs around each forced path.
		if _, err := m.Tick(ctx, 300); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Tick(ctx, 1800); err != nil {
			b.Fatal(err)
		}
		before := m.Status().ProbesSpent
		if _, err := m.ForceRecalibratePair(ctx, "arr", 1); err != nil {
			b.Fatal(err)
		}
		mid := m.Status().ProbesSpent
		if _, err := m.Tick(ctx, 1800); err != nil {
			b.Fatal(err)
		}
		preFull := m.Status().ProbesSpent
		if _, err := m.ForceRecalibrate(ctx, "arr"); err != nil {
			b.Fatal(err)
		}
		after := m.Status().ProbesSpent
		partialProbes += mid - before
		fullProbes += after - preFull
	}
	n := float64(b.N)
	b.ReportMetric(float64(partialProbes)/n, "probes/partial")
	b.ReportMetric(float64(fullProbes)/n, "probes/full")
	if partialProbes > 0 {
		b.ReportMetric(float64(fullProbes)/float64(partialProbes), "full/partial")
	}
}
