package fleet

import (
	"context"
	"testing"

	"github.com/fastvg/fastvg/internal/sched"
)

// BenchmarkFleetRecalibration measures the fleet calibration loop end to
// end: a small heterogeneous fleet runs four virtual hours of monitoring and
// drift-triggered re-extraction per iteration. Beyond ns/op it reports the
// loop's economics — probes per recalibration (how much a matrix refresh
// costs through the admission path) and the steady-state staleness the
// policy holds the fleet at (mean finite device score at the end of the
// run). scripts/bench.sh collects these into BENCH_fleet.json.
func BenchmarkFleetRecalibration(b *testing.B) {
	var (
		probes   int
		recals   int
		staleSum float64
		staleN   int
	)
	for i := 0; i < b.N; i++ {
		m := New(sched.New(0), Policy{CheckInterval: 1800})
		cfgs, err := DefaultFleet(8, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range cfgs {
			if _, err := m.Register(cfg); err != nil {
				b.Fatal(err)
			}
		}
		sum, err := m.Run(context.Background(), 4*3600, 300)
		if err != nil {
			b.Fatal(err)
		}
		probes += sum.ProbesSpent
		recals += sum.Calibrations + sum.Recalibrations + sum.Forced
		for _, d := range sum.Devices {
			if d.Calibrated && d.Staleness < LostStaleness {
				staleSum += d.Staleness
				staleN++
			}
		}
	}
	if recals > 0 {
		b.ReportMetric(float64(probes)/float64(recals), "probes/recal")
	}
	if staleN > 0 {
		b.ReportMetric(staleSum/float64(staleN), "staleness")
	}
}

// BenchmarkChainPartialRecal measures the chain fleet's probe economics: a
// 4-dot chain device's single drifted pair is re-extracted (partial) versus
// the whole device (full). The probes/partial and probes/full metrics feed
// BENCH_chain.json's partial-recalibration savings; the ratio is the probe
// cost the per-pair staleness machinery avoids every time one pair of an
// N-dot array drifts.
func BenchmarkChainPartialRecal(b *testing.B) {
	var partialProbes, fullProbes int
	for i := 0; i < b.N; i++ {
		spec := ChainProfileSpec(4, uint64(1))
		m := New(sched.New(0), Policy{CheckInterval: 1e9})
		if _, err := m.Register(DeviceConfig{ID: "arr", Chain: &spec}); err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		// Initial calibration, then fresh epochs around each forced path.
		if _, err := m.Tick(ctx, 300); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Tick(ctx, 1800); err != nil {
			b.Fatal(err)
		}
		before := m.Status().ProbesSpent
		if _, err := m.ForceRecalibratePair(ctx, "arr", 1); err != nil {
			b.Fatal(err)
		}
		mid := m.Status().ProbesSpent
		if _, err := m.Tick(ctx, 1800); err != nil {
			b.Fatal(err)
		}
		preFull := m.Status().ProbesSpent
		if _, err := m.ForceRecalibrate(ctx, "arr"); err != nil {
			b.Fatal(err)
		}
		after := m.Status().ProbesSpent
		partialProbes += mid - before
		fullProbes += after - preFull
	}
	n := float64(b.N)
	b.ReportMetric(float64(partialProbes)/n, "probes/partial")
	b.ReportMetric(float64(fullProbes)/n, "probes/full")
	if partialProbes > 0 {
		b.ReportMetric(float64(fullProbes)/float64(partialProbes), "full/partial")
	}
}
