package fleet

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/fastvg/fastvg/internal/sched"
	"github.com/fastvg/fastvg/internal/store"
)

func attachedManager(t *testing.T, dir string, pol Policy) (*Manager, *store.Store) {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(sched.New(2), pol)
	if err := m.AttachStore(st); err != nil {
		t.Fatal(err)
	}
	return m, st
}

// TestRestartRestoresFleetState runs a journaled fleet for a few virtual
// hours, abandons the manager without any clean shutdown (the journal is
// written append-by-append, so this is the kill scenario), and restores a
// fresh manager from the same directory: every scheduling-relevant field —
// staleness score, cooldown timestamps, hysteresis evidence, budget window,
// counters, history — must come back exactly.
func TestRestartRestoresFleetState(t *testing.T) {
	dir := t.TempDir()
	pol := Policy{CheckInterval: 1800, Budget: 50000}
	m1, _ := attachedManager(t, dir, pol)
	for _, cfg := range []DeviceConfig{wanderingSpec(t, 2), quietSpec(t, 0)} {
		if _, err := m1.Register(cfg); err != nil {
			t.Fatal(err)
		}
	}
	runTicks(t, m1, 36, 300) // three virtual hours
	before := m1.Status()
	hist1, ok := m1.History("wander")
	if !ok || len(hist1) == 0 {
		t.Fatal("no wander history before restart")
	}
	// No Close, no flush: the manager is simply abandoned.

	m2, st2 := attachedManager(t, dir, pol)
	defer st2.Close()
	after := m2.Status()

	if after.Now != before.Now {
		t.Fatalf("clock: %v != %v", after.Now, before.Now)
	}
	if after.BudgetUsed != before.BudgetUsed || after.ProbesSpent != before.ProbesSpent {
		t.Fatalf("budget: used %d/%d, spent %d/%d", after.BudgetUsed, before.BudgetUsed, after.ProbesSpent, before.ProbesSpent)
	}
	if after.Checks != before.Checks || after.Calibrations != before.Calibrations ||
		after.Recalibrations != before.Recalibrations || after.LostEvents != before.LostEvents {
		t.Fatalf("counters diverged: %+v vs %+v", after, before)
	}
	if len(after.Devices) != len(before.Devices) {
		t.Fatalf("%d devices restored, want %d", len(after.Devices), len(before.Devices))
	}
	for i, dv := range after.Devices {
		want := before.Devices[i]
		if dv.ID != want.ID || dv.State != want.State || dv.Staleness != want.Staleness ||
			dv.LastCalT != want.LastCalT || dv.LastCheckT != want.LastCheckT ||
			dv.Calibrations != want.Calibrations || dv.Probes != want.Probes ||
			dv.A12 != want.A12 || dv.A21 != want.A21 {
			t.Fatalf("device %s restored as %+v, want %+v", want.ID, dv, want)
		}
	}
	hist2, ok := m2.History("wander")
	if !ok || len(hist2) != len(hist1) {
		t.Fatalf("history: %d events restored, want %d", len(hist2), len(hist1))
	}
	for i := range hist1 {
		if hist2[i] != hist1[i] {
			t.Fatalf("history[%d] = %+v, want %+v", i, hist2[i], hist1[i])
		}
	}
	jh, ok := m2.JournalHistory("wander")
	if !ok || len(jh) < len(hist1) {
		t.Fatalf("journal history: %d events, want >= %d", len(jh), len(hist1))
	}

	// The restored fleet must keep running: cooldowns and check intervals
	// continue from the restored clock, not from zero.
	runTicks(t, m2, 6, 300)
	if got := m2.Now(); got != before.Now+6*300 {
		t.Fatalf("clock resumed at %v, want %v", got, before.Now+6*300)
	}
}

// TestRestartPreservesHysteresis pins the restart-specific failure the
// store exists to prevent: a freshly restored healthy device must NOT be
// re-extracted on the first tick after restart (it is calibrated, fresh and
// inside its cooldown), and an uncalibrated fleet restored mid-bringup must
// still calibrate.
func TestRestartPreservesHysteresis(t *testing.T) {
	dir := t.TempDir()
	pol := Policy{CheckInterval: 1800}
	m1, _ := attachedManager(t, dir, pol)
	if _, err := m1.Register(quietSpec(t, 0)); err != nil {
		t.Fatal(err)
	}
	runTicks(t, m1, 12, 300) // one hour: initial calibration + a check or two
	calsBefore := m1.Status().Calibrations
	if calsBefore != 1 {
		t.Fatalf("want exactly the initial calibration, got %d", calsBefore)
	}

	m2, st2 := attachedManager(t, dir, pol)
	defer st2.Close()
	rep, err := m2.Tick(context.Background(), 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Recalibrated) != 0 {
		t.Fatalf("restored healthy device re-extracted immediately: %v", rep.Recalibrated)
	}
	st := m2.Status()
	if st.Calibrations != 1 || st.Recalibrations != 0 {
		t.Fatalf("calibrations after restart tick = %d/%d, want 1/0", st.Calibrations, st.Recalibrations)
	}
}

// TestAttachStoreCollision rejects restoring over an already-registered ID.
func TestAttachStoreCollision(t *testing.T) {
	dir := t.TempDir()
	m1, _ := attachedManager(t, dir, Policy{})
	if _, err := m1.Register(quietSpec(t, 0)); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2 := New(sched.New(1), Policy{})
	if _, err := m2.Register(quietSpec(t, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m2.AttachStore(st2); err == nil {
		t.Fatal("want collision error")
	}
}

// TestAutoIDsResumeAfterRestart: auto-assigned device IDs must not collide
// with restored ones.
func TestAutoIDsResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	m1, _ := attachedManager(t, dir, Policy{})
	spec := quietSpec(t, 0)
	spec.ID = ""
	if _, err := m1.Register(spec); err != nil {
		t.Fatal(err)
	}

	m2, st2 := attachedManager(t, dir, Policy{})
	defer st2.Close()
	spec2 := quietSpec(t, 1)
	spec2.ID = ""
	dv, err := m2.Register(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if dv.ID != "dev-002" {
		t.Fatalf("auto ID after restart = %q, want dev-002", dv.ID)
	}
}

// TestLegacyDeviceRecordMigration: journals written before per-pair
// staleness carry the calibration state flat on the device record.
// AttachStore must decode them as the single implicit pair of a double-dot
// device instead of refusing to start.
func TestLegacyDeviceRecordMigration(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ProfileSpec(ProfileQuiet, 3)
	if err != nil {
		t.Fatal(err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	legacy := []byte(`{"id":"old-a","weight":2,"spec":` + string(specJSON) + `,` +
		`"hasCal":true,"matrix":[[1,0.1],[0.2,1]],"kneeV1":30,"kneeV2":31,` +
		`"steep":-8,"shallow":-0.12,"score":0.4,"scoreT":900,"lastCalT":300,` +
		`"lastAttemptT":300,"lastCheckT":900,"attempts":1,"maxFinite":0.4,` +
		`"checks":2,"calibrations":1,"probes":1200,` +
		`"history":[{"t":300,"kind":"calibrate","staleness":0.1,"probes":1200,"ok":true}]}`)
	if err := st.Put(store.KindFleetDevice, "old-a", legacy); err != nil {
		t.Fatal(err)
	}

	m := New(sched.New(1), Policy{})
	if err := m.AttachStore(st); err != nil {
		t.Fatalf("legacy journal refused: %v", err)
	}
	defer st.Close()
	dv, ok := m.Device("old-a")
	if !ok {
		t.Fatal("legacy device not restored")
	}
	if len(dv.Pairs) != 1 || !dv.Calibrated {
		t.Fatalf("legacy device shape: %+v", dv)
	}
	p := dv.Pairs[0]
	if p.A12 != 0.1 || p.A21 != 0.2 || p.Staleness != 0.4 || p.Calibrations != 1 || p.Probes != 1200 {
		t.Errorf("legacy calibration state lost: %+v", p)
	}
	if dv.State != StateHealthy {
		t.Errorf("legacy device state %q, want healthy", dv.State)
	}
	evs, _ := m.History("old-a")
	if len(evs) != 1 || evs[0].Kind != "calibrate" {
		t.Errorf("legacy history lost: %+v", evs)
	}
	// The restored manager keeps running (and re-persists in the new form).
	if _, err := m.Tick(context.Background(), 300); err != nil {
		t.Fatal(err)
	}
}
