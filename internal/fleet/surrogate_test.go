package fleet

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/fastvg/fastvg/internal/sched"
	"github.com/fastvg/fastvg/internal/surrogate"
)

// surrogatePolicy is the drift-only fleet policy the surrogate tests run:
// standard cadence, twin-first probing at the tuned threshold.
func surrogatePolicy() Policy {
	return Policy{CheckInterval: 1800, SurrogateThreshold: surrogate.DefaultThreshold}
}

// TestSurrogateFleetSavesProbes runs a drift-only device with twin-first
// probing: after the first calibration trains and fits the twin, periodic
// spot-checks and recalibration rasters must serve a substantial share of
// probes from the model, and the savings must surface consistently at every
// level — pair status, device view, fleet status and tick reports.
func TestSurrogateFleetSavesProbes(t *testing.T) {
	m := New(sched.New(2), surrogatePolicy())
	if _, err := m.Register(wanderingSpec(t, 2)); err != nil {
		t.Fatal(err)
	}
	var ticksSaved int
	for i := 0; i < 72; i++ {
		rep, err := m.Tick(context.Background(), 300)
		if err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		ticksSaved += rep.ProbesSaved
	}

	st := m.Status()
	if st.ProbesSaved == 0 {
		t.Fatal("no probes saved: the twin never served anything")
	}
	if ticksSaved != st.ProbesSaved {
		t.Errorf("tick reports sum to %d saved probes, status says %d", ticksSaved, st.ProbesSaved)
	}
	d, ok := m.Device("wander")
	if !ok {
		t.Fatal("device missing")
	}
	if d.ProbesSaved != st.ProbesSaved {
		t.Errorf("device saved %d, fleet total %d (single-device fleet: must match)", d.ProbesSaved, st.ProbesSaved)
	}
	if len(d.Pairs) != 1 || d.Pairs[0].ProbesSaved != d.ProbesSaved {
		t.Errorf("pair status saved %v, device view %d", d.Pairs, d.ProbesSaved)
	}
	// The scheduler must still do its job through the twin: the wandering
	// device crosses the threshold and is re-tuned back to health.
	if d.Calibrations < 2 {
		t.Errorf("calibrations = %d, want initial + at least one recalibration", d.Calibrations)
	}
	if d.MaxStaleness < 1 {
		t.Errorf("max staleness %v never crossed the threshold; drift undetected through the twin", d.MaxStaleness)
	}
	// The twin serves plateau probes during full recalibration rasters, so a
	// meaningful share of all probing must have been saved.
	frac := float64(st.ProbesSaved) / float64(st.ProbesSpent+st.ProbesSaved)
	if frac < 0.2 {
		t.Errorf("saved fraction %.2f, want >= 0.2 of all probes", frac)
	}
}

// TestSurrogateDeterministicAcrossWorkers is the worker-count determinism
// guarantee extended to twin-first probing: hits, escalations and refits all
// happen inside per-pair jobs with per-phase scratch, so the summary must be
// byte-identical at any worker count.
func TestSurrogateDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		m := New(sched.New(workers), surrogatePolicy())
		cfgs, err := DefaultFleet(6, driftSeed)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range cfgs {
			if _, err := m.Register(cfg); err != nil {
				t.Fatal(err)
			}
		}
		sum, err := m.Run(context.Background(), 4*3600, 600)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := run(1)
	eight := run(8)
	if string(one) != string(eight) {
		t.Errorf("summary differs between 1 and 8 workers:\n%s\n%s", one, eight)
	}
}

// TestSurrogateModelsSurviveRestart abandons a journaled twin-first fleet
// without shutdown and restores it: the trained models must come back from
// their KindSurrogateModel records (warm twins, not cold relearning) and the
// saved-probe counters must restore exactly.
func TestSurrogateModelsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	pol := surrogatePolicy()
	m1, _ := attachedManager(t, dir, pol)
	for _, cfg := range []DeviceConfig{wanderingSpec(t, 2), quietSpec(t, 0)} {
		if _, err := m1.Register(cfg); err != nil {
			t.Fatal(err)
		}
	}
	runTicks(t, m1, 36, 300)
	before := m1.Status()
	if before.ProbesSaved == 0 {
		t.Fatal("nothing saved before restart; test has no teeth")
	}
	// No Close, no flush: kill scenario.

	m2, st2 := attachedManager(t, dir, pol)
	defer st2.Close()
	after := m2.Status()
	if after.ProbesSaved != before.ProbesSaved {
		t.Fatalf("fleet saved counter restored as %d, want %d", after.ProbesSaved, before.ProbesSaved)
	}
	for i, dv := range after.Devices {
		if dv.ProbesSaved != before.Devices[i].ProbesSaved {
			t.Fatalf("device %s saved counter %d, want %d", dv.ID, dv.ProbesSaved, before.Devices[i].ProbesSaved)
		}
	}
	// The twins themselves must be warm: fitted models with the pre-restart
	// training set attached to every calibrated pair.
	m2.mu.Lock()
	for _, id := range m2.order {
		d := m2.devices[id]
		d.mu.Lock()
		for _, pc := range d.pairs {
			if !pc.hasCal {
				continue
			}
			if pc.model == nil {
				t.Errorf("device %s pair %d restored without its twin", id, pc.idx)
			} else if !pc.model.Fitted() || pc.model.Samples() == 0 {
				t.Errorf("device %s pair %d twin restored cold: fitted=%v samples=%d", id, pc.idx, pc.model.Fitted(), pc.model.Samples())
			}
		}
		d.mu.Unlock()
	}
	m2.mu.Unlock()

	// A warm twin keeps saving immediately: the first post-restart check
	// window must serve probes from the restored model.
	savedBefore := after.ProbesSaved
	runTicks(t, m2, 12, 300)
	if got := m2.Status().ProbesSaved; got <= savedBefore {
		t.Errorf("restored twins served nothing: saved %d before, %d after an hour", savedBefore, got)
	}
}
