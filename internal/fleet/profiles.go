package fleet

import (
	"fmt"

	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/noise"
	"github.com/fastvg/fastvg/internal/xrand"
)

// The canonical fleet device profiles, from best- to worst-behaved. A real
// lab's device distribution is heterogeneous — most devices sit still, a few
// wander continuously, and a few jump — and the calibration scheduler's job
// is to spend the probe budget on the misbehaving tail.
const (
	// ProfileQuiet devices barely move: weak white noise, no lever drift.
	ProfileQuiet = "quiet"
	// ProfileStandard devices carry typical 1/f sensor noise and a slow
	// lever-arm wander that usually stays inside the hysteresis band.
	ProfileStandard = "standard"
	// ProfileWandering devices have strongly drifting lever arms (1/f plus a
	// linear ramp on the cross couplings): their matrices go stale within
	// hours and dominate the recalibration traffic.
	ProfileWandering = "wandering"
	// ProfileJumpy devices suffer charge rearrangements: persistent
	// operating-point jumps that translate the honeycomb, occasionally far
	// enough that the spot-check loses the lines entirely.
	ProfileJumpy = "jumpy"
)

// Profiles lists the canonical profiles in scheduling-pressure order.
func Profiles() []string {
	return []string{ProfileQuiet, ProfileStandard, ProfileWandering, ProfileJumpy}
}

// profileWeight is the default device weight per profile — the operator
// cares most about the devices that drift.
func profileWeight(profile string) float64 {
	switch profile {
	case ProfileWandering:
		return 2
	case ProfileJumpy:
		return 1.5
	default:
		return 1
	}
}

// ProfileSpec builds a DoubleDotSpec for one canonical profile, with device
// geometry varied deterministically from seed so no two fleet members are
// identical.
func ProfileSpec(profile string, seed uint64) (device.DoubleDotSpec, error) {
	rng := xrand.New(seed)
	spec := device.DoubleDotSpec{
		SteepSlope:   -6.5 - 3*rng.Float64(),
		ShallowSlope: -0.08 - 0.08*rng.Float64(),
		CrossXFrac:   0.62 + 0.1*rng.Float64(),
		CrossYFrac:   0.58 + 0.1*rng.Float64(),
		Lambda1:      0.44 + 0.06*rng.Float64(),
		Lambda2:      0.42 + 0.06*rng.Float64(),
		Seed:         seed,
	}
	switch profile {
	case ProfileQuiet:
		spec.Noise = noise.PresetQuiet()
	case ProfileStandard:
		spec.Noise = noise.PresetStandard()
		spec.LeverDrift = &device.LeverDriftSpec{
			Shear21: noise.Params{PinkAmp: 0.008, PinkFMin: 1e-5, PinkFMax: 0.01},
		}
	case ProfileWandering:
		// The wander is bounded (1/f plus a sinusoidal excursion), not a
		// runaway ramp: lever arms breathe with temperature and charge
		// rearrangements but stay near their fabrication values, so the
		// device keeps crossing the staleness threshold all day while
		// remaining recalibratable inside its original scan window.
		spec.Noise = noise.PresetStandard()
		spec.LeverDrift = &device.LeverDriftSpec{
			Shear21: noise.Params{PinkAmp: 0.02, PinkFMin: 1e-5, PinkFMax: 0.01, DriftAmp: 0.06, DriftPeriod: 28800},
			Shear12: noise.Params{PinkAmp: 0.01, PinkFMin: 1e-5, PinkFMax: 0.01},
		}
	case ProfileJumpy:
		spec.Noise = noise.PresetUnstable()
		spec.LeverDrift = &device.LeverDriftSpec{
			Offset1: noise.Params{JumpAmp: 1.1, JumpInterval: 14400},
			Offset2: noise.Params{JumpAmp: 1.1, JumpInterval: 10800},
		}
	default:
		return device.DoubleDotSpec{}, fmt.Errorf("fleet: unknown profile %q", profile)
	}
	return spec, nil
}

// DefaultFleet builds n heterogeneous DeviceConfigs cycling through the
// canonical profiles, fully determined by seed. Device i gets profile
// i mod 4, a derived spec seed and the profile's default weight.
func DefaultFleet(n int, seed uint64) ([]DeviceConfig, error) {
	profiles := Profiles()
	out := make([]DeviceConfig, 0, n)
	for i := 0; i < n; i++ {
		p := profiles[i%len(profiles)]
		spec, err := ProfileSpec(p, xrand.DeriveSeed(seed, i))
		if err != nil {
			return nil, err
		}
		out = append(out, DeviceConfig{
			ID:     fmt.Sprintf("%s-%02d", p, i),
			Weight: profileWeight(p),
			Spec:   spec,
		})
	}
	return out, nil
}

// ChainProfileSpec builds a ChainSpec for an N-dot chain device whose pair
// drifts are heterogeneous along the array: pair (i mod 4) cycles the
// canonical pressure order — pair 0-like pairs quiet, one standard slow
// wander, one strong wander, one jumpy — so a chain device exercises the
// per-pair staleness machinery (typically only its wandering pairs cross
// the threshold and get partially recalibrated, the probe saving the chain
// workload exists for).
func ChainProfileSpec(dots int, seed uint64) device.ChainSpec {
	spec := device.ChainSpec{
		Dots:  dots,
		Noise: noise.PresetStandard(),
		Seed:  seed,
	}
	spec.FillDefaults()
	spec.PairDrift = make([]device.LeverDriftSpec, spec.Dots-1)
	for i := range spec.PairDrift {
		switch i % 4 {
		case 1: // standard: slow wander, usually inside the hysteresis band
			spec.PairDrift[i] = device.LeverDriftSpec{
				Shear21: noise.Params{PinkAmp: 0.008, PinkFMin: 1e-5, PinkFMax: 0.01},
			}
		case 2: // wandering: crosses the staleness threshold within hours
			spec.PairDrift[i] = device.LeverDriftSpec{
				Shear21: noise.Params{PinkAmp: 0.02, PinkFMin: 1e-5, PinkFMax: 0.01, DriftAmp: 0.06, DriftPeriod: 28800},
				Shear12: noise.Params{PinkAmp: 0.01, PinkFMin: 1e-5, PinkFMax: 0.01},
			}
		case 3: // jumpy: persistent operating-point jumps
			spec.PairDrift[i] = device.LeverDriftSpec{
				Offset1: noise.Params{JumpAmp: 1.1, JumpInterval: 14400},
				Offset2: noise.Params{JumpAmp: 1.1, JumpInterval: 10800},
			}
		}
	}
	return spec
}

// DefaultChainFleet builds n chain DeviceConfigs of the given dot count,
// fully determined by seed.
func DefaultChainFleet(n, dots int, seed uint64) []DeviceConfig {
	out := make([]DeviceConfig, 0, n)
	for i := 0; i < n; i++ {
		spec := ChainProfileSpec(dots, xrand.DeriveSeed(seed, 1000+i))
		out = append(out, DeviceConfig{
			ID:     fmt.Sprintf("chain-%02d", i),
			Weight: 2, // arrays are the scarce resource an operator watches
			Chain:  &spec,
		})
	}
	return out
}
