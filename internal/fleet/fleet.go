// Package fleet closes the calibration loop at fleet scale. A Manager owns
// many simulated devices whose lever arms wander under drift, 1/f and jump
// noise (device.LeverDrift), tracks the freshness of each device's extracted
// virtual-gate matrices with cheap periodic virtualgate.Verify spot-checks on
// a shared virtual clock, scores staleness against the positions recorded at
// calibration time, and schedules re-extractions on the service's worker
// pool (internal/sched) under a global probe budget — priority is
// staleness × device weight, with hysteresis (a healthy band plus a
// per-pair cooldown) so healthy devices are never re-tuned.
//
// Devices come in two shapes. A double-dot device carries one scan window
// and one 2×2 matrix. A chain device (device.ChainSpec) carries N−1
// adjacent-pair calibrations, each with its own independent instrument,
// window, matrix and staleness score — so when a single pair drifts past
// the threshold, only that pair is re-extracted (partial recalibration,
// budget-admitted like everything else) while its neighbours' fresh
// matrices are reused. Internally a double dot is simply a one-pair device:
// every scheduling decision is per (device, pair).
//
// With Policy.SurrogateThreshold set, every pair probes surrogate-first: a
// learned digital twin (internal/surrogate) answers the plateau probes a
// spot-check or re-extraction would otherwise spend live dwell on, while the
// guard band around the twin's fitted transition lines — exactly where drift
// shows — always escalates to the instrument. Drift detection on healthy
// devices becomes near-free; the saved measurements are counted as
// ProbesSaved at every level (event, pair, device, fleet). Twins are refit
// after each successful extraction, reset when a pair is lost or a
// calibration fails, and journaled alongside the device state so a restart
// warm-starts them.
//
// Everything the manager decides is deterministic for fixed device seeds:
// spot-checks and re-extractions fan out across workers, but each job touches
// only its own pair's instrument, and all cross-pair decisions (budget
// admission, priority order, accounting, history and journal writes) happen
// serially in (device ID, pair) order at phase barriers. A simulated day
// therefore produces a byte-identical summary at any worker count.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/fitting"
	"github.com/fastvg/fastvg/internal/infogain"
	"github.com/fastvg/fastvg/internal/sched"
	"github.com/fastvg/fastvg/internal/store"
	"github.com/fastvg/fastvg/internal/surrogate"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// ErrUnknownDevice is returned for operations on an unregistered device ID.
var ErrUnknownDevice = errors.New("fleet: unknown device")

// LostStaleness is the finite sentinel staleness of a pair whose
// transition lines could not be re-located (or that has never been
// calibrated): large enough to dominate any real score and any weight, and —
// unlike +Inf — JSON-encodable.
const LostStaleness = 1e6

// Policy tunes the fleet calibration loop; the zero value is a reasonable
// lab-day configuration.
type Policy struct {
	// CheckInterval is the virtual time (seconds) between freshness
	// spot-checks of a calibrated pair; default 900 (15 min).
	CheckInterval float64 `json:"checkInterval,omitempty"`
	// CheckFracs are the along-line fractions of each spot-check (the
	// VerifyConfig.AlongFracs); default {0.35, 0.65}.
	CheckFracs []float64 `json:"checkFracs,omitempty"`
	// CheckScanFrac is the spot-check scan half-width as a window-span
	// fraction; default 0.08 — roughly half the extraction-grade scan, since
	// a spot-check only needs to see a line that has barely moved.
	CheckScanFrac float64 `json:"checkScanFrac,omitempty"`
	// MaxShiftFrac is the line-drift tolerance (window-span fraction) that
	// normalises staleness: a score of 1 means the lines have moved by
	// exactly the tolerance; default virtualgate.DefaultMaxShiftFrac.
	MaxShiftFrac float64 `json:"maxShiftFrac,omitempty"`
	// StaleThreshold is the staleness score at which a pair is scheduled
	// for re-extraction; default 1.
	StaleThreshold float64 `json:"staleThreshold,omitempty"`
	// HealthyFrac bounds the hysteresis band: below
	// HealthyFrac·StaleThreshold a pair is "healthy", between the two it
	// is "watch" (monitored, never re-tuned); default 0.5.
	HealthyFrac float64 `json:"healthyFrac,omitempty"`
	// Cooldown is the minimum virtual time (seconds) between recalibration
	// attempts of one pair, the second hysteresis guard; default 1800.
	Cooldown float64 `json:"cooldown,omitempty"`
	// InfoGain, when true, routes scheduled pair re-extractions through the
	// Bayesian active probe scheduler (internal/infogain), warm-started on
	// the pair's last known line geometry — a guided re-location scan that
	// needs an order of magnitude fewer probes than the full extraction
	// raster. Infogain failures (posterior non-convergence, seeding misses)
	// fall back to the raster; first calibrations and operator forces always
	// run the raster.
	InfoGain bool `json:"infoGain,omitempty"`
	// SurrogateThreshold, when positive, probes every pair surrogate-first:
	// a learned digital twin (internal/surrogate) answers spot-check and
	// re-extraction probes whose confidence clears the threshold, and only
	// the rest — the guard band around the transition lines, where drift
	// shows — reach the live instrument. surrogate.DefaultThreshold is the
	// tuned value; zero (the default) keeps every probe live.
	SurrogateThreshold float64 `json:"surrogateThreshold,omitempty"`
	// Budget caps the probes the whole fleet may spend per BudgetWindow on
	// monitoring plus recalibration; 0 means unlimited.
	Budget int `json:"budget,omitempty"`
	// BudgetWindow is the budget accounting period in virtual seconds;
	// default 86400 (one day).
	BudgetWindow float64 `json:"budgetWindow,omitempty"`
	// CheckReserve and RecalReserve are the probes reserved when admitting a
	// spot-check / pair re-extraction against the budget; defaults 80 and
	// 1500. Admission is by reservation, accounting by actual probes spent —
	// with reserves at or above the worst observed costs (a spot-check is
	// geometrically bounded by its scan widths, a 100×100 pair re-extraction
	// plus baseline check measures ≈ 1100 probes), a window can never
	// overspend its budget.
	CheckReserve int `json:"checkReserve,omitempty"`
	RecalReserve int `json:"recalReserve,omitempty"`
	// HistoryCap bounds each device's retained in-memory calibration
	// history ring (what History and the /v1/fleet history endpoint serve);
	// default 128 events. The bound only trims what is held in memory: with
	// a journal attached the full event log is persisted as audit records
	// (bounded by the store's much larger AuditCap) and is served by
	// JournalHistory.
	HistoryCap int `json:"historyCap,omitempty"`
}

func (p *Policy) fillDefaults() {
	if p.CheckInterval == 0 {
		p.CheckInterval = 900
	}
	if len(p.CheckFracs) == 0 {
		p.CheckFracs = []float64{0.35, 0.65}
	}
	if p.CheckScanFrac == 0 {
		p.CheckScanFrac = 0.08
	}
	if p.MaxShiftFrac == 0 {
		p.MaxShiftFrac = virtualgate.DefaultMaxShiftFrac
	}
	if p.StaleThreshold == 0 {
		p.StaleThreshold = 1
	}
	if p.HealthyFrac == 0 {
		p.HealthyFrac = 0.5
	}
	if p.Cooldown == 0 {
		p.Cooldown = 1800
	}
	if p.BudgetWindow == 0 {
		p.BudgetWindow = 86400
	}
	if p.CheckReserve == 0 {
		p.CheckReserve = 80
	}
	if p.RecalReserve == 0 {
		p.RecalReserve = 1500
	}
	if p.HistoryCap == 0 {
		p.HistoryCap = 128
	}
}

// DeviceConfig registers one device with the fleet.
type DeviceConfig struct {
	// ID names the device; empty picks dev-NNN in registration order.
	ID string `json:"id,omitempty"`
	// Weight scales the device's recalibration priority; default 1.
	Weight float64 `json:"weight,omitempty"`
	// Spec describes a simulated double-dot device, including its lever-arm
	// drift. Ignored when Chain is set.
	Spec device.DoubleDotSpec `json:"spec"`
	// Chain, when set, registers an N-dot chain device instead: one
	// independent instrument, matrix and staleness score per adjacent pair.
	Chain *device.ChainSpec `json:"chain,omitempty"`
}

// Event is one entry of a device's calibration history.
type Event struct {
	T    float64 `json:"t"`    // virtual fleet time, seconds
	Kind string  `json:"kind"` // calibrate | recalibrate | force | check | calibrate-failed
	// Pair is the adjacent-pair index the event concerns (always 0 for
	// double-dot devices).
	Pair int `json:"pair"`
	// Staleness is the pair's score after the event (LostStaleness when
	// the lines could not be located).
	Staleness float64 `json:"staleness"`
	Probes    int     `json:"probes"` // live probes the event cost
	// ProbesSaved counts probes the pair's surrogate twin answered during
	// the event — measurements that never reached the device.
	ProbesSaved int `json:"probesSaved,omitempty"`
	// Delta marks a recalibration that re-located the lines with a few
	// cross scans instead of a full re-raster — the twin-enabled cheap path.
	Delta bool `json:"delta,omitempty"`
	// InfoGain marks a recalibration served by the active probe scheduler's
	// guided re-location scan instead of the full raster.
	InfoGain bool    `json:"infoGain,omitempty"`
	OK       bool    `json:"ok"`
	A12      float64 `json:"a12,omitempty"` // matrix after (re)calibration events
	A21      float64 `json:"a21,omitempty"`
	Err      string  `json:"err,omitempty"`
}

// Device states reported by DeviceView.State and PairStatus.State.
const (
	StateUncalibrated = "uncalibrated"
	StateHealthy      = "healthy"
	StateWatch        = "watch" // inside the hysteresis band: monitored, not re-tuned
	StateStale        = "stale"
	StateLost         = "lost" // spot-check could not re-locate the lines
)

// PairStatus is a serialisable snapshot of one adjacent pair's calibration.
type PairStatus struct {
	Pair           int     `json:"pair"`
	State          string  `json:"state"`
	Calibrated     bool    `json:"calibrated"`
	Staleness      float64 `json:"staleness"`
	MaxStaleness   float64 `json:"maxStaleness"`
	Checks         int     `json:"checks"`
	Calibrations   int     `json:"calibrations"`
	Forced         int     `json:"forced"`
	FailedCals     int     `json:"failedCals"`
	LostEvents     int     `json:"lostEvents"`
	Probes         int     `json:"probes"`
	ProbesSaved    int     `json:"probesSaved"`
	LastCalT       float64 `json:"lastCalT"`
	LastCheckT     float64 `json:"lastCheckT"`
	A12            float64 `json:"a12"`
	A21            float64 `json:"a21"`
	SteepSlope     float64 `json:"steepSlope"`
	ShallowSlope   float64 `json:"shallowSlope"`
	BudgetDeferred int     `json:"budgetDeferred"`
}

// DeviceView is a serialisable device snapshot. The scalar fields aggregate
// over the device's pairs (worst staleness, summed counters); Pairs breaks
// them down, and for double-dot devices holds exactly one entry whose
// fields match the aggregates.
type DeviceView struct {
	ID             string  `json:"id"`
	Weight         float64 `json:"weight"`
	Dots           int     `json:"dots"` // 2 for double-dot devices
	State          string  `json:"state"`
	Calibrated     bool    `json:"calibrated"` // every pair calibrated
	Staleness      float64 `json:"staleness"`  // worst pair score
	MaxStaleness   float64 `json:"maxStaleness"`
	Checks         int     `json:"checks"`
	Calibrations   int     `json:"calibrations"` // successful pair extractions, initial included
	Forced         int     `json:"forced"`
	FailedCals     int     `json:"failedCals"`
	LostEvents     int     `json:"lostEvents"`
	Probes         int     `json:"probes"`
	ProbesSaved    int     `json:"probesSaved"`
	LastCalT       float64 `json:"lastCalT"`
	LastCheckT     float64 `json:"lastCheckT"`
	A12            float64 `json:"a12"` // pair 0, for double-dot compatibility
	A21            float64 `json:"a21"`
	SteepSlope     float64 `json:"steepSlope"`
	ShallowSlope   float64 `json:"shallowSlope"`
	BudgetDeferred int     `json:"budgetDeferred"`

	Pairs []PairStatus `json:"pairs"`
}

// Status is a fleet-wide snapshot.
type Status struct {
	Now             float64      `json:"now"` // virtual fleet time, seconds
	DeviceCount     int          `json:"deviceCount"`
	PairCount       int          `json:"pairCount"` // scheduling units across the fleet
	Budget          int          `json:"budget"`
	BudgetWindowS   float64      `json:"budgetWindowS"`
	BudgetUsed      int          `json:"budgetUsed"` // in the current window
	Checks          int          `json:"checks"`
	Calibrations    int          `json:"calibrations"`
	Recalibrations  int          `json:"recalibrations"`
	PartialRecals   int          `json:"partialRecals"` // recals of a strict subset of a device's pairs in one tick
	Forced          int          `json:"forced"`
	FailedCals      int          `json:"failedCals"`
	LostEvents      int          `json:"lostEvents"`
	ProbesSpent     int          `json:"probesSpent"`
	ProbesSaved     int          `json:"probesSaved"` // surrogate-served probes fleet-wide
	MaxWindowProbes int          `json:"maxWindowProbes"`
	SkippedBudget   int          `json:"skippedBudget"` // admissions deferred for budget
	WorstStaleness  float64      `json:"worstStaleness"`
	Devices         []DeviceView `json:"devices"`
}

// TickReport summarises one Tick. Checked and Recalibrated list scheduling
// units as "<device>" for single-pair devices and "<device>/<pair>" for
// chain pairs, in the deterministic admission order.
type TickReport struct {
	Now           float64  `json:"now"`
	Checked       []string `json:"checked,omitempty"`
	Recalibrated  []string `json:"recalibrated,omitempty"`
	CheckProbes   int      `json:"checkProbes"`
	RecalProbes   int      `json:"recalProbes"`
	ProbesSaved   int      `json:"probesSaved"` // surrogate-served, both phases
	SkippedBudget int      `json:"skippedBudget"`
}

// pairInstrument is the per-pair measurement contract: scalar probing with
// cost accounting. SimInstrument (double dot) and PairView over a dedicated
// MultiInstrument (chain pair) both satisfy it.
type pairInstrument interface {
	device.Instrument
	Stats() device.Stats
}

// pairCal is one adjacent pair's calibration state — the fleet's scheduling
// unit. Guarded by the owning dev's mu.
type pairCal struct {
	idx  int
	inst pairInstrument
	adv  func(time.Duration) // advances the pair's instrument clock
	win  csd.Window

	hasCal         bool
	matrix         virtualgate.Mat2
	kneeV1, kneeV2 float64
	steep, shallow float64
	baseSteep      []float64 // verify positions recorded at calibration
	baseShallow    []float64

	score  float64 // current staleness (LostStaleness when lines lost / uncalibrated)
	scoreT float64 // virtual time the score was measured
	lost   bool

	lastCalT     float64
	lastAttemptT float64
	lastCheckT   float64
	attempts     int

	maxFinite      float64
	checks         int
	calibrations   int
	forced         int
	failedCals     int
	lostEvents     int
	probes         int
	probesSaved    int
	budgetDeferred int

	// model is the pair's surrogate twin, lazily created when the policy
	// enables surrogate-first probing. It learns from every escalated probe,
	// is refit after each successful extraction and reset when the pair is
	// lost or a calibration fails.
	model *surrogate.Model

	// per-phase scratch, written by the pair's own pool job and read back
	// at the phase barrier
	phaseProbes     int
	phaseSaved      int
	phaseEv         Event
	phaseHasEv      bool
	phaseModelDirty bool // twin refit or reset: journal it at the barrier
}

// dev is the manager's per-device record. mu serialises instrument access
// and guards every mutable field; the manager's scheduling loops only read
// or write a device while holding it.
type dev struct {
	id     string
	weight float64
	spec   device.DoubleDotSpec
	chain  *device.ChainSpec // nil for double-dot devices

	mu      sync.Mutex
	pairs   []*pairCal
	history []Event
}

// dots returns the device's dot count.
func (d *dev) dots() int {
	if d.chain != nil {
		return d.chain.Dots
	}
	return 2
}

// unit is one (device, pair) scheduling unit.
type unit struct {
	d  *dev
	pc *pairCal
}

// label renders the unit for tick reports: bare device ID for single-pair
// devices, "<id>/<pair>" for chain pairs.
func (u unit) label() string {
	if len(u.d.pairs) == 1 {
		return u.d.id
	}
	return fmt.Sprintf("%s/%d", u.d.id, u.pc.idx)
}

// Manager owns the fleet.
type Manager struct {
	pool *sched.Pool
	pol  Policy

	mu      sync.Mutex // guards the registry, fleet-wide accounting and journal
	journal *store.Store
	devices map[string]*dev
	order   []string // sorted device IDs
	nextID  int

	now         float64
	windowStart float64
	budgetUsed  int

	checks          int
	calibrations    int
	recalibrations  int
	partialRecals   int
	forced          int
	failedCals      int
	lostEvents      int
	probesSpent     int
	probesSaved     int
	maxWindowProbes int
	skippedBudget   int
	worstStaleness  float64

	// tel mirrors the counters above into a telemetry registry; nil until
	// AttachTelemetry, and attached before traffic so no event is missed.
	tel *fleetTelemetry

	tickMu sync.Mutex // serialises Tick/Run: there is one virtual clock
}

// New builds a fleet manager scheduling its measurement work on pool —
// normally the extraction service's own worker pool, so fleet recalibration
// traffic and interactive jobs share the same bounded slots.
func New(pool *sched.Pool, pol Policy) *Manager {
	pol.fillDefaults()
	return &Manager{
		pool:    pool,
		pol:     pol,
		devices: make(map[string]*dev),
	}
}

// Policy returns the manager's filled-in policy.
func (m *Manager) Policy() Policy { return m.pol }

// Now returns the virtual fleet time in seconds.
func (m *Manager) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// DeviceCount returns the number of registered devices without touching any
// device's state — cheap enough for liveness probes even while calibrations
// hold device locks.
func (m *Manager) DeviceCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.order)
}

// buildPairs constructs a device's scheduling units from its spec.
func buildPairs(cfg *DeviceConfig) ([]*pairCal, error) {
	if cfg.Chain != nil {
		spec := *cfg.Chain
		spec.FillDefaults()
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		cfg.Chain = &spec
		pairs := make([]*pairCal, spec.Dots-1)
		for i := range pairs {
			pv, win, err := spec.BuildPair(i)
			if err != nil {
				return nil, err
			}
			pairs[i] = &pairCal{
				idx: i, inst: pv, adv: pv.M.Advance, win: win,
				score: LostStaleness,
			}
		}
		return pairs, nil
	}
	inst, win, err := cfg.Spec.Build()
	if err != nil {
		return nil, err
	}
	return []*pairCal{{
		idx: 0, inst: inst, adv: inst.Advance, win: win,
		score: LostStaleness,
	}}, nil
}

// Register adds a device to the fleet. Every pair starts uncalibrated with
// sentinel staleness, so the next Ticks schedule its initial extractions
// (budget permitting).
func (m *Manager) Register(cfg DeviceConfig) (DeviceView, error) {
	if cfg.Weight < 0 {
		return DeviceView{}, errors.New("fleet: negative device weight")
	}
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	pairs, err := buildPairs(&cfg)
	if err != nil {
		return DeviceView{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := cfg.ID
	if id == "" {
		m.nextID++
		id = fmt.Sprintf("dev-%03d", m.nextID)
	}
	if _, dup := m.devices[id]; dup {
		return DeviceView{}, fmt.Errorf("fleet: device %q already registered", id)
	}
	d := &dev{
		id:     id,
		weight: cfg.Weight,
		spec:   cfg.Spec,
		chain:  cfg.Chain,
		pairs:  pairs,
	}
	// Keep the instrument clocks aligned with the fleet clock for devices
	// registered mid-run. Persist before inserting: a device the journal
	// cannot remember would silently lose its calibration lineage on the
	// next restart, so a failed journal write fails the registration.
	for _, pc := range d.pairs {
		pc.adv(time.Duration(m.now * float64(time.Second)))
	}
	if m.journal != nil {
		data, err := json.Marshal(d.persistSnapshot())
		if err == nil {
			err = m.journal.Put(store.KindFleetDevice, d.id, data)
		}
		if err == nil {
			err = m.journal.Put(store.KindFleetClock, "", m.clockSnapshotLocked())
		}
		if err != nil {
			return DeviceView{}, err
		}
	}
	m.devices[id] = d
	m.order = append(m.order, id)
	sort.Strings(m.order)
	if m.tel != nil {
		m.tel.devices.Set(float64(len(m.order)))
		m.tel.pairs.Add(float64(len(d.pairs)))
	}
	return d.view(m.pol), nil
}

// Device returns a snapshot of one device.
func (m *Manager) Device(id string) (DeviceView, bool) {
	m.mu.Lock()
	d, ok := m.devices[id]
	m.mu.Unlock()
	if !ok {
		return DeviceView{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.view(m.pol), true
}

// History returns a device's calibration history, oldest first.
func (m *Manager) History(id string) ([]Event, bool) {
	m.mu.Lock()
	d, ok := m.devices[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Event(nil), d.history...), true
}

// Status returns a fleet-wide snapshot with devices in ID order.
func (m *Manager) Status() Status {
	m.mu.Lock()
	st := Status{
		Now:             m.now,
		DeviceCount:     len(m.order),
		Budget:          m.pol.Budget,
		BudgetWindowS:   m.pol.BudgetWindow,
		BudgetUsed:      m.budgetUsed,
		Checks:          m.checks,
		Calibrations:    m.calibrations,
		Recalibrations:  m.recalibrations,
		PartialRecals:   m.partialRecals,
		Forced:          m.forced,
		FailedCals:      m.failedCals,
		LostEvents:      m.lostEvents,
		ProbesSpent:     m.probesSpent,
		ProbesSaved:     m.probesSaved,
		MaxWindowProbes: m.maxWindowProbes,
		SkippedBudget:   m.skippedBudget,
		WorstStaleness:  m.worstStaleness,
	}
	devs := m.snapshot()
	m.mu.Unlock()
	for _, d := range devs {
		d.mu.Lock()
		st.Devices = append(st.Devices, d.view(m.pol))
		st.PairCount += len(d.pairs)
		d.mu.Unlock()
	}
	return st
}

// snapshot returns the devices in ID order; callers hold m.mu.
func (m *Manager) snapshot() []*dev {
	out := make([]*dev, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.devices[id])
	}
	return out
}

// pairStatus renders one pair; callers hold d.mu.
func (pc *pairCal) status(pol Policy) PairStatus {
	s := PairStatus{
		Pair:           pc.idx,
		State:          pc.state(pol),
		Calibrated:     pc.hasCal,
		Staleness:      pc.score,
		MaxStaleness:   pc.maxFinite,
		Checks:         pc.checks,
		Calibrations:   pc.calibrations,
		Forced:         pc.forced,
		FailedCals:     pc.failedCals,
		LostEvents:     pc.lostEvents,
		Probes:         pc.probes,
		ProbesSaved:    pc.probesSaved,
		LastCalT:       pc.lastCalT,
		LastCheckT:     pc.lastCheckT,
		BudgetDeferred: pc.budgetDeferred,
	}
	if pc.hasCal {
		s.A12, s.A21 = pc.matrix.A12(), pc.matrix.A21()
		s.SteepSlope, s.ShallowSlope = pc.steep, pc.shallow
	}
	return s
}

// view renders the device; callers hold d.mu.
func (d *dev) view(pol Policy) DeviceView {
	v := DeviceView{
		ID:         d.id,
		Weight:     d.weight,
		Dots:       d.dots(),
		Calibrated: true,
	}
	for _, pc := range d.pairs {
		ps := pc.status(pol)
		v.Pairs = append(v.Pairs, ps)
		v.Calibrated = v.Calibrated && pc.hasCal
		if ps.Staleness > v.Staleness {
			v.Staleness = ps.Staleness
		}
		if ps.MaxStaleness > v.MaxStaleness {
			v.MaxStaleness = ps.MaxStaleness
		}
		v.Checks += ps.Checks
		v.Calibrations += ps.Calibrations
		v.Forced += ps.Forced
		v.FailedCals += ps.FailedCals
		v.LostEvents += ps.LostEvents
		v.Probes += ps.Probes
		v.ProbesSaved += ps.ProbesSaved
		v.BudgetDeferred += ps.BudgetDeferred
		if ps.LastCalT > v.LastCalT {
			v.LastCalT = ps.LastCalT
		}
		if ps.LastCheckT > v.LastCheckT {
			v.LastCheckT = ps.LastCheckT
		}
	}
	v.State = d.state(pol)
	if p0 := d.pairs[0]; p0.hasCal {
		v.A12, v.A21 = p0.matrix.A12(), p0.matrix.A21()
		v.SteepSlope, v.ShallowSlope = p0.steep, p0.shallow
	}
	return v
}

// state classifies a pair against the hysteresis band; callers hold d.mu.
func (pc *pairCal) state(pol Policy) string {
	switch {
	case !pc.hasCal:
		return StateUncalibrated
	case pc.lost:
		return StateLost
	case pc.score >= pol.StaleThreshold:
		return StateStale
	case pc.score >= pol.HealthyFrac*pol.StaleThreshold:
		return StateWatch
	default:
		return StateHealthy
	}
}

// state classifies the device as its worst pair; callers hold d.mu.
func (d *dev) state(pol Policy) string {
	rank := map[string]int{
		StateHealthy: 0, StateWatch: 1, StateStale: 2, StateLost: 3, StateUncalibrated: 4,
	}
	worst := StateHealthy
	for _, pc := range d.pairs {
		if s := pc.state(pol); rank[s] > rank[worst] {
			worst = s
		}
	}
	return worst
}

// checkConfig is the spot-check VerifyConfig.
func (m *Manager) checkConfig() virtualgate.VerifyConfig {
	return virtualgate.VerifyConfig{
		AlongFracs:   m.pol.CheckFracs,
		ScanFrac:     m.pol.CheckScanFrac,
		MaxShiftFrac: m.pol.MaxShiftFrac,
	}
}

// Tick advances the virtual fleet clock by dt seconds and runs one
// monitoring round: freshness spot-checks for calibrated pairs whose check
// interval elapsed, then budget-admitted re-extractions for stale pairs in
// priority order — for a chain device that usually means re-extracting only
// the drifted pair. Ticks are serialised; concurrent Status/Register calls
// interleave safely.
func (m *Manager) Tick(ctx context.Context, dt float64) (TickReport, error) {
	if dt <= 0 {
		return TickReport{}, errors.New("fleet: tick duration must be positive")
	}
	m.tickMu.Lock()
	defer m.tickMu.Unlock()

	m.mu.Lock()
	m.now += dt
	// Roll the budget window. The tick landing exactly on the boundary still
	// belongs to the closing window (it covers the virtual time up to it).
	for m.pol.Budget > 0 && m.now-m.windowStart > m.pol.BudgetWindow {
		m.windowStart += m.pol.BudgetWindow
		if m.budgetUsed > m.maxWindowProbes {
			m.maxWindowProbes = m.budgetUsed
		}
		m.budgetUsed = 0
	}
	now := m.now
	devs := m.snapshot()
	m.mu.Unlock()

	rep := TickReport{Now: now}

	// Budget admission is by reservation: each admitted operation holds its
	// reserve until the phase's actual probes are accounted, so one phase
	// can never admit more work than the window's remaining headroom.
	reserved := 0
	admit := func(reserve int) bool {
		if m.pol.Budget <= 0 {
			return true
		}
		m.mu.Lock()
		ok := m.budgetUsed+reserved+reserve <= m.pol.Budget
		m.mu.Unlock()
		if ok {
			reserved += reserve
		}
		return ok
	}

	// Idle time passes on every pair instrument's clock, drifting its
	// lever arms and opening a fresh measurement epoch.
	for _, d := range devs {
		d.mu.Lock()
		for _, pc := range d.pairs {
			pc.adv(time.Duration(dt * float64(time.Second)))
		}
		d.mu.Unlock()
	}

	// Phase 1: spot-checks, admitted in (device ID, pair) order under the
	// budget.
	var due []unit
	for _, d := range devs {
		d.mu.Lock()
		for _, pc := range d.pairs {
			if pc.hasCal && now-pc.lastCheckT >= m.pol.CheckInterval {
				if admit(m.pol.CheckReserve) {
					pc.phaseProbes = 0 // jobs that never run must account as zero
					pc.phaseSaved = 0
					pc.phaseHasEv = false
					pc.phaseModelDirty = false
					due = append(due, unit{d, pc})
				} else {
					rep.SkippedBudget++
				}
			}
		}
		d.mu.Unlock()
	}
	checkErr := m.pool.Map(ctx, len(due), func(jctx context.Context, i int) error {
		return m.checkPair(jctx, due[i].d, due[i].pc, now)
	})
	// Settle at the barrier in admission order, even when the phase was
	// interrupted: probes recorded in the scratch fields were really spent,
	// and history/journal writes happen here so their order never depends on
	// scheduling.
	var checkSaved int
	persistErr := m.settlePhase(due, &rep.Checked, &rep.CheckProbes, &checkSaved)
	rep.ProbesSaved += checkSaved
	m.account(rep.CheckProbes)
	m.accountSaved(checkSaved)
	reserved = 0 // check reservations became actuals above
	if checkErr != nil {
		return rep, checkErr
	}
	if persistErr != nil {
		return rep, persistErr
	}

	// Phase 2: re-extraction of stale pairs, highest priority first. A chain
	// device with one drifted pair enters with exactly that pair — the
	// partial recalibration path.
	type cand struct {
		u        unit
		priority float64
	}
	var cands []cand
	for _, d := range devs {
		d.mu.Lock()
		for _, pc := range d.pairs {
			if m.eligible(pc, now) {
				cands = append(cands, cand{unit{d, pc}, pc.score * d.weight})
			}
		}
		d.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].priority != cands[j].priority {
			return cands[i].priority > cands[j].priority
		}
		if cands[i].u.d.id != cands[j].u.d.id {
			return cands[i].u.d.id < cands[j].u.d.id
		}
		return cands[i].u.pc.idx < cands[j].u.pc.idx
	})
	var admitted []unit
	for _, c := range cands {
		if admit(m.pol.RecalReserve) {
			c.u.d.mu.Lock()
			c.u.pc.phaseProbes = 0
			c.u.pc.phaseSaved = 0
			c.u.pc.phaseHasEv = false
			c.u.pc.phaseModelDirty = false
			c.u.d.mu.Unlock()
			admitted = append(admitted, c.u)
		} else {
			rep.SkippedBudget++
			c.u.d.mu.Lock()
			c.u.pc.budgetDeferred++
			c.u.d.mu.Unlock()
		}
	}
	recalErr := m.pool.Map(ctx, len(admitted), func(jctx context.Context, i int) error {
		return m.calibratePair(jctx, admitted[i].d, admitted[i].pc, now, false)
	})
	// Settle in (device ID, pair) order so fleet totals are scheduling-
	// independent, and even when interrupted — completed jobs' probes were
	// really spent.
	sort.Slice(admitted, func(i, j int) bool {
		if admitted[i].d.id != admitted[j].d.id {
			return admitted[i].d.id < admitted[j].d.id
		}
		return admitted[i].pc.idx < admitted[j].pc.idx
	})
	var recalSaved int
	persistErr = m.settlePhase(admitted, &rep.Recalibrated, &rep.RecalProbes, &recalSaved)
	rep.ProbesSaved += recalSaved
	m.account(rep.RecalProbes)
	m.accountSaved(recalSaved)
	m.notePartialRecals(admitted)

	m.mu.Lock()
	m.skippedBudget += rep.SkippedBudget
	if m.tel != nil {
		m.tel.skippedBudget.Add(int64(rep.SkippedBudget))
	}
	m.mu.Unlock()
	if recalErr != nil {
		return rep, recalErr
	}
	if persistErr != nil {
		return rep, persistErr
	}
	// Journal the advanced clock and window accounting so a restart resumes
	// the budget window (and tick cadence) where this tick left it.
	return rep, m.saveClock()
}

// settlePhase applies one phase's outcomes at its barrier, in the given
// (deterministic) unit order: report labels and probe totals, history
// pushes, fleet-wide counter bumps and journal writes. The first journal
// error is returned after every unit is settled — accounting must never be
// lost to a persistence fault.
func (m *Manager) settlePhase(units []unit, labels *[]string, probes, saved *int) error {
	var firstErr error
	for _, u := range units {
		u.d.mu.Lock()
		*labels = append(*labels, u.label())
		*probes += u.pc.phaseProbes
		*saved += u.pc.phaseSaved
		if u.pc.phaseHasEv {
			ev := u.pc.phaseEv
			u.d.pushEvent(m.pol, ev)
			m.bumpEvent(ev)
			if err := m.persistDeviceEvent(u.d, ev); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if u.pc.phaseModelDirty {
			if err := m.saveModel(u.d, u.pc); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		u.d.mu.Unlock()
	}
	return firstErr
}

// saveModel journals a pair's surrogate twin under its own record — models
// are ~100 KB binary blobs, far too heavy to ride along in the per-event
// device snapshot. Callers hold the owning dev's mu.
func (m *Manager) saveModel(d *dev, pc *pairCal) error {
	st := m.journalStore()
	if st == nil || pc.model == nil {
		return nil
	}
	key := fmt.Sprintf("fleet/%s/%d", d.id, pc.idx)
	return st.Put(store.KindSurrogateModel, key, pc.model.Encode())
}

// notePartialRecals counts devices whose recalibrated pairs this tick were a
// strict subset of their pairs — the chain workload's probe saving.
func (m *Manager) notePartialRecals(admitted []unit) {
	perDev := make(map[*dev]int)
	for _, u := range admitted {
		perDev[u.d]++
	}
	partial := 0
	for d, n := range perDev {
		d.mu.Lock()
		if n < len(d.pairs) {
			partial++
		}
		d.mu.Unlock()
	}
	if partial > 0 {
		m.mu.Lock()
		m.partialRecals += partial
		if m.tel != nil {
			m.tel.partialRecals.Add(int64(partial))
		}
		m.mu.Unlock()
	}
}

// bumpEvent folds one settled event into the fleet-wide counters; the
// fields touched are m-level, guarded by m.mu inside the bump helpers.
func (m *Manager) bumpEvent(ev Event) {
	switch ev.Kind {
	case "check":
		if ev.Err != "" {
			m.bumpLost()
		} else {
			m.bumpCheck(ev.Staleness)
		}
	case "calibrate-failed":
		m.bumpFailed()
	case "calibrate":
		m.bumpCalibration(true, false)
	case "recalibrate":
		m.bumpCalibration(false, false)
	case "force":
		m.bumpCalibration(false, true)
	}
}

// accountSaved folds surrogate-served probes into the fleet total. Saved
// probes never touch the budget window: the budget bounds instrument time,
// and a twin-served probe costs none.
func (m *Manager) accountSaved(saved int) {
	if saved == 0 {
		return
	}
	m.mu.Lock()
	m.probesSaved += saved
	if m.tel != nil {
		m.tel.probesSaved.Add(int64(saved))
	}
	m.mu.Unlock()
}

// account charges actually-spent probes to the window and fleet totals.
func (m *Manager) account(probes int) {
	if probes == 0 {
		return
	}
	m.mu.Lock()
	m.budgetUsed += probes
	if m.budgetUsed > m.maxWindowProbes {
		m.maxWindowProbes = m.budgetUsed
	}
	m.probesSpent += probes
	if m.tel != nil {
		m.tel.probes.Add(int64(probes))
	}
	m.mu.Unlock()
}

// eligible decides whether a pair is a recalibration candidate; callers
// hold the owning dev's mu. Hysteresis: a calibrated pair must (a) have
// crossed the staleness threshold, (b) on evidence measured after its last
// calibration — never on a stale score — and (c) be out of its cooldown.
func (m *Manager) eligible(pc *pairCal, now float64) bool {
	if !pc.hasCal {
		return pc.attempts == 0 || now-pc.lastAttemptT >= m.pol.Cooldown
	}
	if pc.score < m.pol.StaleThreshold {
		return false
	}
	if pc.scoreT <= pc.lastCalT {
		return false
	}
	return now-pc.lastAttemptT >= m.pol.Cooldown
}

// probeSrc returns the instrument a scheduling job should probe through.
// With SurrogateThreshold unset that is the pair instrument itself; with it
// set, the pair's twin (lazily created) fronts the instrument as a learning
// Hybrid, and the returned handle exposes the phase's hit count. Callers
// hold d.mu.
func (m *Manager) probeSrc(pc *pairCal) (pairInstrument, *surrogate.Hybrid) {
	if m.pol.SurrogateThreshold <= 0 {
		return pc.inst, nil
	}
	if pc.model == nil {
		pc.model = surrogate.New(pc.win)
	}
	h := &surrogate.Hybrid{
		Model:     pc.model,
		Inner:     pc.inst,
		Threshold: m.pol.SurrogateThreshold,
		Learn:     true,
	}
	if m.tel != nil {
		h.Metrics = m.tel.sur
	}
	return h, h
}

// resetModel discards a pair's twin after its world model proved wrong (lines
// lost, extraction failed) and marks it for journalling; callers hold d.mu.
func (pc *pairCal) resetModel() {
	if pc.model != nil {
		pc.model.Reset()
		pc.phaseModelDirty = true
	}
}

// settleSaved folds the phase's surrogate hits into the pair counters;
// callers hold d.mu.
func (pc *pairCal) settleSaved(hyb *surrogate.Hybrid) {
	pc.phaseSaved = 0
	if hyb != nil {
		pc.phaseSaved = hyb.Hits()
		pc.probesSaved += pc.phaseSaved
	}
}

// checkPair runs one freshness spot-check. The outcome is stashed in the
// pair's phase scratch; history, counters and journal writes happen at the
// phase barrier so their order is deterministic.
func (m *Manager) checkPair(ctx context.Context, d *dev, pc *pairCal, now float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	before := pc.inst.Stats().UniqueProbes
	src, hyb := m.probeSrc(pc)
	vr, err := virtualgate.Verify(ctx, src, pc.win, pc.matrix, pc.kneeV1, pc.kneeV2, m.checkConfig())
	probes := pc.inst.Stats().UniqueProbes - before
	pc.phaseProbes = probes
	pc.probes += probes
	pc.settleSaved(hyb)
	pc.checks++
	pc.lastCheckT = now
	if err != nil {
		if !errors.Is(err, virtualgate.ErrVerify) {
			return err // cancellation or instrument fault: abort the tick
		}
		// Lines lost: the matrix (or the knee it is anchored to) is so stale
		// the short scans miss the transitions entirely. The twin learned the
		// same stale world — discard it with the matrix.
		pc.resetModel()
		pc.lost = true
		pc.score = LostStaleness
		pc.scoreT = now
		pc.lostEvents++
		pc.phaseEv = Event{T: now, Kind: "check", Pair: pc.idx, Staleness: pc.score, Probes: probes, ProbesSaved: pc.phaseSaved, Err: err.Error()}
		pc.phaseHasEv = true
		return nil
	}
	pc.lost = false
	pc.score = m.scoreResult(pc, vr)
	pc.scoreT = now
	if pc.score > pc.maxFinite {
		pc.maxFinite = pc.score
	}
	pc.phaseEv = Event{T: now, Kind: "check", Pair: pc.idx, Staleness: pc.score, Probes: probes, ProbesSaved: pc.phaseSaved, OK: pc.score < m.pol.StaleThreshold}
	pc.phaseHasEv = true
	return nil
}

// persistDeviceEvent journals a device's updated state and the event that
// produced it; callers hold d.mu. A nil journal is a no-op; a journal error
// is an infrastructure fault that aborts the tick, like an instrument
// fault.
func (m *Manager) persistDeviceEvent(d *dev, ev Event) error {
	if m.journalStore() == nil {
		return nil
	}
	if err := m.saveDevice(d); err != nil {
		return err
	}
	return m.saveEvent(d.id, ev)
}

// scoreResult turns a verify outcome into a staleness score; callers hold
// the owning dev's mu. Two signals, both normalised so 1.0 sits at the drift
// tolerance: the spread of each line across the along-positions (matrix
// error — a wrong matrix makes the line appear to move under virtual
// stepping) and the shift of each re-located position against the baseline
// recorded at calibration (the line itself moved: lever-arm drift or a
// charge jump).
func (m *Manager) scoreResult(pc *pairCal, vr *virtualgate.VerifyResult) float64 {
	tol1 := m.pol.MaxShiftFrac * (pc.win.V1Max - pc.win.V1Min)
	tol2 := m.pol.MaxShiftFrac * (pc.win.V2Max - pc.win.V2Min)
	score := math.Max(vr.SteepShift/tol1, vr.ShallowShift/tol2)
	for i, p := range vr.SteepPositions {
		if i < len(pc.baseSteep) {
			score = math.Max(score, math.Abs(p-pc.baseSteep[i])/tol1)
		}
	}
	for i, p := range vr.ShallowPositions {
		if i < len(pc.baseShallow) {
			score = math.Max(score, math.Abs(p-pc.baseShallow[i])/tol2)
		}
	}
	return score
}

// Delta-recalibration scan geometry: three crossings per line, scanned with
// a wider window than a spot-check (the line has, by definition of being
// recalibrated, moved by about the tolerance — the scan must still straddle
// it) but far narrower than a re-raster.
var deltaAlongFracs = []float64{0.25, 0.5, 0.75}

const (
	deltaScanFrac = 0.08
	// deltaWideScanFrac is the one-shot live rescan width used when the
	// twin-first delta scan cannot find a line: the line has escaped the
	// twin's guard band, so the stale model would mask the crossing — the
	// retry probes the instrument directly over a doubled straddle.
	deltaWideScanFrac = 0.16
	// deltaBaseScanFrac is the post-delta baseline verify's scan half-width:
	// the lines were located moments ago, so the reference positions only
	// need a short straddle, not the full spot-check width.
	deltaBaseScanFrac = 0.04
)

// medianFloat returns the median of vs; vs is scratch and may be reordered.
func medianFloat(vs []float64) float64 {
	sort.Float64s(vs)
	return vs[len(vs)/2]
}

// deltaRecal is the twin-enabled cheap recalibration: instead of a full
// re-raster, re-locate both transition lines with a few extraction-grade
// cross scans around their last known positions, refit the slopes from the
// measured crossings, and recompute the matrix and knee. The twin then gets
// the measured shape installed directly (SetLine), recentring its guard band
// on the fresh lines. Returns ok=false — caller falls back to the full
// raster — when the lines cannot be re-located or the refit geometry is
// degenerate; a non-ErrVerify error aborts the tick. Callers hold d.mu.
func (m *Manager) deltaRecal(ctx context.Context, pc *pairCal, src pairInstrument) (bool, error) {
	cfg := virtualgate.VerifyConfig{
		AlongFracs:   deltaAlongFracs,
		ScanFrac:     deltaScanFrac,
		MaxShiftFrac: m.pol.MaxShiftFrac,
	}
	vr, err := virtualgate.Verify(ctx, src, pc.win, pc.matrix, pc.kneeV1, pc.kneeV2, cfg)
	if errors.Is(err, virtualgate.ErrVerify) {
		// A line escaped the twin's guard band, so the stale model masks
		// its crossing: rescan once, wider and fully live.
		cfg.ScanFrac = deltaWideScanFrac
		vr, err = virtualgate.Verify(ctx, pc.inst, pc.win, pc.matrix, pc.kneeV1, pc.kneeV2, cfg)
	}
	if err != nil {
		if errors.Is(err, virtualgate.ErrVerify) {
			return false, nil
		}
		return false, err
	}
	inv, err := pc.matrix.Inverse()
	if err != nil {
		return false, nil
	}
	// Map the measured virtual-coordinate crossings back to real voltages:
	// three points on each (possibly moved) line.
	eu1, eu2 := pc.matrix.Apply(pc.win.V1Min, pc.win.V2Min)
	ku1, ku2 := pc.matrix.Apply(pc.kneeV1, pc.kneeV2)
	steepPts := make([]fitting.Vec2, 0, len(cfg.AlongFracs))
	shallowPts := make([]fitting.Vec2, 0, len(cfg.AlongFracs))
	for i, f := range cfg.AlongFracs {
		x, y := inv.Apply(vr.SteepPositions[i], eu2+f*(ku2-eu2))
		steepPts = append(steepPts, fitting.Vec2{X: x, Y: y})
		x, y = inv.Apply(eu1+f*(ku1-eu1), vr.ShallowPositions[i])
		shallowPts = append(shallowPts, fitting.Vec2{X: x, Y: y})
	}
	// Refit each line through its crossings — the steep one as x(y), like
	// the extraction pipeline, to stay conditioned near vertical.
	swapped := make([]fitting.Vec2, len(steepPts))
	for i, p := range steepPts {
		swapped[i] = fitting.Vec2{X: p.Y, Y: p.X}
	}
	// Intersecting x = c1 + d1·y (steep) with y = c2 + d2·x (shallow) gives
	// the new knee; both inverse slopes must sit in (-1, 0) for FromSlopes.
	solve := func(c1, d1, c2, d2 float64) (kneeX, kneeY float64, ok bool) {
		if !(d1 > -1 && d1 < 0) || !(d2 > -1 && d2 < 0) {
			return 0, 0, false
		}
		kneeX = (c1 + d1*c2) / (1 - d1*d2)
		kneeY = c2 + d2*kneeX
		ok = kneeX >= pc.win.V1Min && kneeX <= pc.win.V1Max &&
			kneeY >= pc.win.V2Min && kneeY <= pc.win.V2Max
		return kneeX, kneeY, ok
	}
	c1, d1, errSteep := fitting.TheilSen(swapped)
	c2, d2, errShallow := fitting.TheilSen(shallowPts)
	var kneeX, kneeY float64
	ok := false
	if errSteep == nil && errShallow == nil {
		kneeX, kneeY, ok = solve(c1, d1, c2, d2)
	}
	if !ok {
		// Three crossings are too few to always bound the slope under probe
		// noise. Wandering drift is dominated by offset, so re-anchor the
		// previous slopes through the measured crossings (translation-only
		// delta) before giving up and re-rastering.
		d1, d2 = 1/pc.steep, pc.shallow
		var rSteep, rShallow []float64
		for i := range steepPts {
			rSteep = append(rSteep, steepPts[i].X-d1*steepPts[i].Y)
			rShallow = append(rShallow, shallowPts[i].Y-d2*shallowPts[i].X)
		}
		c1, c2 = medianFloat(rSteep), medianFloat(rShallow)
		if kneeX, kneeY, ok = solve(c1, d1, c2, d2); !ok {
			return false, nil
		}
	}
	steep, shallow := 1/d1, d2
	mat, err := virtualgate.FromSlopes(steep, shallow)
	if err != nil {
		return false, nil
	}
	pc.matrix = mat
	pc.steep, pc.shallow = steep, shallow
	pc.kneeV1, pc.kneeV2 = kneeX, kneeY
	if pc.model != nil {
		line := fitting.Polyline2{
			A: fitting.Vec2{X: c1 + d1*pc.win.V2Min, Y: pc.win.V2Min},
			K: fitting.Vec2{X: kneeX, Y: kneeY},
			B: fitting.Vec2{X: pc.win.V1Min, Y: c2 + d2*pc.win.V1Min},
		}
		// The shape was just measured live, so its uncertainty is the scan
		// pitch, not a fit residual — keep the guard band tight.
		rms := pc.win.StepV1() / 2
		if err := pc.model.SetLine(surrogate.Fit{Model: line, RMS: rms}); err != nil {
			pc.model.Reset()
		}
		pc.phaseModelDirty = true
	}
	return true, nil
}

// calibratePair re-tunes one pair — for a chain device, only this pair's
// window is re-measured; the neighbours keep their matrices. With a warm
// fitted twin a scheduled recalibration takes the delta path (a few cross
// scans); cold starts, lost pairs and operator forces run the full
// extraction raster. Either way a baseline spot-check records the freshness
// reference.
func (m *Manager) calibratePair(ctx context.Context, d *dev, pc *pairCal, now float64, force bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	first := !pc.hasCal
	before := pc.inst.Stats().UniqueProbes
	probeInst, hyb := m.probeSrc(pc)
	// A scheduled recalibration of a still-tracked pair with a warm fitted
	// twin only needs to re-measure where the lines went.
	delta := false
	if !force && !first && !pc.lost && hyb != nil && pc.model.Fitted() {
		ok, err := m.deltaRecal(ctx, pc, probeInst)
		if err != nil {
			return err
		}
		delta = ok
	}
	// A scheduled recalibration under the InfoGain policy re-locates the
	// lines with the active probe scheduler, warm-started on the pair's last
	// known geometry; a deterministic infogain failure falls through to the
	// full raster below.
	guided := false
	if !delta && m.pol.InfoGain && !force && !first {
		igCfg := infogain.Config{}
		if m.tel != nil {
			igCfg.Metrics = m.tel.ig
		}
		if !pc.lost {
			igCfg.Prior = &infogain.Prior{
				SteepSlope: pc.steep, ShallowSlope: pc.shallow,
				TripleV1: pc.kneeV1, TripleV2: pc.kneeV2,
			}
		}
		src := csd.PixelSource{Src: probeInst, Win: pc.win}
		if ir, ierr := infogain.Extract(src, pc.win, igCfg); ierr == nil {
			pc.matrix = ir.Matrix
			pc.steep, pc.shallow = ir.SteepSlope, ir.ShallowSlope
			pc.kneeV1, pc.kneeV2 = ir.TriplePointVoltage(pc.win)
			guided = true
		}
	}
	if !delta && !guided {
		src := csd.PixelSource{Src: probeInst, Win: pc.win}
		cr, err := core.Extract(src, pc.win, core.Config{})
		if err != nil {
			// The extraction anchors could not find the lines in what the twin
			// and the instrument together reported — the twin is not
			// trustworthy.
			pc.resetModel()
			probes := pc.inst.Stats().UniqueProbes - before
			pc.phaseProbes = probes
			pc.probes += probes
			pc.settleSaved(hyb)
			pc.attempts++
			pc.lastAttemptT = now
			pc.failedCals++
			pc.phaseEv = Event{T: now, Kind: "calibrate-failed", Pair: pc.idx, Staleness: pc.score, Probes: probes, ProbesSaved: pc.phaseSaved, Err: err.Error()}
			pc.phaseHasEv = true
			return nil
		}
		pc.matrix = cr.Matrix
		pc.steep, pc.shallow = cr.SteepSlope, cr.ShallowSlope
		pc.kneeV1, pc.kneeV2 = cr.TriplePointVoltage(pc.win)
	}
	pc.hasCal = true
	pc.lost = false
	pc.attempts++
	pc.calibrations++
	pc.lastCalT = now
	pc.lastAttemptT = now

	// Record the freshness baseline: the line positions a healthy pair
	// reproduces, measured with the same scan geometry the spot-checks use.
	kind := "recalibrate"
	if first {
		kind = "calibrate"
	}
	if force {
		kind = "force"
		pc.forced++
	}
	// Refit the twin on the freshly-learned raster samples before the
	// baseline verify: the guard band recentres on the new transition lines,
	// so near-line verify probes stay live while plateau probes can be
	// served. The delta path already installed the measured shape.
	if !delta && pc.model != nil {
		if ferr := pc.model.Fit(); ferr != nil {
			pc.model.Reset()
		}
		pc.phaseModelDirty = true
	}
	ev := Event{T: now, Kind: kind, Pair: pc.idx, Delta: delta, InfoGain: guided, A12: pc.matrix.A12(), A21: pc.matrix.A21()}
	baseCfg := m.checkConfig()
	if delta {
		baseCfg.ScanFrac = deltaBaseScanFrac
	}
	vr, verr := virtualgate.Verify(ctx, probeInst, pc.win, pc.matrix, pc.kneeV1, pc.kneeV2, baseCfg)
	if verr != nil {
		if !errors.Is(verr, virtualgate.ErrVerify) {
			return verr
		}
		// Extraction succeeded but the check scans cannot see the lines —
		// keep the sentinel so the pair stays first in line.
		pc.resetModel()
		pc.baseSteep, pc.baseShallow = nil, nil
		pc.lost = true
		pc.score = LostStaleness
		pc.lostEvents++
		ev.Err = verr.Error()
	} else {
		pc.baseSteep = append([]float64(nil), vr.SteepPositions...)
		pc.baseShallow = append([]float64(nil), vr.ShallowPositions...)
		// Against the just-recorded baseline the shift terms are zero, so
		// this is exactly the spread (matrix-error) score.
		pc.score = m.scoreResult(pc, vr)
		if pc.score > pc.maxFinite {
			pc.maxFinite = pc.score
		}
		ev.OK = pc.score < m.pol.StaleThreshold
	}
	pc.scoreT = now
	// The baseline verify just measured the lines: the next periodic
	// spot-check is due a full interval from now, not from the last one.
	pc.lastCheckT = now
	probes := pc.inst.Stats().UniqueProbes - before
	pc.phaseProbes = probes
	pc.probes += probes
	pc.settleSaved(hyb)
	ev.Staleness = pc.score
	ev.Probes = probes
	ev.ProbesSaved = pc.phaseSaved
	pc.phaseEv = ev
	pc.phaseHasEv = true
	return nil
}

// pushEvent appends to the bounded history; callers hold d.mu.
func (d *dev) pushEvent(pol Policy, ev Event) {
	d.history = append(d.history, ev)
	if over := len(d.history) - pol.HistoryCap; over > 0 {
		d.history = append(d.history[:0], d.history[over:]...)
	}
}

func (m *Manager) bumpCheck(score float64) {
	m.mu.Lock()
	m.checks++
	if score > m.worstStaleness && score < LostStaleness {
		m.worstStaleness = score
		if m.tel != nil {
			m.tel.worstStaleness.Set(score)
		}
	}
	if m.tel != nil {
		m.tel.checks.Inc()
	}
	m.mu.Unlock()
}

func (m *Manager) bumpLost() {
	m.mu.Lock()
	m.checks++
	m.lostEvents++
	if m.tel != nil {
		m.tel.checks.Inc()
		m.tel.lost.Inc()
	}
	m.mu.Unlock()
}

func (m *Manager) bumpFailed() {
	m.mu.Lock()
	m.failedCals++
	if m.tel != nil {
		m.tel.failed.Inc()
	}
	m.mu.Unlock()
}

func (m *Manager) bumpCalibration(first, force bool) {
	m.mu.Lock()
	switch {
	case force:
		m.forced++
	case first:
		m.calibrations++
	default:
		m.recalibrations++
	}
	if m.tel != nil {
		switch {
		case force:
			m.tel.forced.Inc()
		case first:
			m.tel.calibrations.Inc()
		default:
			m.tel.recalibrations.Inc()
		}
	}
	m.mu.Unlock()
}

// forcePairs re-extracts the given pairs of one device immediately on the
// worker pool, bypassing staleness, hysteresis and budget admission (the
// probes still count against the window). It returns the last settled
// event. Forces serialise with Tick, so the tick phases' per-pair scratch
// accounting is never interleaved.
func (m *Manager) forcePairs(ctx context.Context, id string, pairIdx []int) (Event, error) {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	m.mu.Lock()
	d, ok := m.devices[id]
	now := m.now
	m.mu.Unlock()
	if !ok {
		return Event{}, fmt.Errorf("%w %q", ErrUnknownDevice, id)
	}
	var units []unit
	d.mu.Lock()
	for _, i := range pairIdx {
		if i < 0 || i >= len(d.pairs) {
			d.mu.Unlock()
			return Event{}, fmt.Errorf("fleet: device %q has no pair %d", id, i)
		}
		pc := d.pairs[i]
		pc.phaseProbes = 0
		pc.phaseSaved = 0
		pc.phaseHasEv = false
		pc.phaseModelDirty = false
		units = append(units, unit{d, pc})
	}
	d.mu.Unlock()
	err := m.pool.Map(ctx, len(units), func(jctx context.Context, i int) error {
		return m.calibratePair(jctx, units[i].d, units[i].pc, now, true)
	})
	var labels []string
	probes, saved := 0, 0
	persistErr := m.settlePhase(units, &labels, &probes, &saved)
	m.account(probes)
	m.accountSaved(saved)
	if err != nil {
		return Event{}, err
	}
	if persistErr != nil {
		return Event{}, persistErr
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.history) == 0 {
		return Event{}, errors.New("fleet: no event recorded")
	}
	if err := m.saveClock(); err != nil {
		return Event{}, err
	}
	return d.history[len(d.history)-1], nil
}

// ForceRecalibrate runs a full re-extraction of every pair of one device
// immediately, bypassing staleness, hysteresis and budget admission (the
// probes still count against the window). It returns the last resulting
// history event.
func (m *Manager) ForceRecalibrate(ctx context.Context, id string) (Event, error) {
	m.mu.Lock()
	d, ok := m.devices[id]
	m.mu.Unlock()
	if !ok {
		return Event{}, fmt.Errorf("%w %q", ErrUnknownDevice, id)
	}
	d.mu.Lock()
	idx := make([]int, len(d.pairs))
	for i := range idx {
		idx[i] = i
	}
	d.mu.Unlock()
	return m.forcePairs(ctx, id, idx)
}

// ForceRecalibratePair re-extracts a single pair of a chain device — the
// operator's partial-recalibration handle.
func (m *Manager) ForceRecalibratePair(ctx context.Context, id string, pair int) (Event, error) {
	return m.forcePairs(ctx, id, []int{pair})
}

// Summary is the outcome of a simulated run (cmd/vgxfleet's deliverable):
// the final Status plus run parameters. It is deterministic for fixed device
// seeds — byte-identical JSON across runs and worker counts.
type Summary struct {
	VirtualS float64 `json:"virtualS"`
	TickS    float64 `json:"tickS"`
	Ticks    int     `json:"ticks"`
	Status
}

// Summarize packages the fleet's current Status as the summary of a run of
// the given tick count and length.
func (m *Manager) Summarize(ticks int, dt float64) *Summary {
	return &Summary{
		VirtualS: float64(ticks) * dt,
		TickS:    dt,
		Ticks:    ticks,
		Status:   m.Status(),
	}
}

// NumTicks returns how many dt-second ticks cover total virtual seconds.
func NumTicks(total, dt float64) int {
	return int(math.Ceil(total / dt))
}

// Run advances the fleet through total virtual seconds in dt-second ticks
// and returns the summary. Devices registered before Run are initially
// calibrated by the first ticks (budget permitting).
func (m *Manager) Run(ctx context.Context, total, dt float64) (*Summary, error) {
	if total <= 0 || dt <= 0 {
		return nil, errors.New("fleet: run and tick durations must be positive")
	}
	ticks := NumTicks(total, dt)
	for i := 0; i < ticks; i++ {
		if _, err := m.Tick(ctx, dt); err != nil {
			return nil, err
		}
	}
	return m.Summarize(ticks, dt), nil
}
