// Package fleet closes the calibration loop at fleet scale. A Manager owns
// many simulated devices whose lever arms wander under drift, 1/f and jump
// noise (device.LeverDrift), tracks the freshness of each device's extracted
// virtual-gate matrix with cheap periodic virtualgate.Verify spot-checks on a
// shared virtual clock, scores staleness against the positions recorded at
// calibration time, and schedules full re-extractions on the service's worker
// pool (internal/sched) under a global probe budget — priority is
// staleness × device weight, with hysteresis (a healthy band plus a
// per-device cooldown) so healthy devices are never re-tuned.
//
// Everything the manager decides is deterministic for fixed device seeds:
// spot-checks and re-extractions fan out across workers, but each job touches
// only its own device's instrument, and all cross-device decisions (budget
// admission, priority order, accounting) happen serially in device-ID order
// after each phase. A simulated day therefore produces a byte-identical
// summary at any worker count.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/fastvg/fastvg/internal/core"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/sched"
	"github.com/fastvg/fastvg/internal/store"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// ErrUnknownDevice is returned for operations on an unregistered device ID.
var ErrUnknownDevice = errors.New("fleet: unknown device")

// LostStaleness is the finite sentinel staleness of a device whose
// transition lines could not be re-located (or that has never been
// calibrated): large enough to dominate any real score and any weight, and —
// unlike +Inf — JSON-encodable.
const LostStaleness = 1e6

// Policy tunes the fleet calibration loop; the zero value is a reasonable
// lab-day configuration.
type Policy struct {
	// CheckInterval is the virtual time (seconds) between freshness
	// spot-checks of a calibrated device; default 900 (15 min).
	CheckInterval float64 `json:"checkInterval,omitempty"`
	// CheckFracs are the along-line fractions of each spot-check (the
	// VerifyConfig.AlongFracs); default {0.35, 0.65}.
	CheckFracs []float64 `json:"checkFracs,omitempty"`
	// CheckScanFrac is the spot-check scan half-width as a window-span
	// fraction; default 0.08 — roughly half the extraction-grade scan, since
	// a spot-check only needs to see a line that has barely moved.
	CheckScanFrac float64 `json:"checkScanFrac,omitempty"`
	// MaxShiftFrac is the line-drift tolerance (window-span fraction) that
	// normalises staleness: a score of 1 means the lines have moved by
	// exactly the tolerance; default virtualgate.DefaultMaxShiftFrac.
	MaxShiftFrac float64 `json:"maxShiftFrac,omitempty"`
	// StaleThreshold is the staleness score at which a device is scheduled
	// for re-extraction; default 1.
	StaleThreshold float64 `json:"staleThreshold,omitempty"`
	// HealthyFrac bounds the hysteresis band: below
	// HealthyFrac·StaleThreshold a device is "healthy", between the two it
	// is "watch" (monitored, never re-tuned); default 0.5.
	HealthyFrac float64 `json:"healthyFrac,omitempty"`
	// Cooldown is the minimum virtual time (seconds) between recalibration
	// attempts of one device, the second hysteresis guard; default 1800.
	Cooldown float64 `json:"cooldown,omitempty"`
	// Budget caps the probes the whole fleet may spend per BudgetWindow on
	// monitoring plus recalibration; 0 means unlimited.
	Budget int `json:"budget,omitempty"`
	// BudgetWindow is the budget accounting period in virtual seconds;
	// default 86400 (one day).
	BudgetWindow float64 `json:"budgetWindow,omitempty"`
	// CheckReserve and RecalReserve are the probes reserved when admitting a
	// spot-check / re-extraction against the budget; defaults 80 and 1500.
	// Admission is by reservation, accounting by actual probes spent — with
	// reserves at or above the worst observed costs (a spot-check is
	// geometrically bounded by its scan widths, a 100×100 re-extraction
	// plus baseline check measures ≈ 1100 probes), a window can never
	// overspend its budget.
	CheckReserve int `json:"checkReserve,omitempty"`
	RecalReserve int `json:"recalReserve,omitempty"`
	// HistoryCap bounds each device's retained in-memory calibration
	// history ring (what History and the /v1/fleet history endpoint serve);
	// default 128 events. The bound only trims what is held in memory: with
	// a journal attached the full event log is persisted as audit records
	// (bounded by the store's much larger AuditCap) and is served by
	// JournalHistory.
	HistoryCap int `json:"historyCap,omitempty"`
}

func (p *Policy) fillDefaults() {
	if p.CheckInterval == 0 {
		p.CheckInterval = 900
	}
	if len(p.CheckFracs) == 0 {
		p.CheckFracs = []float64{0.35, 0.65}
	}
	if p.CheckScanFrac == 0 {
		p.CheckScanFrac = 0.08
	}
	if p.MaxShiftFrac == 0 {
		p.MaxShiftFrac = virtualgate.DefaultMaxShiftFrac
	}
	if p.StaleThreshold == 0 {
		p.StaleThreshold = 1
	}
	if p.HealthyFrac == 0 {
		p.HealthyFrac = 0.5
	}
	if p.Cooldown == 0 {
		p.Cooldown = 1800
	}
	if p.BudgetWindow == 0 {
		p.BudgetWindow = 86400
	}
	if p.CheckReserve == 0 {
		p.CheckReserve = 80
	}
	if p.RecalReserve == 0 {
		p.RecalReserve = 1500
	}
	if p.HistoryCap == 0 {
		p.HistoryCap = 128
	}
}

// DeviceConfig registers one device with the fleet.
type DeviceConfig struct {
	// ID names the device; empty picks dev-NNN in registration order.
	ID string `json:"id,omitempty"`
	// Weight scales the device's recalibration priority; default 1.
	Weight float64 `json:"weight,omitempty"`
	// Spec describes the simulated device, including its lever-arm drift.
	Spec device.DoubleDotSpec `json:"spec"`
}

// Event is one entry of a device's calibration history.
type Event struct {
	T    float64 `json:"t"`    // virtual fleet time, seconds
	Kind string  `json:"kind"` // calibrate | recalibrate | force | check | calibrate-failed
	// Staleness is the device's score after the event (LostStaleness when
	// the lines could not be located).
	Staleness float64 `json:"staleness"`
	Probes    int     `json:"probes"` // probes the event cost
	OK        bool    `json:"ok"`
	A12       float64 `json:"a12,omitempty"` // matrix after (re)calibration events
	A21       float64 `json:"a21,omitempty"`
	Err       string  `json:"err,omitempty"`
}

// Device states reported by DeviceView.State.
const (
	StateUncalibrated = "uncalibrated"
	StateHealthy      = "healthy"
	StateWatch        = "watch" // inside the hysteresis band: monitored, not re-tuned
	StateStale        = "stale"
	StateLost         = "lost" // spot-check could not re-locate the lines
)

// DeviceView is a serialisable device snapshot.
type DeviceView struct {
	ID             string  `json:"id"`
	Weight         float64 `json:"weight"`
	State          string  `json:"state"`
	Calibrated     bool    `json:"calibrated"`
	Staleness      float64 `json:"staleness"`
	MaxStaleness   float64 `json:"maxStaleness"` // worst finite score ever observed
	Checks         int     `json:"checks"`
	Calibrations   int     `json:"calibrations"` // successful extractions, initial included
	Forced         int     `json:"forced"`
	FailedCals     int     `json:"failedCals"`
	LostEvents     int     `json:"lostEvents"`
	Probes         int     `json:"probes"` // total probes spent on this device
	LastCalT       float64 `json:"lastCalT"`
	LastCheckT     float64 `json:"lastCheckT"`
	A12            float64 `json:"a12"`
	A21            float64 `json:"a21"`
	SteepSlope     float64 `json:"steepSlope"`
	ShallowSlope   float64 `json:"shallowSlope"`
	BudgetDeferred int     `json:"budgetDeferred"` // recals deferred for budget
}

// Status is a fleet-wide snapshot.
type Status struct {
	Now             float64      `json:"now"` // virtual fleet time, seconds
	DeviceCount     int          `json:"deviceCount"`
	Budget          int          `json:"budget"`
	BudgetWindowS   float64      `json:"budgetWindowS"`
	BudgetUsed      int          `json:"budgetUsed"` // in the current window
	Checks          int          `json:"checks"`
	Calibrations    int          `json:"calibrations"`
	Recalibrations  int          `json:"recalibrations"`
	Forced          int          `json:"forced"`
	FailedCals      int          `json:"failedCals"`
	LostEvents      int          `json:"lostEvents"`
	ProbesSpent     int          `json:"probesSpent"`
	MaxWindowProbes int          `json:"maxWindowProbes"`
	SkippedBudget   int          `json:"skippedBudget"` // admissions deferred for budget
	WorstStaleness  float64      `json:"worstStaleness"`
	Devices         []DeviceView `json:"devices"`
}

// TickReport summarises one Tick.
type TickReport struct {
	Now           float64  `json:"now"`
	Checked       []string `json:"checked,omitempty"`
	Recalibrated  []string `json:"recalibrated,omitempty"`
	CheckProbes   int      `json:"checkProbes"`
	RecalProbes   int      `json:"recalProbes"`
	SkippedBudget int      `json:"skippedBudget"`
}

// dev is the manager's per-device record. mu serialises instrument access
// and guards every mutable field; the manager's scheduling loops only read
// or write a device while holding it.
type dev struct {
	id     string
	weight float64
	spec   device.DoubleDotSpec

	mu   sync.Mutex
	inst *device.SimInstrument
	win  csd.Window

	hasCal         bool
	matrix         virtualgate.Mat2
	kneeV1, kneeV2 float64
	steep, shallow float64
	baseSteep      []float64 // verify positions recorded at calibration
	baseShallow    []float64

	score  float64 // current staleness (LostStaleness when lines lost / uncalibrated)
	scoreT float64 // virtual time the score was measured
	lost   bool

	lastCalT     float64
	lastAttemptT float64
	lastCheckT   float64
	attempts     int

	maxFinite      float64
	checks         int
	calibrations   int
	forced         int
	failedCals     int
	lostEvents     int
	probes         int
	budgetDeferred int
	history        []Event

	// per-phase scratch, written by the device's own pool job and read back
	// after the barrier
	phaseProbes int
	phaseErr    error
}

// Manager owns the fleet.
type Manager struct {
	pool *sched.Pool
	pol  Policy

	mu      sync.Mutex // guards the registry, fleet-wide accounting and journal
	journal *store.Store
	devices map[string]*dev
	order   []string // sorted device IDs
	nextID  int

	now         float64
	windowStart float64
	budgetUsed  int

	checks          int
	calibrations    int
	recalibrations  int
	forced          int
	failedCals      int
	lostEvents      int
	probesSpent     int
	maxWindowProbes int
	skippedBudget   int
	worstStaleness  float64

	tickMu sync.Mutex // serialises Tick/Run: there is one virtual clock
}

// New builds a fleet manager scheduling its measurement work on pool —
// normally the extraction service's own worker pool, so fleet recalibration
// traffic and interactive jobs share the same bounded slots.
func New(pool *sched.Pool, pol Policy) *Manager {
	pol.fillDefaults()
	return &Manager{
		pool:    pool,
		pol:     pol,
		devices: make(map[string]*dev),
	}
}

// Policy returns the manager's filled-in policy.
func (m *Manager) Policy() Policy { return m.pol }

// Now returns the virtual fleet time in seconds.
func (m *Manager) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// DeviceCount returns the number of registered devices without touching any
// device's state — cheap enough for liveness probes even while calibrations
// hold device locks.
func (m *Manager) DeviceCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.order)
}

// Register adds a device to the fleet. The device starts uncalibrated with
// sentinel staleness, so the next Tick schedules its initial extraction
// (budget permitting).
func (m *Manager) Register(cfg DeviceConfig) (DeviceView, error) {
	if cfg.Weight < 0 {
		return DeviceView{}, errors.New("fleet: negative device weight")
	}
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	inst, win, err := cfg.Spec.Build()
	if err != nil {
		return DeviceView{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := cfg.ID
	if id == "" {
		m.nextID++
		id = fmt.Sprintf("dev-%03d", m.nextID)
	}
	if _, dup := m.devices[id]; dup {
		return DeviceView{}, fmt.Errorf("fleet: device %q already registered", id)
	}
	d := &dev{
		id:     id,
		weight: cfg.Weight,
		spec:   cfg.Spec,
		inst:   inst,
		win:    win,
		score:  LostStaleness,
	}
	// Keep the instrument clock aligned with the fleet clock for devices
	// registered mid-run. Persist before inserting: a device the journal
	// cannot remember would silently lose its calibration lineage on the
	// next restart, so a failed journal write fails the registration.
	d.inst.Advance(time.Duration(m.now * float64(time.Second)))
	if m.journal != nil {
		data, err := json.Marshal(d.persistSnapshot())
		if err == nil {
			err = m.journal.Put(store.KindFleetDevice, d.id, data)
		}
		if err == nil {
			err = m.journal.Put(store.KindFleetClock, "", m.clockSnapshotLocked())
		}
		if err != nil {
			return DeviceView{}, err
		}
	}
	m.devices[id] = d
	m.order = append(m.order, id)
	sort.Strings(m.order)
	return d.view(m.pol), nil
}

// Device returns a snapshot of one device.
func (m *Manager) Device(id string) (DeviceView, bool) {
	m.mu.Lock()
	d, ok := m.devices[id]
	m.mu.Unlock()
	if !ok {
		return DeviceView{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.view(m.pol), true
}

// History returns a device's calibration history, oldest first.
func (m *Manager) History(id string) ([]Event, bool) {
	m.mu.Lock()
	d, ok := m.devices[id]
	m.mu.Unlock()
	if !ok {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Event(nil), d.history...), true
}

// Status returns a fleet-wide snapshot with devices in ID order.
func (m *Manager) Status() Status {
	m.mu.Lock()
	st := Status{
		Now:             m.now,
		DeviceCount:     len(m.order),
		Budget:          m.pol.Budget,
		BudgetWindowS:   m.pol.BudgetWindow,
		BudgetUsed:      m.budgetUsed,
		Checks:          m.checks,
		Calibrations:    m.calibrations,
		Recalibrations:  m.recalibrations,
		Forced:          m.forced,
		FailedCals:      m.failedCals,
		LostEvents:      m.lostEvents,
		ProbesSpent:     m.probesSpent,
		MaxWindowProbes: m.maxWindowProbes,
		SkippedBudget:   m.skippedBudget,
		WorstStaleness:  m.worstStaleness,
	}
	devs := m.snapshot()
	m.mu.Unlock()
	for _, d := range devs {
		d.mu.Lock()
		st.Devices = append(st.Devices, d.view(m.pol))
		d.mu.Unlock()
	}
	return st
}

// snapshot returns the devices in ID order; callers hold m.mu.
func (m *Manager) snapshot() []*dev {
	out := make([]*dev, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.devices[id])
	}
	return out
}

// view renders the device; callers hold d.mu.
func (d *dev) view(pol Policy) DeviceView {
	v := DeviceView{
		ID:             d.id,
		Weight:         d.weight,
		State:          d.state(pol),
		Calibrated:     d.hasCal,
		Staleness:      d.score,
		MaxStaleness:   d.maxFinite,
		Checks:         d.checks,
		Calibrations:   d.calibrations,
		Forced:         d.forced,
		FailedCals:     d.failedCals,
		LostEvents:     d.lostEvents,
		Probes:         d.probes,
		LastCalT:       d.lastCalT,
		LastCheckT:     d.lastCheckT,
		BudgetDeferred: d.budgetDeferred,
	}
	if d.hasCal {
		v.A12, v.A21 = d.matrix.A12(), d.matrix.A21()
		v.SteepSlope, v.ShallowSlope = d.steep, d.shallow
	}
	return v
}

// state classifies the device against the hysteresis band; callers hold d.mu.
func (d *dev) state(pol Policy) string {
	switch {
	case !d.hasCal:
		return StateUncalibrated
	case d.lost:
		return StateLost
	case d.score >= pol.StaleThreshold:
		return StateStale
	case d.score >= pol.HealthyFrac*pol.StaleThreshold:
		return StateWatch
	default:
		return StateHealthy
	}
}

// checkConfig is the spot-check VerifyConfig.
func (m *Manager) checkConfig() virtualgate.VerifyConfig {
	return virtualgate.VerifyConfig{
		AlongFracs:   m.pol.CheckFracs,
		ScanFrac:     m.pol.CheckScanFrac,
		MaxShiftFrac: m.pol.MaxShiftFrac,
	}
}

// Tick advances the virtual fleet clock by dt seconds and runs one
// monitoring round: freshness spot-checks for calibrated devices whose check
// interval elapsed, then budget-admitted re-extractions for stale devices in
// priority order. Ticks are serialised; concurrent Status/Register calls
// interleave safely.
func (m *Manager) Tick(ctx context.Context, dt float64) (TickReport, error) {
	if dt <= 0 {
		return TickReport{}, errors.New("fleet: tick duration must be positive")
	}
	m.tickMu.Lock()
	defer m.tickMu.Unlock()

	m.mu.Lock()
	m.now += dt
	// Roll the budget window. The tick landing exactly on the boundary still
	// belongs to the closing window (it covers the virtual time up to it).
	for m.pol.Budget > 0 && m.now-m.windowStart > m.pol.BudgetWindow {
		m.windowStart += m.pol.BudgetWindow
		if m.budgetUsed > m.maxWindowProbes {
			m.maxWindowProbes = m.budgetUsed
		}
		m.budgetUsed = 0
	}
	now := m.now
	devs := m.snapshot()
	m.mu.Unlock()

	rep := TickReport{Now: now}

	// Budget admission is by reservation: each admitted operation holds its
	// reserve until the phase's actual probes are accounted, so one phase
	// can never admit more work than the window's remaining headroom.
	reserved := 0
	admit := func(reserve int) bool {
		if m.pol.Budget <= 0 {
			return true
		}
		m.mu.Lock()
		ok := m.budgetUsed+reserved+reserve <= m.pol.Budget
		m.mu.Unlock()
		if ok {
			reserved += reserve
		}
		return ok
	}

	// Idle time passes on every device's instrument clock, drifting its
	// lever arms and opening a fresh measurement epoch.
	for _, d := range devs {
		d.mu.Lock()
		d.inst.Advance(time.Duration(dt * float64(time.Second)))
		d.mu.Unlock()
	}

	// Phase 1: spot-checks, admitted in ID order under the budget.
	var due []*dev
	for _, d := range devs {
		d.mu.Lock()
		if d.hasCal && now-d.lastCheckT >= m.pol.CheckInterval {
			if admit(m.pol.CheckReserve) {
				d.phaseProbes = 0 // jobs that never run must account as zero
				due = append(due, d)
			} else {
				rep.SkippedBudget++
			}
		}
		d.mu.Unlock()
	}
	checkErr := m.pool.Map(ctx, len(due), func(jctx context.Context, i int) error {
		return m.checkDevice(jctx, due[i], now)
	})
	// Account even when the phase was interrupted: Map waits for every job,
	// so probes recorded in the scratch fields were really spent.
	for _, d := range due {
		d.mu.Lock()
		rep.Checked = append(rep.Checked, d.id)
		rep.CheckProbes += d.phaseProbes
		d.mu.Unlock()
	}
	m.account(rep.CheckProbes)
	reserved = 0 // check reservations became actuals above
	if checkErr != nil {
		return rep, checkErr
	}

	// Phase 2: re-extraction of stale devices, highest priority first.
	type cand struct {
		d        *dev
		priority float64
	}
	var cands []cand
	for _, d := range devs {
		d.mu.Lock()
		if m.eligible(d, now) {
			cands = append(cands, cand{d, d.score * d.weight})
		}
		d.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].priority != cands[j].priority {
			return cands[i].priority > cands[j].priority
		}
		return cands[i].d.id < cands[j].d.id
	})
	var admitted []*dev
	for _, c := range cands {
		if admit(m.pol.RecalReserve) {
			c.d.mu.Lock()
			c.d.phaseProbes = 0
			c.d.mu.Unlock()
			admitted = append(admitted, c.d)
		} else {
			rep.SkippedBudget++
			c.d.mu.Lock()
			c.d.budgetDeferred++
			c.d.mu.Unlock()
		}
	}
	recalErr := m.pool.Map(ctx, len(admitted), func(jctx context.Context, i int) error {
		return m.calibrateDevice(jctx, admitted[i], now, false)
	})
	// Account in ID order so fleet totals are scheduling-independent, and
	// even when interrupted — completed jobs' probes were really spent.
	sort.Slice(admitted, func(i, j int) bool { return admitted[i].id < admitted[j].id })
	for _, d := range admitted {
		d.mu.Lock()
		rep.Recalibrated = append(rep.Recalibrated, d.id)
		rep.RecalProbes += d.phaseProbes
		d.mu.Unlock()
	}
	m.account(rep.RecalProbes)

	m.mu.Lock()
	m.skippedBudget += rep.SkippedBudget
	m.mu.Unlock()
	if recalErr != nil {
		return rep, recalErr
	}
	// Journal the advanced clock and window accounting so a restart resumes
	// the budget window (and tick cadence) where this tick left it.
	return rep, m.saveClock()
}

// account charges actually-spent probes to the window and fleet totals.
func (m *Manager) account(probes int) {
	if probes == 0 {
		return
	}
	m.mu.Lock()
	m.budgetUsed += probes
	if m.budgetUsed > m.maxWindowProbes {
		m.maxWindowProbes = m.budgetUsed
	}
	m.probesSpent += probes
	m.mu.Unlock()
}

// eligible decides whether a device is a recalibration candidate; callers
// hold d.mu. Hysteresis: a calibrated device must (a) have crossed the
// staleness threshold, (b) on evidence measured after its last calibration —
// never on a stale score — and (c) be out of its cooldown.
func (m *Manager) eligible(d *dev, now float64) bool {
	if !d.hasCal {
		return d.attempts == 0 || now-d.lastAttemptT >= m.pol.Cooldown
	}
	if d.score < m.pol.StaleThreshold {
		return false
	}
	if d.scoreT <= d.lastCalT {
		return false
	}
	return now-d.lastAttemptT >= m.pol.Cooldown
}

// checkDevice runs one freshness spot-check.
func (m *Manager) checkDevice(ctx context.Context, d *dev, now float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	before := d.inst.Stats().UniqueProbes
	vr, err := virtualgate.Verify(ctx, d.inst, d.win, d.matrix, d.kneeV1, d.kneeV2, m.checkConfig())
	probes := d.inst.Stats().UniqueProbes - before
	d.phaseProbes = probes
	d.probes += probes
	d.checks++
	d.lastCheckT = now
	if err != nil {
		if !errors.Is(err, virtualgate.ErrVerify) {
			return err // cancellation or instrument fault: abort the tick
		}
		// Lines lost: the matrix (or the knee it is anchored to) is so stale
		// the short scans miss the transitions entirely.
		d.lost = true
		d.score = LostStaleness
		d.scoreT = now
		d.lostEvents++
		ev := Event{T: now, Kind: "check", Staleness: d.score, Probes: probes, Err: err.Error()}
		d.pushEvent(m.pol, ev)
		m.bumpLost()
		return m.persistDeviceEvent(d, ev)
	}
	d.lost = false
	d.score = m.scoreResult(d, vr)
	d.scoreT = now
	if d.score > d.maxFinite {
		d.maxFinite = d.score
	}
	ev := Event{T: now, Kind: "check", Staleness: d.score, Probes: probes, OK: d.score < m.pol.StaleThreshold}
	d.pushEvent(m.pol, ev)
	m.bumpCheck(d.score)
	return m.persistDeviceEvent(d, ev)
}

// persistDeviceEvent journals a device's updated state and the event that
// produced it; callers hold d.mu. A nil journal is a no-op; a journal error
// is an infrastructure fault that aborts the tick, like an instrument
// fault.
func (m *Manager) persistDeviceEvent(d *dev, ev Event) error {
	if m.journalStore() == nil {
		return nil
	}
	if err := m.saveDevice(d); err != nil {
		return err
	}
	return m.saveEvent(d.id, ev)
}

// scoreResult turns a verify outcome into a staleness score; callers hold
// d.mu. Two signals, both normalised so 1.0 sits at the drift tolerance:
// the spread of each line across the along-positions (matrix error — a wrong
// matrix makes the line appear to move under virtual stepping) and the shift
// of each re-located position against the baseline recorded at calibration
// (the line itself moved: lever-arm drift or a charge jump).
func (m *Manager) scoreResult(d *dev, vr *virtualgate.VerifyResult) float64 {
	tol1 := m.pol.MaxShiftFrac * (d.win.V1Max - d.win.V1Min)
	tol2 := m.pol.MaxShiftFrac * (d.win.V2Max - d.win.V2Min)
	score := math.Max(vr.SteepShift/tol1, vr.ShallowShift/tol2)
	for i, p := range vr.SteepPositions {
		if i < len(d.baseSteep) {
			score = math.Max(score, math.Abs(p-d.baseSteep[i])/tol1)
		}
	}
	for i, p := range vr.ShallowPositions {
		if i < len(d.baseShallow) {
			score = math.Max(score, math.Abs(p-d.baseShallow[i])/tol2)
		}
	}
	return score
}

// calibrateDevice runs a full extraction (and a baseline spot-check) on one
// device.
func (m *Manager) calibrateDevice(ctx context.Context, d *dev, now float64, force bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	first := !d.hasCal
	before := d.inst.Stats().UniqueProbes
	src := csd.PixelSource{Src: d.inst, Win: d.win}
	cr, err := core.Extract(src, d.win, core.Config{})
	if err != nil {
		probes := d.inst.Stats().UniqueProbes - before
		d.phaseProbes = probes
		d.probes += probes
		d.attempts++
		d.lastAttemptT = now
		d.failedCals++
		fev := Event{T: now, Kind: "calibrate-failed", Staleness: d.score, Probes: probes, Err: err.Error()}
		d.pushEvent(m.pol, fev)
		m.bumpFailed()
		return m.persistDeviceEvent(d, fev)
	}
	d.matrix = cr.Matrix
	d.steep, d.shallow = cr.SteepSlope, cr.ShallowSlope
	d.kneeV1, d.kneeV2 = cr.TriplePointVoltage(d.win)
	d.hasCal = true
	d.lost = false
	d.attempts++
	d.calibrations++
	d.lastCalT = now
	d.lastAttemptT = now

	// Record the freshness baseline: the line positions a healthy device
	// reproduces, measured with the same scan geometry the spot-checks use.
	kind := "recalibrate"
	if first {
		kind = "calibrate"
	}
	if force {
		kind = "force"
		d.forced++
	}
	ev := Event{T: now, Kind: kind, A12: d.matrix.A12(), A21: d.matrix.A21()}
	vr, verr := virtualgate.Verify(ctx, d.inst, d.win, d.matrix, d.kneeV1, d.kneeV2, m.checkConfig())
	if verr != nil {
		if !errors.Is(verr, virtualgate.ErrVerify) {
			return verr
		}
		// Extraction succeeded but the check scans cannot see the lines —
		// keep the sentinel so the device stays first in line.
		d.baseSteep, d.baseShallow = nil, nil
		d.lost = true
		d.score = LostStaleness
		d.lostEvents++
		ev.Err = verr.Error()
	} else {
		d.baseSteep = append([]float64(nil), vr.SteepPositions...)
		d.baseShallow = append([]float64(nil), vr.ShallowPositions...)
		// Against the just-recorded baseline the shift terms are zero, so
		// this is exactly the spread (matrix-error) score.
		d.score = m.scoreResult(d, vr)
		if d.score > d.maxFinite {
			d.maxFinite = d.score
		}
		ev.OK = d.score < m.pol.StaleThreshold
	}
	d.scoreT = now
	// The baseline verify just measured the lines: the next periodic
	// spot-check is due a full interval from now, not from the last one.
	d.lastCheckT = now
	probes := d.inst.Stats().UniqueProbes - before
	d.phaseProbes = probes
	d.probes += probes
	ev.Staleness = d.score
	ev.Probes = probes
	d.pushEvent(m.pol, ev)
	m.bumpCalibration(first, force)
	return m.persistDeviceEvent(d, ev)
}

// pushEvent appends to the bounded history; callers hold d.mu.
func (d *dev) pushEvent(pol Policy, ev Event) {
	d.history = append(d.history, ev)
	if over := len(d.history) - pol.HistoryCap; over > 0 {
		d.history = append(d.history[:0], d.history[over:]...)
	}
}

func (m *Manager) bumpCheck(score float64) {
	m.mu.Lock()
	m.checks++
	if score > m.worstStaleness && score < LostStaleness {
		m.worstStaleness = score
	}
	m.mu.Unlock()
}

func (m *Manager) bumpLost() {
	m.mu.Lock()
	m.checks++
	m.lostEvents++
	m.mu.Unlock()
}

func (m *Manager) bumpFailed() {
	m.mu.Lock()
	m.failedCals++
	m.mu.Unlock()
}

func (m *Manager) bumpCalibration(first, force bool) {
	m.mu.Lock()
	switch {
	case force:
		m.forced++
	case first:
		m.calibrations++
	default:
		m.recalibrations++
	}
	m.mu.Unlock()
}

// ForceRecalibrate runs a full re-extraction of one device immediately on
// the worker pool, bypassing staleness, hysteresis and budget admission (the
// probes still count against the window). It returns the resulting history
// event. Forces serialise with Tick, so the tick phases' per-device scratch
// accounting is never interleaved.
func (m *Manager) ForceRecalibrate(ctx context.Context, id string) (Event, error) {
	m.tickMu.Lock()
	defer m.tickMu.Unlock()
	m.mu.Lock()
	d, ok := m.devices[id]
	now := m.now
	m.mu.Unlock()
	if !ok {
		return Event{}, fmt.Errorf("%w %q", ErrUnknownDevice, id)
	}
	d.mu.Lock()
	d.phaseProbes = 0
	d.mu.Unlock()
	_, err := m.pool.Submit(ctx, func(jctx context.Context) (any, error) {
		return nil, m.calibrateDevice(jctx, d, now, true)
	}).Wait()
	if err != nil {
		return Event{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	m.account(d.phaseProbes)
	if len(d.history) == 0 {
		return Event{}, errors.New("fleet: no event recorded")
	}
	if err := m.saveClock(); err != nil {
		return Event{}, err
	}
	return d.history[len(d.history)-1], nil
}

// Summary is the outcome of a simulated run (cmd/vgxfleet's deliverable):
// the final Status plus run parameters. It is deterministic for fixed device
// seeds — byte-identical JSON across runs and worker counts.
type Summary struct {
	VirtualS float64 `json:"virtualS"`
	TickS    float64 `json:"tickS"`
	Ticks    int     `json:"ticks"`
	Status
}

// Summarize packages the fleet's current Status as the summary of a run of
// the given tick count and length.
func (m *Manager) Summarize(ticks int, dt float64) *Summary {
	return &Summary{
		VirtualS: float64(ticks) * dt,
		TickS:    dt,
		Ticks:    ticks,
		Status:   m.Status(),
	}
}

// NumTicks returns how many dt-second ticks cover total virtual seconds.
func NumTicks(total, dt float64) int {
	return int(math.Ceil(total / dt))
}

// Run advances the fleet through total virtual seconds in dt-second ticks
// and returns the summary. Devices registered before Run are initially
// calibrated by the first ticks (budget permitting).
func (m *Manager) Run(ctx context.Context, total, dt float64) (*Summary, error) {
	if total <= 0 || dt <= 0 {
		return nil, errors.New("fleet: run and tick durations must be positive")
	}
	ticks := NumTicks(total, dt)
	for i := 0; i < ticks; i++ {
		if _, err := m.Tick(ctx, dt); err != nil {
			return nil, err
		}
	}
	return m.Summarize(ticks, dt), nil
}
