package fleet

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/fastvg/fastvg/internal/sched"
)

// TestInfoGainGuidedRecalibration: with the policy on, scheduled
// recalibrations run the active scheduler warm-started from the pair's last
// geometry, the history marks them, and they cost a fraction of a raster
// re-extraction.
func TestInfoGainGuidedRecalibration(t *testing.T) {
	m := New(sched.New(2), Policy{CheckInterval: 1800, InfoGain: true})
	if _, err := m.Register(wanderingSpec(t, 2)); err != nil {
		t.Fatal(err)
	}
	runTicks(t, m, 72, 300)

	evs, ok := m.History("wander")
	if !ok {
		t.Fatal("no wandering history")
	}
	guided := 0
	for _, ev := range evs {
		switch ev.Kind {
		case "calibrate", "force":
			// First calibrations and forces are always full rasters.
			if ev.InfoGain {
				t.Errorf("%s event marked as guided: %+v", ev.Kind, ev)
			}
		case "recalibrate":
			if ev.InfoGain {
				guided++
			}
		}
	}
	if guided == 0 {
		t.Fatalf("no guided recalibrations in six virtual hours; events: %+v", evs)
	}

	d, _ := m.Device("wander")
	if d.Calibrations < 2 {
		t.Fatalf("calibrations = %d, want initial + guided recals", d.Calibrations)
	}
	// A full 100x100 raster calibration costs ~1000 probes; guided recals
	// keep the per-device average well below two rasters' worth even after
	// several recalibrations.
	if d.Probes > 1500+1100*(d.Calibrations-1) {
		t.Errorf("probes = %d over %d calibrations: guided recals did not save", d.Probes, d.Calibrations)
	}
}

// TestInfoGainDeterministicAcrossWorkers extends the fleet determinism
// contract to guided recalibration: byte-identical summaries at any worker
// count with the policy on.
func TestInfoGainDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []byte {
		m := New(sched.New(workers), Policy{CheckInterval: 1800, InfoGain: true})
		cfgs, err := DefaultFleet(6, driftSeed)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range cfgs {
			if _, err := m.Register(cfg); err != nil {
				t.Fatal(err)
			}
		}
		sum, err := m.Run(context.Background(), 4*3600, 600)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(sum)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	one := run(1)
	eight := run(8)
	if string(one) != string(eight) {
		t.Errorf("summary differs between 1 and 8 workers:\n%s\n%s", one, eight)
	}
}
