// Package postproc implements the erroneous-point filter of the paper's
// Algorithm 3 (lines 1–4): from the union of row- and column-sweep points,
// keep (a) the lowest point in each pixel column and (b) the leftmost point
// in each pixel row, then join the two sets.
//
// The geometry behind it: erroneous row-sweep points appear above the true
// shallow line (where the per-row segments grow long), so the accurate
// column-sweep points below them win the per-column minimum; symmetrically
// for erroneous column-sweep points to the right of the steep line.
package postproc

import (
	"sort"

	"github.com/fastvg/fastvg/internal/grid"
)

// Filter applies the two keep-rules and joins the results, deduplicated and
// sorted by (x, y). The input is not modified.
func Filter(points []grid.Point) []grid.Point {
	if len(points) == 0 {
		return nil
	}
	lowestPerX := make(map[int]int) // x → min y
	leftmostPerY := make(map[int]int)
	for _, p := range points {
		if y, ok := lowestPerX[p.X]; !ok || p.Y < y {
			lowestPerX[p.X] = p.Y
		}
		if x, ok := leftmostPerY[p.Y]; !ok || p.X < x {
			leftmostPerY[p.Y] = p.X
		}
	}
	keep := make(map[grid.Point]bool)
	for _, p := range points {
		if lowestPerX[p.X] == p.Y || leftmostPerY[p.Y] == p.X {
			keep[p] = true
		}
	}
	out := make([]grid.Point, 0, len(keep))
	for p := range keep {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// FilterSets returns the two intermediate sets of Algorithm 3 (before the
// join), for the paper's Figure 6 post-processing illustration.
func FilterSets(points []grid.Point) (lowest, leftmost []grid.Point) {
	lowestPerX := make(map[int]int)
	leftmostPerY := make(map[int]int)
	for _, p := range points {
		if y, ok := lowestPerX[p.X]; !ok || p.Y < y {
			lowestPerX[p.X] = p.Y
		}
		if x, ok := leftmostPerY[p.Y]; !ok || p.X < x {
			leftmostPerY[p.Y] = p.X
		}
	}
	for x, y := range lowestPerX {
		lowest = append(lowest, grid.Point{X: x, Y: y})
	}
	for y, x := range leftmostPerY {
		leftmost = append(leftmost, grid.Point{X: x, Y: y})
	}
	sort.Slice(lowest, func(i, j int) bool { return lowest[i].X < lowest[j].X })
	sort.Slice(leftmost, func(i, j int) bool { return leftmost[i].Y < leftmost[j].Y })
	return lowest, leftmost
}
