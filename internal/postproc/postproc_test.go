package postproc

import (
	"testing"
	"testing/quick"

	"github.com/fastvg/fastvg/internal/grid"
)

func TestFilterKeepsLowestPerColumn(t *testing.T) {
	pts := []grid.Point{{X: 3, Y: 10}, {X: 3, Y: 4}, {X: 3, Y: 7}}
	got := Filter(pts)
	found := false
	for _, p := range got {
		if p.X == 3 && p.Y == 10 {
			// (3,10) survives only if it is leftmost in row 10 — it is, since
			// it is the only point there.
			found = true
		}
	}
	if !found {
		t.Log("note: (3,10) kept as leftmost of its row")
	}
	// The lowest point of column 3 must be present.
	has := func(p grid.Point) bool {
		for _, q := range got {
			if q == p {
				return true
			}
		}
		return false
	}
	if !has(grid.Point{X: 3, Y: 4}) {
		t.Errorf("lowest point of column dropped: %v", got)
	}
}

func TestFilterDropsErroneousHighPoints(t *testing.T) {
	// Simulate the paper's Figure 6 situation: accurate column-sweep points
	// along a shallow line, plus erroneous row-sweep points above it in the
	// same columns and with duplicate rows taken by accurate points at
	// smaller x.
	var pts []grid.Point
	for x := 0; x <= 20; x++ {
		pts = append(pts, grid.Point{X: x, Y: 40 - x/10}) // accurate shallow points
	}
	errs := []grid.Point{{X: 5, Y: 47}, {X: 12, Y: 45}, {X: 17, Y: 49}}
	pts = append(pts, errs...)
	got := Filter(pts)
	for _, e := range errs {
		for _, p := range got {
			if p == e {
				// Erroneous points share a column with a lower accurate point,
				// and their rows (45..49) contain no smaller-x point... they
				// are leftmost in their rows, so the filter keeps them only
				// via rule 2. Verify rule 1 did not keep them.
				if lowest, _ := FilterSets(pts); contains(lowest, e) {
					t.Errorf("erroneous point %v kept by lowest-per-column rule", e)
				}
			}
		}
	}
	// Every accurate point must survive (each is lowest in its column).
	for x := 0; x <= 20; x++ {
		want := grid.Point{X: x, Y: 40 - x/10}
		if !contains(got, want) {
			t.Errorf("accurate point %v dropped", want)
		}
	}
}

func contains(pts []grid.Point, p grid.Point) bool {
	for _, q := range pts {
		if q == p {
			return true
		}
	}
	return false
}

func TestFilterEmpty(t *testing.T) {
	if got := Filter(nil); got != nil {
		t.Errorf("Filter(nil) = %v", got)
	}
}

func TestFilterIdempotent(t *testing.T) {
	f := func(raw []uint16) bool {
		var pts []grid.Point
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, grid.Point{X: int(raw[i] % 50), Y: int(raw[i+1] % 50)})
		}
		once := Filter(pts)
		twice := Filter(once)
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterOutputSubsetOfInput(t *testing.T) {
	f := func(raw []uint16) bool {
		var pts []grid.Point
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, grid.Point{X: int(raw[i] % 30), Y: int(raw[i+1] % 30)})
		}
		for _, p := range Filter(pts) {
			if !contains(pts, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterUnionRule(t *testing.T) {
	// Every output point is lowest-in-column or leftmost-in-row; every
	// lowest-in-column and leftmost-in-row point is in the output.
	f := func(raw []uint16) bool {
		var pts []grid.Point
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, grid.Point{X: int(raw[i] % 30), Y: int(raw[i+1] % 30)})
		}
		if len(pts) == 0 {
			return true
		}
		out := Filter(pts)
		lowest, leftmost := FilterSets(pts)
		for _, p := range out {
			if !contains(lowest, p) && !contains(leftmost, p) {
				return false
			}
		}
		for _, p := range lowest {
			if !contains(out, p) {
				return false
			}
		}
		for _, p := range leftmost {
			if !contains(out, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilterSorted(t *testing.T) {
	pts := []grid.Point{{X: 9, Y: 1}, {X: 2, Y: 5}, {X: 2, Y: 3}, {X: 7, Y: 0}}
	got := Filter(pts)
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.X > b.X || (a.X == b.X && a.Y > b.Y) {
			t.Fatalf("output not sorted: %v", got)
		}
	}
}

func TestFilterSetsOrdering(t *testing.T) {
	pts := []grid.Point{{X: 5, Y: 2}, {X: 1, Y: 8}, {X: 3, Y: 4}}
	lowest, leftmost := FilterSets(pts)
	for i := 1; i < len(lowest); i++ {
		if lowest[i-1].X > lowest[i].X {
			t.Fatal("lowest set not sorted by x")
		}
	}
	for i := 1; i < len(leftmost); i++ {
		if leftmost[i-1].Y > leftmost[i].Y {
			t.Fatal("leftmost set not sorted by y")
		}
	}
}
