package imaging

import (
	"math"
	"sort"

	"github.com/fastvg/fastvg/internal/grid"
)

// HoughLine is a straight line in normal form ρ = x·cosθ + y·sinθ with the
// accumulator votes it received. θ is in radians, [0, π).
type HoughLine struct {
	Rho   float64
	Theta float64
	Votes int
}

// Slope returns dy/dx; ±Inf for vertical lines.
func (l HoughLine) Slope() float64 {
	s := math.Sin(l.Theta)
	if math.Abs(s) < 1e-12 {
		return math.Inf(1)
	}
	return -math.Cos(l.Theta) / s
}

// YAt returns y on the line at the given x (NaN for vertical lines).
func (l HoughLine) YAt(x float64) float64 {
	s := math.Sin(l.Theta)
	if math.Abs(s) < 1e-12 {
		return math.NaN()
	}
	return (l.Rho - x*math.Cos(l.Theta)) / s
}

// XAt returns x on the line at the given y.
func (l HoughLine) XAt(y float64) float64 {
	c := math.Cos(l.Theta)
	if math.Abs(c) < 1e-12 {
		return math.NaN()
	}
	return (l.Rho - y*math.Sin(l.Theta)) / c
}

// Dist returns the perpendicular distance from (x, y) to the line.
func (l HoughLine) Dist(x, y float64) float64 {
	return math.Abs(x*math.Cos(l.Theta) + y*math.Sin(l.Theta) - l.Rho)
}

// HoughConfig parameterises the transform.
type HoughConfig struct {
	ThetaStep float64 // radians per θ bin (default 1°)
	RhoStep   float64 // pixels per ρ bin (default 1)
}

// DefaultHoughConfig mirrors the usual OpenCV HoughLines resolution.
func DefaultHoughConfig() HoughConfig {
	return HoughConfig{ThetaStep: math.Pi / 180, RhoStep: 1}
}

// Accumulator is a filled Hough vote table.
type Accumulator struct {
	cfg    HoughConfig
	nTheta int
	nRho   int
	rhoMax float64
	votes  []int32
}

// Hough accumulates votes for every set pixel of a binary edge grid.
func Hough(edges *grid.Grid, cfg HoughConfig) *Accumulator {
	if cfg.ThetaStep <= 0 {
		cfg.ThetaStep = math.Pi / 180
	}
	if cfg.RhoStep <= 0 {
		cfg.RhoStep = 1
	}
	a := &Accumulator{cfg: cfg}
	a.nTheta = int(math.Ceil(math.Pi / cfg.ThetaStep))
	a.rhoMax = math.Hypot(float64(edges.W), float64(edges.H))
	a.nRho = 2*int(math.Ceil(a.rhoMax/cfg.RhoStep)) + 1
	a.votes = make([]int32, a.nTheta*a.nRho)

	sins := make([]float64, a.nTheta)
	coss := make([]float64, a.nTheta)
	for t := 0; t < a.nTheta; t++ {
		th := float64(t) * cfg.ThetaStep
		sins[t] = math.Sin(th)
		coss[t] = math.Cos(th)
	}
	half := a.nRho / 2
	for y := 0; y < edges.H; y++ {
		for x := 0; x < edges.W; x++ {
			if edges.At(x, y) == 0 {
				continue
			}
			fx, fy := float64(x), float64(y)
			for t := 0; t < a.nTheta; t++ {
				rho := fx*coss[t] + fy*sins[t]
				r := int(math.Round(rho/cfg.RhoStep)) + half
				if r >= 0 && r < a.nRho {
					a.votes[t*a.nRho+r]++
				}
			}
		}
	}
	return a
}

// VotesAt returns the vote count of bin (thetaIdx, rhoIdx).
func (a *Accumulator) VotesAt(thetaIdx, rhoIdx int) int {
	return int(a.votes[thetaIdx*a.nRho+rhoIdx])
}

// line reconstructs the HoughLine of a bin.
func (a *Accumulator) line(t, r int) HoughLine {
	return HoughLine{
		Theta: float64(t) * a.cfg.ThetaStep,
		Rho:   float64(r-a.nRho/2) * a.cfg.RhoStep,
		Votes: a.VotesAt(t, r),
	}
}

// Peaks extracts up to maxPeaks lines with at least minVotes votes, greedily
// strongest-first, suppressing a (±suppressTheta bins, ±suppressRho bins)
// neighbourhood around each accepted peak.
func (a *Accumulator) Peaks(maxPeaks, minVotes, suppressTheta, suppressRho int) []HoughLine {
	type bin struct{ t, r int }
	var cands []bin
	for t := 0; t < a.nTheta; t++ {
		for r := 0; r < a.nRho; r++ {
			if a.VotesAt(t, r) >= minVotes {
				cands = append(cands, bin{t, r})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		vi := a.VotesAt(cands[i].t, cands[i].r)
		vj := a.VotesAt(cands[j].t, cands[j].r)
		if vi != vj {
			return vi > vj
		}
		if cands[i].t != cands[j].t {
			return cands[i].t < cands[j].t
		}
		return cands[i].r < cands[j].r
	})
	suppressed := make(map[bin]bool)
	var out []HoughLine
	for _, c := range cands {
		if len(out) >= maxPeaks {
			break
		}
		if suppressed[c] {
			continue
		}
		out = append(out, a.line(c.t, c.r))
		for dt := -suppressTheta; dt <= suppressTheta; dt++ {
			t := c.t + dt
			// θ wraps modulo π with ρ negating; suppress without wrap for
			// simplicity (peaks near θ=0/π are rare for negative slopes).
			if t < 0 || t >= a.nTheta {
				continue
			}
			for dr := -suppressRho; dr <= suppressRho; dr++ {
				r := c.r + dr
				if r >= 0 && r < a.nRho {
					suppressed[bin{t, r}] = true
				}
			}
		}
	}
	return out
}
