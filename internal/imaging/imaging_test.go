package imaging

import (
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/grid"
)

// stepGrid returns a grid that is 0 left of column c and 1 from column c on.
func stepGrid(w, h, c int) *grid.Grid {
	g := grid.New(w, h)
	g.Apply(func(x, y int, _ float64) float64 {
		if x >= c {
			return 1
		}
		return 0
	})
	return g
}

// lineGrid returns a grid with value 1 below the line y = y0 + m·x and 0
// above, producing an edge along the line.
func lineGrid(w, h int, y0, m float64) *grid.Grid {
	g := grid.New(w, h)
	g.Apply(func(x, y int, _ float64) float64 {
		if float64(y) < y0+m*float64(x) {
			return 1
		}
		return 0
	})
	return g
}

func TestGaussianKernelNormalised(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2.5} {
		k := GaussianKernel1D(sigma)
		var sum float64
		for _, v := range k {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("sigma %v: kernel sum = %v", sigma, sum)
		}
		if len(k)%2 == 0 {
			t.Errorf("sigma %v: even kernel length %d", sigma, len(k))
		}
	}
	if k := GaussianKernel1D(0); len(k) != 1 || k[0] != 1 {
		t.Errorf("zero-sigma kernel = %v, want identity", k)
	}
}

func TestGaussianBlurPreservesMeanAndSmooths(t *testing.T) {
	g := grid.New(32, 32)
	g.Set(16, 16, 100)
	b := GaussianBlur(g, 1.5)
	if math.Abs(b.Mean()-g.Mean()) > 1e-9 {
		t.Errorf("blur changed mean: %v -> %v", g.Mean(), b.Mean())
	}
	if b.At(16, 16) >= 100 {
		t.Error("blur did not spread the impulse")
	}
	if b.At(16, 16) <= b.At(10, 10) {
		t.Error("blur centre not above background")
	}
}

func TestConvolveIdentity(t *testing.T) {
	g := stepGrid(8, 8, 4)
	id := NewKernel(3, 3, []float64{0, 0, 0, 0, 1, 0, 0, 0, 0})
	if !Convolve(g, id).Equal(g) {
		t.Error("identity kernel changed the grid")
	}
}

func TestKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("even kernel accepted")
		}
	}()
	NewKernel(2, 2, make([]float64, 4))
}

func TestSobelOnVerticalEdge(t *testing.T) {
	g := stepGrid(16, 16, 8)
	gx, gy := Sobel(g)
	if gx.At(8, 8) <= 0 {
		t.Errorf("gx at rising vertical edge = %v, want > 0", gx.At(8, 8))
	}
	if math.Abs(gy.At(8, 8)) > 1e-9 {
		t.Errorf("gy on vertical edge = %v, want 0", gy.At(8, 8))
	}
}

func TestSobelOnHorizontalEdge(t *testing.T) {
	g := grid.New(16, 16)
	g.Apply(func(x, y int, _ float64) float64 {
		if y >= 8 {
			return 1
		}
		return 0
	})
	gx, gy := Sobel(g)
	if gy.At(8, 8) <= 0 {
		t.Errorf("gy at rising horizontal edge = %v, want > 0", gy.At(8, 8))
	}
	if math.Abs(gx.At(8, 8)) > 1e-9 {
		t.Errorf("gx on horizontal edge = %v, want 0", gx.At(8, 8))
	}
}

func TestCannyFindsStepEdge(t *testing.T) {
	g := stepGrid(32, 32, 16)
	edges := Canny(g, DefaultCannyConfig())
	found := 0
	for y := 2; y < 30; y++ {
		for x := 14; x <= 18; x++ {
			if edges.At(x, y) == 1 {
				found++
				break
			}
		}
	}
	if found < 24 {
		t.Errorf("Canny found the edge on only %d/28 rows", found)
	}
	// No spurious edges far from the step.
	for y := 0; y < 32; y++ {
		for x := 0; x < 8; x++ {
			if edges.At(x, y) == 1 {
				t.Fatalf("spurious edge at (%d,%d)", x, y)
			}
		}
	}
}

func TestCannyEdgesAreThin(t *testing.T) {
	g := stepGrid(32, 32, 16)
	edges := Canny(g, DefaultCannyConfig())
	for y := 4; y < 28; y++ {
		count := 0
		for x := 0; x < 32; x++ {
			if edges.At(x, y) == 1 {
				count++
			}
		}
		if count > 2 {
			t.Fatalf("row %d has %d edge pixels; non-max suppression failed", y, count)
		}
	}
}

func TestCannyIgnoresFaintEdgeNextToStrongOne(t *testing.T) {
	// A faint second step at 3% of the strong step's contrast must be
	// dropped by ratio-based thresholds — the CSD 7 failure mode.
	g := grid.New(64, 64)
	g.Apply(func(x, y int, _ float64) float64 {
		v := 0.0
		if x >= 20 {
			v += 1.0
		}
		if x >= 44 {
			v += 0.03
		}
		return v
	})
	edges := Canny(g, DefaultCannyConfig())
	faint := 0
	for y := 0; y < 64; y++ {
		for x := 42; x <= 46; x++ {
			if edges.At(x, y) == 1 {
				faint++
			}
		}
	}
	if faint > 3 {
		t.Errorf("faint edge produced %d pixels; ratio thresholds should drop it", faint)
	}
}

func TestEdgePoints(t *testing.T) {
	g := grid.New(4, 4)
	g.Set(1, 2, 1)
	g.Set(3, 0, 1)
	pts := EdgePoints(g)
	if len(pts) != 2 {
		t.Fatalf("EdgePoints = %v", pts)
	}
}

func TestOtsuSeparatesBimodal(t *testing.T) {
	g := grid.New(10, 10)
	g.Apply(func(x, y int, _ float64) float64 {
		if (x+y*10)%2 == 0 {
			return 1
		}
		return 9
	})
	th := Otsu(g)
	if th <= 1 || th >= 9 {
		t.Errorf("Otsu threshold = %v, want between the modes", th)
	}
	flat := grid.New(4, 4)
	flat.Fill(3)
	if th := Otsu(flat); th != 3 {
		t.Errorf("Otsu on constant grid = %v, want 3", th)
	}
}

func TestHoughRecoversKnownLine(t *testing.T) {
	for _, m := range []float64{-8, -2, -0.5, -0.12} {
		y0 := 40.0
		g := lineGrid(64, 64, y0, m)
		edges := Canny(g, DefaultCannyConfig())
		acc := Hough(edges, DefaultHoughConfig())
		peaks := acc.Peaks(1, 10, 2, 2)
		if len(peaks) == 0 {
			t.Fatalf("m=%v: no Hough peak", m)
		}
		got := peaks[0].Slope()
		// Compare in angle space: steep slopes have huge absolute errors for
		// tiny angular ones.
		gotAng := math.Atan(got)
		wantAng := math.Atan(m)
		if math.Abs(gotAng-wantAng) > 3*math.Pi/180 {
			t.Errorf("m=%v: recovered slope %v (Δangle %.2f°)", m, got,
				math.Abs(gotAng-wantAng)*180/math.Pi)
		}
	}
}

func TestHoughTwoLines(t *testing.T) {
	// Compose a steep and a shallow edge, as in a CSD.
	g := grid.New(80, 80)
	g.Apply(func(x, y int, _ float64) float64 {
		v := 0.0
		if float64(y) < -6*(float64(x)-60) { // steep line x≈60
			v += 1
		}
		if float64(y) < 55-0.15*float64(x) { // shallow line y≈55
			v += 1
		}
		return v
	})
	edges := Canny(g, DefaultCannyConfig())
	peaks := Hough(edges, DefaultHoughConfig()).Peaks(4, 15, 5, 8)
	var foundSteep, foundShallow bool
	for _, p := range peaks {
		s := p.Slope()
		if s < -1.5 {
			foundSteep = true
		}
		if s > -1 && s < -0.02 {
			foundShallow = true
		}
	}
	if !foundSteep || !foundShallow {
		t.Errorf("peaks %v: steep found=%v shallow found=%v", peaks, foundSteep, foundShallow)
	}
}

func TestHoughLineGeometry(t *testing.T) {
	l := HoughLine{Rho: 10, Theta: math.Pi / 2} // horizontal line y = 10
	if s := l.Slope(); math.Abs(s) > 1e-9 {
		t.Errorf("horizontal slope = %v", s)
	}
	if y := l.YAt(55); math.Abs(y-10) > 1e-9 {
		t.Errorf("YAt = %v, want 10", y)
	}
	if d := l.Dist(3, 12); math.Abs(d-2) > 1e-9 {
		t.Errorf("Dist = %v, want 2", d)
	}
	v := HoughLine{Rho: 5, Theta: 0} // vertical line x = 5
	if !math.IsInf(v.Slope(), 1) {
		t.Errorf("vertical slope = %v", v.Slope())
	}
	if x := v.XAt(100); math.Abs(x-5) > 1e-9 {
		t.Errorf("XAt = %v, want 5", x)
	}
}

func TestPeaksSuppression(t *testing.T) {
	g := lineGrid(64, 64, 40, -0.3)
	edges := Canny(g, DefaultCannyConfig())
	peaks := Hough(edges, DefaultHoughConfig()).Peaks(5, 10, 3, 5)
	if len(peaks) == 0 {
		t.Fatal("no peaks")
	}
	// All surviving peaks must be separated in (θ, ρ).
	for i := 0; i < len(peaks); i++ {
		for j := i + 1; j < len(peaks); j++ {
			dTheta := math.Abs(peaks[i].Theta - peaks[j].Theta)
			dRho := math.Abs(peaks[i].Rho - peaks[j].Rho)
			if dTheta <= 3*math.Pi/180 && dRho <= 5 {
				t.Errorf("peaks %d and %d not suppressed: dθ=%v dρ=%v", i, j, dTheta, dRho)
			}
		}
	}
}

func TestPeaksRespectsMinVotes(t *testing.T) {
	g := grid.New(16, 16) // empty
	acc := Hough(g, DefaultHoughConfig())
	if peaks := acc.Peaks(5, 1, 1, 1); len(peaks) != 0 {
		t.Errorf("empty edge map produced peaks %v", peaks)
	}
}
