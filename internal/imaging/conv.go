// Package imaging implements the classical image-processing pipeline the
// paper's baseline method uses: Gaussian smoothing, Sobel gradients, Canny
// edge detection, and a (ρ, θ) Hough transform with peak extraction — all
// from scratch on the grid.Grid raster type.
package imaging

import (
	"math"

	"github.com/fastvg/fastvg/internal/grid"
)

// Kernel is a dense 2-D convolution kernel with odd dimensions; the anchor
// is the centre cell. Rows are ordered bottom-up like grid.Grid.
type Kernel struct {
	W, H    int
	Weights []float64
}

// NewKernel wraps weights (row-major, bottom row first) as a kernel.
// It panics if the dimensions are even or do not match the weight count.
func NewKernel(w, h int, weights []float64) Kernel {
	if w%2 == 0 || h%2 == 0 {
		panic("imaging: kernel dimensions must be odd")
	}
	if len(weights) != w*h {
		panic("imaging: kernel weight count mismatch")
	}
	return Kernel{W: w, H: h, Weights: weights}
}

// At returns the weight at kernel-local (kx, ky), with (0, 0) the bottom-left.
func (k Kernel) At(kx, ky int) float64 { return k.Weights[ky*k.W+kx] }

// Convolve cross-correlates g with k (the convention OpenCV's filter2D uses),
// clamping at the borders, and returns a new grid.
func Convolve(g *grid.Grid, k Kernel) *grid.Grid {
	out := grid.New(g.W, g.H)
	cx, cy := k.W/2, k.H/2
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var s float64
			for ky := 0; ky < k.H; ky++ {
				for kx := 0; kx < k.W; kx++ {
					s += k.At(kx, ky) * g.AtClamped(x+kx-cx, y+ky-cy)
				}
			}
			out.Set(x, y, s)
		}
	}
	return out
}

// GaussianKernel1D returns a normalised 1-D Gaussian kernel with the given σ
// and radius ceil(3σ).
func GaussianKernel1D(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	r := int(math.Ceil(3 * sigma))
	k := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-0.5 * float64(i*i) / (sigma * sigma))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// GaussianBlur smooths g with a separable Gaussian of the given σ.
func GaussianBlur(g *grid.Grid, sigma float64) *grid.Grid {
	k := GaussianKernel1D(sigma)
	r := len(k) / 2
	tmp := grid.New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var s float64
			for i := -r; i <= r; i++ {
				s += k[i+r] * g.AtClamped(x+i, y)
			}
			tmp.Set(x, y, s)
		}
	}
	out := grid.New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var s float64
			for i := -r; i <= r; i++ {
				s += k[i+r] * tmp.AtClamped(x, y+i)
			}
			out.Set(x, y, s)
		}
	}
	return out
}

// Sobel returns the horizontal and vertical derivative images. gx is the
// derivative along +x; gy along +y (upward).
func Sobel(g *grid.Grid) (gx, gy *grid.Grid) {
	// Bottom row first: the +y derivative kernel has -1s on the bottom row.
	kx := NewKernel(3, 3, []float64{
		-1, 0, 1,
		-2, 0, 2,
		-1, 0, 1,
	})
	ky := NewKernel(3, 3, []float64{
		-1, -2, -1,
		0, 0, 0,
		1, 2, 1,
	})
	return Convolve(g, kx), Convolve(g, ky)
}

// GradientMagnitude returns sqrt(gx² + gy²) per pixel.
func GradientMagnitude(gx, gy *grid.Grid) *grid.Grid {
	out := grid.New(gx.W, gx.H)
	out.Apply(func(x, y int, _ float64) float64 {
		return math.Hypot(gx.At(x, y), gy.At(x, y))
	})
	return out
}
