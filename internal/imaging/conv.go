// Package imaging implements the classical image-processing pipeline the
// paper's baseline method uses: Gaussian smoothing, Sobel gradients, Canny
// edge detection, and a (ρ, θ) Hough transform with peak extraction — all
// from scratch on the grid.Grid raster type.
package imaging

import (
	"context"
	"math"
	"runtime"

	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/sched"
)

// parallelRows runs fn over disjoint row chunks of [0, h) on an
// internal/sched pool with the given worker budget (0 = one per CPU,
// 1 = serial). Every output pixel is written by exactly one worker from
// read-only inputs, so results are bit-identical to the serial loop; small
// images and serial budgets take the inline path.
func parallelRows(h, workers int, fn func(y0, y1 int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > h {
		workers = h
	}
	// Below ~64 rows the goroutine fan-out costs more than it saves.
	if workers <= 1 || h < 64 {
		fn(0, h)
		return
	}
	pool := sched.New(workers)
	per := (h + workers - 1) / workers
	_ = pool.Map(context.Background(), workers, func(_ context.Context, c int) error {
		y0 := c * per
		y1 := y0 + per
		if y1 > h {
			y1 = h
		}
		if y0 < y1 {
			fn(y0, y1)
		}
		return nil
	})
}

// Kernel is a dense 2-D convolution kernel with odd dimensions; the anchor
// is the centre cell. Rows are ordered bottom-up like grid.Grid.
type Kernel struct {
	W, H    int
	Weights []float64
}

// NewKernel wraps weights (row-major, bottom row first) as a kernel.
// It panics if the dimensions are even or do not match the weight count.
func NewKernel(w, h int, weights []float64) Kernel {
	if w%2 == 0 || h%2 == 0 {
		panic("imaging: kernel dimensions must be odd")
	}
	if len(weights) != w*h {
		panic("imaging: kernel weight count mismatch")
	}
	return Kernel{W: w, H: h, Weights: weights}
}

// At returns the weight at kernel-local (kx, ky), with (0, 0) the bottom-left.
func (k Kernel) At(kx, ky int) float64 { return k.Weights[ky*k.W+kx] }

// Convolve cross-correlates g with k (the convention OpenCV's filter2D uses),
// clamping at the borders, and returns a new grid. Output rows are rendered
// in parallel on multi-CPU machines; the result is bit-identical to the
// serial loop.
func Convolve(g *grid.Grid, k Kernel) *grid.Grid {
	return ConvolveWorkers(g, k, 0)
}

// ConvolveWorkers is Convolve with an explicit row-render worker budget
// (0 = one per CPU, 1 = serial). The output is identical at any setting.
func ConvolveWorkers(g *grid.Grid, k Kernel, workers int) *grid.Grid {
	out := grid.New(g.W, g.H)
	cx, cy := k.W/2, k.H/2
	parallelRows(g.H, workers, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < g.W; x++ {
				var s float64
				for ky := 0; ky < k.H; ky++ {
					for kx := 0; kx < k.W; kx++ {
						s += k.At(kx, ky) * g.AtClamped(x+kx-cx, y+ky-cy)
					}
				}
				out.Set(x, y, s)
			}
		}
	})
	return out
}

// GaussianKernel1D returns a normalised 1-D Gaussian kernel with the given σ
// and radius ceil(3σ).
func GaussianKernel1D(sigma float64) []float64 {
	if sigma <= 0 {
		return []float64{1}
	}
	r := int(math.Ceil(3 * sigma))
	k := make([]float64, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-0.5 * float64(i*i) / (sigma * sigma))
		k[i+r] = v
		sum += v
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// GaussianBlur smooths g with a separable Gaussian of the given σ. Both
// separable passes render rows in parallel on multi-CPU machines; the
// result is bit-identical to the serial loops.
func GaussianBlur(g *grid.Grid, sigma float64) *grid.Grid {
	return GaussianBlurWorkers(g, sigma, 0)
}

// GaussianBlurWorkers is GaussianBlur with an explicit row-render worker
// budget (0 = one per CPU, 1 = serial). The output is identical at any
// setting.
func GaussianBlurWorkers(g *grid.Grid, sigma float64, workers int) *grid.Grid {
	k := GaussianKernel1D(sigma)
	r := len(k) / 2
	tmp := grid.New(g.W, g.H)
	parallelRows(g.H, workers, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < g.W; x++ {
				var s float64
				for i := -r; i <= r; i++ {
					s += k[i+r] * g.AtClamped(x+i, y)
				}
				tmp.Set(x, y, s)
			}
		}
	})
	out := grid.New(g.W, g.H)
	parallelRows(g.H, workers, func(y0, y1 int) {
		for y := y0; y < y1; y++ {
			for x := 0; x < g.W; x++ {
				var s float64
				for i := -r; i <= r; i++ {
					s += k[i+r] * tmp.AtClamped(x, y+i)
				}
				out.Set(x, y, s)
			}
		}
	})
	return out
}

// Sobel returns the horizontal and vertical derivative images. gx is the
// derivative along +x; gy along +y (upward).
func Sobel(g *grid.Grid) (gx, gy *grid.Grid) {
	return SobelWorkers(g, 0)
}

// SobelWorkers is Sobel with an explicit row-render worker budget.
func SobelWorkers(g *grid.Grid, workers int) (gx, gy *grid.Grid) {
	// Bottom row first: the +y derivative kernel has -1s on the bottom row.
	kx := NewKernel(3, 3, []float64{
		-1, 0, 1,
		-2, 0, 2,
		-1, 0, 1,
	})
	ky := NewKernel(3, 3, []float64{
		-1, -2, -1,
		0, 0, 0,
		1, 2, 1,
	})
	return ConvolveWorkers(g, kx, workers), ConvolveWorkers(g, ky, workers)
}

// GradientMagnitude returns sqrt(gx² + gy²) per pixel.
func GradientMagnitude(gx, gy *grid.Grid) *grid.Grid {
	out := grid.New(gx.W, gx.H)
	out.Apply(func(x, y int, _ float64) float64 {
		return math.Hypot(gx.At(x, y), gy.At(x, y))
	})
	return out
}
