package imaging

import (
	"math"

	"github.com/fastvg/fastvg/internal/grid"
)

// CannyConfig parameterises edge detection. Thresholds are expressed as
// fractions of the maximum gradient magnitude, the scale-free convention
// that makes the detector comparable across CSDs with different contrast —
// and, as the paper's CSD 7 shows, the convention that makes it blind to
// lines far fainter than the strongest one.
type CannyConfig struct {
	Sigma     float64 // Gaussian σ before differentiation
	HighRatio float64 // high threshold as fraction of max magnitude
	LowRatio  float64 // low threshold as fraction of the high threshold
	Workers   int     // convolution row-render workers: 0 = one per CPU, 1 = serial
}

// DefaultCannyConfig mirrors common OpenCV usage on stability diagrams.
func DefaultCannyConfig() CannyConfig {
	return CannyConfig{Sigma: 1.2, HighRatio: 0.30, LowRatio: 0.40}
}

// Canny runs the full edge-detection pipeline and returns a binary grid
// (1 = edge pixel). The convolutions honour cfg.Workers; the output is
// identical at any worker budget.
func Canny(g *grid.Grid, cfg CannyConfig) *grid.Grid {
	blurred := GaussianBlurWorkers(g, cfg.Sigma, cfg.Workers)
	gx, gy := SobelWorkers(blurred, cfg.Workers)
	mag := GradientMagnitude(gx, gy)
	nms := nonMaxSuppress(mag, gx, gy)
	_, maxMag := nms.MinMax()
	hi := cfg.HighRatio * maxMag
	lo := cfg.LowRatio * hi
	return hysteresis(nms, lo, hi)
}

// nonMaxSuppress thins the gradient magnitude to single-pixel ridges by
// zeroing pixels that are not local maxima along their gradient direction,
// quantised to 4 directions.
func nonMaxSuppress(mag, gx, gy *grid.Grid) *grid.Grid {
	out := grid.New(mag.W, mag.H)
	for y := 0; y < mag.H; y++ {
		for x := 0; x < mag.W; x++ {
			m := mag.At(x, y)
			if m == 0 {
				continue
			}
			angle := math.Atan2(gy.At(x, y), gx.At(x, y)) // [-π, π]
			if angle < 0 {
				angle += math.Pi // direction is mod π
			}
			var dx, dy int
			switch {
			case angle < math.Pi/8 || angle >= 7*math.Pi/8:
				dx, dy = 1, 0 // gradient ~horizontal
			case angle < 3*math.Pi/8:
				dx, dy = 1, 1 // diagonal /
			case angle < 5*math.Pi/8:
				dx, dy = 0, 1 // vertical
			default:
				dx, dy = -1, 1 // diagonal \
			}
			if m >= mag.AtClamped(x+dx, y+dy) && m >= mag.AtClamped(x-dx, y-dy) {
				out.Set(x, y, m)
			}
		}
	}
	return out
}

// hysteresis applies double thresholding with connectivity: pixels above hi
// are strong seeds; pixels above lo survive if 8-connected to a seed.
func hysteresis(nms *grid.Grid, lo, hi float64) *grid.Grid {
	out := grid.New(nms.W, nms.H)
	var stack []grid.Point
	for y := 0; y < nms.H; y++ {
		for x := 0; x < nms.W; x++ {
			if nms.At(x, y) >= hi {
				out.Set(x, y, 1)
				stack = append(stack, grid.Point{X: x, Y: y})
			}
		}
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				nx, ny := p.X+dx, p.Y+dy
				if !nms.In(nx, ny) || out.At(nx, ny) == 1 {
					continue
				}
				if nms.At(nx, ny) >= lo {
					out.Set(nx, ny, 1)
					stack = append(stack, grid.Point{X: nx, Y: ny})
				}
			}
		}
	}
	return out
}

// EdgePoints lists the set pixels of a binary edge grid.
func EdgePoints(edges *grid.Grid) []grid.Point {
	var pts []grid.Point
	for y := 0; y < edges.H; y++ {
		for x := 0; x < edges.W; x++ {
			if edges.At(x, y) != 0 {
				pts = append(pts, grid.Point{X: x, Y: y})
			}
		}
	}
	return pts
}

// Otsu returns the threshold maximising between-class variance over a
// 256-bin histogram of the grid values; provided for threshold ablations.
func Otsu(g *grid.Grid) float64 {
	lo, hi := g.MinMax()
	if hi == lo {
		return lo
	}
	const bins = 256
	var hist [bins]int
	scale := float64(bins-1) / (hi - lo)
	for _, v := range g.Data() {
		hist[int((v-lo)*scale)]++
	}
	total := g.W * g.H
	var sumAll float64
	for i, c := range hist {
		sumAll += float64(i) * float64(c)
	}
	var sumB, wB float64
	best, bestVar := 0, -1.0
	for i := 0; i < bins; i++ {
		wB += float64(hist[i])
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(i) * float64(hist[i])
		mB := sumB / wB
		mF := (sumAll - sumB) / wF
		v := wB * wF * (mB - mF) * (mB - mF)
		if v > bestVar {
			bestVar = v
			best = i
		}
	}
	return lo + (float64(best)+0.5)/scale
}
