package imaging

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/xrand"
)

// TestBlurSeparabilityEquivalence checks the separable Gaussian blur equals
// a direct 2-D convolution with the outer-product kernel.
func TestBlurSeparabilityEquivalence(t *testing.T) {
	rng := xrand.New(1)
	g := grid.New(24, 20)
	g.Apply(func(x, y int, _ float64) float64 { return rng.Float64() })

	sigma := 1.1
	k1 := GaussianKernel1D(sigma)
	n := len(k1)
	weights := make([]float64, n*n)
	for yy := 0; yy < n; yy++ {
		for xx := 0; xx < n; xx++ {
			weights[yy*n+xx] = k1[xx] * k1[yy]
		}
	}
	direct := Convolve(g, NewKernel(n, n, weights))
	separable := GaussianBlur(g, sigma)

	// Interior pixels must agree exactly (border handling differs: the
	// separable pass clamps per-axis).
	r := n / 2
	for y := r; y < g.H-r; y++ {
		for x := r; x < g.W-r; x++ {
			if d := math.Abs(direct.At(x, y) - separable.At(x, y)); d > 1e-12 {
				t.Fatalf("separable blur differs at (%d,%d) by %v", x, y, d)
			}
		}
	}
}

// TestSobelAntisymmetry: flipping the image horizontally negates gx on the
// mirrored pixel (up to border effects).
func TestSobelAntisymmetry(t *testing.T) {
	rng := xrand.New(2)
	g := grid.New(16, 16)
	g.Apply(func(x, y int, _ float64) float64 { return rng.Float64() })
	flipped := grid.New(16, 16)
	flipped.Apply(func(x, y int, _ float64) float64 { return g.At(15-x, y) })

	gx, _ := Sobel(g)
	fx, _ := Sobel(flipped)
	for y := 1; y < 15; y++ {
		for x := 1; x < 15; x++ {
			if d := math.Abs(gx.At(x, y) + fx.At(15-x, y)); d > 1e-12 {
				t.Fatalf("gx not antisymmetric at (%d,%d): %v vs %v", x, y, gx.At(x, y), fx.At(15-x, y))
			}
		}
	}
}

// TestGradientMagnitudeNonNegative holds for arbitrary inputs.
func TestGradientMagnitudeNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := grid.New(8, 8)
		g.Apply(func(x, y int, _ float64) float64 { return rng.NormFloat64() })
		gx, gy := Sobel(g)
		mag := GradientMagnitude(gx, gy)
		lo, _ := mag.MinMax()
		return lo >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCannyOutputBinary: the edge map contains only 0 and 1.
func TestCannyOutputBinary(t *testing.T) {
	rng := xrand.New(3)
	g := grid.New(32, 32)
	g.Apply(func(x, y int, _ float64) float64 {
		v := 0.0
		if x >= 16 {
			v = 1
		}
		return v + 0.05*rng.NormFloat64()
	})
	edges := Canny(g, DefaultCannyConfig())
	for _, v := range edges.Data() {
		if v != 0 && v != 1 {
			t.Fatalf("edge map value %v", v)
		}
	}
}

// TestHoughVoteCount: a single edge pixel votes once per θ bin.
func TestHoughVoteCount(t *testing.T) {
	g := grid.New(32, 32)
	g.Set(10, 12, 1)
	acc := Hough(g, DefaultHoughConfig())
	total := 0
	for tIdx := 0; tIdx < acc.nTheta; tIdx++ {
		for r := 0; r < acc.nRho; r++ {
			total += acc.VotesAt(tIdx, r)
		}
	}
	if total != acc.nTheta {
		t.Errorf("single pixel cast %d votes over %d θ bins", total, acc.nTheta)
	}
}

// TestHoughCollinearPixelsShareBin: all pixels of an axis-aligned line land
// in the same (θ, ρ) bin at θ=90° (horizontal line y = c).
func TestHoughCollinearPixelsShareBin(t *testing.T) {
	g := grid.New(64, 64)
	for x := 5; x < 60; x++ {
		g.Set(x, 20, 1)
	}
	acc := Hough(g, DefaultHoughConfig())
	peaks := acc.Peaks(1, 10, 2, 2)
	if len(peaks) == 0 {
		t.Fatal("no peak for a horizontal line")
	}
	p := peaks[0]
	if p.Votes < 55 {
		t.Errorf("peak has %d votes, want all 55 pixels", p.Votes)
	}
	if math.Abs(p.Theta-math.Pi/2) > 2*math.Pi/180 {
		t.Errorf("peak θ = %v, want π/2", p.Theta)
	}
	if math.Abs(p.Rho-20) > 1.5 {
		t.Errorf("peak ρ = %v, want 20", p.Rho)
	}
}

// TestOtsuInvariantToScaling: the threshold scales with the data.
func TestOtsuInvariantToScaling(t *testing.T) {
	g := grid.New(10, 10)
	g.Apply(func(x, y int, _ float64) float64 {
		if (x+y)%2 == 0 {
			return 2
		}
		return 8
	})
	t1 := Otsu(g)
	scaled := g.Clone()
	scaled.Apply(func(_, _ int, v float64) float64 { return 10 * v })
	t2 := Otsu(scaled)
	if math.Abs(t2-10*t1) > 0.5 {
		t.Errorf("Otsu not scale-covariant: %v vs %v", t1, t2)
	}
}

// TestNMSKeepsRidgeMaxima: after suppression, every surviving pixel is a
// local max along its gradient direction by construction; weaker neighbours
// along the perpendicular of a diagonal edge must be gone.
func TestNMSKeepsRidgeMaxima(t *testing.T) {
	g := grid.New(32, 32)
	g.Apply(func(x, y int, _ float64) float64 {
		if y > x {
			return 1
		}
		return 0
	})
	edges := Canny(g, DefaultCannyConfig())
	// Count edge pixels per anti-diagonal cross-section; the diagonal edge
	// should be ~1-2 px wide everywhere.
	for d := 10; d < 22; d++ {
		count := 0
		for o := -4; o <= 4; o++ {
			x, y := d+o, d-o
			if edges.In(x, y) && edges.At(x, y) == 1 {
				count++
			}
		}
		if count > 2 {
			t.Fatalf("diagonal edge %d px wide at d=%d", count, d)
		}
	}
}
