package core

import (
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

// bigSynth is the analytic CSD scaled to a 200×200 window.
func bigSynth() synthSource {
	return synthSource{xa: 132, yb: 126, mSteep: -8, mShallow: -0.12}
}

func TestExtractAdaptiveMatchesTruth(t *testing.T) {
	s := bigSynth()
	res, err := ExtractAdaptive(s, squareWin(200), AdaptiveConfig{})
	if err != nil {
		t.Fatalf("ExtractAdaptive: %v", err)
	}
	if res.Coarse == nil || res.Fine == nil {
		t.Fatal("missing pass results")
	}
	if e := angleErr(res.Fine.SteepSlope, -8); e > 3.5 {
		t.Errorf("fine steep %v (Δ%.2f°)", res.Fine.SteepSlope, e)
	}
	if e := angleErr(res.Fine.ShallowSlope, -0.12); e > 3.5 {
		t.Errorf("fine shallow %v (Δ%.2f°)", res.Fine.ShallowSlope, e)
	}
}

func TestExtractAdaptiveSavesProbesOnDevice(t *testing.T) {
	mk := func() (*device.SimInstrument, csd.Window) {
		phys, err := physics.FromGeometry(physics.Geometry{
			SteepSlope:   -8,
			ShallowSlope: -0.12,
			SteepPoint:   [2]float64{68, 0},
			ShallowPoint: [2]float64{0, 63},
			EC1:          4, EC2: 4, ECm: 0.25,
		})
		if err != nil {
			t.Fatal(err)
		}
		dev := &device.DoubleDot{Phys: phys, Sens: sensor.DefaultDoubleDot(0.47, 0.45, 200)}
		win := csd.NewSquareWindow(0, 0, 100, 200)
		return device.NewSimInstrument(dev, device.DefaultDwell, win.StepV1(), win.StepV2()), win
	}

	instA, winA := mk()
	if _, err := Extract(csd.PixelSource{Src: instA, Win: winA}, winA, Config{}); err != nil {
		t.Fatalf("plain extraction: %v", err)
	}
	plain := instA.Stats().UniqueProbes

	instB, winB := mk()
	ares, err := ExtractAdaptive(csd.PixelSource{Src: instB, Win: winB}, winB, AdaptiveConfig{})
	if err != nil {
		t.Fatalf("adaptive extraction: %v", err)
	}
	adaptive := instB.Stats().UniqueProbes

	if adaptive >= plain {
		t.Errorf("adaptive probed %d, plain %d: no saving", adaptive, plain)
	}
	if e := angleErr(ares.Fine.SteepSlope, -8); e > 3.5 {
		t.Errorf("adaptive steep %v (Δ%.2f°)", ares.Fine.SteepSlope, e)
	}
	t.Logf("probes: plain %d, adaptive %d (%.0f%% saving)",
		plain, adaptive, 100*(1-float64(adaptive)/float64(plain)))
}

func TestExtractAdaptiveRejectsTinyWindow(t *testing.T) {
	s := synthSource{xa: 45, yb: 40, mSteep: -8, mShallow: -0.12}
	if _, err := ExtractAdaptive(s, squareWin(40), AdaptiveConfig{CoarseFactor: 4}); err == nil {
		t.Error("accepted window too small for the coarse pass")
	}
}

func TestExtractAdaptiveCoarseFailurePropagates(t *testing.T) {
	flat := synthSource{xa: 1e9, yb: 1e9, mSteep: -8, mShallow: -0.12}
	if _, err := ExtractAdaptive(flat, squareWin(200), AdaptiveConfig{}); err == nil {
		t.Error("adaptive extraction succeeded on featureless data")
	}
}

func TestStateAtClassifiesRegions(t *testing.T) {
	s := synthSource{xa: 45, yb: 40, mSteep: -8, mShallow: -0.12}
	win := squareWin(64)
	res, err := Extract(s, win, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v1, v2 float64
		want   ChargeState
	}{
		{10, 10, ChargeState{0, 0}},
		{55, 5, ChargeState{1, 0}},
		{5, 50, ChargeState{0, 1}},
		{55, 50, ChargeState{1, 1}},
	}
	for _, tc := range cases {
		if got := res.StateAt(win, tc.v1, tc.v2); got != tc.want {
			t.Errorf("StateAt(%v,%v) = %+v, want %+v", tc.v1, tc.v2, got, tc.want)
		}
	}
}

func TestStateAtAgreesWithPhysics(t *testing.T) {
	// Classify every pixel of a simulated device and compare with the
	// constant-interaction ground state, excluding a 2-pixel band around the
	// extracted lines where the label is genuinely ambiguous.
	phys, err := physics.FromGeometry(physics.Geometry{
		SteepSlope:   -7.5,
		ShallowSlope: -0.13,
		SteepPoint:   [2]float64{33, 0},
		ShallowPoint: [2]float64{0, 31},
		EC1:          4, EC2: 4, ECm: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := &device.DoubleDot{Phys: phys, Sens: sensor.DefaultDoubleDot(0.47, 0.45, 100)}
	win := csd.NewSquareWindow(0, 0, 50, 100)
	inst := device.NewSimInstrument(dev, 0, win.StepV1(), win.StepV2())
	res, err := Extract(csd.PixelSource{Src: inst, Win: win}, win, Config{})
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	for y := 0; y < win.Rows; y++ {
		for x := 0; x < win.Cols; x++ {
			v1, v2 := win.V1At(x), win.V2At(y)
			n1, n2 := phys.GroundState(v1, v2)
			if n1 > 1 || n2 > 1 {
				continue // beyond the extracted 2×2 region
			}
			// Skip the ambiguity band around the extracted lines. StateAt is
			// the ECm = 0 approximation, so the band must cover the honeycomb
			// shift ECm/α (in pixels) plus fit tolerance.
			band := phys.ECm/phys.Alpha[0][0]/win.StepV1() + 2
			px := float64(x)
			py := float64(y)
			dSteep := math.Abs(px - (res.Knee.X + (py-res.Knee.Y)/res.SteepSlopePx))
			dShallow := math.Abs(py - (res.Knee.Y + res.ShallowSlopePx*(px-res.Knee.X)))
			if dSteep < band || dShallow < band {
				continue
			}
			total++
			if s := res.StateAt(win, v1, v2); s.N1 == n1 && s.N2 == n2 {
				agree++
			}
		}
	}
	if total == 0 {
		t.Fatal("no pixels classified")
	}
	if frac := float64(agree) / float64(total); frac < 0.97 {
		t.Errorf("charge-state agreement %.1f%% (%d/%d), want ≥ 97%%", frac*100, agree, total)
	}
}
