package core

import (
	"fmt"
	"math"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/fitting"
	"github.com/fastvg/fastvg/internal/grid"
)

// AdaptiveConfig tunes the coarse-to-fine extension: a full extraction at
// reduced resolution locates the lines, then only the full-resolution sweeps
// run, with anchors derived from the coarse fit. This skips the anchor mask
// bands at full resolution — the dominant fixed cost on large windows — so
// the saving grows with window size (~30% at 200×200).
type AdaptiveConfig struct {
	Config

	// CoarseFactor is the subsampling factor of the first pass (default 4,
	// minimum 2). The coarse window is Cols/CoarseFactor pixels wide.
	CoarseFactor int
}

// DefaultCoarseFactor is the coarse-pass subsampling substituted for a zero
// AdaptiveConfig.CoarseFactor.
const DefaultCoarseFactor = 4

func (c *AdaptiveConfig) fillDefaults() {
	c.Config.fillDefaults()
	if c.CoarseFactor == 0 {
		c.CoarseFactor = DefaultCoarseFactor
	}
}

// AdaptiveResult pairs the two passes.
type AdaptiveResult struct {
	Coarse *Result
	Fine   *Result
}

// subsampled exposes every k-th pixel of a source as a coarse source; probe
// (x, y) maps to the centre of the k×k block.
type subsampled struct {
	src Source
	k   int
}

func (s subsampled) Current(x, y int) float64 {
	return s.src.Current(x*s.k+s.k/2, y*s.k+s.k/2)
}

// ExtractAdaptive runs the coarse-to-fine extraction.
func ExtractAdaptive(src Source, win csd.Window, cfg AdaptiveConfig) (*AdaptiveResult, error) {
	cfg.fillDefaults()
	if err := win.Validate(); err != nil {
		return nil, err
	}
	k := cfg.CoarseFactor
	if k < 2 {
		k = 2
	}
	if win.Cols/k < 16 || win.Rows/k < 16 {
		return nil, fmt.Errorf("core: window %dx%d too small for coarse factor %d", win.Cols, win.Rows, k)
	}
	coarseWin := win
	coarseWin.Cols = win.Cols / k
	coarseWin.Rows = win.Rows / k

	coarse, err := Extract(subsampled{src: src, k: k}, coarseWin, cfg.Config)
	if err != nil {
		return &AdaptiveResult{Coarse: coarse}, fmt.Errorf("core: coarse pass: %w", err)
	}

	// Derive full-resolution anchors from the coarse piecewise fit: the
	// steep segment's crossing with fine row 1 and the shallow segment's
	// crossing with fine column 1.
	toFine := func(c float64) float64 { return c*float64(k) + float64(k)/2 }
	kneeX, kneeY := toFine(coarse.Knee.X), toFine(coarse.Knee.Y)
	mSteep := coarse.SteepSlopePx // slopes are scale-invariant
	mShallow := coarse.ShallowSlopePx

	// A coarse pixel of margin keeps the triangle containing the lines even
	// when the coarse fit is off by its own granularity; the sweeps tolerate
	// a slightly larger triangle but cannot recover a line outside it.
	margin := float64(k) + 1
	bottomX := kneeX + (1-kneeY)/mSteep + margin
	leftY := kneeY + mShallow*(1-kneeX) + margin
	bottom := grid.Point{X: clampInt(int(math.Round(bottomX)), 2, win.Cols-1), Y: 1}
	left := grid.Point{X: 1, Y: clampInt(int(math.Round(leftY)), 2, win.Rows-1)}

	fine, err := ExtractWithAnchors(src, win, cfg.Config, left, bottom)
	if err != nil {
		return &AdaptiveResult{Coarse: coarse, Fine: fine}, fmt.Errorf("core: fine pass: %w", err)
	}
	// The derived anchors sit a safety margin off the lines; re-anchor the
	// fit on the first sweep-chosen points, which lie on the lines in the
	// well-resolved bottom/left region.
	if len(fine.RowTrace.Chosen) > 0 && len(fine.ColTrace.Chosen) > 0 {
		a := fine.RowTrace.Chosen[0]
		b := fine.ColTrace.Chosen[0]
		if err := finalizeFit(fine, win, cfg.Config,
			fitting.Vec2{X: float64(a.X), Y: float64(a.Y)},
			fitting.Vec2{X: float64(b.X), Y: float64(b.Y)}); err != nil {
			return &AdaptiveResult{Coarse: coarse, Fine: fine}, fmt.Errorf("core: fine refit: %w", err)
		}
	}
	return &AdaptiveResult{Coarse: coarse, Fine: fine}, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
