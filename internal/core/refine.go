package core

import (
	"math"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/fitting"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// refineSlopes replaces the anchored-fit slopes with robust per-branch
// Theil–Sen estimates over the filtered transition points.
//
// The paper computes the slopes from the fitted knee and the *initial anchor
// points* (Section 4.3.3), which makes the result sensitive to anchor
// placement error — under noise a ±2 px anchor offset tilts the steep slope
// by ~2°. Refinement assigns each filtered point to its nearer branch of the
// fitted polyline and fits each branch independently: the steep branch as
// x = f(y) (well-conditioned near vertical), the shallow branch as y = f(x),
// both with Theil–Sen's ~29% outlier tolerance. The knee moves to the
// refined lines' intersection. If refinement is degenerate or non-physical
// the anchored-fit result is kept, so it can only help.
func refineSlopes(res *Result, win csd.Window, cfg Config) {
	model := res.Fit.Model
	var steepPts, shallowPts []fitting.Vec2
	for _, p := range res.Points {
		v := fitting.Vec2{X: float64(p.X), Y: float64(p.Y)}
		if distToSegment(v, model.A, model.K) <= distToSegment(v, model.B, model.K) {
			steepPts = append(steepPts, v)
		} else {
			shallowPts = append(shallowPts, v)
		}
	}
	if len(steepPts) < 5 || len(shallowPts) < 5 {
		return
	}
	// Steep branch: x = c1 + d1·y.
	swapped := make([]fitting.Vec2, len(steepPts))
	for i, p := range steepPts {
		swapped[i] = fitting.Vec2{X: p.Y, Y: p.X}
	}
	c1, d1, err1 := fitting.TheilSen(swapped)
	// Shallow branch: y = c2 + d2·x.
	c2, d2, err2 := fitting.TheilSen(shallowPts)
	if err1 != nil || err2 != nil {
		return
	}
	var steepPx float64
	if d1 == 0 {
		steepPx = math.Inf(-1)
	} else {
		steepPx = 1 / d1
	}
	shallowPx := d2
	steepV := win.PixelSlopeToVoltage(steepPx)
	shallowV := win.PixelSlopeToVoltage(shallowPx)
	if !(steepV < -1) || !(shallowV > -1 && shallowV < 0) {
		return // keep the anchored fit
	}
	m, err := virtualgate.FromSlopes(steepV, shallowV)
	if err != nil {
		return
	}
	// Knee: intersection of x = c1 + d1·y and y = c2 + d2·x.
	den := 1 - d1*d2
	if math.Abs(den) > 1e-9 {
		kx := (c1 + d1*c2) / den
		ky := c2 + d2*kx
		if kx >= -cfg.KneeMargin && kx <= float64(win.Cols)+cfg.KneeMargin &&
			ky >= -cfg.KneeMargin && ky <= float64(win.Rows)+cfg.KneeMargin {
			res.Knee = fitting.Vec2{X: kx, Y: ky}
		}
	}
	res.SteepSlopePx = steepPx
	res.ShallowSlopePx = shallowPx
	res.SteepSlope = steepV
	res.ShallowSlope = shallowV
	res.Matrix = m
	res.Refined = true
}

// distToSegment is the Euclidean distance from q to segment ab.
func distToSegment(q, a, b fitting.Vec2) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	l2 := abx*abx + aby*aby
	if l2 == 0 {
		return math.Hypot(q.X-a.X, q.Y-a.Y)
	}
	t := ((q.X-a.X)*abx + (q.Y-a.Y)*aby) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return math.Hypot(q.X-(a.X+t*abx), q.Y-(a.Y+t*aby))
}
