package core

import (
	"errors"
	"math"
	"testing"

	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/device"
	"github.com/fastvg/fastvg/internal/physics"
	"github.com/fastvg/fastvg/internal/sensor"
)

// synthSource is the analytic clean CSD used across algorithm tests.
type synthSource struct {
	xa, yb           float64
	mSteep, mShallow float64
}

func (s synthSource) Current(x, y int) float64 {
	fx, fy := float64(x), float64(y)
	c := 2.0 + 0.004*(fx+fy)
	if fx > s.xa+fy/s.mSteep {
		c -= 0.8
	}
	if fy > s.yb+s.mShallow*fx {
		c -= 0.8
	}
	return c
}

func squareWin(n int) csd.Window { return csd.NewSquareWindow(0, 0, float64(n), n) }

func TestExtractCleanSynthetic(t *testing.T) {
	s := synthSource{xa: 45, yb: 40, mSteep: -8, mShallow: -0.12}
	res, err := Extract(s, squareWin(64), Config{})
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if e := angleErr(res.SteepSlope, -8); e > 3 {
		t.Errorf("steep slope %v, want -8 (Δ%.2f°)", res.SteepSlope, e)
	}
	if e := angleErr(res.ShallowSlope, -0.12); e > 3 {
		t.Errorf("shallow slope %v, want -0.12 (Δ%.2f°)", res.ShallowSlope, e)
	}
	// Knee should land near the true intersection (~(40.1, 35.2)).
	if math.Abs(res.Knee.X-40) > 4 || math.Abs(res.Knee.Y-35) > 4 {
		t.Errorf("knee %v, want near (40, 35)", res.Knee)
	}
	if res.Matrix.A12() <= 0 || res.Matrix.A21() <= 0 {
		t.Errorf("matrix off-diagonals %v, %v should be positive", res.Matrix.A12(), res.Matrix.A21())
	}
}

func angleErr(got, want float64) float64 {
	return math.Abs(math.Atan(got)-math.Atan(want)) * 180 / math.Pi
}

func TestExtractVariousGeometries(t *testing.T) {
	cases := []synthSource{
		{xa: 40, yb: 48, mSteep: -5, mShallow: -0.2},
		{xa: 50, yb: 38, mSteep: -11, mShallow: -0.08},
		{xa: 44, yb: 44, mSteep: -7, mShallow: -0.15},
	}
	for _, s := range cases {
		res, err := Extract(s, squareWin(64), Config{})
		if err != nil {
			t.Errorf("geometry %+v: %v", s, err)
			continue
		}
		if e := angleErr(res.SteepSlope, s.mSteep); e > 3.5 {
			t.Errorf("geometry %+v: steep %v (Δ%.2f°)", s, res.SteepSlope, e)
		}
		if e := angleErr(res.ShallowSlope, s.mShallow); e > 3.5 {
			t.Errorf("geometry %+v: shallow %v (Δ%.2f°)", s, res.ShallowSlope, e)
		}
	}
}

func TestExtractOnSimulatedDevice(t *testing.T) {
	// Full integration: physics + sensor + instrument + window.
	phys, err := physics.FromGeometry(physics.Geometry{
		SteepSlope:   -7.5,
		ShallowSlope: -0.13,
		SteepPoint:   [2]float64{33, 0},
		ShallowPoint: [2]float64{0, 31},
		EC1:          4, EC2: 4, ECm: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := &device.DoubleDot{Phys: phys, Sens: sensor.DefaultDoubleDot(0.47, 0.45, 100)}
	win := csd.NewSquareWindow(0, 0, 50, 100)
	inst := device.NewSimInstrument(dev, device.DefaultDwell, win.StepV1(), win.StepV2())
	res, err := Extract(csd.PixelSource{Src: inst, Win: win}, win, Config{})
	if err != nil {
		t.Fatalf("Extract on simulated device: %v", err)
	}
	if e := angleErr(res.SteepSlope, -7.5); e > 3.5 {
		t.Errorf("steep %v (Δ%.2f°)", res.SteepSlope, e)
	}
	if e := angleErr(res.ShallowSlope, -0.13); e > 3.5 {
		t.Errorf("shallow %v (Δ%.2f°)", res.ShallowSlope, e)
	}
	// The fast method must probe far fewer points than the full raster.
	if probes := inst.Stats().UniqueProbes; probes > 2500 {
		t.Errorf("probed %d points, expected ≪ 10000", probes)
	}
}

func TestExtractFailsOnFlatData(t *testing.T) {
	flat := synthSource{xa: 1e9, yb: 1e9, mSteep: -8, mShallow: -0.12} // lines out of window
	_, err := Extract(flat, squareWin(64), Config{})
	if err == nil {
		t.Fatal("extraction on featureless data succeeded")
	}
}

func TestExtractRejectsBadWindow(t *testing.T) {
	s := synthSource{xa: 45, yb: 40, mSteep: -8, mShallow: -0.12}
	if _, err := Extract(s, csd.Window{}, Config{}); err == nil {
		t.Error("accepted invalid window")
	}
}

func TestExtractTooSmallWindow(t *testing.T) {
	s := synthSource{xa: 5, yb: 5, mSteep: -8, mShallow: -0.12}
	_, err := Extract(s, squareWin(10), Config{})
	if !errors.Is(err, ErrAnchors) {
		t.Errorf("err = %v, want ErrAnchors", err)
	}
}

func TestAblationRowSweepOnly(t *testing.T) {
	s := synthSource{xa: 45, yb: 40, mSteep: -8, mShallow: -0.12}
	res, err := Extract(s, squareWin(64), Config{RowSweepOnly: true})
	if err != nil {
		t.Fatalf("row-only extraction failed on clean data: %v", err)
	}
	if len(res.ColTrace.Chosen) != 0 {
		t.Error("column sweep ran despite RowSweepOnly")
	}
}

func TestAblationNoShrinkProbesMore(t *testing.T) {
	s := synthSource{xa: 45, yb: 40, mSteep: -8, mShallow: -0.12}
	resShrink, err := Extract(s, squareWin(64), Config{})
	if err != nil {
		t.Fatal(err)
	}
	resNo, err := Extract(s, squareWin(64), Config{NoShrink: true})
	if err != nil {
		t.Fatalf("no-shrink extraction failed: %v", err)
	}
	if len(resNo.RowTrace.Probed) <= len(resShrink.RowTrace.Probed) {
		t.Errorf("no-shrink probed %d ≤ shrink %d; ablation ineffective",
			len(resNo.RowTrace.Probed), len(resShrink.RowTrace.Probed))
	}
}

func TestAblationNoFilterKeepsAllPoints(t *testing.T) {
	s := synthSource{xa: 45, yb: 40, mSteep: -8, mShallow: -0.12}
	res, err := Extract(s, squareWin(64), Config{DisableFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(res.RawPoints) {
		t.Errorf("filter disabled but %d != %d points", len(res.Points), len(res.RawPoints))
	}
}

func TestTriplePointVoltage(t *testing.T) {
	s := synthSource{xa: 45, yb: 40, mSteep: -8, mShallow: -0.12}
	win := csd.NewSquareWindow(100, 200, 64, 64) // 1 mV per pixel, offset origin
	res, err := Extract(s, win, Config{})
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := res.TriplePointVoltage(win)
	if v1 < 100 || v1 > 164 || v2 < 200 || v2 > 264 {
		t.Errorf("triple point voltage (%v, %v) outside window", v1, v2)
	}
}

func TestResultSlopesConsistentWithMatrix(t *testing.T) {
	s := synthSource{xa: 45, yb: 40, mSteep: -8, mShallow: -0.12}
	res, err := Extract(s, squareWin(64), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Matrix.A12()-(-1/res.SteepSlope)) > 1e-12 {
		t.Error("A12 inconsistent with steep slope")
	}
	if math.Abs(res.Matrix.A21()-(-res.ShallowSlope)) > 1e-12 {
		t.Error("A21 inconsistent with shallow slope")
	}
}
