// Package core assembles the paper's fast virtual gate extraction pipeline
// (Section 4): anchor-point preprocessing → shrinking-triangle row- and
// column-major sweeps → erroneous-point filtering → 2-piece-wise linear fit
// → transition-line slopes → virtualization matrix.
package core

import (
	"errors"
	"fmt"

	"github.com/fastvg/fastvg/internal/anchors"
	"github.com/fastvg/fastvg/internal/csd"
	"github.com/fastvg/fastvg/internal/fitting"
	"github.com/fastvg/fastvg/internal/grid"
	"github.com/fastvg/fastvg/internal/postproc"
	"github.com/fastvg/fastvg/internal/sweep"
	"github.com/fastvg/fastvg/internal/virtualgate"
)

// Source provides sensor current at integer pixel coordinates of the scan
// window; implementations adapt instruments (csd.PixelSource) or recorded
// grids (csd.GridSource).
type Source interface {
	Current(x, y int) float64
}

// Sentinel errors describing where the pipeline gave up; the evaluation
// harness counts any of them as a failed extraction.
var (
	// ErrAnchors: preprocessing could not place a valid anchor pair.
	ErrAnchors = errors.New("core: anchor preprocessing failed")
	// ErrFit: the piecewise fit did not converge on the transition points.
	ErrFit = errors.New("core: piecewise fit failed")
	// ErrNonPhysical: the fitted slopes violate the device-physics prior
	// (both negative, steep < -1 < shallow < 0) or the knee left the window.
	ErrNonPhysical = errors.New("core: extracted lines violate the physics prior")
)

// Config tunes the pipeline; the zero value reproduces the paper.
type Config struct {
	Anchors anchors.Config

	// Ablation switches (all false for the paper's method).
	DisableFilter bool // skip Algorithm 3's post-processing filter
	RowSweepOnly  bool // skip the column-major sweep (Section 5.2, CSD 7 discussion)
	NoShrink      bool // keep the triangle static during sweeps

	// NoRefine disables the robust per-branch slope refinement that runs
	// after the paper's anchored knee fit (see refineSlopes); with NoRefine
	// the slopes come from the knee and the initial anchors exactly as in
	// Section 4.3.3.
	NoRefine bool

	// KneeMargin is how far (pixels) the fitted knee may sit outside the
	// window before the result is rejected as non-physical.
	KneeMargin float64
}

func (c *Config) fillDefaults() {
	if c.KneeMargin == 0 {
		c.KneeMargin = 2
	}
}

// Result is a completed extraction.
type Result struct {
	Anchors  anchors.Result
	RowTrace sweep.Trace
	ColTrace sweep.Trace

	RawPoints []grid.Point // both sweeps joined, pre-filter
	Points    []grid.Point // after the post-processing filter

	Fit  fitting.FitKneeResult
	Knee fitting.Vec2 // pixel coordinates of the fitted intersection

	SteepSlopePx   float64 // dy/dx in pixels
	ShallowSlopePx float64
	SteepSlope     float64 // dV2/dV1
	ShallowSlope   float64

	// Refined reports whether the robust per-branch slope refinement
	// replaced the anchored-fit slopes.
	Refined bool

	Matrix virtualgate.Mat2
}

// TriplePointVoltage returns the fitted knee in gate-voltage coordinates.
func (r *Result) TriplePointVoltage(win csd.Window) (v1, v2 float64) {
	return win.V1Min + (r.Knee.X+0.5)*win.StepV1(), win.V2Min + (r.Knee.Y+0.5)*win.StepV2()
}

// Extract runs the fast extraction on a win.Cols × win.Rows window probed
// through src. The window is needed only to convert pixel slopes to voltage
// slopes (they coincide for square isotropic windows).
func Extract(src Source, win csd.Window, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	if err := win.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}

	// Section 4.4: anchor preprocessing.
	anc, err := anchors.Find(src, win.Cols, win.Rows, cfg.Anchors)
	res.Anchors = anc
	if err != nil {
		return res, fmt.Errorf("%w: %v", ErrAnchors, err)
	}
	if err := extractFromAnchors(res, src, win, cfg); err != nil {
		return res, err
	}
	return res, nil
}

// ExtractWithAnchors runs the pipeline from known anchor points, skipping
// the Section 4.4 preprocessing — the entry point for the adaptive
// coarse-to-fine extension and for callers with prior knowledge of the line
// crossings.
func ExtractWithAnchors(src Source, win csd.Window, cfg Config, left, bottom grid.Point) (*Result, error) {
	cfg.fillDefaults()
	if err := win.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	res.Anchors.Left = left
	res.Anchors.Bottom = bottom
	if err := extractFromAnchors(res, src, win, cfg); err != nil {
		return res, err
	}
	return res, nil
}

// extractFromAnchors runs sweeps, filtering, fitting and validation using
// the anchors already stored in res.
func extractFromAnchors(res *Result, src Source, win csd.Window, cfg Config) error {
	// Section 4.3.2: sweeps.
	left, bottom := res.Anchors.Left, res.Anchors.Bottom
	rowSweep, colSweep := sweep.RowSweep, sweep.ColSweep
	if cfg.NoShrink {
		rowSweep, colSweep = sweep.RowSweepNoShrink, sweep.ColSweepNoShrink
	}
	var err error
	res.RowTrace, err = rowSweep(src, left, bottom)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrAnchors, err)
	}
	res.RawPoints = append(res.RawPoints, res.RowTrace.Chosen...)
	if !cfg.RowSweepOnly {
		res.ColTrace, err = colSweep(src, left, bottom)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrAnchors, err)
		}
		res.RawPoints = append(res.RawPoints, res.ColTrace.Chosen...)
	}

	// Algorithm 3 lines 1–4: post-processing filter.
	if cfg.DisableFilter {
		res.Points = append([]grid.Point(nil), res.RawPoints...)
	} else {
		res.Points = postproc.Filter(res.RawPoints)
	}
	if len(res.Points) < 4 {
		return fmt.Errorf("%w: only %d transition points", ErrFit, len(res.Points))
	}

	// Section 4.3.3: fit anchored at the initial anchor points (the paper
	// computes the slopes "using the intersecting point and the initial
	// anchor points").
	a := fitting.Vec2{X: float64(bottom.X), Y: float64(bottom.Y)}
	b := fitting.Vec2{X: float64(left.X), Y: float64(left.Y)}
	return finalizeFit(res, win, cfg, a, b)
}

// finalizeFit fits the 2-piece-wise linear shape through the given endpoint
// anchors to res.Points, fills the slope/matrix fields and validates the
// physics prior. It is shared by the paper pipeline and the adaptive
// extension (which re-anchors the fit on sweep-found line points).
func finalizeFit(res *Result, win csd.Window, cfg Config, a, b fitting.Vec2) error {
	pts := make([]fitting.Vec2, len(res.Points))
	for i, p := range res.Points {
		pts[i] = fitting.Vec2{X: float64(p.X), Y: float64(p.Y)}
	}
	fit, err := fitting.FitKnee(pts, a, b, fitting.InitialKnee(pts, a, b))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrFit, err)
	}
	res.Fit = fit
	res.Knee = fit.Model.K
	res.SteepSlopePx = fit.Model.SteepSlope()
	res.ShallowSlopePx = fit.Model.ShallowSlope()
	res.SteepSlope = win.PixelSlopeToVoltage(res.SteepSlopePx)
	res.ShallowSlope = win.PixelSlopeToVoltage(res.ShallowSlopePx)

	// Physics prior (Section 4.2) and window sanity.
	if !(res.SteepSlope < -1) || !(res.ShallowSlope > -1 && res.ShallowSlope < 0) {
		return fmt.Errorf("%w: steep=%.3f shallow=%.3f", ErrNonPhysical, res.SteepSlope, res.ShallowSlope)
	}
	if res.Knee.X < -cfg.KneeMargin || res.Knee.X > float64(win.Cols)+cfg.KneeMargin ||
		res.Knee.Y < -cfg.KneeMargin || res.Knee.Y > float64(win.Rows)+cfg.KneeMargin {
		return fmt.Errorf("%w: knee %v outside window", ErrNonPhysical, res.Knee)
	}

	m, err := virtualgate.FromSlopes(res.SteepSlope, res.ShallowSlope)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNonPhysical, err)
	}
	res.Matrix = m
	if !cfg.NoRefine {
		refineSlopes(res, win, cfg)
	}
	return nil
}
