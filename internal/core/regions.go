package core

import "github.com/fastvg/fastvg/internal/csd"

// ChargeState is the (N1, N2) occupation label of a CSD region.
type ChargeState struct {
	N1, N2 int
}

// StateAt classifies a gate-voltage point into one of the four low-occupation
// charge regions using the extracted transition lines: N1 = 1 right of the
// steep line, N2 = 1 above the shallow line. Near the lines (within the
// measurement granularity) the label is the extracted best guess; exact
// degeneracy-point behaviour needs the full physics model.
func (r *Result) StateAt(win csd.Window, v1, v2 float64) ChargeState {
	// Work in pixel coordinates, where the fit lives.
	x := (v1 - win.V1Min) / win.StepV1()
	y := (v2 - win.V2Min) / win.StepV2()
	var s ChargeState
	// Steep line through the knee with the steep slope: right of it → N1=1.
	if x > r.Knee.X+(y-r.Knee.Y)/r.SteepSlopePx {
		s.N1 = 1
	}
	// Shallow line through the knee: above it → N2=1.
	if y > r.Knee.Y+r.ShallowSlopePx*(x-r.Knee.X) {
		s.N2 = 1
	}
	return s
}
