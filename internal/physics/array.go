package physics

import (
	"errors"
	"fmt"
	"math"
)

// Array is the constant-interaction model of a linear N-dot array with one
// plunger gate per dot, the configuration of the paper's quadruple-dot
// device (Figure 1) and of the n-dot chain extraction of Section 2.3.
type Array struct {
	N      int         `json:"n"`
	EC     []float64   `json:"ec"`     // on-site charging energies, len N
	ECm    []float64   `json:"ecm"`    // nearest-neighbour mutual energies, len N-1
	Alpha  [][]float64 `json:"alpha"`  // lever arms [dot][gate], N×N
	Offset []float64   `json:"offset"` // chemical potential offsets, len N
	MaxN   int         `json:"maxN"`
}

// Validate checks dimensions and the parameter regime under which
// GroundState's bounded search is exact.
func (a *Array) Validate() error {
	if a.N < 2 {
		return errors.New("physics: array needs at least 2 dots")
	}
	if len(a.EC) != a.N || len(a.ECm) != a.N-1 || len(a.Alpha) != a.N || len(a.Offset) != a.N {
		return errors.New("physics: array parameter lengths do not match N")
	}
	minEC := math.Inf(1)
	for i, ec := range a.EC {
		if ec <= 0 {
			return fmt.Errorf("physics: EC[%d] must be positive", i)
		}
		if len(a.Alpha[i]) != a.N {
			return fmt.Errorf("physics: Alpha[%d] has length %d, want %d", i, len(a.Alpha[i]), a.N)
		}
		if a.Alpha[i][i] <= 0 {
			return fmt.Errorf("physics: Alpha[%d][%d] must be positive", i, i)
		}
		minEC = math.Min(minEC, ec)
	}
	for i, m := range a.ECm {
		if m < 0 {
			return fmt.Errorf("physics: ECm[%d] must be non-negative", i)
		}
		if m > minEC/3 {
			return fmt.Errorf("physics: ECm[%d] = %v exceeds min(EC)/3 = %v; bounded ground-state search would not be exact", i, m, minEC/3)
		}
	}
	if a.MaxN < 1 {
		return errors.New("physics: MaxN must be at least 1")
	}
	return nil
}

// Mu returns the chemical potential of dot i at gate voltages v (len N).
func (a *Array) Mu(i int, v []float64) float64 {
	mu := a.Offset[i]
	for g, vg := range v {
		mu += a.Alpha[i][g] * vg
	}
	return mu
}

// Energy returns the constant-interaction energy of occupation vector n at
// gate voltages v.
func (a *Array) Energy(n []int, v []float64) float64 {
	var u float64
	for i := 0; i < a.N; i++ {
		fi := float64(n[i])
		u += 0.5*a.EC[i]*fi*(fi-1) - fi*a.Mu(i, v)
	}
	for i := 0; i < a.N-1; i++ {
		u += a.ECm[i] * float64(n[i]) * float64(n[i+1])
	}
	return u
}

// groundWindow is the per-dot occupancy search width: ±2 around the
// uncoupled optimum, 5 candidate occupations per dot.
const groundWindow = 5

// GroundScratch holds the reusable buffers of GroundStateInto so the probe
// hot path allocates nothing after the first call. The zero value is ready
// to use; a scratch must not be shared between concurrent callers.
type GroundScratch struct {
	lo, hi []int
	mu     []float64
	best   []float64 // suffix DP values, N×groundWindow
	choice []int     // lexicographically-first minimising successor index
}

func (s *GroundScratch) grow(n int) {
	if cap(s.lo) < n {
		s.lo = make([]int, n)
		s.hi = make([]int, n)
		s.mu = make([]float64, n)
		s.best = make([]float64, n*groundWindow)
		s.choice = make([]int, n*groundWindow)
	}
	s.lo = s.lo[:n]
	s.hi = s.hi[:n]
	s.mu = s.mu[:n]
	s.best = s.best[:n*groundWindow]
	s.choice = s.choice[:n*groundWindow]
}

// GroundState returns the occupation vector minimising the energy.
func (a *Array) GroundState(v []float64) []int {
	var s GroundScratch
	return a.GroundStateInto(nil, v, &s)
}

// GroundStateInto computes the ground-state occupation vector into dst
// (grown as needed) using scratch buffers from s, allocating nothing once
// both are warm. Because the array's mutual charging energies are
// nearest-neighbour only (ECm couples dot i to dot i+1), the minimisation
// over the per-dot occupancy windows factorises into an exact chain dynamic
// programme: O(N·W²) with W = 5 candidate occupations per dot, instead of
// the W^N enumeration a dense interaction matrix would force. That is what
// makes probing N = 16 chains as cheap per point as probing a double dot.
//
// Ties are broken toward the lexicographically smallest occupation vector —
// the same vector a lexicographic exhaustive search with strict improvement
// would keep — so the DP is a drop-in replacement for the old enumeration.
// The per-dot windows are ±2 around the uncoupled optimum, exact under the
// Validate regime (ECm ≤ min(EC)/3).
func (a *Array) GroundStateInto(dst []int, v []float64, s *GroundScratch) []int {
	n := a.N
	s.grow(n)
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		s.mu[i] = a.Mu(i, v)
		star := int(math.Floor(s.mu[i]/a.EC[i])) + 1
		s.lo[i] = clampInt(star-2, 0, a.MaxN)
		s.hi[i] = clampInt(star+2, 0, a.MaxN)
	}
	// site(i, n) = ½·EC·n·(n−1) − n·µ_i, the single-dot part of Energy.
	site := func(i, occ int) float64 {
		f := float64(occ)
		return 0.5*a.EC[i]*f*(f-1) - f*s.mu[i]
	}
	// Suffix DP right to left: best[i][k] is the minimal energy of dots
	// i..N−1 when dot i holds occupation lo[i]+k, including the i↔i+1 bond.
	for k := 0; k <= s.hi[n-1]-s.lo[n-1]; k++ {
		s.best[(n-1)*groundWindow+k] = site(n-1, s.lo[n-1]+k)
	}
	for i := n - 2; i >= 0; i-- {
		for k := 0; k <= s.hi[i]-s.lo[i]; k++ {
			occ := float64(s.lo[i] + k)
			bestVal := math.Inf(1)
			bestK := 0
			for k2 := 0; k2 <= s.hi[i+1]-s.lo[i+1]; k2++ {
				u := a.ECm[i]*occ*float64(s.lo[i+1]+k2) + s.best[(i+1)*groundWindow+k2]
				if u < bestVal { // strict: ties keep the smaller occupation
					bestVal = u
					bestK = k2
				}
			}
			s.best[i*groundWindow+k] = site(i, s.lo[i]+k) + bestVal
			s.choice[i*groundWindow+k] = bestK
		}
	}
	// Head choice, then backtrack; strict comparisons keep the
	// lexicographically smallest minimiser throughout.
	bestVal := math.Inf(1)
	k := 0
	for k0 := 0; k0 <= s.hi[0]-s.lo[0]; k0++ {
		if u := s.best[k0]; u < bestVal {
			bestVal = u
			k = k0
		}
	}
	dst[0] = s.lo[0] + k
	for i := 1; i < n; i++ {
		k = s.choice[(i-1)*groundWindow+k]
		dst[i] = s.lo[i] + k
	}
	return dst
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// PairLine returns dot `dot`'s n-th addition line in the plane of gates
// (g1, g2), with every other gate held at the voltages in fixed (len N;
// entries for g1 and g2 are ignored) and the other dots' occupations given
// by others (len N; entry for `dot` ignored).
func (a *Array) PairLine(dot, n int, others []int, g1, g2 int, fixed []float64) Line {
	rhs := a.EC[dot] * float64(n-1)
	if dot > 0 {
		rhs += a.ECm[dot-1] * float64(others[dot-1])
	}
	if dot < a.N-1 {
		rhs += a.ECm[dot] * float64(others[dot+1])
	}
	c := a.Offset[dot] - rhs
	for g := 0; g < a.N; g++ {
		if g == g1 || g == g2 {
			continue
		}
		c += a.Alpha[dot][g] * fixed[g]
	}
	return Line{A: a.Alpha[dot][g1], B: a.Alpha[dot][g2], C: c}
}

// PairSlopes returns the ground-truth (steep, shallow) transition-line
// slopes dV_{g2}/dV_{g1} for the adjacent pair of dots (i, i+1) scanned with
// gates (i, i+1): the inputs to the pairwise virtualization matrix.
func (a *Array) PairSlopes(i int) (steep, shallow float64) {
	steep = -a.Alpha[i][i] / a.Alpha[i][i+1]
	shallow = -a.Alpha[i+1][i] / a.Alpha[i+1][i+1]
	return steep, shallow
}

// UniformChain builds a homogeneous N-dot array whose every adjacent pair
// reproduces the given first-electron line geometry; crossAlpha sets the
// nearest-neighbour lever-arm fraction (Alpha[i][i±1] = crossAlpha·Alpha[i][i])
// and farFrac the next-nearest fraction (decaying geometrically beyond).
func UniformChain(n int, ec, ecm, alphaOwn, crossFrac, farFrac float64, offset float64) (*Array, error) {
	if n < 2 {
		return nil, errors.New("physics: chain needs at least 2 dots")
	}
	a := &Array{
		N:      n,
		EC:     make([]float64, n),
		ECm:    make([]float64, n-1),
		Alpha:  make([][]float64, n),
		Offset: make([]float64, n),
		MaxN:   2,
	}
	for i := 0; i < n; i++ {
		a.EC[i] = ec
		a.Offset[i] = offset
		a.Alpha[i] = make([]float64, n)
		for g := 0; g < n; g++ {
			d := g - i
			if d < 0 {
				d = -d
			}
			switch d {
			case 0:
				a.Alpha[i][g] = alphaOwn
			case 1:
				a.Alpha[i][g] = alphaOwn * crossFrac
			default:
				a.Alpha[i][g] = alphaOwn * crossFrac * math.Pow(farFrac, float64(d-1))
			}
		}
	}
	for i := 0; i < n-1; i++ {
		a.ECm[i] = ecm
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
