package physics

import (
	"errors"
	"fmt"
	"math"
)

// Array is the constant-interaction model of a linear N-dot array with one
// plunger gate per dot, the configuration of the paper's quadruple-dot
// device (Figure 1) and of the n-dot chain extraction of Section 2.3.
type Array struct {
	N      int         `json:"n"`
	EC     []float64   `json:"ec"`     // on-site charging energies, len N
	ECm    []float64   `json:"ecm"`    // nearest-neighbour mutual energies, len N-1
	Alpha  [][]float64 `json:"alpha"`  // lever arms [dot][gate], N×N
	Offset []float64   `json:"offset"` // chemical potential offsets, len N
	MaxN   int         `json:"maxN"`
}

// Validate checks dimensions and the parameter regime under which
// GroundState's bounded search is exact.
func (a *Array) Validate() error {
	if a.N < 2 {
		return errors.New("physics: array needs at least 2 dots")
	}
	if len(a.EC) != a.N || len(a.ECm) != a.N-1 || len(a.Alpha) != a.N || len(a.Offset) != a.N {
		return errors.New("physics: array parameter lengths do not match N")
	}
	minEC := math.Inf(1)
	for i, ec := range a.EC {
		if ec <= 0 {
			return fmt.Errorf("physics: EC[%d] must be positive", i)
		}
		if len(a.Alpha[i]) != a.N {
			return fmt.Errorf("physics: Alpha[%d] has length %d, want %d", i, len(a.Alpha[i]), a.N)
		}
		if a.Alpha[i][i] <= 0 {
			return fmt.Errorf("physics: Alpha[%d][%d] must be positive", i, i)
		}
		minEC = math.Min(minEC, ec)
	}
	for i, m := range a.ECm {
		if m < 0 {
			return fmt.Errorf("physics: ECm[%d] must be non-negative", i)
		}
		if m > minEC/3 {
			return fmt.Errorf("physics: ECm[%d] = %v exceeds min(EC)/3 = %v; bounded ground-state search would not be exact", i, m, minEC/3)
		}
	}
	if a.MaxN < 1 {
		return errors.New("physics: MaxN must be at least 1")
	}
	return nil
}

// Mu returns the chemical potential of dot i at gate voltages v (len N).
func (a *Array) Mu(i int, v []float64) float64 {
	mu := a.Offset[i]
	for g, vg := range v {
		mu += a.Alpha[i][g] * vg
	}
	return mu
}

// Energy returns the constant-interaction energy of occupation vector n at
// gate voltages v.
func (a *Array) Energy(n []int, v []float64) float64 {
	var u float64
	for i := 0; i < a.N; i++ {
		fi := float64(n[i])
		u += 0.5*a.EC[i]*fi*(fi-1) - fi*a.Mu(i, v)
	}
	for i := 0; i < a.N-1; i++ {
		u += a.ECm[i] * float64(n[i]) * float64(n[i+1])
	}
	return u
}

// GroundState returns the occupation vector minimising the energy. The
// search enumerates, per dot, a ±2 window around the uncoupled optimum; the
// Validate regime (ECm ≤ min(EC)/3, MaxN small) guarantees the true ground
// state lies inside the window.
func (a *Array) GroundState(v []float64) []int {
	lo := make([]int, a.N)
	hi := make([]int, a.N)
	for i := 0; i < a.N; i++ {
		star := int(math.Floor(a.Mu(i, v)/a.EC[i])) + 1
		lo[i] = clampInt(star-2, 0, a.MaxN)
		hi[i] = clampInt(star+2, 0, a.MaxN)
	}
	best := math.Inf(1)
	cur := make([]int, a.N)
	bestN := make([]int, a.N)
	copy(cur, lo)
	var rec func(i int)
	rec = func(i int) {
		if i == a.N {
			if u := a.Energy(cur, v); u < best {
				best = u
				copy(bestN, cur)
			}
			return
		}
		for n := lo[i]; n <= hi[i]; n++ {
			cur[i] = n
			rec(i + 1)
		}
	}
	rec(0)
	return bestN
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// PairLine returns dot `dot`'s n-th addition line in the plane of gates
// (g1, g2), with every other gate held at the voltages in fixed (len N;
// entries for g1 and g2 are ignored) and the other dots' occupations given
// by others (len N; entry for `dot` ignored).
func (a *Array) PairLine(dot, n int, others []int, g1, g2 int, fixed []float64) Line {
	rhs := a.EC[dot] * float64(n-1)
	if dot > 0 {
		rhs += a.ECm[dot-1] * float64(others[dot-1])
	}
	if dot < a.N-1 {
		rhs += a.ECm[dot] * float64(others[dot+1])
	}
	c := a.Offset[dot] - rhs
	for g := 0; g < a.N; g++ {
		if g == g1 || g == g2 {
			continue
		}
		c += a.Alpha[dot][g] * fixed[g]
	}
	return Line{A: a.Alpha[dot][g1], B: a.Alpha[dot][g2], C: c}
}

// PairSlopes returns the ground-truth (steep, shallow) transition-line
// slopes dV_{g2}/dV_{g1} for the adjacent pair of dots (i, i+1) scanned with
// gates (i, i+1): the inputs to the pairwise virtualization matrix.
func (a *Array) PairSlopes(i int) (steep, shallow float64) {
	steep = -a.Alpha[i][i] / a.Alpha[i][i+1]
	shallow = -a.Alpha[i+1][i] / a.Alpha[i+1][i+1]
	return steep, shallow
}

// UniformChain builds a homogeneous N-dot array whose every adjacent pair
// reproduces the given first-electron line geometry; crossAlpha sets the
// nearest-neighbour lever-arm fraction (Alpha[i][i±1] = crossAlpha·Alpha[i][i])
// and farFrac the next-nearest fraction (decaying geometrically beyond).
func UniformChain(n int, ec, ecm, alphaOwn, crossFrac, farFrac float64, offset float64) (*Array, error) {
	if n < 2 {
		return nil, errors.New("physics: chain needs at least 2 dots")
	}
	a := &Array{
		N:      n,
		EC:     make([]float64, n),
		ECm:    make([]float64, n-1),
		Alpha:  make([][]float64, n),
		Offset: make([]float64, n),
		MaxN:   2,
	}
	for i := 0; i < n; i++ {
		a.EC[i] = ec
		a.Offset[i] = offset
		a.Alpha[i] = make([]float64, n)
		for g := 0; g < n; g++ {
			d := g - i
			if d < 0 {
				d = -d
			}
			switch d {
			case 0:
				a.Alpha[i][g] = alphaOwn
			case 1:
				a.Alpha[i][g] = alphaOwn * crossFrac
			default:
				a.Alpha[i][g] = alphaOwn * crossFrac * math.Pow(farFrac, float64(d-1))
			}
		}
	}
	for i := 0; i < n-1; i++ {
		a.ECm[i] = ecm
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
