package physics

import (
	"math"
	"testing"
	"testing/quick"
)

func testChain(t *testing.T, n int) *Array {
	t.Helper()
	a, err := UniformChain(n, 4, 0.3, 0.08, 0.12, 0.3, -2.0)
	if err != nil {
		t.Fatalf("UniformChain: %v", err)
	}
	return a
}

func TestUniformChainValid(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		a := testChain(t, n)
		if err := a.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestUniformChainRejectsTiny(t *testing.T) {
	if _, err := UniformChain(1, 4, 0.3, 0.08, 0.12, 0.3, 0); err == nil {
		t.Error("UniformChain accepted n=1")
	}
}

func TestChainGroundStateAllEmptyAtLowVoltage(t *testing.T) {
	a := testChain(t, 4)
	v := []float64{0, 0, 0, 0}
	for i, n := range a.GroundState(v) {
		if n != 0 {
			t.Errorf("dot %d occupied at zero voltage: n=%d", i, n)
		}
	}
}

func TestChainGroundStateFillsOwnDot(t *testing.T) {
	a := testChain(t, 4)
	// Raise only plunger 2 far enough to load exactly dot 2.
	v := []float64{0, 0, 0, 0}
	v[2] = 60
	n := a.GroundState(v)
	if n[2] != 1 {
		t.Errorf("dot 2 occupation = %d, want 1 (state %v)", n[2], n)
	}
	for i := range n {
		if i != 2 && n[i] != 0 {
			t.Errorf("dot %d unexpectedly occupied: state %v", i, n)
		}
	}
}

func TestChainGroundStateMatchesBruteForce(t *testing.T) {
	a := testChain(t, 3)
	f := func(r1, r2, r3 float64) bool {
		v := []float64{mod150(r1), mod150(r2), mod150(r3)}
		got := a.GroundState(v)
		// Exhaustive brute force over the full occupation cube.
		best := math.Inf(1)
		bestN := []int{0, 0, 0}
		for x := 0; x <= a.MaxN; x++ {
			for y := 0; y <= a.MaxN; y++ {
				for z := 0; z <= a.MaxN; z++ {
					n := []int{x, y, z}
					if u := a.Energy(n, v); u < best {
						best = u
						bestN = n
					}
				}
			}
		}
		return a.Energy(got, v) <= best+1e-12 && eqInts(got, bestN)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func mod150(x float64) float64 { return math.Mod(math.Abs(x), 150) }

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPairSlopesSigns(t *testing.T) {
	a := testChain(t, 4)
	for i := 0; i < 3; i++ {
		steep, shallow := a.PairSlopes(i)
		if steep >= -1 {
			t.Errorf("pair %d steep slope %v not < -1", i, steep)
		}
		if shallow <= -1 || shallow >= 0 {
			t.Errorf("pair %d shallow slope %v not in (-1, 0)", i, shallow)
		}
	}
}

func TestPairLineMatchesGroundState(t *testing.T) {
	a := testChain(t, 3)
	fixed := []float64{0, 0, 0}
	line := a.PairLine(0, 1, []int{0, 0, 0}, 0, 1, fixed)
	vg2 := 10.0
	vg1 := line.V1At(vg2)
	nBefore := a.GroundState([]float64{vg1 - 0.5, vg2, 0})
	nAfter := a.GroundState([]float64{vg1 + 0.5, vg2, 0})
	if nBefore[0] != 0 || nAfter[0] != 1 {
		t.Errorf("dot 0 occupation around pair line: %d -> %d, want 0 -> 1", nBefore[0], nAfter[0])
	}
}

func TestPairLineRespectsFixedGates(t *testing.T) {
	a := testChain(t, 4)
	others := []int{0, 0, 0, 0}
	l0 := a.PairLine(1, 1, others, 1, 2, []float64{0, 0, 0, 0})
	l1 := a.PairLine(1, 1, others, 1, 2, []float64{50, 0, 0, 0})
	// Raising fixed gate 0 adds alpha[1][0]*50 to mu, shifting the line.
	shift := l0.V1At(0) - l1.V1At(0)
	want := a.Alpha[1][0] * 50 / a.Alpha[1][1]
	if math.Abs(shift-want) > 1e-9 {
		t.Errorf("fixed-gate shift = %v, want %v", shift, want)
	}
}

func TestValidateRejectsStrongCoupling(t *testing.T) {
	a := testChain(t, 3)
	a.ECm[0] = a.EC[0] // violates ECm <= EC/3
	if err := a.Validate(); err == nil {
		t.Error("Validate accepted ECm = EC")
	}
}

// groundStateWindowed is the pre-DP reference algorithm: exhaustive
// enumeration of the ±2 occupancy windows, lexicographic order, strict
// improvement. The DP must reproduce its result exactly, ties included.
func groundStateWindowed(a *Array, v []float64) []int {
	lo := make([]int, a.N)
	hi := make([]int, a.N)
	for i := 0; i < a.N; i++ {
		star := int(math.Floor(a.Mu(i, v)/a.EC[i])) + 1
		lo[i] = clampInt(star-2, 0, a.MaxN)
		hi[i] = clampInt(star+2, 0, a.MaxN)
	}
	best := math.Inf(1)
	cur := make([]int, a.N)
	bestN := make([]int, a.N)
	copy(cur, lo)
	var rec func(i int)
	rec = func(i int) {
		if i == a.N {
			if u := a.Energy(cur, v); u < best {
				best = u
				copy(bestN, cur)
			}
			return
		}
		for n := lo[i]; n <= hi[i]; n++ {
			cur[i] = n
			rec(i + 1)
		}
	}
	rec(0)
	return bestN
}

// TestChainGroundStateDPMatchesEnumeration pins the chain DP against the
// windowed enumeration it replaced, across chain lengths and a dense sweep
// of voltage configurations (including points near transition lines).
func TestChainGroundStateDPMatchesEnumeration(t *testing.T) {
	for _, n := range []int{2, 3, 5, 6} {
		a := testChain(t, n)
		var s GroundScratch
		v := make([]float64, n)
		dst := make([]int, n)
		for trial := 0; trial < 400; trial++ {
			for i := range v {
				// Deterministic pseudo-grid covering 0..140 mV with offsets
				// that land close to the addition lines.
				v[i] = math.Mod(float64(trial)*7.3+float64(i)*23.7, 140)
			}
			want := groundStateWindowed(a, v)
			got := a.GroundStateInto(dst, v, &s)
			if !eqInts(got, want) {
				t.Fatalf("n=%d v=%v: DP %v != enumeration %v (E %v vs %v)",
					n, v, got, want, a.Energy(got, v), a.Energy(want, v))
			}
		}
	}
}

// TestGroundStateIntoAllocs pins the hot path: warm scratch, zero allocs.
func TestGroundStateIntoAllocs(t *testing.T) {
	a := testChain(t, 8)
	var s GroundScratch
	v := make([]float64, 8)
	dst := make([]int, 8)
	for i := range v {
		v[i] = 20 * float64(i)
	}
	dst = a.GroundStateInto(dst, v, &s)
	allocs := testing.AllocsPerRun(200, func() {
		dst = a.GroundStateInto(dst, v, &s)
	})
	if allocs != 0 {
		t.Fatalf("GroundStateInto allocates %.1f objects/op, want 0", allocs)
	}
}

func TestChainOccupationMonotone(t *testing.T) {
	a := testChain(t, 4)
	v := []float64{20, 20, 20, 20}
	prev := -1
	for x := 0.0; x <= 120; x += 2 {
		v[1] = x
		n := a.GroundState(v)
		if n[1] < prev {
			t.Fatalf("dot 1 occupation decreased while raising its plunger: %d -> %d at v=%v", prev, n[1], x)
		}
		prev = n[1]
	}
}
