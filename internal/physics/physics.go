// Package physics implements the constant-interaction model of gate-defined
// quantum dot arrays (Hanson et al., Rev. Mod. Phys. 79, 1217 (2007); van der
// Wiel et al., Rev. Mod. Phys. 75, 1 (2002)).
//
// The model assigns each charge configuration N = (N1..Nk) the electrostatic
// energy
//
//	U(N, V) = Σ_i ½·EC_i·N_i(N_i−1) + Σ_{i<j} ECm_ij·N_i·N_j − Σ_i N_i·μ_i(V)
//
// with gate-controlled chemical potentials μ_i(V) = Σ_g α_ig·V_g + off_i.
// The ground-state configuration at a gate-voltage point is the N minimising
// U; the boundaries between ground-state regions are the charge-state
// transition lines of the paper's charge stability diagrams. Because μ is
// linear in V, every transition line is exactly a straight line whose slope
// is a ratio of lever arms — this is the physics prior (negative slopes,
// steep for the dot's own gate axis) that the paper's Section 4.2 relies on,
// and it gives the benchmark suite analytic ground truth to score against.
//
// Units: energies in meV, voltages in mV, lever arms in meV/mV.
package physics

import (
	"errors"
	"fmt"
	"math"
)

// Line is the locus a·V1 + b·V2 + c = 0 in the (V1, V2) plane.
type Line struct {
	A, B, C float64
}

// SlopeDV2DV1 returns the slope dV2/dV1 of the line. It is -Inf/+Inf for
// vertical lines (B == 0).
func (l Line) SlopeDV2DV1() float64 {
	if l.B == 0 {
		return math.Inf(-sign(l.A))
	}
	return -l.A / l.B
}

// V2At returns V2 on the line at the given V1. NaN for horizontal-degenerate
// lines.
func (l Line) V2At(v1 float64) float64 {
	if l.B == 0 {
		return math.NaN()
	}
	return -(l.A*v1 + l.C) / l.B
}

// V1At returns V1 on the line at the given V2.
func (l Line) V1At(v2 float64) float64 {
	if l.A == 0 {
		return math.NaN()
	}
	return -(l.B*v2 + l.C) / l.A
}

// Eval returns a·v1 + b·v2 + c; its sign tells which side of the line the
// point lies on.
func (l Line) Eval(v1, v2 float64) float64 { return l.A*v1 + l.B*v2 + l.C }

// Intersect returns the intersection point of two lines.
func Intersect(l1, l2 Line) (v1, v2 float64, err error) {
	det := l1.A*l2.B - l2.A*l1.B
	if math.Abs(det) < 1e-30 {
		return 0, 0, errors.New("physics: lines are parallel")
	}
	v1 = (l1.B*l2.C - l2.B*l1.C) / det
	v2 = (l2.A*l1.C - l1.A*l2.C) / det
	return v1, v2, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// DoubleDot holds the constant-interaction parameters of a double quantum
// dot controlled by two plunger gates (P1, P2).
//
// Alpha[i][g] is the lever arm of gate g onto dot i. The diagonal entries
// dominate (each plunger mostly addresses its own dot); the off-diagonal
// entries are the cross-capacitance the virtual gate construction must
// compensate.
type DoubleDot struct {
	EC     [2]float64    `json:"ec"`     // on-site charging energies (meV)
	ECm    float64       `json:"ecm"`    // mutual charging energy (meV)
	Alpha  [2][2]float64 `json:"alpha"`  // lever arms (meV/mV)
	Offset [2]float64    `json:"offset"` // chemical potential offsets (meV)
	MaxN   int           `json:"maxN"`   // electrons per dot to consider (≥1)
}

// Validate reports whether the parameters describe a physical device.
func (p *DoubleDot) Validate() error {
	for i := 0; i < 2; i++ {
		if p.EC[i] <= 0 {
			return fmt.Errorf("physics: EC[%d] = %v must be positive", i, p.EC[i])
		}
		for g := 0; g < 2; g++ {
			if p.Alpha[i][g] < 0 {
				return fmt.Errorf("physics: Alpha[%d][%d] = %v must be non-negative", i, g, p.Alpha[i][g])
			}
		}
		if p.Alpha[i][i] == 0 {
			return fmt.Errorf("physics: Alpha[%d][%d] must be positive", i, i)
		}
	}
	if p.ECm < 0 {
		return errors.New("physics: mutual charging energy must be non-negative")
	}
	if p.Alpha[0][0]*p.Alpha[1][1] <= p.Alpha[0][1]*p.Alpha[1][0] {
		return errors.New("physics: lever-arm matrix must be diagonally dominant (det > 0)")
	}
	if p.MaxN < 1 {
		return errors.New("physics: MaxN must be at least 1")
	}
	return nil
}

// Mu returns the chemical potential μ_i(V1, V2) of dot i (meV).
func (p *DoubleDot) Mu(i int, v1, v2 float64) float64 {
	return p.Alpha[i][0]*v1 + p.Alpha[i][1]*v2 + p.Offset[i]
}

// Energy returns the constant-interaction energy of configuration (n1, n2)
// at gate voltages (v1, v2).
func (p *DoubleDot) Energy(n1, n2 int, v1, v2 float64) float64 {
	f1, f2 := float64(n1), float64(n2)
	u := 0.5*p.EC[0]*f1*(f1-1) + 0.5*p.EC[1]*f2*(f2-1) + p.ECm*f1*f2
	u -= f1 * p.Mu(0, v1, v2)
	u -= f2 * p.Mu(1, v1, v2)
	return u
}

// GroundState returns the occupation (n1, n2) minimising the energy at the
// given gate voltages, searching 0..MaxN electrons per dot.
func (p *DoubleDot) GroundState(v1, v2 float64) (n1, n2 int) {
	best := math.Inf(1)
	for a := 0; a <= p.MaxN; a++ {
		for b := 0; b <= p.MaxN; b++ {
			if u := p.Energy(a, b, v1, v2); u < best {
				best, n1, n2 = u, a, b
			}
		}
	}
	return n1, n2
}

// maxTableN bounds the configurations a GroundTable flattens; beyond it the
// table would stop fitting in cache and the plain search wins again.
const maxTableN = 8

// GroundTable is the probe hot path's flattened form of GroundState: the
// occupation-independent energy constant of every candidate configuration,
// precomputed once per device in GroundState's exact iteration order. Energy
// is linear in the chemical potentials, U(n, μ) = K(n) − n1·μ1 − n2·μ2, so
// Ground recovers the full brute-force argmin — including its first-wins
// tie-breaking — from two multiplies and two subtractions per candidate,
// with no per-candidate function calls and no allocation. The constants are
// accumulated by the same floating-point expressions Energy uses, which
// makes Ground bit-identical to GroundState, the correctness bar the
// batched instruments are tested against.
type GroundTable struct {
	k      []float64 // K(n): energy at zero chemical potential
	f1, f2 []float64 // occupations as floats, for the μ terms
	n1, n2 []int     // occupations as ints, for the result
}

// Table flattens the ground-state search over 0..MaxN electrons per dot.
// It returns nil when MaxN is too large for a table to pay off (callers
// fall back to GroundState). The table snapshots the parameters; rebuild it
// after mutating the device.
func (p *DoubleDot) Table() *GroundTable {
	if p.MaxN < 1 || p.MaxN > maxTableN {
		return nil
	}
	m := (p.MaxN + 1) * (p.MaxN + 1)
	t := &GroundTable{
		k:  make([]float64, 0, m),
		f1: make([]float64, 0, m),
		f2: make([]float64, 0, m),
		n1: make([]int, 0, m),
		n2: make([]int, 0, m),
	}
	for a := 0; a <= p.MaxN; a++ {
		for b := 0; b <= p.MaxN; b++ {
			f1, f2 := float64(a), float64(b)
			// Mirrors Energy's constant part operation for operation.
			u := 0.5*p.EC[0]*f1*(f1-1) + 0.5*p.EC[1]*f2*(f2-1) + p.ECm*f1*f2
			t.k = append(t.k, u)
			t.f1 = append(t.f1, f1)
			t.f2 = append(t.f2, f2)
			t.n1 = append(t.n1, a)
			t.n2 = append(t.n2, b)
		}
	}
	return t
}

// Ground returns the occupation minimising the energy at chemical potentials
// (μ1, μ2) — the caller evaluates μ_i = Mu(i, v1, v2) — bit-identically to
// GroundState at the same voltages. Safe for concurrent use: the table is
// read-only after construction.
func (t *GroundTable) Ground(mu1, mu2 float64) (n1, n2 int) {
	best := math.Inf(1)
	bi := 0
	k, f1, f2 := t.k, t.f1, t.f2
	for i := 0; i < len(k); i++ {
		u := k[i]
		u -= f1[i] * mu1
		u -= f2[i] * mu2
		if u < best {
			best = u
			bi = i
		}
	}
	return t.n1[bi], t.n2[bi]
}

// AdditionLine returns the transition line on which dot `dot` (0 or 1) gains
// its n-th electron (n ≥ 1) while the other dot holds `other` electrons:
// the boundary between (…, n−1, …) and (…, n, …).
func (p *DoubleDot) AdditionLine(dot, n, other int) Line {
	// Boundary: EC_dot·(n−1) + ECm·other − μ_dot(V) = 0.
	rhs := p.EC[dot]*float64(n-1) + p.ECm*float64(other)
	return Line{
		A: p.Alpha[dot][0],
		B: p.Alpha[dot][1],
		C: p.Offset[dot] - rhs,
	}
}

// SteepLine is the (0,0)→(1,0) transition: dot 1 (index 0) gains its first
// electron. With Alpha[0][0] ≫ Alpha[0][1] its slope dV2/dV1 is steeply
// negative (near-vertical in a CSD with V1 on the horizontal axis).
func (p *DoubleDot) SteepLine() Line { return p.AdditionLine(0, 1, 0) }

// ShallowLine is the (0,0)→(0,1) transition: dot 2 gains its first electron.
// Its slope is shallowly negative (near-horizontal).
func (p *DoubleDot) ShallowLine() Line { return p.AdditionLine(1, 1, 0) }

// TriplePoint returns the (V1, V2) intersection of the steep and shallow
// first-electron lines (for ECm = 0 this is the (0,0)/(1,0)/(0,1)/(1,1)
// quadruple point; with ECm > 0 the honeycomb vertex sits nearby).
func (p *DoubleDot) TriplePoint() (v1, v2 float64, err error) {
	return Intersect(p.SteepLine(), p.ShallowLine())
}

// Geometry describes a double-dot device by the observable geometry of its
// first-electron transition lines instead of raw capacitances: the slopes of
// the two lines and one point on each. FromGeometry solves for lever arms
// and offsets that realise it, which is how the benchmark generator places
// transition lines at chosen pixel positions.
type Geometry struct {
	SteepSlope   float64    // dV2/dV1 of the dot-1 line; must be < -1
	ShallowSlope float64    // dV2/dV1 of the dot-2 line; must be in (-1, 0)
	SteepPoint   [2]float64 // a (V1, V2) point on the steep line
	ShallowPoint [2]float64 // a (V1, V2) point on the shallow line
	EC1, EC2     float64    // charging energies (meV); control line spacing
	ECm          float64    // mutual charging energy (meV)
	AlphaOwn1    float64    // Alpha[0][0]; default 0.08 meV/mV
	AlphaOwn2    float64    // Alpha[1][1]; default 0.08 meV/mV
}

// FromGeometry constructs DoubleDot parameters realising the requested line
// geometry exactly.
func FromGeometry(g Geometry) (*DoubleDot, error) {
	if g.SteepSlope >= -1 {
		return nil, fmt.Errorf("physics: steep slope %v must be < -1", g.SteepSlope)
	}
	if g.ShallowSlope <= -1 || g.ShallowSlope >= 0 {
		return nil, fmt.Errorf("physics: shallow slope %v must be in (-1, 0)", g.ShallowSlope)
	}
	a00 := g.AlphaOwn1
	if a00 == 0 {
		a00 = 0.08
	}
	a11 := g.AlphaOwn2
	if a11 == 0 {
		a11 = 0.08
	}
	// slope = -alphaOwn/alphaCross along the dot's own line:
	// steep line: a00·V1 + a01·V2 + c = 0 → dV2/dV1 = -a00/a01.
	a01 := -a00 / g.SteepSlope
	a10 := -a11 * g.ShallowSlope
	p := &DoubleDot{
		EC:    [2]float64{g.EC1, g.EC2},
		ECm:   g.ECm,
		Alpha: [2][2]float64{{a00, a01}, {a10, a11}},
		MaxN:  3,
	}
	if p.EC[0] == 0 {
		p.EC[0] = 4
	}
	if p.EC[1] == 0 {
		p.EC[1] = 4
	}
	// Offsets place each first-electron line through its requested point:
	// μ_dot(point) = 0.
	p.Offset[0] = -(a00*g.SteepPoint[0] + a01*g.SteepPoint[1])
	p.Offset[1] = -(a10*g.ShallowPoint[0] + a11*g.ShallowPoint[1])
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
