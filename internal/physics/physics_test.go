package physics

import (
	"math"
	"testing"
	"testing/quick"
)

func testDevice(t *testing.T) *DoubleDot {
	t.Helper()
	p, err := FromGeometry(Geometry{
		SteepSlope:   -8,
		ShallowSlope: -0.12,
		SteepPoint:   [2]float64{70, 0},
		ShallowPoint: [2]float64{0, 65},
		EC1:          4, EC2: 4, ECm: 0.3,
	})
	if err != nil {
		t.Fatalf("FromGeometry: %v", err)
	}
	return p
}

func TestFromGeometryRealisesSlopes(t *testing.T) {
	p := testDevice(t)
	if got := p.SteepLine().SlopeDV2DV1(); math.Abs(got-(-8)) > 1e-9 {
		t.Errorf("steep slope = %v, want -8", got)
	}
	if got := p.ShallowLine().SlopeDV2DV1(); math.Abs(got-(-0.12)) > 1e-9 {
		t.Errorf("shallow slope = %v, want -0.12", got)
	}
}

func TestFromGeometryRealisesPoints(t *testing.T) {
	p := testDevice(t)
	if got := p.SteepLine().Eval(70, 0); math.Abs(got) > 1e-9 {
		t.Errorf("steep line misses (70, 0): eval = %v", got)
	}
	if got := p.ShallowLine().Eval(0, 65); math.Abs(got) > 1e-9 {
		t.Errorf("shallow line misses (0, 65): eval = %v", got)
	}
}

func TestFromGeometryRejectsBadSlopes(t *testing.T) {
	cases := []Geometry{
		{SteepSlope: -0.5, ShallowSlope: -0.1}, // steep not steep
		{SteepSlope: -8, ShallowSlope: -2},     // shallow not shallow
		{SteepSlope: -8, ShallowSlope: 0.1},    // shallow positive
		{SteepSlope: 2, ShallowSlope: -0.1},    // steep positive
	}
	for i, g := range cases {
		if _, err := FromGeometry(g); err == nil {
			t.Errorf("case %d: FromGeometry accepted invalid geometry %+v", i, g)
		}
	}
}

func TestGroundStateRegions(t *testing.T) {
	p := testDevice(t)
	// Deep in the (0,0) corner.
	if n1, n2 := p.GroundState(10, 10); n1 != 0 || n2 != 0 {
		t.Errorf("GroundState(10,10) = (%d,%d), want (0,0)", n1, n2)
	}
	// Right of the steep line, below the shallow one: (1,0).
	if n1, n2 := p.GroundState(80, 5); n1 != 1 || n2 != 0 {
		t.Errorf("GroundState(80,5) = (%d,%d), want (1,0)", n1, n2)
	}
	// Above the shallow line, left of the steep one: (0,1).
	if n1, n2 := p.GroundState(5, 80); n1 != 0 || n2 != 1 {
		t.Errorf("GroundState(5,80) = (%d,%d), want (0,1)", n1, n2)
	}
}

func TestGroundStateMonotoneInOwnGate(t *testing.T) {
	// Raising a plunger voltage must never remove electrons from its dot
	// (occupation is monotone non-decreasing), for any valid device.
	p := testDevice(t)
	f := func(v2Raw, stepRaw float64) bool {
		v2 := math.Mod(math.Abs(v2Raw), 120)
		prev := -1
		for v1 := -20.0; v1 <= 150; v1 += 1.0 {
			n1, _ := p.GroundState(v1, v2)
			if n1 < prev {
				return false
			}
			prev = n1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTransitionHappensOnLine(t *testing.T) {
	p := testDevice(t)
	line := p.SteepLine()
	// March across the steep line at fixed V2 and find the flip point.
	v2 := 20.0
	v1Cross := line.V1At(v2)
	n1a, _ := p.GroundState(v1Cross-0.5, v2)
	n1b, _ := p.GroundState(v1Cross+0.5, v2)
	if n1a != 0 || n1b != 1 {
		t.Errorf("occupation around steep line at V2=%v: %d -> %d, want 0 -> 1", v2, n1a, n1b)
	}
}

func TestMutualCouplingShiftsSecondLine(t *testing.T) {
	p := testDevice(t)
	// With dot 2 occupied, dot 1's addition line shifts by ECm/alpha along V1.
	l0 := p.AdditionLine(0, 1, 0)
	l1 := p.AdditionLine(0, 1, 1)
	v2 := 40.0
	shift := l1.V1At(v2) - l0.V1At(v2)
	want := p.ECm / p.Alpha[0][0]
	if math.Abs(shift-want) > 1e-9 {
		t.Errorf("honeycomb shift = %v, want %v", shift, want)
	}
}

func TestTriplePoint(t *testing.T) {
	p := testDevice(t)
	v1, v2, err := p.TriplePoint()
	if err != nil {
		t.Fatalf("TriplePoint: %v", err)
	}
	if math.Abs(p.SteepLine().Eval(v1, v2)) > 1e-9 || math.Abs(p.ShallowLine().Eval(v1, v2)) > 1e-9 {
		t.Errorf("triple point (%v,%v) not on both lines", v1, v2)
	}
}

func TestIntersectParallel(t *testing.T) {
	l := Line{A: 1, B: 2, C: 3}
	if _, _, err := Intersect(l, Line{A: 2, B: 4, C: -1}); err == nil {
		t.Error("Intersect accepted parallel lines")
	}
}

func TestLineSlopeAndEval(t *testing.T) {
	l := Line{A: 2, B: 1, C: -4} // V2 = 4 - 2·V1
	if got := l.SlopeDV2DV1(); math.Abs(got-(-2)) > 1e-12 {
		t.Errorf("slope = %v, want -2", got)
	}
	if got := l.V2At(1); math.Abs(got-2) > 1e-12 {
		t.Errorf("V2At(1) = %v, want 2", got)
	}
	if got := l.V1At(0); math.Abs(got-2) > 1e-12 {
		t.Errorf("V1At(0) = %v, want 2", got)
	}
	if l.Eval(1, 2) != 0 {
		t.Errorf("Eval on line = %v, want 0", l.Eval(1, 2))
	}
}

func TestVerticalLineSlope(t *testing.T) {
	l := Line{A: 1, B: 0, C: -5}
	if !math.IsInf(l.SlopeDV2DV1(), -1) {
		t.Errorf("vertical line slope = %v, want -Inf", l.SlopeDV2DV1())
	}
	if !math.IsNaN(l.V2At(0)) {
		t.Error("V2At on vertical line should be NaN")
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	p := testDevice(t)
	bad := *p
	bad.EC[0] = -1
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted negative EC")
	}
	bad = *p
	bad.Alpha[0][0] = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted zero own lever arm")
	}
	bad = *p
	bad.MaxN = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted MaxN = 0")
	}
	bad = *p
	bad.Alpha = [2][2]float64{{0.05, 0.1}, {0.1, 0.05}}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted non-dominant lever-arm matrix")
	}
}

func TestEnergyGroundStateConsistency(t *testing.T) {
	// The reported ground state must have energy ≤ every enumerated config.
	p := testDevice(t)
	f := func(aRaw, bRaw float64) bool {
		v1 := math.Mod(math.Abs(aRaw), 150)
		v2 := math.Mod(math.Abs(bRaw), 150)
		g1, g2 := p.GroundState(v1, v2)
		ug := p.Energy(g1, g2, v1, v2)
		for a := 0; a <= p.MaxN; a++ {
			for b := 0; b <= p.MaxN; b++ {
				if p.Energy(a, b, v1, v2) < ug-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
