// Package virtualgate constructs and manipulates virtualization matrices —
// the linear recombinations of physical plunger-gate voltages that give each
// quantum dot an orthogonal ("one-to-one") control knob (Section 2.3 of the
// paper).
//
// For a double dot the matrix is
//
//	⎡V'1⎤   ⎡ 1   a12⎤ ⎡V1⎤
//	⎣V'2⎦ = ⎣a21   1 ⎦ ⎣V2⎦
//
// chosen so that each dot's own transition line becomes a level set of its
// virtual gate: a12 = −1/mSteep and a21 = −mShallow, where mSteep is the
// dV2/dV1 slope of dot 1's (steep) transition line and mShallow of dot 2's
// (shallow) line. (The paper's Section 2.3 text transposes the two
// assignments relative to its own Figure 3; see DESIGN.md §5.)
package virtualgate

import (
	"errors"
	"fmt"
	"math"

	"github.com/fastvg/fastvg/internal/grid"
)

// Mat2 is a general 2×2 real matrix acting on (V1, V2) column vectors.
type Mat2 [2][2]float64

// Identity returns the identity matrix.
func Identity() Mat2 { return Mat2{{1, 0}, {0, 1}} }

// FromSlopes builds the virtualization matrix from measured transition-line
// slopes (dV2/dV1). steep must be < -1 and shallow in (-1, 0) — the physics
// prior of Section 4.2.
func FromSlopes(steep, shallow float64) (Mat2, error) {
	if !(steep < -1) { // NaN fails too; -Inf (perfectly vertical) gives a12 = 0
		return Mat2{}, fmt.Errorf("virtualgate: steep slope %v must be < -1", steep)
	}
	if !(shallow > -1 && shallow < 0) {
		return Mat2{}, fmt.Errorf("virtualgate: shallow slope %v must be in (-1, 0)", shallow)
	}
	return Mat2{
		{1, -1 / steep},
		{-shallow, 1},
	}, nil
}

// Apply maps physical voltages to virtual voltages.
func (m Mat2) Apply(v1, v2 float64) (float64, float64) {
	return m[0][0]*v1 + m[0][1]*v2, m[1][0]*v1 + m[1][1]*v2
}

// Det returns the determinant.
func (m Mat2) Det() float64 { return m[0][0]*m[1][1] - m[0][1]*m[1][0] }

// Inverse returns the inverse matrix (virtual → physical voltages).
func (m Mat2) Inverse() (Mat2, error) {
	d := m.Det()
	if math.Abs(d) < 1e-15 {
		return Mat2{}, errors.New("virtualgate: singular matrix")
	}
	return Mat2{
		{m[1][1] / d, -m[0][1] / d},
		{-m[1][0] / d, m[0][0] / d},
	}, nil
}

// Mul returns m·o.
func (m Mat2) Mul(o Mat2) Mat2 {
	var r Mat2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r[i][j] = m[i][0]*o[0][j] + m[i][1]*o[1][j]
		}
	}
	return r
}

// A12 returns the dot-1 compensation coefficient.
func (m Mat2) A12() float64 { return m[0][1] }

// A21 returns the dot-2 compensation coefficient.
func (m Mat2) A21() float64 { return m[1][0] }

// transformDirection maps a direction vector through the matrix.
func (m Mat2) transformDirection(dx, dy float64) (float64, float64) {
	return m[0][0]*dx + m[0][1]*dy, m[1][0]*dx + m[1][1]*dy
}

// OrthogonalityError measures how well the matrix virtualizes a device whose
// true line slopes are steepTrue and shallowTrue: the angular deviation (in
// degrees) of the transformed steep line from vertical and of the
// transformed shallow line from horizontal. A perfect matrix returns (0, 0);
// the paper's manual inspection of the warped CSD is exactly this check.
func (m Mat2) OrthogonalityError(steepTrue, shallowTrue float64) (steepDeg, shallowDeg float64) {
	// Direction of a line with slope s is (1, s); steep lines use (1/s, 1)
	// to stay finite.
	sx, sy := m.transformDirection(1/steepTrue, 1)
	steepDeg = math.Abs(math.Atan2(sx, sy)) * 180 / math.Pi // angle from vertical
	hx, hy := m.transformDirection(1, shallowTrue)
	shallowDeg = math.Abs(math.Atan2(hy, hx)) * 180 / math.Pi // angle from horizontal
	if steepDeg > 90 {
		steepDeg = 180 - steepDeg
	}
	if shallowDeg > 90 {
		shallowDeg = 180 - shallowDeg
	}
	return steepDeg, shallowDeg
}

// Warp resamples a CSD grid into virtual-gate coordinates (the paper's
// Figure 3 right panel): output pixel (x', y') shows the input at
// M⁻¹·(x', y'). The output covers the image of the input rectangle and has
// the same pixel pitch.
func Warp(g *grid.Grid, m Mat2) (*grid.Grid, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	// Transform the corners to find the output bounds.
	xMin, yMin := math.Inf(1), math.Inf(1)
	xMax, yMax := math.Inf(-1), math.Inf(-1)
	for _, c := range [][2]float64{{0, 0}, {float64(g.W - 1), 0}, {0, float64(g.H - 1)}, {float64(g.W - 1), float64(g.H - 1)}} {
		x, y := m.Apply(c[0], c[1])
		xMin = math.Min(xMin, x)
		xMax = math.Max(xMax, x)
		yMin = math.Min(yMin, y)
		yMax = math.Max(yMax, y)
	}
	w := int(math.Ceil(xMax-xMin)) + 1
	h := int(math.Ceil(yMax-yMin)) + 1
	if w < 1 || h < 1 || w > 16*g.W || h > 16*g.H {
		return nil, fmt.Errorf("virtualgate: warp output size %dx%d out of range", w, h)
	}
	out := grid.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sx, sy := inv.Apply(float64(x)+xMin, float64(y)+yMin)
			out.Set(x, y, g.BilinearAt(sx, sy))
		}
	}
	return out, nil
}
