package virtualgate

import (
	"errors"
	"fmt"
	"math"
)

// Chain composes the pairwise virtualization matrices of an n-dot linear
// array (Section 2.3: "n−1 sequentially executed extraction processes") into
// one N×N virtualization matrix with unit diagonal and tridiagonal
// compensation terms.
type Chain struct {
	N   int
	A12 []float64 // per-pair dot-i compensation, len N-1
	A21 []float64 // per-pair dot-(i+1) compensation, len N-1
}

// NewChain allocates an identity chain for n dots.
func NewChain(n int) (*Chain, error) {
	if n < 2 {
		return nil, errors.New("virtualgate: chain needs at least 2 dots")
	}
	return &Chain{N: n, A12: make([]float64, n-1), A21: make([]float64, n-1)}, nil
}

// SetPair records the extracted pair matrix for adjacent dots (i, i+1).
func (c *Chain) SetPair(i int, m Mat2) error {
	if i < 0 || i >= c.N-1 {
		return fmt.Errorf("virtualgate: pair index %d out of range", i)
	}
	c.A12[i] = m.A12()
	c.A21[i] = m.A21()
	return nil
}

// Matrix returns the dense N×N virtualization matrix.
func (c *Chain) Matrix() [][]float64 {
	m := make([][]float64, c.N)
	for i := range m {
		m[i] = make([]float64, c.N)
		m[i][i] = 1
	}
	for i := 0; i < c.N-1; i++ {
		m[i][i+1] = c.A12[i]
		m[i+1][i] = c.A21[i]
	}
	return m
}

// Apply maps physical gate voltages to virtual gate voltages.
func (c *Chain) Apply(v []float64) ([]float64, error) {
	if len(v) != c.N {
		return nil, errors.New("virtualgate: voltage vector length mismatch")
	}
	m := c.Matrix()
	out := make([]float64, c.N)
	for i := range m {
		for j, mij := range m[i] {
			out[i] += mij * v[j]
		}
	}
	return out, nil
}

// Solve maps virtual gate voltages back to physical voltages by solving
// M·v = u with Gaussian elimination (partial pivoting).
func (c *Chain) Solve(u []float64) ([]float64, error) {
	if len(u) != c.N {
		return nil, errors.New("virtualgate: voltage vector length mismatch")
	}
	n := c.N
	m := c.Matrix()
	for i := range m {
		m[i] = append(m[i], u[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-15 {
			return nil, errors.New("virtualgate: singular chain matrix")
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for cc := col; cc <= n; cc++ {
				m[r][cc] -= f * m[col][cc]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}
